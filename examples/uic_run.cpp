// uic_run: the unified CLI driver over the solver registry.
//
// Loads or generates a network, builds a utility configuration, then runs
// any registered allocation algorithm by name and prints a SuiteRow-style
// report (welfare ± std error, wall-clock, RR sets). Every solver the
// registry knows is reachable:
//
//   uic_run --list
//   uic_run --algorithm bundle-grd --network douban-movie --budget 30
//   uic_run --algorithm rr-cim --config config34 --budgets 20,40 --mc 500
//   uic_run --algorithm bundle-grd --network er --nodes 500 --edges 3000
//   uic_run --algorithm bdhs --bdhs-variant concave --network orkut
//
// Sweep mode (--sweep) runs every named algorithm over a list of budget
// points with warm RR-pool reuse across points (see exp/sweep.h):
//
//   uic_run --sweep 10:50:10 --algorithms bundle-grd,item-disj
//   uic_run --sweep "70,30;70,70;70,110" --algorithms bundle-grd
//           --report-csv sweep.csv
//
// Exit codes: 0 success, 1 solver/problem error (message on stderr),
// 2 usage error.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/thread_pool.h"
#include "core/serialization.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"
#include "exp/sweep.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/registry.h"

namespace uic {
namespace {

constexpr const char* kUsage =
    "usage: uic_run --algorithm NAME [options]\n"
    "       uic_run --sweep POINTS --algorithms A,B,.. [options]\n"
    "       uic_run --list            (print registered solver names)\n"
    "\n"
    "sweep (budget sweep with warm RR-pool reuse across points):\n"
    "  --sweep POINTS     \"10,30,50\" uniform | \"10:50:20\" range lo:hi:step |\n"
    "                     \"70,30;70,110\" explicit per-item vectors\n"
    "  --algorithms A,B   algorithms to sweep (default: --algorithm)\n"
    "  --cold             disable warm reuse (results identical, slower)\n"
    "  --report-csv PATH  write the sweep report as CSV\n"
    "  --report-json PATH write the sweep report as JSON\n"
    "  --no-timing        print '-' for seconds (deterministic reports)\n"
    "  (SIGINT/SIGTERM finish the in-flight cell, flush partial reports,\n"
    "   and exit 130)\n"
    "\n"
    "network (generated stand-ins unless --graph is given):\n"
    "  --graph PATH       load a graph saved with SaveGraph\n"
    "  --network NAME     er | pa | flixster | douban-book | douban-movie |\n"
    "                     twitter | orkut          (default douban-movie)\n"
    "  --scale X          stand-in size multiplier  (default 0.3)\n"
    "  --nodes N          er/pa node count          (default 2000)\n"
    "  --edges M          er edge count             (default 6*nodes)\n"
    "  --net-seed S       generator seed            (default 20190630)\n"
    "  --p X              re-weight all edges to constant probability X\n"
    "\n"
    "items (utility configuration, Tables 3-5):\n"
    "  --params PATH      load params saved with SaveItemParams\n"
    "  --config NAME      config12 | config34 | additive | cone-max |\n"
    "                     cone-min | levelwise | real | none\n"
    "                     (default config12; 'none' skips welfare eval)\n"
    "  --items S          item count for additive/cone/levelwise (default 2)\n"
    "  --param-seed S     levelwise generation seed (default 8)\n"
    "  --budget K         uniform per-item budget   (default 10)\n"
    "  --budgets A,B,..   explicit per-item budgets (overrides --budget)\n"
    "\n"
    "solver:\n"
    "  --eps X --ell X    sampling bounds           (default 0.5, 1.0)\n"
    "  --seed S           solver RNG seed           (default 1)\n"
    "  --workers N        threads, 0 = hardware     (default 0)\n"
    "  --model M          ic | lt                   (default ic)\n"
    "  --sampling-kernel K  auto | scan | skip RR sampling kernel\n"
    "                     (default auto = geometric skip-sampling;\n"
    "                      kernels are statistically equivalent but draw\n"
    "                      different RNG sequences)\n"
    "  --greedy-sims N    mc-greedy simulations/evaluation (default 200)\n"
    "  --cim-sims N       rr-cim forward simulations       (default 200)\n"
    "  --bdhs-variant V   step | concave            (default step)\n"
    "  --kappa X          bdhs step isolation discount     (default 0)\n"
    "  --uniform-p X      bdhs concave edge probability    (default 0.01)\n"
    "\n"
    "report:\n"
    "  --mc N             welfare-evaluation simulations   (default 400)\n"
    "  --eval-seed S      welfare-evaluation seed          (default 999)\n"
    "  --save-allocation PATH   persist the allocation (SaveAllocation)\n"
    "\n"
    "observability (docs/observability.md):\n"
    "  --metrics-out FILE write the metric exposition at exit (timing\n"
    "                     series omitted under --no-timing)\n"
    "  --trace-out FILE   record JSONL span trees to FILE\n";

/// Set by the SIGINT/SIGTERM handler; SweepRunner checks it between cells.
std::atomic<bool> g_interrupted{false};

extern "C" void OnSweepSignal(int) {
  g_interrupted.store(true, std::memory_order_relaxed);
}

/// Install cooperative-cancel handlers for sweep mode. No SA_RESTART: an
/// interrupted blocking call should fail fast, not resume.
void InstallSweepSignalHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSweepSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

Result<Graph> BuildNetwork(const Flags& flags) {
  const double p = flags.GetDouble("p", 0.0);
  const std::string path = flags.GetString("graph");
  if (!path.empty()) {
    Result<Graph> loaded = LoadGraph(path);
    if (loaded.ok() && p > 0.0) loaded.value().ApplyConstantProbability(p);
    return loaded;
  }

  const std::string name = flags.GetString("network", "douban-movie");
  const double scale = flags.GetDouble("scale", 0.3);
  const uint64_t seed = static_cast<uint64_t>(
      flags.GetInt("net-seed", 20190630));
  const long nodes_flag = flags.GetInt("nodes", 2000);
  if (nodes_flag <= 0 || nodes_flag > UINT32_MAX) {
    return Status::InvalidArgument("--nodes must be in [1, 2^32)");
  }
  const NodeId nodes = static_cast<NodeId>(nodes_flag);
  const long edges_flag = flags.GetInt("edges", 6 * nodes_flag);
  if (edges_flag < 0) {
    return Status::InvalidArgument("--edges must be non-negative");
  }
  const size_t edges = static_cast<size_t>(edges_flag);

  Graph graph;
  if (name == "er") {
    graph = GenerateErdosRenyi(nodes, edges, seed);
    graph.ApplyWeightedCascade();
  } else if (name == "pa") {
    graph = GeneratePreferentialAttachment(nodes, /*out_per_node=*/5,
                                           /*undirected=*/false, seed);
    graph.ApplyWeightedCascade();
  } else if (name == "flixster") {
    graph = MakeFlixsterLike(seed, scale);
  } else if (name == "douban-book") {
    graph = MakeDoubanBookLike(seed, scale);
  } else if (name == "douban-movie") {
    graph = MakeDoubanMovieLike(seed, scale);
  } else if (name == "twitter") {
    graph = MakeTwitterLike(seed, scale);
  } else if (name == "orkut") {
    graph = MakeOrkutLike(seed, scale);
  } else {
    return Status::InvalidArgument("unknown --network '" + name + "'");
  }
  if (p > 0.0) graph.ApplyConstantProbability(p);
  return graph;
}

Result<std::optional<ItemParams>> BuildParams(const Flags& flags,
                                              ItemId items) {
  const std::string path = flags.GetString("params");
  if (!path.empty()) {
    Result<ItemParams> loaded = LoadItemParams(path);
    if (!loaded.ok()) return loaded.status();
    return std::optional<ItemParams>(loaded.MoveValue());
  }
  const std::string config = flags.GetString("config", "config12");
  // Deliberately NOT the solver --seed: sweeping solver seeds must not
  // silently change the problem instance itself.
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("param-seed", 8));
  if (config == "config12") return std::optional<ItemParams>(MakeTwoItemConfig12());
  if (config == "config34") return std::optional<ItemParams>(MakeTwoItemConfig34());
  if (config == "additive") {
    return std::optional<ItemParams>(MakeAdditiveConfig5(items));
  }
  if (config == "cone-max") {
    return std::optional<ItemParams>(MakeConeConfig67(items, 0));
  }
  if (config == "cone-min") {
    return std::optional<ItemParams>(
        MakeConeConfig67(items, static_cast<ItemId>(items - 1)));
  }
  if (config == "levelwise") {
    return std::optional<ItemParams>(MakeLevelwiseConfig8(items, seed));
  }
  if (config == "real") {
    return std::optional<ItemParams>(MakeRealPlaystationParams());
  }
  if (config == "none") return std::optional<ItemParams>();
  return Status::InvalidArgument("unknown --config '" + config + "'");
}

/// Comma-separated algorithm list for sweep mode; falls back to
/// --algorithm so a one-algorithm sweep needs no extra flag.
std::vector<std::string> SweepAlgorithms(const Flags& flags) {
  std::string list = flags.GetString("algorithms");
  if (list.empty()) list = flags.GetString("algorithm");
  std::vector<std::string> names;
  std::string token;
  for (size_t i = 0; i <= list.size(); ++i) {
    if (i == list.size() || list[i] == ',') {
      if (!token.empty()) names.push_back(token);
      token.clear();
    } else {
      token += list[i];
    }
  }
  return names;
}

int RunSweep(const Flags& flags, const WelfareProblem& problem,
             const SolverOptions& options) {
  const bool timing = !flags.GetBool("no-timing");

  SweepSpec spec;
  spec.graph = problem.graph;
  spec.params = problem.params;
  spec.model = problem.model;
  spec.algorithms = SweepAlgorithms(flags);
  spec.options = options;
  spec.warm = !flags.GetBool("cold");
  spec.eval_simulations = problem.params.has_value()
                              ? static_cast<size_t>(flags.GetInt("mc", 400))
                              : 0;
  spec.eval_seed = static_cast<uint64_t>(flags.GetInt("eval-seed", 999));
  InstallSweepSignalHandlers();
  spec.cancel = &g_interrupted;

  const size_t num_items = problem.params.has_value()
                               ? problem.params->num_items()
                               : problem.budgets.size();
  Result<std::vector<std::vector<uint32_t>>> points =
      ParseSweepPoints(flags.GetString("sweep"), num_items);
  if (!points.ok()) {
    std::fprintf(stderr, "uic_run: %s\n", points.status().ToString().c_str());
    return 2;
  }
  spec.budget_points = points.MoveValue();

  SweepRunner runner(spec);
  Result<SweepReport> report = runner.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "uic_run: %s\n", report.status().ToString().c_str());
    return 1;
  }
  const bool interrupted = report.value().interrupted;
  if (interrupted) {
    std::fprintf(stderr,
                 "uic_run: sweep interrupted after %zu completed cell(s); "
                 "flushing partial report\n",
                 report.value().rows.size());
  }

  TablePrinter table({"algorithm", "setting", "welfare", "std error",
                      "seconds", "rr sets", "rr sampled"});
  for (const SweepRow& row : report.value().rows) {
    table.AddRow({row.algorithm, row.setting,
                  spec.eval_simulations > 0 ? TablePrinter::Num(row.welfare, 2)
                                            : std::string("(no eval)"),
                  spec.eval_simulations > 0
                      ? TablePrinter::Num(row.welfare_std_error, 2)
                      : std::string("-"),
                  timing ? TablePrinter::Num(row.seconds(), 3)
                         : std::string("-"),
                  TablePrinter::Int(static_cast<long long>(row.num_rr_sets())),
                  TablePrinter::Int(
                      static_cast<long long>(row.rr_sets_sampled))});
  }
  table.Print();
  std::printf("total rr sets consumed: %zu, sampled from scratch: %zu (%s)\n",
              report.value().total_rr_sets, report.value().total_rr_sampled,
              spec.warm ? "warm" : "cold");

  auto write_report = [](const std::string& path, const std::string& body) {
    std::ofstream out(path);
    out << body;
    out.flush();  // surface late (buffered) write failures before checking
    if (!out) {
      std::fprintf(stderr, "uic_run: cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("sweep report saved to %s\n", path.c_str());
    return true;
  };
  const std::string csv_path = flags.GetString("report-csv");
  if (!csv_path.empty() &&
      !write_report(csv_path, report.value().ToCsv(timing))) {
    return 1;
  }
  const std::string json_path = flags.GetString("report-json");
  if (!json_path.empty() &&
      !write_report(json_path, report.value().ToJson(timing))) {
    return 1;
  }
  // 128 + SIGINT: partial reports are on disk, but the sweep is incomplete
  // and scripts must not mistake it for a full run.
  return interrupted ? 130 : 0;
}

/// Flushes --metrics-out / --trace-out on every exit path.
struct ObsFlusher {
  std::string metrics_path;
  bool include_timing = true;
  ~ObsFlusher() {
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      out << obs::MetricsRegistry::Global().ExpositionText(include_timing);
      if (!out) {
        std::fprintf(stderr, "uic_run: cannot write %s\n",
                     metrics_path.c_str());
      }
    }
    obs::TraceRecorder::Global().Disable();
  }
};

int Run(int argc, char** argv) {
  Flags flags(argc, argv);

  ObsFlusher obs_flusher;
  obs_flusher.metrics_path = flags.GetString("metrics-out");
  obs_flusher.include_timing = !flags.GetBool("no-timing");
  const std::string trace_out = flags.GetString("trace-out");
  if (!trace_out.empty() &&
      !obs::TraceRecorder::Global().EnableFile(trace_out)) {
    std::fprintf(stderr, "uic_run: cannot open --trace-out %s\n",
                 trace_out.c_str());
    return 2;
  }

  if (flags.GetBool("list")) {
    for (const std::string& name : SolverRegistry::ListSolvers()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  const std::string algorithm = flags.GetString("algorithm");
  const bool sweep_mode = !flags.GetString("sweep").empty();
  const bool has_algorithms =
      !algorithm.empty() || (sweep_mode && !SweepAlgorithms(flags).empty());
  if (!has_algorithms || flags.GetBool("help")) {
    std::fputs(kUsage, stderr);
    std::fputs("\nregistered solvers:", stderr);
    for (const std::string& name : SolverRegistry::ListSolvers()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fputs("\n", stderr);
    return !has_algorithms && !flags.GetBool("help") ? 2 : 0;
  }

  // --- network ----------------------------------------------------------
  Result<Graph> graph = BuildNetwork(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "uic_run: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("network: %s\n", graph.value().Summary().c_str());

  // --- items and budgets ------------------------------------------------
  const std::string budget_list = flags.GetString("budgets");
  std::vector<uint32_t> budgets;
  if (!budget_list.empty()) {
    Result<std::vector<uint32_t>> parsed = ParseBudgetList(budget_list);
    if (!parsed.ok()) {
      std::fprintf(stderr, "uic_run: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    budgets = parsed.MoveValue();
  }

  ItemId items = static_cast<ItemId>(flags.GetInt("items", 2));
  if (!budgets.empty()) items = static_cast<ItemId>(budgets.size());

  Result<std::optional<ItemParams>> params = BuildParams(flags, items);
  if (!params.ok()) {
    std::fprintf(stderr, "uic_run: %s\n", params.status().ToString().c_str());
    return 1;
  }
  if (budgets.empty()) {
    // Uniform budgets sized to the configuration (or --items for 'none').
    const ItemId n = params.value().has_value()
                         ? params.value()->num_items()
                         : items;
    budgets.assign(n, static_cast<uint32_t>(flags.GetInt("budget", 10)));
  }

  // --- solver options ---------------------------------------------------
  SolverOptions options;
  options.eps = flags.GetDouble("eps", 0.5);
  options.ell = flags.GetDouble("ell", 1.0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  options.workers = static_cast<unsigned>(flags.GetInt("workers", 0));
  // Also size the process-wide shared pool (a no-op if something already
  // instantiated it): solvers route ParallelFor through ThreadPool::Shared,
  // and results are worker-count invariant by the determinism contract.
  if (options.workers > 0) ThreadPool::ConfigureShared(options.workers);
  options.mc_greedy.simulations_per_eval =
      static_cast<size_t>(flags.GetInt("greedy-sims", 200));
  options.comic.cim_forward_simulations =
      static_cast<size_t>(flags.GetInt("cim-sims", 200));
  const std::string variant = flags.GetString("bdhs-variant", "step");
  if (variant == "concave") {
    options.bdhs.variant = BdhsVariant::kConcave;
  } else if (variant != "step") {
    std::fprintf(stderr, "uic_run: unknown --bdhs-variant '%s'\n",
                 variant.c_str());
    return 1;
  }
  options.bdhs.kappa = flags.GetDouble("kappa", 0.0);
  options.bdhs.uniform_p = flags.GetDouble("uniform-p", 0.01);
  const std::string kernel = flags.GetString("sampling-kernel", "auto");
  if (!ParseSamplingKernel(kernel, &options.rr_options.kernel)) {
    std::fprintf(stderr, "uic_run: unknown --sampling-kernel '%s'\n",
                 kernel.c_str());
    return 1;
  }

  WelfareProblem problem;
  problem.graph = &graph.value();
  problem.budgets = budgets;
  problem.params = params.MoveValue();
  const std::string model = flags.GetString("model", "ic");
  if (model == "lt") {
    problem.model = DiffusionModel::kLinearThreshold;
  } else if (model != "ic") {
    std::fprintf(stderr, "uic_run: unknown --model '%s'\n", model.c_str());
    return 1;
  }

  // --- sweep mode ---------------------------------------------------------
  if (sweep_mode) return RunSweep(flags, problem, options);

  // --- solve ------------------------------------------------------------
  Result<std::unique_ptr<Solver>> solver =
      SolverRegistry::CreateOrError(algorithm, options);
  if (!solver.ok()) {
    std::fprintf(stderr, "uic_run: %s\n", solver.status().ToString().c_str());
    return 1;
  }
  Result<AllocationResult> solved = solver.value()->Solve(problem);
  if (!solved.ok()) {
    std::fprintf(stderr, "uic_run: %s\n", solved.status().ToString().c_str());
    return 1;
  }
  const AllocationResult& result = solved.value();

  // --- report -----------------------------------------------------------
  std::string setting = "b=";
  for (size_t i = 0; i < budgets.size(); ++i) {
    if (i) setting += ',';
    setting += std::to_string(budgets[i]);
  }

  // --no-timing pins the report for golden end-to-end tests (wall-clock is
  // the only nondeterministic column).
  const bool timing = !flags.GetBool("no-timing");
  TablePrinter table({"algorithm", "setting", "welfare", "std error",
                      "seconds", "rr sets", "seed nodes"});
  if (problem.params.has_value()) {
    const size_t mc = static_cast<size_t>(flags.GetInt("mc", 400));
    const uint64_t eval_seed =
        static_cast<uint64_t>(flags.GetInt("eval-seed", 999));
    const SuiteRow row =
        EvaluateRow(algorithm, setting, graph.value(), result,
                    *problem.params, mc, eval_seed, options.workers);
    table.AddRow({row.algorithm, row.setting,
                  TablePrinter::Num(row.welfare, 2),
                  TablePrinter::Num(row.welfare_std_error, 2),
                  timing ? TablePrinter::Num(row.seconds, 3)
                         : std::string("-"),
                  TablePrinter::Int(static_cast<long long>(row.num_rr_sets)),
                  TablePrinter::Int(static_cast<long long>(
                      result.allocation.num_seed_nodes()))});
  } else {
    table.AddRow({algorithm, setting, "(no params)", "-",
                  timing ? TablePrinter::Num(result.seconds, 3)
                         : std::string("-"),
                  TablePrinter::Int(static_cast<long long>(result.num_rr_sets)),
                  TablePrinter::Int(static_cast<long long>(
                      result.allocation.num_seed_nodes()))});
  }
  table.Print();
  if (result.objective != 0.0) {
    std::printf("solver-reported objective: %.2f\n", result.objective);
  }

  const std::string save_path = flags.GetString("save-allocation");
  if (!save_path.empty()) {
    const Status st = SaveAllocation(result.allocation, save_path);
    if (!st.ok()) {
      std::fprintf(stderr, "uic_run: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("allocation saved to %s\n", save_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace uic

int main(int argc, char** argv) { return uic::Run(argc, argv); }
