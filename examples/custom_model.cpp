// Scenario: plugging your own data into the library.
//
//  * load a graph from a SNAP-style edge list (here: written on the fly);
//  * define a custom supermodular valuation, prices and per-item noise;
//  * verify the complementarity assumptions (monotone + supermodular) that
//    bundleGRD's guarantee needs;
//  * derive the Com-IC GAP parameters implied by the utility configuration
//    (Eq. 12) — useful to sanity-check against adoption data;
//  * run the full pipeline and inspect per-node adoptions of one world.
#include <cstdio>

#include "diffusion/uic_model.h"
#include "graph/loaders.h"
#include "items/gap.h"
#include "items/supermodular_generators.h"
#include "items/value_function.h"
#include "solver/registry.h"

int main() {
  using namespace uic;

  // --- 1. Graph from an edge list (u v p per line) ---------------------
  const std::string edge_list =
      "# toy collaboration network\n"
      "0 1 0.8\n0 2 0.8\n1 3 0.6\n2 3 0.6\n3 4 0.9\n4 5 0.9\n"
      "5 6 0.5\n3 6 0.4\n6 7 0.7\n2 7 0.3\n";
  EdgeListOptions options;
  options.read_probability = true;
  auto loaded = ParseEdgeList(edge_list, options);
  if (!loaded.ok()) {
    std::printf("failed to parse graph: %s\n",
                loaded.status().ToString().c_str());
    return 1;
  }
  const Graph graph = loaded.MoveValue();
  std::printf("loaded %s\n", graph.Summary().c_str());

  // --- 2. Custom items: a camera (i0), a lens (i1), a tripod (i2) ------
  // Valuation via explicit target utilities (value = utility + price):
  // camera is mildly profitable alone; lens and tripod only pay off in
  // combination with it.
  const std::vector<double> prices = {400.0, 150.0, 60.0};
  const std::vector<double> utilities = {
      /* {}          */ 0.0,
      /* {cam}       */ 10.0,
      /* {lens}      */ -40.0,
      /* {cam,lens}  */ 45.0,
      /* {tripod}    */ -20.0,
      /* {cam,tri}   */ 20.0,
      /* {lens,tri}  */ -55.0,
      /* {all}       */ 80.0,
  };
  auto value = MakeValueFromUtilities(3, prices, utilities);

  // --- 3. Verify the assumptions behind the (1-1/e-eps) guarantee ------
  std::printf("valuation monotone:     %s\n",
              IsMonotone(*value) ? "yes" : "NO");
  std::printf("valuation supermodular: %s\n",
              IsSupermodular(*value) ? "yes" : "NO");

  NoiseModel noise({ItemNoise::Gaussian(15.0), ItemNoise::Gaussian(8.0),
                    ItemNoise::Gaussian(5.0)});
  const ItemParams params(value, prices, noise);

  // --- 4. Implied GAP adoption probabilities (Eq. 12) ------------------
  std::printf("\nimplied adoption probabilities:\n");
  std::printf("  q(lens | nothing)    = %.3f\n",
              GapProbability(params, 1, kEmptyItemSet));
  std::printf("  q(lens | camera)     = %.3f\n",
              GapProbability(params, 1, ItemBit(0)));
  std::printf("  q(tripod | cam+lens) = %.3f\n",
              GapProbability(params, 2, ItemBit(0) | ItemBit(1)));

  // --- 5. Allocate and diffuse ------------------------------------------
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  problem.budgets = {2, 2, 1};
  SolverOptions solver_options;
  solver_options.eps = 0.3;
  solver_options.seed = 5;
  Result<AllocationResult> solved =
      SolverRegistry::Create("bundle-grd", solver_options)->Solve(problem);
  if (!solved.ok()) {
    std::printf("solve failed: %s\n", solved.status().ToString().c_str());
    return 1;
  }
  const AllocationResult& grd = solved.value();
  const WelfareEstimate est =
      EstimateWelfare(graph, grd.allocation, params, 5000, 7);
  std::printf("\nbundleGRD welfare: %.1f ± %.1f "
              "(%.1f adopters, %.1f adoptions per world)\n",
              est.welfare, est.std_error, est.avg_adopters, est.avg_adoptions);

  // --- 6. Inspect one concrete possible world --------------------------
  Rng rng(123);
  const std::vector<double> sampled_noise = params.noise().Sample(rng);
  const UtilityTable table(params, sampled_noise);
  UicSimulator sim(graph);
  std::vector<std::pair<NodeId, ItemSet>> adoptions;
  sim.RunDetailed(grd.allocation, table, rng, &adoptions);
  std::printf("\none sampled world (noise: cam %+.1f, lens %+.1f, "
              "tripod %+.1f):\n",
              sampled_noise[0], sampled_noise[1], sampled_noise[2]);
  for (const auto& [v, a] : adoptions) {
    std::printf("  node %u adopts %s (utility %+.1f)\n", v,
                ItemSetToString(a).c_str(), table.Utility(a));
  }
  return 0;
}
