// Scenario: an "influence oracle" service. A network host receives budget
// queries ("give me the best k seeds") for many different k and must answer
// instantly — without recomputing seeds per query.
//
// PRIMA's prefix-preserving property (Definition 1) makes this a one-time
// precomputation: a single ranked seed list whose every prefix of size k is
// a (1 − 1/e − ε)-approximation for budget k. This is exactly the property
// bundleGRD relies on for multi-item allocation, exposed here as a
// standalone service.
#include <cstdio>

#include "diffusion/ic_model.h"
#include "exp/networks.h"
#include "rrset/prima.h"

int main() {
  using namespace uic;

  const Graph graph = MakeDoubanBookLike(/*seed=*/3, /*scale=*/0.5);
  std::printf("network: %s\n", graph.Summary().c_str());

  // Precompute ONE ranking that serves every budget in [1, 100].
  const std::vector<uint32_t> budgets = {100, 50, 25, 10, 5, 1};
  const ImResult oracle = Prima(graph, budgets, /*eps=*/0.5, /*ell=*/1.0,
                                /*seed=*/17);
  std::printf("oracle precomputed: %zu ranked seeds, %zu RR sets, %.2f s\n\n",
              oracle.seeds.size(), oracle.num_rr_sets,
              oracle.sampling_seconds + oracle.selection_seconds);

  // Serve queries: any prefix is a guaranteed-quality answer.
  std::printf("%8s %16s %20s\n", "query k", "spread(top-k)", "spread per seed");
  for (uint32_t k : {1u, 5u, 10u, 25u, 50u, 100u}) {
    const std::vector<NodeId> seeds(oracle.seeds.begin(),
                                    oracle.seeds.begin() + k);
    const double spread = EstimateSpread(graph, seeds, 2000, 55);
    std::printf("%8u %16.1f %20.2f\n", k, spread, spread / k);
  }

  std::printf(
      "\nEvery row reuses the same precomputed ranking; no per-query seed\n"
      "selection. A plain IMM ranking computed for k=100 would carry no\n"
      "guarantee for its smaller prefixes.\n");
  return 0;
}
