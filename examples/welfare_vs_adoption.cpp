// Scenario: why maximize *welfare* instead of raw adoption count?
//
// The classic IM objective (expected number of adoptions) and the paper's
// social-welfare objective can disagree: flooding the network with a
// barely-profitable item maximizes adoptions, while seeding a
// high-synergy bundle maximizes the utility users actually enjoy. This
// example constructs such a configuration and reports both metrics for
// both strategies, illustrating the paper's motivation (§1, §3.3).
#include <cstdio>

#include "diffusion/uic_model.h"
#include "exp/networks.h"
#include "exp/suite.h"
#include "items/supermodular_generators.h"

int main() {
  using namespace uic;

  const Graph graph = MakeFlixsterLike(/*seed=*/11, /*scale=*/0.5);
  std::printf("network: %s\n\n", graph.Summary().c_str());

  // Item 0: cheap gadget, tiny utility (+0.05), adopted by everyone who
  // hears of it and cheap to seed widely. Items 1+2: a premium pair,
  // deeply unprofitable alone, +4 together (supermodular), but expensive
  // to seed (limited stock). Utility masks are ordered {∅, 0, 1, 01, 2,
  // 02, 12, 012}.
  const std::vector<double> prices = {1.0, 30.0, 20.0};
  const std::vector<double> utilities = {0.0,   0.05, -3.0, -2.9,
                                         -2.0, -1.9,  4.0,  9.3};
  auto value = MakeValueFromUtilities(3, prices, utilities);
  const ItemParams params(value, prices,
                          NoiseModel::IidGaussian(3, 0.05));

  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  SolverOptions options;
  options.seed = 3;
  // Strategy A: blanket the network with the cheap gadget (200 seeds).
  problem.budgets = {200, 0, 0};
  const AllocationResult gadget = MustSolve("bundle-grd", problem, options);
  // Strategy B: seed the premium bundle on a small influential set (5).
  problem.budgets = {0, 5, 5};
  const AllocationResult bundle = MustSolve("bundle-grd", problem, options);

  std::printf("%-22s %14s %14s\n", "strategy", "E[adopters]",
              "E[welfare]");
  for (const auto& [name, r] :
       {std::pair<const char*, const AllocationResult*>{
            "A: gadget only", &gadget},
        {"B: premium bundle", &bundle}}) {
    const WelfareEstimate w =
        EstimateWelfare(graph, r->allocation, params, 600, 77);
    std::printf("%-22s %14.1f %14.1f\n", name, w.avg_adopters, w.welfare);
  }

  std::printf(
      "\nStrategy A wins on the classic IM objective (active nodes); strategy B wins on welfare.\n"
      "A host optimizing adoption count would pick A and leave most of\n"
      "the attainable consumer surplus on the table — the gap WelMax\n"
      "(and bundleGRD) closes.\n");
  return 0;
}
