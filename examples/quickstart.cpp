// Quickstart: build a network, define complementary items, run bundleGRD
// through the unified Solver API, and estimate the expected social welfare
// of the resulting allocation.
//
// This mirrors the end-to-end pipeline of the paper: a graph with
// weighted-cascade influence probabilities, a supermodular valuation with
// additive prices and zero-mean Gaussian noise, the budget-constrained
// bundleGRD allocation (which never looks at the utilities), and
// Monte-Carlo welfare estimation under the UIC diffusion model. Any other
// registered algorithm is one string away (`SolverRegistry::ListSolvers`).
#include <cstdio>

#include "diffusion/uic_model.h"
#include "exp/configs.h"
#include "graph/generators.h"
#include "solver/registry.h"

int main() {
  using namespace uic;

  // 1. A synthetic social network with weighted-cascade probabilities.
  Graph graph = GeneratePreferentialAttachment(/*n=*/5000, /*out_per_node=*/5,
                                               /*undirected=*/false,
                                               /*seed=*/42);
  graph.ApplyWeightedCascade();
  std::printf("network: %s\n", graph.Summary().c_str());

  // 2. The problem: two complementary items (Table 3, Configuration 1 —
  // both individually break-even but worth +1 together), 30 seeds each.
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = MakeTwoItemConfig12();
  problem.budgets = {30, 30};

  // 3. bundleGRD by name: one PRIMA ranking, every item seeded on its
  // prefix. Solve validates the problem and returns a Result instead of
  // crashing on malformed input.
  SolverOptions options;
  options.eps = 0.5;
  options.seed = 7;
  auto solver = SolverRegistry::Create("bundle-grd", options);
  Result<AllocationResult> solved = solver->Solve(problem);
  if (!solved.ok()) {
    std::printf("solve failed: %s\n", solved.status().ToString().c_str());
    return 1;
  }
  const AllocationResult& grd = solved.value();
  std::printf("bundleGRD: %zu seed nodes, %zu RR sets, %.2f s\n",
              grd.allocation.num_seed_nodes(), grd.num_rr_sets, grd.seconds);

  // 4. Estimate expected social welfare (and compare with item-disj).
  const WelfareEstimate w_grd =
      EstimateWelfare(graph, grd.allocation, *problem.params,
                      /*num_simulations=*/500, /*seed=*/99);
  Result<AllocationResult> disj_solved =
      SolverRegistry::Create("item-disj", options)->Solve(problem);
  if (!disj_solved.ok()) {
    std::printf("solve failed: %s\n",
                disj_solved.status().ToString().c_str());
    return 1;
  }
  const AllocationResult& disj = disj_solved.value();
  const WelfareEstimate w_disj =
      EstimateWelfare(graph, disj.allocation, *problem.params, 500, 99);

  std::printf("expected welfare  bundleGRD: %.1f ± %.1f\n", w_grd.welfare,
              w_grd.std_error);
  std::printf("expected welfare  item-disj: %.1f ± %.1f\n", w_disj.welfare,
              w_disj.std_error);
  std::printf("bundleGRD / item-disj = %.2fx\n",
              w_grd.welfare / (w_disj.welfare > 0 ? w_disj.welfare : 1.0));
  return 0;
}
