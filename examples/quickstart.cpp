// Quickstart: build a network, define complementary items, run bundleGRD,
// and estimate the expected social welfare of the resulting allocation.
//
// This mirrors the end-to-end pipeline of the paper: a graph with
// weighted-cascade influence probabilities, a supermodular valuation with
// additive prices and zero-mean Gaussian noise, the budget-constrained
// bundleGRD allocation (which never looks at the utilities), and
// Monte-Carlo welfare estimation under the UIC diffusion model.
#include <cstdio>

#include "core/baselines.h"
#include "core/bundle_grd.h"
#include "diffusion/uic_model.h"
#include "exp/configs.h"
#include "graph/generators.h"

int main() {
  using namespace uic;

  // 1. A synthetic social network with weighted-cascade probabilities.
  Graph graph = GeneratePreferentialAttachment(/*n=*/5000, /*out_per_node=*/5,
                                               /*undirected=*/false,
                                               /*seed=*/42);
  graph.ApplyWeightedCascade();
  std::printf("network: %s\n", graph.Summary().c_str());

  // 2. Two complementary items (Table 3, Configuration 1): both items are
  // individually break-even but worth +1 together.
  ItemParams params = MakeTwoItemConfig12();

  // 3. Budgets: 30 seeds for each item.
  const std::vector<uint32_t> budgets = {30, 30};

  // 4. bundleGRD: one PRIMA ranking, every item seeded on its prefix.
  AllocationResult grd = BundleGrd(graph, budgets, /*eps=*/0.5, /*ell=*/1.0,
                                   /*seed=*/7);
  std::printf("bundleGRD: %zu seed nodes, %zu RR sets, %.2f s\n",
              grd.allocation.num_seed_nodes(), grd.num_rr_sets, grd.seconds);

  // 5. Estimate expected social welfare (and compare with item-disj).
  const WelfareEstimate w_grd =
      EstimateWelfare(graph, grd.allocation, params, /*num_simulations=*/500,
                      /*seed=*/99);
  AllocationResult disj = ItemDisjoint(graph, budgets, 0.5, 1.0, 7);
  const WelfareEstimate w_disj =
      EstimateWelfare(graph, disj.allocation, params, 500, 99);

  std::printf("expected welfare  bundleGRD: %.1f ± %.1f\n", w_grd.welfare,
              w_grd.stderr_);
  std::printf("expected welfare  item-disj: %.1f ± %.1f\n", w_disj.welfare,
              w_disj.stderr_);
  std::printf("bundleGRD / item-disj = %.2fx\n",
              w_grd.welfare / (w_disj.welfare > 0 ? w_disj.welfare : 1.0));
  return 0;
}
