// Scenario: a marketer plans a viral campaign for a console, a controller
// and three games — the paper's real (eBay-learned) PlayStation
// configuration of Table 5. Only bundles with the console, the controller
// and at least two games are profitable for users, so item-by-item seeding
// earns nothing; the campaign must exploit complementarity.
//
// This example compares three allocation strategies under a fixed total
// seed budget split 30/30/20/10/10 and reports welfare, adoptions, and the
// block structure that explains *why* bundleGRD wins.
#include <cstdio>

#include "diffusion/uic_model.h"
#include "exp/configs.h"
#include "exp/networks.h"
#include "exp/suite.h"
#include "welfare/block_accounting.h"

int main() {
  using namespace uic;

  const Graph graph = MakeDoubanMovieLike(/*seed=*/7, /*scale=*/0.5);
  std::printf("network: %s\n", graph.Summary().c_str());

  const ItemParams params = MakeRealPlaystationParams();
  const auto& names = RealPlaystationItemNames();

  // Budget: 200 seeds total, skewed toward the console and controller.
  const std::vector<uint32_t> budgets = {60, 60, 40, 20, 20};
  std::printf("budgets: ");
  for (ItemId i = 0; i < budgets.size(); ++i) {
    std::printf("%s=%u ", names[i].c_str(), budgets[i]);
  }
  std::printf("\n\n");

  // The block decomposition under the deterministic utilities shows which
  // bundle carries the welfare: {ps, c, g1, g2} forms the first profitable
  // block; g3 joins on top.
  const UtilityTable det_table(params);
  const BlockDecomposition blocks = GenerateBlocks(det_table, budgets);
  std::printf("profitable itemset I* = %s (det. utility %+.1f)\n",
              ItemSetToString(blocks.optimal_itemset).c_str(),
              det_table.Utility(blocks.optimal_itemset));
  for (size_t i = 0; i < blocks.num_blocks(); ++i) {
    std::printf("  block %zu: %s  Δ=%+.1f  effective budget %u\n", i + 1,
                ItemSetToString(blocks.blocks[i]).c_str(), blocks.deltas[i],
                blocks.effective_budgets[i]);
  }

  // Three strategies, all through the unified solver registry.
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  problem.budgets = budgets;
  SolverOptions options;
  options.seed = 1;
  const AllocationResult grd = MustSolve("bundle-grd", problem, options);
  const AllocationResult idisj = MustSolve("item-disj", problem, options);
  const AllocationResult bdisj = MustSolve("bundle-disj", problem, options);

  std::printf("\n%-12s %12s %12s %12s\n", "strategy", "welfare",
              "adopters", "time(ms)");
  for (const auto& [name, r] :
       {std::pair<const char*, const AllocationResult*>{"bundleGRD", &grd},
        {"item-disj", &idisj},
        {"bundle-disj", &bdisj}}) {
    const WelfareEstimate w =
        EstimateWelfare(graph, r->allocation, params, 400, 99);
    std::printf("%-12s %12.1f %12.1f %12.1f\n", name, w.welfare,
                w.avg_adopters, r->seconds * 1e3);
  }

  std::printf(
      "\nitem-disj earns ~0: no single PlayStation item is worth its "
      "price.\nbundleGRD seeds whole bundles on the most influential "
      "prefix and lets\ncomplementarity + propagation do the rest.\n");
  return 0;
}
