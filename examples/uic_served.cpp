// uic_served: the long-running welfare-query daemon (src/serve/).
//
// Speaks the JSON-lines protocol of serve/protocol.h over stdin/stdout
// (pipe mode, the default — what the golden serve-session test scripts)
// or a loopback TCP socket (--port; 0 picks an ephemeral port, printed on
// stdout so harnesses can connect). Sessions, warm RR pools, admission
// control, and the determinism contract all live in serve/server.h; this
// binary is only flags, signals, and the transport.
//
//   uic_served < session.jsonl > responses.jsonl
//   uic_served --port 0 --workers 4 --concurrency 2 &
//
// SIGINT/SIGTERM begin a graceful drain: in-flight requests finish and
// are answered, queued ones fail with "unavailable", readers stop within
// the poll interval, and the process exits 0.
//
// Exit codes: 0 clean (EOF, `shutdown` verb, or signal-initiated drain),
// 1 transport/setup failure, 2 usage error.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/thread_pool.h"
#include "exp/flags.h"
#include "obs/trace.h"
#include "serve/net.h"
#include "serve/server.h"

namespace uic {
namespace {

constexpr const char* kUsage =
    "usage: uic_served [options] < requests.jsonl   (pipe mode)\n"
    "       uic_served --port N [options]           (loopback TCP mode)\n"
    "\n"
    "  --port N            listen on 127.0.0.1:N (0 = ephemeral, printed)\n"
    "  --workers N         shared thread-pool size, 0 = hardware (default 0)\n"
    "  --concurrency N     simultaneous admitted requests    (default 2)\n"
    "  --queue-capacity N  queued requests before shedding   (default 16)\n"
    "  --max-graphs N      graph sessions pinned at once     (default 8)\n"
    "  --max-params N      param sessions pinned at once     (default 32)\n"
    "  --warm-entries N    warm RR-pool LRU bound            (default 16)\n"
    "  --no-timing         omit wall-clock response fields (golden mode)\n"
    "  --metrics-port N    also serve the Prometheus text exposition over\n"
    "                      HTTP on 127.0.0.1:N (0 = ephemeral, printed)\n"
    "  --trace-out FILE    record JSONL span trees to FILE (off by default)\n"
    "  --testing           enable the set_failpoints verb (fault injection;\n"
    "                      never in production). The UIC_FAILPOINTS env var\n"
    "                      (common/failpoint.h grammar) arms failpoints\n"
    "                      regardless of this flag.\n"
    "\n"
    "SIGINT/SIGTERM drain in-flight requests and exit 0.\n";

/// Signal flag shared with the server (the `shutdown` verb sets it too).
std::atomic<bool> g_stop{false};

extern "C" void OnSignal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

/// Positive integer flag with a usage error instead of a CHECK abort.
bool GetSize(const Flags& flags, const char* name, long def, size_t* out) {
  const long v = flags.GetInt(name, def);
  if (v <= 0) {
    std::fprintf(stderr, "uic_served: --%s must be positive\n", name);
    return false;
  }
  *out = static_cast<size_t>(v);
  return true;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.GetBool("help")) {
    std::fputs(kUsage, stderr);
    return 0;
  }

  const long workers = flags.GetInt("workers", 0);
  if (workers < 0) {
    std::fprintf(stderr, "uic_served: --workers must be >= 0\n");
    return 2;
  }
  if (workers > 0) ThreadPool::ConfigureShared(static_cast<unsigned>(workers));

  serve::ServerOptions options;
  size_t concurrency = 0;
  if (!GetSize(flags, "concurrency", 2, &concurrency) ||
      !GetSize(flags, "queue-capacity", 16, &options.queue_capacity) ||
      !GetSize(flags, "max-graphs", 8, &options.max_graphs) ||
      !GetSize(flags, "max-params", 32, &options.max_params) ||
      !GetSize(flags, "warm-entries", 16, &options.warm_entries)) {
    return 2;
  }
  options.concurrency = static_cast<unsigned>(concurrency);
  options.include_timing = !flags.GetBool("no-timing");
  options.testing = flags.GetBool("testing");

  // No SA_RESTART: a signal must interrupt blocked reads so the drain
  // starts immediately (the channel layer retries EINTR everywhere it is
  // benign). SIGPIPE off: a vanished client is a write error, not death.
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  const std::string trace_out = flags.GetString("trace-out");
  if (!trace_out.empty() &&
      !obs::TraceRecorder::Global().EnableFile(trace_out)) {
    std::fprintf(stderr, "uic_served: cannot open --trace-out %s\n",
                 trace_out.c_str());
    return 2;
  }

  serve::Server server(options, &g_stop);

  // The metrics endpoint rides on its own listener + BackgroundThread so
  // a scrape can never queue behind (or be shed by) request admission.
  serve::TcpListener metrics_listener;
  std::unique_ptr<BackgroundThread> metrics_thread;
  const long metrics_port = flags.GetInt("metrics-port", -1);
  if (metrics_port >= 0) {
    if (metrics_port > 65535) {
      std::fprintf(stderr,
                   "uic_served: --metrics-port must be in [0, 65535]\n");
      return 2;
    }
    Result<serve::TcpListener> listener =
        serve::TcpListener::Listen(static_cast<uint16_t>(metrics_port));
    if (!listener.ok()) {
      std::fprintf(stderr, "uic_served: %s\n",
                   listener.status().ToString().c_str());
      return 1;
    }
    metrics_listener = listener.MoveValue();
    std::fprintf(stderr, "uic_served: metrics on 127.0.0.1:%u\n",
                 static_cast<unsigned>(metrics_listener.port()));
    metrics_thread = std::make_unique<BackgroundThread>([&server,
                                                         &metrics_listener]() {
      const Status status = server.ServeMetricsHttp(metrics_listener);
      if (!status.ok()) {
        std::fprintf(stderr, "uic_served: metrics endpoint: %s\n",
                     status.ToString().c_str());
      }
    });
  }
  struct TraceFlusher {
    std::unique_ptr<BackgroundThread>* thread;
    ~TraceFlusher() {
      g_stop.store(true, std::memory_order_relaxed);
      if (*thread != nullptr) (*thread)->Join();
      obs::TraceRecorder::Global().Disable();
    }
  } flusher{&metrics_thread};

  const long port = flags.GetInt("port", -1);
  if (port >= 0) {
    if (port > 65535) {
      std::fprintf(stderr, "uic_served: --port must be in [0, 65535]\n");
      return 2;
    }
    Result<serve::TcpListener> listener =
        serve::TcpListener::Listen(static_cast<uint16_t>(port));
    if (!listener.ok()) {
      std::fprintf(stderr, "uic_served: %s\n",
                   listener.status().ToString().c_str());
      return 1;
    }
    std::printf("uic_served: listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(listener.value().port()));
    std::fflush(stdout);
    const Status status = server.ServeTcp(listener.value());
    if (!status.ok()) {
      std::fprintf(stderr, "uic_served: %s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }

  // Pipe mode: requests on stdin, responses on stdout, nothing else on
  // stdout (golden sessions compare it byte-for-byte).
  serve::FdLineChannel channel(/*read_fd=*/0, /*write_fd=*/1);
  server.ServePipe(channel);
  return 0;
}

}  // namespace
}  // namespace uic

int main(int argc, char** argv) { return uic::Run(argc, argv); }
