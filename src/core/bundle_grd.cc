#include "core/bundle_grd.h"

#include "common/check.h"
#include "common/timer.h"
#include "rrset/prima.h"

namespace uic {

AllocationResult BundleGrd(const Graph& graph,
                           const std::vector<uint32_t>& budgets, double eps,
                           double ell, uint64_t seed, unsigned workers,
                           DiffusionModel model, RrOptions rr_options) {
  WallTimer timer;
  AllocationResult result;
  if (budgets.empty()) return result;

  rr_options.linear_threshold |= model == DiffusionModel::kLinearThreshold;

  // Line 2: one prefix-preserving ranking for the maximum budget.
  ImResult prima = Prima(graph, budgets, eps, ell, seed, workers, {},
                         rr_options);
  result.num_rr_sets = prima.num_rr_sets;
  result.ranking = prima.seeds;

  // Lines 3-5: every item gets the top-b_i prefix.
  for (ItemId i = 0; i < budgets.size(); ++i) {
    const size_t bi = std::min<size_t>(budgets[i], prima.seeds.size());
    for (size_t r = 0; r < bi; ++r) {
      result.allocation.AddItem(prima.seeds[r], i);
    }
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace uic
