// The allocation baselines of §4.3.1.2: item-disj and bundle-disj.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bundle_grd.h"
#include "items/params.h"

namespace uic {

/// \brief item-disj: one item per seed node.
///
/// Selects Σ_i b_i seeds with a single IMM invocation, then walks items in
/// non-increasing budget order assigning each item the next b_i unused
/// nodes. Never bundles, so it forgoes supermodularity but still benefits
/// from propagation when single items have positive utility.
AllocationResult ItemDisjoint(const Graph& graph,
                              const std::vector<uint32_t>& budgets,
                              double eps, double ell, uint64_t seed,
                              unsigned workers = 0,
                              RrOptions rr_options = {});

/// \brief bundle-disj: bundles on disjoint seed sets.
///
/// Orders items by non-increasing budget and repeatedly extracts a
/// minimum-size itemset with non-negative *deterministic* utility (a
/// "bundle"); each bundle B is allocated to a fresh set of
/// b_B = min_{i∈B} b_i seeds (selected by IMM, excluding already-used
/// nodes). Remaining budgets are recycled onto existing bundles not
/// containing the item, and any final surplus is seeded with fresh IMM
/// seeds. Requires the utility configuration (unlike bundleGRD).
AllocationResult BundleDisjoint(const Graph& graph,
                                const std::vector<uint32_t>& budgets,
                                const ItemParams& params, double eps,
                                double ell, uint64_t seed,
                                unsigned workers = 0,
                                RrOptions rr_options = {});

}  // namespace uic
