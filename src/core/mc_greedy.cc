#include "core/mc_greedy.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"

namespace uic {

AllocationResult McGreedyAllocate(const Graph& graph,
                                  const std::vector<uint32_t>& budgets,
                                  const ItemParams& params,
                                  const McGreedyOptions& options) {
  WallTimer timer;
  AllocationResult result;
  const ItemId num_items = static_cast<ItemId>(budgets.size());
  UIC_CHECK_EQ(num_items, params.num_items());

  std::vector<NodeId> candidates = options.candidates;
  if (candidates.empty()) {
    candidates.resize(graph.num_nodes());
    for (NodeId v = 0; v < graph.num_nodes(); ++v) candidates[v] = v;
  }

  auto eval = [&](const Allocation& alloc) {
    return EstimateWelfare(graph, alloc, params,
                           options.simulations_per_eval, options.seed,
                           options.workers)
        .welfare;
  };

  std::vector<uint32_t> remaining(budgets);
  size_t total_budget = 0;
  for (uint32_t b : budgets) total_budget += b;

  // Plain greedy with FULL re-evaluation each round.
  //
  // NOTE: CELF-style lazy evaluation is deliberately NOT used. Lazy
  // pruning is only sound when marginal gains can never increase — i.e.
  // for submodular objectives. UIC welfare is neither submodular nor
  // supermodular (Theorem 1): allocating item i2 to a node that already
  // holds its complement i1 can have a *larger* gain than it had against
  // the empty allocation, so a stale heap entry may hide the true
  // maximum. Exhaustive re-evaluation keeps the greedy correct at
  // O(b · n · |I|) welfare estimations — fine for the small reference
  // instances this algorithm is meant for.
  Allocation current;
  double current_welfare = 0.0;
  std::vector<std::vector<bool>> taken(
      num_items, std::vector<bool>(graph.num_nodes(), false));

  for (size_t picked = 0; picked < total_budget; ++picked) {
    double best_gain = -1.0;
    NodeId best_node = 0;
    ItemId best_item = 0;
    bool found = false;
    for (NodeId v : candidates) {
      for (ItemId i = 0; i < num_items; ++i) {
        if (remaining[i] == 0 || taken[i][v]) continue;
        Allocation probe = current;
        probe.AddItem(v, i);
        const double gain = eval(probe) - current_welfare;
        if (!found || gain > best_gain) {
          best_gain = gain;
          best_node = v;
          best_item = i;
          found = true;
        }
      }
    }
    if (!found) break;
    current.AddItem(best_node, best_item);
    taken[best_item][best_node] = true;
    --remaining[best_item];
    current_welfare += best_gain;
  }

  result.allocation = current;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace uic
