#include "core/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/failpoint.h"

namespace uic {

Status SaveAllocation(const Allocation& allocation, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# node_id,itemset_hex\n";
  for (const auto& [v, items] : allocation.entries()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%u,%x\n", v, items);
    out << buf;
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<Allocation> LoadAllocation(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  Allocation allocation;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::IOError("missing comma at line " +
                             std::to_string(line_no));
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long node = std::strtoul(line.c_str(), &end, 10);
    if (end != line.c_str() + comma) {
      return Status::IOError("bad node id at line " + std::to_string(line_no));
    }
    const unsigned long items =
        std::strtoul(line.c_str() + comma + 1, &end, 16);
    if (end == line.c_str() + comma + 1 || errno != 0) {
      return Status::IOError("bad itemset at line " + std::to_string(line_no));
    }
    if (items == 0 || items > FullItemSet(kMaxItems)) {
      return Status::InvalidArgument("itemset out of range at line " +
                                     std::to_string(line_no));
    }
    allocation.Add(static_cast<NodeId>(node), static_cast<ItemSet>(items));
  }
  return allocation;
}

namespace {

// Reads one "<key> ..." line into `rest`, failing if the line is missing or
// its first token is not `key`. Comment lines ('#') are skipped.
Status ExpectKeyLine(std::istream& in, const std::string& key,
                     std::string* rest) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string head;
    tokens >> head;
    if (head != key) {
      return Status::IOError("expected '" + key + "' line, got '" + line +
                             "'");
    }
    std::getline(tokens, *rest);
    return Status::OK();
  }
  return Status::IOError("unexpected end of file, expected '" + key + "'");
}

Result<std::vector<double>> ParseDoubles(const std::string& text,
                                         size_t expected,
                                         const std::string& what) {
  std::istringstream in(text);
  std::vector<double> values;
  values.reserve(expected);
  double v;
  while (in >> v) values.push_back(v);
  if (!in.eof() || values.size() != expected) {
    return Status::IOError("expected " + std::to_string(expected) + " " +
                           what + " values, got " +
                           std::to_string(values.size()));
  }
  return values;
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %.17g", v);
  out->append(buf);
}

/// Failpoint hook for the loaders. error(...) fails the read outright;
/// short_io(n) re-points *stream at only the first n bytes of `file`,
/// simulating a truncated file — which the parsers must then surface as
/// IOError, never as a silently partial graph or parameter table.
Status ApplyLoadFailpoint(const char* site, const std::string& path,
                          std::ifstream& file, std::istringstream* truncated,
                          std::istream** stream) {
  const failpoint::Hit fp = UIC_FAILPOINT(site);
  failpoint::SleepFor(fp);
  if (fp.action == failpoint::Action::kError) {
    return Status::IOError("injected fault reading " + path);
  }
  if (fp.action == failpoint::Action::kShortIo) {
    std::ostringstream all;
    all << file.rdbuf();
    truncated->str(all.str().substr(0, fp.arg));
    *stream = truncated;
  }
  return Status::OK();
}

}  // namespace

Status SaveGraph(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# uic-graph v1\n";
  out << "nodes " << graph.num_nodes() << "\n";
  out << "edges " << graph.num_edges() << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto targets = graph.OutNeighbors(u);
    const auto probs = graph.OutProbs(u);
    for (size_t k = 0; k < targets.size(); ++k) {
      char buf[64];
      // 9 significant digits round-trips the float-typed probability.
      std::snprintf(buf, sizeof(buf), "%u %u %.9g\n", u, targets[k],
                    static_cast<double>(probs[k]));
      out << buf;
    }
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<Graph> LoadGraph(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open " + path);
  std::istringstream short_read;
  std::istream* stream = &file;
  UIC_RETURN_NOT_OK(ApplyLoadFailpoint("core.serialization.load_graph", path,
                                       file, &short_read, &stream));
  std::istream& in = *stream;
  std::string rest;
  if (Status s = ExpectKeyLine(in, "nodes", &rest); !s.ok()) return s;
  // Parse counts as signed so negatives fail validation instead of wrapping
  // through the unsigned extractor and truncating into the 32-bit NodeId.
  long long num_nodes;
  {
    std::istringstream tokens(rest);
    if (!(tokens >> num_nodes) || num_nodes < 0 ||
        num_nodes > std::numeric_limits<NodeId>::max()) {
      return Status::IOError("bad node count '" + rest + "'");
    }
  }
  if (Status s = ExpectKeyLine(in, "edges", &rest); !s.ok()) return s;
  long long num_edges;
  {
    std::istringstream tokens(rest);
    if (!(tokens >> num_edges) || num_edges < 0) {
      return Status::IOError("bad edge count '" + rest + "'");
    }
  }
  GraphBuilder builder(static_cast<NodeId>(num_nodes));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    long long u, v;
    double p;
    if (!(tokens >> u >> v >> p)) {
      return Status::IOError("bad edge line '" + line + "'");
    }
    if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes) {
      return Status::IOError("edge endpoint out of range in '" + line + "'");
    }
    // SaveGraph never emits self-loops; GraphBuilder would drop one
    // silently, so surface it as corruption here.
    if (u == v) {
      return Status::IOError("self-loop in '" + line + "'");
    }
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), p);
  }
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  // Compare the post-Build count so duplicate edge lines (which Build
  // dedupes) are caught, not just missing/extra lines.
  if (built.value().num_edges() != static_cast<size_t>(num_edges)) {
    return Status::IOError("edge count mismatch: header says " +
                           std::to_string(num_edges) + ", file has " +
                           std::to_string(built.value().num_edges()));
  }
  return built;
}

Status SaveItemParams(const ItemParams& params, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const ItemId k = params.num_items();
  const size_t table_size = size_t{1} << k;
  out << "# uic-itemparams v1\n";
  out << "items " << k << "\n";
  std::string values = "values";
  std::string prices = "prices";
  for (ItemSet s = 0; s < table_size; ++s) {
    AppendDouble(&values, params.value().Value(s));
    AppendDouble(&prices, params.price().Price(s));
  }
  out << values << "\n" << prices << "\n";
  for (ItemId i = 0; i < k; ++i) {
    const ItemNoise& n = params.noise().item(i);
    const char* kind = n.kind == ItemNoise::Kind::kZero       ? "zero"
                       : n.kind == ItemNoise::Kind::kGaussian ? "gaussian"
                                                              : "uniform";
    std::string noise_line = std::string("noise ") + kind;
    AppendDouble(&noise_line, n.param);
    out << noise_line << "\n";
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<ItemParams> LoadItemParams(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open " + path);
  std::istringstream short_read;
  std::istream* stream = &file;
  UIC_RETURN_NOT_OK(ApplyLoadFailpoint("core.serialization.load_params",
                                       path, file, &short_read, &stream));
  std::istream& in = *stream;
  std::string rest;
  if (Status s = ExpectKeyLine(in, "items", &rest); !s.ok()) return s;
  unsigned long k;
  {
    std::istringstream tokens(rest);
    if (!(tokens >> k) || k > kMaxItems) {
      return Status::IOError("bad item count '" + rest + "'");
    }
  }
  const size_t table_size = size_t{1} << k;
  if (Status s = ExpectKeyLine(in, "values", &rest); !s.ok()) return s;
  auto values = ParseDoubles(rest, table_size, "value");
  if (!values.ok()) return values.status();
  if (Status s = ExpectKeyLine(in, "prices", &rest); !s.ok()) return s;
  auto prices = ParseDoubles(rest, table_size, "price");
  if (!prices.ok()) return prices.status();
  std::vector<ItemNoise> noise;
  noise.reserve(k);
  for (unsigned long i = 0; i < k; ++i) {
    if (Status s = ExpectKeyLine(in, "noise", &rest); !s.ok()) return s;
    std::istringstream tokens(rest);
    std::string kind;
    double param;
    if (!(tokens >> kind >> param)) {
      return Status::IOError("bad noise line '" + rest + "'");
    }
    if (kind == "zero") {
      noise.push_back(ItemNoise::Zero());
    } else if (kind == "gaussian") {
      noise.push_back(ItemNoise::Gaussian(param));
    } else if (kind == "uniform") {
      noise.push_back(ItemNoise::Uniform(param));
    } else {
      return Status::IOError("unknown noise kind '" + kind + "'");
    }
  }
  return ItemParams(
      std::make_shared<TabularValueFunction>(static_cast<ItemId>(k),
                                             values.MoveValue()),
      std::make_shared<TabularPriceFunction>(static_cast<ItemId>(k),
                                             prices.MoveValue()),
      NoiseModel(std::move(noise)));
}

}  // namespace uic
