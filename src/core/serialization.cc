#include "core/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace uic {

Status SaveAllocation(const Allocation& allocation, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# node_id,itemset_hex\n";
  for (const auto& [v, items] : allocation.entries()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%u,%x\n", v, items);
    out << buf;
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<Allocation> LoadAllocation(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  Allocation allocation;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::IOError("missing comma at line " +
                             std::to_string(line_no));
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long node = std::strtoul(line.c_str(), &end, 10);
    if (end != line.c_str() + comma) {
      return Status::IOError("bad node id at line " + std::to_string(line_no));
    }
    const unsigned long items =
        std::strtoul(line.c_str() + comma + 1, &end, 16);
    if (end == line.c_str() + comma + 1 || errno != 0) {
      return Status::IOError("bad itemset at line " + std::to_string(line_no));
    }
    if (items == 0 || items > FullItemSet(kMaxItems)) {
      return Status::InvalidArgument("itemset out of range at line " +
                                     std::to_string(line_no));
    }
    allocation.Add(static_cast<NodeId>(node), static_cast<ItemSet>(items));
  }
  return allocation;
}

}  // namespace uic
