// Saving/loading seed allocations (CSV "node,itemset-hex" rows).
//
// Lets a computed allocation be reused across processes — e.g. run
// bundleGRD once on a big network, then evaluate welfare under several
// utility configurations in separate jobs.
#pragma once

#include <string>

#include "common/status.h"
#include "diffusion/allocation.h"

namespace uic {

/// Write `allocation` to `path` (overwrites). Format, one row per seed:
///   node_id,itemset_hex
Status SaveAllocation(const Allocation& allocation, const std::string& path);

/// Read an allocation previously written by SaveAllocation.
Result<Allocation> LoadAllocation(const std::string& path);

}  // namespace uic
