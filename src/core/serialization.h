// Saving/loading computed artifacts: seed allocations, graphs, and item
// parameters.
//
// Lets a computed allocation be reused across processes — e.g. run
// bundleGRD once on a big network, then evaluate welfare under several
// utility configurations in separate jobs. Graph and ItemParams round-trips
// let a full experiment setup (network + valuation + prices + noise) be
// frozen to disk and replayed elsewhere.
#pragma once

#include <string>

#include "common/status.h"
#include "diffusion/allocation.h"
#include "graph/graph.h"
#include "items/params.h"

namespace uic {

/// Write `allocation` to `path` (overwrites). Format, one row per seed:
///   node_id,itemset_hex
[[nodiscard]] Status SaveAllocation(const Allocation& allocation, const std::string& path);

/// Read an allocation previously written by SaveAllocation.
[[nodiscard]] Result<Allocation> LoadAllocation(const std::string& path);

/// Write `graph` to `path` (overwrites). Unlike SaveEdgeList, the format
/// carries an explicit node count, so graphs with zero edges (including the
/// empty graph) round-trip exactly.
[[nodiscard]] Status SaveGraph(const Graph& graph, const std::string& path);

/// Read a graph previously written by SaveGraph.
[[nodiscard]] Result<Graph> LoadGraph(const std::string& path);

/// Write `params` to `path` (overwrites). The value and price functions are
/// materialized into dense 2^k tables, so any ValueFunction/PriceFunction
/// implementation round-trips (as its tabular equivalent); the noise model
/// is stored per item as (kind, param).
[[nodiscard]] Status SaveItemParams(const ItemParams& params, const std::string& path);

/// Read item parameters previously written by SaveItemParams. The loaded
/// value/price functions are TabularValueFunction/TabularPriceFunction.
[[nodiscard]] Result<ItemParams> LoadItemParams(const std::string& path);

}  // namespace uic
