// Classic Monte-Carlo greedy allocation over (node, item) pairs.
//
// Picks, at each step, the pair with the largest marginal gain in
// *estimated expected welfare*. Unlike bundleGRD this needs the utility
// configuration and O(n·|I|·b) welfare estimations, so it only scales to
// small instances — it serves as a quality reference in tests and
// ablations (the role the MC greedy played for IM before RR-set
// algorithms).
//
// Deliberately NOT CELF-accelerated: lazy gain pruning requires marginal
// gains that never increase (submodularity), and UIC welfare is neither
// submodular nor supermodular (Theorem 1) — complementary items make a
// pair's gain *grow* once its partner is allocated, which breaks the
// lazy-heap invariant and yields provably wrong picks.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bundle_grd.h"
#include "diffusion/uic_model.h"
#include "items/params.h"

namespace uic {

struct McGreedyOptions {
  size_t simulations_per_eval = 200;  ///< MC samples per welfare estimate
  uint64_t seed = 1;
  unsigned workers = 0;
  /// Restrict candidate seed nodes (empty = all nodes). Pre-filtering to,
  /// say, the top-degree nodes makes the greedy usable on mid-size graphs.
  std::vector<NodeId> candidates;
};

/// \brief Lazy (CELF) greedy over node-item pairs under budget vector
/// `budgets`. Returns the allocation and its estimated welfare trace.
AllocationResult McGreedyAllocate(const Graph& graph,
                                  const std::vector<uint32_t>& budgets,
                                  const ItemParams& params,
                                  const McGreedyOptions& options = {});

}  // namespace uic
