// bundleGRD (Algorithm 1): the paper's main welfare-maximization
// allocation algorithm.
//
// bundleGRD selects one prefix-preserving seed ranking of length
// b = max_i b_i via PRIMA, then allocates every item i to the top-b_i
// nodes of that ranking. For mutually complementary items (supermodular
// valuation, additive price and noise), this achieves a
// (1 − 1/e − ε)-approximation to the optimal expected social welfare with
// probability ≥ 1 − 1/n^ℓ (Theorem 2) — remarkably, without ever looking
// at the valuations, prices, or noise distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "diffusion/allocation.h"
#include "graph/graph.h"
#include "rrset/imm.h"

namespace uic {

/// \brief Output of an allocation algorithm, with bookkeeping used by the
/// experiment harness (running time, RR-set memory proxy).
struct AllocationResult {
  Allocation allocation;
  double seconds = 0.0;       ///< wall-clock of the whole algorithm
  size_t num_rr_sets = 0;     ///< total RR sets generated (memory proxy)
  std::vector<NodeId> ranking;///< underlying seed ranking, when meaningful
  /// Objective value the solver itself reports, when it computes one (BDHS
  /// reports its externality-model benchmark welfare); 0 otherwise. The
  /// UIC welfare of `allocation` is always obtained via EstimateWelfare.
  double objective = 0.0;
};

/// Propagation model for seed selection (UIC results hold for any
/// triggering model, §5; IC and LT are provided).
enum class DiffusionModel { kIndependentCascade, kLinearThreshold };

/// \brief bundleGRD (Algorithm 1).
///
/// `budgets[i]` is item i's seed budget b_i. The allocation assigns item i
/// to the top-b_i nodes of the PRIMA ranking. Utilities are *not* inputs.
/// `rr_options` tunes the underlying RR sampling; selecting
/// `DiffusionModel::kLinearThreshold` implies LT sampling regardless of
/// `rr_options.linear_threshold`.
AllocationResult BundleGrd(const Graph& graph,
                           const std::vector<uint32_t>& budgets, double eps,
                           double ell, uint64_t seed, unsigned workers = 0,
                           DiffusionModel model =
                               DiffusionModel::kIndependentCascade,
                           RrOptions rr_options = {});

}  // namespace uic
