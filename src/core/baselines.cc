#include "core/baselines.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/timer.h"
#include "rrset/prima.h"

namespace uic {

namespace {

/// Item ids sorted by non-increasing budget (stable in item id).
std::vector<ItemId> ItemsByBudgetDesc(const std::vector<uint32_t>& budgets) {
  std::vector<ItemId> order(budgets.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    return budgets[a] > budgets[b];
  });
  return order;
}

}  // namespace

AllocationResult ItemDisjoint(const Graph& graph,
                              const std::vector<uint32_t>& budgets,
                              double eps, double ell, uint64_t seed,
                              unsigned workers, RrOptions rr_options) {
  WallTimer timer;
  AllocationResult result;
  size_t total = 0;
  for (uint32_t b : budgets) total += b;
  if (total == 0) return result;
  total = std::min<size_t>(total, graph.num_nodes());

  ImResult imm = Imm(graph, total, eps, ell, seed, workers, {}, rr_options);
  result.num_rr_sets = imm.num_rr_sets;
  result.ranking = imm.seeds;

  // Visit items in non-increasing budget order; each takes the next b_i
  // untaken nodes of the ranking.
  size_t cursor = 0;
  for (ItemId i : ItemsByBudgetDesc(budgets)) {
    for (uint32_t c = 0; c < budgets[i] && cursor < imm.seeds.size();
         ++c, ++cursor) {
      result.allocation.AddItem(imm.seeds[cursor], i);
    }
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

AllocationResult BundleDisjoint(const Graph& graph,
                                const std::vector<uint32_t>& budgets,
                                const ItemParams& params, double eps,
                                double ell, uint64_t seed,
                                unsigned workers, RrOptions rr_options) {
  WallTimer timer;
  AllocationResult result;
  UIC_CHECK_EQ(budgets.size(), params.num_items());

  std::vector<uint32_t> remaining(budgets);
  std::vector<NodeId> used;  // all seed nodes taken so far
  std::vector<ItemSet> bundles;
  std::vector<std::vector<NodeId>> bundle_seeds;
  uint64_t call_counter = 0;

  // Phase 1: repeatedly extract a minimum-size itemset with non-negative
  // deterministic utility among items with remaining budget; allocate it
  // to b_B = min_{i∈B} remaining_i fresh seeds.
  while (true) {
    ItemSet active = 0;
    for (ItemId i = 0; i < remaining.size(); ++i) {
      if (remaining[i] > 0) active |= ItemBit(i);
    }
    if (active == 0) break;

    ItemSet bundle = 0;
    uint32_t best_card = UINT32_MAX;
    ForEachSubset(active, [&](ItemSet s) {
      if (s == 0) return;
      if (params.DeterministicUtility(s) < 0.0) return;
      const uint32_t card = Cardinality(s);
      if (card < best_card || (card == best_card && s < bundle)) {
        best_card = card;
        bundle = s;
      }
    });
    if (bundle == 0) break;  // no non-negative bundle remains

    uint32_t bundle_budget = UINT32_MAX;
    ForEachItem(bundle,
                [&](ItemId i) { bundle_budget = std::min(bundle_budget, remaining[i]); });
    if (used.size() + bundle_budget > graph.num_nodes()) {
      bundle_budget =
          static_cast<uint32_t>(graph.num_nodes() - used.size());
      if (bundle_budget == 0) break;
    }

    ImResult imm = Imm(graph, bundle_budget, eps, ell,
                       seed + 0x9e37 * (++call_counter), workers, used,
                       rr_options);
    result.num_rr_sets += imm.num_rr_sets;
    std::vector<NodeId> seeds(imm.seeds.begin(),
                              imm.seeds.begin() +
                                  std::min<size_t>(bundle_budget,
                                                   imm.seeds.size()));
    for (NodeId v : seeds) {
      ForEachItem(bundle, [&](ItemId i) { result.allocation.AddItem(v, i); });
      used.push_back(v);
    }
    ForEachItem(bundle, [&](ItemId i) { remaining[i] -= bundle_budget; });
    bundles.push_back(bundle);
    bundle_seeds.push_back(std::move(seeds));
  }

  // Phase 2: recycle leftover budgets onto existing bundles that do not
  // contain the item (piggybacking on their seeds).
  for (ItemId i = 0; i < remaining.size(); ++i) {
    for (size_t bidx = 0; bidx < bundles.size() && remaining[i] > 0; ++bidx) {
      if (Contains(bundles[bidx], i)) continue;
      const auto& seeds = bundle_seeds[bidx];
      const size_t take = std::min<size_t>(remaining[i], seeds.size());
      for (size_t c = 0; c < take; ++c) {
        result.allocation.AddItem(seeds[c], i);
      }
      remaining[i] -= static_cast<uint32_t>(take);
    }
  }

  // Phase 3: any final surplus gets fresh IMM seeds of its own.
  for (ItemId i = 0; i < remaining.size(); ++i) {
    if (remaining[i] == 0) continue;
    uint32_t want = remaining[i];
    if (used.size() + want > graph.num_nodes()) {
      want = static_cast<uint32_t>(graph.num_nodes() - used.size());
    }
    if (want == 0) continue;
    ImResult imm = Imm(graph, want, eps, ell, seed + 0x9e37 * (++call_counter),
                       workers, used, rr_options);
    result.num_rr_sets += imm.num_rr_sets;
    for (size_t c = 0; c < want && c < imm.seeds.size(); ++c) {
      result.allocation.AddItem(imm.seeds[c], i);
      used.push_back(imm.seeds[c]);
    }
  }

  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace uic
