// Classic single-item Independent Cascade (IC) simulation (§2.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"
#include "graph/sampling_plan.h"

namespace uic {

/// \brief Reusable IC forward simulator (buffers amortized across runs).
///
/// With a forward-direction `SamplingPlan` (kIcBuckets) the simulator
/// tests out-edges by geometric skip-sampling instead of per-edge trials
/// — same cascade distribution, different RNG draw sequence (see
/// graph/sampling_plan.h). With `plan == nullptr` it runs the legacy
/// per-edge scan. The plan must be built for this graph and outlive the
/// simulator.
class IcSimulator {
 public:
  explicit IcSimulator(const Graph& graph,
                       const SamplingPlan* plan = nullptr);

  /// Run one cascade from `seeds`; returns the number of activated nodes.
  /// If `activated_out` is non-null it receives the activated node list.
  size_t RunOnce(const std::vector<NodeId>& seeds, Rng& rng,
                 std::vector<NodeId>* activated_out = nullptr);

 private:
  void TryActivate(NodeId v, std::vector<NodeId>* activated_out,
                   size_t* activated);

  const Graph& graph_;
  const SamplingPlan* plan_;
  std::vector<uint32_t> visited_epoch_;
  uint32_t epoch_ = 0;
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_;
};

/// \brief Monte-Carlo estimate of the influence spread σ(S).
///
/// Runs `num_simulations` cascades on the fixed stream grid (independent
/// deterministic RNG streams derived from `seed`); the result depends on
/// (`seed`, `kernel`) alone, `workers` only bounds concurrency. The
/// default kernel resolves to skip-sampling (one shared forward plan
/// across all streams); pass SamplingKernel::kScan for the legacy
/// per-edge draw sequence.
double EstimateSpread(const Graph& graph, const std::vector<NodeId>& seeds,
                      size_t num_simulations, uint64_t seed,
                      unsigned workers = 0,
                      SamplingKernel kernel = SamplingKernel::kAuto);

}  // namespace uic
