// Classic single-item Independent Cascade (IC) simulation (§2.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace uic {

/// \brief Reusable IC forward simulator (buffers amortized across runs).
class IcSimulator {
 public:
  explicit IcSimulator(const Graph& graph);

  /// Run one cascade from `seeds`; returns the number of activated nodes.
  /// If `activated_out` is non-null it receives the activated node list.
  size_t RunOnce(const std::vector<NodeId>& seeds, Rng& rng,
                 std::vector<NodeId>* activated_out = nullptr);

 private:
  const Graph& graph_;
  std::vector<uint32_t> visited_epoch_;
  uint32_t epoch_ = 0;
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_;
};

/// \brief Monte-Carlo estimate of the influence spread σ(S).
///
/// Runs `num_simulations` cascades on the fixed stream grid (independent
/// deterministic RNG streams derived from `seed`); the result depends on
/// `seed` alone, `workers` only bounds concurrency.
double EstimateSpread(const Graph& graph, const std::vector<NodeId>& seeds,
                      size_t num_simulations, uint64_t seed,
                      unsigned workers = 0);

}  // namespace uic
