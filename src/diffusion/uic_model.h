// The Utility-driven Independent Cascade (UIC) diffusion model (§3.2).
//
// A UIC diffusion proceeds as follows (Fig. 1):
//   * The per-item noise terms are sampled once at the start, fixing the
//     utility of every itemset for the whole diffusion (a *noise world*).
//   * At t=1 each seed node desires its allocated items and adopts the
//     utility-maximizing subset (ties → larger cardinality / union).
//   * At t>1, every node that adopted new items at t−1 tests its untested
//     out-edges (live w.p. p_uv, remembered for the whole diffusion); live
//     edges add the sender's adopted items to the receiver's desire set,
//     and the receiver adopts the utility-maximizing superset of its
//     current adoption within its desire set.
//   * Both desire and adoption are progressive (never shrink).
#pragma once

#include <vector>

#include "common/random.h"
#include "diffusion/allocation.h"
#include "graph/graph.h"
#include "items/utility_table.h"

namespace uic {

/// \brief Outcome of one UIC diffusion in one possible world.
struct UicOutcome {
  /// Sum of adopters' utilities Σ_v U_w(A_v) in this world.
  double welfare = 0.0;
  /// Number of nodes that adopted at least one item.
  size_t num_adopters = 0;
  /// Total item adoptions Σ_v |A_v|.
  size_t num_adoptions = 0;
};

/// \brief Reusable UIC forward simulator.
///
/// Buffers (desire/adoption/edge status) are epoch-stamped so repeated runs
/// on the same graph cost O(touched state), not O(n + m), per run.
class UicSimulator {
 public:
  explicit UicSimulator(const Graph& graph);

  /// Run one diffusion under a fixed noise world (`utilities`) with fresh
  /// edge randomness from `rng`. Returns aggregate outcome.
  UicOutcome Run(const Allocation& allocation, const UtilityTable& utilities,
                 Rng& rng);

  /// As Run(), but also exposes per-node final adoption sets for the nodes
  /// that adopted anything (pairs of node → itemset).
  UicOutcome RunDetailed(const Allocation& allocation,
                         const UtilityTable& utilities, Rng& rng,
                         std::vector<std::pair<NodeId, ItemSet>>* adoptions);

 private:
  ItemSet DesireOf(NodeId v) const {
    return node_epoch_[v] == epoch_ ? desire_[v] : kEmptyItemSet;
  }
  ItemSet AdoptionOf(NodeId v) const {
    return node_epoch_[v] == epoch_ ? adoption_[v] : kEmptyItemSet;
  }
  void Touch(NodeId v) {
    if (node_epoch_[v] != epoch_) {
      node_epoch_[v] = epoch_;
      desire_[v] = kEmptyItemSet;
      adoption_[v] = kEmptyItemSet;
    }
  }

  const Graph& graph_;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> node_epoch_;
  std::vector<ItemSet> desire_;
  std::vector<ItemSet> adoption_;
  std::vector<uint32_t> edge_epoch_;
  std::vector<uint8_t> edge_live_;
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_;
  std::vector<NodeId> touched_;
};

/// \brief Monte-Carlo estimate of expected social welfare ρ(𝒮) (§3.3).
///
/// Each simulation samples a fresh noise world and fresh edge world.
/// Deterministic in `seed` alone: simulations run on the fixed stream
/// grid of `ParallelForStreams`, so `workers` only affects wall-clock.
struct WelfareEstimate {
  double welfare = 0.0;        ///< mean of ρ_W over sampled worlds
  double std_error = 0.0;        ///< standard error of the mean
  double avg_adopters = 0.0;   ///< mean #nodes adopting ≥ 1 item
  double avg_adoptions = 0.0;  ///< mean Σ_v |A_v|
};

WelfareEstimate EstimateWelfare(const Graph& graph,
                                const Allocation& allocation,
                                const ItemParams& params,
                                size_t num_simulations, uint64_t seed,
                                unsigned workers = 0);

}  // namespace uic
