#include "diffusion/ic_model.h"

#include <atomic>
#include <memory>

#include "common/check.h"
#include "common/parallel.h"

namespace uic {

IcSimulator::IcSimulator(const Graph& graph, const SamplingPlan* plan)
    : graph_(graph), plan_(plan), visited_epoch_(graph.num_nodes(), 0) {
  if (plan_ != nullptr) {
    UIC_CHECK(plan_->direction() == SamplingPlan::Direction::kForward);
    UIC_CHECK(plan_->has_ic_buckets());
  }
}

void IcSimulator::TryActivate(NodeId v, std::vector<NodeId>* activated_out,
                              size_t* activated) {
  if (visited_epoch_[v] == epoch_) return;
  visited_epoch_[v] = epoch_;
  next_.push_back(v);
  ++*activated;
  if (activated_out) activated_out->push_back(v);
}

size_t IcSimulator::RunOnce(const std::vector<NodeId>& seeds, Rng& rng,
                            std::vector<NodeId>* activated_out) {
  ++epoch_;
  if (activated_out) activated_out->clear();
  frontier_.clear();
  size_t activated = 0;
  for (NodeId s : seeds) {
    if (visited_epoch_[s] == epoch_) continue;
    visited_epoch_[s] = epoch_;
    frontier_.push_back(s);
    ++activated;
    if (activated_out) activated_out->push_back(s);
  }
  while (!frontier_.empty()) {
    next_.clear();
    for (NodeId u : frontier_) {
      if (plan_ != nullptr && !plan_->IsGeneral(u)) {
        // Skip kernel: geometric jumps over each probability bucket of
        // u's out-adjacency (same cascade distribution as the scan; see
        // sampling_plan.h).
        for (const SamplingPlan::Bucket& b : plan_->Buckets(u)) {
          size_t i = rng.NextGeometric(b.log1p_neg_p);
          while (i < b.size) {
            TryActivate(b.nodes[i], activated_out, &activated);
            if (i + 1 >= b.size) break;  // no edges left: no closing draw
            i += 1 + rng.NextGeometric(b.log1p_neg_p);
          }
        }
        continue;
      }
      auto nbrs = graph_.OutNeighbors(u);
      auto probs = graph_.OutProbs(u);
      for (size_t k = 0; k < nbrs.size(); ++k) {
        const NodeId v = nbrs[k];
        if (visited_epoch_[v] == epoch_) continue;
        if (!rng.NextBernoulli(probs[k])) continue;
        visited_epoch_[v] = epoch_;
        next_.push_back(v);
        ++activated;
        if (activated_out) activated_out->push_back(v);
      }
    }
    frontier_.swap(next_);
  }
  return activated;
}

double EstimateSpread(const Graph& graph, const std::vector<NodeId>& seeds,
                      size_t num_simulations, uint64_t seed, unsigned workers,
                      SamplingKernel kernel) {
  if (num_simulations == 0) return 0.0;
  std::shared_ptr<const SamplingPlan> plan;
  if (ResolveSamplingKernel(kernel) == SamplingKernel::kSkip) {
    // One forward plan shared (read-only) by every stream's simulator.
    plan = SamplingPlan::Build(graph, SamplingPlan::Direction::kForward,
                               SamplingPlan::kIcBuckets);
  }
  std::atomic<uint64_t> total{0};
  ParallelForStreams(num_simulations, workers,
                     [&](unsigned s, size_t begin, size_t end) {
                       IcSimulator sim(graph, plan.get());
                       Rng rng = Rng::Split(seed, s);
                       uint64_t local = 0;
                       for (size_t i = begin; i < end; ++i) {
                         local += sim.RunOnce(seeds, rng);
                       }
                       total.fetch_add(local, std::memory_order_relaxed);
                     });
  return static_cast<double>(total.load()) /
         static_cast<double>(num_simulations);
}

}  // namespace uic
