#include "diffusion/lt_model.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace uic {

namespace {

/// Sample one live in-neighbor of `v` (LT live-edge distribution): pick
/// in-neighbor u with probability w(u,v), none with 1 − Σ w.
NodeId SampleLiveSource(const Graph& graph, NodeId v, Rng& rng) {
  auto srcs = graph.InNeighbors(v);
  auto probs = graph.InProbs(v);
  if (srcs.empty()) return ~NodeId{0};
  double r = rng.NextDouble();
  for (size_t k = 0; k < srcs.size(); ++k) {
    if (r < probs[k]) return srcs[k];
    r -= probs[k];
  }
  return ~NodeId{0};
}

}  // namespace

LtSimulator::LtSimulator(const Graph& graph)
    : graph_(graph),
      visited_epoch_(graph.num_nodes(), 0),
      live_epoch_(graph.num_nodes(), 0),
      live_src_(graph.num_nodes(), kNone) {}

bool LtSimulator::LiveInNeighbor(NodeId v, Rng& rng, NodeId* src) {
  if (live_epoch_[v] != epoch_) {
    live_epoch_[v] = epoch_;
    live_src_[v] = SampleLiveSource(graph_, v, rng);
  }
  *src = live_src_[v];
  return live_src_[v] != kNone;
}

size_t LtSimulator::RunOnce(const std::vector<NodeId>& seeds, Rng& rng) {
  ++epoch_;
  frontier_.clear();
  size_t activated = 0;
  for (NodeId s : seeds) {
    if (visited_epoch_[s] == epoch_) continue;
    visited_epoch_[s] = epoch_;
    frontier_.push_back(s);
    ++activated;
  }
  while (!frontier_.empty()) {
    next_.clear();
    for (NodeId u : frontier_) {
      for (NodeId v : graph_.OutNeighbors(u)) {
        if (visited_epoch_[v] == epoch_) continue;
        NodeId src;
        if (!LiveInNeighbor(v, rng, &src) || src != u) continue;
        visited_epoch_[v] = epoch_;
        next_.push_back(v);
        ++activated;
      }
    }
    frontier_.swap(next_);
  }
  return activated;
}

double EstimateSpreadLt(const Graph& graph, const std::vector<NodeId>& seeds,
                        size_t num_simulations, uint64_t seed,
                        unsigned workers) {
  if (num_simulations == 0) return 0.0;
  std::vector<double> totals(kRngStreams, 0.0);
  ParallelForStreams(num_simulations, workers,
                     [&](unsigned s, size_t begin, size_t end) {
                       LtSimulator sim(graph);
                       Rng rng = Rng::Split(seed, s);
                       double local = 0.0;
                       for (size_t i = begin; i < end; ++i) {
                         local += static_cast<double>(sim.RunOnce(seeds, rng));
                       }
                       totals[s] = local;
                     });
  double total = 0.0;
  for (double t : totals) total += t;
  return total / static_cast<double>(num_simulations);
}

UicLtSimulator::UicLtSimulator(const Graph& graph)
    : graph_(graph),
      node_epoch_(graph.num_nodes(), 0),
      desire_(graph.num_nodes(), 0),
      adoption_(graph.num_nodes(), 0),
      live_epoch_(graph.num_nodes(), 0),
      live_src_(graph.num_nodes(), kNone) {}

bool UicLtSimulator::LiveInNeighbor(NodeId v, Rng& rng, NodeId* src) {
  if (live_epoch_[v] != epoch_) {
    live_epoch_[v] = epoch_;
    live_src_[v] = SampleLiveSource(graph_, v, rng);
  }
  *src = live_src_[v];
  return live_src_[v] != kNone;
}

UicOutcome UicLtSimulator::Run(const Allocation& allocation,
                               const UtilityTable& utilities, Rng& rng) {
  ++epoch_;
  frontier_.clear();
  touched_.clear();
  UicOutcome outcome;

  for (const auto& [v, items] : allocation.entries()) {
    Touch(v);
    desire_[v] |= items;
    touched_.push_back(v);
  }
  for (const auto& [v, items] : allocation.entries()) {
    const ItemSet best = utilities.BestAdoption(adoption_[v], desire_[v]);
    if (best != adoption_[v]) {
      adoption_[v] = best;
      frontier_.push_back(v);
    }
  }

  while (!frontier_.empty()) {
    next_.clear();
    for (NodeId u : frontier_) {
      const ItemSet send = adoption_[u];
      for (NodeId v : graph_.OutNeighbors(u)) {
        NodeId src;
        if (!LiveInNeighbor(v, rng, &src) || src != u) continue;
        if (node_epoch_[v] != epoch_) {
          Touch(v);
          touched_.push_back(v);
        }
        if (IsSubset(send, desire_[v])) continue;
        desire_[v] |= send;
        const ItemSet best = utilities.BestAdoption(adoption_[v], desire_[v]);
        if (best != adoption_[v]) {
          adoption_[v] = best;
          next_.push_back(v);
        }
      }
    }
    frontier_.swap(next_);
  }

  for (NodeId v : touched_) {
    const ItemSet a = adoption_[v];
    if (a == kEmptyItemSet) continue;
    outcome.welfare += utilities.Utility(a);
    outcome.num_adopters += 1;
    outcome.num_adoptions += Cardinality(a);
  }
  return outcome;
}

WelfareEstimate EstimateWelfareLt(const Graph& graph,
                                  const Allocation& allocation,
                                  const ItemParams& params,
                                  size_t num_simulations, uint64_t seed,
                                  unsigned workers) {
  WelfareEstimate estimate;
  if (num_simulations == 0) return estimate;
  struct Accum {
    double sum = 0.0, sum_sq = 0.0, adopters = 0.0, adoptions = 0.0;
  };
  std::vector<Accum> per_stream(kRngStreams);
  ParallelForStreams(num_simulations, workers,
                     [&](unsigned s, size_t begin, size_t end) {
                       UicLtSimulator sim(graph);
                       Rng rng = Rng::Split(seed, s);
                       Accum acc;
                       // Per-simulation noise buffer and table reused
                       // (same RNG sequence and values as fresh builds).
                       std::vector<double> noise;
                       UtilityTable table(params);
                       for (size_t i = begin; i < end; ++i) {
                         params.noise().Sample(rng, &noise);
                         table.Rebuild(params, noise);
                         const UicOutcome out = sim.Run(allocation, table, rng);
                         acc.sum += out.welfare;
                         acc.sum_sq += out.welfare * out.welfare;
                         acc.adopters += static_cast<double>(out.num_adopters);
                         acc.adoptions +=
                             static_cast<double>(out.num_adoptions);
                       }
                       per_stream[s] = acc;
                     });
  Accum total;
  for (const Accum& a : per_stream) {
    total.sum += a.sum;
    total.sum_sq += a.sum_sq;
    total.adopters += a.adopters;
    total.adoptions += a.adoptions;
  }
  const double n = static_cast<double>(num_simulations);
  estimate.welfare = total.sum / n;
  const double var =
      n > 1 ? (total.sum_sq - total.sum * total.sum / n) / (n - 1) : 0.0;
  estimate.std_error = var > 0 ? std::sqrt(var / n) : 0.0;
  estimate.avg_adopters = total.adopters / n;
  estimate.avg_adoptions = total.adoptions / n;
  return estimate;
}

}  // namespace uic
