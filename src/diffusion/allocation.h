// Seed allocations 𝒮 ⊆ V × I (§3.2.1).
#pragma once

#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "items/itemset.h"

namespace uic {

/// \brief A seed allocation: which items each seed node is offered.
///
/// Stored sparsely as (node, itemset) pairs — at most Σ b_i entries.
class Allocation {
 public:
  Allocation() = default;

  /// Allocate `items` (in addition to anything already allocated) to `node`.
  void Add(NodeId node, ItemSet items) {
    for (auto& [v, set] : entries_) {
      if (v == node) {
        set |= items;
        return;
      }
    }
    entries_.emplace_back(node, items);
  }

  void AddItem(NodeId node, ItemId item) { Add(node, ItemBit(item)); }

  /// Append an entry for a node known not to be present yet. O(1), unlike
  /// `Add`'s linear probe — the bulk-build path for allocations covering
  /// most of the graph (e.g. BDHS assigns a bundle to every node).
  void AppendNew(NodeId node, ItemSet items) {
    entries_.emplace_back(node, items);
  }

  /// Build from per-item seed lists: `seeds_per_item[i]` are the seeds of
  /// item i (S_i in the paper).
  static Allocation FromSeedSets(
      const std::vector<std::vector<NodeId>>& seeds_per_item) {
    Allocation a;
    for (ItemId i = 0; i < seeds_per_item.size(); ++i) {
      for (NodeId v : seeds_per_item[i]) a.AddItem(v, i);
    }
    return a;
  }

  const std::vector<std::pair<NodeId, ItemSet>>& entries() const {
    return entries_;
  }
  bool empty() const { return entries_.empty(); }
  size_t num_seed_nodes() const { return entries_.size(); }

  /// Number of seeds item `i` is allocated to (|S_i|).
  size_t SeedCount(ItemId i) const {
    size_t c = 0;
    for (const auto& [v, set] : entries_) c += Contains(set, i);
    return c;
  }

  /// Total node-item pairs |𝒮|.
  size_t TotalPairs() const {
    size_t c = 0;
    for (const auto& [v, set] : entries_) c += Cardinality(set);
    return c;
  }

  /// Validate against the budget vector: |S_i| <= budgets[i] for every i.
  [[nodiscard]] Status ValidateBudgets(const std::vector<uint32_t>& budgets) const {
    for (ItemId i = 0; i < budgets.size(); ++i) {
      if (SeedCount(i) > budgets[i]) {
        return Status::FailedPrecondition(
            "item i" + std::to_string(i) + " allocated to " +
            std::to_string(SeedCount(i)) + " seeds, budget " +
            std::to_string(budgets[i]));
      }
    }
    return Status::OK();
  }

 private:
  std::vector<std::pair<NodeId, ItemSet>> entries_;
};

}  // namespace uic
