#include "diffusion/uic_model.h"

#include <atomic>
#include <mutex>

#include "common/check.h"
#include "common/parallel.h"

namespace uic {

UicSimulator::UicSimulator(const Graph& graph)
    : graph_(graph),
      node_epoch_(graph.num_nodes(), 0),
      desire_(graph.num_nodes(), 0),
      adoption_(graph.num_nodes(), 0),
      edge_epoch_(graph.num_edges(), 0),
      edge_live_(graph.num_edges(), 0) {}

UicOutcome UicSimulator::Run(const Allocation& allocation,
                             const UtilityTable& utilities, Rng& rng) {
  return RunDetailed(allocation, utilities, rng, nullptr);
}

UicOutcome UicSimulator::RunDetailed(
    const Allocation& allocation, const UtilityTable& utilities, Rng& rng,
    std::vector<std::pair<NodeId, ItemSet>>* adoptions) {
  ++epoch_;
  frontier_.clear();
  touched_.clear();
  UicOutcome outcome;

  // t = 1: seeds desire their allocated items and adopt the best subset.
  for (const auto& [v, items] : allocation.entries()) {
    UIC_DCHECK(v < graph_.num_nodes());
    Touch(v);
    desire_[v] |= items;
    touched_.push_back(v);
  }
  for (const auto& [v, items] : allocation.entries()) {
    const ItemSet best = utilities.BestAdoption(adoption_[v], desire_[v]);
    if (best != adoption_[v]) {
      adoption_[v] = best;
      frontier_.push_back(v);
    }
  }

  // t > 1: adopters test out-edges; receivers re-optimize their adoption.
  while (!frontier_.empty()) {
    next_.clear();
    for (NodeId u : frontier_) {
      const ItemSet send = adoption_[u];
      auto nbrs = graph_.OutNeighbors(u);
      auto probs = graph_.OutProbs(u);
      for (size_t k = 0; k < nbrs.size(); ++k) {
        const size_t e = graph_.OutEdgeIndex(u, static_cast<uint32_t>(k));
        // Each edge is tested at most once per diffusion; its live/blocked
        // status is remembered (Fig. 1 step 1).
        if (edge_epoch_[e] != epoch_) {
          edge_epoch_[e] = epoch_;
          edge_live_[e] = rng.NextBernoulli(probs[k]) ? 1 : 0;
        }
        if (!edge_live_[e]) continue;
        const NodeId v = nbrs[k];
        if (node_epoch_[v] != epoch_) {
          Touch(v);
          touched_.push_back(v);
        }
        if (IsSubset(send, desire_[v])) continue;  // nothing new to desire
        desire_[v] |= send;
        const ItemSet best = utilities.BestAdoption(adoption_[v], desire_[v]);
        if (best != adoption_[v]) {
          adoption_[v] = best;
          // Re-activate v so it (re-)propagates its enlarged adoption set.
          next_.push_back(v);
        }
      }
    }
    frontier_.swap(next_);
  }

  if (adoptions) adoptions->clear();
  for (NodeId v : touched_) {
    const ItemSet a = adoption_[v];
    if (a == kEmptyItemSet) continue;
    outcome.welfare += utilities.Utility(a);
    outcome.num_adopters += 1;
    outcome.num_adoptions += Cardinality(a);
    if (adoptions) adoptions->emplace_back(v, a);
  }
  return outcome;
}

WelfareEstimate EstimateWelfare(const Graph& graph,
                                const Allocation& allocation,
                                const ItemParams& params,
                                size_t num_simulations, uint64_t seed,
                                unsigned workers) {
  WelfareEstimate estimate;
  if (num_simulations == 0) return estimate;

  struct Accum {
    double sum = 0.0;
    double sum_sq = 0.0;
    double adopters = 0.0;
    double adoptions = 0.0;
  };
  // Fixed-grid stream partition + serial stream-order reduction: the
  // estimate is bit-identical at any worker count (see parallel.h).
  std::vector<Accum> per_stream(kRngStreams);

  ParallelForStreams(num_simulations, workers,
                     [&](unsigned s, size_t begin, size_t end) {
                       UicSimulator sim(graph);
                       Rng rng = Rng::Split(seed, s);
                       Accum acc;
                       // Noise buffer and table hoisted out of the loop:
                       // per simulation only the draws and the in-place
                       // rebuild remain (identical values and RNG
                       // sequence to fresh construction).
                       std::vector<double> noise;
                       UtilityTable table(params);
                       for (size_t i = begin; i < end; ++i) {
                         params.noise().Sample(rng, &noise);
                         table.Rebuild(params, noise);
                         const UicOutcome out = sim.Run(allocation, table, rng);
                         acc.sum += out.welfare;
                         acc.sum_sq += out.welfare * out.welfare;
                         acc.adopters += static_cast<double>(out.num_adopters);
                         acc.adoptions +=
                             static_cast<double>(out.num_adoptions);
                       }
                       per_stream[s] = acc;
                     });

  Accum total;
  for (const Accum& a : per_stream) {
    total.sum += a.sum;
    total.sum_sq += a.sum_sq;
    total.adopters += a.adopters;
    total.adoptions += a.adoptions;
  }
  const double n = static_cast<double>(num_simulations);
  estimate.welfare = total.sum / n;
  const double var =
      n > 1 ? (total.sum_sq - total.sum * total.sum / n) / (n - 1) : 0.0;
  estimate.std_error = var > 0 ? std::sqrt(var / n) : 0.0;
  estimate.avg_adopters = total.adopters / n;
  estimate.avg_adoptions = total.adoptions / n;
  return estimate;
}

}  // namespace uic
