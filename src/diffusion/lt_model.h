// Linear Threshold (LT) diffusion and the UIC-LT combination.
//
// The paper notes (§5) that all results carry over unchanged to any
// *triggering model*; LT is the canonical second instance. In live-edge
// form, each node independently selects at most one in-neighbor, choosing
// in-neighbor u of v with probability w(u,v) (and none with probability
// 1 − Σ_u w(u,v)); v is activated iff its selected in-neighbor is.
//
// Edge weights are read from the graph's probability field and must
// satisfy Σ_u w(u,v) <= 1 per node (the weighted-cascade assignment
// 1/din(v) satisfies this with equality). Live in-edges are sampled
// lazily, one per touched node per diffusion, so a run costs
// O(touched-state), mirroring the IC simulators.
#pragma once

#include <vector>

#include "common/random.h"
#include "diffusion/allocation.h"
#include "diffusion/uic_model.h"
#include "graph/graph.h"
#include "items/utility_table.h"

namespace uic {

/// \brief Single-item LT spread simulator (live-edge formulation).
class LtSimulator {
 public:
  explicit LtSimulator(const Graph& graph);

  /// Run one diffusion; returns the number of activated nodes.
  size_t RunOnce(const std::vector<NodeId>& seeds, Rng& rng);

 private:
  /// Lazily sample v's live in-neighbor for the current run.
  /// Returns true and sets `*src` if v selected one.
  bool LiveInNeighbor(NodeId v, Rng& rng, NodeId* src);

  const Graph& graph_;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> visited_epoch_;
  std::vector<uint32_t> live_epoch_;
  std::vector<NodeId> live_src_;     // sampled in-neighbor (or kNone)
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_;

  static constexpr NodeId kNone = ~NodeId{0};
};

/// \brief Monte-Carlo LT spread estimate.
double EstimateSpreadLt(const Graph& graph, const std::vector<NodeId>& seeds,
                        size_t num_simulations, uint64_t seed,
                        unsigned workers = 0);

/// \brief UIC dynamics over LT (triggering) propagation.
///
/// Identical adoption semantics to `UicSimulator` (desire sets, local-
/// maximum adoption, progressive growth); only the edge mechanism changes:
/// u's adoption reaches v iff v's (lazily sampled) live in-neighbor is u.
class UicLtSimulator {
 public:
  explicit UicLtSimulator(const Graph& graph);

  UicOutcome Run(const Allocation& allocation, const UtilityTable& utilities,
                 Rng& rng);

 private:
  bool LiveInNeighbor(NodeId v, Rng& rng, NodeId* src);
  void Touch(NodeId v) {
    if (node_epoch_[v] != epoch_) {
      node_epoch_[v] = epoch_;
      desire_[v] = kEmptyItemSet;
      adoption_[v] = kEmptyItemSet;
    }
  }

  const Graph& graph_;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> node_epoch_;
  std::vector<ItemSet> desire_;
  std::vector<ItemSet> adoption_;
  std::vector<uint32_t> live_epoch_;
  std::vector<NodeId> live_src_;
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_;
  std::vector<NodeId> touched_;

  static constexpr NodeId kNone = ~NodeId{0};
};

/// \brief Monte-Carlo expected social welfare under UIC-LT.
WelfareEstimate EstimateWelfareLt(const Graph& graph,
                                  const Allocation& allocation,
                                  const ItemParams& params,
                                  size_t num_simulations, uint64_t seed,
                                  unsigned workers = 0);

}  // namespace uic
