// Constructors for the paper's synthetic supermodular value functions.
#pragma once

#include <memory>

#include "common/random.h"
#include "items/value_function.h"

namespace uic {

/// \brief Configuration 6/7 "cone" valuation (§4.3.3.1).
///
/// One designated *core* item is necessary for positive utility: every
/// superset of the core has deterministic utility `core_utility` plus
/// `per_extra_utility` for each additional item; every itemset missing the
/// core has a negative deterministic utility (`non_core_utility` per item).
/// Given `prices`, builds the value table V(S) = targetU(S) + P(S), which
/// is supermodular for non_core_utility < 0 <= core_utility.
std::shared_ptr<TabularValueFunction> MakeConeValue(
    ItemId num_items, ItemId core_item, const std::vector<double>& prices,
    double core_utility, double per_extra_utility, double non_core_utility);

/// \brief Configuration 8 level-wise random supermodular valuation
/// (Eq. 13, Lemmas 10–11).
///
/// Level-1 values are `level1_values` (caller chooses signs so a random
/// subset of items has non-negative utility); for |A|=t>1, each marginal
/// V(i | A\{i}) is the maximum marginal of i over (t−2)-subsets of A\{i}
/// plus a random boost ε ~ U[boost_lo, boost_hi], and
/// V(A) = max_{i∈A} ( V(A\{i}) + V(i | A\{i}) ).
std::shared_ptr<TabularValueFunction> MakeLevelwiseSupermodularValue(
    const std::vector<double>& level1_values, double boost_lo,
    double boost_hi, uint64_t seed);

/// \brief Build a value table from target deterministic utilities:
/// V(S) = target_utility(S) + P(S). Used by the two-item configurations of
/// Table 3 where the paper specifies prices and values directly.
std::shared_ptr<TabularValueFunction> MakeValueFromUtilities(
    ItemId num_items, const std::vector<double>& prices,
    const std::vector<double>& target_utilities);

/// \brief Random supermodular value table for property tests: starts from
/// an additive base and adds random non-negative pairwise-and-higher
/// synergies via a supermodularity-preserving closure.
std::shared_ptr<TabularValueFunction> MakeRandomSupermodularValue(
    ItemId num_items, Rng& rng, double base_lo = 0.5, double base_hi = 3.0,
    double synergy_scale = 1.0);

}  // namespace uic
