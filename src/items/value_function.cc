#include "items/value_function.h"

#include "common/check.h"

namespace uic {

TabularValueFunction::TabularValueFunction(ItemId num_items,
                                           std::vector<double> table)
    : num_items_(num_items), table_(std::move(table)) {
  UIC_CHECK_LE(num_items_, kMaxItems);
  UIC_CHECK_EQ(table_.size(), size_t{1} << num_items_);
}

TabularValueFunction TabularValueFunction::FromFunction(
    const ValueFunction& fn) {
  const ItemId k = fn.num_items();
  std::vector<double> table(size_t{1} << k);
  for (ItemSet s = 0; s < table.size(); ++s) table[s] = fn.Value(s);
  return TabularValueFunction(k, std::move(table));
}

bool IsMonotone(const ValueFunction& fn, double tol) {
  const ItemSet full = FullItemSet(fn.num_items());
  for (ItemSet t = 0; t <= full; ++t) {
    const double vt = fn.Value(t);
    bool ok = true;
    ForEachSubset(t, [&](ItemSet s) {
      if (fn.Value(s) > vt + tol) ok = false;
    });
    if (!ok) return false;
    if (t == full) break;
  }
  return true;
}

namespace {

enum class Modularity { kSuper, kSub };

bool CheckModularity(const ValueFunction& fn, Modularity mode, double tol) {
  const ItemId k = fn.num_items();
  const ItemSet full = FullItemSet(k);
  // For each T and x ∉ T, compare the marginal of x w.r.t. every S ⊆ T.
  for (ItemSet t = 0; t <= full; ++t) {
    for (ItemId x = 0; x < k; ++x) {
      if (Contains(t, x)) continue;
      const double mt = fn.Value(t | ItemBit(x)) - fn.Value(t);
      bool ok = true;
      ForEachSubset(t, [&](ItemSet s) {
        if (s == t) return;
        const double ms = fn.Value(s | ItemBit(x)) - fn.Value(s);
        if (mode == Modularity::kSuper && ms > mt + tol) ok = false;
        if (mode == Modularity::kSub && ms < mt - tol) ok = false;
      });
      if (!ok) return false;
    }
    if (t == full) break;
  }
  return true;
}

}  // namespace

bool IsSupermodular(const ValueFunction& fn, double tol) {
  return CheckModularity(fn, Modularity::kSuper, tol);
}

bool IsSubmodular(const ValueFunction& fn, double tol) {
  return CheckModularity(fn, Modularity::kSub, tol);
}

}  // namespace uic
