// Itemset pricing P : 2^I -> R+.
//
// The paper's main setting prices bundles additively; §5 observes that a
// *submodular* price (bundle discounts) leaves the utility supermodular
// and the bundleGRD guarantee intact. This header provides both: the
// default additive price plus a volume-discount submodular price.
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"
#include "items/itemset.h"

namespace uic {

/// \brief Abstract itemset price. P(∅) must be 0; P must be monotone.
class PriceFunction {
 public:
  virtual ~PriceFunction() = default;
  virtual ItemId num_items() const = 0;
  virtual double Price(ItemSet set) const = 0;
};

/// \brief Additive price: P(S) = Σ_{i∈S} p_i (the paper's default).
class AdditivePriceFunction : public PriceFunction {
 public:
  explicit AdditivePriceFunction(std::vector<double> prices)
      : prices_(std::move(prices)) {}

  ItemId num_items() const override {
    return static_cast<ItemId>(prices_.size());
  }
  double Price(ItemSet set) const override {
    double p = 0.0;
    ForEachItem(set, [&](ItemId i) { p += prices_[i]; });
    return p;
  }
  double ItemPrice(ItemId i) const { return prices_[i]; }

 private:
  std::vector<double> prices_;
};

/// \brief Dense table of 2^k prices. Mainly used to round-trip an arbitrary
/// PriceFunction through serialization; any price can be materialized into
/// one with FromFunction.
class TabularPriceFunction : public PriceFunction {
 public:
  /// Construct from an explicit table; `table.size()` must be `2^k`.
  TabularPriceFunction(ItemId num_items, std::vector<double> table)
      : num_items_(num_items), table_(std::move(table)) {
    UIC_CHECK_LE(num_items_, kMaxItems);
    UIC_CHECK_EQ(table_.size(), size_t{1} << num_items_);
  }

  /// Materialize any price function into a table.
  static TabularPriceFunction FromFunction(const PriceFunction& fn) {
    const ItemId k = fn.num_items();
    std::vector<double> table(size_t{1} << k);
    for (ItemSet s = 0; s < table.size(); ++s) table[s] = fn.Price(s);
    return TabularPriceFunction(k, std::move(table));
  }

  ItemId num_items() const override { return num_items_; }
  double Price(ItemSet set) const override { return table_[set]; }

 private:
  ItemId num_items_;
  std::vector<double> table_;
};

/// \brief Volume-discount price: the j-th most expensive item in the
/// bundle is charged p_i · discount^(j−1), with discount ∈ (0, 1].
///
/// This price is submodular (the marginal price of adding an item shrinks
/// as the bundle grows), so utility V − P + N stays supermodular when V
/// is supermodular — the setting of the paper's §5 remark.
class VolumeDiscountPriceFunction : public PriceFunction {
 public:
  VolumeDiscountPriceFunction(std::vector<double> prices, double discount)
      : prices_(std::move(prices)), discount_(discount) {
    UIC_CHECK_GT(discount_, 0.0);
    UIC_CHECK_LE(discount_, 1.0);
  }

  ItemId num_items() const override {
    return static_cast<ItemId>(prices_.size());
  }

  double Price(ItemSet set) const override {
    // Collect bundle prices, sort descending, apply geometric discounts.
    double bundle[kMaxItems];
    uint32_t count = 0;
    ForEachItem(set, [&](ItemId i) { bundle[count++] = prices_[i]; });
    // Insertion sort (bundles are tiny).
    for (uint32_t a = 1; a < count; ++a) {
      const double x = bundle[a];
      uint32_t b = a;
      while (b > 0 && bundle[b - 1] < x) {
        bundle[b] = bundle[b - 1];
        --b;
      }
      bundle[b] = x;
    }
    double total = 0.0, factor = 1.0;
    for (uint32_t a = 0; a < count; ++a) {
      total += bundle[a] * factor;
      factor *= discount_;
    }
    return total;
  }

 private:
  std::vector<double> prices_;
  double discount_;
};

}  // namespace uic
