// Item valuation functions V : 2^I -> R.
//
// The UIC model assumes V is monotone; the complementary-items setting of
// §4 additionally assumes V is supermodular. Checkers for both properties
// are provided and used by tests and by the Configuration-8 generator.
#pragma once

#include <memory>
#include <vector>

#include "items/itemset.h"

namespace uic {

/// \brief Abstract valuation over itemsets. V(∅) must be 0.
class ValueFunction {
 public:
  virtual ~ValueFunction() = default;

  virtual ItemId num_items() const = 0;

  /// Valuation of the itemset `set`.
  virtual double Value(ItemSet set) const = 0;
};

/// \brief Dense table of 2^k values (the workhorse implementation).
class TabularValueFunction : public ValueFunction {
 public:
  /// Construct from an explicit table; `table.size()` must be `2^k`.
  TabularValueFunction(ItemId num_items, std::vector<double> table);

  /// Materialize any value function into a table.
  static TabularValueFunction FromFunction(const ValueFunction& fn);

  ItemId num_items() const override { return num_items_; }
  double Value(ItemSet set) const override { return table_[set]; }

  /// Mutable access used by builders/generators.
  void SetValue(ItemSet set, double v) { table_[set] = v; }

 private:
  ItemId num_items_;
  std::vector<double> table_;
};

/// \brief Additive valuation: V(S) = Σ_{i∈S} item_values[i] (modular; used
/// by Configuration 5 where utility is additive by design).
class AdditiveValueFunction : public ValueFunction {
 public:
  explicit AdditiveValueFunction(std::vector<double> item_values)
      : item_values_(std::move(item_values)) {}

  ItemId num_items() const override {
    return static_cast<ItemId>(item_values_.size());
  }
  double Value(ItemSet set) const override {
    double v = 0.0;
    ForEachItem(set, [&](ItemId i) { v += item_values_[i]; });
    return v;
  }

 private:
  std::vector<double> item_values_;
};

/// True iff V(S) <= V(T) for all S ⊆ T (checked exhaustively, O(3^k)).
bool IsMonotone(const ValueFunction& fn, double tol = 1e-9);

/// True iff V is supermodular: for all S ⊆ T and x ∉ T,
/// V(S∪{x}) − V(S) <= V(T∪{x}) − V(T). Exhaustive, O(3^k · k).
bool IsSupermodular(const ValueFunction& fn, double tol = 1e-9);

/// True iff V is submodular (reverse inequality).
bool IsSubmodular(const ValueFunction& fn, double tol = 1e-9);

}  // namespace uic
