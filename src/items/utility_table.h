// Materialized utility table for one noise world.
//
// Once the noise terms are sampled, the utility U_w(I) of every itemset is
// deterministic (§4.1.1). This table materializes all 2^k utilities so the
// diffusion simulator's adoption decisions (argmax over supersets of the
// current adoption inside the desire set) are a submask scan.
#pragma once

#include <vector>

#include "items/params.h"

namespace uic {

/// \brief 2^k utilities under one fixed noise world.
class UtilityTable {
 public:
  /// Build from params and a sampled per-item noise vector.
  UtilityTable(const ItemParams& params, const std::vector<double>& noise);

  /// Build the deterministic (zero-noise) table.
  explicit UtilityTable(const ItemParams& params)
      : UtilityTable(params, std::vector<double>(params.num_items(), 0.0)) {}

  /// Recompute the table in place for a new noise world — identical
  /// values to constructing `UtilityTable(params, noise)` afresh, but the
  /// 2^k buffers are reused, so Monte-Carlo estimators can rebuild per
  /// simulation without allocating. `params` must have the same number of
  /// items the table was built with.
  void Rebuild(const ItemParams& params, const std::vector<double>& noise);

  ItemId num_items() const { return num_items_; }

  double Utility(ItemSet set) const { return util_[set]; }

  /// \brief The UIC adoption rule (§3.2.3, Fig. 1 step 3).
  ///
  /// Returns argmax{ U(T) : adopted ⊆ T ⊆ desire } with ties broken in
  /// favor of larger cardinality; among equal-cardinality ties returns
  /// their union (well-defined for supermodular U by Lemma 1 — tied local
  /// maxima union into another maximizer).
  ItemSet BestAdoption(ItemSet adopted, ItemSet desire) const;

  /// \brief I^*: the utility-maximizing itemset over the whole universe
  /// (largest-cardinality tie-break). Items outside I^* can never be
  /// adopted in this noise world (§4.2.2).
  ItemSet GlobalOptimum() const { return BestAdoption(0, FullItemSet(num_items_)); }

  /// True iff `set` is a local maximum: U(set) = max_{S ⊆ set} U(S).
  bool IsLocalMaximum(ItemSet set, double tol = 1e-12) const;

 private:
  ItemId num_items_;
  std::vector<double> util_;
  std::vector<double> noise_scratch_;  ///< subset-DP buffer reused by Rebuild
};

}  // namespace uic
