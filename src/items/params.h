// The UIC model parameters `Param = (V, P, N)` (§3.1).
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"
#include "items/itemset.h"
#include "items/noise.h"
#include "items/price_function.h"
#include "items/value_function.h"

namespace uic {

/// \brief Bundles valuation, prices, and the noise model.
///
/// Utility of itemset I in a noise world w is
///   U_w(I) = V(I) − P(I) + Σ_{i∈I} w_i,
/// with expectation V(I) − P(I) (the "deterministic utility").
///
/// Prices are additive by default (the paper's main setting); a generic
/// (e.g. submodular volume-discount) `PriceFunction` may be supplied
/// instead — supermodularity of the utility, and hence the bundleGRD
/// guarantee, survives any submodular price (§5).
class ItemParams {
 public:
  /// Additive prices (the common case).
  ItemParams(std::shared_ptr<const ValueFunction> value,
             std::vector<double> prices, NoiseModel noise)
      : ItemParams(std::move(value),
                   std::make_shared<AdditivePriceFunction>(std::move(prices)),
                   std::move(noise)) {}

  /// Generic price function.
  ItemParams(std::shared_ptr<const ValueFunction> value,
             std::shared_ptr<const PriceFunction> price, NoiseModel noise)
      : value_(std::move(value)),
        price_(std::move(price)),
        noise_(std::move(noise)) {
    UIC_CHECK(value_ != nullptr);
    UIC_CHECK(price_ != nullptr);
    UIC_CHECK_EQ(price_->num_items(), value_->num_items());
    UIC_CHECK_EQ(noise_.num_items(), value_->num_items());
    UIC_CHECK_LE(num_items(), kMaxItems);
  }

  ItemId num_items() const { return value_->num_items(); }
  ItemSet full_set() const { return FullItemSet(num_items()); }

  const ValueFunction& value() const { return *value_; }
  const PriceFunction& price() const { return *price_; }
  const NoiseModel& noise() const { return noise_; }

  /// Price of the singleton {i}.
  double ItemPrice(ItemId i) const { return price_->Price(ItemBit(i)); }

  /// Price of an itemset.
  double Price(ItemSet set) const { return price_->Price(set); }

  /// Deterministic (expected) utility V(I) − P(I).
  double DeterministicUtility(ItemSet set) const {
    return value_->Value(set) - price_->Price(set);
  }

 private:
  std::shared_ptr<const ValueFunction> value_;
  std::shared_ptr<const PriceFunction> price_;
  NoiseModel noise_;
};

}  // namespace uic
