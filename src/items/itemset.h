// Itemsets as bitmasks.
//
// The paper's experiments use at most 10 items; we support up to 30. An
// `ItemSet` is a bitmask over item indices, which makes the submask
// enumeration needed by the UIC adoption rule and by the block-generation
// process cheap and allocation-free.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "common/check.h"

namespace uic {

using ItemId = uint32_t;
using ItemSet = uint32_t;

constexpr ItemId kMaxItems = 30;
constexpr ItemSet kEmptyItemSet = 0;

/// Singleton itemset {i}.
constexpr ItemSet ItemBit(ItemId i) { return ItemSet{1} << i; }

/// Full itemset over `num_items` items.
constexpr ItemSet FullItemSet(ItemId num_items) {
  return num_items >= 32 ? ~ItemSet{0} : (ItemSet{1} << num_items) - 1;
}

constexpr bool Contains(ItemSet set, ItemId i) {
  return (set >> i) & ItemSet{1};
}

constexpr bool IsSubset(ItemSet sub, ItemSet super) {
  return (sub & ~super) == 0;
}

inline uint32_t Cardinality(ItemSet set) { return std::popcount(set); }

/// Lowest item index present in a non-empty itemset.
inline ItemId LowestItem(ItemSet set) {
  UIC_DCHECK(set != 0);
  return static_cast<ItemId>(std::countr_zero(set));
}

/// Highest item index present in a non-empty itemset.
inline ItemId HighestItem(ItemSet set) {
  UIC_DCHECK(set != 0);
  return static_cast<ItemId>(31 - std::countl_zero(set));
}

/// \brief Invoke `fn(sub)` for every submask of `mask`, including 0 and
/// `mask` itself. Standard descending submask enumeration.
template <typename Fn>
void ForEachSubset(ItemSet mask, Fn&& fn) {
  ItemSet sub = mask;
  while (true) {
    fn(sub);
    if (sub == 0) break;
    sub = (sub - 1) & mask;
  }
}

/// \brief Invoke `fn(i)` for every item index in `mask` (ascending).
template <typename Fn>
void ForEachItem(ItemSet mask, Fn&& fn) {
  while (mask != 0) {
    const ItemId i = static_cast<ItemId>(std::countr_zero(mask));
    fn(i);
    mask &= mask - 1;
  }
}

/// Render an itemset as "{i0,i3}" for logs and error messages.
inline std::string ItemSetToString(ItemSet set) {
  std::string out = "{";
  bool first = true;
  ForEachItem(set, [&](ItemId i) {
    if (!first) out += ',';
    out += 'i';
    out += std::to_string(i);
    first = false;
  });
  return out + "}";
}

}  // namespace uic
