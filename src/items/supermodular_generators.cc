#include "items/supermodular_generators.h"

#include <algorithm>

#include "common/check.h"

namespace uic {

namespace {

double AdditivePrice(const std::vector<double>& prices, ItemSet set) {
  double p = 0.0;
  ForEachItem(set, [&](ItemId i) { p += prices[i]; });
  return p;
}

}  // namespace

std::shared_ptr<TabularValueFunction> MakeConeValue(
    ItemId num_items, ItemId core_item, const std::vector<double>& prices,
    double core_utility, double per_extra_utility, double non_core_utility) {
  UIC_CHECK_LT(core_item, num_items);
  UIC_CHECK_EQ(prices.size(), num_items);
  UIC_CHECK_GE(core_utility, 0.0);
  UIC_CHECK_GE(per_extra_utility, 0.0);
  UIC_CHECK_LE(non_core_utility, 0.0);
  const size_t n = size_t{1} << num_items;
  std::vector<double> table(n, 0.0);
  for (ItemSet s = 1; s < n; ++s) {
    const double card = static_cast<double>(Cardinality(s));
    double target_utility;
    if (Contains(s, core_item)) {
      target_utility = core_utility + per_extra_utility * (card - 1.0);
    } else {
      target_utility = non_core_utility * card;
    }
    table[s] = target_utility + AdditivePrice(prices, s);
  }
  return std::make_shared<TabularValueFunction>(num_items, std::move(table));
}

std::shared_ptr<TabularValueFunction> MakeLevelwiseSupermodularValue(
    const std::vector<double>& level1_values, double boost_lo,
    double boost_hi, uint64_t seed) {
  const ItemId k = static_cast<ItemId>(level1_values.size());
  UIC_CHECK_GT(k, 0u);
  UIC_CHECK_LE(k, kMaxItems);
  UIC_CHECK_LE(boost_lo, boost_hi);
  UIC_CHECK_GT(boost_lo, 0.0);
  Rng rng(seed);
  const size_t n = size_t{1} << k;
  std::vector<double> table(n, 0.0);
  for (ItemId i = 0; i < k; ++i) {
    UIC_CHECK_GE(level1_values[i], 0.0);
    table[ItemBit(i)] = level1_values[i];
  }
  // Level-wise construction per Eq. (13): process masks by cardinality.
  std::vector<ItemSet> by_level;
  for (uint32_t t = 2; t <= k; ++t) {
    by_level.clear();
    for (ItemSet s = 0; s < n; ++s) {
      if (Cardinality(s) == t) by_level.push_back(s);
    }
    for (ItemSet a : by_level) {
      double best = 0.0;
      ForEachItem(a, [&](ItemId i) {
        const ItemSet rest = a & ~ItemBit(i);
        // cand(i, A) = max over (t-2)-subsets B of A\{i} of V(i|B) + ε.
        double max_marginal = 0.0;
        bool found = false;
        ForEachSubset(rest, [&](ItemSet b) {
          if (Cardinality(b) != t - 2) return;
          const double marginal = table[b | ItemBit(i)] - table[b];
          if (!found || marginal > max_marginal) {
            max_marginal = marginal;
            found = true;
          }
        });
        UIC_CHECK(found);
        const double eps = rng.NextUniform(boost_lo, boost_hi);
        const double candidate = table[rest] + max_marginal + eps;
        best = std::max(best, candidate);
      });
      table[a] = best;
    }
  }
  return std::make_shared<TabularValueFunction>(k, std::move(table));
}

std::shared_ptr<TabularValueFunction> MakeValueFromUtilities(
    ItemId num_items, const std::vector<double>& prices,
    const std::vector<double>& target_utilities) {
  UIC_CHECK_EQ(prices.size(), num_items);
  const size_t n = size_t{1} << num_items;
  UIC_CHECK_EQ(target_utilities.size(), n);
  UIC_CHECK(target_utilities[0] == 0.0);
  std::vector<double> table(n);
  for (ItemSet s = 0; s < n; ++s) {
    table[s] = target_utilities[s] + AdditivePrice(prices, s);
  }
  return std::make_shared<TabularValueFunction>(num_items, std::move(table));
}

std::shared_ptr<TabularValueFunction> MakeRandomSupermodularValue(
    ItemId num_items, Rng& rng, double base_lo, double base_hi,
    double synergy_scale) {
  UIC_CHECK_LE(num_items, 16u);
  // V(S) = Σ_{i∈S} base_i + Σ_{i<j ∈ S} syn_{ij} with syn >= 0: a quadratic
  // set function with non-negative interaction terms, hence monotone and
  // supermodular.
  std::vector<double> base(num_items);
  for (auto& b : base) b = rng.NextUniform(base_lo, base_hi);
  std::vector<std::vector<double>> syn(num_items,
                                       std::vector<double>(num_items, 0.0));
  for (ItemId i = 0; i < num_items; ++i) {
    for (ItemId j = i + 1; j < num_items; ++j) {
      syn[i][j] = rng.NextUniform(0.0, synergy_scale);
    }
  }
  const size_t n = size_t{1} << num_items;
  std::vector<double> table(n, 0.0);
  for (ItemSet s = 1; s < n; ++s) {
    double v = 0.0;
    ForEachItem(s, [&](ItemId i) {
      v += base[i];
      ForEachItem(s, [&](ItemId j) {
        if (i < j) v += syn[i][j];
      });
    });
    table[s] = v;
  }
  return std::make_shared<TabularValueFunction>(num_items, std::move(table));
}

}  // namespace uic
