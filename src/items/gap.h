// GAP (Generalized Adoption Probability) parameter derivation, Eq. (12).
//
// The Com-IC model of Lu et al. is parameterized by adoption probabilities
// q_{i|A} — the probability that a user adopts item i given it has adopted
// exactly A. The paper shows (§4.3.1.3) how a UIC utility configuration
// induces these parameters:
//   q_{i|A} = Pr[ N(i) >= P(i) − ( V(A ∪ {i}) − V(A) ) ].
#pragma once

#include "items/params.h"

namespace uic {

/// \brief Adoption probability of item `i` given already-adopted set `a`.
double GapProbability(const ItemParams& params, ItemId i, ItemSet a);

/// \brief The four GAP parameters for a two-item configuration (Table 3).
struct TwoItemGap {
  double q1_none;    ///< q_{i1|∅}
  double q2_none;    ///< q_{i2|∅}
  double q1_given2;  ///< q_{i1|i2}
  double q2_given1;  ///< q_{i2|i1}
};

/// Derive the two-item GAP parameters from a UIC configuration.
TwoItemGap DeriveTwoItemGap(const ItemParams& params);

}  // namespace uic
