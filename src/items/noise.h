// Per-item zero-mean noise model.
//
// The UIC model attaches an independent zero-mean noise term N(i) to each
// item; itemset noise is additive: N(I) = Σ_{i∈I} N(i). A *noise world* is
// one sample of all item noises, drawn at the start of a diffusion and held
// fixed until it terminates (§3.2.3).
#pragma once

#include <cmath>
#include <vector>

#include "common/random.h"
#include "items/itemset.h"

namespace uic {

/// \brief Distribution of one item's noise term.
struct ItemNoise {
  enum class Kind {
    kZero,      ///< deterministic 0 (no uncertainty)
    kGaussian,  ///< N(0, sigma^2)
    kUniform,   ///< U[-half_width, +half_width] (bounded; used by the
                ///< non-submodularity counterexamples of Theorem 1)
  };
  Kind kind = Kind::kZero;
  double param = 0.0;  ///< sigma for kGaussian, half_width for kUniform

  static ItemNoise Zero() { return {Kind::kZero, 0.0}; }
  static ItemNoise Gaussian(double sigma) { return {Kind::kGaussian, sigma}; }
  static ItemNoise Uniform(double half_width) {
    return {Kind::kUniform, half_width};
  }

  double Sample(Rng& rng) const {
    switch (kind) {
      case Kind::kZero: return 0.0;
      case Kind::kGaussian: return rng.NextGaussian(0.0, param);
      case Kind::kUniform: return rng.NextUniform(-param, param);
    }
    return 0.0;
  }

  /// P[noise >= threshold] in closed form (used for GAP derivation).
  double TailProbability(double threshold) const {
    switch (kind) {
      case Kind::kZero: return threshold <= 0.0 ? 1.0 : 0.0;
      case Kind::kGaussian: {
        if (param == 0.0) return threshold <= 0.0 ? 1.0 : 0.0;
        return 0.5 * std::erfc(threshold / (param * std::sqrt(2.0)));
      }
      case Kind::kUniform: {
        if (threshold <= -param) return 1.0;
        if (threshold >= param) return 0.0;
        return (param - threshold) / (2.0 * param);
      }
    }
    return 0.0;
  }
};

/// \brief Per-item independent noise; samples one noise world.
class NoiseModel {
 public:
  NoiseModel() = default;
  explicit NoiseModel(std::vector<ItemNoise> items)
      : items_(std::move(items)) {}

  /// All items noise-free (deterministic utilities).
  static NoiseModel Zero(ItemId num_items) {
    return NoiseModel(std::vector<ItemNoise>(num_items, ItemNoise::Zero()));
  }

  /// All items N(0, sigma^2).
  static NoiseModel IidGaussian(ItemId num_items, double sigma) {
    return NoiseModel(
        std::vector<ItemNoise>(num_items, ItemNoise::Gaussian(sigma)));
  }

  ItemId num_items() const { return static_cast<ItemId>(items_.size()); }
  const ItemNoise& item(ItemId i) const { return items_[i]; }

  /// Draw one noise world (one value per item).
  std::vector<double> Sample(Rng& rng) const {
    std::vector<double> w;
    Sample(rng, &w);
    return w;
  }

  /// Draw one noise world into `out` (resized; same draw sequence as the
  /// returning overload). Monte-Carlo estimator loops use this to reuse
  /// one buffer across simulations instead of allocating per draw.
  void Sample(Rng& rng, std::vector<double>* out) const {
    out->resize(items_.size());
    for (size_t i = 0; i < items_.size(); ++i) (*out)[i] = items_[i].Sample(rng);
  }

 private:
  std::vector<ItemNoise> items_;
};

}  // namespace uic
