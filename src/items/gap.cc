#include "items/gap.h"

#include "common/check.h"

namespace uic {

double GapProbability(const ItemParams& params, ItemId i, ItemSet a) {
  UIC_CHECK_LT(i, params.num_items());
  UIC_CHECK(!Contains(a, i));
  const double marginal_value =
      params.value().Value(a | ItemBit(i)) - params.value().Value(a);
  const double threshold = params.ItemPrice(i) - marginal_value;
  return params.noise().item(i).TailProbability(threshold);
}

TwoItemGap DeriveTwoItemGap(const ItemParams& params) {
  UIC_CHECK_EQ(params.num_items(), 2u);
  TwoItemGap gap;
  gap.q1_none = GapProbability(params, 0, kEmptyItemSet);
  gap.q2_none = GapProbability(params, 1, kEmptyItemSet);
  gap.q1_given2 = GapProbability(params, 0, ItemBit(1));
  gap.q2_given1 = GapProbability(params, 1, ItemBit(0));
  return gap;
}

}  // namespace uic
