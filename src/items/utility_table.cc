#include "items/utility_table.h"

#include "common/check.h"

namespace uic {

UtilityTable::UtilityTable(const ItemParams& params,
                           const std::vector<double>& noise)
    : num_items_(params.num_items()) {
  Rebuild(params, noise);
}

void UtilityTable::Rebuild(const ItemParams& params,
                           const std::vector<double>& noise) {
  UIC_CHECK_EQ(params.num_items(), num_items_);
  UIC_CHECK_EQ(noise.size(), num_items_);
  const size_t n = size_t{1} << num_items_;
  util_.resize(n);
  // Noise is additive by model definition; accumulate it with a subset DP
  // (value for mask m = value for m-without-lowest-bit + that bit's term).
  // Price goes through the generic PriceFunction (additive by default).
  noise_scratch_.assign(n, 0.0);
  for (ItemSet m = 1; m < n; ++m) {
    const ItemId low = LowestItem(m);
    noise_scratch_[m] = noise_scratch_[m & (m - 1)] + noise[low];
  }
  for (ItemSet m = 0; m < n; ++m) {
    util_[m] = params.value().Value(m) - params.Price(m) + noise_scratch_[m];
  }
  UIC_CHECK(util_[0] == 0.0);  // V(∅)=0, P(∅)=0, N(∅)=0.
}

ItemSet UtilityTable::BestAdoption(ItemSet adopted, ItemSet desire) const {
  UIC_DCHECK(IsSubset(adopted, desire));
  const ItemSet free = desire & ~adopted;
  double best = util_[adopted];
  uint32_t best_card = Cardinality(adopted);
  ItemSet best_set = adopted;
  bool multiple_ties = false;
  constexpr double kTieTol = 1e-9;
  ForEachSubset(free, [&](ItemSet sub) {
    const ItemSet t = adopted | sub;
    const double u = util_[t];
    if (u > best + kTieTol) {
      best = u;
      best_card = Cardinality(t);
      best_set = t;
      multiple_ties = false;
    } else if (u >= best - kTieTol) {
      // Tie: prefer larger cardinality; record that ties exist so we can
      // resolve via union below.
      const uint32_t card = Cardinality(t);
      if (card > best_card) {
        best_card = card;
        best_set = t;
      }
      multiple_ties = true;
    }
  });
  if (multiple_ties) {
    // Union of all tied maximizers (Lemma 1: for supermodular U the union
    // of tied local maxima is itself a maximizer). If U is not
    // supermodular the union may not achieve the max; in that case we keep
    // the largest-cardinality maximizer found.
    ItemSet unioned = 0;
    ForEachSubset(free, [&](ItemSet sub) {
      const ItemSet t = adopted | sub;
      if (util_[t] >= best - kTieTol) unioned |= t;
    });
    if (util_[unioned] >= best - kTieTol) best_set = unioned;
  }
  return best_set;
}

bool UtilityTable::IsLocalMaximum(ItemSet set, double tol) const {
  const double u = util_[set];
  bool ok = true;
  ForEachSubset(set, [&](ItemSet s) {
    if (util_[s] > u + tol) ok = false;
  });
  return ok;
}

}  // namespace uic
