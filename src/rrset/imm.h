// IMM (Tang et al., SIGMOD'15) with the Chen'18 regeneration fix, plus the
// sample-size formulas shared with PRIMA (Eqs. 7–8 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "rrset/node_selection.h"
#include "rrset/rr_collection.h"

namespace uic {

/// log C(n, k) via lgamma (natural log).
double LogChoose(double n, double k);

/// \brief λ'_k of Eq. (7): the phase-i sample requirement.
/// `eps_prime` is ε' = √2·ε; `ell_prime` is the boosted ℓ'.
double LambdaPrime(double n, double k, double eps_prime, double ell_prime);

/// \brief λ*_k of Eq. (8): the final sample requirement. Uses the original ε.
double LambdaStar(double n, double k, double eps, double ell_prime);

/// \brief Result of a sampling-based IM run.
struct ImResult {
  std::vector<NodeId> seeds;   ///< ordered seed list
  std::vector<double> coverage;///< F_R over the final pool after each seed
  size_t num_rr_sets = 0;      ///< final pool size (memory proxy)
  size_t total_rr_nodes = 0;   ///< Σ |R| over the final pool
  double sampling_seconds = 0.0;
  double selection_seconds = 0.0;
};

/// \brief Standard single-budget IMM.
///
/// Equivalent to PRIMA with a single-entry budget vector (the prefix
/// property is trivial for one budget). Returns k ordered seeds.
/// `excluded` nodes are never selected as seeds (used by the disjoint
/// baselines, which repeatedly call IMM on shrinking candidate sets).
/// `rr_options.stream_cache` warm-starts the pools across calls (see
/// prima.h); results are bit-identical warm or cold.
ImResult Imm(const Graph& graph, size_t k, double eps, double ell,
             uint64_t seed, unsigned workers = 0,
             const std::vector<NodeId>& excluded = {},
             RrOptions rr_options = {});

}  // namespace uic
