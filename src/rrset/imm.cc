#include "rrset/imm.h"

#include <cmath>

#include "common/check.h"
#include "rrset/prima.h"

namespace uic {

double LogChoose(double n, double k) {
  if (k <= 0 || k >= n) return 0.0;
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

double LambdaPrime(double n, double k, double eps_prime, double ell_prime) {
  const double log_terms =
      LogChoose(n, k) + ell_prime * std::log(n) + std::log(std::log2(n));
  return (2.0 + 2.0 / 3.0 * eps_prime) * log_terms * n / (eps_prime * eps_prime);
}

double LambdaStar(double n, double k, double eps, double ell_prime) {
  constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;
  const double alpha = std::sqrt(ell_prime * std::log(n) + std::log(2.0));
  const double beta = std::sqrt(
      kOneMinusInvE * (LogChoose(n, k) + ell_prime * std::log(n) + std::log(2.0)));
  const double t = kOneMinusInvE * alpha + beta;
  return 2.0 * n * t * t / (eps * eps);
}

ImResult Imm(const Graph& graph, size_t k, double eps, double ell,
             uint64_t seed, unsigned workers,
             const std::vector<NodeId>& excluded, RrOptions rr_options) {
  // IMM is PRIMA with a single budget: ℓ' degenerates to ℓ (no union bound
  // over budgets) and the prefix property is trivial.
  return Prima(graph, {static_cast<uint32_t>(k)}, eps, ell, seed, workers,
               excluded, rr_options);
}

}  // namespace uic
