// Warm RR-sample reuse across solver invocations (the sweep engine's pool
// cache).
//
// RR generation is organized as `kRrStreams` logical sample streams, and a
// stream's sample sequence is a pure function of (graph, sampling options,
// seed, stream index) — see rr_collection.h. An `RrStreamCache` memoizes
// those sequences: when an `RrCollection` is constructed with
// `RrOptions::stream_cache` set, `GenerateUntil` *serves* samples from the
// cache (extending it by actually sampling only past the high-water mark)
// instead of re-drawing them. Because the served samples are byte-for-byte
// what a cold collection would have drawn, every consumer — PRIMA's phase
// loop, its regeneration pass, IMM, the Com-IC coin samplers — produces
// bit-identical results warm or cold; the only difference is how many RR
// sets are sampled from scratch.
//
// This is what makes budget sweeps cheap: consecutive PRIMA invocations at
// growing budgets use the same master seed, so their phase pools (and,
// separately, their regeneration pools) are nested prefixes of the same
// cached streams — a 4-point sweep samples roughly the largest point's
// pool once instead of four pools from scratch.
//
// Entries are keyed by (seed, sampling semantics): the linear-threshold
// flag and the *contents* of any node-pass-probability vector. The cache
// is bound to one graph (checked) and is NOT thread-safe across concurrent
// solver invocations; a SweepRunner drives solves sequentially. It is
// therefore deliberately mutex-free and carries no thread-safety
// capabilities (common/annotations.h): the only intra-solve concurrency
// is EnsureSamples extending *distinct* streams under the ParallelFor
// barrier, coordinated by the two lifetime counters below being atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"
#include "rrset/rr_collection.h"

namespace uic {

/// \brief Memoized per-stream RR sample sequences, shared across the
/// solver invocations of a sweep.
class RrStreamCache {
 public:
  RrStreamCache() = default;

  // Not copyable: collections hold SetRefs into the cache's arenas.
  RrStreamCache(const RrStreamCache&) = delete;
  RrStreamCache& operator=(const RrStreamCache&) = delete;

  /// Aggregate reuse accounting. The sampled/served counters are monotone
  /// over the cache's lifetime (they survive Clear/Trim, so per-solve
  /// deltas stay meaningful); `entries` reflects the current contents.
  struct Stats {
    size_t sampled_sets = 0;   ///< RR sets drawn from scratch into the cache
    size_t sampled_nodes = 0;  ///< Σ |R| over those sets
    size_t served_sets = 0;    ///< RR sets handed to collections (incl. repeats)
    size_t entries = 0;        ///< distinct (seed, semantics) stream groups
  };
  Stats stats() const;

  /// Drop every entry (collections serving from this cache must be
  /// discarded first — their SetRefs alias the cache's arenas).
  void Clear();

  /// Drop all but the `keep` most recently created node-pass-probability
  /// entries (coin pools). Coin contents usually change with the budget
  /// point (they derive from the i2 seed set), so old coin entries are
  /// dead weight a long Com-IC sweep would otherwise accumulate linearly;
  /// keeping the newest few preserves reuse for specs that pin the coin
  /// budget. Plain entries (no coins) are always kept. Like Clear(), only
  /// safe while no collection is serving from the cache — SweepRunner
  /// calls it between cells.
  void TrimPassProbEntries(size_t keep);

 private:
  friend class RrCollection;

  /// One memoized sample: nodes live in an arena owned by the stream.
  struct Sample {
    const NodeId* data;
    uint32_t size;
    size_t edges;  ///< in-edges examined while drawing it (EPT accounting)
  };

  /// One logical stream's materialized prefix.
  struct Stream {
    Rng rng;  ///< positioned after `samples.size()` draws
    std::vector<std::vector<NodeId>> arenas;
    std::vector<Sample> samples;
  };

  /// Streams for one (seed, sampling semantics) group. The RESOLVED
  /// kernel is part of the key: the kernels draw different RNG sequences,
  /// so kScan and kSkip streams for the same seed are distinct sample
  /// sequences (kAuto and kSkip resolve identically and share an entry).
  struct Entry {
    uint64_t seed = 0;
    bool linear_threshold = false;
    bool has_pass_prob = false;
    SamplingKernel kernel = SamplingKernel::kSkip;  ///< resolved, never kAuto
    std::vector<float> pass_prob;  ///< copied contents, exact-match keyed
    std::vector<Stream> streams;   ///< kRrStreams
    /// Cache-owned plan the entry's samplers run on (null for kScan);
    /// shared across entries and built once per bound graph. Building it
    /// in GetEntry — serially, before EnsureSamples fans out — is what
    /// keeps the concurrent stream extensions free of shared mutation.
    std::shared_ptr<const SamplingPlan> plan;
  };

  /// Bind to (or verify against) `graph`; the cache serves one graph.
  void BindGraph(const Graph& graph);

  /// Find-or-create the entry for (seed, options-semantics).
  Entry* GetEntry(uint64_t seed, const RrOptions& options);

  /// Extend `entry`'s stream `s` until it holds at least `count` samples.
  /// Safe to call concurrently for distinct streams of the same entry.
  void EnsureSamples(Entry* entry, unsigned s, size_t count);

  const Graph* graph_ = nullptr;
  std::vector<std::unique_ptr<Entry>> entries_;
  /// Lazily built skip-kernel plans for the bound graph, shared by every
  /// entry that needs them (cleared with the entries on Clear()).
  std::shared_ptr<const SamplingPlan> ic_plan_;
  std::shared_ptr<const SamplingPlan> lt_plan_;
  // Monotone lifetime counters; sampled_* are only ever touched under the
  // ParallelFor barrier (atomics: distinct streams extend concurrently).
  std::atomic<size_t> sampled_sets_{0};
  std::atomic<size_t> sampled_nodes_{0};
  size_t served_sets_ = 0;
};

}  // namespace uic
