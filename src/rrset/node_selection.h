// Greedy max-cover seed selection over RR sets ("NodeSelection" in
// IMM/PRIMA). Deterministic: ties are broken toward the smaller node id.
#pragma once

#include <vector>

#include "rrset/rr_collection.h"

namespace uic {

/// \brief Result of greedy max-cover: an *ordered* seed list plus the
/// fraction of RR sets covered after each pick (so any prefix's coverage
/// F_R(S_k) is available — the property PRIMA's budget switching relies on).
struct SeedSelection {
  std::vector<NodeId> seeds;       ///< greedy order, size <= k
  std::vector<double> coverage;    ///< coverage[j] = F_R(top j+1 seeds)

  double CoverageAt(size_t k) const {
    if (seeds.empty() || k == 0) return 0.0;
    return coverage[std::min(k, seeds.size()) - 1];
  }
};

/// \brief Greedy max-cover of `k` nodes over the RR pool.
///
/// `excluded` nodes are never selected (used by the disjoint baselines).
/// Lazy-greedy (CELF) with exact re-evaluation on pop, running straight
/// off the collection's incrementally maintained node→RR-set index (no
/// per-call index build).
SeedSelection NodeSelection(const RrCollection& collection, size_t k,
                            const std::vector<NodeId>& excluded = {});

/// \brief Number of RR sets in `collection` containing at least one node
/// of `seeds` (the coverage numerator of σ̂(S) = n · covered / |R|).
/// Uses the maintained index: cost is Σ_{v∈S} IndexDegree(v), not
/// TotalNodes().
size_t CountCoveredSets(const RrCollection& collection,
                        const std::vector<NodeId>& seeds);

}  // namespace uic
