// PRIMA: PRefix-preserving Influence Maximization Algorithm (§4.2.3,
// Algorithm 2).
//
// Given a budget vector ®b (sorted internally in non-increasing order),
// PRIMA returns an *ordered* seed list S_b of size b = max(®b) such that,
// with probability at least 1 − 1/n^ℓ, *every* prefix of size b_i is a
// (1 − 1/e − ε)-approximation to the optimal spread OPT_{b_i}. This is
// the component that lets bundleGRD allocate every item's seeds as a
// prefix of one common ranking.
//
// Implementation notes (mirroring Algorithm 2):
//  * ℓ is first boosted to ℓ + log2/log n, and ℓ' = log_n(n^ℓ · |®b|)
//    pays the union bound over budgets (Lemma 9).
//  * Budgets are processed from largest to smallest; the RR pool only
//    grows, and when switching budgets the previous NodeSelection ordering
//    is reused (its prefix is exactly NodeSelection at the smaller budget).
//  * After all budgets are processed, the pool is regenerated from scratch
//    at the final size and the returned ordering is computed on the fresh
//    pool (the Chen'18 fix for IMM's martingale dependence issue).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "rrset/imm.h"

namespace uic {

/// \brief Prefix-preserving multi-budget seed selection.
///
/// `budgets` need not be sorted; the maximum entry determines the length
/// of the returned ordering. ε > 0, ℓ > 0.
/// `rr_options` selects the propagation model the RR sets are sampled
/// under (IC by default; set `linear_threshold` for LT — Theorem 2 carries
/// over to any triggering model, §5). Setting `rr_options.stream_cache`
/// warm-starts both the phase pool and the regeneration pool from a shared
/// `RrStreamCache`: consecutive PRIMA calls at growing budgets (a sweep)
/// then only sample each pool's delta, with bit-identical results.
ImResult Prima(const Graph& graph, const std::vector<uint32_t>& budgets,
               double eps, double ell, uint64_t seed, unsigned workers = 0,
               const std::vector<NodeId>& excluded = {},
               RrOptions rr_options = {});

}  // namespace uic
