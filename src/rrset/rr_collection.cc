#include "rrset/rr_collection.h"

#include "common/check.h"
#include "common/parallel.h"

namespace uic {

RrSampler::RrSampler(const Graph& graph, RrOptions options)
    : graph_(graph),
      options_(options),
      visited_epoch_(graph.num_nodes(), 0) {}

size_t RrSampler::SampleInto(Rng& rng, std::vector<NodeId>* out) {
  const NodeId root = static_cast<NodeId>(rng.NextBounded(graph_.num_nodes()));
  return SampleRootedInto(root, rng, out);
}

size_t RrSampler::SampleRootedInto(NodeId root, Rng& rng,
                                   std::vector<NodeId>* out) {
  out->clear();
  ++epoch_;
  size_t edges = 0;
  if (options_.node_pass_prob != nullptr) {
    if (!rng.NextBernoulli((*options_.node_pass_prob)[root])) {
      return edges;  // root rejected: empty RR set
    }
  }
  visited_epoch_[root] = epoch_;
  out->push_back(root);
  if (options_.linear_threshold) {
    // LT live-edge: reverse random walk — each node contributes at most
    // one in-edge, selected with probability proportional to its weight.
    NodeId w = root;
    while (true) {
      auto srcs = graph_.InNeighbors(w);
      auto probs = graph_.InProbs(w);
      edges += srcs.size();
      NodeId src = ~NodeId{0};
      double r = rng.NextDouble();
      for (size_t k = 0; k < srcs.size(); ++k) {
        if (r < probs[k]) {
          src = srcs[k];
          break;
        }
        r -= probs[k];
      }
      if (src == ~NodeId{0} || visited_epoch_[src] == epoch_) break;
      if (options_.node_pass_prob != nullptr &&
          !rng.NextBernoulli((*options_.node_pass_prob)[src])) {
        break;
      }
      visited_epoch_[src] = epoch_;
      out->push_back(src);
      w = src;
    }
    return edges;
  }
  queue_.clear();
  queue_.push_back(root);
  size_t head = 0;
  while (head < queue_.size()) {
    const NodeId w = queue_[head++];
    auto srcs = graph_.InNeighbors(w);
    auto probs = graph_.InProbs(w);
    edges += srcs.size();
    for (size_t k = 0; k < srcs.size(); ++k) {
      const NodeId u = srcs[k];
      if (visited_epoch_[u] == epoch_) continue;
      if (!rng.NextBernoulli(probs[k])) continue;
      if (options_.node_pass_prob != nullptr &&
          !rng.NextBernoulli((*options_.node_pass_prob)[u])) {
        // Node rejected: mark visited so it is not retried through another
        // edge (its adoption coin is flipped once), and do not traverse.
        visited_epoch_[u] = epoch_;
        continue;
      }
      visited_epoch_[u] = epoch_;
      out->push_back(u);
      queue_.push_back(u);
    }
  }
  return edges;
}

RrCollection::RrCollection(const Graph& graph, uint64_t seed,
                           unsigned workers, RrOptions options)
    : graph_(graph), options_(options), workers_(workers) {
  if (workers_ == 0) workers_ = DefaultWorkers();
  streams_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    streams_.push_back(Rng::Split(seed, w));
  }
  offsets_.push_back(0);
}

void RrCollection::Clear() {
  offsets_.assign(1, 0);
  nodes_.clear();
  edges_examined_ = 0;
}

void RrCollection::GenerateUntil(size_t target) {
  if (target <= size()) return;
  const size_t need = target - size();
  // Each worker samples a deterministic slice using its persistent stream;
  // results are appended in worker order so the pool content depends only
  // on (seed, workers) and the sequence of targets.
  struct WorkerOut {
    std::vector<size_t> sizes;
    std::vector<NodeId> nodes;
    size_t edges = 0;
  };
  std::vector<WorkerOut> outs(workers_);
  ParallelFor(need, workers_, [&](unsigned w, size_t begin, size_t end) {
    RrSampler sampler(graph_, options_);
    WorkerOut& out = outs[w];
    std::vector<NodeId> buf;
    for (size_t i = begin; i < end; ++i) {
      out.edges += sampler.SampleInto(streams_[w], &buf);
      out.sizes.push_back(buf.size());
      out.nodes.insert(out.nodes.end(), buf.begin(), buf.end());
    }
  });
  for (const WorkerOut& out : outs) {
    for (size_t s : out.sizes) {
      offsets_.push_back(offsets_.back() + s);
    }
    nodes_.insert(nodes_.end(), out.nodes.begin(), out.nodes.end());
    edges_examined_ += out.edges;
  }
  UIC_CHECK_GE(size(), target);
}

}  // namespace uic
