#include "rrset/rr_collection.h"

#include <array>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "rrset/rr_stream_cache.h"

namespace uic {

namespace {

/// Number of global set indices g < g0 with g % kRrStreams == s — i.e. the
/// position stream `s` has reached once the pool holds g0 sets.
inline size_t QuotBegin(size_t g0, unsigned s) {
  return (g0 + kRrStreams - 1 - s) / kRrStreams;
}

}  // namespace

RrSampler::RrSampler(const Graph& graph, RrOptions options)
    : graph_(graph),
      options_(options),
      visited_epoch_(graph.num_nodes(), 0) {
  if (ResolveSamplingKernel(options_.kernel) == SamplingKernel::kSkip) {
    const uint32_t features = options_.linear_threshold
                                  ? SamplingPlan::kLtAlias
                                  : SamplingPlan::kIcBuckets;
    if (options_.sampling_plan == nullptr) {
      owned_plan_ = SamplingPlan::Build(
          graph, SamplingPlan::Direction::kReverse, features);
      options_.sampling_plan = owned_plan_.get();
    }
    plan_ = options_.sampling_plan;
    UIC_CHECK(plan_->direction() == SamplingPlan::Direction::kReverse);
    UIC_CHECK(options_.linear_threshold ? plan_->has_lt_alias()
                                        : plan_->has_ic_buckets());
  }
}

size_t RrSampler::SampleInto(Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  return SampleAppend(rng, out);
}

size_t RrSampler::SampleRootedInto(NodeId root, Rng& rng,
                                   std::vector<NodeId>* out) {
  out->clear();
  return SampleRootedAppend(root, rng, out);
}

size_t RrSampler::SampleAppend(Rng& rng, std::vector<NodeId>* arena) {
  const NodeId root = static_cast<NodeId>(rng.NextBounded(graph_.num_nodes()));
  return SampleRootedAppend(root, rng, arena);
}

bool RrSampler::TryVisit(NodeId u, Rng& rng, std::vector<NodeId>* arena) {
  if (visited_epoch_[u] == epoch_) return false;
  if (options_.node_pass_prob != nullptr &&
      !rng.NextBernoulli((*options_.node_pass_prob)[u])) {
    // Node rejected: mark visited so it is not retried through another
    // edge (its adoption coin is flipped once), and do not traverse.
    visited_epoch_[u] = epoch_;
    return false;
  }
  visited_epoch_[u] = epoch_;
  arena->push_back(u);
  return true;
}

void RrSampler::ExpandScan(NodeId w, Rng& rng, std::vector<NodeId>* arena) {
  auto srcs = graph_.InNeighbors(w);
  auto probs = graph_.InProbs(w);
  for (size_t k = 0; k < srcs.size(); ++k) {
    const NodeId u = srcs[k];
    if (visited_epoch_[u] == epoch_) continue;
    if (!rng.NextBernoulli(probs[k])) continue;
    if (TryVisit(u, rng, arena)) queue_.push_back(u);
  }
}

void RrSampler::ExpandSkip(NodeId w, Rng& rng, std::vector<NodeId>* arena) {
  // Geometric skip: within a bucket every edge shares probability p, so
  // the index gap to the next live edge is geometric — one draw per live
  // edge (plus at most one closing draw per bucket; none is spent once
  // the last edge has been reached, which keeps size-1 buckets on the
  // exact Bernoulli draw sequence). Unlike the scan kernel this also
  // "flips" coins for edges into already-visited nodes; those coins never
  // affect the sampled set, so the set distribution is identical (only
  // the draw sequence differs).
  for (const SamplingPlan::Bucket& b : plan_->Buckets(w)) {
    size_t i = rng.NextGeometric(b.log1p_neg_p);
    while (i < b.size) {
      if (TryVisit(b.nodes[i], rng, arena)) queue_.push_back(b.nodes[i]);
      if (i + 1 >= b.size) break;  // no edges left: skip the closing draw
      i += 1 + rng.NextGeometric(b.log1p_neg_p);
    }
  }
}

size_t RrSampler::LtWalkScan(NodeId root, Rng& rng,
                             std::vector<NodeId>* arena) {
  // LT live-edge: reverse random walk — each node contributes at most
  // one in-edge, selected with probability proportional to its weight.
  size_t edges = 0;
  NodeId w = root;
  while (true) {
    auto srcs = graph_.InNeighbors(w);
    auto probs = graph_.InProbs(w);
    edges += srcs.size();
    NodeId src = ~NodeId{0};
    double r = rng.NextDouble();
    for (size_t k = 0; k < srcs.size(); ++k) {
      if (r < probs[k]) {
        src = srcs[k];
        break;
      }
      r -= probs[k];
    }
    if (src == ~NodeId{0} || visited_epoch_[src] == epoch_) break;
    if (options_.node_pass_prob != nullptr &&
        !rng.NextBernoulli((*options_.node_pass_prob)[src])) {
      break;
    }
    visited_epoch_[src] = epoch_;
    arena->push_back(src);
    w = src;
  }
  return edges;
}

size_t RrSampler::LtWalkAlias(NodeId root, Rng& rng,
                              std::vector<NodeId>* arena) {
  // Same walk, O(1) per step via the plan's alias tables.
  size_t edges = 0;
  NodeId w = root;
  while (true) {
    edges += graph_.InDegree(w);
    const NodeId src = plan_->SampleLtSource(w, rng);
    if (src == SamplingPlan::kNoSource || visited_epoch_[src] == epoch_) break;
    if (options_.node_pass_prob != nullptr &&
        !rng.NextBernoulli((*options_.node_pass_prob)[src])) {
      break;
    }
    visited_epoch_[src] = epoch_;
    arena->push_back(src);
    w = src;
  }
  return edges;
}

size_t RrSampler::SampleRootedAppend(NodeId root, Rng& rng,
                                     std::vector<NodeId>* arena) {
  ++epoch_;
  if (options_.node_pass_prob != nullptr) {
    if (!rng.NextBernoulli((*options_.node_pass_prob)[root])) {
      return 0;  // root rejected: empty RR set
    }
  }
  visited_epoch_[root] = epoch_;
  arena->push_back(root);
  if (options_.linear_threshold) {
    return plan_ != nullptr ? LtWalkAlias(root, rng, arena)
                            : LtWalkScan(root, rng, arena);
  }
  queue_.clear();
  queue_.push_back(root);
  size_t head = 0;
  size_t edges = 0;
  while (head < queue_.size()) {
    const NodeId w = queue_[head++];
    // EPT accounting counts every in-edge of a visited node as examined,
    // including edges the skip kernel jumps over (rr_collection.h).
    edges += graph_.InDegree(w);
    if (plan_ != nullptr && !plan_->IsGeneral(w)) {
      ExpandSkip(w, rng, arena);
    } else {
      ExpandScan(w, rng, arena);
    }
  }
  return edges;
}

RrCollection::RrCollection(const Graph& graph, uint64_t seed,
                           unsigned workers, RrOptions options,
                           ThreadPool* pool)
    : graph_(graph),
      options_(options),
      workers_(workers),
      pool_(pool),
      seed_(seed),
      cache_(options.stream_cache) {
  if (workers_ == 0) workers_ = DefaultWorkers();
  if (pool_ == nullptr) pool_ = &ThreadPool::Shared();
  SeedStreams(seed);
  stream_pos_.assign(kRrStreams, 0);
  index_degree_.assign(graph_.num_nodes(), 0);
}

void RrCollection::SeedStreams(uint64_t seed) {
  streams_.clear();
  streams_.reserve(kRrStreams);
  for (unsigned s = 0; s < kRrStreams; ++s) {
    streams_.push_back(Rng::Split(seed, s));
  }
}

void RrCollection::Clear() {
  // Stream positions (cold: the RNG states; warm: stream_pos_) persist, so
  // growth after Clear continues the sample streams where they left off.
  sets_.clear();
  arenas_.clear();
  total_nodes_ = 0;
  edges_examined_ = 0;
  index_.clear();
  index_degree_.assign(graph_.num_nodes(), 0);
}

void RrCollection::Reset(uint64_t seed) {
  Clear();
  seed_ = seed;
  SeedStreams(seed);
  stream_pos_.assign(kRrStreams, 0);
  cache_entry_ = nullptr;  // re-bound (to the new seed's entry) on next growth
}

void RrCollection::GenerateUntil(size_t target) {
  if (target <= size()) return;
  const size_t first = sets_.size();
  if (cache_ != nullptr) {
    GenerateFromCache(first, target);
  } else {
    EnsurePlan();
    GenerateFresh(first, target);
  }
  UIC_CHECK_GE(size(), target);
  ExtendIndex(first);
}

void RrCollection::EnsurePlan() {
  if (ResolveSamplingKernel(options_.kernel) != SamplingKernel::kSkip ||
      options_.sampling_plan != nullptr) {
    return;
  }
  if (plan_ == nullptr) {
    plan_ = SamplingPlan::Build(graph_, SamplingPlan::Direction::kReverse,
                                options_.linear_threshold
                                    ? SamplingPlan::kLtAlias
                                    : SamplingPlan::kIcBuckets);
  }
  options_.sampling_plan = plan_.get();
}

void RrCollection::GenerateFresh(size_t first, size_t target) {
  // Each logical stream samples its slice of [first, target) — the global
  // indices g with g % kRrStreams == s, i.e. the next QuotBegin(target, s)
  // − QuotBegin(first, s) draws of its persistent RNG — into its own
  // arena. `workers_` only bounds how many streams run concurrently; the
  // pool content depends on the seed alone.
  struct StreamOut {
    std::vector<uint32_t> sizes;
    std::vector<NodeId> nodes;
    size_t edges = 0;
  };
  std::array<StreamOut, kRrStreams> outs;
  pool_->ParallelFor(
      kRrStreams, workers_, [&](unsigned, size_t sb, size_t se) {
        for (size_t s = sb; s < se; ++s) {
          const size_t q0 = QuotBegin(first, static_cast<unsigned>(s));
          const size_t q1 = QuotBegin(target, static_cast<unsigned>(s));
          if (q1 <= q0) continue;
          RrSampler sampler(graph_, options_);
          StreamOut& out = outs[s];
          for (size_t q = q0; q < q1; ++q) {
            const size_t before = out.nodes.size();
            out.edges += sampler.SampleAppend(streams_[s], &out.nodes);
            out.sizes.push_back(static_cast<uint32_t>(out.nodes.size() -
                                                      before));
          }
        }
      });

  // Merge by move: each stream arena becomes collection storage as-is (its
  // heap buffer, and thus every SetRef into it, stays stable), then the
  // SetRefs are laid down in global-index order.
  sets_.reserve(target);
  std::array<const NodeId*, kRrStreams> base{};
  std::array<size_t, kRrStreams> off{};
  std::array<size_t, kRrStreams> idx{};
  uint64_t edges_round = 0;
  for (unsigned s = 0; s < kRrStreams; ++s) {
    StreamOut& out = outs[s];
    edges_examined_ += out.edges;
    edges_round += out.edges;
    total_nodes_ += out.nodes.size();
    stream_pos_[s] += out.sizes.size();
    if (!out.nodes.empty()) {
      arenas_.push_back(std::move(out.nodes));
      base[s] = arenas_.back().data();
    }
  }
  for (size_t g = first; g < target; ++g) {
    const unsigned s = static_cast<unsigned>(g % kRrStreams);
    const uint32_t sz = outs[s].sizes[idx[s]++];
    sets_.push_back(SetRef{base[s] + off[s], sz});
    off[s] += sz;
  }
  // One batched add per growth round (not per set) keeps the instrument
  // cost off the sampling hot path.
  UIC_METRIC_COUNTER(rr_sets, "uic_rr_sets_sampled_total",
                     "RR sets freshly sampled (cold path + cache fills).");
  rr_sets.Add(target - first);
  UIC_METRIC_COUNTER(rr_edges, "uic_rr_edges_examined_total",
                     "Edges examined by the RR sampling kernels.");
  rr_edges.Add(edges_round);
}

void RrCollection::GenerateFromCache(size_t first, size_t target) {
  auto* entry = static_cast<RrStreamCache::Entry*>(cache_entry_);
  if (entry == nullptr) {
    cache_->BindGraph(graph_);
    entry = cache_->GetEntry(seed_, options_);
    cache_entry_ = entry;
  }
  // Extend the cache streams (in parallel) past this round's high-water
  // marks; streams already long enough cost nothing.
  pool_->ParallelFor(
      kRrStreams, workers_, [&](unsigned, size_t sb, size_t se) {
        for (size_t s = sb; s < se; ++s) {
          const unsigned su = static_cast<unsigned>(s);
          const size_t grow = QuotBegin(target, su) - QuotBegin(first, su);
          if (grow == 0) continue;
          cache_->EnsureSamples(entry, su, stream_pos_[s] + grow);
        }
      });

  // Serve the slices — byte-for-byte the sets GenerateFresh would have
  // drawn, since cache streams replay the same RNG sequences.
  sets_.reserve(target);
  std::array<size_t, kRrStreams> taken{};
  for (size_t g = first; g < target; ++g) {
    const unsigned s = static_cast<unsigned>(g % kRrStreams);
    const RrStreamCache::Sample& smp =
        entry->streams[s].samples[stream_pos_[s] + taken[s]];
    ++taken[s];
    sets_.push_back(SetRef{smp.data, smp.size});
    total_nodes_ += smp.size;
    edges_examined_ += smp.edges;
  }
  for (unsigned s = 0; s < kRrStreams; ++s) stream_pos_[s] += taken[s];
  cache_->served_sets_ += target - first;
  UIC_METRIC_COUNTER(rr_served, "uic_rr_cache_sets_served_total",
                     "RR sets served by warm-cache stream replay.");
  rr_served.Add(target - first);
}

void RrCollection::ExtendIndex(size_t first_new) {
  const size_t num_new = sets_.size() - first_new;
  if (num_new == 0) return;
  UIC_CHECK_LT(sets_.size(), size_t{UINT32_MAX});  // ids are uint32
  const size_t n = graph_.num_nodes();

  // Logical workers for this delta build; ParallelFor clamps identically,
  // so `w` in the lambdas is always < iw. Small rounds use fewer workers:
  // the counting scratch (and its zeroing) is iw × n, which must not cost
  // Θ(workers·n) for a round that adds a handful of sets.
  const size_t by_work = (num_new + 1023) / 1024;
  unsigned iw = workers_;
  if (iw > by_work) iw = static_cast<unsigned>(by_work);
  if (iw < 1) iw = 1;

  // Pass 1 (parallel): per-(worker, node) occurrence counts over each
  // worker's slice of the new sets.
  std::vector<uint32_t> scratch(static_cast<size_t>(iw) * n, 0);
  uint32_t* counts = scratch.data();
  pool_->ParallelFor(num_new, iw, [&](unsigned w, size_t begin, size_t end) {
    uint32_t* cnt = counts + static_cast<size_t>(w) * n;
    for (size_t r = begin; r < end; ++r) {
      for (NodeId v : Set(first_new + r)) ++cnt[v];
    }
  });

  // Prefix sums (serial): delta offsets per node, and in place of each
  // count the start cursor for that (worker, node) region, stored
  // *relative to off[v]* so it fits uint32 (per-node degree < 2^32) even
  // when the delta itself holds more than 2^32 entries. Worker order per
  // node matches set-id order, keeping ids ascending within a node.
  IndexDelta delta;
  delta.off.assign(n + 1, 0);
  size_t run = 0;
  for (size_t v = 0; v < n; ++v) {
    delta.off[v] = run;
    uint32_t rel = 0;
    for (unsigned w = 0; w < iw; ++w) {
      uint32_t& slot = counts[static_cast<size_t>(w) * n + v];
      const uint32_t c = slot;
      slot = rel;
      rel += c;
    }
    index_degree_[v] += rel;
    run += rel;
  }
  delta.off[n] = run;

  // Pass 2 (parallel): scatter set ids into the delta via the per-worker
  // cursors; every (worker, node) writes a disjoint region.
  delta.sets.resize(run);
  uint32_t* slots = delta.sets.data();
  const size_t* off = delta.off.data();
  pool_->ParallelFor(num_new, iw, [&](unsigned w, size_t begin, size_t end) {
    uint32_t* cur = counts + static_cast<size_t>(w) * n;
    for (size_t r = begin; r < end; ++r) {
      const uint32_t id = static_cast<uint32_t>(first_new + r);
      for (NodeId v : Set(id)) slots[off[v] + cur[v]++] = id;
    }
  });
  index_.push_back(std::move(delta));

  // Tiered merging (binary-counter style): fold the newest delta into its
  // predecessor while it is at least as large, so delta sizes stay
  // geometrically decreasing and the merge work stays amortized
  // near-linear for any growth schedule. The hard cap then bounds the
  // retained (n+1)-entry offset arrays and per-lookup delta walks even
  // for schedules of many strictly shrinking rounds.
  while (index_.size() >= 2 &&
         index_.back().sets.size() >=
             index_[index_.size() - 2].sets.size()) {
    MergeIndexTail(index_.size() - 2);
  }
  constexpr size_t kMaxIndexDeltas = 8;
  if (index_.size() > kMaxIndexDeltas) MergeIndexTail(0);
}

void RrCollection::MergeIndexTail(size_t first) {
  if (index_.size() - first <= 1) return;
  UIC_METRIC_COUNTER(rr_merges, "uic_rr_index_merges_total",
                     "Coverage-index delta merges (tiered merging).");
  rr_merges.Add();
  const size_t n = graph_.num_nodes();
  const size_t num_deltas = index_.size();
  IndexDelta merged;
  merged.off.assign(n + 1, 0);
  size_t run = 0;
  for (size_t v = 0; v < n; ++v) {
    merged.off[v] = run;
    for (size_t d = first; d < num_deltas; ++d) {
      run += index_[d].off[v + 1] - index_[d].off[v];
    }
  }
  merged.off[n] = run;
  merged.sets.resize(run);
  uint32_t* slots = merged.sets.data();
  const IndexDelta* deltas = index_.data();
  // Parallel over node ranges: each node's merged slice is filled by
  // walking the tail deltas in order, preserving ascending set-id order;
  // regions are disjoint per node.
  pool_->ParallelFor(n, workers_, [&](unsigned, size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      uint32_t* out = slots + merged.off[v];
      for (size_t d = first; d < num_deltas; ++d) {
        const IndexDelta& dd = deltas[d];
        const size_t d_end = dd.off[v + 1];
        for (size_t i = dd.off[v]; i < d_end; ++i) *out++ = dd.sets[i];
      }
    }
  });
  index_.resize(first);
  index_.push_back(std::move(merged));
}

}  // namespace uic
