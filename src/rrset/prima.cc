#include "rrset/prima.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uic {

ImResult Prima(const Graph& graph, const std::vector<uint32_t>& budgets_in,
               double eps, double ell, uint64_t seed, unsigned workers,
               const std::vector<NodeId>& excluded, RrOptions rr_options) {
  ImResult result;
  if (budgets_in.empty()) return result;
  UIC_CHECK_GT(eps, 0.0);
  UIC_CHECK_GT(ell, 0.0);

  std::vector<uint32_t> budgets(budgets_in);
  std::sort(budgets.begin(), budgets.end(), std::greater<>());
  while (!budgets.empty() && budgets.back() == 0) budgets.pop_back();
  if (budgets.empty()) return result;

  const double n = static_cast<double>(graph.num_nodes());
  UIC_CHECK_GE(graph.num_nodes(), 2u);
  const size_t b = std::min<size_t>(budgets[0], graph.num_nodes());

  // Line 2: boost ℓ for the final union bound, then pay for |®b| budgets.
  const double ell_boosted = ell + std::log(2.0) / std::log(n);
  const double ell_prime =
      ell_boosted + std::log(static_cast<double>(budgets.size())) / std::log(n);
  const double eps_prime = std::sqrt(2.0) * eps;

  obs::TraceSpan phases_span("solver.prima");
  WallTimer sampling_timer;
  double sampling_seconds = 0.0;
  double selection_seconds = 0.0;

  RrCollection pool(graph, seed, workers, rr_options);
  const double i_max = std::log2(n) - 1.0;

  size_t s = 0;      // index into budgets
  double i = 1.0;    // phase counter
  bool budget_switch = false;
  SeedSelection last_sel;
  double theta_max = 0.0;

  while (i <= i_max && s < budgets.size()) {
    const double k = static_cast<double>(budgets[s]);
    const double x = n / std::pow(2.0, i);
    const double theta_i = LambdaPrime(n, k, eps_prime, ell_prime) / x;

    sampling_timer.Restart();
    pool.GenerateUntil(static_cast<size_t>(std::ceil(theta_i)));
    sampling_seconds += sampling_timer.ElapsedSeconds();

    double covered_frac;
    if (budget_switch) {
      // Reuse the prefix of the ordering computed for the previous (larger)
      // budget on the same pool — NodeSelection is deterministic greedy, so
      // its first k picks are NodeSelection(R, k).
      covered_frac = last_sel.CoverageAt(budgets[s]);
    } else {
      WallTimer sel_timer;
      last_sel = NodeSelection(pool, budgets[s], excluded);
      selection_seconds += sel_timer.ElapsedSeconds();
      covered_frac = last_sel.CoverageAt(budgets[s]);
    }

    if (n * covered_frac >= (1.0 + eps_prime) * x) {
      const double lb = n * covered_frac / (1.0 + eps_prime);
      const double theta_k = LambdaStar(n, k, eps, ell_prime) / lb;
      sampling_timer.Restart();
      pool.GenerateUntil(static_cast<size_t>(std::ceil(theta_k)));
      sampling_seconds += sampling_timer.ElapsedSeconds();
      theta_max = std::max(theta_max, theta_k);
      ++s;
      budget_switch = true;
    } else {
      i += 1.0;
      budget_switch = false;
    }
  }

  if (s < budgets.size()) {
    // Phases exhausted: fall back to LB = 1 for the current budget (line
    // 21). Smaller remaining budgets need no more samples since λ* is
    // monotone in k.
    const double theta_k =
        LambdaStar(n, static_cast<double>(budgets[s]), eps, ell_prime);
    sampling_timer.Restart();
    pool.GenerateUntil(static_cast<size_t>(std::ceil(theta_k)));
    sampling_seconds += sampling_timer.ElapsedSeconds();
    theta_max = std::max(theta_max, theta_k);
  }

  // Regeneration fix: the guarantee requires the final NodeSelection to run
  // on RR sets whose count was fixed *before* sampling them. Regenerate the
  // pool from scratch at the determined size — reusing the same engine
  // instance (arenas, index, thread pool) under a fresh seed.
  double theta_final = theta_max;
  if (theta_final <= 0.0) theta_final = static_cast<double>(pool.size());
  const size_t final_count =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(theta_final)));
  pool.Reset(seed ^ 0x5bf03635u);
  sampling_timer.Restart();
  pool.GenerateUntil(final_count);
  sampling_seconds += sampling_timer.ElapsedSeconds();

  WallTimer sel_timer;
  SeedSelection sel = NodeSelection(pool, b, excluded);
  selection_seconds += sel_timer.ElapsedSeconds();

  result.seeds = std::move(sel.seeds);
  result.coverage = std::move(sel.coverage);
  result.num_rr_sets = pool.size();
  result.total_rr_nodes = pool.TotalNodes();
  result.sampling_seconds = sampling_seconds;
  result.selection_seconds = selection_seconds;

  // One phase-time record per Prima run (the phases interleave across
  // rounds, so the accumulated sums are the per-phase truth).
  UIC_METRIC_TIMING_COUNTER(generate_us, "uic_solver_phase_us_total",
                            "phase=\"generate\"",
                            "Wall time per solve phase, microseconds.");
  UIC_METRIC_TIMING_COUNTER(select_us, "uic_solver_phase_us_total",
                            "phase=\"select\"",
                            "Wall time per solve phase, microseconds.");
  generate_us.Add(static_cast<uint64_t>(sampling_seconds * 1e6));
  select_us.Add(static_cast<uint64_t>(selection_seconds * 1e6));
  phases_span.SetAttr("generate_us",
                      static_cast<long long>(sampling_seconds * 1e6));
  phases_span.SetAttr("select_us",
                      static_cast<long long>(selection_seconds * 1e6));
  phases_span.SetAttr("rr_sets", static_cast<long long>(pool.size()));
  return result;
}

}  // namespace uic
