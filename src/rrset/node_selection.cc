#include "rrset/node_selection.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace uic {

SeedSelection NodeSelection(const RrCollection& collection, size_t k,
                            const std::vector<NodeId>& excluded) {
  const Graph& graph = collection.graph();
  const NodeId n = graph.num_nodes();
  const size_t num_sets = collection.size();
  SeedSelection result;
  if (num_sets == 0 || k == 0) return result;

  // Inverted index: node -> RR set ids containing it.
  std::vector<uint32_t> deg(n, 0);
  for (size_t r = 0; r < num_sets; ++r) {
    for (NodeId v : collection.Set(r)) ++deg[v];
  }
  std::vector<size_t> node_off(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) node_off[v + 1] = node_off[v] + deg[v];
  std::vector<uint32_t> node_sets(node_off[n]);
  {
    std::vector<size_t> cursor(node_off.begin(), node_off.end() - 1);
    for (size_t r = 0; r < num_sets; ++r) {
      for (NodeId v : collection.Set(r)) {
        node_sets[cursor[v]++] = static_cast<uint32_t>(r);
      }
    }
  }

  std::vector<uint8_t> banned(n, 0);
  for (NodeId v : excluded) banned[v] = 1;

  // Lazy greedy: heap of (stale gain, node); on pop, recompute the exact
  // gain (uncovered sets containing the node); if still the max, select.
  std::vector<uint8_t> covered(num_sets, 0);
  std::vector<uint8_t> selected(n, 0);
  using Entry = std::pair<uint32_t, NodeId>;  // (gain, node)
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;  // prefer smaller node id on ties
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v) {
    if (deg[v] > 0 && !banned[v]) heap.push({deg[v], v});
  }

  size_t covered_count = 0;
  std::vector<uint32_t> fresh_gain(n);
  for (NodeId v = 0; v < n; ++v) fresh_gain[v] = deg[v];
  std::vector<uint32_t> stamp(n, 0);  // round at which gain was refreshed
  uint32_t round = 0;

  while (result.seeds.size() < k && !heap.empty()) {
    auto [gain, v] = heap.top();
    heap.pop();
    if (selected[v]) continue;
    if (stamp[v] != round) {
      // Recompute the exact marginal gain.
      uint32_t g = 0;
      for (size_t idx = node_off[v]; idx < node_off[v + 1]; ++idx) {
        g += covered[node_sets[idx]] == 0;
      }
      fresh_gain[v] = g;
      stamp[v] = round;
      if (!heap.empty() && g < heap.top().first) {
        if (g > 0) heap.push({g, v});
        continue;
      }
      gain = g;
    }
    // Select v.
    selected[v] = 1;
    for (size_t idx = node_off[v]; idx < node_off[v + 1]; ++idx) {
      const uint32_t r = node_sets[idx];
      if (!covered[r]) {
        covered[r] = 1;
        ++covered_count;
      }
    }
    ++round;
    result.seeds.push_back(v);
    result.coverage.push_back(static_cast<double>(covered_count) /
                              static_cast<double>(num_sets));
    if (gain == 0) {
      // All remaining gains are zero; selection order among zero-gain
      // nodes is by node id (heap tie-break), keep going to fill k.
    }
  }
  // If the graph ran out of positive-gain nodes, pad with unselected,
  // non-excluded nodes (lowest id first) so callers always get k seeds
  // when k <= n - |excluded|.
  for (NodeId v = 0; v < n && result.seeds.size() < k; ++v) {
    if (!selected[v] && !banned[v]) {
      selected[v] = 1;
      result.seeds.push_back(v);
      result.coverage.push_back(static_cast<double>(covered_count) /
                                static_cast<double>(num_sets));
    }
  }
  return result;
}

}  // namespace uic
