#include "rrset/node_selection.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace uic {

SeedSelection NodeSelection(const RrCollection& collection, size_t k,
                            const std::vector<NodeId>& excluded) {
  const Graph& graph = collection.graph();
  const NodeId n = graph.num_nodes();
  const size_t num_sets = collection.size();
  SeedSelection result;
  if (num_sets == 0 || k == 0) return result;

  // The node→RR-set inverted index is maintained by the collection itself
  // (extended on every growth round), so selection starts immediately —
  // no per-call index build.
  std::vector<uint8_t> banned(n, 0);
  for (NodeId v : excluded) banned[v] = 1;

  // Lazy greedy: heap of (stale gain, node); on pop, recompute the exact
  // gain (uncovered sets containing the node); if still the max, select.
  std::vector<uint8_t> covered(num_sets, 0);
  std::vector<uint8_t> selected(n, 0);
  using Entry = std::pair<uint32_t, NodeId>;  // (gain, node)
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;  // prefer smaller node id on ties
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v) {
    if (collection.IndexDegree(v) > 0 && !banned[v]) {
      heap.push({collection.IndexDegree(v), v});
    }
  }

  size_t covered_count = 0;
  std::vector<uint32_t> stamp(n, 0);  // round at which gain was refreshed
  uint32_t round = 0;

  while (result.seeds.size() < k && !heap.empty()) {
    const NodeId v = heap.top().second;
    heap.pop();
    if (selected[v]) continue;
    if (stamp[v] != round) {
      // Recompute the exact marginal gain.
      uint32_t g = 0;
      collection.ForEachSetContaining(
          v, [&](uint32_t r) { g += covered[r] == 0; });
      stamp[v] = round;
      if (!heap.empty() && g < heap.top().first) {
        if (g > 0) heap.push({g, v});
        continue;
      }
    }
    // Select v. (Once all remaining gains hit zero, the heap tie-break
    // keeps selecting by ascending node id, so the loop still fills k.)
    selected[v] = 1;
    collection.ForEachSetContaining(v, [&](uint32_t r) {
      if (!covered[r]) {
        covered[r] = 1;
        ++covered_count;
      }
    });
    ++round;
    result.seeds.push_back(v);
    result.coverage.push_back(static_cast<double>(covered_count) /
                              static_cast<double>(num_sets));
  }
  // If the graph ran out of positive-gain nodes, pad with unselected,
  // non-excluded nodes (lowest id first) so callers always get k seeds
  // when k <= n - |excluded|.
  for (NodeId v = 0; v < n && result.seeds.size() < k; ++v) {
    if (!selected[v] && !banned[v]) {
      selected[v] = 1;
      result.seeds.push_back(v);
      result.coverage.push_back(static_cast<double>(covered_count) /
                                static_cast<double>(num_sets));
    }
  }
  return result;
}

size_t CountCoveredSets(const RrCollection& collection,
                        const std::vector<NodeId>& seeds) {
  std::vector<uint8_t> covered(collection.size(), 0);
  size_t count = 0;
  for (NodeId v : seeds) {
    collection.ForEachSetContaining(v, [&](uint32_t r) {
      if (!covered[r]) {
        covered[r] = 1;
        ++count;
      }
    });
  }
  return count;
}

}  // namespace uic
