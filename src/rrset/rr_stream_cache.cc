#include "rrset/rr_stream_cache.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace uic {

RrStreamCache::Stats RrStreamCache::stats() const {
  Stats s;
  s.sampled_sets = sampled_sets_.load(std::memory_order_relaxed);
  s.sampled_nodes = sampled_nodes_.load(std::memory_order_relaxed);
  s.served_sets = served_sets_;
  s.entries = entries_.size();
  return s;
}

void RrStreamCache::Clear() {
  entries_.clear();
  ic_plan_.reset();
  lt_plan_.reset();
  graph_ = nullptr;
  // The sampled/served counters deliberately persist: they are monotone
  // over the cache's lifetime, so per-point deltas stay meaningful across
  // Clears (the cold-sweep mode clears between points) and Trims.
}

void RrStreamCache::TrimPassProbEntries(size_t keep) {
  size_t with_coins = 0;
  for (const auto& e : entries_) with_coins += e->has_pass_prob;
  if (with_coins <= keep) return;
  size_t drop = with_coins - keep;
  // entries_ is in creation order; drop the oldest coin entries first.
  std::vector<std::unique_ptr<Entry>> kept;
  kept.reserve(entries_.size() - drop);
  for (auto& e : entries_) {
    if (e->has_pass_prob && drop > 0) {
      --drop;
      continue;
    }
    kept.push_back(std::move(e));
  }
  entries_ = std::move(kept);
}

void RrStreamCache::BindGraph(const Graph& graph) {
  if (graph_ == nullptr) {
    graph_ = &graph;
    return;
  }
  UIC_CHECK_MSG(graph_ == &graph,
                "RrStreamCache is bound to a different graph; one cache "
                "serves one network (Clear() it to rebind)");
}

RrStreamCache::Entry* RrStreamCache::GetEntry(uint64_t seed,
                                              const RrOptions& options) {
  const bool has_pp = options.node_pass_prob != nullptr;
  const SamplingKernel kernel = ResolveSamplingKernel(options.kernel);
  for (const auto& e : entries_) {
    if (e->seed != seed || e->linear_threshold != options.linear_threshold ||
        e->has_pass_prob != has_pp || e->kernel != kernel) {
      continue;
    }
    // Pass probabilities are keyed by *contents* (callers typically rebuild
    // the vector per invocation), so equal coins reuse the entry and
    // different coins — e.g. a different i2 seed set — get their own.
    if (has_pp && e->pass_prob != *options.node_pass_prob) continue;
    return e.get();
  }
  auto e = std::make_unique<Entry>();
  e->seed = seed;
  e->linear_threshold = options.linear_threshold;
  e->has_pass_prob = has_pp;
  e->kernel = kernel;
  if (has_pp) e->pass_prob = *options.node_pass_prob;
  if (kernel == SamplingKernel::kSkip) {
    // One plan per bound graph and feature, shared across entries; built
    // here (serially) so concurrent EnsureSamples calls only read it.
    std::shared_ptr<const SamplingPlan>& plan =
        options.linear_threshold ? lt_plan_ : ic_plan_;
    if (plan == nullptr) {
      plan = SamplingPlan::Build(*graph_, SamplingPlan::Direction::kReverse,
                                 options.linear_threshold
                                     ? SamplingPlan::kLtAlias
                                     : SamplingPlan::kIcBuckets);
    }
    e->plan = plan;
  }
  e->streams.resize(kRrStreams);
  for (unsigned s = 0; s < kRrStreams; ++s) {
    // Must match RrCollection::SeedStreams so cached draws replay exactly
    // the cold RNG sequences.
    e->streams[s].rng = Rng::Split(seed, s);
  }
  entries_.push_back(std::move(e));
  return entries_.back().get();
}

void RrStreamCache::EnsureSamples(Entry* entry, unsigned s, size_t count) {
  Stream& stream = entry->streams[s];
  if (stream.samples.size() >= count) return;
  UIC_CHECK(graph_ != nullptr);

  RrOptions options;
  options.linear_threshold = entry->linear_threshold;
  if (entry->has_pass_prob) options.node_pass_prob = &entry->pass_prob;
  options.kernel = entry->kernel;
  options.sampling_plan = entry->plan.get();
  RrSampler sampler(*graph_, options);

  // Draw the whole extension into one arena, then publish the sample refs
  // (arena buffers are never touched again, so the pointers stay stable
  // for the cache's lifetime).
  struct Meta {
    size_t offset;
    uint32_t size;
    size_t edges;
  };
  const size_t need = count - stream.samples.size();
  std::vector<Meta> metas;
  metas.reserve(need);
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < need; ++i) {
    const size_t before = nodes.size();
    const size_t edges = sampler.SampleAppend(stream.rng, &nodes);
    metas.push_back(
        {before, static_cast<uint32_t>(nodes.size() - before), edges});
  }
  sampled_sets_.fetch_add(need, std::memory_order_relaxed);
  sampled_nodes_.fetch_add(nodes.size(), std::memory_order_relaxed);
  uint64_t edges_total = 0;
  for (const Meta& m : metas) edges_total += m.edges;
  UIC_METRIC_COUNTER(rr_sets, "uic_rr_sets_sampled_total",
                     "RR sets freshly sampled (cold path + cache fills).");
  rr_sets.Add(need);
  UIC_METRIC_COUNTER(rr_edges, "uic_rr_edges_examined_total",
                     "Edges examined by the RR sampling kernels.");
  rr_edges.Add(edges_total);
  stream.arenas.push_back(std::move(nodes));
  const NodeId* base = stream.arenas.back().data();
  stream.samples.reserve(count);
  for (const Meta& m : metas) {
    stream.samples.push_back(Sample{base + m.offset, m.size, m.edges});
  }
}

}  // namespace uic
