#include "rrset/certificate.h"

#include <cmath>

#include "common/check.h"
#include "rrset/node_selection.h"

namespace uic {

namespace {

/// Chernoff lower bound on the true mean given `cover` successes out of
/// `theta` trials scaled by n: solves the standard quadratic relaxation
/// (cf. OPIM Eq. 4).
double CoverageLowerBound(double cover, double theta, double n,
                          double log_term) {
  if (cover <= 0.0) return 0.0;
  const double a = std::sqrt(cover + 2.0 * log_term / 9.0);
  const double b = std::sqrt(log_term / 2.0);
  double x = a - b;
  if (x < 0.0) x = 0.0;
  const double est = x * x - log_term / 18.0;
  return std::max(0.0, est / theta * n);
}

/// Chernoff upper bound on the true mean (cf. OPIM Eq. 5).
double CoverageUpperBound(double cover, double theta, double n,
                          double log_term) {
  const double x = std::sqrt(cover + log_term / 2.0) +
                   std::sqrt(log_term / 2.0);
  return x * x / theta * n;
}

}  // namespace

SpreadCertificate CertifySeedSet(const Graph& graph,
                                 const std::vector<NodeId>& seeds,
                                 size_t num_rr_sets, double delta,
                                 uint64_t seed, unsigned workers,
                                 RrOptions rr_options) {
  UIC_CHECK_GT(num_rr_sets, size_t{0});
  UIC_CHECK_GT(delta, 0.0);
  UIC_CHECK_LT(delta, 1.0);
  SpreadCertificate cert;
  const double n = static_cast<double>(graph.num_nodes());
  const double theta = static_cast<double>(num_rr_sets);
  const double log_term = std::log(2.0 / delta);

  // Pool 1: upper-bound OPT_k via greedy max-cover.
  RrCollection pool1(graph, seed ^ 0x0501u, workers, rr_options);
  pool1.GenerateUntil(num_rr_sets);
  const SeedSelection greedy = NodeSelection(pool1, seeds.size());
  const double greedy_cover =
      greedy.CoverageAt(seeds.size()) * theta;
  // Greedy covers >= (1-1/e) of the best size-k cover, and the best cover
  // of the sampled pool upper-bounds OPT's coverage in expectation.
  const double opt_cover_ub =
      CoverageUpperBound(greedy_cover / (1.0 - 1.0 / 2.718281828459045),
                         theta, n, log_term);

  // Pool 2 (independent): lower-bound σ(S) by S's own coverage, counted
  // through the maintained index (cost Σ_{v∈S} IndexDegree(v) instead of
  // a scan over every sampled node).
  RrCollection pool2(graph, seed ^ 0x0502u, workers, rr_options);
  pool2.GenerateUntil(num_rr_sets);
  const double covered =
      static_cast<double>(CountCoveredSets(pool2, seeds));
  cert.spread_lower = CoverageLowerBound(covered, theta, n, log_term);
  cert.opt_upper = std::min(opt_cover_ub, n);
  cert.ratio = cert.opt_upper > 0.0 ? cert.spread_lower / cert.opt_upper : 0.0;
  if (cert.ratio > 1.0) cert.ratio = 1.0;
  cert.rr_sets_used = pool1.size() + pool2.size();
  return cert;
}

}  // namespace uic
