#include "rrset/tim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/timer.h"
#include "rrset/node_selection.h"

namespace uic {

ImResult Tim(const Graph& graph, size_t k, double eps, double ell,
             uint64_t seed, unsigned workers, RrOptions rr_options) {
  ImResult result;
  UIC_CHECK_GT(eps, 0.0);
  UIC_CHECK_GT(ell, 0.0);
  const double n = static_cast<double>(graph.num_nodes());
  const double m = static_cast<double>(graph.num_edges());
  if (graph.num_nodes() < 2 || k == 0) return result;
  k = std::min<size_t>(k, graph.num_nodes());

  WallTimer timer;

  // --- KPT estimation (TIM Algorithm 2) -------------------------------
  // For i = 1 .. log2(n) − 1: draw c_i RR sets; if the mean of
  // κ(R) = 1 − (1 − w(R)/m)^k exceeds 1/2^i, accept KPT = n·mean / 2.
  double kpt = 1.0;
  const double log2n = std::log2(n);
  const double lambda_kpt =
      (6.0 * ell * std::log(n) + 6.0 * std::log(log2n)) /* * 2^i below */;
  RrSampler sampler(graph, rr_options);
  Rng rng = Rng::Split(seed ^ 0x71a3u, 0);
  std::vector<NodeId> rr;
  for (double i = 1.0; i + 1.0 <= log2n; i += 1.0) {
    const size_t c_i =
        static_cast<size_t>(std::ceil(lambda_kpt * std::pow(2.0, i)));
    double sum_kappa = 0.0;
    for (size_t j = 0; j < c_i; ++j) {
      const size_t width = sampler.SampleInto(rng, &rr);
      const double w_frac = m > 0 ? static_cast<double>(width) / m : 0.0;
      sum_kappa +=
          1.0 - std::pow(1.0 - std::min(1.0, w_frac), static_cast<double>(k));
    }
    const double mean_kappa = sum_kappa / static_cast<double>(c_i);
    if (mean_kappa > 1.0 / std::pow(2.0, i)) {
      kpt = n * mean_kappa / 2.0;
      break;
    }
  }
  kpt = std::max(kpt, 1.0);

  // --- Final sampling with the TIM union-bound constant ----------------
  const double lambda_tim =
      (8.0 + 2.0 * eps) * n *
      (ell * std::log(n) + LogChoose(n, static_cast<double>(k)) +
       std::log(2.0)) /
      (eps * eps);
  const size_t theta = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(lambda_tim / kpt)));
  RrCollection final_pool(graph, seed ^ 0x7144u, workers, rr_options);
  final_pool.GenerateUntil(theta);

  SeedSelection sel = NodeSelection(final_pool, k);
  result.seeds = std::move(sel.seeds);
  result.coverage = std::move(sel.coverage);
  result.num_rr_sets = final_pool.size();
  result.total_rr_nodes = final_pool.TotalNodes();
  result.sampling_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace uic
