// Random reverse-reachable (RR) set sampling and storage (§4.2.3).
//
// An RR set is sampled by picking a root uniformly at random and walking
// the graph *backwards*, keeping each in-edge live with its influence
// probability; the RR set is the set of nodes reaching the root in that
// partial edge world. The key identity is σ(S) = n · E[ S ∩ R ≠ ∅ ].
//
// `RrCollection` is the RR engine's state: a growing pool of RR sets plus
// the inverted node→RR-set coverage index NodeSelection consumes, both
// maintained *incrementally* — every `GenerateUntil` round appends
// per-stream arenas by move and extends the index with a CSR delta built
// in parallel, so nothing is recomputed when the pool only grows. All
// parallel work runs on a persistent `ThreadPool` (the process-wide
// shared pool by default); no threads are spawned per round.
//
// Generation is deterministic in the seed ALONE: the pool is a fixed grid
// of `kRrStreams` logical sample streams, and RR set g is always drawn as
// sample g / kRrStreams of stream g % kRrStreams. Pool content at any size
// is therefore a pure function of (graph, options, seed) — independent of
// the worker count, the physical thread count, and the sequence of
// `GenerateUntil` targets used to reach that size. Two consequences the
// rest of the system builds on:
//   * every solver above the engine is worker-count invariant, and
//   * any pool is a prefix of one deterministic infinite sequence, so a
//     sweep can serve it warm from an `RrStreamCache` (rr_stream_cache.h)
//     with bit-identical results.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"
#include "graph/sampling_plan.h"

namespace uic {

class ThreadPool;
class RrStreamCache;

/// Number of logical RR sample streams — the RR engine's name for the
/// process-wide stream-grid width (one constant, common/random.h).
inline constexpr unsigned kRrStreams = kRngStreams;

/// \brief Options modifying RR sampling semantics.
struct RrOptions {
  /// Optional per-node pass probability (used by the Com-IC style samplers
  /// RR-SIM/RR-CIM): a visited node joins the RR set only if an independent
  /// coin with this probability succeeds; traversal continues only through
  /// passing nodes. The *root* failing its coin yields an empty RR set
  /// (which still counts toward the pool size).
  const std::vector<float>* node_pass_prob = nullptr;

  /// Sample under the Linear Threshold live-edge distribution instead of
  /// IC: each visited node selects at most ONE in-neighbor (u with
  /// probability w(u,v), none with 1 − Σ w), so an LT RR set is a reverse
  /// random walk. Requires Σ_u w(u,v) <= 1 per node.
  bool linear_threshold = false;

  /// Optional warm-start hook (the sweep engine's pool-reuse point): when
  /// set, `GenerateUntil` serves samples from the cache — extending it by
  /// sampling only past its high-water mark — instead of drawing them
  /// fresh. Results are bit-identical to a cold collection; only the
  /// number of sets sampled from scratch changes. Does not affect
  /// sampling semantics, so it is ignored by the cache's own entry
  /// keying. The cache must outlive the collection.
  RrStreamCache* stream_cache = nullptr;

  /// Sampling kernel (graph/sampling_plan.h). kScan is the legacy
  /// per-edge-trial kernel; kSkip draws geometric gaps over the graph's
  /// probability-stratified plan (falling back to per-edge scanning for
  /// nodes the plan classifies kGeneral); kAuto — the default — resolves
  /// to kSkip. The kernels draw DIFFERENT RNG sequences, so the kernel is
  /// part of the pool's identity: every determinism guarantee (pure
  /// function of (graph, options, seed), worker/schedule invariance,
  /// warm==cold) holds per kernel, and the resolved kernel joins the
  /// stream cache's entry key.
  SamplingKernel kernel = SamplingKernel::kAuto;

  /// Optional pre-built reverse-direction sampling plan for the graph.
  /// Borrowed, not owned, and non-semantic like `stream_cache`: a plan is
  /// a pure function of the graph, so sharing one only moves the one-time
  /// build cost — never the sampled pool. nullptr = consumers build and
  /// cache their own when the resolved kernel needs one (RrCollection per
  /// cold collection, RrStreamCache per bound graph).
  const SamplingPlan* sampling_plan = nullptr;
};

/// \brief A pool of RR sets with deterministic parallel growth and an
/// incrementally maintained node→RR-set coverage index.
class RrCollection {
 public:
  /// `workers` bounds how many streams are processed concurrently (0 =
  /// `DefaultWorkers()`); it does NOT affect pool content. `pool` is the
  /// thread pool parallel growth runs on; nullptr means the process-wide
  /// `ThreadPool::Shared()`. The pool must outlive the collection.
  RrCollection(const Graph& graph, uint64_t seed, unsigned workers = 0,
               RrOptions options = {}, ThreadPool* pool = nullptr);

  // Not copyable: SetRef entries point into this collection's arena
  // buffers (or a shared RrStreamCache's), so a copy would alias storage
  // the source frees on Clear()/destruction.
  RrCollection(const RrCollection&) = delete;
  RrCollection& operator=(const RrCollection&) = delete;

  /// Grow the pool until it holds at least `target` RR sets, extending the
  /// coverage index with the new sets.
  void GenerateUntil(size_t target);

  size_t size() const { return sets_.size(); }

  /// Nodes of RR set `r`.
  std::span<const NodeId> Set(size_t r) const {
    const SetRef& s = sets_[r];
    return {s.data, s.data + s.size};
  }

  /// Total Σ_r |R_r| (memory proxy; also the NodeSelection cost).
  size_t TotalNodes() const { return total_nodes_; }

  /// Total Σ_r w(R_r): edges examined while sampling (EPT cost model).
  size_t TotalEdgesExamined() const { return edges_examined_; }

  const Graph& graph() const { return graph_; }

  unsigned workers() const { return workers_; }

  /// Drop all sets and the index (used by the regeneration fix of
  /// PRIMA/IMM: the final NodeSelection must run on freshly sampled sets).
  /// Stream positions persist: subsequent growth continues the streams
  /// where they left off, exactly as the underlying RNGs would.
  void Clear();

  /// Clear *and* reseed the sample streams: the collection becomes
  /// indistinguishable from a freshly constructed `RrCollection(graph,
  /// seed, workers, options)` while keeping its thread pool and any
  /// attached stream cache. This is how one engine instance serves a
  /// whole solver invocation, including PRIMA's regeneration pass.
  void Reset(uint64_t seed);

  // --- Coverage index ---------------------------------------------------
  // Maintained by GenerateUntil (extended per growth round, in parallel)
  // and invalidated only by Clear()/Reset(). For every node v it lists the
  // ids of the RR sets containing v, in ascending id order.

  /// Number of RR sets containing `v`.
  uint32_t IndexDegree(NodeId v) const { return index_degree_[v]; }

  /// Invoke `fn(set_id)` for every RR set containing `v`, in ascending
  /// set-id order.
  template <typename Fn>
  void ForEachSetContaining(NodeId v, Fn&& fn) const {
    for (const IndexDelta& d : index_) {
      const size_t begin = d.off[v];
      const size_t end = d.off[v + 1];
      for (size_t i = begin; i < end; ++i) fn(d.sets[i]);
    }
  }

  /// Number of CSR deltas the index currently consists of (one per growth
  /// round; exposed for tests and instrumentation).
  size_t IndexDeltaCount() const { return index_.size(); }

 private:
  /// An RR set lives contiguously inside one of the per-stream arenas
  /// (owned by this collection, or by the attached stream cache); arena
  /// buffers are never touched after the move, so the pointer stays valid
  /// until Clear() (resp. cache destruction).
  struct SetRef {
    const NodeId* data;
    uint32_t size;
  };

  /// One growth round's contribution to the inverted index, in CSR form:
  /// `sets[off[v] .. off[v+1])` are the ids of this round's RR sets that
  /// contain v. Offsets are size_t (a delta can hold the whole pool after
  /// compaction — or after PRIMA's regeneration, which samples the final
  /// pool in one round); set ids are uint32, bounding the pool at 2^32
  /// sets (checked).
  struct IndexDelta {
    std::vector<size_t> off;     // graph.num_nodes() + 1
    std::vector<uint32_t> sets;  // global RR set ids, ascending per node
  };

  void SeedStreams(uint64_t seed);

  /// Make `options_.sampling_plan` usable before cold generation fans
  /// out: when the resolved kernel needs a plan and none was supplied,
  /// build one (once) and keep it for the collection's lifetime, so the
  /// per-stream samplers share it instead of each building their own.
  void EnsurePlan();

  /// Cold growth: draw this round's per-stream slices from the
  /// collection-owned RNG streams into fresh arenas.
  void GenerateFresh(size_t first, size_t target);

  /// Warm growth: serve this round's slices from the attached stream
  /// cache, extending the cache past its high-water mark as needed.
  void GenerateFromCache(size_t first, size_t target);

  /// Build the CSR delta for the new sets [first_new, size()) in parallel
  /// and append it to the index, merging deltas per the tiering policy.
  void ExtendIndex(size_t first_new);

  /// Merge deltas [first, end) into one, preserving per-node ascending
  /// set-id order. Called with binary-counter tiering (merge while the
  /// newest delta is at least as large as its predecessor), which keeps
  /// delta sizes geometrically decreasing — O(log) deltas and amortized
  /// O(E log E) maintenance over E index entries for *any* growth
  /// schedule, O(E) for geometric ones like PRIMA's.
  void MergeIndexTail(size_t first);

  const Graph& graph_;
  RrOptions options_;
  unsigned workers_;
  ThreadPool* pool_;
  uint64_t seed_;
  std::vector<Rng> streams_;       ///< cold-path RNGs, one per logical stream
  std::vector<size_t> stream_pos_; ///< samples consumed per stream since Reset

  RrStreamCache* cache_ = nullptr;       ///< nullptr = cold
  void* cache_entry_ = nullptr;          ///< RrStreamCache::Entry*, lazily bound

  /// Lazily built by EnsurePlan when the kernel needs one and the caller
  /// did not supply `options_.sampling_plan`.
  std::shared_ptr<const SamplingPlan> plan_;

  std::vector<std::vector<NodeId>> arenas_;  ///< moved-in stream buffers
  std::vector<SetRef> sets_;
  size_t total_nodes_ = 0;
  size_t edges_examined_ = 0;

  std::vector<uint32_t> index_degree_;  ///< per node, summed over deltas
  std::vector<IndexDelta> index_;
};

/// \brief Single-threaded RR sampler (exposed for tests and custom loops).
///
/// If the resolved kernel is kSkip and no plan was supplied in the
/// options, the sampler builds its own (with exactly the features the
/// options need) — convenient standalone, but per-stream loops should
/// share one plan via `RrOptions::sampling_plan`.
class RrSampler {
 public:
  explicit RrSampler(const Graph& graph, RrOptions options = {});

  /// Sample one RR set rooted at a uniformly random node into `out`
  /// (cleared first). Returns the number of in-edges examined — which, by
  /// the EPT cost-model convention, counts edges the skip kernel jumped
  /// over as examined too (always Σ deg over visited nodes, kernel
  /// independent).
  size_t SampleInto(Rng& rng, std::vector<NodeId>* out);

  /// Sample one RR set with the given root (into a cleared `out`).
  size_t SampleRootedInto(NodeId root, Rng& rng, std::vector<NodeId>* out);

  /// Arena mode: as SampleInto/SampleRootedInto, but APPENDS the set's
  /// nodes to `arena` without clearing it — the sampled set is the
  /// appended suffix. This is how generation writes nodes straight into
  /// their final per-stream buffer. Draw sequence identical to the
  /// clearing variants.
  size_t SampleAppend(Rng& rng, std::vector<NodeId>* arena);
  size_t SampleRootedAppend(NodeId root, Rng& rng, std::vector<NodeId>* arena);

 private:
  /// Skip-kernel IC expansion of one dequeued node's in-adjacency.
  void ExpandSkip(NodeId w, Rng& rng, std::vector<NodeId>* arena);
  /// Scan-kernel (and kGeneral fallback) expansion.
  void ExpandScan(NodeId w, Rng& rng, std::vector<NodeId>* arena);
  /// Visited/pass-prob bookkeeping shared by both kernels; returns true
  /// if `u` joined the set (and the BFS queue).
  bool TryVisit(NodeId u, Rng& rng, std::vector<NodeId>* arena);

  size_t LtWalkScan(NodeId root, Rng& rng, std::vector<NodeId>* arena);
  size_t LtWalkAlias(NodeId root, Rng& rng, std::vector<NodeId>* arena);

  const Graph& graph_;
  RrOptions options_;
  const SamplingPlan* plan_ = nullptr;  ///< set iff resolved kernel is kSkip
  std::shared_ptr<const SamplingPlan> owned_plan_;
  std::vector<uint32_t> visited_epoch_;
  uint32_t epoch_ = 0;
  std::vector<NodeId> queue_;
};

}  // namespace uic
