// Random reverse-reachable (RR) set sampling and storage (§4.2.3).
//
// An RR set is sampled by picking a root uniformly at random and walking
// the graph *backwards*, keeping each in-edge live with its influence
// probability; the RR set is the set of nodes reaching the root in that
// partial edge world. The key identity is σ(S) = n · E[ S ∩ R ≠ ∅ ].
//
// `RrCollection` owns a growing pool of RR sets. Generation is
// deterministic in (seed, workers): each worker owns a persistent RNG
// stream and a fixed slice of every growth round, so the same target sizes
// always yield the same pool.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace uic {

/// \brief Options modifying RR sampling semantics.
struct RrOptions {
  /// Optional per-node pass probability (used by the Com-IC style samplers
  /// RR-SIM/RR-CIM): a visited node joins the RR set only if an independent
  /// coin with this probability succeeds; traversal continues only through
  /// passing nodes. The *root* failing its coin yields an empty RR set
  /// (which still counts toward the pool size).
  const std::vector<float>* node_pass_prob = nullptr;

  /// Sample under the Linear Threshold live-edge distribution instead of
  /// IC: each visited node selects at most ONE in-neighbor (u with
  /// probability w(u,v), none with 1 − Σ w), so an LT RR set is a reverse
  /// random walk. Requires Σ_u w(u,v) <= 1 per node.
  bool linear_threshold = false;
};

/// \brief A pool of RR sets with deterministic parallel growth.
class RrCollection {
 public:
  RrCollection(const Graph& graph, uint64_t seed, unsigned workers = 0,
               RrOptions options = {});

  /// Grow the pool until it holds at least `target` RR sets.
  void GenerateUntil(size_t target);

  size_t size() const { return offsets_.size() - 1; }

  /// Nodes of RR set `r`.
  std::span<const NodeId> Set(size_t r) const {
    return {nodes_.data() + offsets_[r], nodes_.data() + offsets_[r + 1]};
  }

  /// Total Σ_r |R_r| (memory proxy; also the NodeSelection cost).
  size_t TotalNodes() const { return nodes_.size(); }

  /// Total Σ_r w(R_r): edges examined while sampling (EPT cost model).
  size_t TotalEdgesExamined() const { return edges_examined_; }

  const Graph& graph() const { return graph_; }

  /// Drop all sets (used by the regeneration fix of PRIMA/IMM: the final
  /// NodeSelection must run on freshly sampled sets).
  void Clear();

 private:
  const Graph& graph_;
  RrOptions options_;
  unsigned workers_;
  std::vector<Rng> streams_;

  std::vector<size_t> offsets_;  // size() + 1
  std::vector<NodeId> nodes_;
  size_t edges_examined_ = 0;
};

/// \brief Single-threaded RR sampler (exposed for tests and custom loops).
class RrSampler {
 public:
  explicit RrSampler(const Graph& graph, RrOptions options = {});

  /// Sample one RR set rooted at a uniformly random node into `out`.
  /// Returns the number of in-edges examined.
  size_t SampleInto(Rng& rng, std::vector<NodeId>* out);

  /// Sample one RR set with the given root.
  size_t SampleRootedInto(NodeId root, Rng& rng, std::vector<NodeId>* out);

 private:
  const Graph& graph_;
  RrOptions options_;
  std::vector<uint32_t> visited_epoch_;
  uint32_t epoch_ = 0;
  std::vector<NodeId> queue_;
};

}  // namespace uic
