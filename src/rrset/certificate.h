// A-posteriori approximation certificates for seed sets (OPIM-style).
//
// Given any seed set S (from any algorithm), two *independent* RR pools
// yield statistically valid bounds:
//   * a lower bound on σ(S) from S's coverage of pool 2 (Chernoff lower
//     tail), and
//   * an upper bound on OPT_k from the greedy coverage of pool 1 scaled
//     by 1/(1 − 1/e) (greedy max-cover guarantee) plus a Chernoff upper
//     tail.
// Their ratio certifies the realized approximation factor — often much
// better than the worst-case (1 − 1/e − ε). This mirrors the online
// bounds of OPIM (Tang et al., SIGMOD'18), which the paper cites among
// the state-of-the-art IM algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "rrset/rr_collection.h"

namespace uic {

/// \brief Result of a certificate computation.
struct SpreadCertificate {
  double spread_lower = 0.0;  ///< w.h.p. lower bound on σ(S)
  double opt_upper = 0.0;     ///< w.h.p. upper bound on OPT_k
  double ratio = 0.0;         ///< certified σ(S)/OPT_k >= ratio
  size_t rr_sets_used = 0;
};

/// \brief Certify the quality of `seeds` for budget k = |seeds| with
/// failure probability at most `delta`, using `num_rr_sets` RR sets per
/// pool.
SpreadCertificate CertifySeedSet(const Graph& graph,
                                 const std::vector<NodeId>& seeds,
                                 size_t num_rr_sets, double delta,
                                 uint64_t seed, unsigned workers = 0,
                                 RrOptions rr_options = {});

}  // namespace uic
