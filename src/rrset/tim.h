// TIM+ (Tang, Xiao, Shi — SIGMOD'14): the RR-set predecessor of IMM.
//
// TIM first estimates KPT — a lower bound on the optimal expected spread
// OPT_k — by sampling geometrically growing batches of RR sets and
// testing the statistic κ(R) = 1 − (1 − w(R)/m)^k, then draws
// θ = λ_TIM / KPT sets with the (looser) union-bound constant
// λ_TIM = (8 + 2ε) n (ℓ log n + log C(n,k) + log 2) / ε².
//
// Provided because (a) the paper's Com-IC baselines RR-SIM+/RR-CIM are
// TIM-based, which is exactly why they need several times more RR sets
// than the IMM-based algorithms (Fig. 6), and (b) it makes the IMM/PRIMA
// sample-complexity improvement directly measurable in this codebase.
#pragma once

#include <cstdint>

#include "rrset/imm.h"

namespace uic {

/// \brief TIM+ seed selection: k seeds with a (1 − 1/e − ε) guarantee
/// w.p. >= 1 − 1/n^ℓ, using the original KPT-estimation bound.
ImResult Tim(const Graph& graph, size_t k, double eps, double ell,
             uint64_t seed, unsigned workers = 0,
             RrOptions rr_options = {});

}  // namespace uic
