#include "welfare/block_accounting.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace uic {

namespace {

/// Remap an itemset over original ids to an itemset over budget ranks.
ItemSet ToRankMask(ItemSet original, const std::vector<uint32_t>& rank_of) {
  ItemSet out = 0;
  ForEachItem(original, [&](ItemId i) { out |= ItemBit(rank_of[i]); });
  return out;
}

ItemSet ToOriginalMask(ItemSet ranked, const std::vector<ItemId>& rank_to) {
  ItemSet out = 0;
  ForEachItem(ranked, [&](ItemId r) { out |= ItemBit(rank_to[r]); });
  return out;
}

}  // namespace

bool PrecedesInBlockOrder(ItemSet a, ItemSet b,
                          const std::vector<uint32_t>& rank_of_item) {
  // With items relabeled by budget rank (rank 0 = largest budget = "i1"),
  // ≺ compares the highest-ranked members first and prefers the exhausted
  // or lower-indexed side — which is exactly numeric order of the rank
  // bitmasks.
  return ToRankMask(a, rank_of_item) < ToRankMask(b, rank_of_item);
}

BlockDecomposition GenerateBlocks(const UtilityTable& utilities,
                                  const std::vector<uint32_t>& budgets) {
  const ItemId k = utilities.num_items();
  UIC_CHECK_EQ(budgets.size(), k);

  BlockDecomposition decomposition;
  decomposition.optimal_itemset = utilities.GlobalOptimum();
  const ItemSet opt = decomposition.optimal_itemset;
  if (opt == kEmptyItemSet) return decomposition;

  // Budget-rank order over the items of I*: non-increasing budget, ties by
  // item index (stable, matching the paper's fixed indexing).
  std::vector<ItemId> items;
  ForEachItem(opt, [&](ItemId i) { items.push_back(i); });
  std::stable_sort(items.begin(), items.end(), [&](ItemId a, ItemId b) {
    return budgets[a] > budgets[b];
  });
  decomposition.rank_to_item = items;
  std::vector<uint32_t> rank_of(k, 0);
  for (uint32_t r = 0; r < items.size(); ++r) rank_of[items[r]] = r;

  // Scan all non-empty subsets of I* in ≺ order (numeric order over rank
  // masks). Whenever the first remaining subset with non-negative marginal
  // utility w.r.t. the chosen union is found, emit it as a block, drop all
  // overlapping subsets, and restart the scan (Fig. 3 step 3).
  const ItemSet full_rank = FullItemSet(static_cast<ItemId>(items.size()));
  ItemSet chosen_union_orig = kEmptyItemSet;  // over original ids
  ItemSet chosen_union_rank = kEmptyItemSet;  // over rank ids
  while (chosen_union_rank != full_rank) {
    bool found = false;
    for (ItemSet cand_rank = 1; cand_rank <= full_rank; ++cand_rank) {
      if ((cand_rank & chosen_union_rank) != 0) continue;  // overlaps
      const ItemSet cand_orig = ToOriginalMask(cand_rank, items);
      const double marginal =
          utilities.Utility(chosen_union_orig | cand_orig) -
          utilities.Utility(chosen_union_orig);
      if (marginal >= 0.0) {
        decomposition.blocks.push_back(cand_orig);
        decomposition.deltas.push_back(marginal);
        chosen_union_rank |= cand_rank;
        chosen_union_orig |= cand_orig;
        found = true;
        break;  // restart scan from the beginning of the remaining sequence
      }
    }
    // Termination: I* is a local maximum, so the remaining items always
    // include a subset with non-negative marginal utility (at worst, the
    // whole remainder).
    UIC_CHECK(found);
  }
  UIC_CHECK_EQ(chosen_union_orig, opt);

  // Effective budgets and anchors.
  const size_t t = decomposition.blocks.size();
  decomposition.effective_budgets.resize(t);
  decomposition.anchor_block.resize(t);
  decomposition.anchor_items.resize(t);

  auto block_budget = [&](size_t bi) {
    uint32_t mn = UINT32_MAX;
    ForEachItem(decomposition.blocks[bi],
                [&](ItemId i) { mn = std::min(mn, budgets[i]); });
    return mn;
  };
  auto block_min_item = [&](size_t bi) {
    // Highest budget-rank index == minimum-budgeted item of the block.
    ItemId arg = 0;
    uint32_t best_rank = 0;
    bool first = true;
    ForEachItem(decomposition.blocks[bi], [&](ItemId i) {
      if (first || rank_of[i] > best_rank) {
        best_rank = rank_of[i];
        arg = i;
        first = false;
      }
    });
    return arg;
  };

  uint32_t running_min = UINT32_MAX;
  size_t anchor = 0;
  uint32_t anchor_budget = UINT32_MAX;
  for (size_t bi = 0; bi < t; ++bi) {
    running_min = std::min(running_min, block_budget(bi));
    decomposition.effective_budgets[bi] = running_min;
    // Anchor block: among B_1..B_i, the one with minimum block budget;
    // ties go to the highest block index.
    if (block_budget(bi) <= anchor_budget) {
      anchor_budget = block_budget(bi);
      anchor = bi;
    }
    decomposition.anchor_block[bi] = static_cast<uint32_t>(anchor);
    decomposition.anchor_items[bi] = block_min_item(anchor);
  }
  return decomposition;
}

}  // namespace uic
