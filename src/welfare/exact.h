// Exact (enumeration-based) evaluation on small instances.
//
// For graphs with at most ~20 edges, expected spread and expected welfare
// (for a fixed noise world) can be computed exactly by enumerating all 2^m
// edge worlds. Tests use this to validate the Monte-Carlo estimators and
// the block-accounting identities (Lemmas 5 and 7); users can apply it to
// sanity-check configurations on toy graphs.
#pragma once

#include <vector>

#include "diffusion/allocation.h"
#include "graph/graph.h"
#include "items/utility_table.h"

namespace uic {

/// Maximum number of edges accepted by the exact evaluators (2^m worlds).
constexpr size_t kMaxExactEdges = 22;

/// \brief Exact expected IC spread σ(S) by edge-world enumeration.
double ExactSpreadByEnumeration(const Graph& graph,
                                const std::vector<NodeId>& seeds);

/// \brief Exact expected UIC welfare ρ_{W^N}(𝒮) under the fixed noise
/// world captured by `utilities`, by edge-world enumeration.
double ExactWelfareByEnumeration(const Graph& graph,
                                 const Allocation& allocation,
                                 const UtilityTable& utilities);

/// \brief Exact expected UIC welfare with the noise integrated out by a
/// quasi-Monte-Carlo average over `noise_samples` sampled noise worlds
/// (edge worlds remain exact). Useful to validate EstimateWelfare.
double ExactWelfareAveragedOverNoise(const Graph& graph,
                                     const Allocation& allocation,
                                     const ItemParams& params,
                                     size_t noise_samples, uint64_t seed);

}  // namespace uic
