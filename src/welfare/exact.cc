#include "welfare/exact.h"

#include "common/check.h"
#include "common/random.h"
#include "diffusion/uic_model.h"

namespace uic {

namespace {

struct FlatEdge {
  NodeId from, to;
  double prob;
};

std::vector<FlatEdge> FlattenEdges(const Graph& graph) {
  std::vector<FlatEdge> edges;
  edges.reserve(graph.num_edges());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.OutNeighbors(u);
    auto probs = graph.OutProbs(u);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      edges.push_back({u, nbrs[k], probs[k]});
    }
  }
  return edges;
}

Graph LiveGraph(NodeId n, const std::vector<FlatEdge>& edges,
                uint32_t world) {
  GraphBuilder builder(n);
  for (size_t e = 0; e < edges.size(); ++e) {
    if ((world >> e) & 1u) builder.AddEdge(edges[e].from, edges[e].to, 1.0);
  }
  return builder.Build().MoveValue();
}

double WorldProbability(const std::vector<FlatEdge>& edges, uint32_t world) {
  double p = 1.0;
  for (size_t e = 0; e < edges.size(); ++e) {
    p *= ((world >> e) & 1u) ? edges[e].prob : 1.0 - edges[e].prob;
  }
  return p;
}

}  // namespace

double ExactSpreadByEnumeration(const Graph& graph,
                                const std::vector<NodeId>& seeds) {
  const std::vector<FlatEdge> edges = FlattenEdges(graph);
  UIC_CHECK_LE(edges.size(), kMaxExactEdges);
  const NodeId n = graph.num_nodes();
  double total = 0.0;
  std::vector<bool> seen(n);
  std::vector<NodeId> stack;
  for (uint32_t world = 0; world < (1u << edges.size()); ++world) {
    const double p = WorldProbability(edges, world);
    if (p == 0.0) continue;
    const Graph live = LiveGraph(n, edges, world);
    std::fill(seen.begin(), seen.end(), false);
    stack.clear();
    size_t count = 0;
    for (NodeId s : seeds) {
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
        ++count;
      }
    }
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : live.OutNeighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
          ++count;
        }
      }
    }
    total += p * static_cast<double>(count);
  }
  return total;
}

double ExactWelfareByEnumeration(const Graph& graph,
                                 const Allocation& allocation,
                                 const UtilityTable& utilities) {
  const std::vector<FlatEdge> edges = FlattenEdges(graph);
  UIC_CHECK_LE(edges.size(), kMaxExactEdges);
  const NodeId n = graph.num_nodes();
  double total = 0.0;
  Rng rng(0);  // live graphs have certain edges; entropy is never consumed
  for (uint32_t world = 0; world < (1u << edges.size()); ++world) {
    const double p = WorldProbability(edges, world);
    if (p == 0.0) continue;
    const Graph live = LiveGraph(n, edges, world);
    UicSimulator sim(live);
    total += p * sim.Run(allocation, utilities, rng).welfare;
  }
  return total;
}

double ExactWelfareAveragedOverNoise(const Graph& graph,
                                     const Allocation& allocation,
                                     const ItemParams& params,
                                     size_t noise_samples, uint64_t seed) {
  UIC_CHECK_GT(noise_samples, size_t{0});
  Rng rng(seed);
  double total = 0.0;
  for (size_t i = 0; i < noise_samples; ++i) {
    const std::vector<double> noise = params.noise().Sample(rng);
    const UtilityTable table(params, noise);
    total += ExactWelfareByEnumeration(graph, allocation, table);
  }
  return total / static_cast<double>(noise_samples);
}

}  // namespace uic
