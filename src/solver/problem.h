// The unified solver inputs: WelfareProblem (what to solve) and
// SolverOptions (how to solve it).
//
// Every allocation algorithm in the repo — bundleGRD, the disjoint
// baselines, MC greedy, the Com-IC baselines, BDHS — consumes the same
// problem description through `Solver::Solve(const WelfareProblem&)`
// instead of its historical positional signature. Algorithm-specific
// tuning lives in `SolverOptions` sub-structs so a caller can configure
// any solver without knowing which one the registry will hand back.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/bundle_grd.h"
#include "graph/graph.h"
#include "items/params.h"
#include "rrset/rr_collection.h"

namespace uic {

/// \brief A welfare-maximization instance (§3.3): network, per-item seed
/// budgets, and (optionally) the utility configuration.
///
/// `params` is optional because the paper's headline algorithm, bundleGRD,
/// never reads the utilities; solvers that do need them (bundle-disj,
/// mc-greedy, rr-sim+, rr-cim, bdhs) reject a problem without `params`
/// with `Status::FailedPrecondition` instead of crashing.
struct WelfareProblem {
  /// The social network. Not owned; must outlive the Solve call.
  const Graph* graph = nullptr;

  /// Per-item seed budgets b_i. `budgets.size()` is the number of items;
  /// when `params` is set the two must agree.
  std::vector<uint32_t> budgets;

  /// Utility configuration `Param = (V, P, N)`. Optional — see above.
  std::optional<ItemParams> params;

  /// Propagation model for seed selection (§5: the guarantees hold for any
  /// triggering model; IC and LT are provided). Solvers whose machinery is
  /// IC-specific (mc-greedy, rr-sim+, rr-cim, bdhs) reject kLinearThreshold.
  DiffusionModel model = DiffusionModel::kIndependentCascade;
};

/// MC greedy tuning (see core/mc_greedy.h).
struct McGreedySolverOptions {
  size_t simulations_per_eval = 200;  ///< MC samples per welfare estimate
  /// Restrict candidate seed nodes (empty = all nodes).
  std::vector<NodeId> candidates;
};

/// Com-IC baseline tuning (see comic/rr_sim.h).
struct ComIcSolverOptions {
  /// Forward Monte-Carlo simulations used by RR-CIM to estimate per-node
  /// i2-adoption probabilities.
  size_t cim_forward_simulations = 200;
};

/// Which BDHS externality benchmark to compute (see bdhs/bdhs.h).
enum class BdhsVariant { kStep, kConcave };

/// BDHS tuning.
struct BdhsSolverOptions {
  BdhsVariant variant = BdhsVariant::kStep;
  /// kStep: discount factor an isolated adopter's utility is scaled by.
  double kappa = 0.0;
  /// kConcave requires a uniform edge probability; the solver re-weights a
  /// copy of the graph to this value (as the Fig. 9 bench does).
  double uniform_p = 0.01;
};

/// \brief Knobs shared by (or routed to) all solvers.
///
/// The common block (eps/ell/seed/workers) matches the defaults the bench
/// binaries historically hard-wired. `rr_options` reaches every RR-set
/// sampler a solver invokes (bundle-grd, item-disj, bundle-disj).
struct SolverOptions {
  double eps = 0.5;       ///< approximation slack ε of the sampling bounds
  double ell = 1.0;       ///< failure exponent: guarantee w.p. ≥ 1 − 1/n^ℓ
  uint64_t seed = 1;      ///< RNG seed; results are deterministic in it
  unsigned workers = 0;   ///< worker threads (0 = hardware concurrency)

  /// RR sampling semantics for the IMM/PRIMA-based solvers. The problem's
  /// DiffusionModel still wins: kLinearThreshold forces LT sampling.
  ///
  /// `rr_options.stream_cache` is the pool-reuse hook the sweep engine
  /// uses (exp/sweep.h): point it at an `RrStreamCache` and every RR pool
  /// the solver builds — PRIMA/IMM phase pools, regeneration pools, the
  /// Com-IC coin pools — is served warm from the cache, sampling only the
  /// delta past its high-water mark. Allocations are bit-identical to a
  /// cold run; the cache must outlive the Solve call and is not
  /// thread-safe across concurrent solves.
  RrOptions rr_options;

  McGreedySolverOptions mc_greedy;
  ComIcSolverOptions comic;
  BdhsSolverOptions bdhs;
};

}  // namespace uic
