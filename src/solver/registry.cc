#include "solver/registry.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <utility>

#include "common/annotations.h"
#include "common/mutex.h"

namespace uic {

namespace {

std::string Lowercase(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// The registry's shared state: the factory map and the mutex guarding
/// it live in one struct so the thread-safety analysis can tie the
/// GUARDED_BY relation to a concrete capability expression.
/// std::map keeps ListSolvers sorted; keys are stored lowercase.
struct RegistryState {
  Mutex mu;
  std::map<std::string, SolverRegistry::Factory> factories UIC_GUARDED_BY(mu);
};

RegistryState& State() {
  static RegistryState state;
  return state;
}

void EnsureBuiltins() {
  static const bool once = [] {
    detail::RegisterBuiltinSolvers();
    return true;
  }();
  (void)once;
}

}  // namespace

std::unique_ptr<Solver> SolverRegistry::Create(const std::string& name,
                                               const SolverOptions& options) {
  EnsureBuiltins();
  Factory factory;
  {
    RegistryState& state = State();
    MutexLock lock(state.mu);
    auto it = state.factories.find(Lowercase(name));
    if (it == state.factories.end()) return nullptr;
    factory = it->second;
  }
  return factory(options);
}

Result<std::unique_ptr<Solver>> SolverRegistry::CreateOrError(
    const std::string& name, const SolverOptions& options) {
  std::unique_ptr<Solver> solver = Create(name, options);
  if (solver != nullptr) return solver;
  std::string known;
  for (const std::string& n : ListSolvers()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::NotFound("no solver named '" + name +
                          "' (registered: " + known + ")");
}

std::vector<std::string> SolverRegistry::ListSolvers() {
  EnsureBuiltins();
  RegistryState& state = State();
  MutexLock lock(state.mu);
  std::vector<std::string> names;
  names.reserve(state.factories.size());
  for (const auto& [name, factory] : state.factories) names.push_back(name);
  return names;
}

bool SolverRegistry::Register(const std::string& name, Factory factory) {
  EnsureBuiltins();
  return detail::RegisterSolverFactory(name, std::move(factory));
}

namespace detail {

bool RegisterSolverFactory(const std::string& name,
                           SolverRegistry::Factory factory) {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  return state.factories.emplace(Lowercase(name), std::move(factory)).second;
}

}  // namespace detail

}  // namespace uic
