#include "solver/registry.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <mutex>
#include <utility>

namespace uic {

namespace {

std::string Lowercase(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

/// name (lowercase) → factory. std::map keeps ListSolvers sorted.
std::map<std::string, SolverRegistry::Factory>& Factories() {
  static std::map<std::string, SolverRegistry::Factory> map;
  return map;
}

void EnsureBuiltins() {
  static const bool once = [] {
    detail::RegisterBuiltinSolvers();
    return true;
  }();
  (void)once;
}

}  // namespace

std::unique_ptr<Solver> SolverRegistry::Create(const std::string& name,
                                               const SolverOptions& options) {
  EnsureBuiltins();
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto& factories = Factories();
    auto it = factories.find(Lowercase(name));
    if (it == factories.end()) return nullptr;
    factory = it->second;
  }
  return factory(options);
}

Result<std::unique_ptr<Solver>> SolverRegistry::CreateOrError(
    const std::string& name, const SolverOptions& options) {
  std::unique_ptr<Solver> solver = Create(name, options);
  if (solver != nullptr) return solver;
  std::string known;
  for (const std::string& n : ListSolvers()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::NotFound("no solver named '" + name +
                          "' (registered: " + known + ")");
}

std::vector<std::string> SolverRegistry::ListSolvers() {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> names;
  names.reserve(Factories().size());
  for (const auto& [name, factory] : Factories()) names.push_back(name);
  return names;
}

bool SolverRegistry::Register(const std::string& name, Factory factory) {
  EnsureBuiltins();
  return detail::RegisterSolverFactory(name, std::move(factory));
}

namespace detail {

bool RegisterSolverFactory(const std::string& name,
                           SolverRegistry::Factory factory) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return Factories().emplace(Lowercase(name), std::move(factory)).second;
}

}  // namespace detail

}  // namespace uic
