// String-keyed solver registry: the runtime algorithm-selection point.
//
// The seven built-in algorithms of §6 are pre-registered under the names
//   bundle-grd, item-disj, bundle-disj, mc-greedy, rr-sim+, rr-cim, bdhs
// (see PAPER.md for the roster↔name table). New algorithms plug in with
// SolverRegistry::Register without touching any caller — the uic_run
// driver, the bench binaries, and the CI smoke loop all go through
// ListSolvers()/Create().
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "solver/solver.h"

namespace uic {

class SolverRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Solver>(const SolverOptions&)>;

  /// Construct the solver registered under `name` (matched
  /// case-insensitively). Returns nullptr for an unknown name — callers
  /// that want a message use CreateOrError.
  static std::unique_ptr<Solver> Create(const std::string& name,
                                        const SolverOptions& options = {});

  /// As Create, but an unknown name yields Status::NotFound listing the
  /// registered solvers.
  [[nodiscard]] static Result<std::unique_ptr<Solver>> CreateOrError(
      const std::string& name, const SolverOptions& options = {});

  /// Registered names, sorted. Every name constructs via Create.
  static std::vector<std::string> ListSolvers();

  /// Register `factory` under `name` (stored lowercase). Returns false —
  /// leaving the existing entry in place — if the name is already taken
  /// (the built-in names always are).
  static bool Register(const std::string& name, Factory factory);

  SolverRegistry() = delete;
};

namespace detail {
/// Defined in builtin_solvers.cc; idempotently registers the seven
/// built-in algorithm adapters. Called by the registry on first use (a
/// plain function call, so it cannot be dropped the way per-TU static
/// initializers in a static library can).
void RegisterBuiltinSolvers();

/// Raw map insertion without the ensure-builtins step — the registration
/// path RegisterBuiltinSolvers itself uses (the public Register would
/// recurse into the in-flight builtin initialization).
bool RegisterSolverFactory(const std::string& name,
                           SolverRegistry::Factory factory);
}  // namespace detail

}  // namespace uic
