// Adapters mapping the seven allocation algorithms of §6 onto the unified
// Solver contract. Each adapter is a thin shim: translate WelfareProblem +
// SolverOptions into the legacy positional signature, call it, and return
// the AllocationResult. All input checking already happened in
// Solver::Solve via the declared Traits.
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "bdhs/bdhs.h"
#include "comic/rr_sim.h"
#include "common/timer.h"
#include "core/baselines.h"
#include "core/bundle_grd.h"
#include "core/mc_greedy.h"
#include "items/gap.h"
#include "solver/registry.h"

namespace uic {
namespace {

/// Generic adapter: every legacy algorithm is a pure function of
/// (problem, options), so one class parameterized by name/traits/impl
/// covers all seven registrations.
class FunctionSolver final : public Solver {
 public:
  using Impl = std::function<AllocationResult(const WelfareProblem&,
                                              const SolverOptions&)>;

  FunctionSolver(std::string name, Traits traits, Impl impl,
                 SolverOptions options)
      : Solver(std::move(options)),
        name_(std::move(name)),
        traits_(traits),
        impl_(std::move(impl)) {}

  const std::string& name() const override { return name_; }
  Traits traits() const override { return traits_; }

 protected:
  Result<AllocationResult> SolveValidated(
      const WelfareProblem& problem) override {
    return impl_(problem, options());
  }

 private:
  std::string name_;
  Traits traits_;
  Impl impl_;
};

void RegisterFunctionSolver(const std::string& name, Solver::Traits traits,
                            FunctionSolver::Impl impl) {
  detail::RegisterSolverFactory(
      name, [name, traits, impl = std::move(impl)](const SolverOptions& o) {
        return std::make_unique<FunctionSolver>(name, traits, impl, o);
      });
}

/// RR options with the problem's diffusion model folded in (the model wins
/// over a stale rr_options.linear_threshold).
RrOptions EffectiveRrOptions(const WelfareProblem& p, const SolverOptions& o) {
  RrOptions rr = o.rr_options;
  rr.linear_threshold |= p.model == DiffusionModel::kLinearThreshold;
  return rr;
}

ComIcBaselineOptions ToComIcOptions(const SolverOptions& o) {
  ComIcBaselineOptions comic;
  comic.eps = o.eps;
  comic.ell = o.ell;
  comic.cim_forward_simulations = o.comic.cim_forward_simulations;
  // The pool-reuse hook reaches the Com-IC samplers too (their node-coin
  // pools key cache entries by coin contents, so reuse stays sound).
  comic.stream_cache = o.rr_options.stream_cache;
  return comic;
}

AllocationResult SolveBdhs(const WelfareProblem& p, const SolverOptions& o) {
  WallTimer timer;
  BdhsResult bdhs;
  if (o.bdhs.variant == BdhsVariant::kConcave) {
    // BDHS-Concave is only valid under a uniform edge probability; evaluate
    // it on a re-weighted copy, as the Fig. 9 bench does.
    Graph uniform = *p.graph;
    uniform.ApplyConstantProbability(o.bdhs.uniform_p);
    bdhs = BdhsConcave(uniform, *p.params, o.bdhs.uniform_p);
  } else {
    bdhs = BdhsStep(*p.graph, *p.params, o.bdhs.kappa);
  }
  AllocationResult result;
  result.objective = bdhs.welfare;
  // BDHS is budget-free: it assigns the optimal bundle to every node.
  if (bdhs.bundle != kEmptyItemSet) {
    for (NodeId v = 0; v < p.graph->num_nodes(); ++v) {
      result.allocation.AppendNew(v, bdhs.bundle);
    }
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

namespace detail {

void RegisterBuiltinSolvers() {
  Solver::Traits prima_family;  // utility-oblivious, LT-capable
  prima_family.supports_linear_threshold = true;

  RegisterFunctionSolver(
      "bundle-grd", prima_family,
      [](const WelfareProblem& p, const SolverOptions& o) {
        return BundleGrd(*p.graph, p.budgets, o.eps, o.ell, o.seed, o.workers,
                         p.model, EffectiveRrOptions(p, o));
      });

  RegisterFunctionSolver(
      "item-disj", prima_family,
      [](const WelfareProblem& p, const SolverOptions& o) {
        return ItemDisjoint(*p.graph, p.budgets, o.eps, o.ell, o.seed,
                            o.workers, EffectiveRrOptions(p, o));
      });

  Solver::Traits bundle_disj_traits = prima_family;
  bundle_disj_traits.needs_params = true;
  RegisterFunctionSolver(
      "bundle-disj", bundle_disj_traits,
      [](const WelfareProblem& p, const SolverOptions& o) {
        return BundleDisjoint(*p.graph, p.budgets, *p.params, o.eps, o.ell,
                              o.seed, o.workers, EffectiveRrOptions(p, o));
      });

  Solver::Traits mc_greedy_traits;  // simulates UIC forward — IC only
  mc_greedy_traits.needs_params = true;
  RegisterFunctionSolver(
      "mc-greedy", mc_greedy_traits,
      [](const WelfareProblem& p, const SolverOptions& o) {
        McGreedyOptions greedy;
        greedy.simulations_per_eval = o.mc_greedy.simulations_per_eval;
        greedy.seed = o.seed;
        greedy.workers = o.workers;
        greedy.candidates = o.mc_greedy.candidates;
        return McGreedyAllocate(*p.graph, p.budgets, *p.params, greedy);
      });

  Solver::Traits comic_traits;  // Com-IC: two items, IC only
  comic_traits.needs_params = true;
  comic_traits.two_items_only = true;
  RegisterFunctionSolver(
      "rr-sim+", comic_traits,
      [](const WelfareProblem& p, const SolverOptions& o) {
        return RrSimPlus(*p.graph, DeriveTwoItemGap(*p.params), p.budgets[0],
                         p.budgets[1], ToComIcOptions(o), o.seed, o.workers);
      });
  RegisterFunctionSolver(
      "rr-cim", comic_traits,
      [](const WelfareProblem& p, const SolverOptions& o) {
        return RrCim(*p.graph, DeriveTwoItemGap(*p.params), p.budgets[0],
                     p.budgets[1], ToComIcOptions(o), o.seed, o.workers);
      });

  Solver::Traits bdhs_traits;  // live-edge IC externality, needs utilities
  bdhs_traits.needs_params = true;
  RegisterFunctionSolver("bdhs", bdhs_traits, SolveBdhs);
}

}  // namespace detail
}  // namespace uic
