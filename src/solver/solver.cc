#include "solver/solver.h"

#include <string>

#include "items/itemset.h"

namespace uic {

namespace {

std::string Describe(size_t v) { return std::to_string(v); }

}  // namespace

Status Solver::Validate(const WelfareProblem& problem) const {
  if (problem.graph == nullptr) {
    return Status::InvalidArgument("problem.graph is null");
  }
  if (problem.graph->num_nodes() == 0) {
    return Status::InvalidArgument("problem.graph is empty");
  }
  if (problem.budgets.empty()) {
    return Status::InvalidArgument("problem.budgets is empty");
  }
  if (problem.budgets.size() > kMaxItems) {
    return Status::InvalidArgument(
        "problem has " + Describe(problem.budgets.size()) +
        " items; the itemset representation supports at most " +
        Describe(kMaxItems));
  }
  for (size_t i = 0; i < problem.budgets.size(); ++i) {
    if (problem.budgets[i] > problem.graph->num_nodes()) {
      return Status::OutOfRange(
          "budgets[" + Describe(i) + "] = " + Describe(problem.budgets[i]) +
          " exceeds the number of nodes (" +
          Describe(problem.graph->num_nodes()) + ")");
    }
  }
  if (problem.params.has_value() &&
      problem.params->num_items() != problem.budgets.size()) {
    return Status::InvalidArgument(
        "problem.params has " + Describe(problem.params->num_items()) +
        " items but problem.budgets has " + Describe(problem.budgets.size()));
  }
  if (options_.eps <= 0.0) {
    return Status::InvalidArgument("options.eps must be positive");
  }
  if (options_.ell <= 0.0) {
    return Status::InvalidArgument("options.ell must be positive");
  }

  const Traits t = traits();
  if (t.needs_params && !problem.params.has_value()) {
    return Status::FailedPrecondition(
        "solver '" + name() +
        "' requires the utility configuration (problem.params)");
  }
  if (t.two_items_only && problem.budgets.size() != 2) {
    return Status::InvalidArgument(
        "solver '" + name() + "' supports exactly two items, got " +
        Describe(problem.budgets.size()));
  }
  if (!t.supports_linear_threshold &&
      problem.model == DiffusionModel::kLinearThreshold) {
    return Status::InvalidArgument(
        "solver '" + name() + "' does not support the linear-threshold model");
  }
  return Status::OK();
}

Result<AllocationResult> Solver::Solve(const WelfareProblem& problem) {
  Status st = Validate(problem);
  if (!st.ok()) return st;
  return SolveValidated(problem);
}

}  // namespace uic
