// The abstract Solver contract: one stable interface in front of the
// seven allocation algorithms of §6 (and any future ones).
//
//   auto solver = SolverRegistry::Create("bundle-grd", options);
//   Result<AllocationResult> r = solver->Solve(problem);
//
// Solve validates the problem against the solver's declared requirements
// (utility params needed? two items only? LT supported?) and returns a
// Status instead of crashing on malformed input; the legacy free functions
// remain as the thin internal implementations the adapters call.
#pragma once

#include <string>

#include "common/status.h"
#include "solver/problem.h"

namespace uic {

/// \brief Base class for all allocation solvers.
///
/// A Solver is cheap to construct (no per-instance state beyond options)
/// and stateless across Solve calls: the same (problem, options) always
/// yields the same allocation.
class Solver {
 public:
  /// Static requirements a concrete solver declares; `Solve` checks the
  /// problem against them before dispatching.
  struct Traits {
    /// Rejects problems without `params` (FailedPrecondition).
    bool needs_params = false;
    /// Supports exactly two items (the Com-IC baselines; extending Com-IC
    /// beyond two items needs exponentially many NLA parameters).
    bool two_items_only = false;
    /// Accepts DiffusionModel::kLinearThreshold.
    bool supports_linear_threshold = false;
  };

  explicit Solver(SolverOptions options) : options_(std::move(options)) {}
  virtual ~Solver() = default;

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Registry name of this solver (e.g. "bundle-grd").
  virtual const std::string& name() const = 0;

  virtual Traits traits() const = 0;

  /// Validate `problem`, then run the algorithm. Never crashes on
  /// malformed input; returns InvalidArgument / FailedPrecondition /
  /// OutOfRange with a message naming the offending field.
  [[nodiscard]] Result<AllocationResult> Solve(const WelfareProblem& problem);

  const SolverOptions& options() const { return options_; }

 protected:
  /// The algorithm itself; `problem` has already passed Validate.
  [[nodiscard]] virtual Result<AllocationResult> SolveValidated(
      const WelfareProblem& problem) = 0;

 private:
  [[nodiscard]] Status Validate(const WelfareProblem& problem) const;

  SolverOptions options_;
};

}  // namespace uic
