#include "serve/protocol.h"

namespace uic {
namespace serve {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

ErrorCode CodeFromStatus(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk:
    case Status::Code::kInternal:
      return ErrorCode::kInternal;
    case Status::Code::kInvalidArgument:
    case Status::Code::kOutOfRange:
      return ErrorCode::kBadRequest;
    case Status::Code::kNotFound:
      return ErrorCode::kNotFound;
    case Status::Code::kIOError:
      return ErrorCode::kNotFound;
    case Status::Code::kFailedPrecondition:
      return ErrorCode::kFailedPrecondition;
    case Status::Code::kDeadlineExceeded:
      return ErrorCode::kDeadlineExceeded;
  }
  return ErrorCode::kInternal;
}

Result<Request> ParseRequest(const std::string& line) {
  Result<Json> doc = Json::Parse(line);
  if (!doc.ok()) return doc.status();
  if (!doc.value().is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request request;
  request.body = doc.MoveValue();
  if (const Json* id = request.body.Find("id")) request.id = *id;
  const Json* verb = request.body.Find("verb");
  if (verb == nullptr || !verb->is_string() || verb->AsString().empty()) {
    return Status::InvalidArgument("request needs a non-empty string 'verb'");
  }
  request.verb = verb->AsString();
  if (const Json* deadline = request.body.Find("deadline_ms")) {
    if (!deadline->is_number() || deadline->AsDouble() < 0.0) {
      return Status::InvalidArgument(
          "'deadline_ms' must be a non-negative number");
    }
    request.deadline_ms = deadline->AsDouble();
  }
  return request;
}

std::string OkResponse(const Json& id, const Json& result,
                       const Json& serve_info) {
  Json response = Json::Object();
  response.Set("id", id);
  response.Set("ok", Json::Bool(true));
  response.Set("result", result);
  if (!serve_info.is_null()) response.Set("serve", serve_info);
  return response.Dump();
}

std::string ErrorResponse(const Json& id, ErrorCode code,
                          const std::string& message) {
  return ErrorResponse(id, code, message, Json());
}

std::string ErrorResponse(const Json& id, ErrorCode code,
                          const std::string& message, const Json& partial) {
  Json error = Json::Object();
  error.Set("code", Json::Str(ErrorCodeName(code)));
  error.Set("message", Json::Str(message));
  if (!partial.is_null()) error.Set("partial", partial);
  Json response = Json::Object();
  response.Set("id", id);
  response.Set("ok", Json::Bool(false));
  response.Set("error", std::move(error));
  return response.Dump();
}

}  // namespace serve
}  // namespace uic
