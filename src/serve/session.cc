#include "serve/session.h"

#include <cstdint>
#include <utility>

#include "common/failpoint.h"
#include "core/serialization.h"
#include "exp/configs.h"
#include "exp/networks.h"
#include "graph/generators.h"

namespace uic {
namespace serve {

Result<GraphSession> SessionRegistry::AddGraph(const std::string& name,
                                               Graph graph) {
  if (name.empty()) {
    return Status::InvalidArgument("graph session name must be non-empty");
  }
  {
    // error(...) makes a load fail after validation — the registry must
    // stay exactly as it was; delay_ms(n) widens load/unload races.
    const failpoint::Hit fp = UIC_FAILPOINT("serve.session.add_graph");
    failpoint::SleepFor(fp);
    if (fp.action == failpoint::Action::kError) {
      return Status::Internal("injected fault at serve.session.add_graph");
    }
  }
  MutexLock lock(mu_);
  const bool replacing = graphs_.count(name) > 0;
  if (!replacing && graphs_.size() >= max_graphs_) {
    return Status::FailedPrecondition(
        "graph session limit reached (" + std::to_string(max_graphs_) +
        "); unload one first");
  }
  GraphSession session;
  session.name = name;
  session.generation = next_generation_++;
  session.graph = std::make_shared<const Graph>(std::move(graph));
  graphs_[name] = session;
  return session;
}

Result<ParamsSession> SessionRegistry::AddParams(const std::string& name,
                                                 ItemParams params) {
  if (name.empty()) {
    return Status::InvalidArgument("params session name must be non-empty");
  }
  MutexLock lock(mu_);
  const bool replacing = params_.count(name) > 0;
  if (!replacing && params_.size() >= max_params_) {
    return Status::FailedPrecondition(
        "params session limit reached (" + std::to_string(max_params_) +
        "); unload one first");
  }
  ParamsSession session;
  session.name = name;
  session.generation = next_generation_++;
  session.params = std::make_shared<const ItemParams>(std::move(params));
  params_.insert_or_assign(name, session);
  return session;
}

Result<GraphSession> SessionRegistry::GetGraph(const std::string& name) const {
  {
    // Simulates losing the race with an unload: the lookup fails the way
    // it would if another client dropped the session a beat earlier.
    const failpoint::Hit fp = UIC_FAILPOINT("serve.session.get_graph");
    failpoint::SleepFor(fp);
    if (fp.action == failpoint::Action::kError) {
      return Status::NotFound("injected fault at serve.session.get_graph: '" +
                              name + "' vanished");
    }
  }
  MutexLock lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no loaded graph named '" + name + "'");
  }
  return it->second;
}

Result<ParamsSession> SessionRegistry::GetParams(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = params_.find(name);
  if (it == params_.end()) {
    return Status::NotFound("no loaded params named '" + name + "'");
  }
  return it->second;
}

Status SessionRegistry::RemoveGraph(const std::string& name,
                                    uint64_t* generation) {
  MutexLock lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no loaded graph named '" + name + "'");
  }
  if (generation != nullptr) *generation = it->second.generation;
  graphs_.erase(it);
  return Status::OK();
}

Status SessionRegistry::RemoveParams(const std::string& name) {
  MutexLock lock(mu_);
  auto it = params_.find(name);
  if (it == params_.end()) {
    return Status::NotFound("no loaded params named '" + name + "'");
  }
  params_.erase(it);
  return Status::OK();
}

Json SessionRegistry::Describe() const {
  MutexLock lock(mu_);
  Json graphs = Json::Array();
  for (const auto& [name, session] : graphs_) {
    Json entry = Json::Object();
    entry.Set("name", Json::Str(name));
    entry.Set("generation",
              Json::Int(static_cast<long long>(session.generation)));
    entry.Set("nodes", Json::Int(session.graph->num_nodes()));
    entry.Set("edges",
              Json::Int(static_cast<long long>(session.graph->num_edges())));
    graphs.Append(std::move(entry));
  }
  Json params = Json::Array();
  for (const auto& [name, session] : params_) {
    Json entry = Json::Object();
    entry.Set("name", Json::Str(name));
    entry.Set("generation",
              Json::Int(static_cast<long long>(session.generation)));
    entry.Set("items", Json::Int(session.params->num_items()));
    params.Append(std::move(entry));
  }
  Json out = Json::Object();
  out.Set("graphs", std::move(graphs));
  out.Set("params", std::move(params));
  return out;
}

namespace {

/// Integer field with range validation; `def` when absent.
Result<long long> GetIntField(const Json& body, const char* key,
                              long long def, long long lo, long long hi) {
  const Json* field = body.Find(key);
  if (field == nullptr) return def;
  if (!field->is_number()) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a number");
  }
  const long long v = field->AsInt();
  if (field->AsDouble() != static_cast<double>(v) || v < lo || v > hi) {
    return Status::InvalidArgument(
        std::string("'") + key + "' must be an integer in [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

std::string GetStringField(const Json& body, const char* key,
                           const std::string& def = "") {
  const Json* field = body.Find(key);
  if (field == nullptr || !field->is_string()) return def;
  return field->AsString();
}

}  // namespace

Result<Graph> BuildGraphFromSpec(const Json& body) {
  const Json* p_field = body.Find("p");
  if (p_field != nullptr &&
      (!p_field->is_number() || p_field->AsDouble() < 0.0 ||
       p_field->AsDouble() > 1.0)) {
    return Status::InvalidArgument("'p' must be a probability in [0, 1]");
  }
  const double p = p_field != nullptr ? p_field->AsDouble() : 0.0;

  const std::string path = GetStringField(body, "path");
  if (!path.empty()) {
    Result<Graph> loaded = LoadGraph(path);
    if (loaded.ok() && p > 0.0) loaded.value().ApplyConstantProbability(p);
    return loaded;
  }

  const std::string network = GetStringField(body, "network");
  if (network.empty()) {
    return Status::InvalidArgument(
        "load_graph needs either 'path' or a 'network' generator spec");
  }
  Result<long long> nodes = GetIntField(body, "nodes", 2000, 1, UINT32_MAX);
  if (!nodes.ok()) return nodes.status();
  Result<long long> edges =
      GetIntField(body, "edges", 6 * nodes.value(), 0, INT64_MAX);
  if (!edges.ok()) return edges.status();
  Result<long long> net_seed =
      GetIntField(body, "net_seed", 20190630, 0, INT64_MAX);
  if (!net_seed.ok()) return net_seed.status();
  const uint64_t seed = static_cast<uint64_t>(net_seed.value());
  const Json* scale_field = body.Find("scale");
  const double scale =
      scale_field != nullptr && scale_field->is_number() &&
              scale_field->AsDouble() > 0.0
          ? scale_field->AsDouble()
          : 0.3;

  Graph graph;
  if (network == "er") {
    graph = GenerateErdosRenyi(static_cast<NodeId>(nodes.value()),
                               static_cast<size_t>(edges.value()), seed);
    graph.ApplyWeightedCascade();
  } else if (network == "pa") {
    graph = GeneratePreferentialAttachment(
        static_cast<NodeId>(nodes.value()), /*out_per_node=*/5,
        /*undirected=*/false, seed);
    graph.ApplyWeightedCascade();
  } else if (network == "flixster") {
    graph = MakeFlixsterLike(seed, scale);
  } else if (network == "douban-book") {
    graph = MakeDoubanBookLike(seed, scale);
  } else if (network == "douban-movie") {
    graph = MakeDoubanMovieLike(seed, scale);
  } else if (network == "twitter") {
    graph = MakeTwitterLike(seed, scale);
  } else if (network == "orkut") {
    graph = MakeOrkutLike(seed, scale);
  } else {
    return Status::InvalidArgument("unknown network '" + network + "'");
  }
  if (p > 0.0) graph.ApplyConstantProbability(p);
  return graph;
}

Result<ItemParams> BuildParamsFromSpec(const Json& body) {
  const std::string path = GetStringField(body, "path");
  if (!path.empty()) return LoadItemParams(path);

  const std::string config = GetStringField(body, "config");
  if (config.empty()) {
    return Status::InvalidArgument(
        "load_params needs either 'path' or 'config'");
  }
  Result<long long> items = GetIntField(body, "items", 2, 1, 32);
  if (!items.ok()) return items.status();
  const ItemId num_items = static_cast<ItemId>(items.value());
  Result<long long> param_seed =
      GetIntField(body, "param_seed", 8, 0, INT64_MAX);
  if (!param_seed.ok()) return param_seed.status();

  if (config == "config12") return MakeTwoItemConfig12();
  if (config == "config34") return MakeTwoItemConfig34();
  if (config == "additive") return MakeAdditiveConfig5(num_items);
  if (config == "cone-max") return MakeConeConfig67(num_items, 0);
  if (config == "cone-min") {
    return MakeConeConfig67(num_items, static_cast<ItemId>(num_items - 1));
  }
  if (config == "levelwise") {
    return MakeLevelwiseConfig8(num_items,
                                static_cast<uint64_t>(param_seed.value()));
  }
  if (config == "real") return MakeRealPlaystationParams();
  return Status::InvalidArgument("unknown config '" + config + "'");
}

}  // namespace serve
}  // namespace uic
