#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>

#include "common/failpoint.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace uic {
namespace serve {

namespace {

// Registry mirrors of the controller's own tallies (which feed the stats
// verb): the gauges track live queue/slot occupancy, the counters the
// rejection reasons. Updated under mu_, so one mirror per event.
struct AdmissionInstruments {
  obs::Gauge& queue_depth;
  obs::Gauge& running;
  obs::Counter& admitted;
  obs::Counter& shed;
  obs::Counter& deadline_exceeded;
};

AdmissionInstruments& AdmissionMetrics() {
  UIC_METRIC_GAUGE(queue_depth, "uic_serve_queue_depth",
                   "Requests waiting for an admission slot right now.");
  UIC_METRIC_GAUGE(running, "uic_serve_running",
                   "Requests holding an admission slot right now.");
  UIC_METRIC_COUNTER(admitted, "uic_serve_admitted_total",
                     "Requests granted an admission slot.");
  UIC_METRIC_COUNTER(shed, "uic_serve_shed_total",
                     "Requests shed because the admission queue was full.");
  UIC_METRIC_COUNTER(
      deadline_exceeded, "uic_serve_queue_deadline_exceeded_total",
      "Requests whose deadline_ms expired while they were queued.");
  static AdmissionInstruments instruments{queue_depth, running, admitted,
                                          shed, deadline_exceeded};
  return instruments;
}

}  // namespace

AdmissionController::AdmissionController(Options options)
    : options_(options) {}

AdmissionController::Decision AdmissionController::Admit(double deadline_ms,
                                                         double* queued_ms) {
  WallTimer timer;
  // delay_ms(n) widens queue/deadline races without filling the queue;
  // error(...) forces a shed so the 429 path is testable on an idle
  // server. Evaluated before the lock: a delay must never hold mu_.
  const failpoint::Hit fp = UIC_FAILPOINT("serve.scheduler.admit");
  failpoint::SleepFor(fp);
  AdmissionInstruments& metrics = AdmissionMetrics();
  MutexLock lock(mu_);
  if (fp.action == failpoint::Action::kError) {
    ++shed_;
    metrics.shed.Add();
    return Decision::kShed;
  }
  if (draining_) return Decision::kDraining;
  if (waiting_.size() >= options_.queue_capacity) {
    ++shed_;
    metrics.shed.Add();
    return Decision::kShed;
  }
  const uint64_t ticket = next_ticket_++;
  waiting_.push_back(ticket);
  max_queue_depth_ = std::max(max_queue_depth_, waiting_.size());
  metrics.queue_depth.Set(static_cast<long long>(waiting_.size()));

  while (true) {
    if (draining_) {
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), ticket));
      metrics.queue_depth.Set(static_cast<long long>(waiting_.size()));
      wake_.NotifyAll();
      return Decision::kDraining;
    }
    if (running_ < options_.concurrency && waiting_.front() == ticket) {
      waiting_.erase(waiting_.begin());
      ++running_;
      ++admitted_;
      metrics.queue_depth.Set(static_cast<long long>(waiting_.size()));
      metrics.running.Set(static_cast<long long>(running_));
      metrics.admitted.Add();
      if (queued_ms != nullptr) *queued_ms = timer.ElapsedMillis();
      return Decision::kAdmitted;
    }
    if (deadline_ms > 0.0) {
      const double remaining_ms = deadline_ms - timer.ElapsedMillis();
      if (remaining_ms <= 0.0) {
        ++deadline_exceeded_;
        metrics.deadline_exceeded.Add();
        // Removing a non-head ticket can promote the next waiter to head
        // while a slot is free; wake everyone to re-check.
        waiting_.erase(std::find(waiting_.begin(), waiting_.end(), ticket));
        metrics.queue_depth.Set(static_cast<long long>(waiting_.size()));
        wake_.NotifyAll();
        return Decision::kDeadlineExceeded;
      }
      wake_.WaitFor(mu_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::duration<double, std::milli>(
                                 remaining_ms)));
    } else {
      wake_.Wait(mu_);
    }
  }
}

void AdmissionController::Release() {
  MutexLock lock(mu_);
  --running_;
  AdmissionMetrics().running.Set(static_cast<long long>(running_));
  wake_.NotifyAll();
}

void AdmissionController::BeginDrain() {
  MutexLock lock(mu_);
  draining_ = true;
  wake_.NotifyAll();
}

void AdmissionController::AwaitIdle() {
  MutexLock lock(mu_);
  while (running_ > 0 || !waiting_.empty()) wake_.Wait(mu_);
}

Json AdmissionController::Describe() const {
  MutexLock lock(mu_);
  Json out = Json::Object();
  out.Set("concurrency", Json::Int(options_.concurrency));
  out.Set("queue_capacity",
          Json::Int(static_cast<long long>(options_.queue_capacity)));
  out.Set("running", Json::Int(running_));
  out.Set("queued", Json::Int(static_cast<long long>(waiting_.size())));
  out.Set("max_queue_depth",
          Json::Int(static_cast<long long>(max_queue_depth_)));
  out.Set("admitted", Json::Int(static_cast<long long>(admitted_)));
  out.Set("shed", Json::Int(static_cast<long long>(shed_)));
  out.Set("deadline_exceeded",
          Json::Int(static_cast<long long>(deadline_exceeded_)));
  return out;
}

}  // namespace serve
}  // namespace uic
