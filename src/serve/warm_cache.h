// The serve layer's warm state: RrStreamCache instances shared across
// requests, checked out exclusively per (graph generation, seed, LT).
//
// An `RrStreamCache` (rrset/rr_stream_cache.h) memoizes per-stream RR
// sample sequences so a repeat solve extends cached streams instead of
// resampling — but it is deliberately mutex-free and NOT safe across
// concurrent solver invocations. `WarmPool` turns it into a serving-grade
// resource: entries are keyed by (graph generation, master seed,
// LT-sampling flag) — the coordinates RR stream content is a pure
// function of — and `Acquire` hands out an *exclusive lease*; a second
// request on the same key blocks until the first releases. Requests on
// different keys run fully concurrently (they share no mutable state).
//
// Because cached streams replay exactly what a cold collection would have
// drawn, a warm-served response is bit-identical to a cold one; the only
// observable difference is the `rr_sets_sampled` accounting the server
// reports per response. The pool enforces an LRU entry cap (idle entries
// evict; leased entries never do) so long-running daemons hold a bounded
// number of sample pools.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "graph/graph.h"
#include "rrset/rr_stream_cache.h"
#include "serve/json.h"

namespace uic {
namespace serve {

/// \brief Identity of one warm sample pool: the coordinates RR stream
/// content is a pure function of (graph via generation; seed; sampling
/// semantics via the LT flag — per-request pass-prob vectors are keyed
/// inside the RrStreamCache itself).
struct WarmKey {
  uint64_t generation = 0;
  uint64_t seed = 0;
  bool linear_threshold = false;

  bool operator==(const WarmKey& o) const {
    return generation == o.generation && seed == o.seed &&
           linear_threshold == o.linear_threshold;
  }
};

class WarmPool;

/// \brief Exclusive RAII lease on one warm cache entry.
class WarmLease {
 public:
  WarmLease() = default;
  WarmLease(WarmLease&& o) noexcept { *this = std::move(o); }
  WarmLease& operator=(WarmLease&& o) noexcept;
  ~WarmLease() { Release(); }

  WarmLease(const WarmLease&) = delete;
  WarmLease& operator=(const WarmLease&) = delete;

  /// The leased cache; nullptr on a default-constructed lease.
  RrStreamCache* cache() const { return cache_; }
  /// True when the entry existed before this Acquire (a warm hit).
  bool hit() const { return hit_; }

  /// Give the entry back (idempotent; the destructor calls it).
  void Release();

 private:
  friend class WarmPool;
  WarmPool* pool_ = nullptr;
  size_t entry_id_ = 0;
  RrStreamCache* cache_ = nullptr;
  bool hit_ = false;
};

/// \brief Bounded pool of exclusively-leased RrStreamCache entries.
class WarmPool {
 public:
  explicit WarmPool(size_t max_entries = 16) : max_entries_(max_entries) {}

  /// Check out the entry for `key`, creating it on first use (`graph`
  /// pins the graph for the entry's lifetime). Blocks while another
  /// lease holds the same key. Creating past the cap first evicts the
  /// least-recently-used idle entry.
  WarmLease Acquire(const WarmKey& key,
                    std::shared_ptr<const Graph> graph);

  /// Drop every entry of `generation` (an unloaded graph). Idle entries
  /// drop immediately; leased ones are marked dying and drop on release.
  void DropGeneration(uint64_t generation);

  /// Aggregate accounting for the `stats` verb: entries, hits, misses,
  /// evictions, and the summed RrStreamCache sampled/served counters.
  Json Describe() const;

 private:
  friend class WarmLease;

  struct Entry {
    size_t id = 0;  ///< stable handle (entries_ indices shift on evict)
    WarmKey key;
    std::shared_ptr<const Graph> graph;
    std::unique_ptr<RrStreamCache> cache;
    bool leased = false;
    bool dying = false;
    uint64_t last_used = 0;  ///< LRU tick
    /// Counters snapshotted at each Release, while the lease still holds
    /// the cache exclusively — `Describe` must never read a leased
    /// entry's live RrStreamCache (it is mutex-free by design), so stats
    /// lag by at most the in-flight solve.
    RrStreamCache::Stats last_stats;
  };

  void Release(size_t entry_id);

  /// Locate `id` in entries_; nullptr when evicted. UIC_REQUIRES(mu_).
  Entry* FindEntry(size_t id) UIC_REQUIRES(mu_);

  /// Fold entries_[index]'s counters into the retired totals and erase it.
  void RetireEntry(size_t index) UIC_REQUIRES(mu_);

  const size_t max_entries_;

  mutable Mutex mu_;
  CondVar released_;
  std::vector<std::unique_ptr<Entry>> entries_ UIC_GUARDED_BY(mu_);
  uint64_t tick_ UIC_GUARDED_BY(mu_) = 0;
  size_t next_id_ UIC_GUARDED_BY(mu_) = 1;
  uint64_t hits_ UIC_GUARDED_BY(mu_) = 0;
  uint64_t misses_ UIC_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ UIC_GUARDED_BY(mu_) = 0;
  /// Sampled/served totals of entries that were evicted or dropped, so
  /// Describe's aggregates stay monotone across evictions.
  uint64_t retired_sampled_ UIC_GUARDED_BY(mu_) = 0;
  uint64_t retired_served_ UIC_GUARDED_BY(mu_) = 0;
};

}  // namespace serve
}  // namespace uic
