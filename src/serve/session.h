// The session registry: named graphs and item-param sets pinned in memory
// across requests.
//
// Loading a graph is the one cost even warm serving cannot amortize away,
// so clients pay it once: `load_graph` parses/generates the network into
// the registry under a client-chosen name, and every later `solve` refers
// to it by name. Entries are shared_ptr-pinned — an unload (or a reload
// under the same name) removes the name immediately, but in-flight solves
// and warm-cache entries keep the object alive until they release it.
//
// Every successful load gets a process-unique *generation* id. The warm
// cache keys on the generation, not the name, so reloading "g" under the
// same name can never serve samples drawn on the old graph (that would
// break the (graph, options, seed) purity the determinism contract is
// stated over).
//
// Capacity is part of admission control: the registry refuses loads past
// its caps (kOverloaded at the protocol level) instead of growing until
// the kernel OOM-kills the daemon.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "graph/graph.h"
#include "items/params.h"
#include "serve/json.h"

namespace uic {
namespace serve {

/// \brief A pinned graph: name, generation, shared ownership.
struct GraphSession {
  std::string name;
  uint64_t generation = 0;
  std::shared_ptr<const Graph> graph;
};

/// \brief A pinned utility configuration.
struct ParamsSession {
  std::string name;
  uint64_t generation = 0;
  std::shared_ptr<const ItemParams> params;
};

/// \brief Thread-safe name → pinned-object registry.
class SessionRegistry {
 public:
  explicit SessionRegistry(size_t max_graphs = 8, size_t max_params = 32)
      : max_graphs_(max_graphs), max_params_(max_params) {}

  /// Pin `graph` under `name`. Replacing an existing name is allowed and
  /// bumps the generation; exceeding the cap with a *new* name fails with
  /// FailedPrecondition (mapped to kOverloaded by the server).
  [[nodiscard]] Result<GraphSession> AddGraph(const std::string& name,
                                              Graph graph);
  [[nodiscard]] Result<ParamsSession> AddParams(const std::string& name,
                                                ItemParams params);

  /// NotFound when `name` is not loaded.
  [[nodiscard]] Result<GraphSession> GetGraph(const std::string& name) const;
  [[nodiscard]] Result<ParamsSession> GetParams(
      const std::string& name) const;

  /// Drop `name` from the registry (in-flight users keep their pins).
  /// NotFound when absent. On success `*generation` (optional) receives
  /// the dropped entry's generation so the caller can evict warm state.
  [[nodiscard]] Status RemoveGraph(const std::string& name,
                                   uint64_t* generation = nullptr);
  [[nodiscard]] Status RemoveParams(const std::string& name);

  /// Sorted inventory for the `stats` verb:
  /// {"graphs":[{"name","generation","nodes","edges"}...],
  ///  "params":[{"name","generation","items"}...]}.
  Json Describe() const;

 private:
  const size_t max_graphs_;
  const size_t max_params_;

  mutable Mutex mu_;
  // std::map: deterministic iteration order for Describe (UIC-L006).
  std::map<std::string, GraphSession> graphs_ UIC_GUARDED_BY(mu_);
  std::map<std::string, ParamsSession> params_ UIC_GUARDED_BY(mu_);
  uint64_t next_generation_ UIC_GUARDED_BY(mu_) = 1;
};

/// \brief Build a graph from a `load_graph` request body.
///
/// Either `"path"` (a SaveGraph file) or a generator spec mirroring the
/// uic_run network flags: `"network"` (er | pa | flixster | douban-book |
/// douban-movie | twitter | orkut), `"nodes"`, `"edges"`, `"net_seed"`,
/// `"scale"`; optional `"p"` re-weights every edge to a constant
/// probability.
[[nodiscard]] Result<Graph> BuildGraphFromSpec(const Json& body);

/// \brief Build item params from a `load_params` request body: `"path"`
/// (a SaveItemParams file) or `"config"` (config12 | config34 | additive |
/// cone-max | cone-min | levelwise | real) with `"items"`/`"param_seed"`.
[[nodiscard]] Result<ItemParams> BuildParamsFromSpec(const Json& body);

}  // namespace serve
}  // namespace uic
