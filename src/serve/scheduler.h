// Admission control for the welfare-query service: a bounded FIFO wait
// queue in front of a fixed number of execution slots.
//
// The daemon must degrade predictably under load, not OOM: RR pools are
// the dominant memory cost and each admitted solve may grow one, so the
// number of *concurrent* solves is capped (`concurrency` slots — the
// actual compute inside a slot still fans out over `ThreadPool::Shared()`
// via the solvers' ParallelFor calls), and the number of *waiting*
// requests is capped (`queue_capacity`). A request arriving to a full
// queue is shed immediately with kOverloaded (the 429 analogue: the
// client should back off and retry) instead of being buffered without
// bound; a request whose `deadline_ms` elapses while still queued fails
// with kDeadlineExceeded without ever starting (admitted work always runs
// to completion — there is no preemption).
//
// Admission order is strict FIFO by arrival ticket, so a burst drains in
// a predictable order. None of this affects response *content*: payloads
// are deterministic in (problem, options, seed) regardless of scheduling
// (see rr_collection.h); the scheduler only decides when — and whether —
// a request runs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "serve/json.h"

namespace uic {
namespace serve {

/// \brief FIFO admission gate with bounded queue and per-request deadline.
class AdmissionController {
 public:
  struct Options {
    unsigned concurrency = 2;    ///< simultaneous execution slots
    size_t queue_capacity = 16;  ///< waiting requests before shedding
  };

  enum class Decision {
    kAdmitted,          ///< run now; call Release() when done
    kShed,              ///< queue full at arrival — 429
    kDeadlineExceeded,  ///< deadline elapsed while queued — 504
    kDraining,          ///< server shutting down — 503
  };

  explicit AdmissionController(Options options);

  /// Wait for an execution slot (FIFO). `deadline_ms` of 0 waits
  /// indefinitely. On kAdmitted, `*queued_ms` (optional) receives the
  /// time spent waiting and the caller owns one slot until Release().
  Decision Admit(double deadline_ms, double* queued_ms = nullptr);

  /// Return the slot taken by a successful Admit.
  void Release();

  /// Fail all queued waiters and every future Admit with kDraining;
  /// running requests are unaffected (the daemon drains them).
  void BeginDrain();

  /// Block until no request is running or queued (the drain barrier).
  void AwaitIdle();

  /// Queue/counter snapshot for the `stats` verb.
  Json Describe() const;

 private:
  const Options options_;

  mutable Mutex mu_;
  CondVar wake_;
  unsigned running_ UIC_GUARDED_BY(mu_) = 0;
  /// FIFO of waiting tickets (erased from the middle on deadline/drain).
  std::vector<uint64_t> waiting_ UIC_GUARDED_BY(mu_);
  uint64_t next_ticket_ UIC_GUARDED_BY(mu_) = 1;
  bool draining_ UIC_GUARDED_BY(mu_) = false;
  uint64_t admitted_ UIC_GUARDED_BY(mu_) = 0;
  uint64_t shed_ UIC_GUARDED_BY(mu_) = 0;
  uint64_t deadline_exceeded_ UIC_GUARDED_BY(mu_) = 0;
  size_t max_queue_depth_ UIC_GUARDED_BY(mu_) = 0;
};

}  // namespace serve
}  // namespace uic
