// Minimal JSON document model for the serve protocol (serve/protocol.h).
//
// The welfare-query service speaks JSON-lines: one request object in, one
// response object out, per line. This is the only JSON the repo needs, so
// the model is deliberately small: null/bool/number/string/array/object,
// an exact recursive-descent parser, and a writer whose output is a pure
// function of the document — objects preserve insertion order (no
// hash-order nondeterminism, rule UIC-L006), numbers format as `%lld`
// when integral and `%.17g` otherwise. That determinism is what lets the
// golden serve-session test pin whole response lines byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace uic {
namespace serve {

/// \brief A JSON value (tree-owning, cheap to move).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default-constructs null.
  Json() = default;

  static Json Null() { return Json(); }
  static Json Bool(bool b) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = b;
    return j;
  }
  static Json Number(double v) {
    Json j;
    j.type_ = Type::kNumber;
    j.number_ = v;
    return j;
  }
  static Json Int(long long v) { return Number(static_cast<double>(v)); }
  static Json Str(std::string s) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(s);
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads with a fallback for any other type.
  bool AsBool(bool def = false) const { return is_bool() ? bool_ : def; }
  double AsDouble(double def = 0.0) const {
    return is_number() ? number_ : def;
  }
  long long AsInt(long long def = 0) const {
    // Casting a double outside long long's range is UB; fold such values
    // (and NaN) to `def` so range-validating callers reject them cleanly.
    if (!is_number() || !(number_ >= -9223372036854775808.0 &&
                          number_ < 9223372036854775808.0)) {
      return def;
    }
    return static_cast<long long>(number_);
  }
  const std::string& AsString() const { return string_; }

  // --- array ------------------------------------------------------------
  void Append(Json v) { array_.push_back(std::move(v)); }
  size_t size() const {
    return is_array() ? array_.size() : members_.size();
  }
  const std::vector<Json>& items() const { return array_; }

  // --- object (insertion-ordered) ---------------------------------------
  /// Append `key` (or overwrite an existing one in place).
  Json& Set(const std::string& key, Json value);
  /// Member lookup; nullptr when absent (or when this is not an object).
  const Json* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serialize on one line (no whitespace). Deterministic: member order
  /// is insertion order, numbers are %lld when integral else %.17g.
  std::string Dump() const;

  /// Parse exactly one JSON document (rejects trailing garbage). Depth is
  /// capped at 64 so a hostile request cannot overflow the stack.
  [[nodiscard]] static Result<Json> Parse(const std::string& text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escape `s` as a JSON string literal, including the quotes.
std::string JsonEscape(const std::string& s);

/// The deterministic number formatting `Dump` uses (shared with code that
/// formats numbers into pre-escaped payloads).
std::string JsonNumberToString(double v);

}  // namespace serve
}  // namespace uic
