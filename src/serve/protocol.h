// The serve wire protocol: JSON-lines requests and responses.
//
// One request object per line, one response line per request, in request
// order per connection:
//
//   {"id":1,"verb":"load_graph","name":"g","network":"er","nodes":300,...}
//   {"id":2,"verb":"load_params","name":"p","config":"config12"}
//   {"id":3,"verb":"solve","graph":"g","params":"p",
//    "algorithm":"bundle-grd","budgets":[3,3],"seed":4}
//   {"id":4,"verb":"stats"}
//   {"id":5,"verb":"shutdown"}
//
// Responses are `{"id":...,"ok":true,"result":{...},"serve":{...}}` on
// success — `result` carries the deterministic payload (allocation,
// welfare, pool sizes; bit-identical warm/cold/concurrent by the
// determinism contract) and `serve` the load-dependent accounting (cache
// hit, RR sets sampled vs reused, queue/solve latency) — or
// `{"id":...,"ok":false,"error":{"code":...,"message":...}}` on failure.
// `id` is echoed verbatim (number, string, or null when absent) so
// clients can pipeline. The verb roster lives in serve/server.h; this
// header is only the envelope: parsing, error codes, response framing.
#pragma once

#include <string>

#include "common/status.h"
#include "serve/json.h"

namespace uic {
namespace serve {

/// \brief Machine-readable error classes (the HTTP-status analogue noted
/// per code). Stable protocol surface: clients dispatch on `code`.
enum class ErrorCode {
  kBadRequest,         ///< malformed JSON / missing field / unknown verb (400)
  kNotFound,           ///< unknown session name or algorithm (404)
  kFailedPrecondition, ///< solver/problem validation failed (412)
  kOverloaded,         ///< admission queue full — shed, retry later (429)
  kDeadlineExceeded,   ///< queued past the request's deadline_ms (504)
  kUnavailable,        ///< server draining for shutdown (503)
  kInternal,           ///< anything else (500)
};

/// Wire name of `code` (e.g. "overloaded").
const char* ErrorCodeName(ErrorCode code);

/// Map a lower-layer Status (loader, registry, solver validation) onto
/// the protocol error vocabulary.
ErrorCode CodeFromStatus(const Status& status);

/// \brief A parsed request envelope.
struct Request {
  Json id;           ///< echoed verbatim; null when the client sent none
  std::string verb;  ///< required, non-empty
  Json body;         ///< the full request object (verb-specific fields)
  /// End-to-end budget in milliseconds: the scheduler fails the request
  /// with kDeadlineExceeded if it is still queued past the deadline, and
  /// the solve path re-checks at phase boundaries so an admitted request
  /// that blows its budget mid-solve errors (with partial stats) instead
  /// of returning a full result late; 0 = no deadline.
  double deadline_ms = 0.0;
};

/// Parse one request line. InvalidArgument on malformed JSON, a
/// non-object document, a missing/empty `verb`, or a negative/non-number
/// `deadline_ms`.
[[nodiscard]] Result<Request> ParseRequest(const std::string& line);

/// `{"id":...,"ok":true,"result":...}` with an optional trailing `serve`
/// section (pass a null Json to omit it). Returns the line WITHOUT a
/// trailing newline.
std::string OkResponse(const Json& id, const Json& result,
                       const Json& serve_info);

/// `{"id":...,"ok":false,"error":{"code":...,"message":...}}`.
std::string ErrorResponse(const Json& id, ErrorCode code,
                          const std::string& message);

/// As above, with an `error.partial` member carrying whatever progress
/// stats the server had when it gave up (omitted when `partial` is null).
/// Used by mid-solve deadline_exceeded responses: the client learns how
/// far the solve got, but gets no result it could mistake for a full one.
std::string ErrorResponse(const Json& id, ErrorCode code,
                          const std::string& message, const Json& partial);

}  // namespace serve
}  // namespace uic
