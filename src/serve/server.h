// The welfare-query server: verb dispatch over the JSON-lines protocol,
// glued to the session registry, warm cache, and admission scheduler.
//
// Verb roster (request fields beyond the envelope live on the same
// object; see protocol.h for the envelope):
//
//   ping        → {"pong":true}
//   load_graph  name + (path | network spec, session.h)  [admission-gated]
//   load_params name + (path | config)                   [admission-gated]
//   solve       graph, budgets, [params, algorithm="bundle-grd", seed=1,
//               eps=0.5, ell=1.0, model="ic"|"lt", eval_sims=0,
//               eval_seed, warm=true]                    [admission-gated]
//   unload      {"graph":name} or {"params":name} — dropping a graph also
//               drops its warm-cache entries (by generation)
//   stats       registry + warm pool + scheduler + request counters
//   metrics     process-global metric exposition (obs/metrics.h) as one
//               text blob; timing-valued series only with include_timing
//   shutdown    begin drain; in-flight requests finish, readers stop
//   set_failpoints  {"failpoints":{"name":"policy",...}} — arm/disarm
//               fault injection (common/failpoint.h grammar). Only
//               answers when the server was built with `testing` set
//               (the daemon's --testing flag); otherwise
//               failed_precondition.
//
// Determinism contract: everything under a response's `result` key is a
// pure function of the request (given the loaded sessions) — bit-identical
// whether served cold, warm, or concurrently with other clients, at any
// worker count. Load-dependent accounting (cache hit, RR sampled vs
// reused, latency) lives under `serve`, never under `result`; wall-clock
// fields additionally require `include_timing` (off in golden tests).
//
// Threading: HandleLine is safe to call from any number of threads
// concurrently — per-request state is on the stack, shared state is
// behind the component mutexes, and same-key warm solves serialize on
// their WarmLease. ServeTcp runs one BackgroundThread per connection;
// ServePipe serves a single in-process session (requests handled on the
// caller's thread, in order).
#pragma once

#include <atomic>
#include <string>

#include "common/timer.h"
#include "serve/json.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/session.h"
#include "serve/warm_cache.h"

namespace uic {
namespace serve {

struct ServerOptions {
  unsigned concurrency = 2;     ///< simultaneous admitted requests
  size_t queue_capacity = 16;   ///< admission queue bound (then shed)
  size_t max_graphs = 8;        ///< session registry caps
  size_t max_params = 32;
  size_t warm_entries = 16;     ///< warm-cache LRU bound
  /// Emit wall-clock fields (`serve.queued_ms`, `serve.solve_ms`,
  /// `stats.solve_ms_total`). Off = byte-reproducible sessions.
  bool include_timing = true;
  /// Enable the `set_failpoints` verb (the daemon's --testing flag). Off
  /// in production: clients must not be able to inject faults. The
  /// UIC_FAILPOINTS environment variable works regardless — arming the
  /// process is the operator's call, not the remote client's.
  bool testing = false;
};

class Server {
 public:
  /// `stop`: optional caller-owned flag (the daemon's signal flag); the
  /// `shutdown` verb sets it too. nullptr uses an internal flag.
  explicit Server(ServerOptions options, std::atomic<bool>* stop = nullptr);

  /// Handle one request line; returns the response line (no newline).
  std::string HandleLine(const std::string& line);

  /// Serve one JSON-lines session on `channel` until EOF, a `shutdown`
  /// verb, or the stop flag. Requests run on the caller's thread.
  void ServePipe(FdLineChannel& channel);

  /// Accept loop: one BackgroundThread per connection, until the stop
  /// flag (signal or `shutdown` verb). Drains — every connection thread
  /// finishes its in-flight request and is joined — before returning.
  [[nodiscard]] Status ServeTcp(TcpListener& listener);

  /// Start draining: fail new/queued admissions, stop readers. In-flight
  /// requests still complete (that is the graceful-shutdown contract).
  void BeginDrain();

  bool stopping() const { return stop_->load(std::memory_order_relaxed); }

  /// The `stats` verb's payload (also handy for tests).
  Json Stats() const;

  /// The `metrics` verb's payload: the process-global registry's text
  /// exposition (timing series included per ServerOptions::include_timing).
  std::string MetricsText() const;

  /// Minimal HTTP/1.0 responder for `uic_served --metrics-port`: accepts
  /// connections on `listener` until the stop flag, answering each with
  /// one text exposition and closing. All socket I/O goes through the
  /// net.h primitives.
  [[nodiscard]] Status ServeMetricsHttp(TcpListener& listener);

 private:
  std::string HandleRequest(const Request& request);
  [[nodiscard]] Result<Json> DoLoadGraph(const Json& body);
  [[nodiscard]] Result<Json> DoLoadParams(const Json& body);
  /// `deadline_ms` is the request's end-to-end budget and `request_timer`
  /// has been running since the request arrived; on a mid-solve deadline
  /// miss the status is DeadlineExceeded and *partial holds progress
  /// stats for the error payload.
  [[nodiscard]] Result<Json> DoSolve(const Json& body, double queued_ms,
                                     double deadline_ms,
                                     const WallTimer& request_timer,
                                     Json* serve_info, Json* partial,
                                     double* solve_ms_out);
  [[nodiscard]] Result<Json> DoUnload(const Json& body);
  [[nodiscard]] Result<Json> DoSetFailpoints(const Json& body);

  const ServerOptions options_;
  std::atomic<bool> own_stop_{false};
  std::atomic<bool>* const stop_;

  SessionRegistry sessions_;
  WarmPool warm_;
  AdmissionController admission_;

  // Request accounting lives on the process-global obs::MetricsRegistry
  // (one accounting path for the stats verb, the metrics verb, and the
  // exposition endpoint). Each Server snapshots the registry totals at
  // construction so Stats() reports per-instance deltas — the shape the
  // golden transcripts pin. Invariants over a quiesced instance:
  //   requests == ok + errors, and solves <= ok
  // (a solve that exceeds its deadline mid-solve is an error, not a
  // solve — both tallies are recorded at the same call site, fixing the
  // old RequestCounters drift where RecordSolve counted deadline'd work).
  uint64_t base_ok_ = 0;
  uint64_t base_errors_ = 0;
  uint64_t base_solves_ = 0;
  double base_solve_ms_ = 0.0;
};

}  // namespace serve
}  // namespace uic
