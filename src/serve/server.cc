#include "serve/server.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "diffusion/lt_model.h"
#include "diffusion/uic_model.h"
#include "items/itemset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/registry.h"

namespace uic {
namespace serve {

namespace {

/// The request-accounting instruments the stats verb reads. Bundled so the
/// Server constructor can snapshot all four baselines from one place.
struct RequestInstruments {
  obs::Counter& ok;
  obs::Counter& errors;
  obs::Counter& solves;
  obs::Histogram& solve_latency_ms;
};

RequestInstruments& RequestAccounting() {
  UIC_METRIC_COUNTER_LABELED(
      ok, "uic_serve_requests_total", "status=\"ok\"",
      "Requests answered, by final response status.");
  UIC_METRIC_COUNTER_LABELED(
      errors, "uic_serve_requests_total", "status=\"error\"",
      "Requests answered, by final response status.");
  UIC_METRIC_COUNTER(
      solves, "uic_serve_solves_total",
      "Solve requests answered ok (deadline-exceeded solves are errors).");
  UIC_METRIC_HISTOGRAM_MS(
      solve_latency_ms, "uic_serve_solve_latency_ms", "",
      "Solver wall time per ok solve response, milliseconds.");
  static RequestInstruments instruments{ok, errors, solves,
                                        solve_latency_ms};
  return instruments;
}

/// Per-verb completion counter. The roster is closed (unknown verbs fall
/// into one bucket), so every series exists from first use with a literal
/// label — the exposition schema never depends on client input.
void AccountVerb(const std::string& verb) {
  UIC_METRIC_COUNTER_LABELED(c_ping, "uic_serve_verb_requests_total",
                             "verb=\"ping\"", "Requests answered, by verb.");
  UIC_METRIC_COUNTER_LABELED(c_stats, "uic_serve_verb_requests_total",
                             "verb=\"stats\"", "Requests answered, by verb.");
  UIC_METRIC_COUNTER_LABELED(c_metrics, "uic_serve_verb_requests_total",
                             "verb=\"metrics\"",
                             "Requests answered, by verb.");
  UIC_METRIC_COUNTER_LABELED(c_shutdown, "uic_serve_verb_requests_total",
                             "verb=\"shutdown\"",
                             "Requests answered, by verb.");
  UIC_METRIC_COUNTER_LABELED(c_set_failpoints,
                             "uic_serve_verb_requests_total",
                             "verb=\"set_failpoints\"",
                             "Requests answered, by verb.");
  UIC_METRIC_COUNTER_LABELED(c_unload, "uic_serve_verb_requests_total",
                             "verb=\"unload\"",
                             "Requests answered, by verb.");
  UIC_METRIC_COUNTER_LABELED(c_load_graph, "uic_serve_verb_requests_total",
                             "verb=\"load_graph\"",
                             "Requests answered, by verb.");
  UIC_METRIC_COUNTER_LABELED(c_load_params, "uic_serve_verb_requests_total",
                             "verb=\"load_params\"",
                             "Requests answered, by verb.");
  UIC_METRIC_COUNTER_LABELED(c_solve, "uic_serve_verb_requests_total",
                             "verb=\"solve\"", "Requests answered, by verb.");
  UIC_METRIC_COUNTER_LABELED(c_other, "uic_serve_verb_requests_total",
                             "verb=\"other\"", "Requests answered, by verb.");
  if (verb == "solve") {
    c_solve.Add();
  } else if (verb == "ping") {
    c_ping.Add();
  } else if (verb == "stats") {
    c_stats.Add();
  } else if (verb == "metrics") {
    c_metrics.Add();
  } else if (verb == "load_graph") {
    c_load_graph.Add();
  } else if (verb == "load_params") {
    c_load_params.Add();
  } else if (verb == "unload") {
    c_unload.Add();
  } else if (verb == "shutdown") {
    c_shutdown.Add();
  } else if (verb == "set_failpoints") {
    c_set_failpoints.Add();
  } else {
    c_other.Add();
  }
}

/// One accounting path for every answered request (including lines that
/// fail to parse, recorded under verb "other"). The ok/error tally is
/// recorded before the solve tally at its call site, so `solves <= ok`
/// holds whenever the instance is quiesced.
void AccountRequest(const std::string& verb, bool ok) {
  RequestInstruments& m = RequestAccounting();
  (ok ? m.ok : m.errors).Add();
  AccountVerb(verb);
}

std::string GetStringField(const Json& body, const char* key,
                           const std::string& def = "") {
  const Json* field = body.Find(key);
  if (field == nullptr || !field->is_string()) return def;
  return field->AsString();
}

Result<long long> GetIntField(const Json& body, const char* key,
                              long long def, long long lo, long long hi) {
  const Json* field = body.Find(key);
  if (field == nullptr) return def;
  if (!field->is_number()) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a number");
  }
  const long long v = field->AsInt();
  if (field->AsDouble() != static_cast<double>(v) || v < lo || v > hi) {
    return Status::InvalidArgument(
        std::string("'") + key + "' must be an integer in [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

Result<double> GetNumberField(const Json& body, const char* key, double def,
                              double lo, double hi) {
  const Json* field = body.Find(key);
  if (field == nullptr) return def;
  if (!field->is_number() || field->AsDouble() < lo ||
      field->AsDouble() > hi) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a number in [" +
                                   std::to_string(lo) + ", " +
                                   std::to_string(hi) + "]");
  }
  return field->AsDouble();
}

Json AllocationToJson(const Allocation& allocation) {
  Json out = Json::Array();
  for (const auto& [node, items] : allocation.entries()) {
    Json entry = Json::Object();
    entry.Set("node", Json::Int(node));
    Json item_list = Json::Array();
    ForEachItem(items,
                [&](ItemId i) { item_list.Append(Json::Int(i)); });
    entry.Set("items", std::move(item_list));
    out.Append(std::move(entry));
  }
  return out;
}

/// RAII admission-slot return.
struct SlotGuard {
  AdmissionController* admission;
  ~SlotGuard() { admission->Release(); }
};

}  // namespace

Server::Server(ServerOptions options, std::atomic<bool>* stop)
    : options_(options),
      stop_(stop != nullptr ? stop : &own_stop_),
      sessions_(options.max_graphs, options.max_params),
      warm_(options.warm_entries),
      admission_({options.concurrency, options.queue_capacity}) {
  // Snapshot the process-global tallies: Stats() reports this instance's
  // deltas, so a fresh Server starts from zero like the old per-instance
  // RequestCounters did.
  const RequestInstruments& m = RequestAccounting();
  base_solves_ = m.solves.Value();
  base_ok_ = m.ok.Value();
  base_errors_ = m.errors.Value();
  base_solve_ms_ = m.solve_latency_ms.Sum();
}

void Server::BeginDrain() {
  stop_->store(true, std::memory_order_relaxed);
  admission_.BeginDrain();
}

Json Server::Stats() const {
  Json out = Json::Object();
  out.Set("sessions", sessions_.Describe());
  out.Set("warm_cache", warm_.Describe());
  out.Set("admission", admission_.Describe());

  // The registry totals minus this instance's construction-time baseline,
  // in the exact JSON shape the golden transcripts pin. Solves are read
  // before ok so a concurrent solve's paired increments (ok first, solve
  // second at the same site) can only be seen as ok-without-solve.
  const RequestInstruments& m = RequestAccounting();
  const uint64_t solves = m.solves.Value() - base_solves_;
  const uint64_t ok = m.ok.Value() - base_ok_;
  const uint64_t errors = m.errors.Value() - base_errors_;
  Json requests = Json::Object();
  requests.Set("requests", Json::Int(static_cast<long long>(ok + errors)));
  requests.Set("ok", Json::Int(static_cast<long long>(ok)));
  requests.Set("errors", Json::Int(static_cast<long long>(errors)));
  requests.Set("solves", Json::Int(static_cast<long long>(solves)));
  if (options_.include_timing) {
    requests.Set("solve_ms_total",
                 Json::Number(m.solve_latency_ms.Sum() - base_solve_ms_));
  }
  out.Set("requests", std::move(requests));
  return out;
}

std::string Server::MetricsText() const {
  return obs::MetricsRegistry::Global().ExpositionText(
      options_.include_timing);
}

std::string Server::HandleLine(const std::string& line) {
  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    AccountRequest("", false);
    return ErrorResponse(Json::Null(), ErrorCode::kBadRequest,
                         parsed.status().message());
  }
  return HandleRequest(parsed.value());
}

std::string Server::HandleRequest(const Request& request) {
  // Started at arrival so deadline_ms bounds the whole request — queueing
  // AND solving — not just the wait for admission.
  WallTimer request_timer;
  const Json& id = request.id;
  const std::string& verb = request.verb;

  if (verb == "ping") {
    AccountRequest(verb, true);
    Json result = Json::Object();
    result.Set("pong", Json::Bool(true));
    return OkResponse(id, result, Json::Null());
  }
  if (verb == "stats") {
    AccountRequest(verb, true);
    return OkResponse(id, Stats(), Json::Null());
  }
  if (verb == "metrics") {
    AccountRequest(verb, true);
    Json result = Json::Object();
    result.Set("format", Json::Str("prometheus-text"));
    result.Set("text", Json::Str(MetricsText()));
    return OkResponse(id, result, Json::Null());
  }
  if (verb == "shutdown") {
    BeginDrain();
    AccountRequest(verb, true);
    Json result = Json::Object();
    result.Set("draining", Json::Bool(true));
    return OkResponse(id, result, Json::Null());
  }
  if (verb == "set_failpoints") {
    if (!options_.testing) {
      AccountRequest(verb, false);
      return ErrorResponse(id, ErrorCode::kFailedPrecondition,
                           "set_failpoints requires a --testing daemon");
    }
    Result<Json> result = DoSetFailpoints(request.body);
    AccountRequest(verb, result.ok());
    if (!result.ok()) {
      return ErrorResponse(id, CodeFromStatus(result.status()),
                           result.status().message());
    }
    return OkResponse(id, result.value(), Json::Null());
  }
  if (verb == "unload") {
    Result<Json> result = DoUnload(request.body);
    AccountRequest(verb, result.ok());
    if (!result.ok()) {
      return ErrorResponse(id, CodeFromStatus(result.status()),
                           result.status().message());
    }
    return OkResponse(id, result.value(), Json::Null());
  }

  if (verb == "load_graph" || verb == "load_params" || verb == "solve") {
    double queued_ms = 0.0;
    AdmissionController::Decision decision;
    {
      obs::TraceSpan wait_span("serve.admission_wait");
      decision = admission_.Admit(request.deadline_ms, &queued_ms);
    }
    switch (decision) {
      case AdmissionController::Decision::kShed:
        AccountRequest(verb, false);
        return ErrorResponse(id, ErrorCode::kOverloaded,
                             "admission queue full; retry later");
      case AdmissionController::Decision::kDeadlineExceeded:
        AccountRequest(verb, false);
        return ErrorResponse(id, ErrorCode::kDeadlineExceeded,
                             "request exceeded its deadline_ms while queued");
      case AdmissionController::Decision::kDraining:
        AccountRequest(verb, false);
        return ErrorResponse(id, ErrorCode::kUnavailable,
                             "server is draining for shutdown");
      case AdmissionController::Decision::kAdmitted:
        break;
    }
    SlotGuard slot{&admission_};

    if (verb == "solve") {
      obs::TraceSpan solve_span("serve.solve");
      // Post-admission site: error(...) exercises the typed internal
      // error path; delay_ms(n) pins a solve in flight (the SIGTERM-drain
      // and mid-solve-deadline tests) without touching solver code.
      const failpoint::Hit fp = UIC_FAILPOINT("serve.solve.admitted");
      if (fp.action == failpoint::Action::kError) {
        AccountRequest(verb, false);
        return ErrorResponse(id, ErrorCode::kInternal,
                             "injected fault at serve.solve.admitted");
      }
      failpoint::SleepFor(fp);
      Json serve_info;
      Json partial;
      double solve_ms = 0.0;
      Result<Json> result =
          DoSolve(request.body, queued_ms, request.deadline_ms,
                  request_timer, &serve_info, &partial, &solve_ms);
      // Single accounting site for the solve invariant: ok is recorded
      // first, then the solve tally — and only for an ok response, so a
      // deadline-exceeded solve counts as an error, never a solve.
      AccountRequest(verb, result.ok());
      solve_span.SetAttr("ok", result.ok() ? 1 : 0);
      if (!result.ok()) {
        return ErrorResponse(id, CodeFromStatus(result.status()),
                             result.status().message(), partial);
      }
      RequestInstruments& m = RequestAccounting();
      m.solves.Add();
      m.solve_latency_ms.Observe(solve_ms);
      return OkResponse(id, result.value(), serve_info);
    }
    Result<Json> result = verb == "load_graph" ? DoLoadGraph(request.body)
                                               : DoLoadParams(request.body);
    AccountRequest(verb, result.ok());
    if (!result.ok()) {
      // The registry caps are admission control: a full registry sheds
      // the load (kOverloaded) rather than reporting a client mistake.
      const ErrorCode code =
          result.status().code() == Status::Code::kFailedPrecondition
              ? ErrorCode::kOverloaded
              : CodeFromStatus(result.status());
      return ErrorResponse(id, code, result.status().message());
    }
    return OkResponse(id, result.value(), Json::Null());
  }

  AccountRequest(verb, false);
  return ErrorResponse(id, ErrorCode::kBadRequest,
                       "unknown verb '" + verb + "'");
}

Result<Json> Server::DoLoadGraph(const Json& body) {
  const std::string name = GetStringField(body, "name");
  if (name.empty()) {
    return Status::InvalidArgument("load_graph needs a 'name'");
  }
  Result<Graph> graph = BuildGraphFromSpec(body);
  if (!graph.ok()) return graph.status();
  Result<GraphSession> session =
      sessions_.AddGraph(name, graph.MoveValue());
  if (!session.ok()) return session.status();
  // A same-name replace retires the old generation's warm entries: the
  // old graph object stays alive only for solves already holding a pin.
  Json result = Json::Object();
  result.Set("name", Json::Str(session.value().name));
  result.Set("generation",
             Json::Int(static_cast<long long>(session.value().generation)));
  result.Set("nodes", Json::Int(session.value().graph->num_nodes()));
  result.Set("edges", Json::Int(static_cast<long long>(
                          session.value().graph->num_edges())));
  return result;
}

Result<Json> Server::DoLoadParams(const Json& body) {
  const std::string name = GetStringField(body, "name");
  if (name.empty()) {
    return Status::InvalidArgument("load_params needs a 'name'");
  }
  Result<ItemParams> params = BuildParamsFromSpec(body);
  if (!params.ok()) return params.status();
  Result<ParamsSession> session =
      sessions_.AddParams(name, params.MoveValue());
  if (!session.ok()) return session.status();
  Json result = Json::Object();
  result.Set("name", Json::Str(session.value().name));
  result.Set("generation",
             Json::Int(static_cast<long long>(session.value().generation)));
  result.Set("items", Json::Int(session.value().params->num_items()));
  return result;
}

Result<Json> Server::DoUnload(const Json& body) {
  const std::string graph_name = GetStringField(body, "graph");
  const std::string params_name = GetStringField(body, "params");
  if (graph_name.empty() == params_name.empty()) {
    return Status::InvalidArgument(
        "unload needs exactly one of 'graph' or 'params'");
  }
  Json result = Json::Object();
  if (!graph_name.empty()) {
    uint64_t generation = 0;
    UIC_RETURN_NOT_OK(sessions_.RemoveGraph(graph_name, &generation));
    warm_.DropGeneration(generation);
    result.Set("unloaded_graph", Json::Str(graph_name));
  } else {
    UIC_RETURN_NOT_OK(sessions_.RemoveParams(params_name));
    result.Set("unloaded_params", Json::Str(params_name));
  }
  return result;
}

Result<Json> Server::DoSetFailpoints(const Json& body) {
  const Json* points = body.Find("failpoints");
  if (points == nullptr || !points->is_object()) {
    return Status::InvalidArgument(
        "set_failpoints needs a 'failpoints' object mapping site names to "
        "policy strings");
  }
  for (const auto& [name, policy] : points->members()) {
    if (!policy.is_string()) {
      return Status::InvalidArgument("failpoint '" + name +
                                     "' policy must be a string");
    }
    UIC_RETURN_NOT_OK(failpoint::Set(name, policy.AsString()));
  }
  Json armed = Json::Object();
  for (const auto& [name, spec] : failpoint::List()) {
    armed.Set(name, Json::Str(spec));
  }
  Json result = Json::Object();
  result.Set("armed", std::move(armed));
  return result;
}

Result<Json> Server::DoSolve(const Json& body, double queued_ms,
                             double deadline_ms,
                             const WallTimer& request_timer,
                             Json* serve_info, Json* partial,
                             double* solve_ms_out) {
  const std::string graph_name = GetStringField(body, "graph");
  if (graph_name.empty()) {
    return Status::InvalidArgument("solve needs a 'graph' session name");
  }
  Result<GraphSession> graph_session = sessions_.GetGraph(graph_name);
  if (!graph_session.ok()) return graph_session.status();
  const GraphSession& graph = graph_session.value();

  const Json* budgets_field = body.Find("budgets");
  if (budgets_field == nullptr || !budgets_field->is_array() ||
      budgets_field->items().empty()) {
    return Status::InvalidArgument(
        "'budgets' must be a non-empty array of per-item seed budgets");
  }
  std::vector<uint32_t> budgets;
  for (const Json& b : budgets_field->items()) {
    if (!b.is_number() ||
        b.AsDouble() != static_cast<double>(b.AsInt()) || b.AsInt() < 0 ||
        b.AsInt() > 1000000) {
      return Status::InvalidArgument(
          "'budgets' entries must be integers in [0, 1000000]");
    }
    budgets.push_back(static_cast<uint32_t>(b.AsInt()));
  }

  WelfareProblem problem;
  problem.graph = graph.graph.get();
  problem.budgets = std::move(budgets);

  const std::string params_name = GetStringField(body, "params");
  if (!params_name.empty()) {
    Result<ParamsSession> params = sessions_.GetParams(params_name);
    if (!params.ok()) return params.status();
    problem.params = *params.value().params;
  }

  const std::string model = GetStringField(body, "model", "ic");
  if (model != "ic" && model != "lt") {
    return Status::InvalidArgument("'model' must be \"ic\" or \"lt\"");
  }
  const bool lt = model == "lt";
  problem.model = lt ? DiffusionModel::kLinearThreshold
                     : DiffusionModel::kIndependentCascade;

  SolverOptions options;
  Result<long long> seed = GetIntField(body, "seed", 1, 0, INT64_MAX);
  if (!seed.ok()) return seed.status();
  options.seed = static_cast<uint64_t>(seed.value());
  Result<double> eps = GetNumberField(body, "eps", 0.5, 1e-6, 1.0);
  if (!eps.ok()) return eps.status();
  options.eps = eps.value();
  Result<double> ell = GetNumberField(body, "ell", 1.0, 1e-6, 16.0);
  if (!ell.ok()) return ell.status();
  options.ell = ell.value();
  options.rr_options.linear_threshold = lt;

  const std::string algorithm = GetStringField(body, "algorithm",
                                               "bundle-grd");
  Result<long long> eval_sims =
      GetIntField(body, "eval_sims", 0, 0, 1000000);
  if (!eval_sims.ok()) return eval_sims.status();
  Result<long long> eval_seed =
      GetIntField(body, "eval_seed", 20190701, 0, INT64_MAX);
  if (!eval_seed.ok()) return eval_seed.status();
  const Json* warm_field = body.Find("warm");
  if (warm_field != nullptr && !warm_field->is_bool()) {
    return Status::InvalidArgument("'warm' must be a boolean");
  }
  const bool warm = warm_field == nullptr || warm_field->AsBool(true);

  // Warm path: exclusive lease on the shared pool for (generation, seed,
  // LT). Cold path ('warm':false): a private cache, so the request still
  // reports exact sampled counts — the payload is identical either way by
  // the RrStreamCache replay contract.
  RrStreamCache cold_cache;
  WarmLease lease;
  RrStreamCache* cache = &cold_cache;
  bool warm_hit = false;
  if (warm) {
    obs::TraceSpan acquire_span("serve.warm_acquire");
    WarmKey key;
    key.generation = graph.generation;
    key.seed = options.seed;
    key.linear_threshold = lt;
    lease = warm_.Acquire(key, graph.graph);
    cache = lease.cache();
    warm_hit = lease.hit();
    acquire_span.SetAttr("hit", warm_hit ? 1 : 0);
  }
  const RrStreamCache::Stats before = cache->stats();
  options.rr_options.stream_cache = cache;

  WallTimer timer;
  Result<std::unique_ptr<Solver>> solver =
      SolverRegistry::CreateOrError(algorithm, options);
  if (!solver.ok()) return solver.status();
  Result<AllocationResult> solved = [&] {
    obs::TraceSpan solver_span("solver.solve");
    return solver.value()->Solve(problem);
  }();
  const double solve_ms = timer.ElapsedMillis();
  *solve_ms_out = solve_ms;
  const RrStreamCache::Stats after = cache->stats();
  // Hand the pool back before the (cache-independent) welfare evaluation
  // so a same-key request can start solving during our eval.
  lease.Release();
  if (!solved.ok()) return solved.status();
  const AllocationResult& allocation_result = solved.value();

  // Cheap deadline checks at solve-phase boundaries: a request that blows
  // its end-to-end budget mid-solve must not return a full result late.
  // The client gets progress stats, never a payload it could mistake for
  // the answer it stopped waiting for.
  const auto deadline_expired = [&]() {
    return deadline_ms > 0.0 && request_timer.ElapsedMillis() > deadline_ms;
  };
  const auto deadline_status = [&]() -> Status {
    *partial = Json::Object();
    partial->Set("num_rr_sets",
                 Json::Int(static_cast<long long>(
                     allocation_result.num_rr_sets)));
    partial->Set("rr_sets_sampled",
                 Json::Int(static_cast<long long>(after.sampled_sets -
                                                  before.sampled_sets)));
    partial->Set("rr_sets_served",
                 Json::Int(static_cast<long long>(after.served_sets -
                                                  before.served_sets)));
    return Status::DeadlineExceeded(
        "request exceeded its deadline_ms mid-solve");
  };
  if (deadline_expired()) return deadline_status();

  Json result = Json::Object();
  result.Set("algorithm", Json::Str(solver.value()->name()));
  result.Set("model", Json::Str(model));
  result.Set("seed", Json::Int(seed.value()));
  result.Set("allocation", AllocationToJson(allocation_result.allocation));
  result.Set("num_rr_sets",
             Json::Int(static_cast<long long>(
                 allocation_result.num_rr_sets)));
  result.Set("objective", Json::Number(allocation_result.objective));
  if (problem.params.has_value() && eval_sims.value() > 0) {
    obs::TraceSpan estimate_span("serve.estimate");
    UIC_METRIC_TIMING_COUNTER(
        estimate_us, "uic_solver_phase_us_total", "phase=\"estimate\"",
        "Wall time per solve phase, microseconds.");
    WallTimer estimate_timer;
    const WelfareEstimate estimate =
        lt ? EstimateWelfareLt(*problem.graph,
                               allocation_result.allocation,
                               *problem.params,
                               static_cast<size_t>(eval_sims.value()),
                               static_cast<uint64_t>(eval_seed.value()))
           : EstimateWelfare(*problem.graph, allocation_result.allocation,
                             *problem.params,
                             static_cast<size_t>(eval_sims.value()),
                             static_cast<uint64_t>(eval_seed.value()));
    estimate_us.Add(
        static_cast<uint64_t>(estimate_timer.ElapsedMillis() * 1000.0));
    Json welfare = Json::Object();
    welfare.Set("welfare", Json::Number(estimate.welfare));
    welfare.Set("std_error", Json::Number(estimate.std_error));
    welfare.Set("avg_adopters", Json::Number(estimate.avg_adopters));
    welfare.Set("avg_adoptions", Json::Number(estimate.avg_adoptions));
    result.Set("welfare", std::move(welfare));
    // Boundary #2: Monte-Carlo evaluation can dominate the request when
    // eval_sims is large, so re-check before shipping the result.
    if (deadline_expired()) return deadline_status();
  }

  *serve_info = Json::Object();
  serve_info->Set("warm", Json::Bool(warm));
  serve_info->Set("warm_hit", Json::Bool(warm_hit));
  serve_info->Set("rr_sets_sampled",
                  Json::Int(static_cast<long long>(after.sampled_sets -
                                                   before.sampled_sets)));
  serve_info->Set("rr_sets_served",
                  Json::Int(static_cast<long long>(after.served_sets -
                                                   before.served_sets)));
  if (options_.include_timing) {
    serve_info->Set("queued_ms", Json::Number(queued_ms));
    serve_info->Set("solve_ms", Json::Number(solve_ms));
  }
  return result;
}

void Server::ServePipe(FdLineChannel& channel) {
  std::string line;
  while (!stopping() && channel.ReadLine(&line, stop_)) {
    if (line.empty()) continue;
    if (!channel.WriteLine(HandleLine(line))) break;
  }
}

Status Server::ServeTcp(TcpListener& listener) {
  struct ConnectionWorker {
    std::shared_ptr<TcpConnection> connection;
    std::shared_ptr<std::atomic<bool>> done;
    std::unique_ptr<BackgroundThread> thread;
  };
  std::vector<ConnectionWorker> workers;

  while (!stopping()) {
    Result<TcpConnection> accepted = listener.Accept(*stop_);
    if (!accepted.ok()) {
      BeginDrain();
      for (auto& w : workers) w.thread->Join();
      return accepted.status();
    }
    if (!accepted.value().valid()) break;  // stop flag fired

    ConnectionWorker worker;
    worker.connection =
        std::make_shared<TcpConnection>(accepted.MoveValue());
    worker.done = std::make_shared<std::atomic<bool>>(false);
    auto connection = worker.connection;
    auto done = worker.done;
    worker.thread = std::make_unique<BackgroundThread>([this, connection,
                                                        done]() {
      FdLineChannel channel(connection->fd(), connection->fd(),
                            /*socket_fds=*/true);
      std::string line;
      while (channel.ReadLine(&line, stop_)) {
        if (line.empty()) continue;
        if (!channel.WriteLine(HandleLine(line))) break;
        if (stopping()) break;
      }
      done->store(true, std::memory_order_release);
    });
    workers.push_back(std::move(worker));

    // Reap finished connections so a long-lived daemon doesn't accumulate
    // one joinable thread per past client.
    for (size_t i = workers.size(); i > 0; --i) {
      if (workers[i - 1].done->load(std::memory_order_acquire)) {
        workers[i - 1].thread->Join();
        workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(i - 1));
      }
    }
  }

  // Drain: every connection thread observes the stop flag within the poll
  // interval, finishes (and answers) its in-flight request, and exits.
  BeginDrain();
  for (auto& w : workers) w.thread->Join();
  admission_.AwaitIdle();
  return Status::OK();
}

Status Server::ServeMetricsHttp(TcpListener& listener) {
  while (!stopping()) {
    Result<TcpConnection> accepted = listener.Accept(*stop_);
    if (!accepted.ok()) return accepted.status();
    if (!accepted.value().valid()) break;  // stop flag fired
    TcpConnection connection = accepted.MoveValue();
    FdLineChannel channel(connection.fd(), connection.fd(),
                          /*socket_fds=*/true);
    // Consume the request line before answering so a well-behaved HTTP
    // client does not race our close against its own send; clients that
    // half-close without sending anything get the body anyway.
    std::string request_line;
    (void)channel.ReadLine(&request_line, stop_);
    const std::string body = MetricsText();
    std::string response = "HTTP/1.0 200 OK\r\n";
    response += "Content-Type: text/plain; version=0.0.4\r\n";
    response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    response += "Connection: close\r\n\r\n";
    response += body;
    (void)channel.WriteRaw(response);  // peer gone: just move on
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace uic
