#include "serve/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace uic {
namespace serve {

namespace {

constexpr int kPollIntervalMs = 100;

/// poll() for readability, re-arming on EINTR. Returns false when `stop`
/// fired (or on a poll error), true when `fd` is readable/at EOF.
bool WaitReadable(int fd, const std::atomic<bool>* stop) {
  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return false;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, stop != nullptr ? kPollIntervalMs : -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc > 0) return true;  // readable, HUP, or error — read() resolves
  }
}

}  // namespace

bool FdLineChannel::ReadLine(std::string* line,
                             const std::atomic<bool>* stop) {
  while (true) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      *line = std::move(buffer_);  // final unterminated line
      buffer_.clear();
      return true;
    }
    if (!WaitReadable(read_fd_, stop)) return false;
    char chunk[4096];
    const ssize_t n = read(read_fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

bool FdLineChannel::WriteLine(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n;
    if (socket_fds_) {
      n = send(write_fd_, framed.data() + off, framed.size() - off,
               MSG_NOSIGNAL);
    } else {
      n = write(write_fd_, framed.data() + off, framed.size() - off);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void TcpConnection::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    port_ = o.port_;
    o.fd_ = -1;
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

Result<TcpListener> TcpListener::Listen(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    close(fd);
    return Status::IOError(std::string("bind 127.0.0.1:") +
                           std::to_string(port) + ": " + strerror(err));
  }
  if (listen(fd, 16) < 0) {
    const int err = errno;
    close(fd);
    return Status::IOError(std::string("listen: ") + strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    const int err = errno;
    close(fd);
    return Status::IOError(std::string("getsockname: ") + strerror(err));
  }

  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpConnection> TcpListener::Accept(const std::atomic<bool>& stop) {
  while (true) {
    if (!WaitReadable(fd_, &stop)) return TcpConnection();  // stop fired
    const int fd = accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IOError(std::string("accept: ") + strerror(errno));
    }
    return TcpConnection(fd);
  }
}

Result<TcpConnection> TcpListener::Connect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                 sizeof(addr)) < 0) {
    if (errno == EINTR) continue;
    const int err = errno;
    close(fd);
    return Status::IOError(std::string("connect 127.0.0.1:") +
                           std::to_string(port) + ": " + strerror(err));
  }
  return TcpConnection(fd);
}

}  // namespace serve
}  // namespace uic
