#include "serve/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace uic {
namespace serve {

namespace {

constexpr int kPollIntervalMs = 100;

/// Transient poll()/accept() failures retried before giving up. Each retry
/// sleeps one poll interval, so this bounds the stall at ~1s.
constexpr int kMaxTransientRetries = 10;

/// Sleep one poll interval (a poll with no fds — the project's sanctioned
/// sleep in the net layer); callers re-check their stop flag on the next
/// loop iteration.
void BackoffSleep() { poll(nullptr, 0, kPollIntervalMs); }

/// poll() for readability, re-arming on EINTR and backing off through the
/// poll interval on transient failures (kernel memory pressure). Returns
/// false when `stop` fired or poll failed for real, true when `fd` is
/// readable/at EOF.
bool WaitReadable(int fd, const std::atomic<bool>* stop) {
  int transient_failures = 0;
  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return false;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc;
    const failpoint::Hit fp = UIC_FAILPOINT("serve.net.poll");
    if (fp.action == failpoint::Action::kError) {
      rc = -1;
      errno = fp.error_errno;
    } else {
      failpoint::SleepFor(fp);
      rc = poll(&pfd, 1, stop != nullptr ? kPollIntervalMs : -1);
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOMEM || errno == EAGAIN) {
        if (++transient_failures > kMaxTransientRetries) return false;
        BackoffSleep();
        continue;
      }
      return false;
    }
    if (rc > 0) return true;  // readable, HUP, or error — read() resolves
  }
}

}  // namespace

bool FdLineChannel::ReadLine(std::string* line,
                             const std::atomic<bool>* stop) {
  while (true) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      *line = std::move(buffer_);  // final unterminated line
      buffer_.clear();
      return true;
    }
    if (!WaitReadable(read_fd_, stop)) return false;
    char chunk[4096];
    size_t want = sizeof(chunk);
    ssize_t n;
    const failpoint::Hit fp = UIC_FAILPOINT("serve.net.recv");
    if (fp.action == failpoint::Action::kError) {
      n = -1;
      errno = fp.error_errno;
    } else {
      if (fp.action == failpoint::Action::kShortIo && fp.arg < want) {
        want = fp.arg;  // short read: the loop must reassemble the line
      }
      failpoint::SleepFor(fp);
      n = read(read_fd_, chunk, want);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    UIC_METRIC_COUNTER(bytes_read, "uic_net_bytes_read_total",
                       "Bytes read from line channels.");
    bytes_read.Add(static_cast<uint64_t>(n));
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

bool FdLineChannel::WriteLine(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  return WriteAll(framed);
}

bool FdLineChannel::WriteRaw(const std::string& data) {
  return WriteAll(data);
}

bool FdLineChannel::WriteAll(const std::string& framed) {
  size_t off = 0;
  while (off < framed.size()) {
    size_t want = framed.size() - off;
    ssize_t n;
    const failpoint::Hit fp = UIC_FAILPOINT("serve.net.send");
    if (fp.action == failpoint::Action::kError) {
      n = -1;
      errno = fp.error_errno;
    } else {
      if (fp.action == failpoint::Action::kShortIo && fp.arg < want) {
        want = fp.arg;  // partial write: the loop must finish the frame
      }
      failpoint::SleepFor(fp);
      if (socket_fds_) {
        n = send(write_fd_, framed.data() + off, want, MSG_NOSIGNAL);
      } else {
        n = write(write_fd_, framed.data() + off, want);
      }
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    UIC_METRIC_COUNTER(bytes_written, "uic_net_bytes_written_total",
                       "Bytes written to line channels.");
    bytes_written.Add(static_cast<uint64_t>(n));
    off += static_cast<size_t>(n);
  }
  return true;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void TcpConnection::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    port_ = o.port_;
    o.fd_ = -1;
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

Result<TcpListener> TcpListener::Listen(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    close(fd);
    return Status::IOError(std::string("bind 127.0.0.1:") +
                           std::to_string(port) + ": " + strerror(err));
  }
  if (listen(fd, 16) < 0) {
    const int err = errno;
    close(fd);
    return Status::IOError(std::string("listen: ") + strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    const int err = errno;
    close(fd);
    return Status::IOError(std::string("getsockname: ") + strerror(err));
  }

  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpConnection> TcpListener::Accept(const std::atomic<bool>& stop) {
  while (true) {
    if (!WaitReadable(fd_, &stop)) return TcpConnection();  // stop fired
    int fd;
    const failpoint::Hit fp = UIC_FAILPOINT("serve.net.accept");
    if (fp.action == failpoint::Action::kError) {
      fd = -1;
      errno = fp.error_errno;
    } else {
      failpoint::SleepFor(fp);
      fd = accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;  // next client
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Nothing pending after all (a race, or a nonblocking listener):
        // re-arm through the poll loop after one interval. The old
        // immediate `continue` could busy-spin at 100% CPU when poll kept
        // reporting the listener readable.
        BackoffSleep();
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Accept storm: fd-table or kernel-buffer exhaustion is transient
        // (connections close, pressure passes). Back off and keep the
        // listener alive instead of tearing the daemon down; the stop
        // flag is still observed every interval via WaitReadable.
        BackoffSleep();
        continue;
      }
      return Status::IOError(std::string("accept: ") + strerror(errno));
    }
    UIC_METRIC_COUNTER(accepted, "uic_net_connections_accepted_total",
                       "TCP connections accepted (serve + metrics ports).");
    accepted.Add();
    return TcpConnection(fd);
  }
}

Result<TcpConnection> TcpListener::Connect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                 sizeof(addr)) < 0) {
    if (errno == EINTR) continue;
    const int err = errno;
    close(fd);
    return Status::IOError(std::string("connect 127.0.0.1:") +
                           std::to_string(port) + ": " + strerror(err));
  }
  return TcpConnection(fd);
}

}  // namespace serve
}  // namespace uic
