#include "serve/warm_cache.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace uic {
namespace serve {

WarmLease& WarmLease::operator=(WarmLease&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    entry_id_ = o.entry_id_;
    cache_ = o.cache_;
    hit_ = o.hit_;
    o.pool_ = nullptr;
    o.cache_ = nullptr;
  }
  return *this;
}

void WarmLease::Release() {
  if (pool_ != nullptr) pool_->Release(entry_id_);
  pool_ = nullptr;
  cache_ = nullptr;
}

WarmPool::Entry* WarmPool::FindEntry(size_t id) {
  for (auto& entry : entries_) {
    if (entry->id == id) return entry.get();
  }
  return nullptr;
}

WarmLease WarmPool::Acquire(const WarmKey& key,
                            std::shared_ptr<const Graph> graph) {
  // delay_ms(n) widens the window between two same-key acquirers (and
  // between acquire and a concurrent unload's DropGeneration) so the
  // lease serialization is actually contended under TSan. Before the
  // lock: an injected delay must never be charged to mu_ holders.
  failpoint::SleepFor(UIC_FAILPOINT("serve.warm.acquire"));
  MutexLock lock(mu_);
  while (true) {
    Entry* found = nullptr;
    for (auto& entry : entries_) {
      if (entry->key == key && !entry->dying) {
        found = entry.get();
        break;
      }
    }
    if (found == nullptr) break;
    if (!found->leased) {
      found->leased = true;
      found->last_used = ++tick_;
      ++hits_;
      UIC_METRIC_COUNTER(warm_hits, "uic_serve_warm_hits_total",
                         "Warm-pool acquires that reused a cached entry.");
      warm_hits.Add();
      WarmLease lease;
      lease.pool_ = this;
      lease.entry_id_ = found->id;
      lease.cache_ = found->cache.get();
      lease.hit_ = true;
      return lease;
    }
    // Same-key contention: the cache is single-solver; wait for release.
    // (The entry may be evicted or marked dying while we sleep, so the
    // loop re-scans from scratch.)
    released_.Wait(mu_);
  }

  // Miss: evict the least-recently-used idle entry if at capacity. Leased
  // entries are unevictable, so the pool can transiently exceed the cap
  // by the number of concurrent executors — bounded either way.
  if (entries_.size() >= max_entries_) {
    size_t victim = entries_.size();
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i]->leased) continue;
      if (victim == entries_.size() ||
          entries_[i]->last_used < entries_[victim]->last_used) {
        victim = i;
      }
    }
    if (victim < entries_.size()) {
      RetireEntry(victim);
      ++evictions_;
      UIC_METRIC_COUNTER(warm_evictions, "uic_serve_warm_evictions_total",
                         "Warm-pool entries evicted to make room.");
      warm_evictions.Add();
    }
  }

  auto entry = std::make_unique<Entry>();
  entry->id = next_id_++;
  entry->key = key;
  entry->graph = std::move(graph);
  entry->cache = std::make_unique<RrStreamCache>();
  entry->leased = true;
  entry->last_used = ++tick_;
  ++misses_;
  UIC_METRIC_COUNTER(warm_misses, "uic_serve_warm_misses_total",
                     "Warm-pool acquires that had to build a new entry.");
  warm_misses.Add();
  WarmLease lease;
  lease.pool_ = this;
  lease.entry_id_ = entry->id;
  lease.cache_ = entry->cache.get();
  lease.hit_ = false;
  entries_.push_back(std::move(entry));
  return lease;
}

void WarmPool::RetireEntry(size_t index) {
  retired_sampled_ += entries_[index]->last_stats.sampled_sets;
  retired_served_ += entries_[index]->last_stats.served_sets;
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
}

void WarmPool::Release(size_t entry_id) {
  MutexLock lock(mu_);
  Entry* entry = FindEntry(entry_id);
  if (entry == nullptr) return;  // dropped via DropGeneration while dying
  entry->leased = false;
  if (entry->dying) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i]->id == entry_id) {
        entry->last_stats = entry->cache->stats();
        RetireEntry(i);
        break;
      }
    }
  } else {
    // Com-IC coin pools (pass-prob entries) derive from the solved budget
    // point and rarely repeat; cap them so a long-lived entry's memory
    // tracks reuse, not request count. Safe here: no collection is
    // serving from the cache once its solve released the lease.
    entry->cache->TrimPassProbEntries(4);
    entry->last_stats = entry->cache->stats();
  }
  released_.NotifyAll();
}

void WarmPool::DropGeneration(uint64_t generation) {
  MutexLock lock(mu_);
  for (size_t i = entries_.size(); i > 0; --i) {
    Entry* entry = entries_[i - 1].get();
    if (entry->key.generation != generation) continue;
    if (entry->leased) {
      entry->dying = true;  // dropped by Release
    } else {
      RetireEntry(i - 1);
    }
  }
  released_.NotifyAll();
}

Json WarmPool::Describe() const {
  MutexLock lock(mu_);
  size_t leased = 0;
  uint64_t sampled_sets = retired_sampled_;
  uint64_t served_sets = retired_served_;
  for (const auto& entry : entries_) {
    if (entry->leased) ++leased;
    // last_stats, not cache->stats(): a leased entry's live cache is
    // being mutated by its solve and must not be read here.
    sampled_sets += entry->last_stats.sampled_sets;
    served_sets += entry->last_stats.served_sets;
  }
  Json out = Json::Object();
  out.Set("entries", Json::Int(static_cast<long long>(entries_.size())));
  out.Set("leased", Json::Int(static_cast<long long>(leased)));
  out.Set("hits", Json::Int(static_cast<long long>(hits_)));
  out.Set("misses", Json::Int(static_cast<long long>(misses_)));
  out.Set("evictions", Json::Int(static_cast<long long>(evictions_)));
  out.Set("rr_sets_sampled", Json::Int(static_cast<long long>(sampled_sets)));
  out.Set("rr_sets_served", Json::Int(static_cast<long long>(served_sets)));
  return out;
}

}  // namespace serve
}  // namespace uic
