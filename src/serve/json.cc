#include "serve/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace uic {
namespace serve {

namespace {

constexpr int kMaxDepth = 64;

/// Cursor over the input text with 1-based position reporting.
struct Parser {
  const std::string& text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos));
  }

  Result<Json> ParseValue(int depth);
  Result<Json> ParseString();
  Result<Json> ParseNumber();
  Result<Json> ParseArray(int depth);
  Result<Json> ParseObject(int depth);
  Status ParseLiteral(const char* literal);
};

Status Parser::ParseLiteral(const char* literal) {
  for (const char* c = literal; *c != '\0'; ++c) {
    if (AtEnd() || Peek() != *c) return Error("invalid literal");
    ++pos;
  }
  return Status::OK();
}

/// Append Unicode code point `cp` as UTF-8.
void AppendUtf8(std::string* out, unsigned cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

Result<Json> Parser::ParseString() {
  ++pos;  // opening quote
  std::string out;
  while (true) {
    if (AtEnd()) return Error("unterminated string");
    const char c = text[pos++];
    if (c == '"') return Json::Str(std::move(out));
    if (static_cast<unsigned char>(c) < 0x20) {
      return Error("raw control character in string");
    }
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (AtEnd()) return Error("unterminated escape");
    const char e = text[pos++];
    switch (e) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
          if (AtEnd()) return Error("truncated \\u escape");
          const char h = text[pos++];
          cp <<= 4;
          if (h >= '0' && h <= '9') {
            cp |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            cp |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            cp |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return Error("invalid \\u escape");
          }
        }
        // Surrogate pairs are not needed by the protocol; reject rather
        // than emit invalid UTF-8.
        if (cp >= 0xD800 && cp <= 0xDFFF) {
          return Error("unsupported surrogate in \\u escape");
        }
        AppendUtf8(&out, cp);
        break;
      }
      default:
        return Error("unknown escape");
    }
  }
}

Result<Json> Parser::ParseNumber() {
  const size_t start = pos;
  if (!AtEnd() && Peek() == '-') ++pos;
  while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos;
  if (!AtEnd() && Peek() == '.') {
    ++pos;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos;
  }
  if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
    ++pos;
    if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos;
  }
  const std::string token = text.substr(start, pos - start);
  // Integer-form tokens (no '.' or exponent) are ids, seeds, and budgets:
  // one that cannot fit a long long must fail loudly, not fold to a
  // nearby %.17g double and silently solve a different request.
  if (token.find('.') == std::string::npos &&
      token.find('e') == std::string::npos &&
      token.find('E') == std::string::npos) {
    char* int_end = nullptr;
    errno = 0;
    (void)std::strtoll(token.c_str(), &int_end, 10);
    if (int_end != token.c_str() && *int_end == '\0' && errno == ERANGE) {
      pos = start;
      return Error("integer literal overflows long long");
    }
  }
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || !std::isfinite(v)) {
    pos = start;
    return Error("invalid number");
  }
  return Json::Number(v);
}

Result<Json> Parser::ParseArray(int depth) {
  ++pos;  // '['
  Json out = Json::Array();
  SkipWhitespace();
  if (!AtEnd() && Peek() == ']') {
    ++pos;
    return out;
  }
  while (true) {
    Result<Json> item = ParseValue(depth + 1);
    if (!item.ok()) return item.status();
    out.Append(item.MoveValue());
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated array");
    const char c = text[pos++];
    if (c == ']') return out;
    if (c != ',') {
      --pos;
      return Error("expected ',' or ']'");
    }
  }
}

Result<Json> Parser::ParseObject(int depth) {
  ++pos;  // '{'
  Json out = Json::Object();
  SkipWhitespace();
  if (!AtEnd() && Peek() == '}') {
    ++pos;
    return out;
  }
  while (true) {
    SkipWhitespace();
    if (AtEnd() || Peek() != '"') return Error("expected member name");
    Result<Json> key = ParseString();
    if (!key.ok()) return key.status();
    SkipWhitespace();
    if (AtEnd() || text[pos] != ':') return Error("expected ':'");
    ++pos;
    Result<Json> value = ParseValue(depth + 1);
    if (!value.ok()) return value.status();
    if (out.Find(key.value().AsString()) != nullptr) {
      // Last-wins would silently drop whichever copy the client believed
      // in; a request with two 'seed's gets a bad_request instead.
      return Error("duplicate object key " + JsonEscape(key.value().AsString()));
    }
    out.Set(key.value().AsString(), value.MoveValue());
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated object");
    const char c = text[pos++];
    if (c == '}') return out;
    if (c != ',') {
      --pos;
      return Error("expected ',' or '}'");
    }
  }
}

Result<Json> Parser::ParseValue(int depth) {
  if (depth > kMaxDepth) return Error("nesting too deep");
  SkipWhitespace();
  if (AtEnd()) return Error("unexpected end of input");
  const char c = Peek();
  switch (c) {
    case '{': return ParseObject(depth);
    case '[': return ParseArray(depth);
    case '"': return ParseString();
    case 't': {
      UIC_RETURN_NOT_OK(ParseLiteral("true"));
      return Json::Bool(true);
    }
    case 'f': {
      UIC_RETURN_NOT_OK(ParseLiteral("false"));
      return Json::Bool(false);
    }
    case 'n': {
      UIC_RETURN_NOT_OK(ParseLiteral("null"));
      return Json::Null();
    }
    default:
      if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
        return ParseNumber();
      }
      return Error("unexpected character");
  }
}

void DumpTo(const Json& j, std::string* out);

void DumpObject(const Json& j, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : j.members()) {
    if (!first) out->push_back(',');
    first = false;
    *out += JsonEscape(key);
    out->push_back(':');
    DumpTo(value, out);
  }
  out->push_back('}');
}

void DumpTo(const Json& j, std::string* out) {
  switch (j.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += j.AsBool() ? "true" : "false";
      break;
    case Json::Type::kNumber:
      *out += JsonNumberToString(j.AsDouble());
      break;
    case Json::Type::kString:
      *out += JsonEscape(j.AsString());
      break;
    case Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : j.items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(item, out);
      }
      out->push_back(']');
      break;
    }
    case Json::Type::kObject:
      DumpObject(j, out);
      break;
  }
}

}  // namespace

Json& Json::Set(const std::string& key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  members_.emplace_back(key, std::move(value));
  return members_.back().second;
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  Parser parser{text};
  Result<Json> value = parser.ParseValue(0);
  if (!value.ok()) return value.status();
  parser.SkipWhitespace();
  if (!parser.AtEnd()) return parser.Error("trailing characters");
  return value;
}

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumberToString(double v) {
  // Integral values (every counter, id, and budget in the protocol) print
  // exactly; the %.17g fallback round-trips any double, so bit-identical
  // payloads serialize to identical bytes.
  constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53
  if (std::nearbyint(v) == v && std::fabs(v) < kMaxExactInt) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace serve
}  // namespace uic
