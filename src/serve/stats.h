// Request-level counters for the `stats` verb and per-response `serve`
// accounting. Kept apart from the scheduler/warm-pool counters (which
// describe their own subsystems) so the server has one place that counts
// every request, including the ones rejected before admission.
#pragma once

#include <cstdint>

#include "common/annotations.h"
#include "common/mutex.h"
#include "serve/json.h"

namespace uic {
namespace serve {

/// \brief Thread-safe request/response tallies.
class RequestCounters {
 public:
  void Record(bool ok) {
    MutexLock lock(mu_);
    ++requests_;
    if (ok) {
      ++ok_;
    } else {
      ++errors_;
    }
  }

  void RecordSolve(double solve_ms) {
    MutexLock lock(mu_);
    ++solves_;
    solve_ms_total_ += solve_ms;
  }

  /// {"requests":..,"ok":..,"errors":..,"solves":..[,"solve_ms_total":..]}
  /// — the timing sum only with `include_timing` (goldens pin the rest).
  Json Describe(bool include_timing) const {
    MutexLock lock(mu_);
    Json out = Json::Object();
    out.Set("requests", Json::Int(static_cast<long long>(requests_)));
    out.Set("ok", Json::Int(static_cast<long long>(ok_)));
    out.Set("errors", Json::Int(static_cast<long long>(errors_)));
    out.Set("solves", Json::Int(static_cast<long long>(solves_)));
    if (include_timing) {
      out.Set("solve_ms_total", Json::Number(solve_ms_total_));
    }
    return out;
  }

 private:
  mutable Mutex mu_;
  uint64_t requests_ UIC_GUARDED_BY(mu_) = 0;
  uint64_t ok_ UIC_GUARDED_BY(mu_) = 0;
  uint64_t errors_ UIC_GUARDED_BY(mu_) = 0;
  uint64_t solves_ UIC_GUARDED_BY(mu_) = 0;
  double solve_ms_total_ UIC_GUARDED_BY(mu_) = 0.0;
};

}  // namespace serve
}  // namespace uic
