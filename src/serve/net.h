// Transport for the welfare-query service: line-delimited I/O over file
// descriptors, plus a loopback TCP listener.
//
// This is the ONLY file (with net.cc) that may touch raw socket syscalls
// — uic_lint rule UIC-L008 bans socket/connect/accept/send/recv outside
// src/serve/net* so every byte on the wire goes through one audited
// place. Two properties the rest of the server relies on:
//
//  * Interruptibility: reads poll with a short timeout and observe an
//    optional stop flag, so a SIGTERM-initiated drain wakes a blocked
//    reader within ~100 ms without SA_RESTART games or thread signals.
//  * EINTR/partial-I/O correctness: every read/write loops on EINTR and
//    short counts; socket writes use MSG_NOSIGNAL so a vanished client
//    yields an error return instead of SIGPIPE.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace uic {
namespace serve {

/// \brief Newline-delimited message channel over a (read fd, write fd)
/// pair — stdin/stdout in pipe mode, the same socket twice in TCP mode.
/// Does not own the descriptors.
class FdLineChannel {
 public:
  /// `socket_fds`: the descriptors are sockets (write with MSG_NOSIGNAL).
  FdLineChannel(int read_fd, int write_fd, bool socket_fds = false)
      : read_fd_(read_fd), write_fd_(write_fd), socket_fds_(socket_fds) {}

  /// Read the next line into `*line` (newline stripped). Returns false on
  /// EOF, on a read error, or — checked roughly every 100 ms — when
  /// `*stop` becomes true. A final unterminated line is delivered before
  /// EOF is reported.
  bool ReadLine(std::string* line, const std::atomic<bool>* stop = nullptr);

  /// Write `line` plus '\n', looping over partial writes. False on error
  /// (e.g. the peer is gone).
  bool WriteLine(const std::string& line);

  /// Write `data` exactly as given (no framing) — the metrics HTTP
  /// responder's path, which needs CRLF headers rather than line framing.
  bool WriteRaw(const std::string& data);

 private:
  bool WriteAll(const std::string& data);

  int read_fd_;
  int write_fd_;
  bool socket_fds_;
  std::string buffer_;  ///< bytes read past the last returned line
  bool eof_ = false;
};

/// \brief An accepted TCP connection (owns the fd; move-only).
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  TcpConnection(TcpConnection&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  TcpConnection& operator=(TcpConnection&& o) noexcept;
  ~TcpConnection() { Close(); }

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// \brief Loopback (127.0.0.1) TCP listener. Owns the listening fd.
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(TcpListener&& o) noexcept : fd_(o.fd_), port_(o.port_) {
    o.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& o) noexcept;
  ~TcpListener() { Close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind and listen on 127.0.0.1:`port` (0 = kernel-assigned; read the
  /// result back from port()).
  [[nodiscard]] static Result<TcpListener> Listen(uint16_t port);

  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Accept one connection, polling so `stop` is observed within ~100 ms.
  /// Returns an invalid connection (valid() == false) on stop — that is
  /// the normal shutdown path, not an error — and a Status only on a real
  /// accept failure.
  [[nodiscard]] Result<TcpConnection> Accept(const std::atomic<bool>& stop);

  /// Connect to 127.0.0.1:`port` — the test-client side.
  [[nodiscard]] static Result<TcpConnection> Connect(uint16_t port);

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace serve
}  // namespace uic
