// Shared experiment-runner plumbing for the bench binaries: run a named
// allocation algorithm, evaluate its expected welfare under UIC, and
// collect (welfare, time, RR sets) rows.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/bundle_grd.h"
#include "diffusion/uic_model.h"

namespace uic {

/// \brief One (algorithm, budget point) measurement.
struct SuiteRow {
  std::string algorithm;
  std::string setting;     ///< e.g. "k=30" or "total=500"
  double welfare = 0.0;
  double welfare_stderr = 0.0;
  double seconds = 0.0;
  size_t num_rr_sets = 0;
};

/// \brief Evaluate an allocation's expected welfare and fill a row.
inline SuiteRow EvaluateRow(const std::string& algorithm,
                            const std::string& setting, const Graph& graph,
                            const AllocationResult& result,
                            const ItemParams& params, size_t mc,
                            uint64_t eval_seed, unsigned workers = 0) {
  SuiteRow row;
  row.algorithm = algorithm;
  row.setting = setting;
  const WelfareEstimate est =
      EstimateWelfare(graph, result.allocation, params, mc, eval_seed,
                      workers);
  row.welfare = est.welfare;
  row.welfare_stderr = est.stderr_;
  row.seconds = result.seconds;
  row.num_rr_sets = result.num_rr_sets;
  return row;
}

}  // namespace uic
