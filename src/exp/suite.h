// Shared experiment-runner plumbing for the bench binaries: run a
// registered solver on a WelfareProblem, evaluate its expected welfare
// under UIC, and collect (welfare, time, RR sets) rows.
#pragma once

#include <memory>
#include <string>

#include "common/check.h"
#include "diffusion/uic_model.h"
#include "solver/registry.h"

namespace uic {

/// \brief One (algorithm, budget point) measurement.
struct SuiteRow {
  std::string algorithm;
  std::string setting;     ///< e.g. "k=30" or "total=500"
  double welfare = 0.0;
  double welfare_std_error = 0.0;
  double seconds = 0.0;
  size_t num_rr_sets = 0;
};

/// \brief Evaluate an allocation's expected welfare and fill a row.
inline SuiteRow EvaluateRow(const std::string& algorithm,
                            const std::string& setting, const Graph& graph,
                            const AllocationResult& result,
                            const ItemParams& params, size_t mc,
                            uint64_t eval_seed, unsigned workers = 0) {
  SuiteRow row;
  row.algorithm = algorithm;
  row.setting = setting;
  const WelfareEstimate est =
      EstimateWelfare(graph, result.allocation, params, mc, eval_seed,
                      workers);
  row.welfare = est.welfare;
  row.welfare_std_error = est.std_error;
  row.seconds = result.seconds;
  row.num_rr_sets = result.num_rr_sets;
  return row;
}

/// \brief Run the registered solver `algorithm` on `problem`.
///
/// Forwards any registry or validation failure as a Status; use MustSolve
/// in bench binaries where a malformed setup should abort loudly.
[[nodiscard]] inline Result<AllocationResult> RunSolver(const std::string& algorithm,
                                          const WelfareProblem& problem,
                                          const SolverOptions& options = {}) {
  Result<std::unique_ptr<Solver>> solver =
      SolverRegistry::CreateOrError(algorithm, options);
  if (!solver.ok()) return solver.status();
  return solver.value()->Solve(problem);
}

/// \brief RunSolver that aborts with the status message on any failure —
/// the bench binaries prefer a loud crash over a silently skipped series.
inline AllocationResult MustSolve(const std::string& algorithm,
                                  const WelfareProblem& problem,
                                  const SolverOptions& options = {}) {
  Result<AllocationResult> result = RunSolver(algorithm, problem, options);
  UIC_CHECK_MSG(result.ok(), "solver '%s' failed: %s", algorithm.c_str(),
                result.status().ToString().c_str());
  return result.MoveValue();
}

}  // namespace uic
