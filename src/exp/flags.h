// Minimal command-line flag parsing for the bench binaries.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

namespace uic {

/// \brief Parses "--name value" pairs from argv.
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  double GetDouble(const std::string& name, double def) const {
    const char* v = Find(name);
    return v ? std::atof(v) : def;
  }

  long GetInt(const std::string& name, long def) const {
    const char* v = Find(name);
    return v ? std::atol(v) : def;
  }

  bool GetBool(const std::string& name, bool def = false) const {
    for (int i = 1; i < argc_; ++i) {
      if (std::string(argv_[i]) == "--" + name) return true;
    }
    return def;
  }

 private:
  const char* Find(const std::string& name) const {
    const std::string flag = "--" + name;
    for (int i = 1; i + 1 < argc_; ++i) {
      if (flag == argv_[i]) return argv_[i + 1];
    }
    return nullptr;
  }

  int argc_;
  char** argv_;
};

}  // namespace uic
