// Minimal command-line flag parsing for the bench binaries.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.h"

namespace uic {

/// \brief Parses "--name value" pairs from argv.
///
/// Malformed or out-of-range numeric values abort with a message naming the
/// offending flag instead of silently parsing to 0 (the `atol`/`atof`
/// behaviour this class originally had).
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  double GetDouble(const std::string& name, double def) const {
    const char* v = Find(name);
    if (!v) return def;
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    UIC_CHECK_MSG(end != v && *end == '\0', "flag --%s: '%s' is not a number",
                  name.c_str(), v);
    // ERANGE with ±HUGE_VAL is overflow; ERANGE on underflow still returns a
    // usable (sub)normal value, so accept it.
    UIC_CHECK_MSG(errno != ERANGE || (parsed != HUGE_VAL && parsed != -HUGE_VAL),
                  "flag --%s: '%s' is out of double range", name.c_str(), v);
    return parsed;
  }

  long GetInt(const std::string& name, long def) const {
    const char* v = Find(name);
    if (!v) return def;
    errno = 0;
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    UIC_CHECK_MSG(end != v && *end == '\0',
                  "flag --%s: '%s' is not an integer", name.c_str(), v);
    UIC_CHECK_MSG(errno != ERANGE, "flag --%s: '%s' is out of long range",
                  name.c_str(), v);
    return parsed;
  }

  std::string GetString(const std::string& name,
                        const std::string& def = "") const {
    const char* v = Find(name);
    return v ? std::string(v) : def;
  }

  bool GetBool(const std::string& name, bool def = false) const {
    for (int i = 1; i < argc_; ++i) {
      if (std::string(argv_[i]) == "--" + name) return true;
    }
    return def;
  }

 private:
  /// Accepts both "--name value" and "--name=value".
  const char* Find(const std::string& name) const {
    const std::string flag = "--" + name;
    const std::string flag_eq = flag + "=";
    for (int i = 1; i < argc_; ++i) {
      if (flag == argv_[i]) {
        UIC_CHECK_MSG(i + 1 < argc_, "flag --%s expects a value",
                      name.c_str());
        return argv_[i + 1];
      }
      if (std::strncmp(argv_[i], flag_eq.c_str(), flag_eq.size()) == 0) {
        return argv_[i] + flag_eq.size();
      }
    }
    return nullptr;
  }

  int argc_;
  char** argv_;
};

}  // namespace uic
