#include "exp/networks.h"

#include <algorithm>

#include "graph/generators.h"

namespace uic {

namespace {

NodeId Scaled(NodeId base, double scale) {
  const double n = static_cast<double>(base) * scale;
  return std::max<NodeId>(64, static_cast<NodeId>(n));
}

}  // namespace

Graph MakeFlixsterLike(uint64_t seed, double scale) {
  Graph g = GeneratePreferentialAttachment(Scaled(7600, scale),
                                           /*out_per_node=*/5,
                                           /*undirected=*/true, seed);
  g.ApplyWeightedCascade();
  return g;
}

Graph MakeDoubanBookLike(uint64_t seed, double scale) {
  Graph g = GeneratePreferentialAttachment(Scaled(23300, scale),
                                           /*out_per_node=*/5,
                                           /*undirected=*/false, seed);
  g.ApplyWeightedCascade();
  return g;
}

Graph MakeDoubanMovieLike(uint64_t seed, double scale) {
  Graph g = GeneratePreferentialAttachment(Scaled(34900, scale),
                                           /*out_per_node=*/6,
                                           /*undirected=*/false, seed);
  g.ApplyWeightedCascade();
  return g;
}

Graph MakeTwitterLike(uint64_t seed, double scale) {
  Graph g = GeneratePreferentialAttachment(Scaled(40000, scale),
                                           /*out_per_node=*/22,
                                           /*undirected=*/false, seed);
  g.ApplyWeightedCascade();
  return g;
}

Graph MakeOrkutLike(uint64_t seed, double scale) {
  Graph g = GeneratePreferentialAttachment(Scaled(30000, scale),
                                           /*out_per_node=*/20,
                                           /*undirected=*/true, seed);
  g.ApplyWeightedCascade();
  return g;
}

std::vector<NetworkInfo> DescribeAllNetworks(uint64_t seed, double scale) {
  std::vector<NetworkInfo> infos;
  {
    Graph g = MakeFlixsterLike(seed, scale);
    infos.push_back({"Flixster", false, 7600, 71700, g.num_nodes(),
                     g.num_edges()});
  }
  {
    Graph g = MakeDoubanBookLike(seed, scale);
    infos.push_back({"Douban-Book", true, 23300, 141000, g.num_nodes(),
                     g.num_edges()});
  }
  {
    Graph g = MakeDoubanMovieLike(seed, scale);
    infos.push_back({"Douban-Movie", true, 34900, 274000, g.num_nodes(),
                     g.num_edges()});
  }
  {
    Graph g = MakeTwitterLike(seed, scale);
    infos.push_back({"Twitter", true, 41700000, 1470000000, g.num_nodes(),
                     g.num_edges()});
  }
  {
    Graph g = MakeOrkutLike(seed, scale);
    infos.push_back({"Orkut", false, 3070000, 234000000, g.num_nodes(),
                     g.num_edges()});
  }
  return infos;
}

}  // namespace uic
