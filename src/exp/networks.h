// Stand-ins for the paper's five evaluation networks (Table 2).
//
// The crawled datasets (Flixster, Douban-Book, Douban-Movie, Twitter,
// Orkut) are not redistributable offline; we substitute synthetic
// preferential-attachment graphs with matching directedness and average
// degree, scaled to laptop size for the two giant networks (see DESIGN.md
// §2). Every constructor applies the paper's default weighted-cascade edge
// probabilities p(u,v) = 1/din(v); callers can re-weight afterwards.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace uic {

/// \brief Named network description for experiment tables.
struct NetworkInfo {
  std::string name;
  bool directed = true;
  NodeId paper_nodes = 0;    ///< size in the paper
  size_t paper_edges = 0;
  NodeId built_nodes = 0;    ///< size of our stand-in
  size_t built_edges = 0;
};

/// Flixster: undirected, 7.6K nodes, avg degree 9.4 (full size).
Graph MakeFlixsterLike(uint64_t seed, double scale = 1.0);

/// Douban-Book: directed, 23.3K nodes, avg degree 6.5 (full size).
Graph MakeDoubanBookLike(uint64_t seed, double scale = 1.0);

/// Douban-Movie: directed, 34.9K nodes, avg degree 7.9 (full size).
Graph MakeDoubanMovieLike(uint64_t seed, double scale = 1.0);

/// Twitter: directed, 41.7M nodes in the paper — built at `scale` times
/// a 40K-node stand-in with elevated average degree (~30).
Graph MakeTwitterLike(uint64_t seed, double scale = 1.0);

/// Orkut: undirected, 3.07M nodes in the paper — built at `scale` times a
/// 30K-node dense stand-in (~40 avg degree).
Graph MakeOrkutLike(uint64_t seed, double scale = 1.0);

/// Table-2 style descriptors for all five stand-ins (builds them).
std::vector<NetworkInfo> DescribeAllNetworks(uint64_t seed, double scale);

}  // namespace uic
