// The paper's utility configurations (Tables 3–5).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "items/params.h"

namespace uic {

/// \brief Two-item configurations of Table 3.
///
/// Configurations 1/2 share the same Param (both items individually
/// break-even, positive synergy); 3/4 share a Param where i2 alone has
/// negative deterministic utility. The uniform/non-uniform distinction is
/// a *budget* choice handled by the benches.
ItemParams MakeTwoItemConfig12();
ItemParams MakeTwoItemConfig34();

/// \brief Multi-item configurations of Table 4.
///
/// Config 5 — additive: every item has deterministic utility 1, no
/// synergy. Config 6/7 — "cone": a single core item is necessary for
/// positive utility (6: core has the max budget; 7: the min; the caller
/// passes which item index is the core). Config 8 — level-wise random
/// supermodular utility lattice (Eq. 13).
ItemParams MakeAdditiveConfig5(ItemId num_items);
ItemParams MakeConeConfig67(ItemId num_items, ItemId core_item);
ItemParams MakeLevelwiseConfig8(ItemId num_items, uint64_t seed);

/// \brief The real (eBay-learned) PlayStation configuration of Table 5.
///
/// Items: 0 = PlayStation 4 console (ps), 1 = controller (c),
/// 2..4 = games (g1..g3). Prices from Craigslist/Facebook (C$260, 20,
/// 5, 5, 5); values are the paper's published learned values with the
/// unpublished masks completed monotonically (see DESIGN.md); per-item
/// noise variances are least-squares fitted to the published per-itemset
/// variances (per-item additive noise cannot reproduce them exactly).
ItemParams MakeRealPlaystationParams();

/// Human-readable names of the real PlayStation items.
const std::vector<std::string>& RealPlaystationItemNames();

}  // namespace uic
