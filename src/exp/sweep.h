// The sweep engine: one (network, utility configuration) pair evaluated
// over an ordered list of budget points and a list of algorithms, with the
// RR pools grown warm across points (§6's budget-sweep methodology —
// Figs. 4–9 and Tables 2–6 all have this shape).
//
// A `SweepRunner` executes a `SweepSpec` by solving every (algorithm,
// budget point) cell through the solver registry. For the RR-based solvers
// it threads one persistent `RrStreamCache` through every Solve via the
// `SolverOptions::rr_options.stream_cache` hook, so consecutive budget
// points extend shared sample streams instead of regenerating their pools
// from scratch.
//
// Determinism contract: a warm-swept cell is bit-identical (allocation,
// ranking, objective, pool sizes) to running the same solver cold on that
// budget point with the same SolverOptions. This holds because RR pool
// content is a pure function of (graph, sampling options, seed) — see
// rr_collection.h — and the cache merely replays those streams. The report
// therefore separates `num_rr_sets` (pool sets the solver consumed, the
// paper's memory proxy) from `rr_sets_sampled` (sets actually drawn from
// scratch for that cell — the sweep's savings are visible as the gap
// between the two).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "rrset/rr_stream_cache.h"
#include "solver/problem.h"

namespace uic {

/// \brief Declarative description of a sweep.
struct SweepSpec {
  /// The network. Not owned; must outlive the runner.
  const Graph* graph = nullptr;

  /// Utility configuration; unset skips welfare evaluation (and restricts
  /// `algorithms` to the utility-oblivious solvers).
  std::optional<ItemParams> params;

  DiffusionModel model = DiffusionModel::kIndependentCascade;

  /// Registry names, e.g. {"bundle-grd", "item-disj"}.
  std::vector<std::string> algorithms;

  /// Ordered budget points; each entry is a full per-item budget vector.
  /// Monotonically growing points maximize warm reuse, but any order is
  /// valid (reuse degrades gracefully; results never change).
  std::vector<std::vector<uint32_t>> budget_points;

  /// Base solver options applied to every cell. The sweep fixes one
  /// (seed, eps, ell) across all points — that is what makes the points
  /// share sample streams. `options.rr_options.stream_cache` is
  /// overwritten by the runner.
  SolverOptions options;

  /// Monte-Carlo simulations for welfare evaluation per cell (0 = skip;
  /// also skipped when `params` is unset).
  size_t eval_simulations = 400;
  uint64_t eval_seed = 999;

  /// When false, the runner clears the cache before every cell, so each
  /// cell samples cold — useful to measure the warm/cold gap with
  /// identical instrumentation (results are identical either way).
  bool warm = true;

  /// Optional cooperative-cancel flag (typically set from a SIGINT/SIGTERM
  /// handler). Checked between cells: once true, the runner stops before
  /// starting the next cell and returns the partial report with
  /// `SweepReport::interrupted` set — completed rows are untouched, so a
  /// driver can still flush them. Not owned; may be null.
  const std::atomic<bool>* cancel = nullptr;
};

/// \brief One (algorithm, budget point) measurement.
struct SweepRow {
  std::string algorithm;
  std::vector<uint32_t> budgets;
  std::string setting;  ///< "b=10,10" style label

  double welfare = 0.0;
  double welfare_std_error = 0.0;
  size_t rr_sets_sampled = 0;  ///< sets drawn from scratch for this cell

  /// Full solver output (the allocation the bit-identity contract is
  /// stated over); the CSV/JSON serializations flatten the fields below.
  AllocationResult result;

  /// Solver wall-clock (excludes evaluation).
  double seconds() const { return result.seconds; }
  /// Pool sets the solver consumed (the paper's memory proxy).
  size_t num_rr_sets() const { return result.num_rr_sets; }
  /// Solver-reported objective (BDHS), else 0.
  double objective() const { return result.objective; }
};

/// \brief All rows of a sweep plus aggregate reuse accounting.
struct SweepReport {
  std::vector<SweepRow> rows;
  size_t total_rr_sets = 0;      ///< Σ num_rr_sets over rows
  size_t total_rr_sampled = 0;   ///< distinct sets sampled over the sweep
  bool warm = true;
  /// True when `SweepSpec::cancel` fired: `rows` covers only the cells
  /// completed before the interrupt.
  bool interrupted = false;

  /// One line per row: algorithm,budgets,welfare,std_error,seconds,
  /// num_rr_sets,rr_sets_sampled,objective. `include_timing=false`
  /// replaces the seconds column with "-" (deterministic output for
  /// golden tests).
  std::string ToCsv(bool include_timing = true) const;
  std::string ToJson(bool include_timing = true) const;
};

/// \brief Executes a SweepSpec over one shared warm RR pool.
class SweepRunner {
 public:
  explicit SweepRunner(const SweepSpec& spec) : spec_(spec) {}

  /// Run every (algorithm, budget point) cell, algorithms outer, budget
  /// points inner, all sharing this runner's stream cache. Fails fast on
  /// an invalid spec or the first failing Solve.
  [[nodiscard]] Result<SweepReport> Run();

  /// The cache the runner threads through every Solve (exposed so callers
  /// can chain additional sweeps over the same network, or inspect
  /// `stats()`).
  RrStreamCache& cache() { return cache_; }

 private:
  SweepSpec spec_;
  RrStreamCache cache_;
};

/// \brief Parse a comma-separated list of non-negative uint32 budgets
/// (e.g. "20,40"); rejects empty entries, non-digits, and overflow with
/// InvalidArgument. Shared by the sweep grammar and the uic_run
/// `--budgets` flag.
[[nodiscard]] Result<std::vector<uint32_t>> ParseBudgetList(const std::string& list);

/// \brief Parse the CLI budget-sweep syntax into budget points.
///
///   "10,30,50"      — uniform points: every item gets k, for each k listed
///   "10:50:20"      — uniform range lo:hi:step (inclusive of hi)
///   "70,30;70,110"  — explicit per-item vectors, ';'-separated
///
/// `num_items` sizes the uniform forms (explicit vectors must all have the
/// same length, which overrides `num_items`).
[[nodiscard]] Result<std::vector<std::vector<uint32_t>>> ParseSweepPoints(
    const std::string& spec, size_t num_items);

}  // namespace uic
