#include "exp/sweep.h"

#include <cstdio>
#include <cstdlib>

#include "diffusion/uic_model.h"
#include "obs/trace.h"
#include "solver/registry.h"

namespace uic {

namespace {

std::string BudgetLabel(const std::vector<uint32_t>& budgets) {
  std::string label = "b=";
  for (size_t i = 0; i < budgets.size(); ++i) {
    if (i) label += ',';
    label += std::to_string(budgets[i]);
  }
  return label;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

Result<uint32_t> ParseBudgetToken(const std::string& token) {
  if (token.empty()) {
    return Status::InvalidArgument("sweep: empty budget entry");
  }
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("sweep: '" + token +
                                     "' is not a non-negative integer");
    }
  }
  const unsigned long long parsed = std::strtoull(token.c_str(), nullptr, 10);
  if (parsed > UINT32_MAX) {
    return Status::InvalidArgument("sweep: '" + token +
                                   "' is out of budget range");
  }
  return static_cast<uint32_t>(parsed);
}

}  // namespace

Result<std::vector<uint32_t>> ParseBudgetList(const std::string& list) {
  std::vector<uint32_t> budgets;
  std::string token;
  for (size_t i = 0; i <= list.size(); ++i) {
    if (i == list.size() || list[i] == ',') {
      Result<uint32_t> b = ParseBudgetToken(token);
      if (!b.ok()) return b.status();
      budgets.push_back(b.value());
      token.clear();
    } else {
      token += list[i];
    }
  }
  return budgets;
}

Result<std::vector<std::vector<uint32_t>>> ParseSweepPoints(
    const std::string& spec, size_t num_items) {
  if (spec.empty()) {
    return Status::InvalidArgument("sweep: empty budget spec");
  }
  if (num_items == 0) {
    return Status::InvalidArgument("sweep: num_items must be positive");
  }
  std::vector<std::vector<uint32_t>> points;

  if (spec.find(';') != std::string::npos) {
    // Explicit per-item vectors.
    std::string part;
    for (size_t i = 0; i <= spec.size(); ++i) {
      if (i == spec.size() || spec[i] == ';') {
        if (part.empty()) {  // tolerate a trailing ';'
          part.clear();
          continue;
        }
        Result<std::vector<uint32_t>> v = ParseBudgetList(part);
        if (!v.ok()) return v.status();
        if (!points.empty() && v.value().size() != points.front().size()) {
          return Status::InvalidArgument(
              "sweep: budget vectors have inconsistent lengths in '" + spec +
              "'");
        }
        points.push_back(v.MoveValue());
        part.clear();
      } else {
        part += spec[i];
      }
    }
    if (points.empty()) {
      return Status::InvalidArgument("sweep: no budget points in '" + spec +
                                     "'");
    }
    return points;
  }

  if (spec.find(':') != std::string::npos) {
    // lo:hi:step range of uniform points.
    std::vector<std::string> parts(1);
    for (char c : spec) {
      if (c == ':') {
        parts.emplace_back();
      } else {
        parts.back() += c;
      }
    }
    if (parts.size() != 3) {
      return Status::InvalidArgument("sweep: range must be lo:hi:step, got '" +
                                     spec + "'");
    }
    Result<uint32_t> lo = ParseBudgetToken(parts[0]);
    Result<uint32_t> hi = ParseBudgetToken(parts[1]);
    Result<uint32_t> step = ParseBudgetToken(parts[2]);
    if (!lo.ok()) return lo.status();
    if (!hi.ok()) return hi.status();
    if (!step.ok()) return step.status();
    if (step.value() == 0) {
      return Status::InvalidArgument("sweep: range step must be positive");
    }
    if (lo.value() > hi.value()) {
      return Status::InvalidArgument("sweep: range lo exceeds hi in '" + spec +
                                     "'");
    }
    // A typo like 0:4000000000:1 must be a clean error, not an OOM while
    // materializing billions of points before any solver validation runs.
    constexpr uint64_t kMaxRangePoints = 100000;
    const uint64_t count =
        (static_cast<uint64_t>(hi.value()) - lo.value()) / step.value() + 1;
    if (count > kMaxRangePoints) {
      return Status::InvalidArgument(
          "sweep: range '" + spec + "' expands to " + std::to_string(count) +
          " points (limit " + std::to_string(kMaxRangePoints) + ")");
    }
    for (uint64_t k = lo.value(); k <= hi.value(); k += step.value()) {
      points.emplace_back(num_items, static_cast<uint32_t>(k));
    }
    return points;
  }

  // Comma list of uniform points.
  Result<std::vector<uint32_t>> ks = ParseBudgetList(spec);
  if (!ks.ok()) return ks.status();
  for (uint32_t k : ks.value()) {
    points.emplace_back(num_items, k);
  }
  return points;
}

Result<SweepReport> SweepRunner::Run() {
  if (spec_.graph == nullptr) {
    return Status::InvalidArgument("sweep: spec.graph is null");
  }
  if (spec_.algorithms.empty()) {
    return Status::InvalidArgument("sweep: no algorithms");
  }
  if (spec_.budget_points.empty()) {
    return Status::InvalidArgument("sweep: no budget points");
  }

  SweepReport report;
  report.warm = spec_.warm;

  SolverOptions options = spec_.options;
  options.rr_options.stream_cache = &cache_;

  WelfareProblem problem;
  problem.graph = spec_.graph;
  problem.params = spec_.params;
  problem.model = spec_.model;

  for (const std::string& algorithm : spec_.algorithms) {
    Result<std::unique_ptr<Solver>> solver =
        SolverRegistry::CreateOrError(algorithm, options);
    if (!solver.ok()) return solver.status();

    for (const std::vector<uint32_t>& budgets : spec_.budget_points) {
      if (spec_.cancel != nullptr &&
          spec_.cancel->load(std::memory_order_relaxed)) {
        report.interrupted = true;
        return report;  // partial: completed rows only
      }
      if (!spec_.warm) cache_.Clear();  // cold mode: every cell resamples
      // Com-IC coin pools rarely repeat across points (coins derive from
      // the point's i2 seeds); keep only the newest few so a long sweep's
      // memory doesn't grow linearly in dead coin entries. Safe here: no
      // collection is alive between cells.
      cache_.TrimPassProbEntries(4);
      problem.budgets = budgets;

      obs::TraceSpan cell_span("sweep.cell");
      cell_span.SetAttr("budget", budgets.empty() ? 0 : budgets[0]);
      const size_t sampled_before = cache_.stats().sampled_sets;
      Result<AllocationResult> solved = solver.value()->Solve(problem);
      if (!solved.ok()) {
        return Status(solved.status().code(),
                      "sweep cell (" + algorithm + ", " +
                          BudgetLabel(budgets) + "): " +
                          solved.status().message());
      }

      SweepRow row;
      row.algorithm = algorithm;
      row.budgets = budgets;
      row.setting = BudgetLabel(budgets);
      row.result = solved.MoveValue();
      row.rr_sets_sampled = cache_.stats().sampled_sets - sampled_before;

      if (spec_.params.has_value() && spec_.eval_simulations > 0) {
        const WelfareEstimate est = EstimateWelfare(
            *spec_.graph, row.result.allocation, *spec_.params,
            spec_.eval_simulations, spec_.eval_seed, spec_.options.workers);
        row.welfare = est.welfare;
        row.welfare_std_error = est.std_error;
      }

      report.total_rr_sets += row.num_rr_sets();
      report.total_rr_sampled += row.rr_sets_sampled;
      report.rows.push_back(std::move(row));
    }
  }
  return report;
}

std::string SweepReport::ToCsv(bool include_timing) const {
  std::string csv =
      "algorithm,budgets,welfare,welfare_std_error,seconds,num_rr_sets,"
      "rr_sets_sampled,objective\n";
  for (const SweepRow& row : rows) {
    std::string budgets;
    for (size_t i = 0; i < row.budgets.size(); ++i) {
      if (i) budgets += '|';
      budgets += std::to_string(row.budgets[i]);
    }
    csv += row.algorithm + "," + budgets + "," + FormatDouble(row.welfare) +
           "," + FormatDouble(row.welfare_std_error) + "," +
           (include_timing ? FormatDouble(row.seconds()) : std::string("-")) +
           "," + std::to_string(row.num_rr_sets()) + "," +
           std::to_string(row.rr_sets_sampled) + "," +
           FormatDouble(row.objective()) + "\n";
  }
  return csv;
}

std::string SweepReport::ToJson(bool include_timing) const {
  std::string json = "{\n  \"warm\": ";
  json += warm ? "true" : "false";
  json += ",\n  \"total_rr_sets\": " + std::to_string(total_rr_sets);
  json += ",\n  \"total_rr_sampled\": " + std::to_string(total_rr_sampled);
  json += ",\n  \"rows\": [\n";
  for (size_t r = 0; r < rows.size(); ++r) {
    const SweepRow& row = rows[r];
    json += "    {\"algorithm\": \"" + row.algorithm + "\", \"budgets\": [";
    for (size_t i = 0; i < row.budgets.size(); ++i) {
      if (i) json += ',';
      json += std::to_string(row.budgets[i]);
    }
    json += "], \"welfare\": " + FormatDouble(row.welfare);
    json += ", \"welfare_std_error\": " + FormatDouble(row.welfare_std_error);
    json += ", \"seconds\": ";
    json += include_timing ? FormatDouble(row.seconds()) : std::string("null");
    json += ", \"num_rr_sets\": " + std::to_string(row.num_rr_sets());
    json += ", \"rr_sets_sampled\": " + std::to_string(row.rr_sets_sampled);
    json += ", \"objective\": " + FormatDouble(row.objective()) + "}";
    json += r + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace uic
