#include "exp/configs.h"

#include <cmath>

#include "common/check.h"
#include "items/supermodular_generators.h"

namespace uic {

ItemParams MakeTwoItemConfig12() {
  // Table 3, rows 1-2: P = (3, 4); V(i1)=3, V(i2)=4, V({i1,i2})=8;
  // noise N(0,1) per item. Deterministic utilities: 0, 0, +1.
  const std::vector<double> prices = {3.0, 4.0};
  const std::vector<double> utilities = {0.0, 0.0, 0.0, 1.0};
  auto value = MakeValueFromUtilities(2, prices, utilities);
  return ItemParams(std::move(value), prices, NoiseModel::IidGaussian(2, 1.0));
}

ItemParams MakeTwoItemConfig34() {
  // Table 3, rows 3-4: P = (3, 4); V(i1)=3, V(i2)=3, V({i1,i2})=8.
  // Deterministic utilities: 0, −1, +1 (GAP: q_{i2|∅} ≈ 0.16,
  // q_{i1|i2} ≈ 0.98, q_{i2|i1} ≈ 0.84).
  const std::vector<double> prices = {3.0, 4.0};
  const std::vector<double> utilities = {0.0, 0.0, -1.0, 1.0};
  auto value = MakeValueFromUtilities(2, prices, utilities);
  return ItemParams(std::move(value), prices, NoiseModel::IidGaussian(2, 1.0));
}

ItemParams MakeAdditiveConfig5(ItemId num_items) {
  // Every item: price 1, value 2, deterministic utility 1; additive.
  std::vector<double> prices(num_items, 1.0);
  std::vector<double> values(num_items, 2.0);
  auto value = std::make_shared<AdditiveValueFunction>(std::move(values));
  return ItemParams(std::move(value), std::move(prices),
                    NoiseModel::IidGaussian(num_items, 1.0));
}

ItemParams MakeConeConfig67(ItemId num_items, ItemId core_item) {
  // Supersets of the core have utility 5 + 2·(extras); all other itemsets
  // have utility −1 per item (§4.3.3.1).
  std::vector<double> prices(num_items, 1.0);
  auto value = MakeConeValue(num_items, core_item, prices,
                             /*core_utility=*/5.0, /*per_extra_utility=*/2.0,
                             /*non_core_utility=*/-1.0);
  return ItemParams(std::move(value), std::move(prices),
                    NoiseModel::IidGaussian(num_items, 1.0));
}

ItemParams MakeLevelwiseConfig8(ItemId num_items, uint64_t seed) {
  // Level-1 values in U[1, 4]; prices chosen so a random subset of items
  // has non-negative level-1 utility; boosts ε ~ U[1, 5] per Eq. 13.
  Rng rng(seed);
  std::vector<double> level1(num_items);
  std::vector<double> prices(num_items);
  for (ItemId i = 0; i < num_items; ++i) {
    level1[i] = rng.NextUniform(1.0, 4.0);
    // Price above or below the item's value with equal probability.
    prices[i] = level1[i] + rng.NextUniform(-1.5, 1.5);
    if (prices[i] < 0.1) prices[i] = 0.1;
  }
  auto value = MakeLevelwiseSupermodularValue(level1, /*boost_lo=*/1.0,
                                              /*boost_hi=*/5.0, seed ^ 0x8);
  return ItemParams(std::move(value), std::move(prices),
                    NoiseModel::IidGaussian(num_items, 1.0));
}

const std::vector<std::string>& RealPlaystationItemNames() {
  static const std::vector<std::string> kNames = {"ps", "c", "g1", "g2",
                                                  "g3"};
  return kNames;
}

ItemParams MakeRealPlaystationParams() {
  // Items: ps=0, c=1, g1=2, g2=3, g3=4. Prices (C$): 260, 20, 5, 5, 5.
  const std::vector<double> prices = {260.0, 20.0, 5.0, 5.0, 5.0};
  const ItemId k = 5;
  const size_t n = size_t{1} << k;
  const ItemSet ps = ItemBit(0), c = ItemBit(1);

  // Published learned values (Table 5), symmetric in the three games:
  //   V(ps)=213, V(ps,c)=220, V(ps,3g)=258, V(ps,c,2g)=292.5,
  //   V(ps,c,3g)=302; any itemset without ps is worthless (value 0).
  // Unpublished masks are completed monotonically:
  //   games without c: 213 → 227 → 242 → 258;
  //   games with c:    220 → 250 → 292.5 → 302.
  // This reproduces every sign the paper reports: the only positive
  // deterministic utilities are {ps, c, >=2 games}.
  auto value_with_ps = [](uint32_t games, bool has_c) {
    static const double kNoC[4] = {213.0, 227.0, 242.0, 258.0};
    static const double kWithC[4] = {220.0, 250.0, 292.5, 302.0};
    return has_c ? kWithC[games] : kNoC[games];
  };

  std::vector<double> table(n, 0.0);
  for (ItemSet s = 1; s < n; ++s) {
    if (!IsSubset(ps, s)) continue;  // worthless without the console
    const uint32_t games = Cardinality(s & ~(ps | c));
    table[s] = value_with_ps(games, IsSubset(c, s));
  }
  auto value = std::make_shared<TabularValueFunction>(k, std::move(table));

  // Per-item noise std-devs least-squares fitted to the published
  // per-itemset variances (4, 6, 4, 5, 7): σ²(ps)=2.53, σ²(c)=1.84,
  // σ²(g)=0.98.
  NoiseModel noise({ItemNoise::Gaussian(std::sqrt(2.53)),
                    ItemNoise::Gaussian(std::sqrt(1.84)),
                    ItemNoise::Gaussian(std::sqrt(0.98)),
                    ItemNoise::Gaussian(std::sqrt(0.98)),
                    ItemNoise::Gaussian(std::sqrt(0.98))});
  return ItemParams(std::move(value), prices, std::move(noise));
}

}  // namespace uic
