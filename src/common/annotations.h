// Clang thread-safety annotation macros (no-ops on other compilers).
//
// The concurrency contract of the mutex-holding classes (`ThreadPool`,
// `SolverRegistry`'s factory map, …) is expressed with these macros so
// clang's `-Wthread-safety` analysis proves the locking discipline at
// compile time; the CI `static-analysis` job builds with
// `-Werror=thread-safety`, so an unguarded access to a `UIC_GUARDED_BY`
// member is a build break, not a latent race for TSan to (maybe) catch.
//
// Raw `std::mutex` from libstdc++ carries no capability attributes, so
// the analysis cannot see through it — annotated code must use the
// `uic::Mutex` / `uic::MutexLock` / `uic::CondVar` wrappers from
// common/mutex.h instead. (`uic_lint` rule UIC-L007 enforces this for
// new code.)
//
// Macro names follow the clang documentation's canonical spellings
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with a UIC_
// prefix.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define UIC_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define UIC_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a class to be a lockable capability (use on mutex wrappers).
#define UIC_CAPABILITY(x) UIC_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define UIC_SCOPED_CAPABILITY UIC_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Declares that a data member is protected by the given capability:
/// reads require the capability held shared or exclusive, writes
/// exclusive.
#define UIC_GUARDED_BY(x) UIC_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// As UIC_GUARDED_BY, but for the data pointed to by a pointer member.
#define UIC_PT_GUARDED_BY(x) UIC_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares that the calling thread must hold the given capability(ies)
/// exclusively before calling the annotated function.
#define UIC_REQUIRES(...) \
  UIC_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Declares that the function acquires the capability and holds it on
/// return.
#define UIC_ACQUIRE(...) \
  UIC_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Declares that the function releases the capability.
#define UIC_RELEASE(...) \
  UIC_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Declares that the function tries to acquire the capability and
/// returns `ret` on success.
#define UIC_TRY_ACQUIRE(ret, ...) \
  UIC_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

/// Declares that the caller must NOT hold the capability (deadlock
/// prevention for non-reentrant locks).
#define UIC_EXCLUDES(...) \
  UIC_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the given
/// capability (for accessor methods exposing a member mutex).
#define UIC_RETURN_CAPABILITY(x) \
  UIC_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Asserts at runtime that the capability is held (analysis trusts it).
#define UIC_ASSERT_CAPABILITY(x) \
  UIC_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Escape hatch: disables analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the invariant.
#define UIC_NO_THREAD_SAFETY_ANALYSIS \
  UIC_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
