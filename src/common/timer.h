// Wall-clock timing helper for experiment drivers.
#pragma once

#include <chrono>

namespace uic {

/// \brief Simple wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace uic
