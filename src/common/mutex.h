// Annotated mutex / condition-variable wrappers.
//
// libstdc++'s `std::mutex` carries no clang capability attributes, so
// `-Wthread-safety` cannot analyze code that locks it directly. These
// zero-overhead wrappers re-export the standard primitives with the
// annotations from common/annotations.h attached; every mutex-holding
// class in the library uses them (enforced by `uic_lint` rule UIC-L007),
// which is what lets the CI static-analysis job prove the locking
// discipline with `-Werror=thread-safety`.
//
//   class Registry {
//     Mutex mu_;
//     std::map<...> factories_ UIC_GUARDED_BY(mu_);
//     void Register(...) { MutexLock lock(mu_); factories_[...] = ...; }
//   };
//
// `CondVar` pairs with `Mutex` the way `std::condition_variable` pairs
// with `std::unique_lock`: `Wait` takes the held `Mutex` (annotated
// UIC_REQUIRES, and the analysis treats the capability as held
// throughout, matching the invariant that `Wait` returns with the lock
// re-acquired).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace uic {

/// \brief `std::mutex` with clang capability annotations.
class UIC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() UIC_ACQUIRE() { mu_.lock(); }
  void Unlock() UIC_RELEASE() { mu_.unlock(); }
  bool TryLock() UIC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock over `Mutex` (the annotated `std::lock_guard`).
class UIC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) UIC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() UIC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable bound to `Mutex`.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires `mu` before
  /// returning. `mu` must be held by the caller.
  void Wait(Mutex& mu) UIC_REQUIRES(mu) {
    // Adopt the already-held native mutex; release() keeps it held on
    // return so ownership stays with the caller (and with the analysis).
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// As `Wait`, returning once `pred()` is true.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) UIC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  /// As `Wait`, but gives up after `timeout` (measured on the steady
  /// clock). Returns false on timeout, true when notified — either way
  /// the lock is re-acquired, so callers re-check their predicate. The
  /// serve admission queue uses this for per-request deadlines.
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout) UIC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool notified =
        cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace uic
