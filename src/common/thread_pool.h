// A persistent worker-thread pool with deterministic chunked ParallelFor.
//
// The RR engine's hot loop (`RrCollection::GenerateUntil`) runs dozens to
// hundreds of growth rounds per solver invocation; forking and joining
// `std::thread`s every round costs more than small rounds themselves. A
// `ThreadPool` creates its workers once and reuses them for every
// subsequent `ParallelFor`, so steady state performs no thread
// construction at all.
//
// Determinism contract: `ParallelFor(n, workers, fn)` partitions [0, n)
// into `workers` contiguous chunks — the *logical* worker count, chosen by
// the caller — and invokes `fn(worker, begin, end)` once per non-empty
// chunk. Which pool thread executes a chunk is unspecified, but the
// (worker, begin, end) triples are a pure function of (n, workers) and are
// byte-for-byte the partition the legacy fork-join `ParallelFor` used.
// Callers that derive one RNG stream per logical worker therefore get
// results that depend only on the logical worker count, never on the
// pool's physical thread count or on scheduling.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace uic {

/// Number of workers to use by default (bounded to keep experiment variance
/// and scheduling noise low on shared machines).
inline unsigned DefaultWorkers() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return hw > 16 ? 16 : hw;
}

/// \brief Fixed-size pool of persistent worker threads.
///
/// Thread-safe: concurrent `ParallelFor` calls from different threads are
/// queued and executed in submission order. A `ParallelFor` issued from
/// inside a pool task runs its chunks inline on the calling thread (same
/// partition, sequential), so nested parallelism cannot deadlock.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = `DefaultWorkers()`).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// \brief Run `fn(worker, begin, end)` over a partition of [0, n) into
  /// `workers` contiguous chunks; blocks until every chunk has finished.
  /// The calling thread participates in chunk execution.
  void ParallelFor(size_t n, unsigned workers,
                   const std::function<void(unsigned, size_t, size_t)>& fn);

  /// \brief Process-wide shared pool (lazily created with
  /// `DefaultWorkers()` threads). All library components parallelize
  /// through this instance by default, so one solver invocation — PRIMA's
  /// phase loop, its regeneration pass, nested IMM calls, Monte-Carlo
  /// evaluation — reuses a single set of threads.
  static ThreadPool& Shared();

  /// \brief Size the shared pool before its first use (the `--workers`
  /// plumbing of uic_run/uic_served). Returns false — leaving the
  /// existing pool untouched — when `Shared()` has already been called;
  /// 0 restores the `DefaultWorkers()` default. Physical pool size never
  /// affects results (the determinism contract above), only throughput.
  static bool ConfigureShared(unsigned threads);

 private:
  /// One ParallelFor invocation: chunks are claimed via an atomic cursor
  /// by however many threads (pool workers + the caller) pick it up.
  struct Call {
    const std::function<void(unsigned, size_t, size_t)>* fn = nullptr;
    size_t n = 0;
    size_t chunk = 0;
    unsigned total_chunks = 0;
    std::atomic<unsigned> next{0};
    std::atomic<unsigned> done{0};
    /// Pairs the final done increment with the submitter's wait so the
    /// completion notification cannot be missed; guards nothing itself
    /// (progress state is the two atomics above).
    Mutex m;
    CondVar done_cv;
  };

  /// Claim and execute chunks of `call` until none remain.
  static void RunChunks(Call& call);
  void WorkerLoop();

  /// Worker threads; written only during construction, joined in the
  /// destructor after `stop_` is published.
  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar work_cv_;
  std::deque<std::shared_ptr<Call>> queue_ UIC_GUARDED_BY(mu_);
  bool stop_ UIC_GUARDED_BY(mu_) = false;
};

/// \brief RAII handle on one long-running thread, joined on destruction.
///
/// `ParallelFor` expresses fork-join chunk work, not threads that outlive
/// a call — the serve layer's request executors and connection readers,
/// and tests that drive the library from concurrent callers, need the
/// latter. This wrapper keeps raw `std::thread` construction confined to
/// common/thread_pool.* (lint rule UIC-L004): everything else obtains
/// concurrency through `ThreadPool` or `BackgroundThread`.
class BackgroundThread {
 public:
  explicit BackgroundThread(std::function<void()> fn);
  ~BackgroundThread() { Join(); }

  BackgroundThread(const BackgroundThread&) = delete;
  BackgroundThread& operator=(const BackgroundThread&) = delete;

  /// Block until the thread function returns. Idempotent.
  void Join();

 private:
  std::thread thread_;
};

}  // namespace uic
