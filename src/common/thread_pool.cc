#include "common/thread_pool.h"

namespace uic {

namespace {

/// True while the current thread is executing a pool task; used to run
/// nested ParallelFor calls inline instead of deadlocking on the queue.
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = DefaultWorkers();
  threads_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::RunChunks(Call& call) {
  while (true) {
    const unsigned c = call.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= call.total_chunks) return;
    const size_t begin = static_cast<size_t>(c) * call.chunk;
    size_t end = begin + call.chunk;
    if (end > call.n) end = call.n;
    (*call.fn)(c, begin, end);
    if (call.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        call.total_chunks) {
      // Lock pairs with the waiter's predicate check to avoid a missed
      // wakeup between its check and its wait.
      MutexLock lock(call.m);
      call.done_cv.NotifyAll();
    }
  }
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  while (true) {
    std::shared_ptr<Call> call;
    {
      MutexLock lock(mu_);
      // Manual predicate loop (not the CondVar::Wait(pred) overload):
      // direct member accesses keep the guarded reads visible to the
      // thread-safety analysis, which does not look through lambdas.
      while (!stop_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      call = queue_.front();
      if (call->next.load(std::memory_order_relaxed) >= call->total_chunks) {
        // Fully claimed (possibly still running on other threads): retire
        // it from the queue and look for the next call.
        queue_.pop_front();
        continue;
      }
    }
    RunChunks(*call);
  }
}

void ThreadPool::ParallelFor(
    size_t n, unsigned workers,
    const std::function<void(unsigned, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (workers > n) workers = static_cast<unsigned>(n);
  if (workers <= 1 || n < 2) {
    fn(0, 0, n);
    return;
  }
  const size_t chunk = (n + workers - 1) / workers;
  const unsigned total_chunks = static_cast<unsigned>((n + chunk - 1) / chunk);
  if (t_in_pool_worker || threads_.empty()) {
    // Nested call (or poolless instance): same partition, run inline.
    for (unsigned w = 0; w < total_chunks; ++w) {
      const size_t begin = static_cast<size_t>(w) * chunk;
      const size_t end = begin + chunk < n ? begin + chunk : n;
      fn(w, begin, end);
    }
    return;
  }
  auto call = std::make_shared<Call>();
  call->fn = &fn;
  call->n = n;
  call->chunk = chunk;
  call->total_chunks = total_chunks;
  {
    MutexLock lock(mu_);
    queue_.push_back(call);
  }
  work_cv_.NotifyAll();
  RunChunks(*call);  // the caller is one more worker
  {
    MutexLock lock(call->m);
    while (call->done.load(std::memory_order_acquire) < call->total_chunks) {
      call->done_cv.Wait(call->m);
    }
  }
  {
    // Retire the call if no worker got to it (e.g. the caller ran every
    // chunk before any pool thread woke up).
    MutexLock lock(mu_);
    if (!queue_.empty() && queue_.front() == call) queue_.pop_front();
  }
}

namespace {

/// Pending size for the shared pool (0 = DefaultWorkers()) and whether it
/// has been materialized; plain atomics because ConfigureShared races with
/// nothing in practice (it is called from main() before serving starts).
std::atomic<unsigned> g_shared_threads{0};
std::atomic<bool> g_shared_created{false};

}  // namespace

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(g_shared_threads.load(std::memory_order_relaxed));
  g_shared_created.store(true, std::memory_order_relaxed);
  return pool;
}

bool ThreadPool::ConfigureShared(unsigned threads) {
  if (g_shared_created.load(std::memory_order_relaxed)) return false;
  g_shared_threads.store(threads, std::memory_order_relaxed);
  // A concurrent first Shared() call may have constructed the pool between
  // the check and the store; report whether the request took effect.
  return !g_shared_created.load(std::memory_order_relaxed);
}

BackgroundThread::BackgroundThread(std::function<void()> fn)
    : thread_(std::move(fn)) {}

void BackgroundThread::Join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace uic
