// Deterministic fault injection (failpoints) for the serve/IO stack.
//
// A failpoint is a named site in first-party library code where a test —
// or an operator chasing a production bug — can inject a failure that the
// surrounding error handling must absorb: a short read, a failed send, an
// accept storm, a truncated file, a scheduling delay. Sites are spelled
//
//   const failpoint::Hit fp = UIC_FAILPOINT("serve.net.send");
//   if (fp.action == failpoint::Action::kError) { errno = fp.error_errno; ... }
//
// and cost ONE relaxed atomic load when no failpoint is armed (the
// "zero-overhead-when-off" contract the golden transcripts pin): the
// registry lookup happens only while at least one policy is active.
//
// Activation:
//   * environment: UIC_FAILPOINTS="serve.net.send=error(EPIPE):once,
//     core.serialization.load_graph=short_io(64)" — parsed once at
//     process start; a malformed spec aborts (fail fast, never silently
//     run a different experiment than the one asked for).
//   * programmatic: failpoint::Set("name", "policy") /
//     failpoint::Configure("name=policy,...") / failpoint::ClearAll().
//   * protocol: the `set_failpoints` serve verb, gated behind the
//     daemon's --testing flag (serve/server.h).
//
// Policy grammar (one action, optionally one trigger):
//
//   policy  := action [ ':' trigger ]
//   action  := 'off' | 'error(' errno ')' | 'short_io(' n ')'
//            | 'delay_ms(' n ')'
//   trigger := 'once' | 'every(' k ')'        (default: every evaluation)
//   errno   := symbolic name (EIO, EPIPE, EAGAIN, ...) or decimal
//
// Determinism: whether a site fires is a pure function of its per-site
// evaluation counter — seeded to zero when the policy is Set and
// incremented once per evaluation — never of wall clock or any RNG, so a
// failure schedule replays exactly under the seed-only contract ('once'
// fires on evaluation 1; 'every(k)' on evaluations k, 2k, ...). The
// kDelayMs action perturbs timing only, never results.
//
// Site roster (grep UIC_FAILPOINT for the authoritative list):
//   serve.net.poll / recv / send / accept    transport faults (serve/net.cc)
//   serve.scheduler.admit                    forced shed / queue delay
//   serve.solve.admitted                     fault or delay an admitted solve
//   serve.session.add_graph / get_graph      registry faults / unload races
//   serve.warm.acquire                       widen warm-lease races
//   core.serialization.load_graph / load_params   truncated or failing files
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace uic {
namespace failpoint {

/// \brief What an armed failpoint injects at its site.
enum class Action {
  kOff,      ///< not armed (or trigger did not fire this evaluation)
  kError,    ///< fail with `error_errno`
  kShortIo,  ///< cap this I/O operation at `arg` bytes
  kDelayMs,  ///< sleep `arg` milliseconds (timing only, never results)
};

/// \brief One evaluation's outcome at a failpoint site.
struct Hit {
  Action action = Action::kOff;
  int error_errno = 0;  ///< kError: the errno to inject
  uint64_t arg = 0;     ///< kShortIo: byte cap; kDelayMs: milliseconds

  bool fired() const { return action != Action::kOff; }
};

namespace internal {
/// Count of armed (non-off) policies; the macro's fast-path gate.
extern std::atomic<uint64_t> g_armed;
/// Slow path: registry lookup + trigger bookkeeping. Only called armed.
Hit EvaluateSlow(const char* name);
}  // namespace internal

/// True when any failpoint policy is armed (one relaxed load).
inline bool AnyActive() {
  return internal::g_armed.load(std::memory_order_relaxed) != 0;
}

/// Evaluate the site `name`: kOff unless a policy is armed for it AND its
/// trigger fires on this evaluation.
inline Hit Evaluate(const char* name) {
  if (!AnyActive()) return Hit{};
  return internal::EvaluateSlow(name);
}

/// Arm `name` with `policy` (grammar above). `"off"` disarms and forgets
/// the site. Re-setting a site resets its evaluation counter.
[[nodiscard]] Status Set(const std::string& name, const std::string& policy);

/// Apply a comma-separated `name=policy` list (the UIC_FAILPOINTS format).
[[nodiscard]] Status Configure(const std::string& spec);

/// Disarm everything (tests call this in SetUp/TearDown).
void ClearAll();

/// The armed sites as sorted (name, policy-string) pairs.
std::vector<std::pair<std::string, std::string>> List();

/// Honor a kDelayMs hit (sleep); no-op for every other action.
void SleepFor(const Hit& hit);

}  // namespace failpoint
}  // namespace uic

/// The one sanctioned site spelling. Lint rule UIC-L010 keeps sites inside
/// src/ library code: tests inject through Set/Configure, never by adding
/// sites of their own.
#define UIC_FAILPOINT(name) (::uic::failpoint::Evaluate(name))
