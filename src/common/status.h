// Status / Result error-handling primitives (RocksDB-style, exception-free).
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace uic {

/// \brief Lightweight status code for fallible operations.
///
/// Core library functions that can fail return `Status` (or `Result<T>`)
/// instead of throwing. Hot paths (simulation, sampling) are designed so
/// that failure is impossible after construction-time validation and
/// therefore return plain values.
///
/// The class is `[[nodiscard]]`: every function returning a `Status` by
/// value warns (errors under UIC_WERROR) if the caller drops the result,
/// so an I/O or validation failure cannot be silently ignored. A caller
/// that has genuinely decided not to act on a failure must say so
/// explicitly with `status.IgnoreError()`.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kOutOfRange,
    kFailedPrecondition,
    kInternal,
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Explicitly discard this status. The one sanctioned way to drop a
  /// `Status` return value (e.g. best-effort cleanup on an already-failing
  /// path); grep-able, unlike a `(void)` cast.
  void IgnoreError() const {}

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

 private:
  static std::string CodeName(Code c) {
    switch (c) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kIOError: return "IOError";
      case Code::kOutOfRange: return "OutOfRange";
      case Code::kFailedPrecondition: return "FailedPrecondition";
      case Code::kInternal: return "Internal";
      case Code::kDeadlineExceeded: return "DeadlineExceeded";
    }
    return "Unknown";
  }

  Code code_;
  std::string msg_;
};

/// \brief Value-or-status result type. `[[nodiscard]]` like `Status`: a
/// dropped `Result` is either a dropped error or a dropped value, and
/// both are bugs.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(implicit)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(implicit)
  }

  bool ok() const { return std::holds_alternative<T>(value_); }
  const Status& status() const { return std::get<Status>(value_); }
  T& value() { return std::get<T>(value_); }
  const T& value() const { return std::get<T>(value_); }
  T&& MoveValue() { return std::move(std::get<T>(value_)); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace uic

#define UIC_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::uic::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (0)
