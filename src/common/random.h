// Deterministic, splittable pseudo-random number generation.
//
// All randomized components of the library take an explicit 64-bit seed so
// that every experiment is reproducible. `SplitMix64` is used to derive
// independent streams (e.g. one per worker thread) from a master seed;
// `Xoshiro256pp` is the workhorse generator (fast, 2^256 period).
#pragma once

#include <cmath>
#include <cstdint>

namespace uic {

/// Number of logical RNG streams every randomized component partitions
/// its work onto (RR sampling's stream grid in rrset/rr_collection.h and
/// the Monte-Carlo estimators' ParallelForStreams in common/parallel.h).
/// FIXED — never derived from the worker count — so results are
/// deterministic in the seed alone; chosen to match the default
/// thread-pool ceiling (DefaultWorkers() caps at 16, thread_pool.h) so
/// full hardware parallelism stays reachable. One constant on purpose:
/// the two consumers must agree with each other and with that ceiling.
inline constexpr unsigned kRngStreams = 16;

/// \brief SplitMix64: used for seeding and stream splitting.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256++ generator with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
    have_gauss_ = false;
  }

  /// Derive an independent stream for worker `index`.
  static Rng Split(uint64_t master_seed, uint64_t index) {
    SplitMix64 sm(master_seed ^ (0xa0761d6478bd642fULL * (index + 1)));
    return Rng(sm.Next());
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) (Lemire's method).
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>(NextU64()) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        m = static_cast<__uint128_t>(NextU64()) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Number of consecutive failures before the next success of a
  /// Bernoulli(p) trial sequence — the geometric gap skip-sampling
  /// kernels jump by (graph/sampling_plan.h). Takes the precomputed
  /// `log1p(-p)` (must be < 0, i.e. p > 0) and consumes exactly one
  /// uniform draw:
  ///   gap = floor(log1p(-U) / log1p(-p)),  U = NextDouble().
  /// Identity: gap == 0 ⟺ U < p, so one geometric draw makes the same
  /// accept decision from the same draw as one NextBernoulli(p) trial.
  /// p >= 1 (log1p_neg_p == -inf) yields gap 0 every time.
  uint64_t NextGeometric(double log1p_neg_p) {
    const double g = std::log1p(-NextDouble()) / log1p_neg_p;
    // Clamp before the cast (double → uint64 is UB at >= 2^64); any value
    // past 2^62 means "no success within any real adjacency" anyway. The
    // negated comparison also routes NaN (contract violation: p <= 0)
    // into the clamp instead of UB.
    if (!(g < 0x1p62)) return uint64_t{1} << 62;
    return static_cast<uint64_t>(g);
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double NextGaussian() {
    if (have_gauss_) {
      have_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * mul;
    have_gauss_ = true;
    return u * mul;
  }

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool have_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace uic
