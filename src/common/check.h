// Invariant-checking macros. UIC_CHECK is always on (cheap comparisons on
// cold paths); UIC_DCHECK compiles away in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace uic::internal {
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}
}  // namespace uic::internal

#define UIC_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) {                                             \
      ::uic::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                          \
  } while (0)

#define UIC_CHECK_GE(a, b) UIC_CHECK((a) >= (b))
#define UIC_CHECK_GT(a, b) UIC_CHECK((a) > (b))
#define UIC_CHECK_LE(a, b) UIC_CHECK((a) <= (b))
#define UIC_CHECK_LT(a, b) UIC_CHECK((a) < (b))
#define UIC_CHECK_EQ(a, b) UIC_CHECK((a) == (b))
#define UIC_CHECK_NE(a, b) UIC_CHECK((a) != (b))

#ifdef NDEBUG
#define UIC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define UIC_DCHECK(cond) UIC_CHECK(cond)
#endif
