// Invariant-checking macros. UIC_CHECK is always on (cheap comparisons on
// cold paths); UIC_DCHECK compiles away in release builds.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace uic::internal {
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

[[noreturn]] __attribute__((format(printf, 3, 4))) inline void FailWith(
    const char* file, int line, const char* fmt, ...) {
  std::fprintf(stderr, "CHECK failed at %s:%d: ", file, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::abort();
}
}  // namespace uic::internal

#define UIC_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) {                                             \
      ::uic::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                          \
  } while (0)

// Always-on check with a printf-style message describing the failure, for
// call sites (flag parsing, file loading) where the raw expression text would
// not tell the user what to fix.
#define UIC_CHECK_MSG(cond, ...)                                \
  do {                                                          \
    if (!(cond)) {                                              \
      ::uic::internal::FailWith(__FILE__, __LINE__, __VA_ARGS__); \
    }                                                           \
  } while (0)

#define UIC_CHECK_GE(a, b) UIC_CHECK((a) >= (b))
#define UIC_CHECK_GT(a, b) UIC_CHECK((a) > (b))
#define UIC_CHECK_LE(a, b) UIC_CHECK((a) <= (b))
#define UIC_CHECK_LT(a, b) UIC_CHECK((a) < (b))
#define UIC_CHECK_EQ(a, b) UIC_CHECK((a) == (b))
#define UIC_CHECK_NE(a, b) UIC_CHECK((a) != (b))

#ifdef NDEBUG
#define UIC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define UIC_DCHECK(cond) UIC_CHECK(cond)
#endif
