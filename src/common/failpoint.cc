#include "common/failpoint.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

#include "common/mutex.h"

namespace uic {
namespace failpoint {

namespace internal {
std::atomic<uint64_t> g_armed{0};
}  // namespace internal

namespace {

enum class Trigger { kAlways, kOnce, kEvery };

/// One armed site: the parsed policy plus its evaluation counter. The
/// counter is the only state a trigger consults — determinism lives here.
struct SitePolicy {
  Action action = Action::kOff;
  int error_errno = 0;
  uint64_t arg = 0;
  Trigger trigger = Trigger::kAlways;
  uint64_t every_k = 1;
  uint64_t evals = 0;  ///< evaluations since Set (the seeded counter)
  std::string spec;    ///< the policy string as given, for List()
};

class Registry {
 public:
  static Registry& Instance() {
    static Registry* instance = new Registry();
    return *instance;
  }

  Status Set(const std::string& name, const SitePolicy& policy, bool off) {
    if (name.empty()) return Status::InvalidArgument("empty failpoint name");
    MutexLock lock(mu_);
    auto it = sites_.find(name);
    if (off) {
      if (it != sites_.end()) {
        sites_.erase(it);
        internal::g_armed.fetch_sub(1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
    if (it == sites_.end()) {
      sites_.emplace(name, policy);
      internal::g_armed.fetch_add(1, std::memory_order_relaxed);
    } else {
      it->second = policy;  // re-set: fresh policy, counter back to zero
    }
    return Status::OK();
  }

  Hit Evaluate(const char* name) {
    MutexLock lock(mu_);
    auto it = sites_.find(name);
    if (it == sites_.end()) return Hit{};
    SitePolicy& site = it->second;
    ++site.evals;
    switch (site.trigger) {
      case Trigger::kAlways:
        break;
      case Trigger::kOnce:
        if (site.evals != 1) return Hit{};
        break;
      case Trigger::kEvery:
        if (site.evals % site.every_k != 0) return Hit{};
        break;
    }
    Hit hit;
    hit.action = site.action;
    hit.error_errno = site.error_errno;
    hit.arg = site.arg;
    return hit;
  }

  void ClearAll() {
    MutexLock lock(mu_);
    internal::g_armed.fetch_sub(sites_.size(), std::memory_order_relaxed);
    sites_.clear();
  }

  std::vector<std::pair<std::string, std::string>> List() {
    MutexLock lock(mu_);
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(sites_.size());
    for (const auto& entry : sites_) {
      out.emplace_back(entry.first, entry.second.spec);
    }
    return out;  // std::map iteration: already name-sorted
  }

 private:
  Registry() = default;

  Mutex mu_;
  std::map<std::string, SitePolicy> sites_ UIC_GUARDED_BY(mu_);
};

/// Symbolic errno names accepted inside error(...); decimal also works.
int ErrnoByName(const std::string& name) {
  static const std::map<std::string, int>* const kNames =
      new std::map<std::string, int>{
          {"EPERM", EPERM},           {"ENOENT", ENOENT},
          {"EINTR", EINTR},           {"EIO", EIO},
          {"EBADF", EBADF},           {"EAGAIN", EAGAIN},
          {"EWOULDBLOCK", EWOULDBLOCK}, {"ENOMEM", ENOMEM},
          {"EACCES", EACCES},         {"EFAULT", EFAULT},
          {"EINVAL", EINVAL},         {"EMFILE", EMFILE},
          {"ENFILE", ENFILE},         {"ENOBUFS", ENOBUFS},
          {"ENOSPC", ENOSPC},         {"EPIPE", EPIPE},
          {"ECONNABORTED", ECONNABORTED}, {"ECONNRESET", ECONNRESET},
          {"ECONNREFUSED", ECONNREFUSED}, {"ETIMEDOUT", ETIMEDOUT},
      };
  auto it = kNames->find(name);
  return it == kNames->end() ? -1 : it->second;
}

/// Parse `tok` as `word` or `word(arg)`; on the latter, *arg gets the
/// parenthesized text. Returns false on mismatched parentheses.
bool SplitCall(const std::string& tok, std::string* word, std::string* arg) {
  const size_t open = tok.find('(');
  if (open == std::string::npos) {
    if (tok.find(')') != std::string::npos) return false;
    *word = tok;
    arg->clear();
    return true;
  }
  if (tok.empty() || tok.back() != ')') return false;
  *word = tok.substr(0, open);
  *arg = tok.substr(open + 1, tok.size() - open - 2);
  return !word->empty();
}

bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

Status ParsePolicy(const std::string& policy, SitePolicy* out, bool* off) {
  *off = false;
  out->spec = policy;
  // Split "action[:trigger]".
  const size_t colon = policy.find(':');
  const std::string action_tok = policy.substr(0, colon);
  const std::string trigger_tok =
      colon == std::string::npos ? "" : policy.substr(colon + 1);

  std::string word, arg;
  if (!SplitCall(action_tok, &word, &arg)) {
    return Status::InvalidArgument("malformed failpoint action: '" +
                                   action_tok + "'");
  }
  if (word == "off") {
    if (!arg.empty() || !trigger_tok.empty()) {
      return Status::InvalidArgument("'off' takes no argument or trigger");
    }
    *off = true;
    return Status::OK();
  } else if (word == "error") {
    out->action = Action::kError;
    uint64_t num = 0;
    if (ParseUint(arg, &num) && num > 0) {
      out->error_errno = static_cast<int>(num);
    } else {
      const int e = ErrnoByName(arg);
      if (e < 0) {
        return Status::InvalidArgument("unknown errno '" + arg +
                                       "' in failpoint policy");
      }
      out->error_errno = e;
    }
  } else if (word == "short_io") {
    uint64_t num = 0;
    if (!ParseUint(arg, &num) || num == 0) {
      return Status::InvalidArgument("short_io needs a positive byte count");
    }
    out->action = Action::kShortIo;
    out->arg = num;
  } else if (word == "delay_ms") {
    uint64_t num = 0;
    if (!ParseUint(arg, &num)) {
      return Status::InvalidArgument("delay_ms needs a millisecond count");
    }
    out->action = Action::kDelayMs;
    out->arg = num;
  } else {
    return Status::InvalidArgument("unknown failpoint action '" + word + "'");
  }

  if (trigger_tok.empty()) {
    out->trigger = Trigger::kAlways;
    return Status::OK();
  }
  if (!SplitCall(trigger_tok, &word, &arg)) {
    return Status::InvalidArgument("malformed failpoint trigger: '" +
                                   trigger_tok + "'");
  }
  if (word == "once") {
    if (!arg.empty()) return Status::InvalidArgument("'once' takes no argument");
    out->trigger = Trigger::kOnce;
  } else if (word == "every") {
    uint64_t num = 0;
    if (!ParseUint(arg, &num) || num == 0) {
      return Status::InvalidArgument("every(k) needs a positive k");
    }
    out->trigger = Trigger::kEvery;
    out->every_k = num;
  } else {
    return Status::InvalidArgument("unknown failpoint trigger '" + word + "'");
  }
  return Status::OK();
}

/// Loads UIC_FAILPOINTS before main() so env activation needs no opt-in
/// from the binary. A malformed spec aborts: silently running a different
/// fault experiment than the one asked for would be worse than crashing.
struct EnvActivation {
  EnvActivation() {
    const char* spec = std::getenv("UIC_FAILPOINTS");
    if (spec == nullptr || *spec == '\0') return;
    const Status status = Configure(spec);
    if (!status.ok()) {
      std::fprintf(stderr, "UIC_FAILPOINTS: %s\n", status.message().c_str());
      std::abort();
    }
  }
};
const EnvActivation g_env_activation;

}  // namespace

namespace internal {
Hit EvaluateSlow(const char* name) {
  return Registry::Instance().Evaluate(name);
}
}  // namespace internal

Status Set(const std::string& name, const std::string& policy) {
  SitePolicy parsed;
  bool off = false;
  Status status = ParsePolicy(policy, &parsed, &off);
  if (!status.ok()) return status;
  return Registry::Instance().Set(name, parsed, off);
}

Status Configure(const std::string& spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    if (!item.empty()) {
      const size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument("expected name=policy, got '" + item +
                                       "'");
      }
      UIC_RETURN_NOT_OK(Set(item.substr(0, eq), item.substr(eq + 1)));
    }
    if (end == spec.size()) break;
    start = end + 1;
  }
  return Status::OK();
}

void ClearAll() { Registry::Instance().ClearAll(); }

std::vector<std::pair<std::string, std::string>> List() {
  return Registry::Instance().List();
}

void SleepFor(const Hit& hit) {
  if (hit.action != Action::kDelayMs || hit.arg == 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(hit.arg));
}

}  // namespace failpoint
}  // namespace uic
