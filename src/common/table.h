// ASCII table / CSV emission for experiment drivers. The bench binaries
// print the same rows/series the paper's tables and figures report.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace uic {

/// \brief Column-aligned ASCII table with optional CSV dump.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Format a double with `prec` digits after the decimal point.
  static std::string Num(double v, int prec = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  static std::string Int(long long v) { return std::to_string(v); }

  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> width(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_) {
      for (size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    PrintRow(os, header_, width);
    std::string sep;
    for (size_t c = 0; c < width.size(); ++c) {
      sep += std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) sep += "+";
    }
    os << sep << "\n";
    for (const auto& r : rows_) PrintRow(os, r, width);
  }

  void PrintCsv(std::ostream& os) const {
    os << Join(header_) << "\n";
    for (const auto& r : rows_) os << Join(r) << "\n";
  }

 private:
  static std::string Join(const std::vector<std::string>& cells) {
    std::string out;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) out += ",";
      out += cells[i];
    }
    return out;
  }

  static void PrintRow(std::ostream& os, const std::vector<std::string>& row,
                       const std::vector<size_t>& width) {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << std::setw(static_cast<int>(width[c])) << cell << " ";
      if (c + 1 < width.size()) os << "|";
    }
    os << "\n";
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace uic
