// Deterministic data-parallel helpers.
//
// `ParallelFor` partitions [0, n) into `workers` contiguous chunks and runs
// them on the process-wide persistent `ThreadPool` (see thread_pool.h) —
// no threads are spawned per call. Callers that need randomness derive one
// RNG stream per *logical* worker via Rng::Split, so results are
// reproducible for a fixed worker count regardless of the pool's physical
// thread count.
#pragma once

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"

namespace uic {

/// \brief Run `fn(worker_index, begin, end)` over a partition of [0, n) on
/// the shared thread pool.
inline void ParallelFor(
    size_t n, unsigned workers,
    const std::function<void(unsigned, size_t, size_t)>& fn) {
  ThreadPool::Shared().ParallelFor(n, workers, fn);
}

}  // namespace uic
