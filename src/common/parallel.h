// Deterministic fork-join parallelism helpers.
//
// `ParallelFor` partitions [0, n) into `workers` contiguous chunks, each
// processed on its own thread. Callers that need randomness derive one RNG
// stream per worker via Rng::Split so results are reproducible for a fixed
// worker count.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace uic {

/// Number of workers to use by default (bounded to keep experiment variance
/// and scheduling noise low on shared machines).
inline unsigned DefaultWorkers() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return hw > 16 ? 16 : hw;
}

/// \brief Run `fn(worker_index, begin, end)` over a partition of [0, n).
inline void ParallelFor(
    size_t n, unsigned workers,
    const std::function<void(unsigned, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (workers <= 1 || n < 2) {
    fn(0, 0, n);
    return;
  }
  if (workers > n) workers = static_cast<unsigned>(n);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const size_t chunk = (n + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const size_t begin = static_cast<size_t>(w) * chunk;
    const size_t end = begin + chunk < n ? begin + chunk : n;
    if (begin >= end) break;
    threads.emplace_back([&fn, w, begin, end] { fn(w, begin, end); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace uic
