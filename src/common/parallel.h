// Deterministic data-parallel helpers.
//
// `ParallelFor` partitions [0, n) into `workers` contiguous chunks and runs
// them on the process-wide persistent `ThreadPool` (see thread_pool.h) —
// no threads are spawned per call.
//
// `ParallelForStreams` is the variant every randomized component uses: it
// partitions [0, n) into a FIXED grid of `kRngStreams` contiguous chunks —
// a pure function of n, independent of the worker count — and hands each
// chunk a stable stream index to derive its RNG from (Rng::Split(seed,
// stream)). `workers` only bounds how many chunks execute concurrently, so
// results are deterministic in the seed alone: the same n and seed yield
// bit-identical output at any worker count and any physical thread count.
#pragma once

#include <cstddef>
#include <functional>

#include "common/random.h"
#include "common/thread_pool.h"

namespace uic {

/// \brief Run `fn(worker_index, begin, end)` over a partition of [0, n) on
/// the shared thread pool. The partition depends on `workers`; callers
/// that seed RNGs per worker index get results deterministic in (seed,
/// workers). Prefer `ParallelForStreams` for randomized work.
inline void ParallelFor(
    size_t n, unsigned workers,
    const std::function<void(unsigned, size_t, size_t)>& fn) {
  ThreadPool::Shared().ParallelFor(n, workers, fn);
}

/// \brief Run `fn(stream, begin, end)` over the fixed `kRngStreams`-chunk
/// partition of [0, n), executing at most `workers` chunks concurrently.
///
/// The (stream, begin, end) triples are a pure function of n. Callers
/// accumulate into one slot per stream and reduce serially in stream order
/// (streams < kRngStreams), which makes floating-point reductions
/// bit-identical across worker counts too.
inline void ParallelForStreams(
    size_t n, unsigned workers,
    const std::function<void(unsigned, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (workers == 0) workers = DefaultWorkers();
  const size_t chunk = (n + kRngStreams - 1) / kRngStreams;
  const size_t chunks = (n + chunk - 1) / chunk;
  ThreadPool::Shared().ParallelFor(
      chunks, workers, [&](unsigned, size_t cb, size_t ce) {
        for (size_t c = cb; c < ce; ++c) {
          const size_t begin = c * chunk;
          const size_t end = begin + chunk < n ? begin + chunk : n;
          fn(static_cast<unsigned>(c), begin, end);
        }
      });
}

}  // namespace uic
