#include "comic/comic_model.h"

#include "common/check.h"

namespace uic {

ComIcSimulator::ComIcSimulator(const Graph& graph, const TwoItemGap& gap)
    : graph_(graph),
      gap_(gap),
      node_epoch_(graph.num_nodes(), 0),
      state_(graph.num_nodes(), 0),
      edge_epoch_(graph.num_edges(), 0),
      edge_live_(graph.num_edges(), 0) {}

ComIcOutcome ComIcSimulator::Run(const std::vector<NodeId>& seeds_a,
                                 const std::vector<NodeId>& seeds_b, Rng& rng,
                                 std::vector<uint32_t>* b_adoption_counts) {
  ++epoch_;
  ComIcOutcome outcome;
  frontier_.clear();

  auto touch = [&](NodeId v) {
    if (node_epoch_[v] != epoch_) {
      node_epoch_[v] = epoch_;
      state_[v] = 0;
    }
  };

  // Deliver item `a_item` information to v; returns true if v's adoption
  // state changed (so it must (re)enter the frontier).
  auto inform = [&](NodeId v, bool is_a) -> bool {
    touch(v);
    uint8_t& st = state_[v];
    const uint8_t informed_bit = is_a ? kAInformed : kBInformed;
    const uint8_t adopted_bit = is_a ? kAAdopted : kBAdopted;
    const uint8_t other_adopted = is_a ? kBAdopted : kAAdopted;
    bool changed = false;
    if (!(st & informed_bit)) {
      st |= informed_bit;
      const double q_alone = is_a ? gap_.q1_none : gap_.q2_none;
      const double q_boosted = is_a ? gap_.q1_given2 : gap_.q2_given1;
      const double q = (st & other_adopted) ? q_boosted : q_alone;
      if (rng.NextBernoulli(q)) {
        st |= adopted_bit;
        changed = true;
      }
    }
    if (changed && (st & adopted_bit)) {
      // Reconsideration of the *other* item: v adopting this item may
      // upgrade a previously declined decision on the other item.
      const uint8_t other_informed = is_a ? kBInformed : kAInformed;
      const uint8_t other_adopted_bit = is_a ? kBAdopted : kAAdopted;
      if ((st & other_informed) && !(st & other_adopted_bit)) {
        const double q0 = is_a ? gap_.q2_none : gap_.q1_none;
        const double q1 = is_a ? gap_.q2_given1 : gap_.q1_given2;
        if (q1 > q0 && q0 < 1.0) {
          const double upgrade = (q1 - q0) / (1.0 - q0);
          if (rng.NextBernoulli(upgrade)) st |= other_adopted_bit;
        }
      }
    }
    return changed;
  };

  for (NodeId v : seeds_a) {
    if (inform(v, /*is_a=*/true)) frontier_.push_back(v);
  }
  for (NodeId v : seeds_b) {
    if (inform(v, /*is_a=*/false)) frontier_.push_back(v);
  }

  while (!frontier_.empty()) {
    next_.clear();
    for (NodeId u : frontier_) {
      const uint8_t sent = state_[u] & (kAAdopted | kBAdopted);
      auto nbrs = graph_.OutNeighbors(u);
      auto probs = graph_.OutProbs(u);
      for (size_t k = 0; k < nbrs.size(); ++k) {
        const size_t e = graph_.OutEdgeIndex(u, static_cast<uint32_t>(k));
        if (edge_epoch_[e] != epoch_) {
          edge_epoch_[e] = epoch_;
          edge_live_[e] = rng.NextBernoulli(probs[k]) ? 1 : 0;
        }
        if (!edge_live_[e]) continue;
        const NodeId v = nbrs[k];
        bool changed = false;
        if (sent & kAAdopted) changed |= inform(v, /*is_a=*/true);
        if (sent & kBAdopted) changed |= inform(v, /*is_a=*/false);
        if (changed) next_.push_back(v);
      }
    }
    frontier_.swap(next_);
  }

  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (node_epoch_[v] != epoch_) continue;
    if (state_[v] & kAAdopted) ++outcome.adopted_a;
    if (state_[v] & kBAdopted) {
      ++outcome.adopted_b;
      if (b_adoption_counts) ++(*b_adoption_counts)[v];
    }
  }
  return outcome;
}

}  // namespace uic
