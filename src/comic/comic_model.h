// The two-item Com-IC model of Lu et al. (VLDB'15), reimplemented as the
// substrate for the RR-SIM+ / RR-CIM baselines (§4.3.1.2).
//
// Com-IC attaches a node-level automaton (NLA) to every user: upon being
// informed of item A, the user adopts it with probability q_{A|∅} if it has
// not adopted B, and q_{A|B} if it has (and symmetrically for B). A user
// that declined A under q_{A|∅} *reconsiders* when it later adopts B,
// upgrading its decision with probability (q_{A|B} − q_{A|∅})/(1 − q_{A|∅})
// so the end-to-end adoption probability equals q_{A|B}. In the mutually
// complementary setting q_{X|Y} >= q_{X|∅}.
//
// This reimplementation makes the standard simplifications documented in
// DESIGN.md: information propagates through adopters, edges are tested
// once per diffusion (shared by both items).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"
#include "items/gap.h"

namespace uic {

/// \brief Outcome of one Com-IC diffusion.
struct ComIcOutcome {
  size_t adopted_a = 0;
  size_t adopted_b = 0;
};

/// \brief Reusable forward Com-IC simulator for two items.
class ComIcSimulator {
 public:
  ComIcSimulator(const Graph& graph, const TwoItemGap& gap);

  /// Run one diffusion; optionally count per-node B adoptions into
  /// `b_adoption_counts` (sized num_nodes, incremented by 1 per adoption —
  /// used by RR-CIM to estimate B-adoption marginals).
  ComIcOutcome Run(const std::vector<NodeId>& seeds_a,
                   const std::vector<NodeId>& seeds_b, Rng& rng,
                   std::vector<uint32_t>* b_adoption_counts = nullptr);

 private:
  // Per-node state bits.
  static constexpr uint8_t kAInformed = 1;
  static constexpr uint8_t kAAdopted = 2;
  static constexpr uint8_t kBInformed = 4;
  static constexpr uint8_t kBAdopted = 8;

  const Graph& graph_;
  TwoItemGap gap_;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> node_epoch_;
  std::vector<uint8_t> state_;
  std::vector<uint32_t> edge_epoch_;
  std::vector<uint8_t> edge_live_;
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_;
};

}  // namespace uic
