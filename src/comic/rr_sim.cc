#include "comic/rr_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "comic/comic_model.h"
#include "rrset/imm.h"
#include "rrset/node_selection.h"

namespace uic {

namespace {

/// TIM-style sample requirement: θ = λ_TIM / LB with
/// λ_TIM = (8 + 2ε) n (ℓ log n + log C(n,k) + log 2) / ε².
double LambdaTim(double n, double k, double eps, double ell) {
  return (8.0 + 2.0 * eps) * n *
         (ell * std::log(n) + LogChoose(n, k) + std::log(2.0)) / (eps * eps);
}

/// Shared skeleton of RR-SIM+/RR-CIM once the per-node pass probabilities
/// are fixed: estimate a lower bound on the (adoption-weighted) optimum by
/// IMM-style doubling, then sample θ = λ_TIM/LB sets and greedily select.
AllocationResult SelectWithNodeCoins(const Graph& graph,
                                     const std::vector<float>& pass_prob,
                                     uint32_t budget1,
                                     const std::vector<NodeId>& seeds2,
                                     const ComIcBaselineOptions& options,
                                     uint64_t seed, unsigned workers) {
  AllocationResult result;
  const double n = static_cast<double>(graph.num_nodes());
  const double eps = options.eps;
  const double ell = options.ell;
  const double eps_prime = std::sqrt(2.0) * eps;

  RrOptions rr_options;
  rr_options.node_pass_prob = &pass_prob;
  rr_options.stream_cache = options.stream_cache;
  RrCollection pool(graph, seed, workers, rr_options);

  // Doubling phase to find a lower bound LB on the optimal coverage.
  double lb = 1.0;
  const double i_max = std::log2(n) - 1.0;
  SeedSelection sel;
  for (double i = 1.0; i <= i_max; i += 1.0) {
    const double x = n / std::pow(2.0, i);
    const double theta_i =
        LambdaPrime(n, budget1, eps_prime, ell) / std::max(x, 1.0);
    pool.GenerateUntil(static_cast<size_t>(std::ceil(theta_i)));
    sel = NodeSelection(pool, budget1);
    const double covered = n * sel.CoverageAt(budget1);
    if (covered >= (1.0 + eps_prime) * x) {
      lb = covered / (1.0 + eps_prime);
      break;
    }
  }

  const double theta = LambdaTim(n, budget1, eps, ell) / lb;
  // Final pass on the same engine instance under a fresh seed (the bound
  // requires sets sampled after θ was fixed).
  const size_t doubling_rr_sets = pool.size();
  pool.Reset(seed ^ 0xc1a0u);
  pool.GenerateUntil(
      std::max<size_t>(1, static_cast<size_t>(std::ceil(theta))));
  SeedSelection final_sel = NodeSelection(pool, budget1);

  result.num_rr_sets = doubling_rr_sets + pool.size();
  result.ranking = final_sel.seeds;
  for (size_t r = 0; r < final_sel.seeds.size() && r < budget1; ++r) {
    result.allocation.AddItem(final_sel.seeds[r], 0);
  }
  for (NodeId v : seeds2) result.allocation.AddItem(v, 1);
  return result;
}

}  // namespace

AllocationResult RrSimPlus(const Graph& graph, const TwoItemGap& gap,
                           uint32_t budget1, uint32_t budget2,
                           const ComIcBaselineOptions& options, uint64_t seed,
                           unsigned workers) {
  WallTimer timer;
  // Item i2's seeds by plain IMM (warm-started when a cache is attached).
  RrOptions imm_rr;
  imm_rr.stream_cache = options.stream_cache;
  ImResult imm2 = Imm(graph, budget2, options.eps, options.ell, seed ^ 0xb2u,
                      workers, {}, imm_rr);
  std::vector<NodeId> seeds2(imm2.seeds.begin(),
                             imm2.seeds.begin() +
                                 std::min<size_t>(budget2, imm2.seeds.size()));

  // Node coins: q_{1|∅} everywhere, boosted to q_{1|2} at i2's seeds.
  std::vector<float> pass(graph.num_nodes(),
                          static_cast<float>(gap.q1_none));
  for (NodeId v : seeds2) pass[v] = static_cast<float>(gap.q1_given2);

  AllocationResult result = SelectWithNodeCoins(
      graph, pass, budget1, seeds2, options, seed, workers);
  result.num_rr_sets += imm2.num_rr_sets;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

AllocationResult RrCim(const Graph& graph, const TwoItemGap& gap,
                       uint32_t budget1, uint32_t budget2,
                       const ComIcBaselineOptions& options, uint64_t seed,
                       unsigned workers) {
  WallTimer timer;
  RrOptions imm_rr;
  imm_rr.stream_cache = options.stream_cache;
  ImResult imm2 = Imm(graph, budget2, options.eps, options.ell, seed ^ 0xb2u,
                      workers, {}, imm_rr);
  std::vector<NodeId> seeds2(imm2.seeds.begin(),
                             imm2.seeds.begin() +
                                 std::min<size_t>(budget2, imm2.seeds.size()));

  // Forward Monte-Carlo estimation of each node's i2-adoption probability
  // (this pass is what makes RR-CIM the slowest algorithm, cf. Fig. 5).
  // Fixed-grid streams so the counts — and hence the derived node coins —
  // are worker-count invariant. The accumulators are kRngStreams × n
  // uint32 regardless of the worker count (streams may run concurrently,
  // so they cannot share a slot without synchronization); at the repo's
  // laptop-scale stand-ins (≤ ~40K nodes, networks.h) that is a few MB.
  const size_t sims = std::max<size_t>(1, options.cim_forward_simulations);
  std::vector<std::vector<uint32_t>> counts(
      kRngStreams, std::vector<uint32_t>(graph.num_nodes(), 0));
  ParallelForStreams(sims, workers, [&](unsigned s, size_t begin, size_t end) {
    ComIcSimulator sim(graph, gap);
    Rng rng = Rng::Split(seed ^ 0xf0f0u, s);
    for (size_t i = begin; i < end; ++i) {
      sim.Run({}, seeds2, rng, &counts[s]);
    }
  });
  std::vector<float> pass(graph.num_nodes(), 0.0f);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    uint64_t c = 0;
    for (unsigned s = 0; s < kRngStreams; ++s) c += counts[s][v];
    const double p2 = static_cast<double>(c) / static_cast<double>(sims);
    pass[v] = static_cast<float>(gap.q1_none * (1.0 - p2) +
                                 gap.q1_given2 * p2);
  }

  AllocationResult result = SelectWithNodeCoins(
      graph, pass, budget1, seeds2, options, seed, workers);
  result.num_rr_sets += imm2.num_rr_sets;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace uic
