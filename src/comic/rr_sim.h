// RR-SIM+ and RR-CIM: the Com-IC seed-selection baselines (§4.3.1.2).
//
// Both algorithms take the seeds of item i2 as given (chosen by IMM) and
// select item i1's seeds to maximize i1's expected adoption under Com-IC:
//
//  * RR-SIM+ samples reverse-reachable sets in which every traversed node
//    additionally passes its NLA adoption coin (q_{1|∅}, boosted to
//    q_{1|2} at i2's seed nodes — the "+" one-way complementarity boost).
//  * RR-CIM first runs forward Monte-Carlo simulations of i2's diffusion
//    to estimate each node's i2-adoption probability, then samples RR sets
//    whose node coins use the mixed probability
//    q_{1|∅}·(1 − p2_v) + q_{1|2}·p2_v.
//
// Faithful to the originals, the sample size is governed by the more
// conservative TIM-style bound (they predate IMM's refined martingale
// bound), which is why they generate significantly more RR sets than
// IMM-based algorithms (Fig. 6). Both support exactly two items; extending
// Com-IC beyond two items needs exponentially many NLA parameters, which
// is precisely the limitation bundleGRD removes.
#pragma once

#include <cstdint>

#include "core/bundle_grd.h"
#include "items/gap.h"

namespace uic {

/// Tuning knobs shared by the Com-IC baselines.
struct ComIcBaselineOptions {
  double eps = 0.5;
  double ell = 1.0;
  /// Forward Monte-Carlo simulations used by RR-CIM to estimate per-node
  /// i2-adoption probabilities.
  size_t cim_forward_simulations = 200;
  /// Optional warm-start cache for every RR pool these baselines build
  /// (the i2 IMM pool and the node-coin pools); see rr_stream_cache.h.
  /// Results are bit-identical with or without it.
  RrStreamCache* stream_cache = nullptr;
};

/// \brief RR-SIM+: item i1 seeds via self-influence RR sets (i2 by IMM).
AllocationResult RrSimPlus(const Graph& graph, const TwoItemGap& gap,
                           uint32_t budget1, uint32_t budget2,
                           const ComIcBaselineOptions& options, uint64_t seed,
                           unsigned workers = 0);

/// \brief RR-CIM: complementary influence maximization for item i1.
AllocationResult RrCim(const Graph& graph, const TwoItemGap& gap,
                       uint32_t budget1, uint32_t budget2,
                       const ComIcBaselineOptions& options, uint64_t seed,
                       unsigned workers = 0);

}  // namespace uic
