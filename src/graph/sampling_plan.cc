#include "graph/sampling_plan.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace uic {

const char* SamplingKernelName(SamplingKernel k) {
  switch (k) {
    case SamplingKernel::kAuto: return "auto";
    case SamplingKernel::kScan: return "scan";
    case SamplingKernel::kSkip: return "skip";
  }
  return "auto";
}

bool ParseSamplingKernel(const std::string& name, SamplingKernel* out) {
  if (name == "auto") {
    *out = SamplingKernel::kAuto;
  } else if (name == "scan") {
    *out = SamplingKernel::kScan;
  } else if (name == "skip") {
    *out = SamplingKernel::kSkip;
  } else {
    return false;
  }
  return true;
}

std::shared_ptr<const SamplingPlan> SamplingPlan::Build(const Graph& graph,
                                                        Direction direction,
                                                        uint32_t features) {
  UIC_CHECK(features != 0);
  std::shared_ptr<SamplingPlan> plan(new SamplingPlan());
  plan->direction_ = direction;
  plan->features_ = features;
  plan->general_.assign(graph.num_nodes(), 0);
  if ((features & kIcBuckets) != 0) plan->BuildBuckets(graph);
  if ((features & kLtAlias) != 0) {
    UIC_CHECK_MSG(direction == Direction::kReverse,
                  "LT alias tables stratify in-adjacency (reverse walks)");
    plan->BuildLtAlias(graph);
  }
  return plan;
}

void SamplingPlan::BuildBuckets(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  bucket_off_.assign(static_cast<size_t>(n) + 1, 0);

  // Pass 1: classify every node and size the bucket/permutation storage
  // exactly, so the Bucket::nodes pointers laid down in pass 2 are final.
  std::vector<uint8_t> uniform(n, 0);
  size_t total_buckets = 0;
  size_t total_permuted = 0;
  std::vector<float> distinct;
  std::vector<uint32_t> counts;
  for (NodeId v = 0; v < n; ++v) {
    auto probs = Probs(graph, v);
    distinct.clear();
    counts.clear();
    bool general = false;
    uint32_t positive = 0;
    for (float p : probs) {
      if (!(p > 0.0f)) continue;  // dead edge: never fires, drop from plan
      ++positive;
      size_t j = 0;
      while (j < distinct.size() && distinct[j] != p) ++j;
      if (j < distinct.size()) {
        ++counts[j];
      } else if (distinct.size() == kMaxDistinct) {
        general = true;
        break;
      } else {
        distinct.push_back(p);
        counts.push_back(1);
      }
    }
    if (general) {
      general_[v] = 1;
      ++num_general_;
      continue;
    }
    if (distinct.empty()) continue;  // isolated or all-dead: no buckets
    total_buckets += distinct.size();
    if (distinct.size() == 1 && counts[0] == probs.size()) {
      uniform[v] = 1;  // whole CSR slice is one bucket: alias it, no copy
      ++num_uniform_;
    } else {
      ++num_bucketed_;
      total_permuted += positive;
    }
  }

  buckets_.reserve(total_buckets);
  permuted_.resize(total_permuted);

  // Pass 2: lay the buckets down, descending in probability, CSR order
  // within a bucket.
  size_t perm = 0;
  std::vector<std::pair<float, uint32_t>> order;
  for (NodeId v = 0; v < n; ++v) {
    bucket_off_[v] = static_cast<uint32_t>(buckets_.size());
    if (general_[v]) continue;
    auto srcs = Slice(graph, v);
    auto probs = Probs(graph, v);
    if (uniform[v]) {
      const double p = static_cast<double>(probs[0]);
      buckets_.push_back(Bucket{srcs.data(), static_cast<uint32_t>(srcs.size()),
                                probs[0], std::log1p(-p)});
      continue;
    }
    order.clear();
    for (float p : probs) {
      if (!(p > 0.0f)) continue;
      bool seen = false;
      for (auto& [q, c] : order) {
        if (q == p) {
          ++c;
          seen = true;
          break;
        }
      }
      if (!seen) order.emplace_back(p, 1);
    }
    if (order.empty()) continue;
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [p, count] : order) {
      NodeId* dst = permuted_.data() + perm;
      uint32_t w = 0;
      for (size_t k = 0; k < probs.size(); ++k) {
        if (probs[k] == p) dst[w++] = srcs[k];
      }
      buckets_.push_back(
          Bucket{dst, count, p, std::log1p(-static_cast<double>(p))});
      perm += count;
    }
  }
  bucket_off_[n] = static_cast<uint32_t>(buckets_.size());
}

void SamplingPlan::BuildLtAlias(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  alias_off_.assign(static_cast<size_t>(n) + 1, 0);
  size_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    alias_off_[v] = total;
    const uint32_t deg = graph.InDegree(v);
    // deg + 1 outcomes: each in-neighbor, plus "none fires". Nodes with
    // no in-edges get no slots; SampleLtSource short-circuits them.
    if (deg > 0) total += static_cast<size_t>(deg) + 1;
  }
  alias_off_[n] = total;
  alias_prob_.resize(total);
  alias_first_.resize(total);
  alias_second_.resize(total);

  std::vector<double> scaled;
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  for (NodeId v = 0; v < n; ++v) {
    auto srcs = graph.InNeighbors(v);
    auto probs = graph.InProbs(v);
    const size_t deg = srcs.size();
    if (deg == 0) continue;
    const size_t slots = deg + 1;
    double sum = 0.0;
    for (float p : probs) sum += p > 0.0f ? static_cast<double>(p) : 0.0;
    // The LT contract is Σ w <= 1 (rr_collection.h); normalizing by
    // max(sum, 1) keeps the per-outcome probabilities exactly w_k for
    // conforming inputs and stays well-defined otherwise.
    const double none = sum < 1.0 ? 1.0 - sum : 0.0;
    const double denom = sum + none;
    scaled.assign(slots, 0.0);
    const double mul = static_cast<double>(slots) / denom;
    for (size_t k = 0; k < deg; ++k) {
      scaled[k] = (probs[k] > 0.0f ? static_cast<double>(probs[k]) : 0.0) * mul;
    }
    scaled[deg] = none * mul;

    // Vose's algorithm: pair each under-full slot with an over-full donor.
    small.clear();
    large.clear();
    for (size_t j = 0; j < slots; ++j) {
      (scaled[j] < 1.0 ? small : large).push_back(static_cast<uint32_t>(j));
    }
    const size_t base = alias_off_[v];
    auto outcome = [&](uint32_t j) {
      return j < deg ? srcs[j] : kNoSource;
    };
    while (!small.empty() && !large.empty()) {
      const uint32_t s = small.back();
      small.pop_back();
      const uint32_t l = large.back();
      large.pop_back();
      alias_prob_[base + s] = scaled[s];
      alias_first_[base + s] = outcome(s);
      alias_second_[base + s] = outcome(l);
      scaled[l] -= 1.0 - scaled[s];
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (const auto* rest : {&small, &large}) {
      for (uint32_t j : *rest) {
        alias_prob_[base + j] = 1.0;
        alias_first_[base + j] = outcome(j);
        alias_second_[base + j] = outcome(j);
      }
    }
  }
}

}  // namespace uic
