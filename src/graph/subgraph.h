// Subgraph extraction (BFS-grown prefixes for the scalability experiment,
// Fig. 9(d)).
#pragma once

#include <vector>

#include "graph/graph.h"

namespace uic {

/// \brief Induced subgraph on the first nodes reached by BFS from `root`
/// until `target_nodes` nodes are collected (node ids are re-densified in
/// BFS discovery order). BFS treats edges as undirected for discovery, so
/// the grown subgraph stays weakly connected.
Graph BfsInducedSubgraph(const Graph& graph, NodeId root, NodeId target_nodes);

/// \brief Induced subgraph on an explicit node set (ids re-densified in the
/// order given).
Graph InducedSubgraph(const Graph& graph, const std::vector<NodeId>& nodes);

}  // namespace uic
