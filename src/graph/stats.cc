#include "graph/stats.h"

#include <algorithm>
#include <numeric>

namespace uic {

namespace {

/// Union-find over node ids.
class DisjointSets {
 public:
  explicit DisjointSets(NodeId n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  NodeId Find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(NodeId a, NodeId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

  NodeId MaxComponent() const {
    return *std::max_element(size_.begin(), size_.end());
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeId> size_;
};

}  // namespace

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  if (stats.num_nodes == 0) return stats;
  stats.avg_degree = graph.AverageDegree();

  DisjointSets components(graph.num_nodes());
  std::vector<uint32_t> in_degrees(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const uint32_t din = graph.InDegree(v);
    const uint32_t dout = graph.OutDegree(v);
    in_degrees[v] = din;
    stats.max_in_degree = std::max(stats.max_in_degree, din);
    stats.max_out_degree = std::max(stats.max_out_degree, dout);
    stats.num_sources += (din == 0);
    stats.num_sinks += (dout == 0);
    for (NodeId u : graph.OutNeighbors(v)) components.Union(v, u);
  }
  stats.largest_wcc = components.MaxComponent();

  // Gini coefficient of the in-degree distribution.
  std::sort(in_degrees.begin(), in_degrees.end());
  const double n = static_cast<double>(in_degrees.size());
  double cum = 0.0, weighted = 0.0;
  for (size_t i = 0; i < in_degrees.size(); ++i) {
    cum += in_degrees[i];
    weighted += static_cast<double>(i + 1) * in_degrees[i];
  }
  if (cum > 0) {
    stats.gini_in_degree = (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
  }
  return stats;
}

std::vector<size_t> InDegreeLogHistogram(const Graph& graph) {
  std::vector<size_t> hist;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const uint32_t d = graph.InDegree(v);
    size_t bucket = 0;
    if (d >= 1) {
      bucket = 1;
      uint32_t hi = 1;
      while (hi * 2 <= d) {
        hi *= 2;
        ++bucket;
      }
    }
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

}  // namespace uic
