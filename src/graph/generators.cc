#include "graph/generators.h"

#include <unordered_set>

#include "common/check.h"
#include "common/random.h"

namespace uic {

Graph GenerateErdosRenyi(NodeId n, size_t m, uint64_t seed) {
  UIC_CHECK_GT(n, 1u);
  Rng rng(seed);
  GraphBuilder builder(n);
  std::unordered_set<uint64_t> used;
  used.reserve(m * 2);
  size_t added = 0;
  const size_t max_possible = static_cast<size_t>(n) * (n - 1);
  if (m > max_possible) m = max_possible;
  while (added < m) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (!used.insert(key).second) continue;
    builder.AddEdge(u, v);
    ++added;
  }
  auto result = builder.Build();
  UIC_CHECK(result.ok());
  return result.MoveValue();
}

Graph GeneratePreferentialAttachment(NodeId n, uint32_t out_per_node,
                                     bool undirected, uint64_t seed) {
  UIC_CHECK_GT(n, out_per_node);
  Rng rng(seed);
  GraphBuilder builder(n);
  // `targets` holds one entry per unit of attachment mass; sampling an
  // element uniformly implements preferential attachment.
  std::vector<NodeId> mass;
  mass.reserve(static_cast<size_t>(n) * (out_per_node + 1));
  const NodeId seed_clique = out_per_node + 1;
  for (NodeId u = 0; u < seed_clique; ++u) {
    for (NodeId v = 0; v < seed_clique; ++v) {
      if (u == v) continue;
      builder.AddEdge(u, v);
    }
    mass.push_back(u);
    mass.push_back(u);
  }
  // `chosen` filters duplicates; `picks` preserves RNG draw order so the
  // emitted edges (and the interleaved back-edge coin flips below) are a
  // pure function of the seed. Iterating the unordered_set here would tie
  // the graph to the standard library's hash iteration order (UIC-L006).
  std::unordered_set<NodeId> chosen;
  std::vector<NodeId> picks;
  picks.reserve(out_per_node);
  for (NodeId u = seed_clique; u < n; ++u) {
    chosen.clear();
    picks.clear();
    while (chosen.size() < out_per_node) {
      const NodeId t = mass[rng.NextBounded(mass.size())];
      if (t == u) continue;
      if (chosen.insert(t).second) picks.push_back(t);
    }
    for (NodeId t : picks) {
      if (undirected) {
        builder.AddUndirectedEdge(u, t);
      } else {
        builder.AddEdge(u, t);
        // Keep the digraph weakly connected and heavy-tailed in in-degree:
        // occasionally add a back-edge too.
        if (rng.NextBernoulli(0.3)) builder.AddEdge(t, u);
      }
      mass.push_back(t);
    }
    mass.push_back(u);
  }
  auto result = builder.Build();
  UIC_CHECK(result.ok());
  return result.MoveValue();
}

Graph GenerateWattsStrogatz(NodeId n, uint32_t k, double rewire_prob,
                            uint64_t seed) {
  UIC_CHECK_GT(n, 2 * k);
  Rng rng(seed);
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k; ++j) {
      NodeId v = (u + j) % n;
      if (rng.NextBernoulli(rewire_prob)) {
        do {
          v = static_cast<NodeId>(rng.NextBounded(n));
        } while (v == u);
      }
      builder.AddUndirectedEdge(u, v);
    }
  }
  auto result = builder.Build();
  UIC_CHECK(result.ok());
  return result.MoveValue();
}

Graph GenerateGrid(uint32_t rows, uint32_t cols) {
  UIC_CHECK_GT(rows, 0u);
  UIC_CHECK_GT(cols, 0u);
  const NodeId n = rows * cols;
  GraphBuilder builder(n);
  auto id = [cols](uint32_t r, uint32_t c) { return r * cols + c; };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddUndirectedEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddUndirectedEdge(id(r, c), id(r + 1, c));
    }
  }
  auto result = builder.Build();
  UIC_CHECK(result.ok());
  return result.MoveValue();
}

Graph GenerateLayeredDag(uint32_t layers, uint32_t width, double prob) {
  UIC_CHECK_GT(layers, 0u);
  UIC_CHECK_GT(width, 0u);
  const NodeId n = layers * width;
  GraphBuilder builder(n);
  for (uint32_t l = 0; l + 1 < layers; ++l) {
    for (uint32_t a = 0; a < width; ++a) {
      for (uint32_t b = 0; b < width; ++b) {
        builder.AddEdge(l * width + a, (l + 1) * width + b, prob);
      }
    }
  }
  auto result = builder.Build();
  UIC_CHECK(result.ok());
  return result.MoveValue();
}

}  // namespace uic
