#include "graph/subgraph.h"

#include <deque>
#include <unordered_map>

#include "common/check.h"

namespace uic {

Graph InducedSubgraph(const Graph& graph, const std::vector<NodeId>& nodes) {
  std::unordered_map<NodeId, NodeId> dense;
  dense.reserve(nodes.size());
  for (NodeId i = 0; i < nodes.size(); ++i) dense.emplace(nodes[i], i);
  GraphBuilder builder(static_cast<NodeId>(nodes.size()));
  for (NodeId i = 0; i < nodes.size(); ++i) {
    const NodeId u = nodes[i];
    auto nbrs = graph.OutNeighbors(u);
    auto probs = graph.OutProbs(u);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      auto it = dense.find(nbrs[k]);
      if (it == dense.end()) continue;
      builder.AddEdge(i, it->second, probs[k]);
    }
  }
  auto result = builder.Build();
  UIC_CHECK(result.ok());
  return result.MoveValue();
}

Graph BfsInducedSubgraph(const Graph& graph, NodeId root,
                         NodeId target_nodes) {
  UIC_CHECK_LT(root, graph.num_nodes());
  if (target_nodes > graph.num_nodes()) target_nodes = graph.num_nodes();
  std::vector<NodeId> order;
  order.reserve(target_nodes);
  std::vector<bool> seen(graph.num_nodes(), false);
  std::deque<NodeId> queue;
  queue.push_back(root);
  seen[root] = true;
  NodeId scan_next = 0;  // fallback start for disconnected graphs
  while (order.size() < target_nodes) {
    if (queue.empty()) {
      // Graph exhausted from this component; jump to the next unseen node.
      while (scan_next < graph.num_nodes() && seen[scan_next]) ++scan_next;
      if (scan_next >= graph.num_nodes()) break;
      seen[scan_next] = true;
      queue.push_back(scan_next);
      continue;
    }
    const NodeId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (NodeId v : graph.OutNeighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
    for (NodeId v : graph.InNeighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  return InducedSubgraph(graph, order);
}

}  // namespace uic
