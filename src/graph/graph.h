// Immutable directed influence graph in CSR form.
//
// The graph stores both forward (out-neighbor) and reverse (in-neighbor)
// adjacency because the two main consumers need opposite directions:
// forward Monte-Carlo diffusion walks out-edges, while reverse-reachable
// (RR) set sampling walks in-edges. Edge influence probabilities are kept
// alongside the adjacency in edge-parallel arrays.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace uic {

using NodeId = uint32_t;

/// \brief A weighted directed edge used during graph construction.
struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  double prob = 0.0;
};

/// \brief Immutable directed graph with per-edge influence probabilities.
///
/// Nodes are dense ids `[0, num_nodes)`. Use `GraphBuilder` (or the loaders
/// and generators) to construct one. Copying is allowed but the intended
/// usage is to build once and share by const reference.
class Graph {
 public:
  Graph() = default;

  NodeId num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return out_targets_.size(); }

  /// Average out-degree (== average in-degree).
  double AverageDegree() const {
    return num_nodes_ == 0
               ? 0.0
               : static_cast<double>(num_edges()) / static_cast<double>(num_nodes_);
  }

  uint32_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  uint32_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Out-neighbors of `u`, parallel to `OutProbs(u)`.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }
  std::span<const float> OutProbs(NodeId u) const {
    return {out_probs_.data() + out_offsets_[u],
            out_probs_.data() + out_offsets_[u + 1]};
  }

  /// In-neighbors of `v`, parallel to `InProbs(v)`.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }
  std::span<const float> InProbs(NodeId v) const {
    return {in_probs_.data() + in_offsets_[v],
            in_probs_.data() + in_offsets_[v + 1]};
  }

  /// Global edge index of the k-th out-edge of u (stable identifier usable
  /// for edge-status memoization during one diffusion).
  size_t OutEdgeIndex(NodeId u, uint32_t k) const { return out_offsets_[u] + k; }

  /// Reassign every edge probability to `1/din(target)` (the weighted
  /// cascade scheme the paper uses as default).
  void ApplyWeightedCascade();

  /// Reassign every edge probability to a constant.
  void ApplyConstantProbability(double p);

  /// Reassign each edge probability uniformly at random from `choices`
  /// (the classic trivalency scheme), deterministically from `seed`.
  void ApplyTrivalency(const std::vector<double>& choices, uint64_t seed);

  /// Human-readable one-line summary (n, m, avg degree).
  std::string Summary() const;

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  // CSR forward adjacency.
  std::vector<uint32_t> out_offsets_;  // size num_nodes_+1
  std::vector<NodeId> out_targets_;
  std::vector<float> out_probs_;
  // CSR reverse adjacency.
  std::vector<uint32_t> in_offsets_;  // size num_nodes_+1
  std::vector<NodeId> in_sources_;
  std::vector<float> in_probs_;
};

/// \brief Accumulates edges and assembles an immutable `Graph`.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Add a directed edge. Self-loops are ignored; duplicate edges are
  /// deduplicated at Build() time (keeping the maximum probability).
  void AddEdge(NodeId from, NodeId to, double prob = 0.0) {
    if (from == to) return;
    edges_.push_back({from, to, prob});
  }

  /// Add both directions (for undirected source data).
  void AddUndirectedEdge(NodeId a, NodeId b, double prob = 0.0) {
    AddEdge(a, b, prob);
    AddEdge(b, a, prob);
  }

  size_t num_pending_edges() const { return edges_.size(); }

  /// Assemble the CSR structures. Fails if an endpoint is out of range.
  [[nodiscard]] Result<Graph> Build();

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace uic
