// Loading graphs from SNAP-style edge lists.
#pragma once

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace uic {

/// Options controlling edge-list parsing.
struct EdgeListOptions {
  /// Treat each line "u v" as an undirected edge (add both directions).
  bool undirected = false;
  /// If the file has a third column, read it as the edge probability.
  bool read_probability = false;
  /// Remap arbitrary node ids to dense [0, n) (SNAP files often have gaps).
  bool remap_ids = true;
  /// Reject self-loop lines ("u u") with InvalidArgument instead of the
  /// default tolerant behavior (GraphBuilder silently drops them).
  bool reject_self_loops = false;
  /// Reject repeated (u, v) lines with InvalidArgument instead of the
  /// default tolerant behavior (GraphBuilder keeps the max probability).
  bool reject_duplicate_edges = false;
};

/// \brief Parse a whitespace-separated edge list ("u v [p]" per line).
///
/// Lines starting with '#' or '%' are comments. Node count is inferred.
/// Malformed lines, out-of-range node ids or probabilities, and (under the
/// strict options) self-loops and duplicates all return a Status naming
/// the offending line — never a crash or a silently corrupted graph.
[[nodiscard]] Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListOptions& options = {});

/// \brief Parse an edge list from an in-memory string (used by tests).
[[nodiscard]] Result<Graph> ParseEdgeList(const std::string& text,
                            const EdgeListOptions& options = {});

/// \brief Write a graph as "u v p" lines (round-trips with LoadEdgeList).
[[nodiscard]] Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace uic
