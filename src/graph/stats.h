// Descriptive statistics over graphs (used by the network table bench and
// for validating that synthetic stand-ins match their targets).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace uic {

/// \brief Summary statistics of a graph.
struct GraphStats {
  NodeId num_nodes = 0;
  size_t num_edges = 0;
  double avg_degree = 0.0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;
  NodeId num_sources = 0;  ///< nodes with in-degree 0
  NodeId num_sinks = 0;    ///< nodes with out-degree 0
  NodeId largest_wcc = 0;  ///< size of the largest weakly connected comp.
  double gini_in_degree = 0.0;  ///< inequality of the in-degree dist.
};

/// Compute all statistics in one pass (+ one union-find pass for WCC).
GraphStats ComputeGraphStats(const Graph& graph);

/// \brief Histogram of in-degrees in logarithmic buckets
/// [0], [1], [2,3], [4,7], ... — heavy-tailed graphs show a long tail.
std::vector<size_t> InDegreeLogHistogram(const Graph& graph);

}  // namespace uic
