// Synthetic network generators.
//
// The paper evaluates on five crawled networks (Flixster, Douban-Book,
// Douban-Movie, Twitter, Orkut). Those datasets are not redistributable
// offline, so the experiment harness substitutes synthetic graphs with
// matching density and a heavy-tailed degree distribution (see DESIGN.md,
// "Substitutions"). Real SNAP edge lists can still be used via
// `LoadEdgeList` in loaders.h.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace uic {

/// \brief G(n, m) Erdős–Rényi digraph: `m` directed edges chosen uniformly.
Graph GenerateErdosRenyi(NodeId n, size_t m, uint64_t seed);

/// \brief Preferential-attachment (Barabási–Albert style) graph.
///
/// Each new node attaches `out_per_node` out-edges to existing nodes chosen
/// preferentially by current in-degree (plus one smoothing). If
/// `undirected` is true each attachment adds both directions, yielding the
/// degree profile of the paper's undirected networks (Flixster, Orkut).
Graph GeneratePreferentialAttachment(NodeId n, uint32_t out_per_node,
                                     bool undirected, uint64_t seed);

/// \brief Watts–Strogatz small world (ring lattice + rewiring), directed.
Graph GenerateWattsStrogatz(NodeId n, uint32_t k, double rewire_prob,
                            uint64_t seed);

/// \brief 2D grid with edges in both directions (useful in tests: known
/// reachability structure).
Graph GenerateGrid(uint32_t rows, uint32_t cols);

/// \brief Complete DAG layered graph used by tests (deterministic paths).
Graph GenerateLayeredDag(uint32_t layers, uint32_t width, double prob);

}  // namespace uic
