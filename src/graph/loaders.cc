#include "graph/loaders.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace uic {

namespace {

Result<Graph> ParseStream(std::istream& in, const EdgeListOptions& options) {
  std::vector<Edge> edges;
  std::unordered_map<uint64_t, NodeId> remap;
  NodeId next_id = 0;
  uint64_t max_raw = 0;

  auto map_id = [&](uint64_t raw) -> NodeId {
    if (!options.remap_ids) {
      if (raw > max_raw) max_raw = raw;
      return static_cast<NodeId>(raw);
    }
    auto [it, inserted] = remap.try_emplace(raw, next_id);
    if (inserted) ++next_id;
    return it->second;
  };

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t raw_u, raw_v;
    if (!(ls >> raw_u >> raw_v)) {
      return Status::IOError("malformed edge at line " +
                             std::to_string(line_no));
    }
    double p = 0.0;
    if (options.read_probability) {
      if (!(ls >> p)) {
        return Status::IOError("missing probability at line " +
                               std::to_string(line_no));
      }
      if (p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("probability out of [0,1] at line " +
                                       std::to_string(line_no));
      }
    }
    const NodeId u = map_id(raw_u);
    const NodeId v = map_id(raw_v);
    edges.push_back({u, v, p});
    if (options.undirected) edges.push_back({v, u, p});
  }

  const NodeId n = options.remap_ids ? next_id
                                     : static_cast<NodeId>(max_raw + 1);
  if (n == 0) return Status::InvalidArgument("empty edge list");
  GraphBuilder builder(n);
  for (const Edge& e : edges) builder.AddEdge(e.from, e.to, e.prob);
  return builder.Build();
}

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ParseStream(in, options);
}

Result<Graph> ParseEdgeList(const std::string& text,
                            const EdgeListOptions& options) {
  std::istringstream in(text);
  return ParseStream(in, options);
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# nodes " << graph.num_nodes() << " edges " << graph.num_edges()
      << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.OutNeighbors(u);
    auto probs = graph.OutProbs(u);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      out << u << " " << nbrs[k] << " " << probs[k] << "\n";
    }
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

}  // namespace uic
