#include "graph/loaders.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace uic {

namespace {

Result<Graph> ParseStream(std::istream& in, const EdgeListOptions& options) {
  // Node ids are NodeId (uint32); without remapping a raw id IS the node
  // id, so anything that would not survive the cast — or would make n =
  // max_raw + 1 overflow — is rejected instead of silently truncated.
  constexpr uint64_t kMaxRawId = uint64_t{UINT32_MAX} - 1;

  std::vector<Edge> edges;
  std::unordered_map<uint64_t, NodeId> remap;
  std::unordered_set<uint64_t> seen;  // (u << 32 | v), strict mode only
  NodeId next_id = 0;
  uint64_t max_raw = 0;

  auto map_id = [&](uint64_t raw) -> NodeId {
    if (!options.remap_ids) {
      if (raw > max_raw) max_raw = raw;
      return static_cast<NodeId>(raw);
    }
    auto [it, inserted] = remap.try_emplace(raw, next_id);
    if (inserted) ++next_id;
    return it->second;
  };

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t raw_u, raw_v;
    if (!(ls >> raw_u >> raw_v)) {
      return Status::IOError("malformed edge at line " +
                             std::to_string(line_no));
    }
    if (!options.remap_ids && (raw_u > kMaxRawId || raw_v > kMaxRawId)) {
      return Status::OutOfRange("node id out of range at line " +
                                std::to_string(line_no) +
                                " (remap_ids is off)");
    }
    double p = 0.0;
    if (options.read_probability) {
      if (!(ls >> p)) {
        return Status::IOError("missing probability at line " +
                               std::to_string(line_no));
      }
      if (p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("probability out of [0,1] at line " +
                                       std::to_string(line_no));
      }
    }
    if (options.reject_self_loops && raw_u == raw_v) {
      return Status::InvalidArgument("self-loop at line " +
                                     std::to_string(line_no));
    }
    const NodeId u = map_id(raw_u);
    const NodeId v = map_id(raw_v);
    if (options.reject_duplicate_edges) {
      const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
      if (!seen.insert(key).second) {
        return Status::InvalidArgument("duplicate edge at line " +
                                       std::to_string(line_no));
      }
      if (options.undirected && u != v) {
        seen.insert((static_cast<uint64_t>(v) << 32) | u);
      }
    }
    edges.push_back({u, v, p});
    if (options.undirected) edges.push_back({v, u, p});
  }

  // Checked before deriving n: without remapping, max_raw = 0 would
  // otherwise turn an edge-free input into a plausible 1-node graph.
  if (edges.empty()) return Status::InvalidArgument("empty edge list");
  const NodeId n = options.remap_ids ? next_id
                                     : static_cast<NodeId>(max_raw + 1);
  GraphBuilder builder(n);
  for (const Edge& e : edges) builder.AddEdge(e.from, e.to, e.prob);
  return builder.Build();
}

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ParseStream(in, options);
}

Result<Graph> ParseEdgeList(const std::string& text,
                            const EdgeListOptions& options) {
  std::istringstream in(text);
  return ParseStream(in, options);
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# nodes " << graph.num_nodes() << " edges " << graph.num_edges()
      << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.OutNeighbors(u);
    auto probs = graph.OutProbs(u);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      out << u << " " << nbrs[k] << " " << probs[k] << "\n";
    }
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

}  // namespace uic
