#include "graph/graph.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/random.h"

namespace uic {

void Graph::ApplyWeightedCascade() {
  // p(u,v) = 1 / din(v): write via the reverse adjacency (contiguous per
  // target), then mirror into the forward arrays.
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const uint32_t din = InDegree(v);
    if (din == 0) continue;
    const float p = 1.0f / static_cast<float>(din);
    for (uint32_t k = in_offsets_[v]; k < in_offsets_[v + 1]; ++k) {
      in_probs_[k] = p;
    }
  }
  // Mirror: forward prob of (u,v) equals 1/din(v).
  std::vector<float> inv_din(num_nodes_, 0.0f);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const uint32_t din = InDegree(v);
    inv_din[v] = din == 0 ? 0.0f : 1.0f / static_cast<float>(din);
  }
  for (size_t e = 0; e < out_targets_.size(); ++e) {
    out_probs_[e] = inv_din[out_targets_[e]];
  }
}

void Graph::ApplyConstantProbability(double p) {
  std::fill(out_probs_.begin(), out_probs_.end(), static_cast<float>(p));
  std::fill(in_probs_.begin(), in_probs_.end(), static_cast<float>(p));
}

void Graph::ApplyTrivalency(const std::vector<double>& choices, uint64_t seed) {
  UIC_CHECK(!choices.empty());
  // Assign per-(u,v) deterministically from a hash of the edge so that the
  // forward and reverse arrays agree.
  auto edge_prob = [&](NodeId u, NodeId v) {
    SplitMix64 sm((static_cast<uint64_t>(u) << 32 | v) ^ seed);
    return static_cast<float>(choices[sm.Next() % choices.size()]);
  };
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (uint32_t k = out_offsets_[u]; k < out_offsets_[u + 1]; ++k) {
      out_probs_[k] = edge_prob(u, out_targets_[k]);
    }
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (uint32_t k = in_offsets_[v]; k < in_offsets_[v + 1]; ++k) {
      in_probs_[k] = edge_prob(in_sources_[k], v);
    }
  }
}

std::string Graph::Summary() const {
  std::ostringstream os;
  os << "Graph(n=" << num_nodes_ << ", m=" << num_edges()
     << ", avg_deg=" << AverageDegree() << ")";
  return os.str();
}

Result<Graph> GraphBuilder::Build() {
  for (const Edge& e : edges_) {
    if (e.from >= num_nodes_ || e.to >= num_nodes_) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
  }
  // Deduplicate (from, to), keeping the max probability.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    return a.prob > b.prob;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.from == b.from && a.to == b.to;
                           }),
               edges_.end());

  Graph g;
  g.num_nodes_ = num_nodes_;
  const size_t m = edges_.size();

  g.out_offsets_.assign(num_nodes_ + 1, 0);
  g.in_offsets_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges_) {
    ++g.out_offsets_[e.from + 1];
    ++g.in_offsets_[e.to + 1];
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.out_targets_.resize(m);
  g.out_probs_.resize(m);
  g.in_sources_.resize(m);
  g.in_probs_.resize(m);

  // Edges are sorted by (from, to), so forward CSR fills sequentially.
  {
    std::vector<uint32_t> cursor(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      const uint32_t idx = cursor[e.from]++;
      g.out_targets_[idx] = e.to;
      g.out_probs_[idx] = static_cast<float>(e.prob);
    }
  }
  {
    std::vector<uint32_t> cursor(g.in_offsets_.begin(),
                                 g.in_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      const uint32_t idx = cursor[e.to]++;
      g.in_sources_[idx] = e.from;
      g.in_probs_[idx] = static_cast<float>(e.prob);
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

}  // namespace uic
