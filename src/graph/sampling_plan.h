// Probability-stratified sampling plan for geometric skip-sampling.
//
// The paper's cost model (§4.2.3) charges sampling one unit per in-edge
// *examined*, and every probability scheme the repo ships — weighted
// cascade (uniform 1/din(v) per node), constant, trivalency (≤3 distinct
// values) — gives each node's adjacency only a handful of distinct edge
// probabilities. A `SamplingPlan` materializes that structure once per
// graph so the hot samplers can replace per-edge Bernoulli trials with
// geometric jumps: within a run of edges sharing probability p, the gap
// to the next live edge is floor(log1p(-U)/log1p(-p)) — one RNG draw per
// *success* instead of one per edge (Rng::NextGeometric, common/random.h).
//
// Per node the plan classifies the adjacency slice as
//   * uniform  — one positive probability; the single bucket aliases the
//                graph's own CSR slice (no copy),
//   * bucketed — ≤ kMaxDistinct distinct positive values; a
//                probability-sorted (descending) permutation of the slice
//                with bucket boundaries, stored in the plan,
//   * general  — more distinct values than that; the samplers fall back
//                to per-edge trials for this node.
// Edges with p <= 0 can never fire and are dropped from buckets entirely
// (they still count as examined in EPT accounting — see rr_collection.h).
//
// For the Linear Threshold reverse walk the plan additionally
// precomputes a Vose alias table per node over the outcomes {in-neighbor
// k with prob w_k, none with 1 − Σ w}, replacing the linear cumulative
// scan with an O(1) draw.
//
// A plan is immutable after Build, borrows the graph's CSR arrays (it
// must not outlive the graph, nor survive Apply* reweighting — it is a
// function of the probabilities), and is shared freely across threads.
// Consumers cache plans where the graph lives: `RrCollection` builds one
// lazily for cold generation, `RrStreamCache` builds one per bound graph
// so sweeps and the serve daemon's warm pools pay the build once.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace uic {

/// \brief Which sampling kernel the RR engine / forward simulators run.
///
/// The kernels draw DIFFERENT RNG sequences from the same streams, so the
/// kernel is part of the sampled pool's identity: pools are bit-reproducible
/// per kernel (pure function of graph, options incl. kernel, seed) but only
/// statistically equivalent across kernels.
enum class SamplingKernel : uint8_t {
  kAuto = 0,  ///< resolves to kSkip; reserved for future heuristics
  kScan = 1,  ///< per-edge Bernoulli trials (the legacy kernel)
  kSkip = 2,  ///< geometric skip over the plan (per-node scan fallback)
};

/// kAuto resolves to kSkip: the auto logic lives in the plan itself, which
/// classifies per node and keeps the per-edge scan as the kGeneral
/// fallback, so there is no whole-graph decision left to make.
inline SamplingKernel ResolveSamplingKernel(SamplingKernel k) {
  return k == SamplingKernel::kScan ? SamplingKernel::kScan
                                    : SamplingKernel::kSkip;
}

/// Flag-value spelling ("auto"/"scan"/"skip").
const char* SamplingKernelName(SamplingKernel k);

/// Parse a flag value; returns false on an unknown spelling.
bool ParseSamplingKernel(const std::string& name, SamplingKernel* out);

/// \brief Immutable per-graph stratification of adjacency probabilities.
class SamplingPlan {
 public:
  /// Which adjacency the plan stratifies: kReverse (in-edges; RR sampling)
  /// or kForward (out-edges; forward IC simulation).
  enum class Direction : uint8_t { kReverse, kForward };

  /// What to precompute (bitmask).
  enum Features : uint32_t {
    kIcBuckets = 1u << 0,  ///< probability buckets for the IC kernels
    kLtAlias = 1u << 1,    ///< alias tables for the LT reverse walk
  };

  /// A maximal run of same-probability edges of one node. `nodes` points
  /// either into the graph's CSR slice (uniform nodes) or into the plan's
  /// probability-sorted permutation (bucketed nodes).
  struct Bucket {
    const NodeId* nodes = nullptr;
    uint32_t size = 0;
    float p = 0.0f;
    double log1p_neg_p = 0.0;  ///< log1p(-p); -inf for p >= 1
  };

  /// More distinct positive probabilities than this per node → kGeneral.
  static constexpr uint32_t kMaxDistinct = 8;

  /// Sentinel returned by SampleLtSource for the "no in-neighbor fires"
  /// outcome (probability 1 − Σ w).
  static constexpr NodeId kNoSource = ~NodeId{0};

  /// Build a plan for `graph`. The plan borrows the graph's CSR arrays.
  static std::shared_ptr<const SamplingPlan> Build(const Graph& graph,
                                                   Direction direction,
                                                   uint32_t features);

  Direction direction() const { return direction_; }
  bool has_ic_buckets() const { return (features_ & kIcBuckets) != 0; }
  bool has_lt_alias() const { return (features_ & kLtAlias) != 0; }

  /// True if the samplers must fall back to per-edge trials for `v`.
  bool IsGeneral(NodeId v) const { return general_[v] != 0; }

  /// `v`'s buckets, descending in probability; empty when every edge has
  /// p <= 0 (or v is general — check IsGeneral first).
  std::span<const Bucket> Buckets(NodeId v) const {
    return {buckets_.data() + bucket_off_[v],
            buckets_.data() + bucket_off_[v + 1]};
  }

  /// Draw the LT walk's live in-neighbor of `v`: in-neighbor u with
  /// probability w(u,v), kNoSource with 1 − Σ w. O(1): one bounded draw
  /// plus one uniform (none consumed when v has no in-edges). Requires
  /// has_lt_alias().
  NodeId SampleLtSource(NodeId v, Rng& rng) const {
    const size_t begin = alias_off_[v];
    const size_t count = alias_off_[v + 1] - begin;
    if (count == 0) return kNoSource;
    const size_t slot = begin + rng.NextBounded(count);
    return rng.NextDouble() < alias_prob_[slot] ? alias_first_[slot]
                                                : alias_second_[slot];
  }

  // Classification tallies (tests/instrumentation).
  NodeId num_uniform_nodes() const { return num_uniform_; }
  NodeId num_bucketed_nodes() const { return num_bucketed_; }
  NodeId num_general_nodes() const { return num_general_; }

 private:
  SamplingPlan() = default;

  void BuildBuckets(const Graph& graph);
  void BuildLtAlias(const Graph& graph);

  std::span<const NodeId> Slice(const Graph& graph, NodeId v) const {
    return direction_ == Direction::kReverse ? graph.InNeighbors(v)
                                             : graph.OutNeighbors(v);
  }
  std::span<const float> Probs(const Graph& graph, NodeId v) const {
    return direction_ == Direction::kReverse ? graph.InProbs(v)
                                             : graph.OutProbs(v);
  }

  Direction direction_ = Direction::kReverse;
  uint32_t features_ = 0;

  // IC buckets (feature kIcBuckets).
  std::vector<uint8_t> general_;      ///< per node: fall back to scan
  std::vector<uint32_t> bucket_off_;  ///< per node into buckets_, n+1
  std::vector<Bucket> buckets_;
  std::vector<NodeId> permuted_;  ///< bucketed nodes' sorted slices

  // LT alias tables (feature kLtAlias): per node, deg+1 slots over the
  // outcomes {each in-neighbor, none}, stored as resolved NodeIds.
  std::vector<size_t> alias_off_;  ///< per node into the slot arrays, n+1
  std::vector<double> alias_prob_;
  std::vector<NodeId> alias_first_;
  std::vector<NodeId> alias_second_;

  NodeId num_uniform_ = 0;
  NodeId num_bucketed_ = 0;
  NodeId num_general_ = 0;
};

}  // namespace uic
