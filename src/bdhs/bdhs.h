// Welfare maximization under friends-of-friends network externalities
// (Bhattacharya, Dvořák, Henzinger, Starnberger — "BDHS"), converted to
// our setting exactly as §4.3.4.4 prescribes:
//
//  * every itemset is a *virtual item*; with no budget, BDHS may assign
//    virtual items to every node directly (no propagation);
//  * BDHS-Step evaluates the 1-step externality on live-edge samples of
//    the influence graph: a node realizes its assigned bundle's utility
//    when at least one live in-neighbor holds the same bundle (an isolated
//    node realizes only a κ-discounted share);
//  * BDHS-Concave uses the concave externality 1 − (1−p)^{s_v} over the
//    node's 2-hop support set (valid when every edge has the same
//    probability p).
//
// These produce the *benchmark welfare* that bundleGRD is then asked to
// match with only a fraction of n seeds (Fig. 9(a–c)).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "items/params.h"

namespace uic {

/// \brief Result of a BDHS benchmark computation.
struct BdhsResult {
  double welfare = 0.0;
  /// The bundle every node is assigned (the deterministic-utility optimum).
  ItemSet bundle = kEmptyItemSet;
};

/// \brief BDHS-Step: 1-step externality.
///
/// The realized factor for node v is P[some live in-edge] + κ·P[none],
/// computed in closed form from the edge probabilities (equivalently the
/// average over infinitely many live-edge worlds; `MonteCarlo` variant
/// available for validation).
BdhsResult BdhsStep(const Graph& graph, const ItemParams& params,
                    double kappa = 0.0);

/// Monte-Carlo estimate of the same quantity over sampled live-edge worlds
/// (used in tests to validate the closed form).
BdhsResult BdhsStepMonteCarlo(const Graph& graph, const ItemParams& params,
                              double kappa, size_t num_worlds, uint64_t seed);

/// \brief BDHS-Concave: externality 1 − (1−p)^{|support_v|} with the 2-hop
/// in-neighborhood as the support set. Requires a uniform edge
/// probability `p`.
BdhsResult BdhsConcave(const Graph& graph, const ItemParams& params,
                       double p);

}  // namespace uic
