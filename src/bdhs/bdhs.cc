#include "bdhs/bdhs.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/random.h"

namespace uic {

namespace {

/// The unconstrained BDHS assignment under our conversion: with no budget
/// and complementary items, every node is assigned the virtual item
/// (bundle) with the maximum non-negative deterministic utility.
ItemSet BestBundle(const ItemParams& params, double* utility_out) {
  ItemSet best = kEmptyItemSet;
  double best_u = 0.0;
  const ItemSet full = params.full_set();
  for (ItemSet s = 1; s <= full; ++s) {
    const double u = params.DeterministicUtility(s);
    if (u > best_u || (u == best_u && Cardinality(s) > Cardinality(best))) {
      best_u = u;
      best = s;
    }
    if (s == full) break;
  }
  *utility_out = best_u;
  return best;
}

}  // namespace

BdhsResult BdhsStep(const Graph& graph, const ItemParams& params,
                    double kappa) {
  BdhsResult result;
  double bundle_utility = 0.0;
  result.bundle = BestBundle(params, &bundle_utility);
  if (result.bundle == kEmptyItemSet) return result;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    // P[at least one live in-edge] = 1 − Π (1 − p_uv); with universal
    // assignment every live in-neighbor holds the same bundle.
    double none_live = 1.0;
    for (float p : graph.InProbs(v)) none_live *= (1.0 - p);
    const double factor = (1.0 - none_live) + kappa * none_live;
    result.welfare += bundle_utility * factor;
  }
  return result;
}

BdhsResult BdhsStepMonteCarlo(const Graph& graph, const ItemParams& params,
                              double kappa, size_t num_worlds,
                              uint64_t seed) {
  BdhsResult result;
  double bundle_utility = 0.0;
  result.bundle = BestBundle(params, &bundle_utility);
  if (result.bundle == kEmptyItemSet || num_worlds == 0) return result;
  Rng rng(seed);
  double total = 0.0;
  for (size_t w = 0; w < num_worlds; ++w) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      bool live = false;
      for (float p : graph.InProbs(v)) {
        if (rng.NextBernoulli(p)) {
          live = true;
          break;
        }
      }
      // NOTE: short-circuiting changes the number of coins consumed per
      // node but not the Bernoulli event probability.
      total += bundle_utility * (live ? 1.0 : kappa);
    }
  }
  result.welfare = total / static_cast<double>(num_worlds);
  return result;
}

BdhsResult BdhsConcave(const Graph& graph, const ItemParams& params,
                       double p) {
  UIC_CHECK_GT(p, 0.0);
  UIC_CHECK_LE(p, 1.0);
  BdhsResult result;
  double bundle_utility = 0.0;
  result.bundle = BestBundle(params, &bundle_utility);
  if (result.bundle == kEmptyItemSet) return result;

  std::vector<NodeId> support;
  std::unordered_set<NodeId> seen;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    // 2-hop in-neighborhood support set (excluding v itself).
    seen.clear();
    for (NodeId u : graph.InNeighbors(v)) {
      if (u != v) seen.insert(u);
      for (NodeId w : graph.InNeighbors(u)) {
        if (w != v) seen.insert(w);
      }
    }
    const double s = static_cast<double>(seen.size());
    const double factor = 1.0 - std::pow(1.0 - p, s);
    result.welfare += bundle_utility * factor;
  }
  return result;
}

}  // namespace uic
