#include "obs/trace.h"

#include <chrono>
#include <memory>
#include <utility>
#include <vector>

namespace uic {
namespace obs {

namespace internal {

std::atomic<int> g_trace_enabled{0};

struct SpanNode {
  const char* name;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  SpanNode* parent = nullptr;
  std::vector<std::pair<const char*, long long>> attrs;
  std::vector<std::unique_ptr<SpanNode>> children;
};

namespace {

thread_local SpanNode* t_current_span = nullptr;

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendSigned(std::string* out, long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  *out += buf;
}

// Span names and attr keys are compile-time literals (identifier-style),
// so no JSON string escaping is needed.
void SerializeSpan(const SpanNode& node, std::string* out) {
  *out += "{\"name\":\"";
  *out += node.name;
  *out += "\",\"start_us\":";
  AppendUint(out, node.start_us);
  *out += ",\"dur_us\":";
  AppendUint(out, node.dur_us);
  if (!node.attrs.empty()) {
    *out += ",\"attrs\":{";
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      if (i != 0) *out += ',';
      *out += '"';
      *out += node.attrs[i].first;
      *out += "\":";
      AppendSigned(out, node.attrs[i].second);
    }
    *out += '}';
  }
  if (!node.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i != 0) *out += ',';
      SerializeSpan(*node.children[i], out);
    }
    *out += ']';
  }
  *out += '}';
}

}  // namespace
}  // namespace internal

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

bool TraceRecorder::EnableFile(const std::string& path) {
  MutexLock lock(mu_);
  if (file_ != nullptr || buffering_) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  file_ = f;
  epoch_ns_ = internal::SteadyNowNs();
  epoch_ns_relaxed_.store(epoch_ns_, std::memory_order_relaxed);
  internal::g_trace_enabled.store(1, std::memory_order_relaxed);
  return true;
}

bool TraceRecorder::EnableBuffer() {
  MutexLock lock(mu_);
  if (file_ != nullptr || buffering_) return false;
  buffering_ = true;
  buffer_.clear();
  epoch_ns_ = internal::SteadyNowNs();
  epoch_ns_relaxed_.store(epoch_ns_, std::memory_order_relaxed);
  internal::g_trace_enabled.store(1, std::memory_order_relaxed);
  return true;
}

void TraceRecorder::Disable() {
  internal::g_trace_enabled.store(0, std::memory_order_relaxed);
  MutexLock lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  buffering_ = false;
}

std::string TraceRecorder::TakeBuffered() {
  MutexLock lock(mu_);
  std::string out;
  out.swap(buffer_);
  return out;
}

void TraceRecorder::EmitLine(const std::string& line) {
  MutexLock lock(mu_);
  if (file_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  } else if (buffering_) {
    buffer_ += line;
    buffer_ += '\n';
  }
}

uint64_t TraceRecorder::NowRelativeUs() const {
  const uint64_t epoch = epoch_ns_relaxed_.load(std::memory_order_relaxed);
  const uint64_t now = internal::SteadyNowNs();
  return now > epoch ? (now - epoch) / 1000 : 0;
}

TraceSpan::TraceSpan(const char* name) {
  if (!TraceRecorder::Enabled()) return;
  auto* node = new internal::SpanNode();
  node->name = name;
  node->start_us = TraceRecorder::Global().NowRelativeUs();
  node->parent = internal::t_current_span;
  internal::t_current_span = node;
  node_ = node;
}

TraceSpan::~TraceSpan() {
  if (node_ == nullptr) return;
  internal::SpanNode* node = node_;
  const uint64_t end_us = TraceRecorder::Global().NowRelativeUs();
  node->dur_us = end_us > node->start_us ? end_us - node->start_us : 0;
  internal::t_current_span = node->parent;
  if (node->parent != nullptr) {
    node->parent->children.emplace_back(node);
    return;
  }
  std::unique_ptr<internal::SpanNode> root(node);
  if (!TraceRecorder::Enabled()) return;  // sink closed mid-span: drop
  std::string line;
  internal::SerializeSpan(*root, &line);
  TraceRecorder::Global().EmitLine(line);
}

void TraceSpan::SetAttr(const char* key, long long value) {
  if (node_ == nullptr) return;
  node_->attrs.emplace_back(key, value);
}

}  // namespace obs
}  // namespace uic
