// TraceSpan: RAII scope recorder emitting per-request JSONL span trees.
//
// Off by default. The off path is one relaxed atomic load (the failpoint
// fast-path discipline), so spans can be left in hot request paths
// unconditionally. When a sink is enabled, each thread builds its span
// tree locally via a thread_local current-span pointer; only the root
// span's destructor takes the recorder lock, to append one serialized
// JSONL line:
//
//   {"name":"serve.solve","start_us":12,"dur_us":3400,
//    "attrs":{"verb":1},"children":[{...},...]}
//
// `start_us` is measured on the steady clock relative to the moment the
// recorder was enabled — no wall-clock reads, per the determinism contract
// (traces are diagnostic output and never feed back into results).
#pragma once

#include <atomic>
#include <cstdio>
#include <string>

#include "common/annotations.h"
#include "common/mutex.h"

namespace uic {
namespace obs {

namespace internal {
extern std::atomic<int> g_trace_enabled;
struct SpanNode;
}  // namespace internal

/// \brief Process-global trace sink. Enable exactly one sink at a time;
/// spans opened while disabled are free and record nothing.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Route finished root spans to `path` (truncates). False if the file
  /// cannot be opened or a sink is already enabled.
  bool EnableFile(const std::string& path);

  /// Route finished root spans to an in-memory buffer (tests).
  /// False if a sink is already enabled.
  bool EnableBuffer();

  /// Stop recording and flush/close the sink. Spans still open keep
  /// building their trees but are dropped at root completion.
  void Disable();

  static bool Enabled() {
    return internal::g_trace_enabled.load(std::memory_order_relaxed) != 0;
  }

  /// Drain the in-memory buffer (valid with the buffer sink; also after
  /// Disable so tests can read what a finished session recorded).
  std::string TakeBuffered();

 private:
  friend struct internal::SpanNode;
  TraceRecorder() = default;
  void EmitLine(const std::string& line);
  uint64_t NowRelativeUs() const;

  mutable Mutex mu_;
  std::FILE* file_ UIC_GUARDED_BY(mu_) = nullptr;
  bool buffering_ UIC_GUARDED_BY(mu_) = false;
  std::string buffer_ UIC_GUARDED_BY(mu_);
  uint64_t epoch_ns_ UIC_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> epoch_ns_relaxed_{0};  // read on span open, no lock

  friend class TraceSpan;
};

/// \brief RAII span. Construct at scope entry; destruction closes the span
/// and, for root spans, serializes the finished tree to the sink.
///
/// Spans nest per thread: a span opened while another is live on the same
/// thread becomes its child. Do not carry a span across threads.
class TraceSpan {
 public:
  /// `name` must be a string literal (stored by pointer).
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach an integer attribute; `key` must be a string literal.
  /// No-op when tracing is off.
  void SetAttr(const char* key, long long value);

 private:
  internal::SpanNode* node_ = nullptr;
};

}  // namespace obs
}  // namespace uic
