#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace uic {
namespace obs {
namespace {

// Number formatting matches serve/json.h (%lld / %.17g) so every surface
// that prints metric values renders them identically.
std::string FormatInt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string FormatSigned(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// `name{labels} ` or `name{labels,extra} ` or `name ` when both are empty.
std::string SeriesPrefix(const std::string& name, const std::string& labels,
                         const std::string& extra = "") {
  std::string out = name;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
  out += ' ';
  return out;
}

}  // namespace

Histogram::Histogram(const double* bounds, size_t bound_count)
    : bounds_(bounds), bound_count_(bound_count), buckets_(bound_count + 1) {
  for (size_t i = 0; i + 1 < bound_count; ++i) {
    UIC_CHECK_MSG(bounds[i] < bounds[i + 1],
                  "histogram bucket boundaries must be strictly increasing");
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const std::atomic<uint64_t>& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::FindLocked(
    const std::string& name, const std::string& labels) {
  for (const std::unique_ptr<Instrument>& inst : instruments_) {
    if (inst->name == name && inst->labels == labels) return inst.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& labels,
                                          const std::string& help,
                                          bool timing) {
  MutexLock lock(mu_);
  if (Instrument* existing = FindLocked(name, labels)) {
    UIC_CHECK_MSG(existing->kind == Kind::kCounter,
                  "metric '%s' re-registered with a different kind",
                  name.c_str());
    return existing->counter.get();
  }
  auto inst = std::make_unique<Instrument>();
  inst->kind = Kind::kCounter;
  inst->name = name;
  inst->labels = labels;
  inst->help = help;
  inst->timing = timing;
  inst->counter = std::make_unique<Counter>();
  Counter* out = inst->counter.get();
  instruments_.push_back(std::move(inst));
  return out;
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& labels,
                                      const std::string& help) {
  MutexLock lock(mu_);
  if (Instrument* existing = FindLocked(name, labels)) {
    UIC_CHECK_MSG(existing->kind == Kind::kGauge,
                  "metric '%s' re-registered with a different kind",
                  name.c_str());
    return existing->gauge.get();
  }
  auto inst = std::make_unique<Instrument>();
  inst->kind = Kind::kGauge;
  inst->name = name;
  inst->labels = labels;
  inst->help = help;
  inst->gauge = std::make_unique<Gauge>();
  Gauge* out = inst->gauge.get();
  instruments_.push_back(std::move(inst));
  return out;
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              const std::string& labels,
                                              const std::string& help,
                                              const double* bounds,
                                              size_t bound_count,
                                              bool timing) {
  MutexLock lock(mu_);
  if (Instrument* existing = FindLocked(name, labels)) {
    UIC_CHECK_MSG(existing->kind == Kind::kHistogram,
                  "metric '%s' re-registered with a different kind",
                  name.c_str());
    return existing->histogram.get();
  }
  auto inst = std::make_unique<Instrument>();
  inst->kind = Kind::kHistogram;
  inst->name = name;
  inst->labels = labels;
  inst->help = help;
  inst->timing = timing;
  inst->histogram = std::make_unique<Histogram>(bounds, bound_count);
  Histogram* out = inst->histogram.get();
  instruments_.push_back(std::move(inst));
  return out;
}

std::string MetricsRegistry::ExpositionText(bool include_timing) const {
  // Snapshot the instrument pointers under the lock; instruments are
  // append-only so reading their values afterwards is safe.
  std::vector<const Instrument*> snapshot;
  {
    MutexLock lock(mu_);
    snapshot.reserve(instruments_.size());
    for (const std::unique_ptr<Instrument>& inst : instruments_) {
      if (inst->timing && !include_timing) continue;
      snapshot.push_back(inst.get());
    }
  }
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const Instrument* a, const Instrument* b) {
                     if (a->name != b->name) return a->name < b->name;
                     return a->labels < b->labels;
                   });

  std::string out;
  const std::string* last_family = nullptr;
  for (const Instrument* inst : snapshot) {
    if (last_family == nullptr || *last_family != inst->name) {
      out += "# HELP " + inst->name + " " + inst->help + "\n";
      out += "# TYPE " + inst->name + " ";
      switch (inst->kind) {
        case Kind::kCounter:
          out += "counter";
          break;
        case Kind::kGauge:
          out += "gauge";
          break;
        case Kind::kHistogram:
          out += "histogram";
          break;
      }
      out += "\n";
      last_family = &inst->name;
    }
    switch (inst->kind) {
      case Kind::kCounter:
        out += SeriesPrefix(inst->name, inst->labels) +
               FormatInt(inst->counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += SeriesPrefix(inst->name, inst->labels) +
               FormatSigned(inst->gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *inst->histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i <= h.bound_count(); ++i) {
          cumulative += h.BucketValue(i);
          const std::string le =
              i < h.bound_count()
                  ? "le=\"" + FormatDouble(h.bounds()[i]) + "\""
                  : std::string("le=\"+Inf\"");
          out += SeriesPrefix(inst->name + "_bucket", inst->labels, le) +
                 FormatInt(cumulative) + "\n";
        }
        out += SeriesPrefix(inst->name + "_sum", inst->labels) +
               FormatDouble(h.Sum()) + "\n";
        out += SeriesPrefix(inst->name + "_count", inst->labels) +
               FormatInt(cumulative) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace uic
