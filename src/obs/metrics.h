// Process-global metrics registry with lock-cheap instruments.
//
// Three instrument kinds, mirroring the Prometheus data model:
//
//  - `Counter`: monotone event count. The hot path is one relaxed
//    fetch_add on a thread-sharded cache line (same discipline as the
//    failpoint fast path in common/failpoint.h): no lock, no contention
//    between workers that stay on their shard.
//  - `Gauge`: a settable signed level (queue depth, pool size).
//  - `Histogram`: fixed, compile-time bucket boundaries so the text
//    exposition is schema-deterministic — the set of series never depends
//    on the values observed. Buckets are cumulative at exposition time,
//    per the Prometheus `le` convention.
//
// Registration happens once per call site through the `UIC_METRIC_*`
// macros below (enforced by lint rule UIC-L011); the registry hands back a
// stable pointer that remains valid for the life of the process. Series
// that carry wall-time values (histograms, `*_us_total` counters) are
// flagged `timing` and are omitted from the exposition when the caller
// gates timing off — the same `include_timing` contract the serve stats
// verb uses to keep golden transcripts byte-identical.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace uic {
namespace obs {

/// Default latency boundaries (milliseconds), shared by every latency
/// histogram so dashboards can compare like with like.
inline constexpr double kDefaultLatencyBucketsMs[] = {
    0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000};
inline constexpr size_t kDefaultLatencyBucketCount =
    sizeof(kDefaultLatencyBucketsMs) / sizeof(kDefaultLatencyBucketsMs[0]);

/// \brief Monotone counter; one relaxed add per event on a per-thread shard.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards. Relaxed: concurrent readers see a value that is
  /// monotone per shard but not a linearizable cross-shard snapshot.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };

  // Threads are spread round-robin over shards once, at first use, so the
  // steady state is a single uncontended relaxed add.
  static size_t ShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return slot;
  }

  Shard shards_[kShards];
};

/// \brief Signed level that can move both ways (queue depth, lease count).
class Gauge {
 public:
  void Set(long long v) { v_.store(v, std::memory_order_relaxed); }
  void Add(long long n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(long long n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  long long Value() const { return v_.load(std::memory_order_relaxed); }

  /// Raise the gauge to `v` if it is below it (high-water marks).
  void SetMax(long long v) {
    long long cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<long long> v_{0};
};

/// \brief Fixed-boundary histogram. Boundaries must outlive the histogram
/// (the macros pass `kDefaultLatencyBucketsMs`, which is static).
class Histogram {
 public:
  Histogram(const double* bounds, size_t bound_count);

  void Observe(double value) {
    size_t i = 0;
    while (i < bound_count_ && value > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  size_t bound_count() const { return bound_count_; }
  const double* bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (i == bound_count() is +Inf).
  uint64_t BucketValue(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  const double* bounds_;
  size_t bound_count_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bound_count_ + 1 (+Inf)
  std::atomic<double> sum_{0.0};
};

/// \brief Owns every instrument; writes the Prometheus-style exposition.
///
/// `Global()` is the process-wide instance every `UIC_METRIC_*` site
/// registers against. The class stays instantiable so tests can pin the
/// exposition format against a registry whose contents they fully control.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Each Register* call is idempotent on (name, labels): a second call
  /// with the same identity returns the existing instrument (and must ask
  /// for the same kind). `labels` is a pre-rendered Prometheus label body,
  /// e.g. `verb="solve"`, or "" for an unlabelled series.
  Counter* RegisterCounter(const std::string& name, const std::string& labels,
                           const std::string& help, bool timing = false);
  Gauge* RegisterGauge(const std::string& name, const std::string& labels,
                       const std::string& help);
  Histogram* RegisterHistogram(const std::string& name,
                               const std::string& labels,
                               const std::string& help, const double* bounds,
                               size_t bound_count, bool timing = true);

  /// Prometheus text exposition: `# HELP` / `# TYPE` once per family, then
  /// one line per series, families sorted by name and series by label
  /// string — byte-deterministic for a fixed set of registered
  /// instruments. Series flagged `timing` are omitted unless
  /// `include_timing` (so transcripts pinned with timing off never see
  /// wall-clock-dependent values).
  std::string ExpositionText(bool include_timing) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    Kind kind;
    std::string name;
    std::string labels;
    std::string help;
    bool timing = false;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument* FindLocked(const std::string& name, const std::string& labels)
      UIC_REQUIRES(mu_);

  mutable Mutex mu_;
  // Instruments are append-only and never freed, so the pointers handed to
  // call sites stay valid without further locking.
  std::vector<std::unique_ptr<Instrument>> instruments_ UIC_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace uic

// Registration macros — the only sanctioned way to mint an instrument
// (lint rule UIC-L011 flags direct Register* calls outside src/obs/). Each
// expands to a function-local static, so registration runs once per site
// and the hot path is a single pointer deref + relaxed atomic op.
//
//   UIC_METRIC_COUNTER(c, "uic_net_bytes_read_total", "Bytes read");
//   c.Add(n);
#define UIC_METRIC_COUNTER(var, metric_name, metric_help)                  \
  static ::uic::obs::Counter& var =                                        \
      *::uic::obs::MetricsRegistry::Global().RegisterCounter(              \
          metric_name, "", metric_help, false)

#define UIC_METRIC_COUNTER_LABELED(var, metric_name, metric_labels,        \
                                   metric_help)                            \
  static ::uic::obs::Counter& var =                                        \
      *::uic::obs::MetricsRegistry::Global().RegisterCounter(              \
          metric_name, metric_labels, metric_help, false)

// Timing-valued counter (e.g. a `*_us_total` wall-time sum): exported only
// when the exposition is asked to include timing.
#define UIC_METRIC_TIMING_COUNTER(var, metric_name, metric_labels,         \
                                  metric_help)                             \
  static ::uic::obs::Counter& var =                                        \
      *::uic::obs::MetricsRegistry::Global().RegisterCounter(              \
          metric_name, metric_labels, metric_help, true)

#define UIC_METRIC_GAUGE(var, metric_name, metric_help)                    \
  static ::uic::obs::Gauge& var =                                          \
      *::uic::obs::MetricsRegistry::Global().RegisterGauge(metric_name,    \
                                                           "", metric_help)

// Latency histogram in milliseconds over the shared default boundaries;
// always timing-gated.
#define UIC_METRIC_HISTOGRAM_MS(var, metric_name, metric_labels,           \
                                metric_help)                               \
  static ::uic::obs::Histogram& var =                                      \
      *::uic::obs::MetricsRegistry::Global().RegisterHistogram(            \
          metric_name, metric_labels, metric_help,                         \
          ::uic::obs::kDefaultLatencyBucketsMs,                            \
          ::uic::obs::kDefaultLatencyBucketCount, true)
