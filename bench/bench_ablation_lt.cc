// Ablation: triggering-model generality (§5) — bundleGRD under Linear
// Threshold vs Independent Cascade.
//
// The UIC results carry over to any triggering model; this bench runs the
// whole pipeline (PRIMA sampling, allocation, welfare estimation) under
// both IC and LT, and cross-evaluates the allocations: IC-selected seeds
// under LT welfare and vice versa. Matched selection/evaluation should
// win its own column.
#include <cstdio>

#include "common/table.h"
#include "diffusion/lt_model.h"
#include "diffusion/uic_model.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 500));
  const double eps = flags.GetDouble("eps", 0.5);

  std::printf("== Ablation: IC vs LT (triggering generality), "
              "Douban-Movie-like scale %.2f ==\n",
              scale);
  const Graph graph = MakeDoubanMovieLike(/*seed=*/20190630, scale);
  std::printf("%s\n", graph.Summary().c_str());
  const ItemParams params = MakeTwoItemConfig12();

  TablePrinter table({"budget", "IC-sel/IC-eval", "LT-sel/IC-eval",
                      "LT-sel/LT-eval", "IC-sel/LT-eval", "IC time(s)",
                      "LT time(s)"});
  SolverOptions options;
  options.eps = eps;
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  uint64_t seed = 131;
  for (uint32_t k = 10; k <= 50; k += 20) {
    problem.budgets = {k, k};
    options.seed = seed;
    problem.model = DiffusionModel::kIndependentCascade;
    const AllocationResult ic_sel = MustSolve("bundle-grd", problem, options);
    problem.model = DiffusionModel::kLinearThreshold;
    const AllocationResult lt_sel = MustSolve("bundle-grd", problem, options);
    const double ic_ic =
        EstimateWelfare(graph, ic_sel.allocation, params, mc, 7).welfare;
    const double lt_ic =
        EstimateWelfare(graph, lt_sel.allocation, params, mc, 7).welfare;
    const double lt_lt =
        EstimateWelfareLt(graph, lt_sel.allocation, params, mc, 7).welfare;
    const double ic_lt =
        EstimateWelfareLt(graph, ic_sel.allocation, params, mc, 7).welfare;
    table.AddRow({"k=" + std::to_string(k), TablePrinter::Num(ic_ic, 1),
                  TablePrinter::Num(lt_ic, 1), TablePrinter::Num(lt_lt, 1),
                  TablePrinter::Num(ic_lt, 1),
                  TablePrinter::Num(ic_sel.seconds, 3),
                  TablePrinter::Num(lt_sel.seconds, 3)});
    ++seed;
  }
  table.Print();
  return 0;
}
