// Ablation: the power of bundling — how welfare grows with the number of
// complementary items co-located on the same seed prefix.
//
// Under the cone configuration (a core item plus accessories), we fix the
// seed prefix and allocate only the first j items (j = 1..5) to it. The
// welfare jump at j where the bundle first turns profitable, and the
// superlinear growth afterwards, is the mechanism behind bundleGRD's
// advantage (§4.2.1: "the power of bundling").
#include <cstdio>

#include "common/table.h"
#include "diffusion/uic_model.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"
#include "welfare/block_accounting.h"

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 400));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("budget", 50));

  std::printf("== Ablation: welfare vs bundle size "
              "(real PlayStation params, Douban-Movie-like scale %.2f, "
              "k=%u seeds) ==\n",
              scale, k);
  const Graph graph = MakeDoubanMovieLike(/*seed=*/20190630, scale);
  std::printf("%s\n", graph.Summary().c_str());
  const ItemParams params = MakeRealPlaystationParams();
  const auto& names = RealPlaystationItemNames();

  // One shared ranking; items join the bundle in order ps, c, g1, g2, g3.
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  problem.budgets = {k, k, k, k, k};
  SolverOptions options;
  options.seed = 151;
  const AllocationResult ranking_source =
      MustSolve("bundle-grd", problem, options);

  TablePrinter table({"bundle", "det. utility", "welfare", "adopters"});
  for (ItemId j = 1; j <= 5; ++j) {
    Allocation alloc;
    const ItemSet bundle = FullItemSet(j);
    for (uint32_t r = 0; r < k && r < ranking_source.ranking.size(); ++r) {
      alloc.Add(ranking_source.ranking[r], bundle);
    }
    const WelfareEstimate w =
        EstimateWelfare(graph, alloc, params, mc, 777);
    std::string label;
    for (ItemId i = 0; i < j; ++i) {
      label += (i ? "+" : "") + names[i];
    }
    table.AddRow({label,
                  TablePrinter::Num(params.DeterministicUtility(bundle), 1),
                  TablePrinter::Num(w.welfare, 1),
                  TablePrinter::Num(w.avg_adopters, 1)});
  }
  table.Print();

  std::printf("\nblock structure of the full configuration:\n");
  const UtilityTable det(params);
  const BlockDecomposition d = GenerateBlocks(det, {k, k, k, k, k});
  for (size_t i = 0; i < d.num_blocks(); ++i) {
    std::printf("  block %zu: %s  Δ=%+.1f\n", i + 1,
                ItemSetToString(d.blocks[i]).c_str(), d.deltas[i]);
  }
  return 0;
}
