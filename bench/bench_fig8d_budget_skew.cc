// Fig. 8(d): effect of splitting the same total budget (500) across the
// five real PlayStation items under three distributions.
//
//   uniform        — every item gets 100
//   large skew     — ps gets 82%, the rest split the remaining 18%
//   moderate skew  — [150, 150, 100, 50, 50]
//
// Expected shape (paper): welfare uniform > moderate > large skew; running
// time uniform < moderate < large skew (skew inflates the max budget).
//
// The three splits run as one warm SweepRunner sweep: PRIMA's pools for
// the smaller max-budgets are prefixes of the large-skew point's pool, so
// the whole figure costs about one 410-budget solve.
#include <cstdio>

#include "common/check.h"
#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/sweep.h"

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 300));
  const double eps = flags.GetDouble("eps", 0.5);
  const uint32_t total = static_cast<uint32_t>(flags.GetInt("total", 500));

  std::printf("== Fig. 8(d): budget skew, real PlayStation parameters "
              "(Twitter-like, scale %.2f, total %u) ==\n",
              scale, total);
  const Graph graph = MakeTwitterLike(/*seed=*/20190630, scale);
  std::printf("%s\n", graph.Summary().c_str());

  const uint32_t u = total / 5;
  const uint32_t big = total * 82 / 100;
  const uint32_t small = (total - big) / 4;
  const std::vector<std::string> names = {"Uniform", "Large skew",
                                          "Moderate skew"};

  SweepSpec spec;
  spec.graph = &graph;
  spec.params = MakeRealPlaystationParams();
  spec.algorithms = {"bundle-grd"};
  spec.budget_points = {
      {u, u, u, u, u},
      {big, small, small, small, small},
      {total * 30 / 100, total * 30 / 100, total * 20 / 100,
       total * 10 / 100, total * 10 / 100},
  };
  spec.options.eps = eps;
  spec.options.seed = 101;
  spec.eval_simulations = mc;
  spec.eval_seed = 999;

  SweepRunner runner(spec);
  Result<SweepReport> report = runner.Run();
  UIC_CHECK_MSG(report.ok(), "fig8d sweep failed: %s",
                report.status().ToString().c_str());

  TablePrinter table({"distribution", "welfare", "time(s)", "max budget",
                      "rr sampled"});
  for (size_t p = 0; p < spec.budget_points.size(); ++p) {
    const SweepRow& row = report.value().rows[p];
    uint32_t bmax = 0;
    for (uint32_t b : row.budgets) bmax = std::max(bmax, b);
    table.AddRow({names[p], TablePrinter::Num(row.welfare, 1),
                  TablePrinter::Num(row.seconds(), 3), std::to_string(bmax),
                  TablePrinter::Int(
                      static_cast<long long>(row.rr_sets_sampled))});
  }
  table.Print();
  std::printf("rr sets consumed %zu, sampled %zu (warm sweep)\n",
              report.value().total_rr_sets, report.value().total_rr_sampled);
  return 0;
}
