// Fig. 8(d): effect of splitting the same total budget (500) across the
// five real PlayStation items under three distributions.
//
//   uniform        — every item gets 100
//   large skew     — ps gets 82%, the rest split the remaining 18%
//   moderate skew  — [150, 150, 100, 50, 50]
//
// Expected shape (paper): welfare uniform > moderate > large skew; running
// time uniform < moderate < large skew (skew inflates the max budget).
#include <cstdio>

#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 300));
  const double eps = flags.GetDouble("eps", 0.5);
  const uint32_t total = static_cast<uint32_t>(flags.GetInt("total", 500));

  std::printf("== Fig. 8(d): budget skew, real PlayStation parameters "
              "(Twitter-like, scale %.2f, total %u) ==\n",
              scale, total);
  const Graph graph = MakeTwitterLike(/*seed=*/20190630, scale);
  std::printf("%s\n", graph.Summary().c_str());
  const ItemParams params = MakeRealPlaystationParams();

  struct Split {
    std::string name;
    std::vector<uint32_t> budgets;
  };
  const uint32_t u = total / 5;
  const uint32_t big = total * 82 / 100;
  const uint32_t small = (total - big) / 4;
  const std::vector<Split> splits = {
      {"Uniform", {u, u, u, u, u}},
      {"Large skew", {big, small, small, small, small}},
      {"Moderate skew",
       {total * 30 / 100, total * 30 / 100, total * 20 / 100,
        total * 10 / 100, total * 10 / 100}},
  };

  TablePrinter table({"distribution", "welfare", "time(s)", "max budget"});
  SolverOptions options;
  options.eps = eps;
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  uint64_t seed = 101;
  for (const Split& split : splits) {
    problem.budgets = split.budgets;
    options.seed = seed;
    const AllocationResult grd = MustSolve("bundle-grd", problem, options);
    const double w =
        EstimateWelfare(graph, grd.allocation, params, mc, 999).welfare;
    uint32_t bmax = 0;
    for (uint32_t b : split.budgets) bmax = std::max(bmax, b);
    table.AddRow({split.name, TablePrinter::Num(w, 1),
                  TablePrinter::Num(grd.seconds, 3),
                  std::to_string(bmax)});
    ++seed;
  }
  table.Print();
  return 0;
}
