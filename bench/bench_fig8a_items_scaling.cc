// Fig. 8(a): running time vs. number of items (Configuration 5, budget 50
// per item, Twitter network).
//
// Expected shape (paper): bundleGRD's time is flat in the number of items
// (one PRIMA call at the max budget); item-disj grows (one IMM call at
// budget k*s); bundle-disj grows fastest (s IMM calls at budget k) —
// at 10 items bundleGRD is ~8x faster than bundle-disj and ~2.5x faster
// than item-disj.
#include <cstdio>

#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("budget", 50));
  const double eps = flags.GetDouble("eps", 0.5);
  const int max_items = static_cast<int>(flags.GetInt("max-items", 10));

  std::printf("== Fig. 8(a): running time vs #items "
              "(Config 5, k=%u per item, Twitter-like scale %.2f) ==\n",
              k, scale);
  const Graph graph = MakeTwitterLike(/*seed=*/20190630, scale);
  std::printf("%s\n", graph.Summary().c_str());

  TablePrinter table({"#items", "bundleGRD(s)", "item-disj(s)",
                      "bundle-disj(s)"});
  SolverOptions options;
  options.eps = eps;
  options.seed = 81;
  for (int s = 1; s <= max_items; ++s) {
    WelfareProblem problem;
    problem.graph = &graph;
    problem.params = MakeAdditiveConfig5(static_cast<ItemId>(s));
    problem.budgets.assign(s, k);
    const AllocationResult grd = MustSolve("bundle-grd", problem, options);
    const AllocationResult idisj = MustSolve("item-disj", problem, options);
    const AllocationResult bdisj =
        MustSolve("bundle-disj", problem, options);
    table.AddRow({std::to_string(s), TablePrinter::Num(grd.seconds, 3),
                  TablePrinter::Num(idisj.seconds, 3),
                  TablePrinter::Num(bdisj.seconds, 3)});
  }
  table.Print();
  return 0;
}
