// Fig. 6: number of RR sets generated (the memory footprint proxy) by each
// algorithm under Configuration 1 on four networks.
//
// Expected shape (paper): RR-SIM+ and RR-CIM (TIM-style bound) generate
// several times more RR sets than the IMM-based bundleGRD / item-disj /
// bundle-disj.
#include <cstdio>

#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"

namespace uic {
namespace {

void RunNetwork(const std::string& name, const Graph& graph,
                const ItemParams& params, bool run_comic, double eps) {
  std::printf("\n-- %s: %s --\n", name.c_str(), graph.Summary().c_str());
  TablePrinter table({"budget", "bundleGRD", "RR-SIM+", "RR-CIM",
                      "item-disj", "bundle-disj"});
  SolverOptions options;
  options.eps = eps;
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  uint64_t seed = 41;
  for (uint32_t k = 10; k <= 50; k += 20) {
    problem.budgets = {k, k};
    options.seed = seed;
    const AllocationResult grd = MustSolve("bundle-grd", problem, options);
    const AllocationResult idisj = MustSolve("item-disj", problem, options);
    const AllocationResult bdisj =
        MustSolve("bundle-disj", problem, options);
    std::string sim_sets = "skipped", cim_sets = "skipped";
    if (run_comic) {
      const AllocationResult sim_plus =
          MustSolve("rr-sim+", problem, options);
      const AllocationResult cim = MustSolve("rr-cim", problem, options);
      sim_sets = TablePrinter::Int(static_cast<long long>(sim_plus.num_rr_sets));
      cim_sets = TablePrinter::Int(static_cast<long long>(cim.num_rr_sets));
    }
    table.AddRow({"k=" + std::to_string(k),
                  TablePrinter::Int(static_cast<long long>(grd.num_rr_sets)),
                  sim_sets, cim_sets,
                  TablePrinter::Int(static_cast<long long>(idisj.num_rr_sets)),
                  TablePrinter::Int(static_cast<long long>(bdisj.num_rr_sets))});
    ++seed;
  }
  table.Print();
}

}  // namespace
}  // namespace uic

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const double eps = flags.GetDouble("eps", 0.5);

  std::printf("== Fig. 6: #RR sets generated, Configuration 1 "
              "(scale %.2f) ==\n",
              scale);
  const ItemParams params = MakeTwoItemConfig12();
  RunNetwork("(a) Flixster", MakeFlixsterLike(1, scale), params, true, eps);
  RunNetwork("(b) Douban-Book", MakeDoubanBookLike(2, scale), params, true,
             eps);
  RunNetwork("(c) Douban-Movie", MakeDoubanMovieLike(3, scale), params, true,
             eps);
  RunNetwork("(d) Twitter", MakeTwitterLike(4, scale), params, false, eps);
  return 0;
}
