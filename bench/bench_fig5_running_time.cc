// Fig. 5: running time of the five algorithms under Configuration 1 on
// four networks (Flixster, Douban-Book, Douban-Movie, Twitter).
//
// Expected shape (paper): bundleGRD == bundle-disj here (equivalent under
// Config 1) and both are fastest; item-disj ~1.5x slower (one IMM call at
// the summed budget); RR-SIM+ and RR-CIM are orders of magnitude slower
// and time out on Twitter (they are skipped there, as in the paper).
#include <cstdio>

#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"

namespace uic {
namespace {

void RunNetwork(const std::string& name, const Graph& graph,
                const ItemParams& params, bool run_comic, double eps) {
  std::printf("\n-- %s: %s --\n", name.c_str(), graph.Summary().c_str());
  TablePrinter table({"budget", "bundleGRD(ms)", "RR-SIM+(ms)", "RR-CIM(ms)",
                      "item-disj(ms)", "bundle-disj(ms)"});
  SolverOptions options;
  options.eps = eps;
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  uint64_t seed = 31;
  for (uint32_t k = 10; k <= 50; k += 20) {
    problem.budgets = {k, k};
    options.seed = seed;
    const AllocationResult grd = MustSolve("bundle-grd", problem, options);
    const AllocationResult idisj = MustSolve("item-disj", problem, options);
    const AllocationResult bdisj =
        MustSolve("bundle-disj", problem, options);
    std::string sim_ms = "skipped", cim_ms = "skipped";
    if (run_comic) {
      const AllocationResult sim_plus =
          MustSolve("rr-sim+", problem, options);
      const AllocationResult cim = MustSolve("rr-cim", problem, options);
      sim_ms = TablePrinter::Num(sim_plus.seconds * 1e3, 0);
      cim_ms = TablePrinter::Num(cim.seconds * 1e3, 0);
    }
    table.AddRow({"k=" + std::to_string(k),
                  TablePrinter::Num(grd.seconds * 1e3, 0), sim_ms, cim_ms,
                  TablePrinter::Num(idisj.seconds * 1e3, 0),
                  TablePrinter::Num(bdisj.seconds * 1e3, 0)});
    ++seed;
  }
  table.Print();
}

}  // namespace
}  // namespace uic

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const double eps = flags.GetDouble("eps", 0.5);
  const bool comic_on_twitter = flags.GetBool("comic-on-twitter");

  std::printf("== Fig. 5: running time, Configuration 1 (scale %.2f) ==\n",
              scale);
  const ItemParams params = MakeTwoItemConfig12();
  RunNetwork("(a) Flixster", MakeFlixsterLike(1, scale), params, true, eps);
  RunNetwork("(b) Douban-Book", MakeDoubanBookLike(2, scale), params, true,
             eps);
  RunNetwork("(c) Douban-Movie", MakeDoubanMovieLike(3, scale), params, true,
             eps);
  // The paper's RR-SIM+/RR-CIM timed out (>6h) on Twitter; we skip them by
  // default to mirror the figure (override with --comic-on-twitter).
  RunNetwork("(d) Twitter", MakeTwitterLike(4, scale), params,
             comic_on_twitter, eps);
  return 0;
}
