// Fig. 5: running time of the five algorithms under Configuration 1 on
// four networks (Flixster, Douban-Book, Douban-Movie, Twitter).
//
// Expected shape (paper): bundleGRD == bundle-disj here (equivalent under
// Config 1) and both are fastest; item-disj ~1.5x slower (one IMM call at
// the summed budget); RR-SIM+ and RR-CIM are orders of magnitude slower
// and time out on Twitter (they are skipped there, as in the paper).
//
// Each network runs as one warm SweepRunner sweep; the reported times are
// therefore *sweep* times — the first budget point pays for the shared
// pool and later points ride on it, which is exactly the regime the paper
// sweeps its figures in. Pass --cold for cold per-point timings.
#include <cstdio>

#include "common/check.h"
#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/sweep.h"

namespace uic {
namespace {

void RunNetwork(const std::string& name, const Graph& graph,
                const ItemParams& params, bool run_comic, double eps,
                bool warm) {
  std::printf("\n-- %s: %s --\n", name.c_str(), graph.Summary().c_str());

  SweepSpec spec;
  spec.graph = &graph;
  spec.params = params;
  spec.algorithms = {"bundle-grd", "item-disj", "bundle-disj"};
  if (run_comic) {
    spec.algorithms.push_back("rr-sim+");
    spec.algorithms.push_back("rr-cim");
  }
  for (uint32_t k = 10; k <= 50; k += 20) spec.budget_points.push_back({k, k});
  spec.options.eps = eps;
  spec.options.seed = 31;
  spec.eval_simulations = 0;  // Fig. 5 reports running time only
  spec.warm = warm;

  SweepRunner runner(spec);
  Result<SweepReport> report = runner.Run();
  UIC_CHECK_MSG(report.ok(), "fig5 sweep failed: %s",
                report.status().ToString().c_str());

  auto cell = [&](size_t algorithm, size_t point) -> std::string {
    if (algorithm >= spec.algorithms.size()) return "skipped";
    const SweepRow& row =
        report.value().rows[algorithm * spec.budget_points.size() + point];
    return TablePrinter::Num(row.seconds() * 1e3, 0);
  };
  TablePrinter table({"budget", "bundleGRD(ms)", "RR-SIM+(ms)", "RR-CIM(ms)",
                      "item-disj(ms)", "bundle-disj(ms)"});
  for (size_t p = 0; p < spec.budget_points.size(); ++p) {
    table.AddRow({"k=" + std::to_string(spec.budget_points[p][0]),
                  cell(0, p), run_comic ? cell(3, p) : "skipped",
                  run_comic ? cell(4, p) : "skipped", cell(1, p),
                  cell(2, p)});
  }
  table.Print();
  std::printf("rr sets consumed %zu, sampled %zu (%s sweep)\n",
              report.value().total_rr_sets, report.value().total_rr_sampled,
              warm ? "warm" : "cold");
}

}  // namespace
}  // namespace uic

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const double eps = flags.GetDouble("eps", 0.5);
  const bool comic_on_twitter = flags.GetBool("comic-on-twitter");
  const bool warm = !flags.GetBool("cold");

  std::printf("== Fig. 5: running time, Configuration 1 (scale %.2f) ==\n",
              scale);
  const ItemParams params = MakeTwoItemConfig12();
  RunNetwork("(a) Flixster", MakeFlixsterLike(1, scale), params, true, eps,
             warm);
  RunNetwork("(b) Douban-Book", MakeDoubanBookLike(2, scale), params, true,
             eps, warm);
  RunNetwork("(c) Douban-Movie", MakeDoubanMovieLike(3, scale), params, true,
             eps, warm);
  // The paper's RR-SIM+/RR-CIM timed out (>6h) on Twitter; we skip them by
  // default to mirror the figure (override with --comic-on-twitter).
  RunNetwork("(d) Twitter", MakeTwitterLike(4, scale), params,
             comic_on_twitter, eps, warm);
  return 0;
}
