// Fig. 8(b,c): welfare and running time with the real (eBay-learned)
// PlayStation parameters of Table 5, on the Twitter network.
//
// The total budget (100..500) is split 30/30/20/10/10 across
// {ps, c, g1, g2, g3}. item-disj is omitted (as in the paper): every
// singleton has negative deterministic utility, so its welfare is 0.
//
// Expected shape (paper): bundleGRD beats bundle-disj at every budget, by
// >2x at the high end (b); and is ~1.5x faster (c).
#include <cstdio>

#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 300));
  const double eps = flags.GetDouble("eps", 0.5);

  std::printf("== Fig. 8(b,c): real PlayStation parameters "
              "(Twitter-like, scale %.2f) ==\n",
              scale);
  const Graph graph = MakeTwitterLike(/*seed=*/20190630, scale);
  std::printf("%s\n", graph.Summary().c_str());
  const ItemParams params = MakeRealPlaystationParams();

  TablePrinter table({"total budget", "bundleGRD welfare",
                      "bundle-disj welfare", "bundleGRD(s)",
                      "bundle-disj(s)"});
  SolverOptions options;
  options.eps = eps;
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  uint64_t seed = 91;
  for (uint32_t total = 100; total <= 500; total += 100) {
    // 30% ps, 30% c, 20% g1, 10% g2, 10% g3.
    problem.budgets = {total * 30 / 100, total * 30 / 100, total * 20 / 100,
                       total * 10 / 100, total * 10 / 100};
    options.seed = seed;
    const AllocationResult grd = MustSolve("bundle-grd", problem, options);
    const AllocationResult bdisj =
        MustSolve("bundle-disj", problem, options);
    const double w_grd =
        EstimateWelfare(graph, grd.allocation, params, mc, 888).welfare;
    const double w_bdisj =
        EstimateWelfare(graph, bdisj.allocation, params, mc, 888).welfare;
    table.AddRow({std::to_string(total), TablePrinter::Num(w_grd, 1),
                  TablePrinter::Num(w_bdisj, 1),
                  TablePrinter::Num(grd.seconds, 3),
                  TablePrinter::Num(bdisj.seconds, 3)});
    ++seed;
  }
  table.Print();
  return 0;
}
