// Fig. 4: expected social welfare of the five algorithms on the four
// two-item configurations of Table 3 (Douban-Movie network).
//
// Series reproduced: bundleGRD, RR-SIM+, RR-CIM, item-disj, bundle-disj.
//   (a) Config 1: uniform budgets, both items break-even alone, +1 jointly
//   (b) Config 2: non-uniform budgets, same Param as Config 1
//   (c) Config 3: uniform budgets, i2 negative alone
//   (d) Config 4: non-uniform budgets, same Param as Config 3
//
// Expected shape (paper): bundleGRD, RR-SIM+, RR-CIM reach similar welfare
// (the Com-IC algorithms end up bundling the same seeds); the disjoint
// baselines trail by up to ~5x.
//
// Each configuration runs as ONE SweepRunner sweep (exp/sweep.h): the five
// algorithms share a warm RR pool across the budget points, so the table
// costs roughly one max-budget pool per stream group instead of a cold
// pool per cell — with cell results bit-identical to cold runs.
#include <cstdio>

#include "common/check.h"
#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/sweep.h"
#include "items/gap.h"

namespace uic {
namespace {

const std::vector<std::string> kAlgorithms = {
    "bundle-grd", "rr-sim+", "rr-cim", "item-disj", "bundle-disj"};

void RunConfig(const Graph& graph, const ItemParams& params,
               const std::string& title, bool uniform, size_t mc,
               double eps) {
  std::printf("\n-- %s --\n", title.c_str());
  const TwoItemGap gap = DeriveTwoItemGap(params);
  std::printf("GAP: q1|0=%.2f q2|0=%.2f q1|2=%.2f q2|1=%.2f\n", gap.q1_none,
              gap.q2_none, gap.q1_given2, gap.q2_given1);

  SweepSpec spec;
  spec.graph = &graph;
  spec.params = params;
  spec.algorithms = kAlgorithms;
  if (uniform) {
    for (uint32_t k = 10; k <= 50; k += 20) {
      spec.budget_points.push_back({k, k});
    }
  } else {
    for (uint32_t k2 = 30; k2 <= 110; k2 += 40) {
      spec.budget_points.push_back({70, k2});
    }
  }
  spec.options.eps = eps;
  spec.options.seed = 11;
  spec.eval_simulations = mc;
  spec.eval_seed = 555;

  SweepRunner runner(spec);
  Result<SweepReport> report = runner.Run();
  UIC_CHECK_MSG(report.ok(), "fig4 sweep failed: %s",
                report.status().ToString().c_str());

  // Rows come back algorithm-outer, budget-point-inner; pivot to the
  // figure's budget-per-row layout.
  const size_t num_points = spec.budget_points.size();
  TablePrinter table({"budget", "bundleGRD", "RR-SIM+", "RR-CIM",
                      "item-disj", "bundle-disj"});
  for (size_t p = 0; p < num_points; ++p) {
    const auto& budgets = spec.budget_points[p];
    std::vector<std::string> row = {
        (uniform ? "k=" : "b2=") +
        std::to_string(uniform ? budgets[0] : budgets[1])};
    for (size_t a = 0; a < kAlgorithms.size(); ++a) {
      row.push_back(TablePrinter::Num(
          report.value().rows[a * num_points + p].welfare, 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("rr sets consumed %zu, sampled %zu (warm sweep)\n",
              report.value().total_rr_sets, report.value().total_rr_sampled);
}

}  // namespace
}  // namespace uic

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 400));
  const double eps = flags.GetDouble("eps", 0.5);

  std::printf("== Fig. 4: welfare on two-item configurations "
              "(Douban-Movie-like, scale %.2f, mc %zu) ==\n",
              scale, mc);
  const Graph graph = MakeDoubanMovieLike(/*seed=*/20190630, scale);
  std::printf("%s\n", graph.Summary().c_str());

  const ItemParams params12 = MakeTwoItemConfig12();
  const ItemParams params34 = MakeTwoItemConfig34();
  RunConfig(graph, params12, "(a) Configuration 1 (uniform budgets)", true,
            mc, eps);
  RunConfig(graph, params12, "(b) Configuration 2 (non-uniform budgets)",
            false, mc, eps);
  RunConfig(graph, params34, "(c) Configuration 3 (uniform budgets)", true,
            mc, eps);
  RunConfig(graph, params34, "(d) Configuration 4 (non-uniform budgets)",
            false, mc, eps);
  return 0;
}
