// Fig. 4: expected social welfare of the five algorithms on the four
// two-item configurations of Table 3 (Douban-Movie network).
//
// Series reproduced: bundleGRD, RR-SIM+, RR-CIM, item-disj, bundle-disj.
//   (a) Config 1: uniform budgets, both items break-even alone, +1 jointly
//   (b) Config 2: non-uniform budgets, same Param as Config 1
//   (c) Config 3: uniform budgets, i2 negative alone
//   (d) Config 4: non-uniform budgets, same Param as Config 3
//
// Expected shape (paper): bundleGRD, RR-SIM+, RR-CIM reach similar welfare
// (the Com-IC algorithms end up bundling the same seeds); the disjoint
// baselines trail by up to ~5x.
#include <cstdio>

#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"
#include "items/gap.h"

namespace uic {
namespace {

void RunConfig(const Graph& graph, const ItemParams& params,
               const std::string& title, bool uniform, size_t mc,
               double eps) {
  std::printf("\n-- %s --\n", title.c_str());
  const TwoItemGap gap = DeriveTwoItemGap(params);
  std::printf("GAP: q1|0=%.2f q2|0=%.2f q1|2=%.2f q2|1=%.2f\n", gap.q1_none,
              gap.q2_none, gap.q1_given2, gap.q2_given1);

  TablePrinter table({"budget", "bundleGRD", "RR-SIM+", "RR-CIM",
                      "item-disj", "bundle-disj"});
  std::vector<std::pair<uint32_t, uint32_t>> budget_points;
  if (uniform) {
    for (uint32_t k = 10; k <= 50; k += 20) budget_points.push_back({k, k});
  } else {
    for (uint32_t k2 = 30; k2 <= 110; k2 += 40) {
      budget_points.push_back({70, k2});
    }
  }

  SolverOptions options;
  options.eps = eps;
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  uint64_t seed = 11;
  for (auto [b1, b2] : budget_points) {
    problem.budgets = {b1, b2};
    options.seed = seed;
    const AllocationResult grd = MustSolve("bundle-grd", problem, options);
    const AllocationResult sim_plus = MustSolve("rr-sim+", problem, options);
    const AllocationResult cim = MustSolve("rr-cim", problem, options);
    const AllocationResult idisj = MustSolve("item-disj", problem, options);
    const AllocationResult bdisj = MustSolve("bundle-disj", problem, options);

    auto welfare = [&](const AllocationResult& r) {
      return EstimateWelfare(graph, r.allocation, params, mc, 555).welfare;
    };
    table.AddRow({(uniform ? "k=" : "b2=") +
                      std::to_string(uniform ? b1 : b2),
                  TablePrinter::Num(welfare(grd), 1),
                  TablePrinter::Num(welfare(sim_plus), 1),
                  TablePrinter::Num(welfare(cim), 1),
                  TablePrinter::Num(welfare(idisj), 1),
                  TablePrinter::Num(welfare(bdisj), 1)});
    ++seed;
  }
  table.Print();
}

}  // namespace
}  // namespace uic

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 400));
  const double eps = flags.GetDouble("eps", 0.5);

  std::printf("== Fig. 4: welfare on two-item configurations "
              "(Douban-Movie-like, scale %.2f, mc %zu) ==\n",
              scale, mc);
  const Graph graph = MakeDoubanMovieLike(/*seed=*/20190630, scale);
  std::printf("%s\n", graph.Summary().c_str());

  const ItemParams params12 = MakeTwoItemConfig12();
  const ItemParams params34 = MakeTwoItemConfig34();
  RunConfig(graph, params12, "(a) Configuration 1 (uniform budgets)", true,
            mc, eps);
  RunConfig(graph, params12, "(b) Configuration 2 (non-uniform budgets)",
            false, mc, eps);
  RunConfig(graph, params34, "(c) Configuration 3 (uniform budgets)", true,
            mc, eps);
  RunConfig(graph, params34, "(d) Configuration 4 (non-uniform budgets)",
            false, mc, eps);
  return 0;
}
