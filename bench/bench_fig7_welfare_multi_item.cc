// Fig. 7: expected social welfare with more than two items on the Twitter
// network, Configurations 5–8 of Table 4.
//
// Series: bundleGRD, item-disj, bundle-disj (RR-SIM+/RR-CIM cannot handle
// more than two items). Budget split: uniform for Configs 5 and 8; for 6
// and 7 the max budget is 20% of the total, the min 2%, the rest uniform
// (with the core item at the max budget for 6 and the min for 7).
//
// Expected shape (paper): bundleGRD >= both baselines everywhere, up to
// ~4x; under Config 5 (additive) and Config 6 the algorithms are closest.
#include <cstdio>
#include <numeric>

#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"

namespace uic {
namespace {

constexpr ItemId kNumItems = 5;

std::vector<uint32_t> SplitBudget(uint32_t total, bool uniform,
                                  ItemId max_item) {
  std::vector<uint32_t> budgets(kNumItems);
  if (uniform) {
    for (auto& b : budgets) b = total / kNumItems;
    return budgets;
  }
  // Max budget 20%, min 2%, remainder split uniformly; the designated
  // item takes the max, the last non-designated item the min.
  const uint32_t bmax = total / 5;          // 20%
  const uint32_t bmin = total / 50;         // 2%
  const uint32_t rest = (total - bmax - bmin) / (kNumItems - 2);
  ItemId min_item = kNumItems - 1;
  if (min_item == max_item) min_item = kNumItems - 2;
  for (ItemId i = 0; i < kNumItems; ++i) {
    budgets[i] = (i == max_item) ? bmax : (i == min_item) ? bmin : rest;
  }
  return budgets;
}

void RunConfig(const Graph& graph, const ItemParams& params,
               const std::string& title, bool uniform, ItemId max_item,
               size_t mc, double eps) {
  std::printf("\n-- %s --\n", title.c_str());
  TablePrinter table(
      {"total budget", "bundleGRD", "item-disj", "bundle-disj"});
  SolverOptions options;
  options.eps = eps;
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  uint64_t seed = 71;
  for (uint32_t total = 100; total <= 500; total += 200) {
    problem.budgets = SplitBudget(total, uniform, max_item);
    options.seed = seed;
    const AllocationResult grd = MustSolve("bundle-grd", problem, options);
    const AllocationResult idisj = MustSolve("item-disj", problem, options);
    const AllocationResult bdisj =
        MustSolve("bundle-disj", problem, options);
    auto welfare = [&](const AllocationResult& r) {
      return EstimateWelfare(graph, r.allocation, params, mc, 777).welfare;
    };
    table.AddRow({std::to_string(total), TablePrinter::Num(welfare(grd), 1),
                  TablePrinter::Num(welfare(idisj), 1),
                  TablePrinter::Num(welfare(bdisj), 1)});
    ++seed;
  }
  table.Print();
}

}  // namespace
}  // namespace uic

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 300));
  const double eps = flags.GetDouble("eps", 0.5);

  std::printf("== Fig. 7: multi-item welfare, Configs 5-8 "
              "(Twitter-like, scale %.2f, %u items) ==\n",
              scale, kNumItems);
  const Graph graph = MakeTwitterLike(/*seed=*/20190630, scale);
  std::printf("%s\n", graph.Summary().c_str());

  RunConfig(graph, MakeAdditiveConfig5(kNumItems),
            "(a) Configuration 5: additive, uniform budgets", true, 0, mc,
            eps);
  // Config 6: core item holds the MAX budget (item 0).
  RunConfig(graph, MakeConeConfig67(kNumItems, /*core_item=*/0),
            "(b) Configuration 6: cone-max, non-uniform budgets", false, 0,
            mc, eps);
  // Config 7: core item holds the MIN budget (last item).
  RunConfig(graph, MakeConeConfig67(kNumItems, /*core_item=*/kNumItems - 1),
            "(c) Configuration 7: cone-min, non-uniform budgets", false, 0,
            mc, eps);
  RunConfig(graph, MakeLevelwiseConfig8(kNumItems, /*seed=*/8),
            "(d) Configuration 8: level-wise random, uniform budgets", true,
            0, mc, eps);
  return 0;
}
