// Fig. 9(d): scalability of bundleGRD with network size on Orkut, grown by
// BFS to 20%..100% of the nodes, under two edge weightings:
//   (1) weighted cascade 1/din(v)    (welfare1 / time1)
//   (2) fixed probability 0.01       (welfare2 / time2)
//
// Expected shape (paper): running time grows roughly linearly with network
// size; welfare grows sublinearly.
#include <cstdio>

#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"
#include "graph/subgraph.h"

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 200));
  const double eps = flags.GetDouble("eps", 0.5);
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("budget", 50));

  std::printf("== Fig. 9(d): bundleGRD scalability on Orkut-like "
              "(scale %.2f, uniform budget %u) ==\n",
              scale, k);
  const Graph full = MakeOrkutLike(/*seed=*/20190630, scale);
  std::printf("full network: %s\n", full.Summary().c_str());
  const ItemParams params = MakeTwoItemConfig12();
  const std::vector<uint32_t> budgets = {k, k};

  TablePrinter table({"% nodes", "n", "welfare1 (1/din)", "time1(s)",
                      "welfare2 (p=0.01)", "time2(s)"});
  SolverOptions options;
  options.eps = eps;
  uint64_t seed = 121;
  for (int pct = 20; pct <= 100; pct += 20) {
    const NodeId target = static_cast<NodeId>(
        static_cast<double>(full.num_nodes()) * pct / 100.0);
    Graph sub = BfsInducedSubgraph(full, 0, target);
    WelfareProblem problem;
    problem.graph = &sub;
    problem.params = params;
    problem.budgets = budgets;
    options.seed = seed;

    sub.ApplyWeightedCascade();
    const AllocationResult grd1 = MustSolve("bundle-grd", problem, options);
    const double w1 =
        EstimateWelfare(sub, grd1.allocation, params, mc, 4321).welfare;

    sub.ApplyConstantProbability(0.01);
    const AllocationResult grd2 = MustSolve("bundle-grd", problem, options);
    const double w2 =
        EstimateWelfare(sub, grd2.allocation, params, mc, 4321).welfare;

    table.AddRow({std::to_string(pct), std::to_string(sub.num_nodes()),
                  TablePrinter::Num(w1, 1), TablePrinter::Num(grd1.seconds, 3),
                  TablePrinter::Num(w2, 1),
                  TablePrinter::Num(grd2.seconds, 3)});
    ++seed;
  }
  table.Print();
  return 0;
}
