// Table 5: the real (eBay-learned) PlayStation parameters, plus the
// supermodularity evidence the paper cites and the GAP view of the
// configuration.
#include <cstdio>

#include "common/table.h"
#include "exp/configs.h"
#include "items/gap.h"
#include "items/value_function.h"

int main() {
  using namespace uic;
  const ItemParams params = MakeRealPlaystationParams();
  const auto& names = RealPlaystationItemNames();

  std::printf("== Table 5: learned value/price/noise parameters ==\n");
  TablePrinter table({"itemset", "price", "value", "det. utility"});
  const ItemSet ps = ItemBit(0), c = ItemBit(1);
  const std::vector<std::pair<std::string, ItemSet>> rows = {
      {"{ps}", ps},
      {"{ps,c}", ps | c},
      {"{ps,g1,g2,g3}", ps | ItemBit(2) | ItemBit(3) | ItemBit(4)},
      {"{ps,g1,g2,c}", ps | c | ItemBit(2) | ItemBit(3)},
      {"{ps,g1,g2,g3,c}", FullItemSet(5)},
  };
  for (const auto& [label, set] : rows) {
    table.AddRow({label, TablePrinter::Num(params.Price(set), 1),
                  TablePrinter::Num(params.value().Value(set), 1),
                  TablePrinter::Num(params.DeterministicUtility(set), 1)});
  }
  table.Print();

  std::printf("\nitem prices: ");
  for (ItemId i = 0; i < 5; ++i) {
    std::printf("%s=C$%.0f ", names[i].c_str(), params.ItemPrice(i));
  }

  std::printf("\n\nsupermodularity evidence (controller marginal value):\n");
  const ItemSet games = ItemBit(2) | ItemBit(3) | ItemBit(4);
  std::printf("  V(c | ps)          = %+.1f\n",
              params.value().Value(ps | c) - params.value().Value(ps));
  std::printf("  V(c | ps,g1,g2,g3) = %+.1f  (grows with the bundle)\n",
              params.value().Value(ps | games | c) -
                  params.value().Value(ps | games));

  std::printf("\npositive-utility itemsets (ps + c + >=2 games only):\n");
  for (ItemSet s = 1; s <= FullItemSet(5); ++s) {
    if (params.DeterministicUtility(s) > 0) {
      std::printf("  %s: %+.1f\n", ItemSetToString(s).c_str(),
                  params.DeterministicUtility(s));
    }
    if (s == FullItemSet(5)) break;
  }

  std::printf("\nderived GAP parameters for the (ps, c) pair:\n");
  {
    // Restrict to the two "core" items to show Eq. (12) in action.
    std::printf("  q_{c|ps} = %.3f vs q_{c|empty} = %.3f\n",
                GapProbability(params, 1, ItemBit(0)),
                GapProbability(params, 1, kEmptyItemSet));
  }
  return 0;
}
