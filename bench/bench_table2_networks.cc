// Table 2: network statistics of the five evaluation networks.
//
// Prints the paper's reported sizes next to the sizes of our synthetic
// stand-ins (the crawled datasets are not redistributable; see DESIGN.md).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "exp/networks.h"
#include "graph/stats.h"

int main(int argc, char** argv) {
  using namespace uic;
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    }
  }

  std::printf("== Table 2: network statistics (stand-ins at scale %.2f) ==\n",
              scale);
  TablePrinter table({"network", "type", "paper n", "paper m", "built n",
                      "built m", "built avg deg"});
  for (const NetworkInfo& info : DescribeAllNetworks(/*seed=*/20190630,
                                                     scale)) {
    table.AddRow({info.name, info.directed ? "directed" : "undirected",
                  TablePrinter::Int(info.paper_nodes),
                  TablePrinter::Int(static_cast<long long>(info.paper_edges)),
                  TablePrinter::Int(info.built_nodes),
                  TablePrinter::Int(static_cast<long long>(info.built_edges)),
                  TablePrinter::Num(static_cast<double>(info.built_edges) /
                                        info.built_nodes,
                                    2)});
  }
  table.Print();

  std::printf("\nstructural statistics of the stand-ins:\n");
  TablePrinter stats_table({"network", "max in-deg", "largest WCC",
                            "gini(in-deg)", "sources", "sinks"});
  const uint64_t seed = 20190630;
  const std::vector<std::pair<std::string, Graph>> graphs = [&] {
    std::vector<std::pair<std::string, Graph>> g;
    g.emplace_back("Flixster", MakeFlixsterLike(seed, scale));
    g.emplace_back("Douban-Book", MakeDoubanBookLike(seed, scale));
    g.emplace_back("Douban-Movie", MakeDoubanMovieLike(seed, scale));
    g.emplace_back("Twitter", MakeTwitterLike(seed, scale));
    g.emplace_back("Orkut", MakeOrkutLike(seed, scale));
    return g;
  }();
  for (const auto& [name, graph] : graphs) {
    const GraphStats s = ComputeGraphStats(graph);
    stats_table.AddRow(
        {name, TablePrinter::Int(s.max_in_degree),
         TablePrinter::Int(s.largest_wcc),
         TablePrinter::Num(s.gini_in_degree, 3),
         TablePrinter::Int(s.num_sources), TablePrinter::Int(s.num_sinks)});
  }
  stats_table.Print();
  return 0;
}
