// Micro-benchmarks (google-benchmark) for the performance-critical
// substrate primitives: RR-set sampling, UIC simulation, utility-table
// construction, greedy max-cover selection.
#include <benchmark/benchmark.h>

#include "common/check.h"
#include "diffusion/uic_model.h"
#include "exp/configs.h"
#include "exp/sweep.h"
#include "graph/generators.h"
#include "items/utility_table.h"
#include "rrset/node_selection.h"
#include "rrset/rr_collection.h"
#include "serve/server.h"

namespace uic {
namespace {

const Graph& BenchGraph() {
  static const Graph g = [] {
    Graph graph = GeneratePreferentialAttachment(20000, 6, false, 99);
    graph.ApplyWeightedCascade();
    return graph;
  }();
  return g;
}

void BM_RrSetSampling(benchmark::State& state) {
  const Graph& g = BenchGraph();
  RrSampler sampler(g);
  Rng rng(1);
  std::vector<NodeId> rr;
  size_t total_nodes = 0;
  for (auto _ : state) {
    sampler.SampleInto(rng, &rr);
    total_nodes += rr.size();
    benchmark::DoNotOptimize(rr.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["avg_rr_size"] = static_cast<double>(total_nodes) /
                                  static_cast<double>(state.iterations());
}
BENCHMARK(BM_RrSetSampling);

void BM_UicSimulation(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const ItemParams params = MakeTwoItemConfig12();
  const UtilityTable table(params);
  UicSimulator sim(g);
  Rng rng(2);
  Allocation alloc;
  for (NodeId v = 0; v < static_cast<NodeId>(state.range(0)); ++v) {
    alloc.Add(v, 0b11);
  }
  for (auto _ : state) {
    const UicOutcome out = sim.Run(alloc, table, rng);
    benchmark::DoNotOptimize(out.welfare);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UicSimulation)->Arg(10)->Arg(50)->Arg(200);

void BM_UtilityTableBuild(benchmark::State& state) {
  const ItemId k = static_cast<ItemId>(state.range(0));
  const ItemParams params = MakeAdditiveConfig5(k);
  Rng rng(3);
  for (auto _ : state) {
    const std::vector<double> noise = params.noise().Sample(rng);
    const UtilityTable table(params, noise);
    benchmark::DoNotOptimize(table.Utility(FullItemSet(k)));
  }
}
BENCHMARK(BM_UtilityTableBuild)->Arg(2)->Arg(5)->Arg(10);

void BM_BestAdoption(benchmark::State& state) {
  const ItemId k = static_cast<ItemId>(state.range(0));
  const ItemParams params = MakeConeConfig67(k, 0);
  const UtilityTable table(params);
  const ItemSet full = FullItemSet(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.BestAdoption(0, full));
  }
}
BENCHMARK(BM_BestAdoption)->Arg(2)->Arg(5)->Arg(10);

void BM_NodeSelection(benchmark::State& state) {
  const Graph& g = BenchGraph();
  RrCollection pool(g, 4, 4);
  pool.GenerateUntil(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const SeedSelection sel = NodeSelection(pool, 50);
    benchmark::DoNotOptimize(sel.seeds.data());
  }
}
BENCHMARK(BM_NodeSelection)->Arg(10000)->Arg(50000);

// --- RR engine scaling benchmarks (ISSUE 3) ---------------------------
// Args: (workers, pool size). These measure the two halves of the hot
// path PRIMA/IMM spend nearly all their time in, at worker counts
// {1, 4, 8} and pool sizes {10k, 100k}, so thread-pool and index
// regressions are visible in isolation.

void BM_GenerateUntil(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const unsigned workers = static_cast<unsigned>(state.range(0));
  const size_t target = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    RrCollection pool(g, 7, workers);
    pool.GenerateUntil(target);
    benchmark::DoNotOptimize(pool.TotalNodes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(target));
}
BENCHMARK(BM_GenerateUntil)
    ->ArgsProduct({{1, 4, 8}, {10000, 100000}})
    ->Unit(benchmark::kMillisecond);

void BM_NodeSelectionScaling(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const unsigned workers = static_cast<unsigned>(state.range(0));
  const size_t target = static_cast<size_t>(state.range(1));
  RrCollection pool(g, 7, workers);
  pool.GenerateUntil(target);
  for (auto _ : state) {
    const SeedSelection sel = NodeSelection(pool, 50);
    benchmark::DoNotOptimize(sel.seeds.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(target));
}
BENCHMARK(BM_NodeSelectionScaling)
    ->ArgsProduct({{1, 4, 8}, {10000, 100000}})
    ->Unit(benchmark::kMillisecond);

// Generation + selection end to end: the complete RR round a PRIMA phase
// executes. The index-maintenance refactor shifts work from selection
// into generation; this is the number that must not regress overall.
void BM_GenerateAndSelect(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const unsigned workers = static_cast<unsigned>(state.range(0));
  const size_t target = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    RrCollection pool(g, 7, workers);
    pool.GenerateUntil(target);
    const SeedSelection sel = NodeSelection(pool, 50);
    benchmark::DoNotOptimize(sel.seeds.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(target));
}
BENCHMARK(BM_GenerateAndSelect)
    ->ArgsProduct({{1, 4, 8}, {10000, 100000}})
    ->Unit(benchmark::kMillisecond);

// --- sampling kernels: scan vs skip (ISSUE 8) --------------------------
// Args: (scheme, kernel). Pool generation (workers 4) under the legacy
// per-edge scan kernel vs the geometric skip kernel, across the repo's
// probability regimes and degree skews: weighted cascade on a heavy-tailed
// PA graph (the acceptance pair — compare against BM_GenerateUntil/4/
// 100000, which runs kernel auto = skip), sparse/dense constant
// probabilities on ER, and trivalency on PA. The skip kernel's win grows
// as per-edge probabilities shrink (fewer successes per examined edge).
void BM_SampleKernel(benchmark::State& state) {
  static const Graph* schemes[] = {nullptr, nullptr, nullptr, nullptr};
  static const char* names[] = {"wc_pa", "const_lo_er", "const_hi_er",
                                "trivalency_pa"};
  const size_t scheme = static_cast<size_t>(state.range(0));
  if (schemes[scheme] == nullptr) {
    Graph* g = new Graph();
    switch (scheme) {
      case 0:
        *g = BenchGraph();
        break;
      case 1:
        *g = GenerateErdosRenyi(20000, 120000, 99);
        g->ApplyConstantProbability(0.01);
        break;
      case 2:
        *g = GenerateErdosRenyi(20000, 120000, 99);
        g->ApplyConstantProbability(0.15);
        break;
      default:
        *g = GeneratePreferentialAttachment(20000, 6, false, 99);
        g->ApplyTrivalency({0.1, 0.01, 0.001}, 13);
        break;
    }
    schemes[scheme] = g;
  }
  const Graph& g = *schemes[scheme];
  RrOptions opt;
  opt.kernel =
      state.range(1) == 0 ? SamplingKernel::kScan : SamplingKernel::kSkip;
  // Each iteration builds its plan from scratch (an O(V+E) one-time cost
  // real runs amortize over the whole pool); the targets are big enough
  // that per-set sampling dominates it.
  const size_t target = scheme == 3 ? 30000 : 100000;
  for (auto _ : state) {
    RrCollection pool(g, 7, 4, opt);
    pool.GenerateUntil(target);
    benchmark::DoNotOptimize(pool.TotalNodes());
  }
  state.SetLabel(std::string(names[scheme]) + "/" +
                 SamplingKernelName(opt.kernel));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(target));
}
BENCHMARK(BM_SampleKernel)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_GraphGeneration(benchmark::State& state) {
  for (auto _ : state) {
    Graph g = GeneratePreferentialAttachment(
        static_cast<NodeId>(state.range(0)), 6, false, 5);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GraphGeneration)->Arg(10000)->Arg(40000);

// --- budget sweep: warm pool reuse vs cold per-point runs (ISSUE 4) ----
// A 4-point bundleGRD budget sweep through SweepRunner, warm (arg 1: one
// shared RrStreamCache across points) vs cold (arg 0: cache cleared per
// point). Results are bit-identical; the counters show the warm sweep
// samples a fraction of the cold run's RR sets, and wall-clock follows.
void BM_BudgetSweep(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  static const Graph& g = []() -> const Graph& {
    static Graph graph = GeneratePreferentialAttachment(5000, 6, false, 31);
    graph.ApplyWeightedCascade();
    return graph;
  }();
  size_t sampled = 0, consumed = 0;
  for (auto _ : state) {
    SweepSpec spec;
    spec.graph = &g;
    spec.algorithms = {"bundle-grd"};
    spec.budget_points = {{10, 10}, {20, 20}, {30, 30}, {40, 40}};
    spec.options.seed = 9;
    spec.eval_simulations = 0;
    spec.warm = warm;
    SweepRunner runner(spec);
    Result<SweepReport> report = runner.Run();
    UIC_CHECK(report.ok());
    sampled += report.value().total_rr_sampled;
    consumed += report.value().total_rr_sets;
    benchmark::DoNotOptimize(report.value().rows.data());
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["rr_sampled"] = static_cast<double>(sampled) / iters;
  state.counters["rr_consumed"] = static_cast<double>(consumed) / iters;
}
BENCHMARK(BM_BudgetSweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// --- serve: repeated welfare query, warm pool vs cold (ISSUE 7) --------
// One daemon, one pinned graph, the same solve request over and over —
// the serving hot path. Warm (arg 1) reuses the daemon's RR pool so each
// repeat re-solves without resampling; cold (arg 0) pays the full RR
// sampling cost every time. Responses are bit-identical either way (the
// determinism contract); `rr_sampled_per_query` shows warm at 0 after the
// first fill, and the time ratio is the serving speedup the warm cache
// buys (acceptance bar: >= 2x).
void BM_ServeRepeatedQuery(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  serve::ServerOptions options;
  options.include_timing = false;
  serve::Server server(options);
  UIC_CHECK(server
                .HandleLine("{\"verb\":\"load_graph\",\"name\":\"g\","
                            "\"network\":\"er\",\"nodes\":2000,"
                            "\"edges\":12000}")
                .find("\"ok\":true") != std::string::npos);
  UIC_CHECK(server
                .HandleLine("{\"verb\":\"load_params\",\"name\":\"p\","
                            "\"config\":\"config12\"}")
                .find("\"ok\":true") != std::string::npos);
  const std::string request =
      std::string("{\"verb\":\"solve\",\"graph\":\"g\",\"params\":\"p\","
                  "\"budgets\":[5,5],\"seed\":4,\"warm\":") +
      (warm ? "true}" : "false}");
  size_t queries = 0, sampled = 0;
  for (auto _ : state) {
    const std::string response = server.HandleLine(request);
    benchmark::DoNotOptimize(response.data());
    const Result<serve::Json> parsed = serve::Json::Parse(response);
    UIC_CHECK(parsed.ok());
    ++queries;
    sampled += static_cast<size_t>(
        parsed.value().Find("serve")->Find("rr_sets_sampled")->AsInt());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["rr_sampled_per_query"] =
      static_cast<double>(sampled) / static_cast<double>(queries);
}
BENCHMARK(BM_ServeRepeatedQuery)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace uic

BENCHMARK_MAIN();
