// Fig. 9(a-c): propagation (bundleGRD under UIC) vs. pure network
// externality (BDHS), on Orkut, Douban-Book, and Douban-Movie.
//
// BDHS may assign the best bundle to *every* node (no budget, no
// propagation); its welfare is the benchmark line. bundleGRD seeds only a
// fraction x of the n nodes and relies on diffusion. The series reports,
// for increasing x, the fraction of the BDHS benchmark welfare that
// bundleGRD attains.
//
// Expected shape (paper): dense networks (Orkut) reach the benchmark with
// <35% of the budget; sparse ones (Douban-Book) need ~82%; and the curve
// is concave — e.g. 75% of the benchmark at only 50% budget.
#include <cstdio>

#include "common/table.h"
#include "exp/configs.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"
#include "items/supermodular_generators.h"

namespace uic {
namespace {

void RunNetwork(const std::string& name, const Graph& graph,
                const ItemParams& params, size_t mc, double eps,
                const std::vector<double>& fractions) {
  std::printf("\n-- %s: %s --\n", name.c_str(), graph.Summary().c_str());

  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = params;
  // BDHS is budget-free (it may assign the best bundle to every node);
  // zero budgets satisfy the shared problem shape.
  problem.budgets.assign(params.num_items(), 0);

  // The "bdhs" solver reports the externality-model benchmark welfare as
  // its objective. BDHS-Concave requires uniform edge probabilities; the
  // adapter evaluates it on a p=0.01 re-weighted copy, as the paper does.
  SolverOptions step_options;
  const AllocationResult step = MustSolve("bdhs", problem, step_options);
  SolverOptions concave_options;
  concave_options.bdhs.variant = BdhsVariant::kConcave;
  concave_options.bdhs.uniform_p = 0.01;
  const AllocationResult concave =
      MustSolve("bdhs", problem, concave_options);
  const ItemSet step_bundle = step.allocation.empty()
                                  ? kEmptyItemSet
                                  : step.allocation.entries()[0].second;
  std::printf("benchmarks: BDHS-Step %.1f | BDHS-Concave %.1f "
              "(bundle %s)\n",
              step.objective, concave.objective,
              ItemSetToString(step_bundle).c_str());

  TablePrinter table({"% budget", "bundleGRD welfare", "% of BDHS-Step",
                      "% of BDHS-Concave"});
  SolverOptions options;
  options.eps = eps;
  uint64_t seed = 111;
  for (double frac : fractions) {
    const uint32_t k = static_cast<uint32_t>(
        frac / 100.0 * static_cast<double>(graph.num_nodes()));
    if (k == 0) continue;
    problem.budgets.assign(params.num_items(), k);
    options.seed = seed;
    const AllocationResult grd = MustSolve("bundle-grd", problem, options);
    const double w =
        EstimateWelfare(graph, grd.allocation, params, mc, 1234).welfare;
    table.AddRow(
        {TablePrinter::Num(frac, 0), TablePrinter::Num(w, 1),
         TablePrinter::Num(
             step.objective > 0 ? 100.0 * w / step.objective : 0, 1),
         TablePrinter::Num(
             concave.objective > 0 ? 100.0 * w / concave.objective : 0, 1)});
    ++seed;
  }
  table.Print();
}

}  // namespace
}  // namespace uic

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.2);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 200));
  const double eps = flags.GetDouble("eps", 0.5);

  std::printf("== Fig. 9(a-c): bundleGRD vs BDHS externality benchmarks "
              "(scale %.2f) ==\n",
              scale);
  // Two complementary items, individually break-even, +1 jointly — with
  // the noise removed so both sides of the comparison score exactly the
  // deterministic utility per adopter (UIC's rational adopters otherwise
  // enjoy a selection bias BDHS's externality model has no analogue of,
  // which would inflate the propagation side of the ratio).
  const std::vector<double> prices = {3.0, 4.0};
  auto value = MakeValueFromUtilities(2, prices, {0.0, 0.0, 0.0, 1.0});
  const ItemParams params(std::move(value), prices, NoiseModel::Zero(2));

  RunNetwork("(a) Orkut", MakeOrkutLike(1, scale), params, mc, eps,
             {1, 2, 5, 15, 25, 35});
  RunNetwork("(b) Douban-Book", MakeDoubanBookLike(2, scale), params, mc,
             eps, {2, 5, 10, 30, 50, 70, 90});
  RunNetwork("(c) Douban-Movie", MakeDoubanMovieLike(3, scale), params, mc,
             eps, {2, 5, 10, 20, 30, 40, 50});
  return 0;
}
