// Ablation: submodular (volume-discount) prices vs additive prices (§5).
//
// bundleGRD never reads the utilities, so the *allocation* is identical;
// only the realized welfare changes. A submodular price makes bundles
// strictly cheaper, which (a) raises welfare for every allocation and
// (b) widens bundleGRD's lead over item-disj (discounts reward exactly
// the co-location bundleGRD performs).
#include <cstdio>

#include "common/table.h"
#include "diffusion/uic_model.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "exp/suite.h"
#include "items/supermodular_generators.h"

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 400));
  const double eps = flags.GetDouble("eps", 0.5);

  std::printf("== Ablation: additive vs volume-discount prices, "
              "Douban-Movie-like scale %.2f ==\n",
              scale);
  const Graph graph = MakeDoubanMovieLike(/*seed=*/20190630, scale);
  std::printf("%s\n", graph.Summary().c_str());

  // Three items, modest synergy in the valuation; prices 3/3/3.
  const std::vector<double> prices = {3.0, 3.0, 3.0};
  auto value = std::make_shared<TabularValueFunction>(
      3, std::vector<double>{0.0, 3.0, 3.0, 6.5, 3.0, 6.5, 6.5, 10.5});

  TablePrinter table({"price model", "bundle utility", "bundleGRD",
                      "item-disj", "GRD/disj"});
  // bundleGRD and item-disj never read the utilities, so the problem omits
  // params: one allocation serves every price model below.
  WelfareProblem problem;
  problem.graph = &graph;
  problem.budgets = {30, 30, 30};
  SolverOptions options;
  options.eps = eps;
  options.seed = 141;
  const AllocationResult grd = MustSolve("bundle-grd", problem, options);
  const AllocationResult idisj = MustSolve("item-disj", problem, options);

  for (double discount : {1.0, 0.85, 0.7, 0.5}) {
    auto price =
        std::make_shared<VolumeDiscountPriceFunction>(prices, discount);
    const ItemParams params(value, price, NoiseModel::IidGaussian(3, 1.0));
    const double w_grd =
        EstimateWelfare(graph, grd.allocation, params, mc, 888).welfare;
    const double w_disj =
        EstimateWelfare(graph, idisj.allocation, params, mc, 888).welfare;
    const std::string label =
        discount == 1.0 ? "additive"
                        : "discount " + TablePrinter::Num(discount, 2);
    table.AddRow({label,
                  TablePrinter::Num(params.DeterministicUtility(0b111), 2),
                  TablePrinter::Num(w_grd, 1), TablePrinter::Num(w_disj, 1),
                  TablePrinter::Num(w_disj > 0 ? w_grd / w_disj : 0.0, 2)});
  }
  table.Print();
  return 0;
}
