// Ablation: why bundleGRD needs PRIMA (prefix preservation) rather than a
// single plain IMM ranking.
//
// For each budget k in the vector, compare the spread of:
//   * PRIMA's top-k prefix (the guarantee holds for every k);
//   * plain IMM's top-k prefix when IMM was run once at the max budget
//     (its sample size was tuned only for k = b, so small prefixes carry
//     no guarantee);
//   * IMM re-run per budget k (the guaranteed but expensive alternative
//     that costs one full run per distinct budget).
// A-posteriori OPIM-style certificates quantify the realized quality.
#include <cstdio>

#include "common/table.h"
#include "diffusion/ic_model.h"
#include "exp/flags.h"
#include "exp/networks.h"
#include "rrset/certificate.h"
#include "rrset/prima.h"

int main(int argc, char** argv) {
  using namespace uic;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t mc = static_cast<size_t>(flags.GetInt("mc", 5000));
  const double eps = flags.GetDouble("eps", 0.5);

  std::printf("== Ablation: prefix preservation (PRIMA vs plain IMM), "
              "Douban-Book-like scale %.2f ==\n",
              scale);
  const Graph graph = MakeDoubanBookLike(/*seed=*/20190630, scale);
  std::printf("%s\n", graph.Summary().c_str());

  const std::vector<uint32_t> budgets = {100, 50, 20, 5};
  const ImResult prima = Prima(graph, budgets, eps, 1.0, 7);
  const ImResult imm_max = Imm(graph, 100, eps, 1.0, 7);

  TablePrinter table({"k", "PRIMA prefix", "IMM(100) prefix",
                      "IMM(k) direct", "PRIMA certificate"});
  for (uint32_t k : {5u, 20u, 50u, 100u}) {
    const std::vector<NodeId> prima_prefix(prima.seeds.begin(),
                                           prima.seeds.begin() + k);
    const std::vector<NodeId> imm_prefix(imm_max.seeds.begin(),
                                         imm_max.seeds.begin() + k);
    const ImResult imm_k = Imm(graph, k, eps, 1.0, 7);
    const std::vector<NodeId> direct(imm_k.seeds.begin(),
                                     imm_k.seeds.begin() + k);
    const double s_prima = EstimateSpread(graph, prima_prefix, mc, 99);
    const double s_imm = EstimateSpread(graph, imm_prefix, mc, 99);
    const double s_direct = EstimateSpread(graph, direct, mc, 99);
    const SpreadCertificate cert =
        CertifySeedSet(graph, prima_prefix, 30000, 0.01, 55);
    table.AddRow({std::to_string(k), TablePrinter::Num(s_prima, 1),
                  TablePrinter::Num(s_imm, 1),
                  TablePrinter::Num(s_direct, 1),
                  ">= " + TablePrinter::Num(cert.ratio, 3) + " OPT"});
  }
  table.Print();
  std::printf(
      "\nPRIMA's sample size pays a union bound over all budgets, so every\n"
      "prefix carries the (1-1/e-eps) guarantee; the per-budget certificate\n"
      "column verifies it a posteriori. In practice plain IMM prefixes are\n"
      "close — the guarantee, not the typical case, is what PRIMA buys, at\n"
      "only a log(#budgets) sampling overhead and none of the |b| reruns.\n");
  return 0;
}
