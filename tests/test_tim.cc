#include "rrset/tim.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "diffusion/ic_model.h"
#include "graph/generators.h"

namespace uic {
namespace {

TEST(Tim, ReturnsRequestedSeeds) {
  Graph g = GenerateErdosRenyi(300, 1800, 1);
  g.ApplyWeightedCascade();
  const ImResult r = Tim(g, 10, 0.5, 1.0, 2);
  EXPECT_EQ(r.seeds.size(), 10u);
  std::vector<NodeId> sorted = r.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Tim, DeterministicForFixedSeed) {
  Graph g = GenerateErdosRenyi(200, 1200, 3);
  g.ApplyWeightedCascade();
  const ImResult a = Tim(g, 5, 0.5, 1.0, 4, 4);
  const ImResult b = Tim(g, 5, 0.5, 1.0, 4, 4);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
}

TEST(Tim, PicksTheObviousHub) {
  const NodeId n = 60;
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.AddEdge(0, v, 1.0);
  Graph g = builder.Build().MoveValue();
  const ImResult r = Tim(g, 1, 0.5, 1.0, 5);
  ASSERT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.seeds[0], 0u);
}

TEST(Tim, GeneratesMoreRrSetsThanImm) {
  // The TIM bound predates IMM's martingale refinement: at equal (ε, ℓ)
  // TIM needs several times more RR sets — the root cause of Fig. 6's
  // memory gap for the TIM-based RR-SIM+/RR-CIM.
  Graph g = GenerateErdosRenyi(500, 3000, 6);
  g.ApplyWeightedCascade();
  const ImResult tim = Tim(g, 20, 0.5, 1.0, 7, 4);
  const ImResult imm = Imm(g, 20, 0.5, 1.0, 7, 4);
  EXPECT_GT(tim.num_rr_sets, 2 * imm.num_rr_sets);
}

TEST(Tim, SeedsAreCompetitiveWithImm) {
  // More samples, same greedy: TIM's seed quality matches IMM's.
  Graph g = GenerateErdosRenyi(400, 2400, 8);
  g.ApplyWeightedCascade();
  const ImResult tim = Tim(g, 10, 0.5, 1.0, 9, 4);
  const ImResult imm = Imm(g, 10, 0.5, 1.0, 9, 4);
  const double s_tim = EstimateSpread(g, tim.seeds, 20000, 10, 4);
  const double s_imm = EstimateSpread(g, imm.seeds, 20000, 10, 4);
  EXPECT_GT(s_tim, 0.9 * s_imm);
}

TEST(Tim, WorksUnderLinearThreshold) {
  Graph g = GenerateErdosRenyi(200, 1200, 11);
  g.ApplyWeightedCascade();
  RrOptions lt;
  lt.linear_threshold = true;
  const ImResult r = Tim(g, 5, 0.5, 1.0, 12, 0, lt);
  EXPECT_EQ(r.seeds.size(), 5u);
}

}  // namespace
}  // namespace uic
