#include "items/price_function.h"

#include <gtest/gtest.h>

#include "items/supermodular_generators.h"
#include "items/utility_table.h"
#include "items/value_function.h"

namespace uic {
namespace {

TEST(AdditivePrice, SumsItemPrices) {
  AdditivePriceFunction p({2.0, 3.0, 5.0});
  EXPECT_DOUBLE_EQ(p.Price(0), 0.0);
  EXPECT_DOUBLE_EQ(p.Price(0b111), 10.0);
  EXPECT_DOUBLE_EQ(p.Price(0b101), 7.0);
}

TEST(VolumeDiscountPrice, NoDiscountEqualsAdditive) {
  VolumeDiscountPriceFunction p({2.0, 3.0, 5.0}, 1.0);
  AdditivePriceFunction add({2.0, 3.0, 5.0});
  for (ItemSet s = 0; s < 8; ++s) {
    EXPECT_DOUBLE_EQ(p.Price(s), add.Price(s));
  }
}

TEST(VolumeDiscountPrice, DiscountsCheaperItemsDeeper) {
  // Prices 10, 4 at discount 0.5: bundle costs 10 + 4*0.5 = 12.
  VolumeDiscountPriceFunction p({10.0, 4.0}, 0.5);
  EXPECT_DOUBLE_EQ(p.Price(0b01), 10.0);
  EXPECT_DOUBLE_EQ(p.Price(0b10), 4.0);
  EXPECT_DOUBLE_EQ(p.Price(0b11), 12.0);
}

TEST(VolumeDiscountPrice, OrderIndependentOfItemIndices) {
  // The most expensive item is charged full price regardless of index.
  VolumeDiscountPriceFunction p({4.0, 10.0}, 0.5);
  EXPECT_DOUBLE_EQ(p.Price(0b11), 12.0);
}

// §5: a submodular price keeps the utility supermodular. Verify both
// halves: the discount price is submodular, and V − P is supermodular
// for supermodular V.
TEST(VolumeDiscountPrice, IsSubmodularAndMonotone) {
  // Wrap the price as a "value function" to reuse the checkers.
  class PriceAsValue : public ValueFunction {
   public:
    explicit PriceAsValue(const PriceFunction& p) : p_(p) {}
    ItemId num_items() const override { return p_.num_items(); }
    double Value(ItemSet s) const override { return p_.Price(s); }

   private:
    const PriceFunction& p_;
  };
  VolumeDiscountPriceFunction p({10.0, 4.0, 7.0, 2.0}, 0.6);
  PriceAsValue as_value(p);
  EXPECT_TRUE(IsSubmodular(as_value));
  EXPECT_TRUE(IsMonotone(as_value));
}

TEST(VolumeDiscountPrice, UtilityStaysSupermodular) {
  Rng rng(1);
  auto value = MakeRandomSupermodularValue(4, rng);
  auto price =
      std::make_shared<VolumeDiscountPriceFunction>(
          std::vector<double>{1.0, 2.0, 1.5, 0.5}, 0.7);
  ItemParams params(value, price, NoiseModel::Zero(4));
  // Materialize U = V − P as a value function and check supermodularity.
  std::vector<double> table(16);
  for (ItemSet s = 0; s < 16; ++s) table[s] = params.DeterministicUtility(s);
  TabularValueFunction utility(4, std::move(table));
  EXPECT_TRUE(IsSupermodular(utility));
}

TEST(ItemParams, GenericPriceFlowsThroughUtilityTable) {
  auto value = std::make_shared<TabularValueFunction>(
      2, std::vector<double>{0.0, 12.0, 6.0, 20.0});
  auto price = std::make_shared<VolumeDiscountPriceFunction>(
      std::vector<double>{10.0, 4.0}, 0.5);
  ItemParams params(value, price, NoiseModel::Zero(2));
  const UtilityTable table(params);
  EXPECT_DOUBLE_EQ(table.Utility(0b01), 2.0);   // 12 − 10
  EXPECT_DOUBLE_EQ(table.Utility(0b10), 2.0);   // 6 − 4
  EXPECT_DOUBLE_EQ(table.Utility(0b11), 8.0);   // 20 − 12
}

TEST(ItemParams, DiscountMakesBundlesStrictlyMoreAttractive) {
  // Same valuation, additive vs discounted price: the discounted bundle's
  // utility dominates, singletons unchanged.
  auto value = std::make_shared<TabularValueFunction>(
      2, std::vector<double>{0.0, 10.0, 10.0, 22.0});
  const std::vector<double> prices = {8.0, 8.0};
  ItemParams additive(value, prices, NoiseModel::Zero(2));
  ItemParams discounted(
      value, std::make_shared<VolumeDiscountPriceFunction>(prices, 0.5),
      NoiseModel::Zero(2));
  EXPECT_DOUBLE_EQ(additive.DeterministicUtility(0b01),
                   discounted.DeterministicUtility(0b01));
  EXPECT_GT(discounted.DeterministicUtility(0b11),
            additive.DeterministicUtility(0b11));
}

}  // namespace
}  // namespace uic
