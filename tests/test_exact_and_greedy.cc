#include <gtest/gtest.h>

#include "core/mc_greedy.h"
#include "diffusion/uic_model.h"
#include "graph/generators.h"
#include "items/supermodular_generators.h"
#include "welfare/exact.h"

namespace uic {
namespace {

ItemParams SynergyPair(double u1, double u2, double u12) {
  const std::vector<double> prices = {1.0, 1.0};
  auto value = MakeValueFromUtilities(2, prices, {0.0, u1, u2, u12});
  return ItemParams(std::move(value), prices, NoiseModel::Zero(2));
}

TEST(ExactSpread, MatchesClosedForms) {
  // 0 ->(0.3) 1: σ({0}) = 1.3.
  GraphBuilder b1(2);
  b1.AddEdge(0, 1, 0.3);
  Graph g1 = b1.Build().MoveValue();
  // Probabilities are stored as float, so compare at float precision.
  EXPECT_NEAR(ExactSpreadByEnumeration(g1, {0}), 1.3, 1e-6);

  // Chain of 3 at p=0.5: 1 + 0.5 + 0.25.
  GraphBuilder b2(3);
  b2.AddEdge(0, 1, 0.5);
  b2.AddEdge(1, 2, 0.5);
  Graph g2 = b2.Build().MoveValue();
  EXPECT_NEAR(ExactSpreadByEnumeration(g2, {0}), 1.75, 1e-12);

  // Diamond 0->1->3, 0->2->3 at p=0.5: σ({0}) = 1 + 0.5 + 0.5 + P[3]
  // where P[3] = 1 − (1 − 0.25)^2 = 0.4375.
  GraphBuilder b3(4);
  b3.AddEdge(0, 1, 0.5);
  b3.AddEdge(0, 2, 0.5);
  b3.AddEdge(1, 3, 0.5);
  b3.AddEdge(2, 3, 0.5);
  Graph g3 = b3.Build().MoveValue();
  EXPECT_NEAR(ExactSpreadByEnumeration(g3, {0}), 2.4375, 1e-12);
}

TEST(ExactWelfare, SingleUnitItemEqualsSpread) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 0.5);
  Graph g = b.Build().MoveValue();
  const std::vector<double> prices = {1.0};
  auto value = MakeValueFromUtilities(1, prices, {0.0, 1.0});
  ItemParams params(std::move(value), prices, NoiseModel::Zero(1));
  const UtilityTable table(params);
  Allocation alloc;
  alloc.AddItem(0, 0);
  EXPECT_NEAR(ExactWelfareByEnumeration(g, alloc, table),
              ExactSpreadByEnumeration(g, {0}), 1e-12);
}

// The decisive simulator validation: the MC welfare estimator converges
// to the exact enumeration value on graphs with genuinely probabilistic
// edges.
class McVsExactTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(McVsExactTest, EstimatorConvergesToEnumeration) {
  Rng rng(GetParam());
  const NodeId n = 6;
  GraphBuilder builder(n);
  size_t edges = 0;
  for (NodeId u = 0; u < n && edges < 10; ++u) {
    for (int t = 0; t < 2 && edges < 10; ++t) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (v == u) continue;
      builder.AddEdge(u, v, rng.NextUniform(0.2, 0.8));
      ++edges;
    }
  }
  Graph g = builder.Build().MoveValue();

  ItemParams params = SynergyPair(rng.NextUniform(-0.5, 0.5),
                                  rng.NextUniform(-0.5, 0.5),
                                  rng.NextUniform(0.5, 2.0));
  Allocation alloc;
  alloc.Add(0, 0b11);
  alloc.Add(static_cast<NodeId>(1 + rng.NextBounded(n - 1)), 0b01);

  const UtilityTable table(params);
  const double exact = ExactWelfareByEnumeration(g, alloc, table);
  const WelfareEstimate mc = EstimateWelfare(g, alloc, params, 60000,
                                             GetParam() ^ 0xabcd, 4);
  EXPECT_NEAR(mc.welfare, exact, 4.0 * mc.std_error + 0.02)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, McVsExactTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(ExactWelfare, AveragedOverNoiseApproachesEstimator) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.6);
  b.AddEdge(1, 2, 0.6);
  b.AddEdge(2, 3, 0.6);
  Graph g = b.Build().MoveValue();
  const std::vector<double> prices = {2.0, 2.0};
  auto value = MakeValueFromUtilities(2, prices, {0.0, 0.0, 0.0, 1.0});
  ItemParams params(std::move(value), prices, NoiseModel::IidGaussian(2, 1.0));
  Allocation alloc;
  alloc.Add(0, 0b11);
  const double exact_avg =
      ExactWelfareAveragedOverNoise(g, alloc, params, 20000, 5);
  const WelfareEstimate mc = EstimateWelfare(g, alloc, params, 200000, 6, 4);
  EXPECT_NEAR(exact_avg, mc.welfare, 0.05 * exact_avg + 0.05);
}

TEST(McGreedy, RespectsBudgets) {
  Graph g = GenerateErdosRenyi(60, 300, 1);
  g.ApplyWeightedCascade();
  ItemParams params = SynergyPair(0.0, 0.0, 1.0);
  McGreedyOptions options;
  options.simulations_per_eval = 50;
  const AllocationResult r = McGreedyAllocate(g, {3, 2}, params, options);
  EXPECT_EQ(r.allocation.SeedCount(0), 3u);
  EXPECT_EQ(r.allocation.SeedCount(1), 2u);
}

TEST(McGreedy, BundlesComplementaryItemsOnSharedSeeds) {
  // With items worthless alone, greedy must co-locate them.
  Graph g = GenerateErdosRenyi(50, 250, 2);
  g.ApplyWeightedCascade();
  ItemParams params = SynergyPair(-0.5, -0.5, 2.0);
  McGreedyOptions options;
  options.simulations_per_eval = 100;
  const AllocationResult r = McGreedyAllocate(g, {2, 2}, params, options);
  // At least one node carries both items (otherwise welfare would be 0).
  bool bundled = false;
  for (const auto& [v, items] : r.allocation.entries()) {
    bundled |= (items == 0b11);
  }
  EXPECT_TRUE(bundled);
}

TEST(McGreedy, ComparableToBundleGrdOnSmallGraph) {
  Graph g = GenerateErdosRenyi(80, 480, 3);
  g.ApplyWeightedCascade();
  ItemParams params = SynergyPair(0.0, 0.0, 1.0);
  McGreedyOptions options;
  options.simulations_per_eval = 150;
  const AllocationResult greedy = McGreedyAllocate(g, {4, 4}, params, options);
  const AllocationResult grd = BundleGrd(g, {4, 4}, 0.3, 1.0, 4);
  const double w_greedy =
      EstimateWelfare(g, greedy.allocation, params, 4000, 9, 4).welfare;
  const double w_grd =
      EstimateWelfare(g, grd.allocation, params, 4000, 9, 4).welfare;
  // bundleGRD must reach a healthy fraction of the utility-aware greedy.
  EXPECT_GT(w_grd, 0.6 * w_greedy);
}

}  // namespace
}  // namespace uic
