#include "items/value_function.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "items/supermodular_generators.h"

namespace uic {
namespace {

TEST(TabularValueFunction, StoresAndReturnsValues) {
  TabularValueFunction fn(2, {0.0, 1.0, 2.0, 5.0});
  EXPECT_EQ(fn.num_items(), 2u);
  EXPECT_DOUBLE_EQ(fn.Value(0b11), 5.0);
  EXPECT_DOUBLE_EQ(fn.Value(0b01), 1.0);
}

TEST(TabularValueFunction, FromFunctionMaterializes) {
  AdditiveValueFunction add({1.0, 2.0, 4.0});
  TabularValueFunction tab = TabularValueFunction::FromFunction(add);
  for (ItemSet s = 0; s < 8; ++s) {
    EXPECT_DOUBLE_EQ(tab.Value(s), add.Value(s));
  }
}

TEST(AdditiveValueFunction, SumsItemValues) {
  AdditiveValueFunction fn({1.5, 2.5});
  EXPECT_DOUBLE_EQ(fn.Value(0), 0.0);
  EXPECT_DOUBLE_EQ(fn.Value(0b11), 4.0);
}

TEST(Checkers, AdditiveIsModular) {
  AdditiveValueFunction fn({1.0, 2.0, 3.0});
  EXPECT_TRUE(IsMonotone(fn));
  EXPECT_TRUE(IsSupermodular(fn));
  EXPECT_TRUE(IsSubmodular(fn));
}

TEST(Checkers, DetectsSupermodularOnly) {
  // V({1,2}) has positive synergy: supermodular, not submodular.
  TabularValueFunction fn(2, {0.0, 1.0, 1.0, 3.0});
  EXPECT_TRUE(IsMonotone(fn));
  EXPECT_TRUE(IsSupermodular(fn));
  EXPECT_FALSE(IsSubmodular(fn));
}

TEST(Checkers, DetectsSubmodularOnly) {
  // Coverage-like: diminishing returns.
  TabularValueFunction fn(2, {0.0, 1.0, 1.0, 1.5});
  EXPECT_TRUE(IsMonotone(fn));
  EXPECT_FALSE(IsSupermodular(fn));
  EXPECT_TRUE(IsSubmodular(fn));
}

TEST(Checkers, DetectsNonMonotone) {
  TabularValueFunction fn(2, {0.0, 2.0, 1.0, 1.5});
  EXPECT_FALSE(IsMonotone(fn));
}

TEST(ConeValue, MatchesTargetUtilities) {
  const std::vector<double> prices = {1.0, 1.0, 1.0};
  auto fn = MakeConeValue(3, /*core_item=*/0, prices, 5.0, 2.0, -1.0);
  // Utility = V - P: supersets of core get 5 + 2*(extras).
  EXPECT_DOUBLE_EQ(fn->Value(0b001) - 1.0, 5.0);
  EXPECT_DOUBLE_EQ(fn->Value(0b011) - 2.0, 7.0);
  EXPECT_DOUBLE_EQ(fn->Value(0b111) - 3.0, 9.0);
  // Non-core sets are -1 per item.
  EXPECT_DOUBLE_EQ(fn->Value(0b010) - 1.0, -1.0);
  EXPECT_DOUBLE_EQ(fn->Value(0b110) - 2.0, -2.0);
}

TEST(ConeValue, IsSupermodular) {
  const std::vector<double> prices = {2.0, 1.0, 1.5, 0.5};
  auto fn = MakeConeValue(4, /*core_item=*/2, prices, 5.0, 2.0, -1.0);
  EXPECT_TRUE(IsSupermodular(*fn));
}

class LevelwiseValueTest : public ::testing::TestWithParam<uint64_t> {};

// Lemma 10: the Configuration-8 generator always yields a supermodular
// valuation, for any random draw.
TEST_P(LevelwiseValueTest, IsSupermodularAndMonotone) {
  Rng rng(GetParam());
  std::vector<double> level1(5);
  for (auto& v : level1) v = rng.NextUniform(0.5, 4.0);
  auto fn = MakeLevelwiseSupermodularValue(level1, 1.0, 5.0, GetParam());
  EXPECT_TRUE(IsSupermodular(*fn)) << "seed " << GetParam();
  EXPECT_TRUE(IsMonotone(*fn)) << "seed " << GetParam();
  EXPECT_DOUBLE_EQ(fn->Value(0), 0.0);
}

// Lemma 11 (well-definedness): values at level t exceed all level t-1
// values they extend, with a boost of at least boost_lo.
TEST_P(LevelwiseValueTest, LevelsGrowByAtLeastBoost) {
  Rng rng(GetParam() ^ 0xabc);
  std::vector<double> level1(4);
  for (auto& v : level1) v = rng.NextUniform(0.5, 4.0);
  auto fn = MakeLevelwiseSupermodularValue(level1, 1.0, 5.0, GetParam());
  for (ItemSet s = 1; s < 16; ++s) {
    if (Cardinality(s) < 2) continue;
    bool some_parent_close = false;
    ForEachItem(s, [&](ItemId i) {
      const double parent = fn->Value(s & ~ItemBit(i));
      EXPECT_GE(fn->Value(s), parent + 1.0 - 1e-9);
      some_parent_close = true;
    });
    EXPECT_TRUE(some_parent_close);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevelwiseValueTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

class RandomSupermodularTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSupermodularTest, GeneratorSatisfiesProperties) {
  Rng rng(GetParam());
  auto fn = MakeRandomSupermodularValue(5, rng);
  EXPECT_TRUE(IsSupermodular(*fn));
  EXPECT_TRUE(IsMonotone(*fn));
  EXPECT_DOUBLE_EQ(fn->Value(0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSupermodularTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(ValueFromUtilities, ReconstructsValueFromTargets) {
  const std::vector<double> prices = {3.0, 4.0};
  const std::vector<double> utilities = {0.0, 0.0, -1.0, 1.0};
  auto fn = MakeValueFromUtilities(2, prices, utilities);
  EXPECT_DOUBLE_EQ(fn->Value(0b01), 3.0);
  EXPECT_DOUBLE_EQ(fn->Value(0b10), 3.0);
  EXPECT_DOUBLE_EQ(fn->Value(0b11), 8.0);
}

}  // namespace
}  // namespace uic
