// Tests for the serve subsystem: the JSON model, the wire protocol, the
// session registry, admission control, the warm pool, and the Server's
// end-to-end determinism contract — a solve's `result` payload is
// bit-identical cold, warm, across server instances, and across four
// concurrent TCP clients.
#include "serve/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/serialization.h"
#include "graph/graph.h"
#include "serve/json.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/session.h"
#include "serve/warm_cache.h"

namespace uic {
namespace serve {
namespace {

// --- Json --------------------------------------------------------------

TEST(ServeJson, DumpIsInsertionOrderedAndIntegralNumbersArePlain) {
  Json obj = Json::Object();
  obj.Set("zeta", Json::Int(3));
  obj.Set("alpha", Json::Bool(true));
  obj.Set("pi", Json::Number(0.5));
  Json arr = Json::Array();
  arr.Append(Json::Str("a\"b"));
  arr.Append(Json::Null());
  obj.Set("list", std::move(arr));
  EXPECT_EQ(obj.Dump(),
            "{\"zeta\":3,\"alpha\":true,\"pi\":0.5,\"list\":[\"a\\\"b\",null]}");
}

TEST(ServeJson, ParseDumpRoundTripIsExact) {
  const std::string line =
      "{\"id\":7,\"verb\":\"solve\",\"budgets\":[3,3],\"eps\":0.5,"
      "\"warm\":false,\"note\":\"tab\\tnl\\n\",\"sub\":{\"x\":null}}";
  Result<Json> parsed = Json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().Dump(), line);
}

TEST(ServeJson, ParserRejectsGarbage) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("{'a':1}").ok());
  // Depth cap: 80 nested arrays exceed the 64-deep limit.
  std::string deep(80, '[');
  deep += std::string(80, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(ServeJson, DuplicateObjectKeysAreRejected) {
  // Last-wins duplicate handling silently dropped client data; a request
  // with two `seed` members is a client bug the server must surface.
  Result<Json> dup = Json::Parse("{\"a\":1,\"a\":2}");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos)
      << dup.status().message();
  EXPECT_FALSE(Json::Parse("{\"o\":{\"x\":1,\"x\":1}}").ok());
  // The same key in sibling objects is fine.
  EXPECT_TRUE(Json::Parse("{\"a\":1,\"b\":{\"a\":1}}").ok());
}

TEST(ServeJson, IntegerOverflowIsAnErrorNotSilentFolding) {
  // Literals beyond long long used to fold to a nearby double silently;
  // a seed of 2^64 would quietly become a different seed.
  EXPECT_FALSE(Json::Parse("{\"a\":9223372036854775808}").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":-9223372036854775809}").ok());
  // In-range integers round-trip exactly (2^62 is double-representable).
  Result<Json> big = Json::Parse("{\"a\":4611686018427387904}");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big.value().Find("a")->AsInt(), 4611686018427387904LL);
  // Doubles outside long long's range fold to the caller's default
  // (never an out-of-range cast), so range validators reject them.
  Result<Json> huge = Json::Parse("{\"a\":1e300}");
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(huge.value().Find("a")->AsInt(-1), -1);
}

TEST(ServeJson, SetOverwritesInPlaceAndFindMissesReturnNull) {
  Json obj = Json::Object();
  obj.Set("a", Json::Int(1));
  obj.Set("b", Json::Int(2));
  obj.Set("a", Json::Int(9));
  EXPECT_EQ(obj.Dump(), "{\"a\":9,\"b\":2}");
  EXPECT_EQ(obj.Find("c"), nullptr);
  ASSERT_NE(obj.Find("a"), nullptr);
  EXPECT_EQ(obj.Find("a")->AsInt(), 9);
}

// --- protocol ----------------------------------------------------------

TEST(ServeProtocol, ParsesTheEnvelopeAndEchoesIdVerbatim) {
  Result<Request> r =
      ParseRequest("{\"id\":\"abc\",\"verb\":\"ping\",\"deadline_ms\":250}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().id.AsString(), "abc");
  EXPECT_EQ(r.value().verb, "ping");
  EXPECT_EQ(r.value().deadline_ms, 250.0);

  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2]").ok());
  EXPECT_FALSE(ParseRequest("{\"id\":1}").ok());
  EXPECT_FALSE(ParseRequest("{\"verb\":\"\"}").ok());
  EXPECT_FALSE(ParseRequest("{\"verb\":\"ping\",\"deadline_ms\":-1}").ok());
}

TEST(ServeProtocol, ResponseFramingIsPinned) {
  Json result = Json::Object();
  result.Set("pong", Json::Bool(true));
  EXPECT_EQ(OkResponse(Json::Int(3), result, Json::Null()),
            "{\"id\":3,\"ok\":true,\"result\":{\"pong\":true}}");
  Json serve_info = Json::Object();
  serve_info.Set("warm", Json::Bool(false));
  EXPECT_EQ(
      OkResponse(Json::Null(), result, serve_info),
      "{\"id\":null,\"ok\":true,\"result\":{\"pong\":true},"
      "\"serve\":{\"warm\":false}}");
  EXPECT_EQ(ErrorResponse(Json::Int(4), ErrorCode::kOverloaded, "shed"),
            "{\"id\":4,\"ok\":false,\"error\":{\"code\":\"overloaded\","
            "\"message\":\"shed\"}}");
}

TEST(ServeProtocol, StatusCodesMapOntoTheWireVocabulary) {
  EXPECT_EQ(CodeFromStatus(Status::InvalidArgument("x")),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeFromStatus(Status::NotFound("x")), ErrorCode::kNotFound);
  EXPECT_EQ(CodeFromStatus(Status::FailedPrecondition("x")),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(CodeFromStatus(Status::Internal("x")), ErrorCode::kInternal);
}

// --- session registry --------------------------------------------------

Graph TinyGraph(uint64_t seed) {
  Json spec = Json::Object();
  spec.Set("network", Json::Str("er"));
  spec.Set("nodes", Json::Int(50));
  spec.Set("edges", Json::Int(200));
  spec.Set("net_seed", Json::Int(static_cast<long long>(seed)));
  Result<Graph> g = BuildGraphFromSpec(spec);
  EXPECT_TRUE(g.ok()) << g.status().message();
  return std::move(g.value());
}

TEST(ServeSession, GenerationsAreUniqueAndReloadBumpsThem) {
  SessionRegistry registry(/*max_graphs=*/2, /*max_params=*/2);
  Result<GraphSession> a = registry.AddGraph("g", TinyGraph(1));
  ASSERT_TRUE(a.ok());
  Result<GraphSession> b = registry.AddGraph("g", TinyGraph(2));
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b.value().generation, a.value().generation);
  // The old pin stays alive for in-flight users even after the reload.
  EXPECT_NE(a.value().graph, b.value().graph);

  uint64_t dropped = 0;
  ASSERT_TRUE(registry.RemoveGraph("g", &dropped).ok());
  EXPECT_EQ(dropped, b.value().generation);
  EXPECT_FALSE(registry.GetGraph("g").ok());
  EXPECT_FALSE(registry.RemoveGraph("g").ok());
}

TEST(ServeSession, CapsRefuseNewNamesButAllowReloads) {
  SessionRegistry registry(/*max_graphs=*/1, /*max_params=*/1);
  ASSERT_TRUE(registry.AddGraph("g", TinyGraph(1)).ok());
  // Replacing the existing name is fine; a second name is over the cap.
  EXPECT_TRUE(registry.AddGraph("g", TinyGraph(2)).ok());
  Result<GraphSession> over = registry.AddGraph("g2", TinyGraph(3));
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), Status::Code::kFailedPrecondition);
}

TEST(ServeSession, GraphSpecValidation) {
  Json bad = Json::Object();
  bad.Set("network", Json::Str("mars"));
  EXPECT_FALSE(BuildGraphFromSpec(bad).ok());
  Json empty = Json::Object();
  EXPECT_FALSE(BuildGraphFromSpec(empty).ok());
  Json params_bad = Json::Object();
  params_bad.Set("config", Json::Str("no-such-config"));
  EXPECT_FALSE(BuildParamsFromSpec(params_bad).ok());
}

// --- admission control -------------------------------------------------

TEST(ServeAdmission, AdmitsUpToConcurrencyAndReleasesSlots) {
  AdmissionController gate({/*concurrency=*/2, /*queue_capacity=*/4});
  double queued_ms = -1.0;
  EXPECT_EQ(gate.Admit(0.0, &queued_ms), AdmissionController::Decision::kAdmitted);
  EXPECT_GE(queued_ms, 0.0);
  EXPECT_EQ(gate.Admit(0.0), AdmissionController::Decision::kAdmitted);
  gate.Release();
  gate.Release();
  gate.AwaitIdle();
  const Json stats = gate.Describe();
  EXPECT_EQ(stats.Find("admitted")->AsInt(), 2);
  EXPECT_EQ(stats.Find("running")->AsInt(), 0);
}

TEST(ServeAdmission, DeadlineFailsAQueuedRequestWithoutRunningIt) {
  // Zero slots: the request can never be admitted, so a finite deadline
  // must fail it deterministically.
  AdmissionController gate({/*concurrency=*/0, /*queue_capacity=*/4});
  EXPECT_EQ(gate.Admit(5.0), AdmissionController::Decision::kDeadlineExceeded);
  EXPECT_EQ(gate.Describe().Find("deadline_exceeded")->AsInt(), 1);
  gate.AwaitIdle();  // the failed request left no residue
}

TEST(ServeAdmission, ShedsWhenTheQueueIsFullAndDrainFailsWaiters) {
  AdmissionController gate({/*concurrency=*/0, /*queue_capacity=*/1});
  std::atomic<int> waiter_decision{-1};
  BackgroundThread waiter([&] {
    waiter_decision.store(static_cast<int>(gate.Admit(0.0)));
  });
  // Wait until the waiter is queued, then a second arrival is shed.
  while (gate.Describe().Find("queued")->AsInt() < 1) {
  }
  EXPECT_EQ(gate.Admit(0.0), AdmissionController::Decision::kShed);
  gate.BeginDrain();
  waiter.Join();
  EXPECT_EQ(waiter_decision.load(),
            static_cast<int>(AdmissionController::Decision::kDraining));
  EXPECT_EQ(gate.Admit(0.0), AdmissionController::Decision::kDraining);
  const Json stats = gate.Describe();
  EXPECT_EQ(stats.Find("shed")->AsInt(), 1);
  EXPECT_EQ(stats.Find("max_queue_depth")->AsInt(), 1);
}

// --- warm pool ---------------------------------------------------------

TEST(ServeWarmPool, SecondAcquireOfAKeyIsAHitWithTheSameCache) {
  WarmPool pool(/*max_entries=*/4);
  auto graph = std::make_shared<const Graph>(TinyGraph(1));
  WarmLease first = pool.Acquire({/*generation=*/1, /*seed=*/4, false}, graph);
  EXPECT_FALSE(first.hit());
  RrStreamCache* cache = first.cache();
  ASSERT_NE(cache, nullptr);
  first.Release();
  WarmLease second = pool.Acquire({1, 4, false}, graph);
  EXPECT_TRUE(second.hit());
  EXPECT_EQ(second.cache(), cache);
  // Distinct coordinates get distinct entries.
  WarmLease other_seed = pool.Acquire({1, 5, false}, graph);
  EXPECT_FALSE(other_seed.hit());
  EXPECT_NE(other_seed.cache(), cache);
  WarmLease other_model = pool.Acquire({1, 4, true}, graph);
  EXPECT_FALSE(other_model.hit());
}

TEST(ServeWarmPool, SameKeyLeaseIsExclusiveUntilRelease) {
  WarmPool pool(/*max_entries=*/4);
  auto graph = std::make_shared<const Graph>(TinyGraph(1));
  WarmLease held = pool.Acquire({1, 4, false}, graph);
  std::atomic<bool> acquired{false};
  BackgroundThread contender([&] {
    WarmLease lease = pool.Acquire({1, 4, false}, graph);
    acquired.store(true);
  });
  // The contender must still be blocked on the held lease.
  EXPECT_FALSE(acquired.load());
  held.Release();
  contender.Join();
  EXPECT_TRUE(acquired.load());
}

TEST(ServeWarmPool, LruEvictionAndGenerationDropsForgetEntries) {
  WarmPool pool(/*max_entries=*/1);
  auto graph = std::make_shared<const Graph>(TinyGraph(1));
  pool.Acquire({1, 4, false}, graph).Release();
  // A second key evicts the idle first entry (cap is 1)...
  pool.Acquire({1, 5, false}, graph).Release();
  // ...so re-acquiring the first key is a miss again.
  WarmLease again = pool.Acquire({1, 4, false}, graph);
  EXPECT_FALSE(again.hit());
  again.Release();
  EXPECT_GE(pool.Describe().Find("evictions")->AsInt(), 1);

  pool.DropGeneration(1);
  EXPECT_EQ(pool.Describe().Find("entries")->AsInt(), 0);
  WarmLease fresh = pool.Acquire({1, 4, false}, graph);
  EXPECT_FALSE(fresh.hit());
}

// --- Server end-to-end -------------------------------------------------

ServerOptions GoldenOptions() {
  ServerOptions options;
  options.include_timing = false;  // byte-reproducible responses
  return options;
}

/// Run the canonical load sequence on `server`: graph "g", params "p".
void LoadFixtures(Server& server) {
  const std::string g = server.HandleLine(
      "{\"id\":1,\"verb\":\"load_graph\",\"name\":\"g\",\"network\":\"er\","
      "\"nodes\":300,\"edges\":1500}");
  ASSERT_NE(g.find("\"ok\":true"), std::string::npos) << g;
  const std::string p = server.HandleLine(
      "{\"id\":2,\"verb\":\"load_params\",\"name\":\"p\","
      "\"config\":\"config12\"}");
  ASSERT_NE(p.find("\"ok\":true"), std::string::npos) << p;
}

const char kSolveCold[] =
    "{\"id\":10,\"verb\":\"solve\",\"graph\":\"g\",\"params\":\"p\","
    "\"budgets\":[3,3],\"seed\":4,\"eval_sims\":100,\"warm\":false}";
const char kSolveWarm[] =
    "{\"id\":11,\"verb\":\"solve\",\"graph\":\"g\",\"params\":\"p\","
    "\"budgets\":[3,3],\"seed\":4,\"eval_sims\":100}";

/// Extract the Dump of one top-level member of a response line.
std::string Section(const std::string& response, const std::string& key) {
  Result<Json> parsed = Json::Parse(response);
  EXPECT_TRUE(parsed.ok()) << response;
  if (!parsed.ok()) return "";
  const Json* section = parsed.value().Find(key);
  EXPECT_NE(section, nullptr) << key << " missing in " << response;
  return section == nullptr ? "" : section->Dump();
}

TEST(ServeServer, PingStatsAndErrorPaths) {
  Server server(GoldenOptions());
  EXPECT_EQ(server.HandleLine("{\"id\":1,\"verb\":\"ping\"}"),
            "{\"id\":1,\"ok\":true,\"result\":{\"pong\":true}}");
  EXPECT_NE(server.HandleLine("garbage").find("\"code\":\"bad_request\""),
            std::string::npos);
  EXPECT_NE(
      server.HandleLine("{\"verb\":\"warp\"}").find("\"code\":\"bad_request\""),
      std::string::npos);
  EXPECT_NE(server
                .HandleLine("{\"id\":2,\"verb\":\"solve\",\"graph\":\"nope\","
                            "\"budgets\":[1]}")
                .find("\"code\":\"not_found\""),
            std::string::npos);
  const Json stats = server.Stats();
  ASSERT_NE(stats.Find("requests"), nullptr);
  EXPECT_EQ(stats.Find("requests")->Find("errors")->AsInt(), 3);
}

TEST(ServeServer, WarmResultIsByteIdenticalToColdAndSamplesNothing) {
  Server server(GoldenOptions());
  LoadFixtures(server);

  const std::string cold = server.HandleLine(kSolveCold);
  ASSERT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
  const std::string warm1 = server.HandleLine(kSolveWarm);
  const std::string warm2 = server.HandleLine(kSolveWarm);

  // The determinism contract: `result` is bit-identical cold vs warm.
  const std::string want = Section(cold, "result");
  EXPECT_EQ(Section(warm1, "result"), want);
  EXPECT_EQ(Section(warm2, "result"), want);

  // Warm accounting: the first warm solve fills the pool, the repeat
  // reuses it — zero RR sets sampled, strictly fewer than the miss.
  Result<Json> warm2_parsed = Json::Parse(warm2);
  ASSERT_TRUE(warm2_parsed.ok());
  const Json* serve_info = warm2_parsed.value().Find("serve");
  ASSERT_NE(serve_info, nullptr);
  EXPECT_TRUE(serve_info->Find("warm_hit")->AsBool());
  EXPECT_EQ(serve_info->Find("rr_sets_sampled")->AsInt(), 0);
  EXPECT_GT(serve_info->Find("rr_sets_served")->AsInt(), 0);
}

TEST(ServeServer, ResultsAreIdenticalAcrossServerInstances) {
  // Two fresh daemons, same requests → same bytes (seed-only determinism;
  // nothing about process or cache history may leak into `result`).
  std::string first;
  {
    Server server(GoldenOptions());
    LoadFixtures(server);
    first = Section(server.HandleLine(kSolveWarm), "result");
  }
  Server server(GoldenOptions());
  LoadFixtures(server);
  EXPECT_EQ(Section(server.HandleLine(kSolveWarm), "result"), first);
  EXPECT_EQ(Section(server.HandleLine(kSolveCold), "result"), first);
}

TEST(ServeServer, ReloadingAGraphInvalidatesItsWarmEntries) {
  Server server(GoldenOptions());
  LoadFixtures(server);
  ASSERT_NE(server.HandleLine(kSolveWarm).find("\"ok\":true"),
            std::string::npos);
  // Reload "g" with a different topology: the warm entry keyed on the old
  // generation must not serve the new graph's solves.
  const std::string reload = server.HandleLine(
      "{\"id\":3,\"verb\":\"load_graph\",\"name\":\"g\",\"network\":\"er\","
      "\"nodes\":300,\"edges\":1500,\"net_seed\":7}");
  ASSERT_NE(reload.find("\"ok\":true"), std::string::npos) << reload;
  const std::string after = server.HandleLine(kSolveWarm);
  Result<Json> parsed = Json::Parse(after);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().Find("serve")->Find("warm_hit")->AsBool());
}

TEST(ServeServer, UnloadDropsSessionsAndWarmState) {
  Server server(GoldenOptions());
  LoadFixtures(server);
  ASSERT_NE(server.HandleLine(kSolveWarm).find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(server.HandleLine("{\"id\":4,\"verb\":\"unload\",\"graph\":\"g\"}")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(server.HandleLine(kSolveWarm).find("\"code\":\"not_found\""),
            std::string::npos);
  EXPECT_EQ(server.Stats().Find("warm_cache")->Find("entries")->AsInt(), 0);
}

TEST(ServeServer, MetricsVerbReturnsTheTimingGatedExposition) {
  Server server(GoldenOptions());  // include_timing off: golden mode
  ASSERT_NE(server.HandleLine("{\"id\":1,\"verb\":\"ping\"}")
                .find("\"ok\":true"),
            std::string::npos);
  const std::string response =
      server.HandleLine("{\"id\":2,\"verb\":\"metrics\"}");
  Result<Json> parsed = Json::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_TRUE(parsed.value().Find("ok")->AsBool());
  const Json* result = parsed.value().Find("result");
  ASSERT_NE(result, nullptr) << response;
  EXPECT_EQ(result->Find("format")->AsString(), "prometheus-text");
  const std::string& text = result->Find("text")->AsString();
  EXPECT_NE(text.find("# TYPE uic_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("uic_serve_requests_total{status=\"ok\"}"),
            std::string::npos);
  EXPECT_NE(text.find("uic_serve_verb_requests_total{verb=\"ping\"}"),
            std::string::npos);
  // The timing gate: no wall-clock series may reach a golden-mode scrape.
  EXPECT_EQ(text.find("uic_serve_solve_latency_ms"), std::string::npos);
  EXPECT_EQ(text.find("_bucket"), std::string::npos);
  EXPECT_EQ(text.find("_us_total"), std::string::npos);

  // With timing on, the latency histogram family appears.
  Server timed(ServerOptions{});
  EXPECT_NE(timed.MetricsText().find("uic_serve_solve_latency_ms_bucket"),
            std::string::npos);
}

TEST(ServeServer, ShutdownVerbDrainsAndPipeSessionEnds) {
  Server server(GoldenOptions());
  EXPECT_NE(server.HandleLine("{\"id\":1,\"verb\":\"shutdown\"}")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_TRUE(server.stopping());
  // Post-drain requests that need admission are refused as unavailable.
  EXPECT_NE(server
                .HandleLine("{\"id\":2,\"verb\":\"load_graph\",\"name\":\"g\","
                            "\"network\":\"er\",\"nodes\":50,\"edges\":200}")
                .find("\"code\":\"unavailable\""),
            std::string::npos);
}

TEST(ServeServer, FourConcurrentTcpClientsGetByteIdenticalResults) {
  // The reference bytes, served single-threaded over HandleLine.
  Server reference(GoldenOptions());
  LoadFixtures(reference);
  const std::string want = Section(reference.HandleLine(kSolveWarm), "result");

  Server server(GoldenOptions());
  LoadFixtures(server);
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  const uint16_t port = listener.value().port();
  BackgroundThread serving(
      [&] { (void)server.ServeTcp(listener.value()); });

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 3;
  std::vector<std::string> results(kClients * kRequestsPerClient);
  std::vector<std::atomic<bool>> client_ok(kClients);
  for (auto& ok : client_ok) ok.store(false);
  {
    std::vector<std::unique_ptr<BackgroundThread>> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.push_back(std::make_unique<BackgroundThread>([&, c] {
        Result<TcpConnection> conn = TcpListener::Connect(port);
        if (!conn.ok()) return;
        FdLineChannel channel(conn.value().fd(), conn.value().fd(),
                              /*socket_fds=*/true);
        for (int r = 0; r < kRequestsPerClient; ++r) {
          if (!channel.WriteLine(kSolveWarm)) return;
          std::string response;
          if (!channel.ReadLine(&response)) return;
          // Raw line only; parsing (with its gtest assertions) happens on
          // the main thread after the join.
          results[static_cast<size_t>(c * kRequestsPerClient + r)] =
              std::move(response);
        }
        client_ok[static_cast<size_t>(c)].store(true);
      }));
    }
    for (auto& client : clients) client->Join();
  }
  // Shut the daemon down and join the accept loop (drain contract).
  {
    Result<TcpConnection> conn = TcpListener::Connect(port);
    ASSERT_TRUE(conn.ok());
    FdLineChannel channel(conn.value().fd(), conn.value().fd(), true);
    ASSERT_TRUE(channel.WriteLine("{\"id\":99,\"verb\":\"shutdown\"}"));
    std::string response;
    ASSERT_TRUE(channel.ReadLine(&response));
  }
  serving.Join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(client_ok[static_cast<size_t>(c)].load()) << "client " << c;
  }
  for (const std::string& response : results) {
    EXPECT_EQ(Section(response, "result"), want);
  }
}

// --- failpoints: channel-level fault injection -------------------------
//
// The send/recv/poll sites are exercised over a pipe pair, not TCP: both
// ends of an in-process TCP conversation share FdLineChannel, so a channel
// failpoint would fire nondeterministically on whichever side reads first.
// With a pipe, exactly one channel reads and one writes.

/// Registry hygiene: every failpoint test starts and ends with a clean
/// registry so a leaked policy cannot fail an unrelated test.
class FailpointChannel : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::ClearAll();
    ASSERT_EQ(pipe(fds_), 0);
  }
  void TearDown() override {
    failpoint::ClearAll();
    if (fds_[0] >= 0) close(fds_[0]);
    if (fds_[1] >= 0) close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FailpointChannel, ShortReadsReassembleTheLine) {
  FdLineChannel writer(/*read_fd=*/-1, fds_[1]);
  FdLineChannel reader(fds_[0], /*write_fd=*/-1);
  ASSERT_TRUE(writer.WriteLine("{\"id\":1,\"verb\":\"ping\"}"));
  // Every read capped at one byte: the loop must reassemble the frame.
  ASSERT_TRUE(failpoint::Set("serve.net.recv", "short_io(1)").ok());
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "{\"id\":1,\"verb\":\"ping\"}");
}

TEST_F(FailpointChannel, ReadErrorFailsOnceThenTheChannelRecovers) {
  FdLineChannel writer(-1, fds_[1]);
  FdLineChannel reader(fds_[0], -1);
  ASSERT_TRUE(writer.WriteLine("hello"));
  ASSERT_TRUE(failpoint::Set("serve.net.recv", "error(EIO):once").ok());
  std::string line;
  EXPECT_FALSE(reader.ReadLine(&line));
  // The fault was transient (once): the data is still in the pipe and the
  // next read must deliver it — a failed read never poisons the channel.
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "hello");
}

TEST_F(FailpointChannel, EintrIsRetriedTransparently) {
  FdLineChannel writer(-1, fds_[1]);
  FdLineChannel reader(fds_[0], -1);
  ASSERT_TRUE(writer.WriteLine("hello"));
  ASSERT_TRUE(failpoint::Set("serve.net.recv", "error(EINTR):once").ok());
  ASSERT_TRUE(failpoint::Set("serve.net.poll", "error(EINTR):once").ok());
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));  // both EINTRs retried in-loop
  EXPECT_EQ(line, "hello");
}

TEST_F(FailpointChannel, PollTransientFailuresAreBoundedThenGiveUp) {
  // Persistent ENOMEM from poll(): the channel backs off through the poll
  // interval a bounded number of times (~1s total), then reports failure
  // instead of spinning forever.
  FdLineChannel reader(fds_[0], -1);
  ASSERT_TRUE(failpoint::Set("serve.net.poll", "error(ENOMEM)").ok());
  std::string line;
  EXPECT_FALSE(reader.ReadLine(&line));
}

TEST_F(FailpointChannel, ShortWritesCompleteTheFrame) {
  FdLineChannel writer(-1, fds_[1]);
  FdLineChannel reader(fds_[0], -1);
  ASSERT_TRUE(failpoint::Set("serve.net.send", "short_io(1)").ok());
  ASSERT_TRUE(writer.WriteLine("{\"id\":2,\"verb\":\"stats\"}"));
  failpoint::ClearAll();
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "{\"id\":2,\"verb\":\"stats\"}");
}

TEST_F(FailpointChannel, WriteErrorFailsOnceThenTheChannelRecovers) {
  FdLineChannel writer(-1, fds_[1]);
  FdLineChannel reader(fds_[0], -1);
  ASSERT_TRUE(failpoint::Set("serve.net.send", "error(EPIPE):once").ok());
  EXPECT_FALSE(writer.WriteLine("lost"));
  ASSERT_TRUE(writer.WriteLine("kept"));
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "kept");  // the failed frame wrote nothing
}

// --- failpoints: server matrix ------------------------------------------

class FailpointServer : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::ClearAll(); }
  void TearDown() override { failpoint::ClearAll(); }
};

/// Assert `response` is a typed protocol error carrying `code`.
void ExpectErrorCode(const std::string& response, const std::string& code) {
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("\"code\":\"" + code + "\""), std::string::npos)
      << response;
}

/// The recovery half of the matrix contract: after an injected failure
/// the same daemon instance must answer a ping AND a full solve.
void ExpectStillServes(Server& server) {
  EXPECT_EQ(server.HandleLine("{\"id\":91,\"verb\":\"ping\"}"),
            "{\"id\":91,\"ok\":true,\"result\":{\"pong\":true}}");
  const std::string solve = server.HandleLine(kSolveWarm);
  EXPECT_NE(solve.find("\"ok\":true"), std::string::npos) << solve;
}

TEST_F(FailpointServer, EveryInjectedFailureYieldsATypedErrorThenRecovers) {
  struct Case {
    const char* site;
    const char* policy;
    const char* request;
    const char* code;
  };
  const Case kCases[] = {
      // Admission forced to shed on an idle server.
      {"serve.scheduler.admit", "error(EIO):once", kSolveWarm, "overloaded"},
      // Post-admission internal failure in the solve path.
      {"serve.solve.admitted", "error(EIO):once", kSolveWarm, "internal"},
      // Graph lookup loses the race with a concurrent unload.
      {"serve.session.get_graph", "error(EIO):once", kSolveWarm, "not_found"},
      // Registry insert fails after the graph was built.
      {"serve.session.add_graph", "error(EIO):once",
       "{\"id\":21,\"verb\":\"load_graph\",\"name\":\"g2\","
       "\"network\":\"er\",\"nodes\":50,\"edges\":200}",
       "internal"},
  };
  Server server(GoldenOptions());
  LoadFixtures(server);
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.site);
    ASSERT_TRUE(failpoint::Set(c.site, c.policy).ok());
    ExpectErrorCode(server.HandleLine(c.request), c.code);
    ExpectStillServes(server);
    failpoint::ClearAll();
  }
}

TEST_F(FailpointServer, SerializationFaultsSurfaceAsNotFoundAndRecover) {
  Server server(GoldenOptions());
  const std::string graph_path = ::testing::TempDir() + "uic_fp_graph.txt";
  const std::string params_path = ::testing::TempDir() + "uic_fp_params.txt";
  ASSERT_TRUE(SaveGraph(TinyGraph(3), graph_path).ok());
  Json params_spec = Json::Object();
  params_spec.Set("config", Json::Str("config12"));
  Result<ItemParams> params = BuildParamsFromSpec(params_spec);
  ASSERT_TRUE(params.ok()) << params.status().message();
  ASSERT_TRUE(SaveItemParams(params.value(), params_path).ok());

  const std::string load_graph_req =
      "{\"id\":30,\"verb\":\"load_graph\",\"name\":\"gfile\",\"path\":\"" +
      graph_path + "\"}";
  const std::string load_params_req =
      "{\"id\":31,\"verb\":\"load_params\",\"name\":\"pfile\",\"path\":\"" +
      params_path + "\"}";

  // Control: both files load cleanly with no faults armed.
  ASSERT_NE(server.HandleLine(load_graph_req).find("\"ok\":true"),
            std::string::npos);
  ASSERT_NE(server.HandleLine(load_params_req).find("\"ok\":true"),
            std::string::npos);

  // An injected read error and a truncated file both surface as the
  // typed IO failure (not_found on the wire), never a crash or a
  // half-loaded session.
  ASSERT_TRUE(
      failpoint::Set("core.serialization.load_graph", "error(EIO):once").ok());
  ExpectErrorCode(server.HandleLine(load_graph_req), "not_found");
  ASSERT_TRUE(
      failpoint::Set("core.serialization.load_graph", "short_io(40):once").ok());
  ExpectErrorCode(server.HandleLine(load_graph_req), "not_found");
  ASSERT_TRUE(
      failpoint::Set("core.serialization.load_params", "error(EIO):once").ok());
  ExpectErrorCode(server.HandleLine(load_params_req), "not_found");

  // All triggers spent: the same files load again on the same daemon.
  EXPECT_NE(server.HandleLine(load_graph_req).find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(server.HandleLine(load_params_req).find("\"ok\":true"),
            std::string::npos);
}

TEST_F(FailpointServer, EveryKPolicyShedsDeterministically) {
  Server server(GoldenOptions());
  LoadFixtures(server);
  // every(2) on admission: solves alternate admitted, shed, admitted...
  // purely off the evaluation counter — rerunning gives the same pattern.
  ASSERT_TRUE(
      failpoint::Set("serve.scheduler.admit", "error(EIO):every(2)").ok());
  EXPECT_NE(server.HandleLine(kSolveWarm).find("\"ok\":true"),
            std::string::npos);
  ExpectErrorCode(server.HandleLine(kSolveWarm), "overloaded");
  EXPECT_NE(server.HandleLine(kSolveWarm).find("\"ok\":true"),
            std::string::npos);
}

TEST_F(FailpointServer, DelayPoliciesNeverPerturbTheResultPayload) {
  // The robustness machinery must not touch welfare estimates: a solve
  // slowed down at three different sites returns bit-identical `result`.
  Server server(GoldenOptions());
  LoadFixtures(server);
  const std::string want = Section(server.HandleLine(kSolveCold), "result");
  ASSERT_TRUE(failpoint::Configure("serve.warm.acquire=delay_ms(2),"
                                   "serve.solve.admitted=delay_ms(2),"
                                   "serve.session.get_graph=delay_ms(1)")
                  .ok());
  EXPECT_EQ(Section(server.HandleLine(kSolveWarm), "result"), want);
}

TEST_F(FailpointServer, MidSolveDeadlineReturnsPartialStatsAndRecovers) {
  Server server(GoldenOptions());
  LoadFixtures(server);
  // Queued-phase admission passes (the queue is empty), then the injected
  // post-admission delay blows the 10ms end-to-end budget mid-solve.
  ASSERT_TRUE(
      failpoint::Set("serve.solve.admitted", "delay_ms(30):once").ok());
  const std::string response = server.HandleLine(
      "{\"id\":40,\"verb\":\"solve\",\"graph\":\"g\",\"params\":\"p\","
      "\"budgets\":[3,3],\"seed\":4,\"eval_sims\":100,\"deadline_ms\":10}");
  ExpectErrorCode(response, "deadline_exceeded");
  Result<Json> parsed = Json::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  const Json* error = parsed.value().Find("error");
  ASSERT_NE(error, nullptr) << response;
  // The partial payload reports progress, never a mistakable result.
  const Json* partial = error->Find("partial");
  ASSERT_NE(partial, nullptr) << response;
  EXPECT_NE(partial->Find("num_rr_sets"), nullptr) << response;
  EXPECT_NE(partial->Find("rr_sets_sampled"), nullptr) << response;
  EXPECT_NE(partial->Find("rr_sets_served"), nullptr) << response;
  EXPECT_EQ(parsed.value().Find("result"), nullptr) << response;
  ExpectStillServes(server);
}

TEST_F(FailpointServer, DeadlineExceededSolvesCountAsErrorsNeverSolves) {
  // The request-accounting invariant: requests == ok + errors and
  // solves <= ok. A solve that blows its deadline mid-flight lands in
  // errors, never solves (the old RecordSolve tallied it regardless, so
  // solves could exceed ok).
  Server server(GoldenOptions());
  LoadFixtures(server);
  ASSERT_NE(server.HandleLine(kSolveWarm).find("\"ok\":true"),
            std::string::npos);
  ASSERT_TRUE(
      failpoint::Set("serve.solve.admitted", "delay_ms(30):once").ok());
  ExpectErrorCode(
      server.HandleLine(
          "{\"id\":50,\"verb\":\"solve\",\"graph\":\"g\",\"params\":\"p\","
          "\"budgets\":[3,3],\"seed\":4,\"eval_sims\":100,"
          "\"deadline_ms\":10}"),
      "deadline_exceeded");
  const Json stats = server.Stats();
  const Json* requests = stats.Find("requests");
  ASSERT_NE(requests, nullptr);
  const long long ok = requests->Find("ok")->AsInt();
  const long long errors = requests->Find("errors")->AsInt();
  const long long solves = requests->Find("solves")->AsInt();
  EXPECT_EQ(requests->Find("requests")->AsInt(), ok + errors);
  EXPECT_LE(solves, ok);
  // This session: two loads + one ok solve, one deadline-exceeded solve.
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(solves, 1);
}

TEST_F(FailpointServer, SetFailpointsVerbRequiresTestingMode) {
  Server server(GoldenOptions());  // testing defaults to false
  ExpectErrorCode(
      server.HandleLine(
          "{\"id\":1,\"verb\":\"set_failpoints\",\"failpoints\":{}}"),
      "failed_precondition");
  EXPECT_FALSE(failpoint::AnyActive());
}

TEST_F(FailpointServer, SetFailpointsVerbArmsFiresAndDisarms) {
  ServerOptions options = GoldenOptions();
  options.testing = true;
  Server server(options);
  LoadFixtures(server);
  const std::string armed = server.HandleLine(
      "{\"id\":1,\"verb\":\"set_failpoints\",\"failpoints\":"
      "{\"serve.solve.admitted\":\"error(EIO):once\"}}");
  ASSERT_NE(armed.find("\"ok\":true"), std::string::npos) << armed;
  EXPECT_NE(
      armed.find("\"serve.solve.admitted\":\"error(EIO):once\""),
      std::string::npos)
      << armed;
  ExpectErrorCode(server.HandleLine(kSolveWarm), "internal");
  ExpectStillServes(server);
  // 'off' disarms and the response reports an empty armed set.
  const std::string off = server.HandleLine(
      "{\"id\":2,\"verb\":\"set_failpoints\",\"failpoints\":"
      "{\"serve.solve.admitted\":\"off\"}}");
  ASSERT_NE(off.find("\"ok\":true"), std::string::npos) << off;
  EXPECT_NE(off.find("\"armed\":{}"), std::string::npos) << off;
  // Malformed input is a bad_request, and arms nothing.
  ExpectErrorCode(server.HandleLine(
                      "{\"id\":3,\"verb\":\"set_failpoints\",\"failpoints\":"
                      "{\"a\":\"bogus(1)\"}}"),
                  "bad_request");
  ExpectErrorCode(
      server.HandleLine("{\"id\":4,\"verb\":\"set_failpoints\"}"),
      "bad_request");
  EXPECT_FALSE(failpoint::AnyActive());
}

TEST_F(FailpointServer, AcceptFaultsNeverTakeDownTheListener) {
  Server server(GoldenOptions());
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  const uint16_t port = listener.value().port();
  // The accept site is TCP-safe to inject in-process: only the server
  // side ever calls Accept (clients connect). An aborted handshake and an
  // fd-table-exhaustion storm must both leave the listener serving.
  ASSERT_TRUE(
      failpoint::Set("serve.net.accept", "error(ECONNABORTED):once").ok());
  BackgroundThread serving([&] { (void)server.ServeTcp(listener.value()); });

  {
    Result<TcpConnection> conn = TcpListener::Connect(port);
    ASSERT_TRUE(conn.ok()) << conn.status().message();
    FdLineChannel channel(conn.value().fd(), conn.value().fd(), true);
    ASSERT_TRUE(channel.WriteLine("{\"id\":1,\"verb\":\"ping\"}"));
    std::string response;
    ASSERT_TRUE(channel.ReadLine(&response));
    EXPECT_EQ(response, "{\"id\":1,\"ok\":true,\"result\":{\"pong\":true}}");
  }
  ASSERT_TRUE(failpoint::Set("serve.net.accept", "error(EMFILE):once").ok());
  {
    Result<TcpConnection> conn = TcpListener::Connect(port);
    ASSERT_TRUE(conn.ok()) << conn.status().message();
    FdLineChannel channel(conn.value().fd(), conn.value().fd(), true);
    ASSERT_TRUE(channel.WriteLine("{\"id\":2,\"verb\":\"shutdown\"}"));
    std::string response;
    ASSERT_TRUE(channel.ReadLine(&response));
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  }
  serving.Join();
}

}  // namespace
}  // namespace serve
}  // namespace uic
