// Tests for the serve subsystem: the JSON model, the wire protocol, the
// session registry, admission control, the warm pool, and the Server's
// end-to-end determinism contract — a solve's `result` payload is
// bit-identical cold, warm, across server instances, and across four
// concurrent TCP clients.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph.h"
#include "serve/json.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/session.h"
#include "serve/warm_cache.h"

namespace uic {
namespace serve {
namespace {

// --- Json --------------------------------------------------------------

TEST(ServeJson, DumpIsInsertionOrderedAndIntegralNumbersArePlain) {
  Json obj = Json::Object();
  obj.Set("zeta", Json::Int(3));
  obj.Set("alpha", Json::Bool(true));
  obj.Set("pi", Json::Number(0.5));
  Json arr = Json::Array();
  arr.Append(Json::Str("a\"b"));
  arr.Append(Json::Null());
  obj.Set("list", std::move(arr));
  EXPECT_EQ(obj.Dump(),
            "{\"zeta\":3,\"alpha\":true,\"pi\":0.5,\"list\":[\"a\\\"b\",null]}");
}

TEST(ServeJson, ParseDumpRoundTripIsExact) {
  const std::string line =
      "{\"id\":7,\"verb\":\"solve\",\"budgets\":[3,3],\"eps\":0.5,"
      "\"warm\":false,\"note\":\"tab\\tnl\\n\",\"sub\":{\"x\":null}}";
  Result<Json> parsed = Json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().Dump(), line);
}

TEST(ServeJson, ParserRejectsGarbage) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("{'a':1}").ok());
  // Depth cap: 80 nested arrays exceed the 64-deep limit.
  std::string deep(80, '[');
  deep += std::string(80, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(ServeJson, SetOverwritesInPlaceAndFindMissesReturnNull) {
  Json obj = Json::Object();
  obj.Set("a", Json::Int(1));
  obj.Set("b", Json::Int(2));
  obj.Set("a", Json::Int(9));
  EXPECT_EQ(obj.Dump(), "{\"a\":9,\"b\":2}");
  EXPECT_EQ(obj.Find("c"), nullptr);
  ASSERT_NE(obj.Find("a"), nullptr);
  EXPECT_EQ(obj.Find("a")->AsInt(), 9);
}

// --- protocol ----------------------------------------------------------

TEST(ServeProtocol, ParsesTheEnvelopeAndEchoesIdVerbatim) {
  Result<Request> r =
      ParseRequest("{\"id\":\"abc\",\"verb\":\"ping\",\"deadline_ms\":250}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().id.AsString(), "abc");
  EXPECT_EQ(r.value().verb, "ping");
  EXPECT_EQ(r.value().deadline_ms, 250.0);

  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2]").ok());
  EXPECT_FALSE(ParseRequest("{\"id\":1}").ok());
  EXPECT_FALSE(ParseRequest("{\"verb\":\"\"}").ok());
  EXPECT_FALSE(ParseRequest("{\"verb\":\"ping\",\"deadline_ms\":-1}").ok());
}

TEST(ServeProtocol, ResponseFramingIsPinned) {
  Json result = Json::Object();
  result.Set("pong", Json::Bool(true));
  EXPECT_EQ(OkResponse(Json::Int(3), result, Json::Null()),
            "{\"id\":3,\"ok\":true,\"result\":{\"pong\":true}}");
  Json serve_info = Json::Object();
  serve_info.Set("warm", Json::Bool(false));
  EXPECT_EQ(
      OkResponse(Json::Null(), result, serve_info),
      "{\"id\":null,\"ok\":true,\"result\":{\"pong\":true},"
      "\"serve\":{\"warm\":false}}");
  EXPECT_EQ(ErrorResponse(Json::Int(4), ErrorCode::kOverloaded, "shed"),
            "{\"id\":4,\"ok\":false,\"error\":{\"code\":\"overloaded\","
            "\"message\":\"shed\"}}");
}

TEST(ServeProtocol, StatusCodesMapOntoTheWireVocabulary) {
  EXPECT_EQ(CodeFromStatus(Status::InvalidArgument("x")),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeFromStatus(Status::NotFound("x")), ErrorCode::kNotFound);
  EXPECT_EQ(CodeFromStatus(Status::FailedPrecondition("x")),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(CodeFromStatus(Status::Internal("x")), ErrorCode::kInternal);
}

// --- session registry --------------------------------------------------

Graph TinyGraph(uint64_t seed) {
  Json spec = Json::Object();
  spec.Set("network", Json::Str("er"));
  spec.Set("nodes", Json::Int(50));
  spec.Set("edges", Json::Int(200));
  spec.Set("net_seed", Json::Int(static_cast<long long>(seed)));
  Result<Graph> g = BuildGraphFromSpec(spec);
  EXPECT_TRUE(g.ok()) << g.status().message();
  return std::move(g.value());
}

TEST(ServeSession, GenerationsAreUniqueAndReloadBumpsThem) {
  SessionRegistry registry(/*max_graphs=*/2, /*max_params=*/2);
  Result<GraphSession> a = registry.AddGraph("g", TinyGraph(1));
  ASSERT_TRUE(a.ok());
  Result<GraphSession> b = registry.AddGraph("g", TinyGraph(2));
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b.value().generation, a.value().generation);
  // The old pin stays alive for in-flight users even after the reload.
  EXPECT_NE(a.value().graph, b.value().graph);

  uint64_t dropped = 0;
  ASSERT_TRUE(registry.RemoveGraph("g", &dropped).ok());
  EXPECT_EQ(dropped, b.value().generation);
  EXPECT_FALSE(registry.GetGraph("g").ok());
  EXPECT_FALSE(registry.RemoveGraph("g").ok());
}

TEST(ServeSession, CapsRefuseNewNamesButAllowReloads) {
  SessionRegistry registry(/*max_graphs=*/1, /*max_params=*/1);
  ASSERT_TRUE(registry.AddGraph("g", TinyGraph(1)).ok());
  // Replacing the existing name is fine; a second name is over the cap.
  EXPECT_TRUE(registry.AddGraph("g", TinyGraph(2)).ok());
  Result<GraphSession> over = registry.AddGraph("g2", TinyGraph(3));
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), Status::Code::kFailedPrecondition);
}

TEST(ServeSession, GraphSpecValidation) {
  Json bad = Json::Object();
  bad.Set("network", Json::Str("mars"));
  EXPECT_FALSE(BuildGraphFromSpec(bad).ok());
  Json empty = Json::Object();
  EXPECT_FALSE(BuildGraphFromSpec(empty).ok());
  Json params_bad = Json::Object();
  params_bad.Set("config", Json::Str("no-such-config"));
  EXPECT_FALSE(BuildParamsFromSpec(params_bad).ok());
}

// --- admission control -------------------------------------------------

TEST(ServeAdmission, AdmitsUpToConcurrencyAndReleasesSlots) {
  AdmissionController gate({/*concurrency=*/2, /*queue_capacity=*/4});
  double queued_ms = -1.0;
  EXPECT_EQ(gate.Admit(0.0, &queued_ms), AdmissionController::Decision::kAdmitted);
  EXPECT_GE(queued_ms, 0.0);
  EXPECT_EQ(gate.Admit(0.0), AdmissionController::Decision::kAdmitted);
  gate.Release();
  gate.Release();
  gate.AwaitIdle();
  const Json stats = gate.Describe();
  EXPECT_EQ(stats.Find("admitted")->AsInt(), 2);
  EXPECT_EQ(stats.Find("running")->AsInt(), 0);
}

TEST(ServeAdmission, DeadlineFailsAQueuedRequestWithoutRunningIt) {
  // Zero slots: the request can never be admitted, so a finite deadline
  // must fail it deterministically.
  AdmissionController gate({/*concurrency=*/0, /*queue_capacity=*/4});
  EXPECT_EQ(gate.Admit(5.0), AdmissionController::Decision::kDeadlineExceeded);
  EXPECT_EQ(gate.Describe().Find("deadline_exceeded")->AsInt(), 1);
  gate.AwaitIdle();  // the failed request left no residue
}

TEST(ServeAdmission, ShedsWhenTheQueueIsFullAndDrainFailsWaiters) {
  AdmissionController gate({/*concurrency=*/0, /*queue_capacity=*/1});
  std::atomic<int> waiter_decision{-1};
  BackgroundThread waiter([&] {
    waiter_decision.store(static_cast<int>(gate.Admit(0.0)));
  });
  // Wait until the waiter is queued, then a second arrival is shed.
  while (gate.Describe().Find("queued")->AsInt() < 1) {
  }
  EXPECT_EQ(gate.Admit(0.0), AdmissionController::Decision::kShed);
  gate.BeginDrain();
  waiter.Join();
  EXPECT_EQ(waiter_decision.load(),
            static_cast<int>(AdmissionController::Decision::kDraining));
  EXPECT_EQ(gate.Admit(0.0), AdmissionController::Decision::kDraining);
  const Json stats = gate.Describe();
  EXPECT_EQ(stats.Find("shed")->AsInt(), 1);
  EXPECT_EQ(stats.Find("max_queue_depth")->AsInt(), 1);
}

// --- warm pool ---------------------------------------------------------

TEST(ServeWarmPool, SecondAcquireOfAKeyIsAHitWithTheSameCache) {
  WarmPool pool(/*max_entries=*/4);
  auto graph = std::make_shared<const Graph>(TinyGraph(1));
  WarmLease first = pool.Acquire({/*generation=*/1, /*seed=*/4, false}, graph);
  EXPECT_FALSE(first.hit());
  RrStreamCache* cache = first.cache();
  ASSERT_NE(cache, nullptr);
  first.Release();
  WarmLease second = pool.Acquire({1, 4, false}, graph);
  EXPECT_TRUE(second.hit());
  EXPECT_EQ(second.cache(), cache);
  // Distinct coordinates get distinct entries.
  WarmLease other_seed = pool.Acquire({1, 5, false}, graph);
  EXPECT_FALSE(other_seed.hit());
  EXPECT_NE(other_seed.cache(), cache);
  WarmLease other_model = pool.Acquire({1, 4, true}, graph);
  EXPECT_FALSE(other_model.hit());
}

TEST(ServeWarmPool, SameKeyLeaseIsExclusiveUntilRelease) {
  WarmPool pool(/*max_entries=*/4);
  auto graph = std::make_shared<const Graph>(TinyGraph(1));
  WarmLease held = pool.Acquire({1, 4, false}, graph);
  std::atomic<bool> acquired{false};
  BackgroundThread contender([&] {
    WarmLease lease = pool.Acquire({1, 4, false}, graph);
    acquired.store(true);
  });
  // The contender must still be blocked on the held lease.
  EXPECT_FALSE(acquired.load());
  held.Release();
  contender.Join();
  EXPECT_TRUE(acquired.load());
}

TEST(ServeWarmPool, LruEvictionAndGenerationDropsForgetEntries) {
  WarmPool pool(/*max_entries=*/1);
  auto graph = std::make_shared<const Graph>(TinyGraph(1));
  pool.Acquire({1, 4, false}, graph).Release();
  // A second key evicts the idle first entry (cap is 1)...
  pool.Acquire({1, 5, false}, graph).Release();
  // ...so re-acquiring the first key is a miss again.
  WarmLease again = pool.Acquire({1, 4, false}, graph);
  EXPECT_FALSE(again.hit());
  again.Release();
  EXPECT_GE(pool.Describe().Find("evictions")->AsInt(), 1);

  pool.DropGeneration(1);
  EXPECT_EQ(pool.Describe().Find("entries")->AsInt(), 0);
  WarmLease fresh = pool.Acquire({1, 4, false}, graph);
  EXPECT_FALSE(fresh.hit());
}

// --- Server end-to-end -------------------------------------------------

ServerOptions GoldenOptions() {
  ServerOptions options;
  options.include_timing = false;  // byte-reproducible responses
  return options;
}

/// Run the canonical load sequence on `server`: graph "g", params "p".
void LoadFixtures(Server& server) {
  const std::string g = server.HandleLine(
      "{\"id\":1,\"verb\":\"load_graph\",\"name\":\"g\",\"network\":\"er\","
      "\"nodes\":300,\"edges\":1500}");
  ASSERT_NE(g.find("\"ok\":true"), std::string::npos) << g;
  const std::string p = server.HandleLine(
      "{\"id\":2,\"verb\":\"load_params\",\"name\":\"p\","
      "\"config\":\"config12\"}");
  ASSERT_NE(p.find("\"ok\":true"), std::string::npos) << p;
}

const char kSolveCold[] =
    "{\"id\":10,\"verb\":\"solve\",\"graph\":\"g\",\"params\":\"p\","
    "\"budgets\":[3,3],\"seed\":4,\"eval_sims\":100,\"warm\":false}";
const char kSolveWarm[] =
    "{\"id\":11,\"verb\":\"solve\",\"graph\":\"g\",\"params\":\"p\","
    "\"budgets\":[3,3],\"seed\":4,\"eval_sims\":100}";

/// Extract the Dump of one top-level member of a response line.
std::string Section(const std::string& response, const std::string& key) {
  Result<Json> parsed = Json::Parse(response);
  EXPECT_TRUE(parsed.ok()) << response;
  if (!parsed.ok()) return "";
  const Json* section = parsed.value().Find(key);
  EXPECT_NE(section, nullptr) << key << " missing in " << response;
  return section == nullptr ? "" : section->Dump();
}

TEST(ServeServer, PingStatsAndErrorPaths) {
  Server server(GoldenOptions());
  EXPECT_EQ(server.HandleLine("{\"id\":1,\"verb\":\"ping\"}"),
            "{\"id\":1,\"ok\":true,\"result\":{\"pong\":true}}");
  EXPECT_NE(server.HandleLine("garbage").find("\"code\":\"bad_request\""),
            std::string::npos);
  EXPECT_NE(
      server.HandleLine("{\"verb\":\"warp\"}").find("\"code\":\"bad_request\""),
      std::string::npos);
  EXPECT_NE(server
                .HandleLine("{\"id\":2,\"verb\":\"solve\",\"graph\":\"nope\","
                            "\"budgets\":[1]}")
                .find("\"code\":\"not_found\""),
            std::string::npos);
  const Json stats = server.Stats();
  ASSERT_NE(stats.Find("requests"), nullptr);
  EXPECT_EQ(stats.Find("requests")->Find("errors")->AsInt(), 3);
}

TEST(ServeServer, WarmResultIsByteIdenticalToColdAndSamplesNothing) {
  Server server(GoldenOptions());
  LoadFixtures(server);

  const std::string cold = server.HandleLine(kSolveCold);
  ASSERT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
  const std::string warm1 = server.HandleLine(kSolveWarm);
  const std::string warm2 = server.HandleLine(kSolveWarm);

  // The determinism contract: `result` is bit-identical cold vs warm.
  const std::string want = Section(cold, "result");
  EXPECT_EQ(Section(warm1, "result"), want);
  EXPECT_EQ(Section(warm2, "result"), want);

  // Warm accounting: the first warm solve fills the pool, the repeat
  // reuses it — zero RR sets sampled, strictly fewer than the miss.
  Result<Json> warm2_parsed = Json::Parse(warm2);
  ASSERT_TRUE(warm2_parsed.ok());
  const Json* serve_info = warm2_parsed.value().Find("serve");
  ASSERT_NE(serve_info, nullptr);
  EXPECT_TRUE(serve_info->Find("warm_hit")->AsBool());
  EXPECT_EQ(serve_info->Find("rr_sets_sampled")->AsInt(), 0);
  EXPECT_GT(serve_info->Find("rr_sets_served")->AsInt(), 0);
}

TEST(ServeServer, ResultsAreIdenticalAcrossServerInstances) {
  // Two fresh daemons, same requests → same bytes (seed-only determinism;
  // nothing about process or cache history may leak into `result`).
  std::string first;
  {
    Server server(GoldenOptions());
    LoadFixtures(server);
    first = Section(server.HandleLine(kSolveWarm), "result");
  }
  Server server(GoldenOptions());
  LoadFixtures(server);
  EXPECT_EQ(Section(server.HandleLine(kSolveWarm), "result"), first);
  EXPECT_EQ(Section(server.HandleLine(kSolveCold), "result"), first);
}

TEST(ServeServer, ReloadingAGraphInvalidatesItsWarmEntries) {
  Server server(GoldenOptions());
  LoadFixtures(server);
  ASSERT_NE(server.HandleLine(kSolveWarm).find("\"ok\":true"),
            std::string::npos);
  // Reload "g" with a different topology: the warm entry keyed on the old
  // generation must not serve the new graph's solves.
  const std::string reload = server.HandleLine(
      "{\"id\":3,\"verb\":\"load_graph\",\"name\":\"g\",\"network\":\"er\","
      "\"nodes\":300,\"edges\":1500,\"net_seed\":7}");
  ASSERT_NE(reload.find("\"ok\":true"), std::string::npos) << reload;
  const std::string after = server.HandleLine(kSolveWarm);
  Result<Json> parsed = Json::Parse(after);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().Find("serve")->Find("warm_hit")->AsBool());
}

TEST(ServeServer, UnloadDropsSessionsAndWarmState) {
  Server server(GoldenOptions());
  LoadFixtures(server);
  ASSERT_NE(server.HandleLine(kSolveWarm).find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(server.HandleLine("{\"id\":4,\"verb\":\"unload\",\"graph\":\"g\"}")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(server.HandleLine(kSolveWarm).find("\"code\":\"not_found\""),
            std::string::npos);
  EXPECT_EQ(server.Stats().Find("warm_cache")->Find("entries")->AsInt(), 0);
}

TEST(ServeServer, ShutdownVerbDrainsAndPipeSessionEnds) {
  Server server(GoldenOptions());
  EXPECT_NE(server.HandleLine("{\"id\":1,\"verb\":\"shutdown\"}")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_TRUE(server.stopping());
  // Post-drain requests that need admission are refused as unavailable.
  EXPECT_NE(server
                .HandleLine("{\"id\":2,\"verb\":\"load_graph\",\"name\":\"g\","
                            "\"network\":\"er\",\"nodes\":50,\"edges\":200}")
                .find("\"code\":\"unavailable\""),
            std::string::npos);
}

TEST(ServeServer, FourConcurrentTcpClientsGetByteIdenticalResults) {
  // The reference bytes, served single-threaded over HandleLine.
  Server reference(GoldenOptions());
  LoadFixtures(reference);
  const std::string want = Section(reference.HandleLine(kSolveWarm), "result");

  Server server(GoldenOptions());
  LoadFixtures(server);
  Result<TcpListener> listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  const uint16_t port = listener.value().port();
  BackgroundThread serving(
      [&] { (void)server.ServeTcp(listener.value()); });

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 3;
  std::vector<std::string> results(kClients * kRequestsPerClient);
  std::vector<std::atomic<bool>> client_ok(kClients);
  for (auto& ok : client_ok) ok.store(false);
  {
    std::vector<std::unique_ptr<BackgroundThread>> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.push_back(std::make_unique<BackgroundThread>([&, c] {
        Result<TcpConnection> conn = TcpListener::Connect(port);
        if (!conn.ok()) return;
        FdLineChannel channel(conn.value().fd(), conn.value().fd(),
                              /*socket_fds=*/true);
        for (int r = 0; r < kRequestsPerClient; ++r) {
          if (!channel.WriteLine(kSolveWarm)) return;
          std::string response;
          if (!channel.ReadLine(&response)) return;
          // Raw line only; parsing (with its gtest assertions) happens on
          // the main thread after the join.
          results[static_cast<size_t>(c * kRequestsPerClient + r)] =
              std::move(response);
        }
        client_ok[static_cast<size_t>(c)].store(true);
      }));
    }
    for (auto& client : clients) client->Join();
  }
  // Shut the daemon down and join the accept loop (drain contract).
  {
    Result<TcpConnection> conn = TcpListener::Connect(port);
    ASSERT_TRUE(conn.ok());
    FdLineChannel channel(conn.value().fd(), conn.value().fd(), true);
    ASSERT_TRUE(channel.WriteLine("{\"id\":99,\"verb\":\"shutdown\"}"));
    std::string response;
    ASSERT_TRUE(channel.ReadLine(&response));
  }
  serving.Join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(client_ok[static_cast<size_t>(c)].load()) << "client " << c;
  }
  for (const std::string& response : results) {
    EXPECT_EQ(Section(response, "result"), want);
  }
}

}  // namespace
}  // namespace serve
}  // namespace uic
