# Golden end-to-end regression over the uic_served daemon (ISSUE 7).
#
# Feeds a scripted JSON-lines session (tests/golden/uic_served_session.jsonl)
# to the daemon in pipe mode with --no-timing and pins every response line
# byte-for-byte. The transcript deliberately covers the whole verb roster —
# loads, a cold solve, a warm-pool fill, a warm hit (zero RR sets sampled,
# identical `result` bytes), an LT solve, both error classes, stats, unload,
# shutdown — so a drift in any layer (protocol framing, session registry,
# warm cache, solver, welfare estimator) fails this test with a diff.
#
# Usage:
#   cmake -DUIC_SERVED=<binary> -DGOLDEN_DIR=<dir> -DWORK_DIR=<dir>
#         -P golden_uic_served.cmake

if(NOT UIC_SERVED OR NOT GOLDEN_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR "golden_uic_served.cmake needs -DUIC_SERVED, -DGOLDEN_DIR and -DWORK_DIR")
endif()

# --- scripted session matches the pinned transcript -------------------

execute_process(
  COMMAND ${UIC_SERVED} --no-timing
  INPUT_FILE ${GOLDEN_DIR}/uic_served_session.jsonl
  OUTPUT_VARIABLE got
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve_session: uic_served exited with ${rc}\nstderr:\n${err}")
endif()
file(READ ${GOLDEN_DIR}/uic_served_session.out want)
if(NOT got STREQUAL want)
  message(FATAL_ERROR "serve_session: transcript differs from golden\n"
                      "--- got ---\n${got}\n--- want ---\n${want}")
endif()
message(STATUS "serve_session: exact match against uic_served_session.out")

# The session must be invariant to the worker count (seed-only
# determinism): re-run the identical transcript at 1 and 8 workers.
foreach(workers 1 8)
  execute_process(
    COMMAND ${UIC_SERVED} --no-timing --workers ${workers}
    INPUT_FILE ${GOLDEN_DIR}/uic_served_session.jsonl
    OUTPUT_VARIABLE got_w
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve_session_workers_${workers}: exited with ${rc}\n${err}")
  endif()
  if(NOT got_w STREQUAL want)
    message(FATAL_ERROR "serve_session_workers_${workers}: transcript differs "
                        "from the golden — responses must not depend on the "
                        "worker count\n--- got ---\n${got_w}")
  endif()
  message(STATUS "serve_session_workers_${workers}: identical transcript")
endforeach()

# --- usage errors exit 2 ----------------------------------------------

foreach(bad_flags "--workers;-1" "--concurrency;0" "--queue-capacity;-3"
        "--port;70000")
  execute_process(
    COMMAND ${UIC_SERVED} ${bad_flags}
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "usage error '${bad_flags}': expected exit 2, got ${rc}")
  endif()
endforeach()
message(STATUS "usage errors: exit 2 as documented")
