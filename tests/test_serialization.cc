#include "core/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/generators.h"
#include "graph/graph.h"
#include "items/noise.h"
#include "items/params.h"
#include "items/price_function.h"
#include "items/value_function.h"

namespace uic {
namespace {

// Unique-per-test temp path inside the build tree's cwd.
std::string TempPath(const std::string& tag) {
  return "serialization_test_" + tag + ".txt";
}

class TempFile {
 public:
  explicit TempFile(const std::string& tag) : path_(TempPath(tag)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------- Allocation

TEST(AllocationSerialization, RoundTripsEntries) {
  TempFile file("alloc");
  Allocation a;
  a.Add(3, ItemBit(0) | ItemBit(2));
  a.Add(7, ItemBit(1));
  a.AddItem(3, 1);  // merges into node 3's existing entry
  ASSERT_TRUE(SaveAllocation(a, file.path()).ok());

  auto loaded = LoadAllocation(file.path());
  ASSERT_TRUE(loaded.ok());
  const Allocation& b = loaded.value();
  EXPECT_EQ(b.num_seed_nodes(), 2u);
  EXPECT_EQ(b.TotalPairs(), 4u);
  EXPECT_EQ(b.entries()[0].first, 3u);
  EXPECT_EQ(b.entries()[0].second, ItemBit(0) | ItemBit(1) | ItemBit(2));
  EXPECT_EQ(b.entries()[1].first, 7u);
  EXPECT_EQ(b.entries()[1].second, ItemBit(1));
}

TEST(AllocationSerialization, RoundTripsEmptyAllocation) {
  TempFile file("alloc_empty");
  ASSERT_TRUE(SaveAllocation(Allocation(), file.path()).ok());
  auto loaded = LoadAllocation(file.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(AllocationSerialization, RejectsMalformedRows) {
  TempFile file("alloc_bad");
  {
    std::ofstream out(file.path());
    out << "12 34\n";  // no comma
  }
  EXPECT_FALSE(LoadAllocation(file.path()).ok());
  {
    std::ofstream out(file.path());
    out << "x,3\n";  // bad node id
  }
  EXPECT_FALSE(LoadAllocation(file.path()).ok());
  {
    std::ofstream out(file.path());
    out << "5,0\n";  // empty itemset is invalid
  }
  EXPECT_FALSE(LoadAllocation(file.path()).ok());
}

TEST(AllocationSerialization, MissingFileIsAnError) {
  EXPECT_FALSE(LoadAllocation("definitely_not_here_12345.txt").ok());
}

// --------------------------------------------------------------------- Graph

TEST(GraphSerialization, RoundTripsEmptyGraph) {
  TempFile file("graph_empty");
  Graph g;  // zero nodes, zero edges
  ASSERT_TRUE(SaveGraph(g, file.path()).ok());
  auto loaded = LoadGraph(file.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), 0u);
  EXPECT_EQ(loaded.value().num_edges(), 0u);
}

TEST(GraphSerialization, RoundTripsSingleNodeNoEdges) {
  TempFile file("graph_one");
  GraphBuilder builder(1);
  Graph g = builder.Build().MoveValue();
  ASSERT_TRUE(SaveGraph(g, file.path()).ok());
  auto loaded = LoadGraph(file.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), 1u);
  EXPECT_EQ(loaded.value().num_edges(), 0u);
  EXPECT_EQ(loaded.value().OutDegree(0), 0u);
}

TEST(GraphSerialization, RoundTripsTopologyAndProbabilities) {
  TempFile file("graph_full");
  Graph g = GenerateErdosRenyi(40, 150, 5);
  g.ApplyWeightedCascade();
  ASSERT_TRUE(SaveGraph(g, file.path()).ok());

  auto loaded = LoadGraph(file.path());
  ASSERT_TRUE(loaded.ok());
  const Graph& h = loaded.value();
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto gt = g.OutNeighbors(u);
    const auto ht = h.OutNeighbors(u);
    ASSERT_EQ(gt.size(), ht.size()) << "node " << u;
    const auto gp = g.OutProbs(u);
    const auto hp = h.OutProbs(u);
    for (size_t k = 0; k < gt.size(); ++k) {
      EXPECT_EQ(gt[k], ht[k]);
      EXPECT_FLOAT_EQ(gp[k], hp[k]);
    }
  }
}

TEST(GraphSerialization, RejectsEdgeCountMismatch) {
  TempFile file("graph_bad");
  {
    std::ofstream out(file.path());
    out << "nodes 3\nedges 2\n0 1 0.5\n";  // header promises 2, file has 1
  }
  EXPECT_FALSE(LoadGraph(file.path()).ok());
}

TEST(GraphSerialization, RejectsCorruptHeadersAndEdges) {
  TempFile file("graph_corrupt");
  {
    std::ofstream out(file.path());
    out << "nodes -5\nedges 0\n";  // negative count must not wrap
  }
  EXPECT_FALSE(LoadGraph(file.path()).ok());
  {
    std::ofstream out(file.path());
    // Endpoint exceeds both the node count and 32-bit NodeId; must not
    // truncate into range.
    out << "nodes 3\nedges 1\n0 4294967297 0.9\n";
  }
  EXPECT_FALSE(LoadGraph(file.path()).ok());
  {
    std::ofstream out(file.path());
    out << "nodes 3\nedges 1\n1 1 0.5\n";  // self-loop
  }
  EXPECT_FALSE(LoadGraph(file.path()).ok());
  {
    std::ofstream out(file.path());
    // Duplicate edge: pending count matches the header but dedup at Build
    // would silently drop one — must be reported.
    out << "nodes 3\nedges 2\n0 1 0.5\n0 1 0.5\n";
  }
  EXPECT_FALSE(LoadGraph(file.path()).ok());
}

// ---------------------------------------------------------------- ItemParams

TEST(ItemParamsSerialization, RoundTripsTabularValueAdditivePrice) {
  TempFile file("params");
  const ItemId k = 3;
  std::vector<double> table(1u << k, 0.0);
  for (ItemSet s = 0; s < table.size(); ++s) {
    table[s] = Cardinality(s) * 2.5 + (Cardinality(s) >= 2 ? 1.25 : 0.0);
  }
  ItemParams params(std::make_shared<TabularValueFunction>(k, table),
                    std::vector<double>{1.0, 2.0, 0.5},
                    NoiseModel::IidGaussian(k, 0.3));
  ASSERT_TRUE(SaveItemParams(params, file.path()).ok());

  auto loaded = LoadItemParams(file.path());
  ASSERT_TRUE(loaded.ok());
  const ItemParams& p = loaded.value();
  ASSERT_EQ(p.num_items(), k);
  for (ItemSet s = 0; s < table.size(); ++s) {
    EXPECT_DOUBLE_EQ(p.value().Value(s), params.value().Value(s));
    EXPECT_DOUBLE_EQ(p.price().Price(s), params.price().Price(s));
    EXPECT_DOUBLE_EQ(p.DeterministicUtility(s),
                     params.DeterministicUtility(s));
  }
  for (ItemId i = 0; i < k; ++i) {
    EXPECT_EQ(p.noise().item(i).kind, ItemNoise::Kind::kGaussian);
    EXPECT_DOUBLE_EQ(p.noise().item(i).param, 0.3);
  }
}

TEST(ItemParamsSerialization, RoundTripsGenericPriceAndMixedNoise) {
  TempFile file("params_mixed");
  const ItemId k = 2;
  auto value = std::make_shared<AdditiveValueFunction>(
      std::vector<double>{4.0, 6.0});
  auto price = std::make_shared<VolumeDiscountPriceFunction>(
      std::vector<double>{3.0, 5.0}, 0.8);
  NoiseModel noise({ItemNoise::Zero(), ItemNoise::Uniform(1.5)});
  ItemParams params(value, price, noise);
  ASSERT_TRUE(SaveItemParams(params, file.path()).ok());

  auto loaded = LoadItemParams(file.path());
  ASSERT_TRUE(loaded.ok());
  const ItemParams& p = loaded.value();
  ASSERT_EQ(p.num_items(), k);
  for (ItemSet s = 0; s <= FullItemSet(k); ++s) {
    EXPECT_DOUBLE_EQ(p.value().Value(s), params.value().Value(s));
    EXPECT_DOUBLE_EQ(p.price().Price(s), params.price().Price(s));
  }
  EXPECT_EQ(p.noise().item(0).kind, ItemNoise::Kind::kZero);
  EXPECT_EQ(p.noise().item(1).kind, ItemNoise::Kind::kUniform);
  EXPECT_DOUBLE_EQ(p.noise().item(1).param, 1.5);
}

TEST(ItemParamsSerialization, RoundTripsSingleItem) {
  TempFile file("params_one");
  ItemParams params(
      std::make_shared<TabularValueFunction>(1, std::vector<double>{0.0, 7.5}),
      std::vector<double>{2.25}, NoiseModel::Zero(1));
  ASSERT_TRUE(SaveItemParams(params, file.path()).ok());
  auto loaded = LoadItemParams(file.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_items(), 1u);
  EXPECT_DOUBLE_EQ(loaded.value().value().Value(1), 7.5);
  EXPECT_DOUBLE_EQ(loaded.value().DeterministicUtility(1), 7.5 - 2.25);
}

TEST(ItemParamsSerialization, RejectsTruncatedFile) {
  TempFile file("params_bad");
  {
    std::ofstream out(file.path());
    out << "items 2\nvalues 0 1 2 3\n";  // prices + noise missing
  }
  EXPECT_FALSE(LoadItemParams(file.path()).ok());
}

}  // namespace
}  // namespace uic
