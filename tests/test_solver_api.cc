// The unified Solver API: registry round-trips, Result-based error paths,
// and adapter-vs-legacy-function equivalence at fixed seeds.
#include "solver/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "bdhs/bdhs.h"
#include "comic/rr_sim.h"
#include "core/baselines.h"
#include "core/bundle_grd.h"
#include "core/mc_greedy.h"
#include "exp/configs.h"
#include "graph/generators.h"
#include "items/gap.h"

namespace uic {
namespace {

Graph TestGraph(uint64_t seed, NodeId n = 120, size_t m = 700) {
  Graph g = GenerateErdosRenyi(n, m, seed);
  g.ApplyWeightedCascade();
  return g;
}

WelfareProblem TwoItemProblem(const Graph& graph,
                              std::vector<uint32_t> budgets = {4, 3}) {
  WelfareProblem problem;
  problem.graph = &graph;
  problem.params = MakeTwoItemConfig12();
  problem.budgets = std::move(budgets);
  return problem;
}

/// Options tuned so even mc-greedy solves a test instance in milliseconds.
SolverOptions FastOptions(uint64_t seed = 7) {
  SolverOptions options;
  options.seed = seed;
  options.mc_greedy.simulations_per_eval = 20;
  options.comic.cim_forward_simulations = 20;
  return options;
}

bool SameAllocation(const Allocation& a, const Allocation& b) {
  return a.entries() == b.entries();
}

TEST(SolverRegistry, ListsTheSevenBuiltins) {
  const std::vector<std::string> names = SolverRegistry::ListSolvers();
  const std::vector<std::string> expected = {
      "bdhs",      "bundle-disj", "bundle-grd", "item-disj",
      "mc-greedy", "rr-cim",      "rr-sim+"};
  for (const std::string& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "missing builtin solver: " << name;
  }
  EXPECT_GE(names.size(), expected.size());
}

TEST(SolverRegistry, CreateUnknownName) {
  EXPECT_EQ(SolverRegistry::Create("no-such-algorithm"), nullptr);
  const auto result = SolverRegistry::CreateOrError("no-such-algorithm");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);
  // The message teaches the caller what IS registered.
  EXPECT_NE(result.status().message().find("bundle-grd"), std::string::npos);
}

TEST(SolverRegistry, CreateIsCaseInsensitive) {
  auto solver = SolverRegistry::Create("Bundle-GRD");
  ASSERT_NE(solver, nullptr);
  EXPECT_EQ(solver->name(), "bundle-grd");
}

TEST(SolverRegistry, RegisterRejectsDuplicateNames) {
  EXPECT_FALSE(SolverRegistry::Register(
      "bundle-grd", [](const SolverOptions&) -> std::unique_ptr<Solver> {
        return nullptr;
      }));
}

// A user-supplied solver plugs in through the same registry as the
// builtins and is reachable by name.
class NullSolver final : public Solver {
 public:
  explicit NullSolver(SolverOptions options) : Solver(std::move(options)) {}
  const std::string& name() const override {
    static const std::string kName = "test-null";
    return kName;
  }
  Traits traits() const override { return Traits{}; }

 protected:
  Result<AllocationResult> SolveValidated(const WelfareProblem&) override {
    return AllocationResult{};
  }
};

TEST(SolverRegistry, ExternalSolverPlugsIn) {
  static const bool registered = SolverRegistry::Register(
      "test-null", [](const SolverOptions& options) {
        return std::make_unique<NullSolver>(options);
      });
  EXPECT_TRUE(registered);
  const Graph g = TestGraph(1);
  auto solver = SolverRegistry::Create("test-null");
  ASSERT_NE(solver, nullptr);
  const auto result = solver->Solve(TwoItemProblem(g));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().allocation.empty());
}

TEST(SolverApi, EveryRegisteredSolverSolvesASmallInstance) {
  const Graph g = TestGraph(2);
  const WelfareProblem problem = TwoItemProblem(g);
  for (const std::string& name : SolverRegistry::ListSolvers()) {
    auto solver = SolverRegistry::Create(name, FastOptions());
    ASSERT_NE(solver, nullptr) << name;
    const auto result = solver->Solve(problem);
    ASSERT_TRUE(result.ok())
        << name << ": " << result.status().ToString();
    if (name == "bdhs") {
      // BDHS is budget-free: the best bundle goes to every node.
      EXPECT_EQ(result.value().allocation.num_seed_nodes(), g.num_nodes());
      EXPECT_GT(result.value().objective, 0.0);
    } else if (name != "test-null") {
      EXPECT_TRUE(
          result.value().allocation.ValidateBudgets(problem.budgets).ok())
          << name;
      EXPECT_FALSE(result.value().allocation.empty()) << name;
    }
  }
}

// ---- solver-matrix determinism ---------------------------------------

// Every registered solver must be invariant to the worker count: the RR
// engine runs on a fixed stream grid and the MC estimators on fixed-grid
// streams (parallel.h), so workers only change wall-clock, never results.
TEST(SolverApi, EverySolverIsWorkerCountInvariant) {
  const Graph g = TestGraph(8, /*n=*/100, /*m=*/600);
  WelfareProblem problem = TwoItemProblem(g, {3, 2});
  for (const std::string& name : SolverRegistry::ListSolvers()) {
    if (name.rfind("test-", 0) == 0) continue;  // test-registered stubs
    SolverOptions base = FastOptions(/*seed=*/21);
    base.mc_greedy.simulations_per_eval = 10;  // keep mc-greedy fast
    SolverOptions w1 = base, w4 = base;
    w1.workers = 1;
    w4.workers = 4;
    const auto r1 = SolverRegistry::Create(name, w1)->Solve(problem);
    const auto r4 = SolverRegistry::Create(name, w4)->Solve(problem);
    ASSERT_TRUE(r1.ok()) << name << ": " << r1.status().ToString();
    ASSERT_TRUE(r4.ok()) << name << ": " << r4.status().ToString();
    EXPECT_EQ(r1.value().allocation.entries(), r4.value().allocation.entries())
        << name;
    EXPECT_EQ(r1.value().ranking, r4.value().ranking) << name;
    EXPECT_EQ(r1.value().num_rr_sets, r4.value().num_rr_sets) << name;
    EXPECT_EQ(r1.value().objective, r4.value().objective) << name;
  }
}

// ---- Result-based error paths ----------------------------------------

TEST(SolverApi, RejectsNullAndEmptyGraph) {
  WelfareProblem problem;
  problem.budgets = {2, 2};
  auto solver = SolverRegistry::Create("bundle-grd");
  auto result = solver->Solve(problem);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);

  const Graph empty;
  problem.graph = &empty;
  result = solver->Solve(problem);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(SolverApi, RejectsEmptyBudgets) {
  const Graph g = TestGraph(3);
  WelfareProblem problem;
  problem.graph = &g;
  for (const char* name : {"bundle-grd", "mc-greedy", "bdhs"}) {
    auto result = SolverRegistry::Create(name, FastOptions())->Solve(problem);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument) << name;
  }
}

TEST(SolverApi, RejectsParamsItemCountMismatch) {
  const Graph g = TestGraph(4);
  WelfareProblem problem = TwoItemProblem(g);
  problem.budgets = {2, 2, 2};  // params has two items
  const auto result =
      SolverRegistry::Create("bundle-disj", FastOptions())->Solve(problem);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(result.status().message().find("2 items"), std::string::npos);
}

TEST(SolverApi, RejectsBudgetBeyondGraphSize) {
  const Graph g = TestGraph(5, /*n=*/50, /*m=*/300);
  WelfareProblem problem = TwoItemProblem(g, {51, 1});
  const auto result =
      SolverRegistry::Create("bundle-grd")->Solve(problem);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kOutOfRange);
}

TEST(SolverApi, TwoItemOnlySolversRejectThreeItems) {
  const Graph g = TestGraph(6);
  WelfareProblem problem;
  problem.graph = &g;
  problem.params = MakeAdditiveConfig5(3);
  problem.budgets = {2, 2, 2};
  for (const char* name : {"rr-sim+", "rr-cim"}) {
    const auto result =
        SolverRegistry::Create(name, FastOptions())->Solve(problem);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument) << name;
  }
}

TEST(SolverApi, UtilityAwareSolversRequireParams) {
  const Graph g = TestGraph(7);
  WelfareProblem problem;
  problem.graph = &g;
  problem.budgets = {2, 2};
  for (const char* name :
       {"bundle-disj", "mc-greedy", "rr-sim+", "rr-cim", "bdhs"}) {
    const auto result =
        SolverRegistry::Create(name, FastOptions())->Solve(problem);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), Status::Code::kFailedPrecondition)
        << name;
  }
  // ...while the utility-oblivious solvers accept the same problem.
  for (const char* name : {"bundle-grd", "item-disj"}) {
    EXPECT_TRUE(
        SolverRegistry::Create(name, FastOptions())->Solve(problem).ok())
        << name;
  }
}

TEST(SolverApi, IcOnlySolversRejectLinearThreshold) {
  const Graph g = TestGraph(8);
  WelfareProblem problem = TwoItemProblem(g);
  problem.model = DiffusionModel::kLinearThreshold;
  for (const char* name : {"mc-greedy", "rr-sim+", "rr-cim", "bdhs"}) {
    const auto result =
        SolverRegistry::Create(name, FastOptions())->Solve(problem);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument) << name;
  }
  for (const char* name : {"bundle-grd", "item-disj", "bundle-disj"}) {
    EXPECT_TRUE(
        SolverRegistry::Create(name, FastOptions())->Solve(problem).ok())
        << name;
  }
}

TEST(SolverApi, RejectsNonPositiveEpsAndEll) {
  const Graph g = TestGraph(9);
  SolverOptions options;
  options.eps = 0.0;
  auto result = SolverRegistry::Create("bundle-grd", options)
                    ->Solve(TwoItemProblem(g));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);

  options.eps = 0.5;
  options.ell = -1.0;
  result = SolverRegistry::Create("bundle-grd", options)
               ->Solve(TwoItemProblem(g));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

// ---- Adapter vs legacy free function, fixed seeds ---------------------

TEST(SolverEquivalence, BundleGrdMatchesLegacy) {
  const Graph g = TestGraph(10);
  const std::vector<uint32_t> budgets = {6, 3};
  const AllocationResult legacy = BundleGrd(g, budgets, 0.5, 1.0, 77);
  const auto adapted = SolverRegistry::Create("bundle-grd", FastOptions(77))
                           ->Solve(TwoItemProblem(g, budgets));
  ASSERT_TRUE(adapted.ok());
  EXPECT_TRUE(SameAllocation(legacy.allocation, adapted.value().allocation));
  EXPECT_EQ(legacy.ranking, adapted.value().ranking);
  EXPECT_EQ(legacy.num_rr_sets, adapted.value().num_rr_sets);
}

TEST(SolverEquivalence, BundleGrdLinearThresholdMatchesLegacy) {
  Graph g = GenerateErdosRenyi(120, 500, 11);
  g.ApplyWeightedCascade();  // in-degree-normalized: valid LT weights
  const std::vector<uint32_t> budgets = {5, 5};
  const AllocationResult legacy =
      BundleGrd(g, budgets, 0.5, 1.0, 78, 0, DiffusionModel::kLinearThreshold);
  WelfareProblem problem = TwoItemProblem(g, budgets);
  problem.model = DiffusionModel::kLinearThreshold;
  const auto adapted =
      SolverRegistry::Create("bundle-grd", FastOptions(78))->Solve(problem);
  ASSERT_TRUE(adapted.ok());
  EXPECT_TRUE(SameAllocation(legacy.allocation, adapted.value().allocation));
}

TEST(SolverEquivalence, ItemDisjointMatchesLegacy) {
  const Graph g = TestGraph(12);
  const std::vector<uint32_t> budgets = {4, 4};
  const AllocationResult legacy = ItemDisjoint(g, budgets, 0.5, 1.0, 79);
  const auto adapted = SolverRegistry::Create("item-disj", FastOptions(79))
                           ->Solve(TwoItemProblem(g, budgets));
  ASSERT_TRUE(adapted.ok());
  EXPECT_TRUE(SameAllocation(legacy.allocation, adapted.value().allocation));
}

TEST(SolverEquivalence, BundleDisjointMatchesLegacy) {
  const Graph g = TestGraph(13);
  const std::vector<uint32_t> budgets = {5, 2};
  const ItemParams params = MakeTwoItemConfig12();
  const AllocationResult legacy =
      BundleDisjoint(g, budgets, params, 0.5, 1.0, 80);
  const auto adapted = SolverRegistry::Create("bundle-disj", FastOptions(80))
                           ->Solve(TwoItemProblem(g, budgets));
  ASSERT_TRUE(adapted.ok());
  EXPECT_TRUE(SameAllocation(legacy.allocation, adapted.value().allocation));
}

TEST(SolverEquivalence, McGreedyMatchesLegacy) {
  const Graph g = TestGraph(14, /*n=*/60, /*m=*/300);
  const std::vector<uint32_t> budgets = {2, 2};
  const ItemParams params = MakeTwoItemConfig12();
  McGreedyOptions legacy_options;
  legacy_options.simulations_per_eval = 20;
  legacy_options.seed = 81;
  const AllocationResult legacy =
      McGreedyAllocate(g, budgets, params, legacy_options);
  const auto adapted = SolverRegistry::Create("mc-greedy", FastOptions(81))
                           ->Solve(TwoItemProblem(g, budgets));
  ASSERT_TRUE(adapted.ok());
  EXPECT_TRUE(SameAllocation(legacy.allocation, adapted.value().allocation));
}

TEST(SolverEquivalence, ComIcBaselinesMatchLegacy) {
  const Graph g = TestGraph(15);
  const ItemParams params = MakeTwoItemConfig12();
  const TwoItemGap gap = DeriveTwoItemGap(params);
  ComIcBaselineOptions comic;
  comic.cim_forward_simulations = 20;
  const AllocationResult legacy_sim = RrSimPlus(g, gap, 4, 3, comic, 82);
  const AllocationResult legacy_cim = RrCim(g, gap, 4, 3, comic, 82);

  const auto sim = SolverRegistry::Create("rr-sim+", FastOptions(82))
                       ->Solve(TwoItemProblem(g));
  const auto cim = SolverRegistry::Create("rr-cim", FastOptions(82))
                       ->Solve(TwoItemProblem(g));
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE(cim.ok());
  EXPECT_TRUE(SameAllocation(legacy_sim.allocation, sim.value().allocation));
  EXPECT_TRUE(SameAllocation(legacy_cim.allocation, cim.value().allocation));
}

TEST(SolverEquivalence, BdhsMatchesLegacy) {
  const Graph g = TestGraph(16);
  const ItemParams params = MakeTwoItemConfig12();
  const BdhsResult legacy = BdhsStep(g, params, /*kappa=*/0.0);
  const auto adapted = SolverRegistry::Create("bdhs", FastOptions())
                           ->Solve(TwoItemProblem(g, {0, 0}));
  ASSERT_TRUE(adapted.ok());
  EXPECT_DOUBLE_EQ(adapted.value().objective, legacy.welfare);
  if (legacy.bundle != kEmptyItemSet) {
    ASSERT_EQ(adapted.value().allocation.num_seed_nodes(), g.num_nodes());
    for (const auto& [node, items] : adapted.value().allocation.entries()) {
      EXPECT_EQ(items, legacy.bundle);
    }
  } else {
    EXPECT_TRUE(adapted.value().allocation.empty());
  }
}

// RrOptions plumbing (satellite): an LT-flagged RrOptions reaches the
// samplers of the legacy functions and changes the selection.
TEST(SolverEquivalence, RrOptionsReachLegacyFunctions) {
  Graph g = GenerateErdosRenyi(150, 800, 17);
  g.ApplyWeightedCascade();
  RrOptions lt;
  lt.linear_threshold = true;
  const AllocationResult via_rr_options =
      ItemDisjoint(g, {5, 5}, 0.5, 1.0, 83, 0, lt);
  WelfareProblem problem = TwoItemProblem(g, {5, 5});
  problem.model = DiffusionModel::kLinearThreshold;
  const auto via_model =
      SolverRegistry::Create("item-disj", FastOptions(83))->Solve(problem);
  ASSERT_TRUE(via_model.ok());
  EXPECT_TRUE(SameAllocation(via_rr_options.allocation,
                             via_model.value().allocation));
}

}  // namespace
}  // namespace uic
