// Determinism, equivalence, and index-maintenance tests for the RR engine
// (persistent thread pool + RrCollection + index-driven NodeSelection).
//
// The GOLDEN_* constants pin the stream-grid engine (fixed kRrStreams
// logical streams, RR set g = sample g/kRrStreams of stream g%kRrStreams):
// pool content is a pure function of (graph, options, seed), so ONE golden
// covers every worker count and every growth schedule. The invariance
// tests below assert exactly that; the warm-cache tests assert that an
// RrStreamCache replays the same streams byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <queue>
#include <tuple>
#include <vector>

#include "common/thread_pool.h"
#include "graph/generators.h"
#include "rrset/node_selection.h"
#include "rrset/prima.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_stream_cache.h"

namespace uic {
namespace {

// --- golden values pinned from the stream-grid engine ------------------
//
// Two kernels, two golden families. The default (auto → skip) kernel draws
// a different RNG sequence than the scan kernel, so each pins its own
// goldens; the kScan pins are the pre-skip-kernel values, unchanged since
// that kernel's draw sequence is untouched.
constexpr uint64_t kGoldenIcPoolHash = 0xc90d2f7464a213d9ULL;
constexpr uint64_t kGoldenLtPoolHash = 0x201e1a632f30d058ULL;
constexpr uint64_t kGoldenCoverageHash = 0xe02d9082d553853cULL;
const std::vector<NodeId> kGoldenSeeds = {
    98, 44, 34, 97, 109, 54, 199, 22, 20, 96, 48, 119, 41,
    62, 134, 82, 197, 46, 47, 179, 189, 30, 18, 32, 40};
const std::vector<NodeId> kGoldenPrimaSeeds = {89, 168, 52, 187, 104,
                                               166, 93, 25, 12, 79};
constexpr size_t kGoldenPrimaRrSets = 2435;

constexpr uint64_t kGoldenScanIcPoolHash = 0xc50df440a80a50c4ULL;
constexpr uint64_t kGoldenScanLtPoolHash = 0xc46b2e9a1265f51cULL;
constexpr uint64_t kGoldenScanCoverageHash = 0x4b4cce635b7fd6a9ULL;
const std::vector<NodeId> kGoldenScanSeeds = {
    98, 44, 62, 43, 113, 65, 61, 18, 14, 94, 10, 179, 109,
    189, 47, 97, 147, 48, 199, 30, 96, 54, 82, 134, 172};
const std::vector<NodeId> kGoldenScanPrimaSeeds = {25, 85, 166, 89, 79,
                                                   100, 296, 202, 279, 116};
constexpr size_t kGoldenScanPrimaRrSets = 2282;

uint64_t Fnv1a(uint64_t h, uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t PoolHash(const RrCollection& pool) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, pool.size());
  for (size_t r = 0; r < pool.size(); ++r) {
    auto s = pool.Set(r);
    h = Fnv1a(h, s.size());
    for (NodeId v : s) h = Fnv1a(h, v);
  }
  return h;
}

uint64_t CoverageHash(const SeedSelection& sel) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (double c : sel.coverage) {
    uint64_t bits;
    std::memcpy(&bits, &c, sizeof(bits));
    h = Fnv1a(h, bits);
  }
  return h;
}

Graph GoldenGraph() {
  Graph g = GenerateErdosRenyi(200, 1200, 7);
  g.ApplyWeightedCascade();
  return g;
}

// Reference inverted index built from scratch by scanning the pool — what
// the pre-refactor NodeSelection rebuilt on every call.
std::vector<std::vector<uint32_t>> ReferenceIndex(const RrCollection& pool) {
  std::vector<std::vector<uint32_t>> index(pool.graph().num_nodes());
  for (size_t r = 0; r < pool.size(); ++r) {
    for (NodeId v : pool.Set(r)) {
      index[v].push_back(static_cast<uint32_t>(r));
    }
  }
  return index;
}

void ExpectIndexMatchesReference(const RrCollection& pool) {
  const std::vector<std::vector<uint32_t>> ref = ReferenceIndex(pool);
  for (NodeId v = 0; v < pool.graph().num_nodes(); ++v) {
    ASSERT_EQ(pool.IndexDegree(v), ref[v].size()) << "node " << v;
    std::vector<uint32_t> got;
    pool.ForEachSetContaining(v, [&](uint32_t r) { got.push_back(r); });
    ASSERT_EQ(got, ref[v]) << "node " << v;
  }
}

// The pre-refactor NodeSelection, kept verbatim as an executable spec:
// builds its own CSR index, then runs the identical lazy greedy.
SeedSelection ReferenceNodeSelection(const RrCollection& collection, size_t k,
                                     const std::vector<NodeId>& excluded) {
  const Graph& graph = collection.graph();
  const NodeId n = graph.num_nodes();
  const size_t num_sets = collection.size();
  SeedSelection result;
  if (num_sets == 0 || k == 0) return result;

  std::vector<uint32_t> deg(n, 0);
  for (size_t r = 0; r < num_sets; ++r) {
    for (NodeId v : collection.Set(r)) ++deg[v];
  }
  std::vector<size_t> node_off(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) node_off[v + 1] = node_off[v] + deg[v];
  std::vector<uint32_t> node_sets(node_off[n]);
  {
    std::vector<size_t> cursor(node_off.begin(), node_off.end() - 1);
    for (size_t r = 0; r < num_sets; ++r) {
      for (NodeId v : collection.Set(r)) {
        node_sets[cursor[v]++] = static_cast<uint32_t>(r);
      }
    }
  }

  std::vector<uint8_t> banned(n, 0);
  for (NodeId v : excluded) banned[v] = 1;

  std::vector<uint8_t> covered(num_sets, 0);
  std::vector<uint8_t> selected(n, 0);
  using Entry = std::pair<uint32_t, NodeId>;
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v) {
    if (deg[v] > 0 && !banned[v]) heap.push({deg[v], v});
  }

  size_t covered_count = 0;
  std::vector<uint32_t> stamp(n, 0);
  uint32_t round = 0;
  while (result.seeds.size() < k && !heap.empty()) {
    auto [gain, v] = heap.top();
    heap.pop();
    if (selected[v]) continue;
    if (stamp[v] != round) {
      uint32_t g = 0;
      for (size_t idx = node_off[v]; idx < node_off[v + 1]; ++idx) {
        g += covered[node_sets[idx]] == 0;
      }
      stamp[v] = round;
      if (!heap.empty() && g < heap.top().first) {
        if (g > 0) heap.push({g, v});
        continue;
      }
      gain = g;
    }
    selected[v] = 1;
    for (size_t idx = node_off[v]; idx < node_off[v + 1]; ++idx) {
      const uint32_t r = node_sets[idx];
      if (!covered[r]) {
        covered[r] = 1;
        ++covered_count;
      }
    }
    ++round;
    (void)gain;
    result.seeds.push_back(v);
    result.coverage.push_back(static_cast<double>(covered_count) /
                              static_cast<double>(num_sets));
  }
  for (NodeId v = 0; v < n && result.seeds.size() < k; ++v) {
    if (!selected[v] && !banned[v]) {
      selected[v] = 1;
      result.seeds.push_back(v);
      result.coverage.push_back(static_cast<double>(covered_count) /
                                static_cast<double>(num_sets));
    }
  }
  return result;
}

// --- pinned goldens + seed-only determinism ---------------------------

TEST(RrEngineGolden, IcPoolMatchesPinnedGoldenAtAnyWorkerCount) {
  Graph g = GoldenGraph();
  // One golden for every worker count: pool content is a pure function of
  // (graph, options, seed).
  for (unsigned workers : {1u, 4u, 8u}) {
    RrCollection pool(g, 42, workers);
    pool.GenerateUntil(777);
    pool.GenerateUntil(2000);
    EXPECT_EQ(PoolHash(pool), kGoldenIcPoolHash) << "workers=" << workers;
    const SeedSelection sel = NodeSelection(pool, 25);
    EXPECT_EQ(sel.seeds, kGoldenSeeds) << "workers=" << workers;
    EXPECT_EQ(CoverageHash(sel), kGoldenCoverageHash) << "workers=" << workers;
  }
}

TEST(RrEngineGolden, ScanKernelStillMatchesPreSkipGoldens) {
  // The scan kernel's draw sequence predates the skip kernels; its goldens
  // must never move. This is the proof that opting out of skip sampling
  // reproduces historical pools bit-for-bit.
  Graph g = GoldenGraph();
  RrOptions scan;
  scan.kernel = SamplingKernel::kScan;
  for (unsigned workers : {1u, 4u, 8u}) {
    RrCollection pool(g, 42, workers, scan);
    pool.GenerateUntil(777);
    pool.GenerateUntil(2000);
    EXPECT_EQ(PoolHash(pool), kGoldenScanIcPoolHash) << "workers=" << workers;
    const SeedSelection sel = NodeSelection(pool, 25);
    EXPECT_EQ(sel.seeds, kGoldenScanSeeds) << "workers=" << workers;
    EXPECT_EQ(CoverageHash(sel), kGoldenScanCoverageHash)
        << "workers=" << workers;
  }
  RrOptions scan_lt = scan;
  scan_lt.linear_threshold = true;
  RrCollection lt_pool(g, 5, 4, scan_lt);
  lt_pool.GenerateUntil(1500);
  EXPECT_EQ(PoolHash(lt_pool), kGoldenScanLtPoolHash);

  Graph pg = GenerateErdosRenyi(300, 1800, 3);
  pg.ApplyWeightedCascade();
  const ImResult r = Prima(pg, {10, 5, 3}, 0.5, 1.0, 11, 4, {}, scan);
  EXPECT_EQ(r.seeds, kGoldenScanPrimaSeeds);
  EXPECT_EQ(r.num_rr_sets, kGoldenScanPrimaRrSets);
}

TEST(RrEngineGolden, AutoKernelResolvesToSkip) {
  // kAuto and kSkip are the same resolved kernel (per-node fallback to the
  // general scan path is the plan's job, not the option's) — same goldens.
  Graph g = GoldenGraph();
  RrOptions skip;
  skip.kernel = SamplingKernel::kSkip;
  RrCollection pool(g, 42, 4, skip);
  pool.GenerateUntil(2000);
  EXPECT_EQ(PoolHash(pool), kGoldenIcPoolHash);
}

TEST(RrEngineGolden, PoolIsIndependentOfGrowthSchedule) {
  // The same golden must come out however the pool grows to 2000: RR set g
  // is always sample g/kRrStreams of stream g%kRrStreams.
  Graph g = GoldenGraph();
  RrCollection one_shot(g, 42, 4);
  one_shot.GenerateUntil(2000);
  EXPECT_EQ(PoolHash(one_shot), kGoldenIcPoolHash);
  RrCollection many(g, 42, 4);
  for (size_t target : {3ul, 50ul, 51ul, 700ul, 1999ul, 2000ul}) {
    many.GenerateUntil(target);
  }
  EXPECT_EQ(PoolHash(many), kGoldenIcPoolHash);
}

TEST(RrEngineGolden, LtPoolMatchesPinnedGolden) {
  Graph g = GoldenGraph();
  RrOptions opt;
  opt.linear_threshold = true;
  RrCollection pool(g, 5, 4, opt);
  pool.GenerateUntil(1500);
  EXPECT_EQ(PoolHash(pool), kGoldenLtPoolHash);
}

TEST(RrEngineGolden, PrimaSeedsMatchPinnedGoldenAtAnyWorkerCount) {
  Graph g = GenerateErdosRenyi(300, 1800, 3);
  g.ApplyWeightedCascade();
  const ImResult r4 = Prima(g, {10, 5, 3}, 0.5, 1.0, 11, 4);
  EXPECT_EQ(r4.seeds, kGoldenPrimaSeeds);
  EXPECT_EQ(r4.num_rr_sets, kGoldenPrimaRrSets);
  const ImResult r1 = Prima(g, {10, 5, 3}, 0.5, 1.0, 11, 1);
  EXPECT_EQ(r1.seeds, kGoldenPrimaSeeds);
  EXPECT_EQ(r1.num_rr_sets, kGoldenPrimaRrSets);
}

// --- warm stream-cache equivalence ------------------------------------

TEST(RrStreamCacheTest, WarmPoolIsBitIdenticalToCold) {
  Graph g = GoldenGraph();
  RrStreamCache cache;
  RrOptions warm_opt;
  warm_opt.stream_cache = &cache;
  RrCollection warm(g, 42, 4, warm_opt);
  warm.GenerateUntil(777);
  warm.GenerateUntil(2000);
  EXPECT_EQ(PoolHash(warm), kGoldenIcPoolHash);
  ExpectIndexMatchesReference(warm);

  RrCollection cold(g, 42, 4);
  cold.GenerateUntil(2000);
  ASSERT_EQ(warm.size(), cold.size());
  EXPECT_EQ(warm.TotalNodes(), cold.TotalNodes());
  EXPECT_EQ(warm.TotalEdgesExamined(), cold.TotalEdgesExamined());
}

TEST(RrStreamCacheTest, SecondCollectionSamplesOnlyTheDelta) {
  Graph g = GoldenGraph();
  RrStreamCache cache;
  RrOptions warm_opt;
  warm_opt.stream_cache = &cache;
  {
    RrCollection first(g, 9, 4, warm_opt);
    first.GenerateUntil(1000);
  }
  const size_t sampled_after_first = cache.stats().sampled_sets;
  EXPECT_EQ(sampled_after_first, 1000u);
  RrCollection second(g, 9, 4, warm_opt);
  second.GenerateUntil(1500);  // prefix of the same streams + 500 more
  EXPECT_EQ(cache.stats().sampled_sets, 1500u);
  EXPECT_GE(cache.stats().served_sets, 2500u);
  RrCollection cold(g, 9, 4);
  cold.GenerateUntil(1500);
  EXPECT_EQ(PoolHash(second), PoolHash(cold));
}

TEST(RrStreamCacheTest, ResetKeysANewEntryAndReplaysIt) {
  // PRIMA's regeneration pass Resets to a derived seed; the cache must key
  // the two stream groups separately and replay both bit-identically.
  Graph g = GoldenGraph();
  RrStreamCache cache;
  RrOptions warm_opt;
  warm_opt.stream_cache = &cache;
  RrCollection warm(g, 21, 4, warm_opt);
  warm.GenerateUntil(600);
  warm.Reset(123);
  warm.GenerateUntil(800);
  RrCollection cold(g, 123, 4);
  cold.GenerateUntil(800);
  EXPECT_EQ(PoolHash(warm), PoolHash(cold));
  EXPECT_EQ(cache.stats().entries, 2u);

  // Replaying the regeneration seed costs no new samples.
  const size_t sampled = cache.stats().sampled_sets;
  RrCollection replay(g, 123, 4, warm_opt);
  replay.GenerateUntil(800);
  EXPECT_EQ(cache.stats().sampled_sets, sampled);
  EXPECT_EQ(PoolHash(replay), PoolHash(cold));
}

TEST(RrStreamCacheTest, PassProbEntriesAreKeyedByContents) {
  Graph g = GoldenGraph();
  RrStreamCache cache;
  std::vector<float> coins_a(g.num_nodes(), 0.6f);
  std::vector<float> coins_b(g.num_nodes(), 0.6f);  // equal contents
  std::vector<float> coins_c(g.num_nodes(), 0.3f);  // different coins
  RrOptions opt_a;
  opt_a.node_pass_prob = &coins_a;
  opt_a.stream_cache = &cache;
  RrCollection a(g, 3, 4, opt_a);
  a.GenerateUntil(400);
  EXPECT_EQ(cache.stats().entries, 1u);

  RrOptions opt_b = opt_a;
  opt_b.node_pass_prob = &coins_b;  // different pointer, same contents
  RrCollection b(g, 3, 4, opt_b);
  b.GenerateUntil(400);
  EXPECT_EQ(cache.stats().entries, 1u);  // reused
  EXPECT_EQ(cache.stats().sampled_sets, 400u);
  EXPECT_EQ(PoolHash(a), PoolHash(b));

  RrOptions opt_c = opt_a;
  opt_c.node_pass_prob = &coins_c;
  RrCollection c(g, 3, 4, opt_c);
  c.GenerateUntil(400);
  EXPECT_EQ(cache.stats().entries, 2u);  // new coins, new entry
  EXPECT_NE(PoolHash(a), PoolHash(c));

  // Cold reference for the coin pool: identical content.
  RrOptions cold_opt;
  cold_opt.node_pass_prob = &coins_a;
  RrCollection cold(g, 3, 4, cold_opt);
  cold.GenerateUntil(400);
  EXPECT_EQ(PoolHash(a), PoolHash(cold));
}

TEST(RrStreamCacheTest, TrimDropsOldestCoinEntriesKeepsPlainOnes) {
  Graph g = GoldenGraph();
  RrStreamCache cache;
  RrOptions plain;
  plain.stream_cache = &cache;
  {
    RrCollection pool(g, 1, 4, plain);
    pool.GenerateUntil(100);
  }
  std::vector<std::vector<float>> coin_sets;
  for (int i = 0; i < 3; ++i) {
    coin_sets.emplace_back(g.num_nodes(), 0.1f * static_cast<float>(i + 1));
    RrOptions opt = plain;
    opt.node_pass_prob = &coin_sets.back();
    RrCollection pool(g, 2, 4, opt);
    pool.GenerateUntil(100);
  }
  ASSERT_EQ(cache.stats().entries, 4u);  // 1 plain + 3 coin entries
  const size_t sampled = cache.stats().sampled_sets;

  cache.TrimPassProbEntries(1);
  EXPECT_EQ(cache.stats().entries, 2u);  // plain + newest coins survive
  EXPECT_EQ(cache.stats().sampled_sets, sampled);  // counters are monotone

  // The survivors still serve without resampling; the evicted coins cost
  // a fresh 100 sets again.
  {
    RrOptions opt = plain;
    opt.node_pass_prob = &coin_sets.back();  // newest: kept
    RrCollection pool(g, 2, 4, opt);
    pool.GenerateUntil(100);
  }
  EXPECT_EQ(cache.stats().sampled_sets, sampled);
  {
    RrOptions opt = plain;
    opt.node_pass_prob = &coin_sets.front();  // oldest: evicted
    RrCollection pool(g, 2, 4, opt);
    pool.GenerateUntil(100);
  }
  EXPECT_EQ(cache.stats().sampled_sets, sampled + 100);
}

// --- run-to-run determinism -------------------------------------------

TEST(RrEngineDeterminism, PoolIsByteIdenticalAcrossRuns) {
  Graph g = GoldenGraph();
  for (unsigned workers : {1u, 3u, 8u}) {
    RrCollection a(g, 21, workers);
    a.GenerateUntil(600);
    a.GenerateUntil(1500);
    RrCollection b(g, 21, workers);
    b.GenerateUntil(600);
    b.GenerateUntil(1500);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.TotalNodes(), b.TotalNodes());
    ASSERT_EQ(a.TotalEdgesExamined(), b.TotalEdgesExamined());
    for (size_t r = 0; r < a.size(); ++r) {
      auto sa = a.Set(r);
      auto sb = b.Set(r);
      ASSERT_EQ(sa.size(), sb.size()) << "set " << r;
      ASSERT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()))
          << "set " << r;
    }
  }
}

TEST(RrEngineDeterminism, PrimaSeedsIdenticalAcrossRuns) {
  Graph g = GenerateErdosRenyi(250, 1500, 9);
  g.ApplyWeightedCascade();
  const ImResult a = Prima(g, {8, 4}, 0.5, 1.0, 77, 4);
  const ImResult b = Prima(g, {8, 4}, 0.5, 1.0, 77, 4);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
}

TEST(RrEngineDeterminism, IndependentOfPhysicalThreadCount) {
  // The determinism contract is the seed alone: the same pool must come
  // out whether the work runs on 1 or 8 physical threads.
  Graph g = GoldenGraph();
  ThreadPool one(1);
  ThreadPool eight(8);
  RrCollection a(g, 33, 4, {}, &one);
  RrCollection b(g, 33, 4, {}, &eight);
  a.GenerateUntil(1200);
  b.GenerateUntil(1200);
  EXPECT_EQ(PoolHash(a), PoolHash(b));
}

TEST(RrEngineDeterminism, ResetEqualsFreshCollection) {
  Graph g = GoldenGraph();
  RrCollection reused(g, 1, 4);
  reused.GenerateUntil(900);  // unrelated prior life
  reused.Reset(123);
  reused.GenerateUntil(800);
  RrCollection fresh(g, 123, 4);
  fresh.GenerateUntil(800);
  EXPECT_EQ(PoolHash(reused), PoolHash(fresh));
  ExpectIndexMatchesReference(reused);
}

// --- incremental index maintenance ------------------------------------

TEST(RrEngineIndex, IncrementalEqualsFreshlyBuiltAfterInterleavedGrowth) {
  Graph g = GoldenGraph();
  RrCollection pool(g, 50, 4);
  pool.GenerateUntil(2000);
  ExpectIndexMatchesReference(pool);
  // A small second round extends the index instead of rebuilding it: the
  // new delta (≤ 5 sets of ≤ 200 nodes) is strictly smaller than the
  // first (≥ 2000 entries), so tiering keeps it as a separate delta.
  pool.GenerateUntil(2005);
  EXPECT_EQ(pool.IndexDeltaCount(), 2u);
  ExpectIndexMatchesReference(pool);
  pool.Clear();  // invalidated only by Clear()
  EXPECT_EQ(pool.IndexDeltaCount(), 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(pool.IndexDegree(v), 0u);
  }
  pool.GenerateUntil(300);
  ExpectIndexMatchesReference(pool);
}

TEST(RrEngineIndex, TieredMergingBoundsDeltaCountAndPreservesContent) {
  Graph g = GoldenGraph();
  RrCollection pool(g, 70, 4);
  // Many growth rounds of varying size: tiering + the hard cap must keep
  // the delta count bounded while the index stays exact.
  size_t target = 50;
  for (size_t add : {100ul, 400ul, 30ul, 700ul, 10ul, 5ul, 900ul, 20ul,
                     3ul, 2ul, 1ul, 250ul}) {
    target += add;
    pool.GenerateUntil(target);
    ASSERT_LE(pool.IndexDeltaCount(), 8u) << "target " << target;
  }
  ExpectIndexMatchesReference(pool);
  const SeedSelection got = NodeSelection(pool, 20);
  const SeedSelection want = ReferenceNodeSelection(pool, 20, {});
  EXPECT_EQ(got.seeds, want.seeds);
}

TEST(RrEngineIndex, MaintainedUnderPassProbAndLt) {
  Graph g = GoldenGraph();
  std::vector<float> pass(g.num_nodes(), 0.6f);
  RrOptions with_coins;
  with_coins.node_pass_prob = &pass;
  RrCollection coins(g, 3, 4, with_coins);
  coins.GenerateUntil(800);  // empty sets (rejected roots) count, uncovered
  ExpectIndexMatchesReference(coins);

  RrOptions lt;
  lt.linear_threshold = true;
  RrCollection walk(g, 4, 4, lt);
  walk.GenerateUntil(500);
  walk.GenerateUntil(1100);
  ExpectIndexMatchesReference(walk);
}

TEST(RrEngineIndex, CountCoveredSetsMatchesScan) {
  Graph g = GoldenGraph();
  RrCollection pool(g, 60, 4);
  pool.GenerateUntil(1500);
  const std::vector<NodeId> seeds = {1, 17, 42, 99, 150};
  std::vector<uint8_t> is_seed(g.num_nodes(), 0);
  for (NodeId v : seeds) is_seed[v] = 1;
  size_t expected = 0;
  for (size_t r = 0; r < pool.size(); ++r) {
    for (NodeId v : pool.Set(r)) {
      if (is_seed[v]) {
        ++expected;
        break;
      }
    }
  }
  EXPECT_EQ(CountCoveredSets(pool, seeds), expected);
}

// --- selection equivalence on arbitrary instances ---------------------

TEST(RrEngineSelection, MatchesReferenceImplementation) {
  for (uint64_t graph_seed : {101ull, 202ull, 303ull}) {
    Graph g = GenerateErdosRenyi(120, 700, graph_seed);
    g.ApplyWeightedCascade();
    RrCollection pool(g, graph_seed ^ 0xabcd, 4);
    pool.GenerateUntil(400);
    pool.GenerateUntil(1300);
    for (const std::vector<NodeId>& excluded :
         {std::vector<NodeId>{}, std::vector<NodeId>{0, 5, 7}}) {
      const SeedSelection got = NodeSelection(pool, 30, excluded);
      const SeedSelection want =
          ReferenceNodeSelection(pool, 30, excluded);
      EXPECT_EQ(got.seeds, want.seeds) << "graph_seed=" << graph_seed;
      EXPECT_EQ(got.coverage, want.coverage) << "graph_seed=" << graph_seed;
    }
  }
}

}  // namespace
}  // namespace uic
