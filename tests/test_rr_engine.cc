// Determinism, equivalence, and index-maintenance tests for the RR engine
// (persistent thread pool + RrCollection + index-driven NodeSelection).
//
// The GOLDEN_* constants below were captured from the pre-refactor engine
// (fork-join ParallelFor, copy-merge pool, per-call index build in
// NodeSelection) at the same seeds; matching them proves the refactor is
// bit-identical, not merely statistically equivalent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <queue>
#include <tuple>
#include <vector>

#include "common/thread_pool.h"
#include "graph/generators.h"
#include "rrset/node_selection.h"
#include "rrset/prima.h"
#include "rrset/rr_collection.h"

namespace uic {
namespace {

// --- golden values from the pre-refactor engine -----------------------
constexpr uint64_t kGoldenIcPoolHashW1 = 0xcb1eb66d623fbd39ULL;
constexpr uint64_t kGoldenIcPoolHashW4 = 0x03668bcb39438cecULL;
constexpr uint64_t kGoldenLtPoolHash = 0xe0b392891fdf9e83ULL;
constexpr uint64_t kGoldenCoverageHashW1 = 0xcb5440a3ffc4df19ULL;
constexpr uint64_t kGoldenCoverageHashW4 = 0x80088ddc99185bb4ULL;
const std::vector<NodeId> kGoldenSeedsW1 = {
    98, 44, 34, 97, 92, 62, 89, 119, 82, 54, 24, 40, 103,
    41, 32, 148, 58, 113, 176, 94, 57, 14, 48, 56, 180};
const std::vector<NodeId> kGoldenSeedsW4 = {
    98, 44, 34, 109, 62, 97, 103, 47, 18, 113, 153, 189, 119,
    82, 50, 6, 94, 48, 53, 126, 32, 183, 58, 68, 199};
const std::vector<NodeId> kGoldenPrimaSeedsW4 = {202, 89, 136, 284, 52,
                                                 242, 187, 248, 296, 79};
const std::vector<NodeId> kGoldenPrimaSeedsW1 = {63, 89, 185, 242, 138,
                                                 136, 93, 284, 79, 296};
constexpr size_t kGoldenPrimaRrSetsW4 = 2247;
constexpr size_t kGoldenPrimaRrSetsW1 = 2319;

uint64_t Fnv1a(uint64_t h, uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t PoolHash(const RrCollection& pool) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, pool.size());
  for (size_t r = 0; r < pool.size(); ++r) {
    auto s = pool.Set(r);
    h = Fnv1a(h, s.size());
    for (NodeId v : s) h = Fnv1a(h, v);
  }
  return h;
}

uint64_t CoverageHash(const SeedSelection& sel) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (double c : sel.coverage) {
    uint64_t bits;
    std::memcpy(&bits, &c, sizeof(bits));
    h = Fnv1a(h, bits);
  }
  return h;
}

Graph GoldenGraph() {
  Graph g = GenerateErdosRenyi(200, 1200, 7);
  g.ApplyWeightedCascade();
  return g;
}

// Reference inverted index built from scratch by scanning the pool — what
// the pre-refactor NodeSelection rebuilt on every call.
std::vector<std::vector<uint32_t>> ReferenceIndex(const RrCollection& pool) {
  std::vector<std::vector<uint32_t>> index(pool.graph().num_nodes());
  for (size_t r = 0; r < pool.size(); ++r) {
    for (NodeId v : pool.Set(r)) {
      index[v].push_back(static_cast<uint32_t>(r));
    }
  }
  return index;
}

void ExpectIndexMatchesReference(const RrCollection& pool) {
  const std::vector<std::vector<uint32_t>> ref = ReferenceIndex(pool);
  for (NodeId v = 0; v < pool.graph().num_nodes(); ++v) {
    ASSERT_EQ(pool.IndexDegree(v), ref[v].size()) << "node " << v;
    std::vector<uint32_t> got;
    pool.ForEachSetContaining(v, [&](uint32_t r) { got.push_back(r); });
    ASSERT_EQ(got, ref[v]) << "node " << v;
  }
}

// The pre-refactor NodeSelection, kept verbatim as an executable spec:
// builds its own CSR index, then runs the identical lazy greedy.
SeedSelection ReferenceNodeSelection(const RrCollection& collection, size_t k,
                                     const std::vector<NodeId>& excluded) {
  const Graph& graph = collection.graph();
  const NodeId n = graph.num_nodes();
  const size_t num_sets = collection.size();
  SeedSelection result;
  if (num_sets == 0 || k == 0) return result;

  std::vector<uint32_t> deg(n, 0);
  for (size_t r = 0; r < num_sets; ++r) {
    for (NodeId v : collection.Set(r)) ++deg[v];
  }
  std::vector<size_t> node_off(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) node_off[v + 1] = node_off[v] + deg[v];
  std::vector<uint32_t> node_sets(node_off[n]);
  {
    std::vector<size_t> cursor(node_off.begin(), node_off.end() - 1);
    for (size_t r = 0; r < num_sets; ++r) {
      for (NodeId v : collection.Set(r)) {
        node_sets[cursor[v]++] = static_cast<uint32_t>(r);
      }
    }
  }

  std::vector<uint8_t> banned(n, 0);
  for (NodeId v : excluded) banned[v] = 1;

  std::vector<uint8_t> covered(num_sets, 0);
  std::vector<uint8_t> selected(n, 0);
  using Entry = std::pair<uint32_t, NodeId>;
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v) {
    if (deg[v] > 0 && !banned[v]) heap.push({deg[v], v});
  }

  size_t covered_count = 0;
  std::vector<uint32_t> stamp(n, 0);
  uint32_t round = 0;
  while (result.seeds.size() < k && !heap.empty()) {
    auto [gain, v] = heap.top();
    heap.pop();
    if (selected[v]) continue;
    if (stamp[v] != round) {
      uint32_t g = 0;
      for (size_t idx = node_off[v]; idx < node_off[v + 1]; ++idx) {
        g += covered[node_sets[idx]] == 0;
      }
      stamp[v] = round;
      if (!heap.empty() && g < heap.top().first) {
        if (g > 0) heap.push({g, v});
        continue;
      }
      gain = g;
    }
    selected[v] = 1;
    for (size_t idx = node_off[v]; idx < node_off[v + 1]; ++idx) {
      const uint32_t r = node_sets[idx];
      if (!covered[r]) {
        covered[r] = 1;
        ++covered_count;
      }
    }
    ++round;
    (void)gain;
    result.seeds.push_back(v);
    result.coverage.push_back(static_cast<double>(covered_count) /
                              static_cast<double>(num_sets));
  }
  for (NodeId v = 0; v < n && result.seeds.size() < k; ++v) {
    if (!selected[v] && !banned[v]) {
      selected[v] = 1;
      result.seeds.push_back(v);
      result.coverage.push_back(static_cast<double>(covered_count) /
                                static_cast<double>(num_sets));
    }
  }
  return result;
}

// --- old-vs-new golden equivalence ------------------------------------

TEST(RrEngineGolden, IcPoolMatchesPreRefactorEngine) {
  Graph g = GoldenGraph();
  for (const auto& [workers, pool_hash, seeds, coverage_hash] :
       {std::tuple{1u, kGoldenIcPoolHashW1, kGoldenSeedsW1,
                   kGoldenCoverageHashW1},
        std::tuple{4u, kGoldenIcPoolHashW4, kGoldenSeedsW4,
                   kGoldenCoverageHashW4}}) {
    RrCollection pool(g, 42, workers);
    pool.GenerateUntil(777);
    pool.GenerateUntil(2000);  // same growth schedule as the capture run
    EXPECT_EQ(PoolHash(pool), pool_hash) << "workers=" << workers;
    const SeedSelection sel = NodeSelection(pool, 25);
    EXPECT_EQ(sel.seeds, seeds) << "workers=" << workers;
    EXPECT_EQ(CoverageHash(sel), coverage_hash) << "workers=" << workers;
  }
}

TEST(RrEngineGolden, LtPoolMatchesPreRefactorEngine) {
  Graph g = GoldenGraph();
  RrOptions opt;
  opt.linear_threshold = true;
  RrCollection pool(g, 5, 4, opt);
  pool.GenerateUntil(1500);
  EXPECT_EQ(PoolHash(pool), kGoldenLtPoolHash);
}

TEST(RrEngineGolden, PrimaSeedsMatchPreRefactorEngine) {
  Graph g = GenerateErdosRenyi(300, 1800, 3);
  g.ApplyWeightedCascade();
  const ImResult r4 = Prima(g, {10, 5, 3}, 0.5, 1.0, 11, 4);
  EXPECT_EQ(r4.seeds, kGoldenPrimaSeedsW4);
  EXPECT_EQ(r4.num_rr_sets, kGoldenPrimaRrSetsW4);
  const ImResult r1 = Prima(g, {10, 5, 3}, 0.5, 1.0, 11, 1);
  EXPECT_EQ(r1.seeds, kGoldenPrimaSeedsW1);
  EXPECT_EQ(r1.num_rr_sets, kGoldenPrimaRrSetsW1);
}

// --- run-to-run determinism -------------------------------------------

TEST(RrEngineDeterminism, PoolIsByteIdenticalAcrossRuns) {
  Graph g = GoldenGraph();
  for (unsigned workers : {1u, 3u, 8u}) {
    RrCollection a(g, 21, workers);
    a.GenerateUntil(600);
    a.GenerateUntil(1500);
    RrCollection b(g, 21, workers);
    b.GenerateUntil(600);
    b.GenerateUntil(1500);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.TotalNodes(), b.TotalNodes());
    ASSERT_EQ(a.TotalEdgesExamined(), b.TotalEdgesExamined());
    for (size_t r = 0; r < a.size(); ++r) {
      auto sa = a.Set(r);
      auto sb = b.Set(r);
      ASSERT_EQ(sa.size(), sb.size()) << "set " << r;
      ASSERT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()))
          << "set " << r;
    }
  }
}

TEST(RrEngineDeterminism, PrimaSeedsIdenticalAcrossRuns) {
  Graph g = GenerateErdosRenyi(250, 1500, 9);
  g.ApplyWeightedCascade();
  const ImResult a = Prima(g, {8, 4}, 0.5, 1.0, 77, 4);
  const ImResult b = Prima(g, {8, 4}, 0.5, 1.0, 77, 4);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
}

TEST(RrEngineDeterminism, IndependentOfPhysicalThreadCount) {
  // The determinism contract is (seed, *logical* workers): the same pool
  // must come out whether the work runs on 1 or 8 physical threads.
  Graph g = GoldenGraph();
  ThreadPool one(1);
  ThreadPool eight(8);
  RrCollection a(g, 33, 4, {}, &one);
  RrCollection b(g, 33, 4, {}, &eight);
  a.GenerateUntil(1200);
  b.GenerateUntil(1200);
  EXPECT_EQ(PoolHash(a), PoolHash(b));
}

TEST(RrEngineDeterminism, ResetEqualsFreshCollection) {
  Graph g = GoldenGraph();
  RrCollection reused(g, 1, 4);
  reused.GenerateUntil(900);  // unrelated prior life
  reused.Reset(123);
  reused.GenerateUntil(800);
  RrCollection fresh(g, 123, 4);
  fresh.GenerateUntil(800);
  EXPECT_EQ(PoolHash(reused), PoolHash(fresh));
  ExpectIndexMatchesReference(reused);
}

// --- incremental index maintenance ------------------------------------

TEST(RrEngineIndex, IncrementalEqualsFreshlyBuiltAfterInterleavedGrowth) {
  Graph g = GoldenGraph();
  RrCollection pool(g, 50, 4);
  pool.GenerateUntil(2000);
  ExpectIndexMatchesReference(pool);
  // A small second round extends the index instead of rebuilding it: the
  // new delta (≤ 5 sets of ≤ 200 nodes) is strictly smaller than the
  // first (≥ 2000 entries), so tiering keeps it as a separate delta.
  pool.GenerateUntil(2005);
  EXPECT_EQ(pool.IndexDeltaCount(), 2u);
  ExpectIndexMatchesReference(pool);
  pool.Clear();  // invalidated only by Clear()
  EXPECT_EQ(pool.IndexDeltaCount(), 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(pool.IndexDegree(v), 0u);
  }
  pool.GenerateUntil(300);
  ExpectIndexMatchesReference(pool);
}

TEST(RrEngineIndex, TieredMergingBoundsDeltaCountAndPreservesContent) {
  Graph g = GoldenGraph();
  RrCollection pool(g, 70, 4);
  // Many growth rounds of varying size: tiering + the hard cap must keep
  // the delta count bounded while the index stays exact.
  size_t target = 50;
  for (size_t add : {100ul, 400ul, 30ul, 700ul, 10ul, 5ul, 900ul, 20ul,
                     3ul, 2ul, 1ul, 250ul}) {
    target += add;
    pool.GenerateUntil(target);
    ASSERT_LE(pool.IndexDeltaCount(), 8u) << "target " << target;
  }
  ExpectIndexMatchesReference(pool);
  const SeedSelection got = NodeSelection(pool, 20);
  const SeedSelection want = ReferenceNodeSelection(pool, 20, {});
  EXPECT_EQ(got.seeds, want.seeds);
}

TEST(RrEngineIndex, MaintainedUnderPassProbAndLt) {
  Graph g = GoldenGraph();
  std::vector<float> pass(g.num_nodes(), 0.6f);
  RrOptions with_coins;
  with_coins.node_pass_prob = &pass;
  RrCollection coins(g, 3, 4, with_coins);
  coins.GenerateUntil(800);  // empty sets (rejected roots) count, uncovered
  ExpectIndexMatchesReference(coins);

  RrOptions lt;
  lt.linear_threshold = true;
  RrCollection walk(g, 4, 4, lt);
  walk.GenerateUntil(500);
  walk.GenerateUntil(1100);
  ExpectIndexMatchesReference(walk);
}

TEST(RrEngineIndex, CountCoveredSetsMatchesScan) {
  Graph g = GoldenGraph();
  RrCollection pool(g, 60, 4);
  pool.GenerateUntil(1500);
  const std::vector<NodeId> seeds = {1, 17, 42, 99, 150};
  std::vector<uint8_t> is_seed(g.num_nodes(), 0);
  for (NodeId v : seeds) is_seed[v] = 1;
  size_t expected = 0;
  for (size_t r = 0; r < pool.size(); ++r) {
    for (NodeId v : pool.Set(r)) {
      if (is_seed[v]) {
        ++expected;
        break;
      }
    }
  }
  EXPECT_EQ(CountCoveredSets(pool, seeds), expected);
}

// --- selection equivalence on arbitrary instances ---------------------

TEST(RrEngineSelection, MatchesReferenceImplementation) {
  for (uint64_t graph_seed : {101ull, 202ull, 303ull}) {
    Graph g = GenerateErdosRenyi(120, 700, graph_seed);
    g.ApplyWeightedCascade();
    RrCollection pool(g, graph_seed ^ 0xabcd, 4);
    pool.GenerateUntil(400);
    pool.GenerateUntil(1300);
    for (const std::vector<NodeId>& excluded :
         {std::vector<NodeId>{}, std::vector<NodeId>{0, 5, 7}}) {
      const SeedSelection got = NodeSelection(pool, 30, excluded);
      const SeedSelection want =
          ReferenceNodeSelection(pool, 30, excluded);
      EXPECT_EQ(got.seeds, want.seeds) << "graph_seed=" << graph_seed;
      EXPECT_EQ(got.coverage, want.coverage) << "graph_seed=" << graph_seed;
    }
  }
}

}  // namespace
}  // namespace uic
