#include "items/utility_table.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "items/supermodular_generators.h"

namespace uic {
namespace {

ItemParams TwoItemParams(double v1, double v2, double v12, double p1,
                         double p2) {
  auto value = std::make_shared<TabularValueFunction>(
      2, std::vector<double>{0.0, v1, v2, v12});
  return ItemParams(value, {p1, p2}, NoiseModel::Zero(2));
}

TEST(UtilityTable, ComputesValueMinusPricePlusNoise) {
  ItemParams params = TwoItemParams(3.0, 4.0, 9.0, 1.0, 2.0);
  const UtilityTable det(params);
  EXPECT_DOUBLE_EQ(det.Utility(0), 0.0);
  EXPECT_DOUBLE_EQ(det.Utility(0b01), 2.0);
  EXPECT_DOUBLE_EQ(det.Utility(0b10), 2.0);
  EXPECT_DOUBLE_EQ(det.Utility(0b11), 6.0);

  const UtilityTable noisy(params, {0.5, -1.5});
  EXPECT_DOUBLE_EQ(noisy.Utility(0b01), 2.5);
  EXPECT_DOUBLE_EQ(noisy.Utility(0b10), 0.5);
  EXPECT_DOUBLE_EQ(noisy.Utility(0b11), 5.0);
}

TEST(UtilityTable, BestAdoptionPicksUtilityMaximizer) {
  // i1 alone +2, i2 alone -1, both +3.
  ItemParams params = TwoItemParams(3.0, 1.0, 8.0, 1.0, 2.0);
  const UtilityTable table(params);
  EXPECT_EQ(table.BestAdoption(0, 0b01), 0b01u);
  EXPECT_EQ(table.BestAdoption(0, 0b10), 0u);  // negative alone: adopt nothing
  EXPECT_EQ(table.BestAdoption(0, 0b11), 0b11u);
}

TEST(UtilityTable, BestAdoptionRespectsCurrentAdoption) {
  // A node that already adopted i2 must keep it even if dropping would pay.
  ItemParams params = TwoItemParams(3.0, 1.0, 8.0, 1.0, 2.0);
  const UtilityTable table(params);
  EXPECT_EQ(table.BestAdoption(0b10, 0b11), 0b11u);
  EXPECT_EQ(table.BestAdoption(0b10, 0b10), 0b10u);
}

TEST(UtilityTable, TieBreaksTowardLargerCardinality) {
  // i1 alone +1; adding i2 keeps utility +1 (marginal 0): prefer {i1,i2}.
  ItemParams params = TwoItemParams(2.0, 2.0, 4.0, 1.0, 2.0);
  const UtilityTable table(params);
  EXPECT_EQ(table.BestAdoption(0, 0b11), 0b11u);
}

TEST(UtilityTable, EmptyDesireAdoptsNothing) {
  ItemParams params = TwoItemParams(5.0, 5.0, 12.0, 1.0, 1.0);
  const UtilityTable table(params);
  EXPECT_EQ(table.BestAdoption(0, 0), 0u);
}

TEST(UtilityTable, GlobalOptimumFindsBestItemset) {
  // Only the pair is profitable.
  ItemParams params = TwoItemParams(1.0, 1.0, 7.0, 2.0, 2.0);
  const UtilityTable table(params);
  EXPECT_EQ(table.GlobalOptimum(), 0b11u);
}

TEST(UtilityTable, GlobalOptimumEmptyWhenAllNegative) {
  ItemParams params = TwoItemParams(1.0, 1.0, 3.0, 2.0, 2.0);
  const UtilityTable table(params);
  EXPECT_EQ(table.GlobalOptimum(), 0u);
}

TEST(UtilityTable, LocalMaximumDetection) {
  ItemParams params = TwoItemParams(3.0, 1.0, 8.0, 1.0, 2.0);
  const UtilityTable table(params);
  EXPECT_TRUE(table.IsLocalMaximum(0));
  EXPECT_TRUE(table.IsLocalMaximum(0b01));   // +2 beats 0
  EXPECT_FALSE(table.IsLocalMaximum(0b10));  // -1 below 0
  EXPECT_TRUE(table.IsLocalMaximum(0b11));   // +3 beats all subsets
}

class Lemma1Test : public ::testing::TestWithParam<uint64_t> {};

// Lemma 1: for supermodular utilities, the union of two local maxima is a
// local maximum (and its utility is at least both).
TEST_P(Lemma1Test, UnionOfLocalMaximaIsLocalMaximum) {
  Rng rng(GetParam());
  const ItemId k = 5;
  auto value = MakeRandomSupermodularValue(k, rng, 0.2, 2.0, 0.8);
  std::vector<double> prices(k);
  for (auto& p : prices) p = rng.NextUniform(0.5, 3.0);
  ItemParams params(value, prices, NoiseModel::Zero(k));
  std::vector<double> noise(k);
  for (auto& x : noise) x = rng.NextGaussian(0.0, 1.0);
  const UtilityTable table(params, noise);

  std::vector<ItemSet> local_maxima;
  for (ItemSet s = 0; s < (1u << k); ++s) {
    if (table.IsLocalMaximum(s)) local_maxima.push_back(s);
  }
  ASSERT_FALSE(local_maxima.empty());
  for (ItemSet a : local_maxima) {
    for (ItemSet b : local_maxima) {
      EXPECT_TRUE(table.IsLocalMaximum(a | b))
          << ItemSetToString(a) << " ∪ " << ItemSetToString(b);
      EXPECT_GE(table.Utility(a | b) + 1e-9,
                std::max(table.Utility(a), table.Utility(b)));
    }
  }
}

// The global optimum is unique under the larger-cardinality tie-break:
// no strictly larger set ties with it, and nothing beats it.
TEST_P(Lemma1Test, GlobalOptimumIsMaximalMaximizer) {
  Rng rng(GetParam() ^ 0x77);
  const ItemId k = 5;
  auto value = MakeRandomSupermodularValue(k, rng, 0.2, 2.0, 0.8);
  std::vector<double> prices(k);
  for (auto& p : prices) p = rng.NextUniform(0.5, 3.0);
  ItemParams params(value, prices, NoiseModel::Zero(k));
  std::vector<double> noise(k);
  for (auto& x : noise) x = rng.NextGaussian(0.0, 1.0);
  const UtilityTable table(params, noise);

  const ItemSet opt = table.GlobalOptimum();
  for (ItemSet s = 0; s < (1u << k); ++s) {
    EXPECT_LE(table.Utility(s), table.Utility(opt) + 1e-9);
    if (std::abs(table.Utility(s) - table.Utility(opt)) < 1e-9) {
      EXPECT_TRUE(IsSubset(s, opt)) << ItemSetToString(s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Test, ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace uic
