// Metamorphic properties of the Monte-Carlo welfare estimator: relations
// that must hold between estimates of *transformed* problem instances,
// independent of the (unknown) true welfare values.
//
//  1. Monotonicity — a superset seed-allocation never decreases estimated
//     welfare (UIC welfare is monotone in 𝒮 for mutually complementary
//     items, §4.1; the estimator must preserve that up to MC noise).
//  2. Zero prices — with P ≡ 0 the utility collapses to the valuation
//     plus noise, so the utility table equals V exactly and welfare
//     matches a params built directly on V.
//  3. Item relabeling — welfare is invariant under a permutation of item
//     labels applied consistently to (V, P, N), the budgets, and the
//     allocation; with deterministic noise the estimate is bit-identical.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "diffusion/uic_model.h"
#include "exp/configs.h"
#include "graph/generators.h"
#include "items/utility_table.h"

namespace uic {
namespace {

Graph PropGraph(uint64_t seed = 23) {
  Graph g = GenerateErdosRenyi(200, 1400, seed);
  g.ApplyWeightedCascade();
  return g;
}

// --- 1. superset allocations -------------------------------------------

TEST(WelfareMonotonicity, AddingItemsToSeedsNeverDecreasesWelfare) {
  const Graph g = PropGraph();
  const ItemParams params = MakeTwoItemConfig12();
  // A: item 0 on five hubs. B ⊇ A: the bundle {0,1} on the same nodes —
  // config 1's synergy makes the bundle strictly better, but the property
  // asserted is only ≥ (up to MC noise).
  Allocation a, b;
  for (NodeId v = 0; v < 5; ++v) {
    a.AddItem(v, 0);
    b.Add(v, 0b11);
  }
  const WelfareEstimate wa = EstimateWelfare(g, a, params, 2000, 31, 4);
  const WelfareEstimate wb = EstimateWelfare(g, b, params, 2000, 31, 4);
  EXPECT_GE(wb.welfare,
            wa.welfare - 3.0 * (wa.std_error + wb.std_error));
}

TEST(WelfareMonotonicity, AddingSeedNodesNeverDecreasesWelfare) {
  const Graph g = PropGraph();
  const ItemParams params = MakeTwoItemConfig12();
  for (uint64_t eval_seed : {5ull, 77ull, 901ull}) {
    Allocation small, big;
    for (NodeId v = 0; v < 4; ++v) {
      small.Add(v, 0b11);
      big.Add(v, 0b11);
    }
    for (NodeId v = 4; v < 10; ++v) big.Add(v, 0b11);  // superset seeds
    const WelfareEstimate ws =
        EstimateWelfare(g, small, params, 2000, eval_seed, 4);
    const WelfareEstimate wb =
        EstimateWelfare(g, big, params, 2000, eval_seed, 4);
    EXPECT_GE(wb.welfare,
              ws.welfare - 3.0 * (ws.std_error + wb.std_error))
        << "eval_seed=" << eval_seed;
  }
}

// --- 2. all-zero prices ------------------------------------------------

TEST(WelfareZeroPrices, UtilityTableCollapsesToValuation) {
  const ItemParams base = MakeTwoItemConfig34();
  const ItemParams zero_priced(
      std::make_shared<TabularValueFunction>(
          TabularValueFunction::FromFunction(base.value())),
      std::vector<double>(base.num_items(), 0.0), NoiseModel::Zero(2));
  const UtilityTable table(zero_priced);
  for (ItemSet s = 0; s < (ItemSet{1} << zero_priced.num_items()); ++s) {
    EXPECT_DOUBLE_EQ(table.Utility(s), base.value().Value(s)) << "set " << s;
  }
}

TEST(WelfareZeroPrices, EstimateMatchesParamsBuiltDirectlyOnValuation) {
  const Graph g = PropGraph();
  auto value = std::make_shared<AdditiveValueFunction>(
      std::vector<double>{2.0, 3.0});
  const NoiseModel noise = NoiseModel::IidGaussian(2, 0.5);
  // Same valuation and noise, zero prices, built through two code paths:
  // the additive-price constructor and a materialized tabular price. The
  // estimator must not distinguish them — same seed, same result, bitwise.
  const ItemParams additive(value, std::vector<double>{0.0, 0.0}, noise);
  const ItemParams tabular(
      value,
      std::make_shared<TabularPriceFunction>(
          TabularPriceFunction::FromFunction(
              AdditivePriceFunction({0.0, 0.0}))),
      noise);
  Allocation alloc;
  for (NodeId v = 0; v < 6; ++v) alloc.Add(v, 0b11);
  const WelfareEstimate wa = EstimateWelfare(g, alloc, additive, 500, 13, 4);
  const WelfareEstimate wt = EstimateWelfare(g, alloc, tabular, 500, 13, 4);
  EXPECT_DOUBLE_EQ(wa.welfare, wt.welfare);
  EXPECT_DOUBLE_EQ(wa.std_error, wt.std_error);
}

TEST(WelfareZeroPrices, DroppingPricesNeverDecreasesWelfare) {
  const Graph g = PropGraph();
  auto value = std::make_shared<AdditiveValueFunction>(
      std::vector<double>{2.0, 3.0});
  const ItemParams priced(value, std::vector<double>{1.5, 2.5},
                          NoiseModel::Zero(2));
  const ItemParams free_items(value, std::vector<double>{0.0, 0.0},
                              NoiseModel::Zero(2));
  Allocation alloc;
  for (NodeId v = 0; v < 6; ++v) alloc.Add(v, 0b11);
  const WelfareEstimate wp = EstimateWelfare(g, alloc, priced, 1500, 41, 4);
  const WelfareEstimate wf =
      EstimateWelfare(g, alloc, free_items, 1500, 41, 4);
  EXPECT_GE(wf.welfare,
            wp.welfare - 3.0 * (wp.std_error + wf.std_error));
}

// --- 3. item relabeling ------------------------------------------------

/// Params with the item labels permuted by `perm` (item i of the result is
/// item perm[i] of `base`); generic tables, so any params can be permuted.
ItemParams PermuteItems(const ItemParams& base,
                        const std::vector<ItemId>& perm) {
  const ItemId k = base.num_items();
  auto permute_set = [&](ItemSet s) {
    ItemSet mapped = 0;
    for (ItemId i = 0; i < k; ++i) {
      if (Contains(s, i)) mapped |= ItemBit(perm[i]);
    }
    return mapped;
  };
  std::vector<double> values(size_t{1} << k), prices(size_t{1} << k);
  for (ItemSet s = 0; s < (ItemSet{1} << k); ++s) {
    values[s] = base.value().Value(permute_set(s));
    prices[s] = base.price().Price(permute_set(s));
  }
  std::vector<ItemNoise> noises(k);
  for (ItemId i = 0; i < k; ++i) noises[i] = base.noise().item(perm[i]);
  return ItemParams(
      std::make_shared<TabularValueFunction>(k, std::move(values)),
      std::make_shared<TabularPriceFunction>(k, std::move(prices)),
      NoiseModel(std::move(noises)));
}

TEST(WelfareRelabeling, EstimateIsBitIdenticalUnderItemPermutation) {
  const Graph g = PropGraph();
  // Deterministic noise: permuting labels then permutes every noise world
  // identically, so the two estimates must agree to the last bit.
  auto value = std::make_shared<TabularValueFunction>(
      2, std::vector<double>{0.0, 2.0, 3.5, 7.0});  // asymmetric items
  const ItemParams params(value, std::vector<double>{1.0, 2.0},
                          NoiseModel::Zero(2));
  const std::vector<ItemId> perm = {1, 0};  // swap the two items
  const ItemParams permuted = PermuteItems(params, perm);

  Allocation alloc, mapped;
  for (NodeId v = 0; v < 8; ++v) {
    const ItemSet s = v % 3 == 0 ? 0b01 : (v % 3 == 1 ? 0b10 : 0b11);
    alloc.Add(v, s);
    ItemSet m = 0;
    if (Contains(s, ItemId{0})) m |= ItemBit(perm[0]);
    if (Contains(s, ItemId{1})) m |= ItemBit(perm[1]);
    mapped.Add(v, m);
  }
  const WelfareEstimate orig = EstimateWelfare(g, alloc, params, 600, 19, 4);
  const WelfareEstimate relab =
      EstimateWelfare(g, mapped, permuted, 600, 19, 4);
  EXPECT_DOUBLE_EQ(orig.welfare, relab.welfare);
  EXPECT_DOUBLE_EQ(orig.std_error, relab.std_error);
  EXPECT_DOUBLE_EQ(orig.avg_adopters, relab.avg_adopters);
  EXPECT_DOUBLE_EQ(orig.avg_adoptions, relab.avg_adoptions);
}

TEST(WelfareRelabeling, GaussianNoiseEstimateIsInvariantUpToMcError) {
  const Graph g = PropGraph();
  // With iid noise the permuted instance samples different worlds (noise
  // is drawn in item order), so invariance holds in distribution: the two
  // estimates agree within Monte-Carlo error.
  const ItemParams params(
      std::make_shared<TabularValueFunction>(
          2, std::vector<double>{0.0, 2.0, 3.5, 7.0}),
      std::vector<double>{1.0, 2.0}, NoiseModel::IidGaussian(2, 0.3));
  const ItemParams permuted = PermuteItems(params, {1, 0});
  Allocation alloc, mapped;
  for (NodeId v = 0; v < 8; ++v) {
    alloc.AddItem(v, v % 2);
    mapped.AddItem(v, 1 - (v % 2));
  }
  const WelfareEstimate orig =
      EstimateWelfare(g, alloc, params, 4000, 19, 4);
  const WelfareEstimate relab =
      EstimateWelfare(g, mapped, permuted, 4000, 19, 4);
  EXPECT_NEAR(orig.welfare, relab.welfare,
              4.0 * (orig.std_error + relab.std_error) + 1e-9);
}

}  // namespace
}  // namespace uic
