#include "items/itemset.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace uic {
namespace {

TEST(ItemSet, BitHelpers) {
  EXPECT_EQ(ItemBit(0), 1u);
  EXPECT_EQ(ItemBit(3), 8u);
  EXPECT_EQ(FullItemSet(3), 7u);
  EXPECT_TRUE(Contains(0b101, 0));
  EXPECT_FALSE(Contains(0b101, 1));
  EXPECT_TRUE(Contains(0b101, 2));
}

TEST(ItemSet, SubsetRelation) {
  EXPECT_TRUE(IsSubset(0b001, 0b011));
  EXPECT_TRUE(IsSubset(0b011, 0b011));
  EXPECT_TRUE(IsSubset(0, 0b011));
  EXPECT_FALSE(IsSubset(0b100, 0b011));
}

TEST(ItemSet, CardinalityAndExtremes) {
  EXPECT_EQ(Cardinality(0), 0u);
  EXPECT_EQ(Cardinality(0b1011), 3u);
  EXPECT_EQ(LowestItem(0b1010), 1u);
  EXPECT_EQ(HighestItem(0b1010), 3u);
  EXPECT_EQ(LowestItem(0b1), 0u);
  EXPECT_EQ(HighestItem(0b1), 0u);
}

TEST(ItemSet, ForEachSubsetEnumeratesAll) {
  std::set<ItemSet> seen;
  ForEachSubset(0b101, [&](ItemSet s) { seen.insert(s); });
  EXPECT_EQ(seen, (std::set<ItemSet>{0, 0b001, 0b100, 0b101}));
}

TEST(ItemSet, ForEachSubsetOfEmptyIsJustEmpty) {
  int count = 0;
  ForEachSubset(0, [&](ItemSet s) {
    EXPECT_EQ(s, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ItemSet, ForEachSubsetCountIsPowerOfTwo) {
  int count = 0;
  ForEachSubset(0b11011, [&](ItemSet) { ++count; });
  EXPECT_EQ(count, 16);  // 2^4 subsets
}

TEST(ItemSet, ForEachItemAscending) {
  std::vector<ItemId> items;
  ForEachItem(0b10110, [&](ItemId i) { items.push_back(i); });
  EXPECT_EQ(items, (std::vector<ItemId>{1, 2, 4}));
}

TEST(ItemSet, ToStringRendersItems) {
  EXPECT_EQ(ItemSetToString(0), "{}");
  EXPECT_EQ(ItemSetToString(0b101), "{i0,i2}");
}

}  // namespace
}  // namespace uic
