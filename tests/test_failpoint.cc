// Unit tests for the deterministic fault-injection registry
// (common/failpoint.h). Everything here drives the registry through its
// public API — failpoint::Set / Configure / Evaluate — never by adding
// sites (lint rule UIC-L010 keeps sites inside src/). The serve-stack
// integration matrix (every site -> typed protocol error -> daemon still
// serves) lives in test_serve.cc.
#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"

namespace uic {
namespace {

/// The registry is process-global, so every test starts and ends empty —
/// a leaked policy would fail an unrelated test in a confusing place.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::ClearAll(); }
  void TearDown() override { failpoint::ClearAll(); }
};

TEST_F(FailpointTest, InactiveByDefault) {
  EXPECT_FALSE(failpoint::AnyActive());
  const failpoint::Hit hit = failpoint::Evaluate("serve.net.recv");
  EXPECT_FALSE(hit.fired());
  EXPECT_EQ(hit.action, failpoint::Action::kOff);
}

TEST_F(FailpointTest, ErrorPolicyWithSymbolicErrno) {
  ASSERT_TRUE(failpoint::Set("a", "error(EPIPE)").ok());
  EXPECT_TRUE(failpoint::AnyActive());
  const failpoint::Hit hit = failpoint::Evaluate("a");
  ASSERT_TRUE(hit.fired());
  EXPECT_EQ(hit.action, failpoint::Action::kError);
  EXPECT_EQ(hit.error_errno, EPIPE);
}

TEST_F(FailpointTest, ErrorPolicyWithDecimalErrno) {
  ASSERT_TRUE(failpoint::Set("a", "error(5)").ok());
  const failpoint::Hit hit = failpoint::Evaluate("a");
  ASSERT_TRUE(hit.fired());
  EXPECT_EQ(hit.error_errno, 5);
}

TEST_F(FailpointTest, ShortIoPolicyCarriesByteCount) {
  ASSERT_TRUE(failpoint::Set("a", "short_io(3)").ok());
  const failpoint::Hit hit = failpoint::Evaluate("a");
  ASSERT_TRUE(hit.fired());
  EXPECT_EQ(hit.action, failpoint::Action::kShortIo);
  EXPECT_EQ(hit.arg, 3u);
}

TEST_F(FailpointTest, DelayPolicyCarriesMillisAndSleepReturns) {
  ASSERT_TRUE(failpoint::Set("a", "delay_ms(1)").ok());
  const failpoint::Hit hit = failpoint::Evaluate("a");
  ASSERT_TRUE(hit.fired());
  EXPECT_EQ(hit.action, failpoint::Action::kDelayMs);
  EXPECT_EQ(hit.arg, 1u);
  failpoint::SleepFor(hit);  // must return promptly, not hang
  failpoint::SleepFor(failpoint::Hit{});  // no-op on a miss
}

TEST_F(FailpointTest, OnlyTheNamedSiteFires) {
  ASSERT_TRUE(failpoint::Set("a", "error(EIO)").ok());
  EXPECT_TRUE(failpoint::Evaluate("a").fired());
  EXPECT_FALSE(failpoint::Evaluate("b").fired());
}

TEST_F(FailpointTest, OnceFiresOnExactlyTheFirstEvaluation) {
  ASSERT_TRUE(failpoint::Set("a", "error(EIO):once").ok());
  EXPECT_TRUE(failpoint::Evaluate("a").fired());
  EXPECT_FALSE(failpoint::Evaluate("a").fired());
  EXPECT_FALSE(failpoint::Evaluate("a").fired());
  // The site stays armed (listed) even after its trigger is spent.
  EXPECT_TRUE(failpoint::AnyActive());
}

TEST_F(FailpointTest, EveryKFiresOnMultiplesOfK) {
  ASSERT_TRUE(failpoint::Set("a", "error(EIO):every(2)").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(failpoint::Evaluate("a").fired());
  const std::vector<bool> expected = {false, true, false, true, false, true};
  EXPECT_EQ(fired, expected);
}

TEST_F(FailpointTest, ReSetResetsTheEvaluationCounter) {
  ASSERT_TRUE(failpoint::Set("a", "error(EIO):once").ok());
  EXPECT_TRUE(failpoint::Evaluate("a").fired());
  EXPECT_FALSE(failpoint::Evaluate("a").fired());
  ASSERT_TRUE(failpoint::Set("a", "error(EIO):once").ok());
  EXPECT_TRUE(failpoint::Evaluate("a").fired());  // counter back to zero
}

TEST_F(FailpointTest, CounterIsDeterministicAcrossRearm) {
  // Same policy, same evaluation sequence => same firing pattern. This is
  // the whole determinism claim: triggers key off the seeded counter.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(failpoint::Set("a", "short_io(1):every(3)").ok());
    std::vector<bool> fired;
    for (int i = 0; i < 7; ++i) {
      fired.push_back(failpoint::Evaluate("a").fired());
    }
    const std::vector<bool> expected = {false, false, true, false,
                                        false, true,  false};
    EXPECT_EQ(fired, expected) << "round " << round;
  }
}

TEST_F(FailpointTest, OffPolicyDisarmsASite) {
  ASSERT_TRUE(failpoint::Set("a", "error(EIO)").ok());
  ASSERT_TRUE(failpoint::Set("a", "off").ok());
  EXPECT_FALSE(failpoint::AnyActive());
  EXPECT_FALSE(failpoint::Evaluate("a").fired());
  // Disarming a site that was never armed is fine.
  ASSERT_TRUE(failpoint::Set("never.armed", "off").ok());
}

TEST_F(FailpointTest, ConfigureArmsMultipleSitesFromOneSpec) {
  ASSERT_TRUE(
      failpoint::Configure("a=error(EPIPE),b=short_io(2),c=delay_ms(0)").ok());
  const auto armed = failpoint::List();
  ASSERT_EQ(armed.size(), 3u);  // std::map order: name-sorted
  EXPECT_EQ(armed[0], (std::pair<std::string, std::string>("a", "error(EPIPE)")));
  EXPECT_EQ(armed[1], (std::pair<std::string, std::string>("b", "short_io(2)")));
  EXPECT_EQ(armed[2], (std::pair<std::string, std::string>("c", "delay_ms(0)")));
  EXPECT_TRUE(failpoint::Evaluate("a").fired());
  EXPECT_TRUE(failpoint::Evaluate("b").fired());
}

TEST_F(FailpointTest, ClearAllDisarmsEverything) {
  ASSERT_TRUE(failpoint::Configure("a=error(EIO),b=error(EIO)").ok());
  EXPECT_TRUE(failpoint::AnyActive());
  failpoint::ClearAll();
  EXPECT_FALSE(failpoint::AnyActive());
  EXPECT_TRUE(failpoint::List().empty());
  EXPECT_FALSE(failpoint::Evaluate("a").fired());
}

TEST_F(FailpointTest, MalformedPoliciesAreRejected) {
  const char* bad[] = {
      "bogus(1)",          // unknown action
      "error()",           // empty errno
      "error(ENOSUCH)",    // unknown symbolic errno
      "error(0)",          // errno must be positive
      "short_io()",        // missing byte count
      "short_io(0)",       // zero-byte short read is not a fault
      "short_io(abc)",     // non-numeric
      "delay_ms()",        // missing millis
      "off(1)",            // off takes no argument
      "off:once",          // off takes no trigger
      "error(EIO):sometimes",  // unknown trigger
      "error(EIO):once(2)",    // once takes no argument
      "error(EIO):every(0)",   // every needs k > 0
      "error(EIO):every()",    // every needs k
      "error(EIO",         // mismatched parens
  };
  for (const char* policy : bad) {
    const Status status = failpoint::Set("a", policy);
    EXPECT_FALSE(status.ok()) << "policy accepted: " << policy;
    EXPECT_EQ(status.code(), Status::Code::kInvalidArgument) << policy;
  }
  EXPECT_FALSE(failpoint::AnyActive());
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(failpoint::Configure("noequals").ok());
  EXPECT_FALSE(failpoint::Configure("=error(EIO)").ok());
  EXPECT_FALSE(failpoint::Configure("a=error(EIO),b=bogus").ok());
  EXPECT_FALSE(failpoint::Set("", "error(EIO)").ok());
  // Empty items (stray commas) are tolerated; empty spec is a no-op.
  EXPECT_TRUE(failpoint::Configure("").ok());
  EXPECT_TRUE(failpoint::Configure(",,a=error(EIO),,").ok());
  EXPECT_EQ(failpoint::List().size(), 1u);
}

}  // namespace
}  // namespace uic
