// Tests for the observability layer (src/obs/): the exposition format is
// pinned byte-for-byte against a registry the test fully controls, the
// timing gate keeps wall-clock series out of golden-mode output,
// instruments survive concurrent writers (TSan coverage), and TraceSpan
// trees nest and serialize as documented.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "serve/json.h"

namespace uic {
namespace obs {
namespace {

// --- exposition format -------------------------------------------------

/// A registry populated with one family of each kind, values chosen so
/// every formatting branch (labels, negative gauge, cumulative buckets,
/// fractional sum) appears in the output.
void PopulateSample(MetricsRegistry* registry) {
  static const double kBounds[] = {1, 5};
  registry->RegisterCounter("app_events_total", "kind=\"a\"", "Events.")
      ->Add(3);
  registry->RegisterCounter("app_events_total", "kind=\"b\"", "Events.")
      ->Add(1);
  registry->RegisterGauge("app_depth", "", "Depth.")->Set(-2);
  Histogram* h = registry->RegisterHistogram("app_latency_ms", "", "Latency.",
                                             kBounds, 2, /*timing=*/true);
  h->Observe(0.5);
  h->Observe(1.0);  // `le` is inclusive: lands in the le="1" bucket.
  h->Observe(3.0);
  h->Observe(10.0);
  registry->RegisterCounter("app_phase_us_total", "phase=\"x\"",
                            "Wall time.", /*timing=*/true)
      ->Add(42);
}

TEST(ObsMetrics, ExpositionWithTimingOffOmitsWallClockSeries) {
  MetricsRegistry registry;
  PopulateSample(&registry);
  EXPECT_EQ(registry.ExpositionText(/*include_timing=*/false),
            "# HELP app_depth Depth.\n"
            "# TYPE app_depth gauge\n"
            "app_depth -2\n"
            "# HELP app_events_total Events.\n"
            "# TYPE app_events_total counter\n"
            "app_events_total{kind=\"a\"} 3\n"
            "app_events_total{kind=\"b\"} 1\n");
}

TEST(ObsMetrics, ExpositionWithTimingOnIsPinnedByteForByte) {
  MetricsRegistry registry;
  PopulateSample(&registry);
  EXPECT_EQ(registry.ExpositionText(/*include_timing=*/true),
            "# HELP app_depth Depth.\n"
            "# TYPE app_depth gauge\n"
            "app_depth -2\n"
            "# HELP app_events_total Events.\n"
            "# TYPE app_events_total counter\n"
            "app_events_total{kind=\"a\"} 3\n"
            "app_events_total{kind=\"b\"} 1\n"
            "# HELP app_latency_ms Latency.\n"
            "# TYPE app_latency_ms histogram\n"
            "app_latency_ms_bucket{le=\"1\"} 2\n"
            "app_latency_ms_bucket{le=\"5\"} 3\n"
            "app_latency_ms_bucket{le=\"+Inf\"} 4\n"
            "app_latency_ms_sum 14.5\n"
            "app_latency_ms_count 4\n"
            "# HELP app_phase_us_total Wall time.\n"
            "# TYPE app_phase_us_total counter\n"
            "app_phase_us_total{phase=\"x\"} 42\n");
}

TEST(ObsMetrics, ExpositionSchemaDoesNotDependOnObservedValues) {
  // Same instruments, no events: every series still present, zero-valued.
  MetricsRegistry registry;
  static const double kBounds[] = {1, 5};
  registry.RegisterCounter("app_events_total", "kind=\"a\"", "Events.");
  registry.RegisterHistogram("app_latency_ms", "", "Latency.", kBounds, 2,
                             /*timing=*/true);
  EXPECT_EQ(registry.ExpositionText(/*include_timing=*/true),
            "# HELP app_events_total Events.\n"
            "# TYPE app_events_total counter\n"
            "app_events_total{kind=\"a\"} 0\n"
            "# HELP app_latency_ms Latency.\n"
            "# TYPE app_latency_ms histogram\n"
            "app_latency_ms_bucket{le=\"1\"} 0\n"
            "app_latency_ms_bucket{le=\"5\"} 0\n"
            "app_latency_ms_bucket{le=\"+Inf\"} 0\n"
            "app_latency_ms_sum 0\n"
            "app_latency_ms_count 0\n");
}

// --- registry semantics ------------------------------------------------

TEST(ObsMetrics, RegistrationIsIdempotentOnNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("c_total", "k=\"1\"", "help");
  Counter* again = registry.RegisterCounter("c_total", "k=\"1\"", "help");
  Counter* other = registry.RegisterCounter("c_total", "k=\"2\"", "help");
  EXPECT_EQ(a, again);
  EXPECT_NE(a, other);
  Gauge* g = registry.RegisterGauge("g", "", "help");
  EXPECT_EQ(g, registry.RegisterGauge("g", "", "help"));
}

TEST(ObsMetrics, MacroRegistrationBindsTheGlobalRegistryOncePerSite) {
  // Two passes through the same site must hit the same instrument.
  uint64_t first = 0;
  for (int pass = 0; pass < 2; ++pass) {
    UIC_METRIC_COUNTER(site, "uic_test_macro_site_total",
                       "Macro registration coverage.");
    site.Add(5);
    if (pass == 0) first = site.Value();
  }
  UIC_METRIC_COUNTER(site, "uic_test_macro_site_total",
                     "Macro registration coverage.");
  EXPECT_EQ(site.Value(), first + 5);
}

TEST(ObsMetrics, HistogramBucketsAreInclusiveUpperBounds) {
  static const double kBounds[] = {10, 20, 30};
  Histogram h(kBounds, 3);
  h.Observe(10.0);  // == bound: belongs to le="10"
  h.Observe(10.5);
  h.Observe(30.0);
  h.Observe(31.0);  // overflow bucket
  EXPECT_EQ(h.BucketValue(0), 1u);
  EXPECT_EQ(h.BucketValue(1), 1u);
  EXPECT_EQ(h.BucketValue(2), 1u);
  EXPECT_EQ(h.BucketValue(3), 1u);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 81.5);
}

TEST(ObsMetrics, GaugeSetMaxOnlyRaises) {
  Gauge g;
  g.SetMax(5);
  EXPECT_EQ(g.Value(), 5);
  g.SetMax(3);
  EXPECT_EQ(g.Value(), 5);
  g.SetMax(9);
  EXPECT_EQ(g.Value(), 9);
  g.Sub(4);
  EXPECT_EQ(g.Value(), 5);
}

// --- concurrency (exercised under TSan in CI) --------------------------

TEST(ObsMetrics, InstrumentsSurviveConcurrentWriters) {
  MetricsRegistry registry;
  static const double kBounds[] = {100, 1000};
  Counter* counter = registry.RegisterCounter("hammer_total", "", "help");
  Gauge* gauge = registry.RegisterGauge("hammer_depth", "", "help");
  Histogram* histogram =
      registry.RegisterHistogram("hammer_ms", "", "help", kBounds, 2);
  constexpr size_t kEvents = 40000;
  ThreadPool pool(8);
  pool.ParallelFor(kEvents, 8, [&](unsigned, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      counter->Add(2);
      gauge->Add(1);
      histogram->Observe(static_cast<double>(i % 3));
      // Exposition races with the writers: must be safe, not a snapshot.
      if (i % 8192 == 0) (void)registry.ExpositionText(true);
    }
  });
  EXPECT_EQ(counter->Value(), 2 * kEvents);
  EXPECT_EQ(gauge->Value(), static_cast<long long>(kEvents));
  EXPECT_EQ(histogram->Count(), kEvents);
  EXPECT_EQ(histogram->BucketValue(0), kEvents);  // all values <= 100
}

TEST(ObsMetrics, ConcurrentRegistrationYieldsOneInstrumentPerIdentity) {
  MetricsRegistry registry;
  std::vector<Counter*> seen(64, nullptr);
  ThreadPool pool(8);
  pool.ParallelFor(seen.size(), 8, [&](unsigned, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      seen[i] = registry.RegisterCounter("race_total", "", "help");
      seen[i]->Add();
    }
  });
  for (Counter* c : seen) EXPECT_EQ(c, seen[0]);
  EXPECT_EQ(seen[0]->Value(), seen.size());
}

// --- trace spans -------------------------------------------------------

/// Drains the recorder after disabling it, returning the JSONL payload.
std::string RecordSession(const std::function<void()>& body) {
  TraceRecorder& recorder = TraceRecorder::Global();
  EXPECT_TRUE(recorder.EnableBuffer());
  body();
  recorder.Disable();
  return recorder.TakeBuffered();
}

TEST(ObsTrace, SpanTreesNestAndSerializeAsJsonl) {
  const std::string jsonl = RecordSession([] {
    TraceSpan root("request");
    {
      TraceSpan child("solve");
      child.SetAttr("ok", 1);
      { TraceSpan leaf("warm_acquire"); }
    }
    { TraceSpan sibling("estimate"); }
  });
  ASSERT_FALSE(jsonl.empty());
  ASSERT_EQ(jsonl.back(), '\n');
  // One root span => one line.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);

  Result<serve::Json> parsed =
      serve::Json::Parse(jsonl.substr(0, jsonl.size() - 1));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const serve::Json& root = parsed.value();
  EXPECT_EQ(root.Find("name")->AsString(), "request");
  ASSERT_NE(root.Find("dur_us"), nullptr);
  ASSERT_NE(root.Find("children"), nullptr);
  const std::vector<serve::Json>& children = root.Find("children")->items();
  ASSERT_EQ(children.size(), 2u);
  const serve::Json& solve = children[0];
  EXPECT_EQ(solve.Find("name")->AsString(), "solve");
  EXPECT_EQ(solve.Find("attrs")->Find("ok")->AsInt(), 1);
  ASSERT_EQ(solve.Find("children")->items().size(), 1u);
  EXPECT_EQ(solve.Find("children")->items()[0].Find("name")->AsString(),
            "warm_acquire");
  EXPECT_EQ(children[1].Find("name")->AsString(), "estimate");
  // Leaves carry no children key: the schema stays minimal.
  EXPECT_EQ(children[1].Find("children"), nullptr);
}

TEST(ObsTrace, EachRootSpanIsItsOwnLine) {
  const std::string jsonl = RecordSession([] {
    { TraceSpan a("first"); }
    { TraceSpan b("second"); }
  });
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find("\"name\":\"first\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"second\""), std::string::npos);
}

TEST(ObsTrace, SpansAreFreeAndSilentWhileDisabled) {
  ASSERT_FALSE(TraceRecorder::Enabled());
  {
    TraceSpan span("never_recorded");
    span.SetAttr("x", 1);
  }
  EXPECT_TRUE(TraceRecorder::Global().TakeBuffered().empty());
}

TEST(ObsTrace, OnlyOneSinkAtATime) {
  TraceRecorder& recorder = TraceRecorder::Global();
  ASSERT_TRUE(recorder.EnableBuffer());
  EXPECT_FALSE(recorder.EnableBuffer());
  EXPECT_FALSE(recorder.EnableFile("/dev/null"));
  recorder.Disable();
}

}  // namespace
}  // namespace obs
}  // namespace uic
