// Brute-force reference implementations crosschecking the optimized
// library code paths:
//   * the block-generation process of Fig. 3, transcribed literally with
//     an explicitly sorted subset sequence (vs. the numeric-order trick
//     in welfare/block_accounting.cc);
//   * the adoption rule, as a plain argmax scan (vs. the submask
//     enumeration with tie-union in UtilityTable::BestAdoption);
//   * graph statistics against hand-computable instances;
//   * allocation serialization round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "core/serialization.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "items/supermodular_generators.h"
#include "welfare/block_accounting.h"

namespace uic {
namespace {

// ---------------------------------------------------------------------------
// Literal transcription of §4.2.2.1's precedence order ≺ : compare the
// items of S and S' from the highest budget-rank index downward.
// ---------------------------------------------------------------------------
bool LiteralPrecedes(ItemSet s, ItemSet t,
                     const std::vector<uint32_t>& rank_of) {
  auto ranks_desc = [&](ItemSet set) {
    std::vector<uint32_t> r;
    ForEachItem(set, [&](ItemId i) { r.push_back(rank_of[i]); });
    std::sort(r.rbegin(), r.rend());
    return r;
  };
  const std::vector<uint32_t> a = ranks_desc(s);
  const std::vector<uint32_t> b = ranks_desc(t);
  for (size_t i = 0;; ++i) {
    if (i == a.size() && i == b.size()) return false;  // equal sets
    if (i == a.size()) return true;   // rule 1: S exhausts first
    if (i == b.size()) return false;  // rule 1: S' exhausts first
    if (a[i] != b[i]) return a[i] < b[i];  // rule 2
  }
}

/// Literal transcription of the Fig. 3 block generation loop.
std::vector<ItemSet> LiteralBlocks(const UtilityTable& table,
                                   const std::vector<uint32_t>& budgets) {
  const ItemSet opt = table.GlobalOptimum();
  if (opt == 0) return {};
  // Budget-rank order over items of I*.
  std::vector<ItemId> items;
  ForEachItem(opt, [&](ItemId i) { items.push_back(i); });
  std::stable_sort(items.begin(), items.end(),
                   [&](ItemId a, ItemId b) { return budgets[a] > budgets[b]; });
  std::vector<uint32_t> rank_of(budgets.size(), 0);
  for (uint32_t r = 0; r < items.size(); ++r) rank_of[items[r]] = r;

  // Step 2: all non-empty subsets of I*, sorted by ≺.
  std::vector<ItemSet> sequence;
  ForEachSubset(opt, [&](ItemSet s) {
    if (s != 0) sequence.push_back(s);
  });
  std::sort(sequence.begin(), sequence.end(), [&](ItemSet a, ItemSet b) {
    return LiteralPrecedes(a, b, rank_of);
  });

  // Step 3: scan, select, remove overlaps, restart.
  std::vector<ItemSet> blocks;
  ItemSet chosen = 0;
  while (chosen != opt) {
    bool found = false;
    for (ItemSet b : sequence) {
      if ((b & chosen) != 0) continue;
      if (table.Utility(chosen | b) - table.Utility(chosen) >= 0.0) {
        blocks.push_back(b);
        chosen |= b;
        found = true;
        break;
      }
    }
    if (!found) break;
  }
  return blocks;
}

class BlockCrosscheckTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockCrosscheckTest, OptimizedBlocksMatchLiteralTranscription) {
  Rng rng(GetParam());
  const ItemId k = 5;
  auto value = MakeRandomSupermodularValue(k, rng, 0.2, 2.0, 1.0);
  std::vector<double> prices(k);
  for (auto& p : prices) p = rng.NextUniform(0.5, 3.0);
  ItemParams params(value, prices, NoiseModel::Zero(k));
  std::vector<double> noise(k);
  for (auto& x : noise) x = rng.NextGaussian(0.0, 1.0);
  const UtilityTable table(params, noise);

  std::vector<uint32_t> budgets(k);
  for (auto& b : budgets) b = 1 + static_cast<uint32_t>(rng.NextBounded(40));

  const BlockDecomposition fast = GenerateBlocks(table, budgets);
  const std::vector<ItemSet> literal = LiteralBlocks(table, budgets);
  ASSERT_EQ(fast.blocks.size(), literal.size()) << "seed " << GetParam();
  for (size_t i = 0; i < literal.size(); ++i) {
    EXPECT_EQ(fast.blocks[i], literal[i])
        << "block " << i << " seed " << GetParam();
  }
}

// Brute-force adoption: scan ALL subsets and apply the tie rules directly.
TEST_P(BlockCrosscheckTest, BestAdoptionMatchesBruteForce) {
  Rng rng(GetParam() ^ 0x1234);
  const ItemId k = 5;
  auto value = MakeRandomSupermodularValue(k, rng, 0.2, 2.0, 1.0);
  std::vector<double> prices(k);
  for (auto& p : prices) p = rng.NextUniform(0.5, 3.0);
  ItemParams params(value, prices, NoiseModel::Zero(k));
  std::vector<double> noise(k);
  for (auto& x : noise) x = rng.NextGaussian(0.0, 1.0);
  const UtilityTable table(params, noise);

  const ItemSet full = FullItemSet(k);
  for (int trial = 0; trial < 30; ++trial) {
    const ItemSet desire = static_cast<ItemSet>(rng.NextBounded(full + 1));
    // A valid current adoption: the best adoption of some sub-desire.
    const ItemSet adopted =
        table.BestAdoption(0, static_cast<ItemSet>(desire & rng.NextU32()));
    if (!IsSubset(adopted, desire)) continue;

    double best_util = -1e300;
    ForEachSubset(desire & ~adopted, [&](ItemSet extra) {
      best_util = std::max(best_util, table.Utility(adopted | extra));
    });
    const ItemSet got = table.BestAdoption(adopted, desire);
    // Achieves the max utility…
    EXPECT_NEAR(table.Utility(got), best_util, 1e-9);
    // …and no strictly larger achiever exists (maximal tie-break).
    ForEachSubset(desire & ~adopted, [&](ItemSet extra) {
      const ItemSet cand = adopted | extra;
      if (std::abs(table.Utility(cand) - best_util) < 1e-9) {
        EXPECT_LE(Cardinality(cand), Cardinality(got));
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockCrosscheckTest,
                         ::testing::Range<uint64_t>(0, 20));

// ---------------------------------------------------------------------------
// Graph statistics.
// ---------------------------------------------------------------------------
TEST(GraphStats, HandComputableChain) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 0.5);
  b.AddEdge(2, 3, 0.5);
  const GraphStats s = ComputeGraphStats(b.Build().MoveValue());
  EXPECT_EQ(s.num_nodes, 4u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_EQ(s.max_in_degree, 1u);
  EXPECT_EQ(s.num_sources, 1u);
  EXPECT_EQ(s.num_sinks, 1u);
  EXPECT_EQ(s.largest_wcc, 4u);
}

TEST(GraphStats, DisconnectedComponents) {
  GraphBuilder b(5);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(3, 4, 0.5);
  const GraphStats s = ComputeGraphStats(b.Build().MoveValue());
  EXPECT_EQ(s.largest_wcc, 2u);
}

TEST(GraphStats, GiniZeroForRegularGraph) {
  // Ring: every node has in-degree 1.
  GraphBuilder b(6);
  for (NodeId v = 0; v < 6; ++v) b.AddEdge(v, (v + 1) % 6, 0.5);
  const GraphStats s = ComputeGraphStats(b.Build().MoveValue());
  EXPECT_NEAR(s.gini_in_degree, 0.0, 1e-9);
}

TEST(GraphStats, PreferentialAttachmentIsUnequal) {
  Graph g = GeneratePreferentialAttachment(2000, 4, false, 7);
  const GraphStats s = ComputeGraphStats(g);
  EXPECT_GT(s.gini_in_degree, 0.3);  // heavy-tailed
  EXPECT_EQ(s.largest_wcc, 2000u);   // PA graphs are connected
}

TEST(GraphStats, LogHistogramBucketsCorrectly) {
  GraphBuilder b(4);
  // in-degrees: 0, 1, 2, 0 -> buckets [0]:2, [1]:1, [2,3]:1.
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(0, 2, 0.5);
  b.AddEdge(1, 2, 0.5);
  const auto hist = InDegreeLogHistogram(b.Build().MoveValue());
  ASSERT_GE(hist.size(), 3u);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

// ---------------------------------------------------------------------------
// Allocation serialization.
// ---------------------------------------------------------------------------
TEST(Serialization, RoundTripsAllocation) {
  Allocation a;
  a.Add(7, 0b101);
  a.Add(42, 0b1);
  a.Add(0, 0b11111);
  const std::string path = "/tmp/uic_test_alloc.csv";
  ASSERT_TRUE(SaveAllocation(a, path).ok());
  auto loaded = LoadAllocation(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().entries(), a.entries());
}

TEST(Serialization, RejectsMalformedRows) {
  const std::string path = "/tmp/uic_test_alloc_bad.csv";
  {
    std::ofstream out(path);
    out << "7;0x5\n";
  }
  EXPECT_FALSE(LoadAllocation(path).ok());
  {
    std::ofstream out(path);
    out << "7,\n";
  }
  EXPECT_FALSE(LoadAllocation(path).ok());
}

TEST(Serialization, MissingFileIsIOError) {
  auto r = LoadAllocation("/tmp/definitely_missing_uic_alloc.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace uic
