// SweepRunner: warm-swept cells must be bit-identical to independent cold
// solves (the sweep engine's hard contract), sample strictly fewer RR sets
// than cold per-point runs, and be invariant to the worker count. Also
// covers the CLI budget-point grammar and spec validation.
#include "exp/sweep.h"

#include <gtest/gtest.h>

#include <vector>

#include "exp/configs.h"
#include "exp/suite.h"
#include "graph/generators.h"

namespace uic {
namespace {

Graph SweepGraph(uint64_t seed = 17) {
  Graph g = GenerateErdosRenyi(150, 900, seed);
  g.ApplyWeightedCascade();
  return g;
}

SweepSpec BaseSpec(const Graph& graph) {
  SweepSpec spec;
  spec.graph = &graph;
  spec.params = MakeTwoItemConfig12();
  spec.budget_points = {{1, 1}, {3, 3}, {5, 5}};
  spec.options.seed = 7;
  spec.options.workers = 4;
  spec.options.comic.cim_forward_simulations = 30;
  spec.eval_simulations = 0;  // identity checks don't need welfare
  return spec;
}

// Every RR-based solver of §6; mc-greedy and bdhs are exercised separately
// (they ignore the cache but must still run under a sweep).
const std::vector<std::string> kRrSolvers = {
    "bundle-grd", "item-disj", "bundle-disj", "rr-sim+", "rr-cim"};

TEST(SweepRunner, WarmCellsBitIdenticalToIndependentColdSolves) {
  const Graph graph = SweepGraph();
  SweepSpec spec = BaseSpec(graph);
  spec.algorithms = kRrSolvers;

  SweepRunner runner(spec);
  Result<SweepReport> report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().rows.size(),
            kRrSolvers.size() * spec.budget_points.size());

  // Cold reference: same options, NO cache — a fresh per-point run.
  for (const SweepRow& row : report.value().rows) {
    WelfareProblem problem;
    problem.graph = &graph;
    problem.params = spec.params;
    problem.budgets = row.budgets;
    const AllocationResult cold =
        MustSolve(row.algorithm, problem, spec.options);
    EXPECT_EQ(row.result.allocation.entries(), cold.allocation.entries())
        << row.algorithm << " " << row.setting;
    EXPECT_EQ(row.result.ranking, cold.ranking)
        << row.algorithm << " " << row.setting;
    EXPECT_EQ(row.num_rr_sets(), cold.num_rr_sets)
        << row.algorithm << " " << row.setting;
    EXPECT_EQ(row.objective(), cold.objective)
        << row.algorithm << " " << row.setting;
  }
}

TEST(SweepRunner, WarmAndColdModesProduceIdenticalRows) {
  const Graph graph = SweepGraph();
  SweepSpec spec = BaseSpec(graph);
  spec.algorithms = {"bundle-grd", "item-disj"};
  spec.eval_simulations = 200;  // exercise the welfare columns too

  SweepSpec cold_spec = spec;
  cold_spec.warm = false;

  SweepRunner warm(spec);
  SweepRunner cold(cold_spec);
  Result<SweepReport> wr = warm.Run();
  Result<SweepReport> cr = cold.Run();
  ASSERT_TRUE(wr.ok()) << wr.status().ToString();
  ASSERT_TRUE(cr.ok()) << cr.status().ToString();
  ASSERT_EQ(wr.value().rows.size(), cr.value().rows.size());
  for (size_t i = 0; i < wr.value().rows.size(); ++i) {
    const SweepRow& w = wr.value().rows[i];
    const SweepRow& c = cr.value().rows[i];
    EXPECT_EQ(w.result.allocation.entries(), c.result.allocation.entries())
        << w.algorithm << " " << w.setting;
    EXPECT_EQ(w.welfare, c.welfare) << w.algorithm << " " << w.setting;
    EXPECT_EQ(w.welfare_std_error, c.welfare_std_error);
    EXPECT_EQ(w.num_rr_sets(), c.num_rr_sets());
    EXPECT_EQ(w.objective(), c.objective());
  }
  EXPECT_EQ(wr.value().total_rr_sets, cr.value().total_rr_sets);
}

TEST(SweepRunner, WarmSweepSamplesFewerSetsThanColdPerPointRuns) {
  const Graph graph = SweepGraph();
  SweepSpec spec = BaseSpec(graph);
  spec.algorithms = {"bundle-grd"};
  spec.budget_points = {{2, 2}, {4, 4}, {6, 6}, {8, 8}};

  SweepSpec cold_spec = spec;
  cold_spec.warm = false;

  SweepRunner warm(spec);
  SweepRunner cold(cold_spec);
  Result<SweepReport> wr = warm.Run();
  Result<SweepReport> cr = cold.Run();
  ASSERT_TRUE(wr.ok());
  ASSERT_TRUE(cr.ok());
  // Cold samples every point from scratch; warm only ever extends shared
  // streams, so the 4-point sweep must draw strictly fewer sets total.
  EXPECT_LT(wr.value().total_rr_sampled, cr.value().total_rr_sampled);
  // Points after the first should be (almost entirely) served from the
  // pool; in particular the warm total can't reach 2 cold points' worth.
  EXPECT_LT(2 * wr.value().total_rr_sampled, cr.value().total_rr_sampled);
}

TEST(SweepRunner, RowsAreInvariantToWorkerCount) {
  const Graph graph = SweepGraph();
  SweepSpec spec = BaseSpec(graph);
  spec.algorithms = {"bundle-grd", "rr-sim+"};
  spec.eval_simulations = 100;

  SweepSpec spec4 = spec;
  spec.options.workers = 1;
  spec4.options.workers = 4;
  SweepRunner a(spec);
  SweepRunner b(spec4);
  Result<SweepReport> ra = a.Run();
  Result<SweepReport> rb = b.Run();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra.value().rows.size(), rb.value().rows.size());
  for (size_t i = 0; i < ra.value().rows.size(); ++i) {
    EXPECT_EQ(ra.value().rows[i].result.allocation.entries(),
              rb.value().rows[i].result.allocation.entries());
    EXPECT_EQ(ra.value().rows[i].welfare, rb.value().rows[i].welfare);
    EXPECT_EQ(ra.value().rows[i].num_rr_sets(),
              rb.value().rows[i].num_rr_sets());
    EXPECT_EQ(ra.value().rows[i].rr_sets_sampled,
              rb.value().rows[i].rr_sets_sampled);
  }
}

TEST(SweepRunner, NonRrSolversRunUnderASweep) {
  const Graph graph = SweepGraph();
  SweepSpec spec = BaseSpec(graph);
  spec.algorithms = {"bdhs", "mc-greedy"};
  spec.budget_points = {{1, 1}, {2, 2}};
  spec.options.mc_greedy.simulations_per_eval = 10;
  SweepRunner runner(spec);
  Result<SweepReport> report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().rows.size(), 4u);
  EXPECT_EQ(report.value().total_rr_sampled, 0u);  // nothing touches the pool
  // BDHS reports its externality objective.
  EXPECT_NE(report.value().rows[0].objective(), 0.0);
}

TEST(SweepRunner, ReportSerializesToCsvAndJson) {
  const Graph graph = SweepGraph();
  SweepSpec spec = BaseSpec(graph);
  spec.algorithms = {"bundle-grd"};
  spec.budget_points = {{2, 2}};
  SweepRunner runner(spec);
  Result<SweepReport> report = runner.Run();
  ASSERT_TRUE(report.ok());
  const std::string csv = report.value().ToCsv(/*include_timing=*/false);
  EXPECT_NE(csv.find("algorithm,budgets,"), std::string::npos);
  EXPECT_NE(csv.find("bundle-grd,2|2,"), std::string::npos);
  EXPECT_NE(csv.find(",-,"), std::string::npos);  // timing suppressed
  const std::string json = report.value().ToJson(/*include_timing=*/false);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_NE(json.find("\"seconds\": null"), std::string::npos);
  EXPECT_NE(json.find("\"total_rr_sampled\""), std::string::npos);
}

TEST(SweepRunner, InvalidSpecsFailCleanly) {
  const Graph graph = SweepGraph();
  {
    SweepSpec spec = BaseSpec(graph);
    spec.graph = nullptr;
    spec.algorithms = {"bundle-grd"};
    Result<SweepReport> r = SweepRunner(spec).Run();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  }
  {
    SweepSpec spec = BaseSpec(graph);  // no algorithms
    Result<SweepReport> r = SweepRunner(spec).Run();
    ASSERT_FALSE(r.ok());
  }
  {
    SweepSpec spec = BaseSpec(graph);
    spec.algorithms = {"no-such-solver"};
    Result<SweepReport> r = SweepRunner(spec).Run();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
  }
  {
    SweepSpec spec = BaseSpec(graph);
    spec.algorithms = {"bundle-disj"};
    spec.params.reset();  // needs params -> FailedPrecondition, cell-labeled
    Result<SweepReport> r = SweepRunner(spec).Run();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kFailedPrecondition);
    EXPECT_NE(r.status().message().find("bundle-disj"), std::string::npos);
  }
}

TEST(ParseSweepPoints, AcceptsAllThreeGrammars) {
  auto uniform = ParseSweepPoints("10,30,50", 2);
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(uniform.value(),
            (std::vector<std::vector<uint32_t>>{{10, 10}, {30, 30}, {50, 50}}));

  auto range = ParseSweepPoints("10:50:20", 3);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range.value(), (std::vector<std::vector<uint32_t>>{
                               {10, 10, 10}, {30, 30, 30}, {50, 50, 50}}));

  auto inclusive = ParseSweepPoints("5:7:2", 1);
  ASSERT_TRUE(inclusive.ok());
  EXPECT_EQ(inclusive.value(),
            (std::vector<std::vector<uint32_t>>{{5}, {7}}));

  auto explicit_points = ParseSweepPoints("70,30;70,70;70,110", 5);
  ASSERT_TRUE(explicit_points.ok());  // explicit length overrides num_items
  EXPECT_EQ(explicit_points.value(), (std::vector<std::vector<uint32_t>>{
                                         {70, 30}, {70, 70}, {70, 110}}));

  auto trailing = ParseSweepPoints("70,30;", 2);
  ASSERT_TRUE(trailing.ok());
  EXPECT_EQ(trailing.value(),
            (std::vector<std::vector<uint32_t>>{{70, 30}}));
}

TEST(ParseSweepPoints, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseSweepPoints("", 2).ok());
  EXPECT_FALSE(ParseSweepPoints("10,x,30", 2).ok());
  EXPECT_FALSE(ParseSweepPoints("10:50", 2).ok());        // missing step
  EXPECT_FALSE(ParseSweepPoints("10:50:0", 2).ok());      // zero step
  EXPECT_FALSE(ParseSweepPoints("50:10:5", 2).ok());      // lo > hi
  EXPECT_FALSE(ParseSweepPoints("0:4000000000:1", 2).ok());  // point-count cap
  EXPECT_FALSE(ParseSweepPoints("10,20;10", 2).ok());     // ragged vectors
  EXPECT_FALSE(ParseSweepPoints("99999999999", 2).ok());  // out of range
  EXPECT_FALSE(ParseSweepPoints("10,30", 0).ok());        // no items
}

}  // namespace
}  // namespace uic
