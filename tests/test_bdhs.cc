#include "bdhs/bdhs.h"

#include <gtest/gtest.h>

#include "exp/configs.h"
#include "graph/generators.h"
#include "items/supermodular_generators.h"

namespace uic {
namespace {

ItemParams SynergyPair(double u1, double u2, double u12) {
  const std::vector<double> prices = {1.0, 1.0};
  auto value = MakeValueFromUtilities(2, prices, {0.0, u1, u2, u12});
  return ItemParams(std::move(value), prices, NoiseModel::Zero(2));
}

TEST(BdhsStep, PicksTheBestBundle) {
  ItemParams params = SynergyPair(-0.5, -0.5, 2.0);
  Graph g = GenerateErdosRenyi(100, 600, 1);
  g.ApplyConstantProbability(0.2);
  const BdhsResult r = BdhsStep(g, params);
  EXPECT_EQ(r.bundle, 0b11u);
  EXPECT_GT(r.welfare, 0.0);
}

TEST(BdhsStep, ZeroWhenNoProfitableBundle) {
  ItemParams params = SynergyPair(-1.0, -1.0, -0.5);
  Graph g = GenerateErdosRenyi(100, 600, 2);
  const BdhsResult r = BdhsStep(g, params);
  EXPECT_EQ(r.bundle, 0u);
  EXPECT_DOUBLE_EQ(r.welfare, 0.0);
}

TEST(BdhsStep, ClosedFormMatchesMonteCarlo) {
  ItemParams params = SynergyPair(0.2, 0.2, 1.5);
  Graph g = GenerateErdosRenyi(200, 1200, 3);
  g.ApplyWeightedCascade();
  const BdhsResult exact = BdhsStep(g, params, /*kappa=*/0.25);
  const BdhsResult mc =
      BdhsStepMonteCarlo(g, params, 0.25, /*num_worlds=*/4000, 4);
  EXPECT_NEAR(mc.welfare, exact.welfare, 0.02 * exact.welfare + 1.0);
}

TEST(BdhsStep, KappaOneMakesExternalityIrrelevant) {
  ItemParams params = SynergyPair(0.0, 0.0, 1.0);
  Graph g = GenerateErdosRenyi(150, 900, 5);
  g.ApplyWeightedCascade();
  const BdhsResult r = BdhsStep(g, params, /*kappa=*/1.0);
  // factor = 1 everywhere: welfare = n * U(bundle).
  EXPECT_NEAR(r.welfare, 150.0 * 1.0, 1e-9);
}

TEST(BdhsStep, IsolatedNodesOnlyGetKappaShare) {
  // Graph with no edges: every node is isolated.
  GraphBuilder builder(10);
  Graph g = builder.Build().MoveValue();
  ItemParams params = SynergyPair(0.0, 0.0, 1.0);
  EXPECT_NEAR(BdhsStep(g, params, 0.0).welfare, 0.0, 1e-12);
  EXPECT_NEAR(BdhsStep(g, params, 0.5).welfare, 5.0, 1e-12);
}

TEST(BdhsConcave, FactorsDependOnTwoHopSupport) {
  // Chain 0 -> 1 -> 2: node 2's 2-hop in-support = {0, 1}, node 1's = {0},
  // node 0's = {}.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 0.5);
  builder.AddEdge(1, 2, 0.5);
  Graph g = builder.Build().MoveValue();
  ItemParams params = SynergyPair(0.0, 0.0, 1.0);
  const BdhsResult r = BdhsConcave(g, params, 0.5);
  // Welfare = 0 + (1 - 0.5^1) + (1 - 0.5^2) = 0.5 + 0.75.
  EXPECT_NEAR(r.welfare, 1.25, 1e-9);
}

TEST(BdhsConcave, HigherProbabilityGivesHigherWelfare) {
  Graph g = GenerateErdosRenyi(200, 1200, 6);
  ItemParams params = SynergyPair(0.1, 0.1, 1.2);
  const double lo = BdhsConcave(g, params, 0.01).welfare;
  const double hi = BdhsConcave(g, params, 0.2).welfare;
  EXPECT_LT(lo, hi);
}

TEST(BdhsConcave, WelfareBoundedByFullAssignment) {
  Graph g = GenerateErdosRenyi(100, 800, 7);
  ItemParams params = SynergyPair(0.0, 0.0, 2.0);
  const BdhsResult r = BdhsConcave(g, params, 0.1);
  EXPECT_LE(r.welfare, 100.0 * 2.0 + 1e-9);
  EXPECT_GE(r.welfare, 0.0);
}

TEST(Bdhs, RealParamsBenchmarkIsPositive) {
  ItemParams params = MakeRealPlaystationParams();
  Graph g = GenerateErdosRenyi(300, 2400, 8);
  g.ApplyWeightedCascade();
  const BdhsResult step = BdhsStep(g, params);
  // Best bundle is {ps, c, g1, g2, g3} with det utility +7.
  EXPECT_EQ(step.bundle, FullItemSet(5));
  EXPECT_GT(step.welfare, 0.0);
  EXPECT_LE(step.welfare, 300.0 * 7.0 + 1e-9);
}

}  // namespace
}  // namespace uic
