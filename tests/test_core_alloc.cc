#include "core/bundle_grd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/baselines.h"
#include "diffusion/uic_model.h"
#include "exp/configs.h"
#include "graph/generators.h"
#include "items/supermodular_generators.h"

namespace uic {
namespace {

Graph TestGraph(uint64_t seed, NodeId n = 400, size_t m = 2400) {
  Graph g = GenerateErdosRenyi(n, m, seed);
  g.ApplyWeightedCascade();
  return g;
}

std::set<NodeId> SeedsOfItem(const Allocation& alloc, ItemId i) {
  std::set<NodeId> out;
  for (const auto& [v, items] : alloc.entries()) {
    if (Contains(items, i)) out.insert(v);
  }
  return out;
}

TEST(Allocation, AddMergesItemSetsPerNode) {
  Allocation a;
  a.AddItem(3, 0);
  a.AddItem(3, 2);
  a.AddItem(5, 1);
  EXPECT_EQ(a.num_seed_nodes(), 2u);
  EXPECT_EQ(a.TotalPairs(), 3u);
  EXPECT_EQ(a.SeedCount(0), 1u);
  EXPECT_EQ(a.SeedCount(1), 1u);
  EXPECT_EQ(a.SeedCount(2), 1u);
}

TEST(Allocation, FromSeedSets) {
  Allocation a = Allocation::FromSeedSets({{1, 2}, {2, 3}});
  EXPECT_EQ(a.SeedCount(0), 2u);
  EXPECT_EQ(a.SeedCount(1), 2u);
  EXPECT_EQ(a.num_seed_nodes(), 3u);  // nodes 1, 2, 3
}

TEST(Allocation, ValidateBudgets) {
  Allocation a = Allocation::FromSeedSets({{1, 2, 3}, {4}});
  EXPECT_TRUE(a.ValidateBudgets({3, 1}).ok());
  EXPECT_TRUE(a.ValidateBudgets({5, 5}).ok());
  EXPECT_FALSE(a.ValidateBudgets({2, 1}).ok());
}

TEST(BundleGrd, RespectsBudgetsAndPrefixStructure) {
  Graph g = TestGraph(1);
  const std::vector<uint32_t> budgets = {15, 8, 3};
  const AllocationResult r = BundleGrd(g, budgets, 0.5, 1.0, 2);
  EXPECT_TRUE(r.allocation.ValidateBudgets(budgets).ok());
  EXPECT_EQ(r.allocation.SeedCount(0), 15u);
  EXPECT_EQ(r.allocation.SeedCount(1), 8u);
  EXPECT_EQ(r.allocation.SeedCount(2), 3u);
  // Prefix nesting: smaller-budget items' seeds nest inside larger ones.
  const auto s0 = SeedsOfItem(r.allocation, 0);
  const auto s1 = SeedsOfItem(r.allocation, 1);
  const auto s2 = SeedsOfItem(r.allocation, 2);
  EXPECT_TRUE(std::includes(s0.begin(), s0.end(), s1.begin(), s1.end()));
  EXPECT_TRUE(std::includes(s1.begin(), s1.end(), s2.begin(), s2.end()));
}

TEST(BundleGrd, UniformBudgetsBundleEverythingTogether) {
  Graph g = TestGraph(3);
  const AllocationResult r = BundleGrd(g, {10, 10, 10, 10}, 0.5, 1.0, 4);
  // Every seed node carries the full bundle.
  for (const auto& [v, items] : r.allocation.entries()) {
    EXPECT_EQ(items, FullItemSet(4));
  }
  EXPECT_EQ(r.allocation.num_seed_nodes(), 10u);
}

TEST(BundleGrd, DeterministicForFixedSeed) {
  Graph g = TestGraph(5);
  const AllocationResult a = BundleGrd(g, {12, 6}, 0.5, 1.0, 6, 4);
  const AllocationResult b = BundleGrd(g, {12, 6}, 0.5, 1.0, 6, 4);
  EXPECT_EQ(a.allocation.entries(), b.allocation.entries());
}

TEST(BundleGrd, CostGrowsOnlyLogarithmicallyWithItemCount) {
  // bundleGRD's cost depends on the max budget, not the number of items:
  // going from 2 to 8 items (same budget) only pays a log|®b| factor in
  // the sample bound (the ℓ' union bound of Lemma 9), far below the 4x a
  // per-item approach would pay.
  Graph g = TestGraph(7);
  const AllocationResult two = BundleGrd(g, {10, 10}, 0.5, 1.0, 8, 4);
  const AllocationResult eight =
      BundleGrd(g, std::vector<uint32_t>(8, 10), 0.5, 1.0, 8, 4);
  EXPECT_EQ(two.ranking.size(), eight.ranking.size());
  EXPECT_LT(static_cast<double>(eight.num_rr_sets),
            1.5 * static_cast<double>(two.num_rr_sets));
}

TEST(ItemDisjoint, SeedsAreDisjointAcrossItems) {
  Graph g = TestGraph(9);
  const std::vector<uint32_t> budgets = {10, 7, 5};
  const AllocationResult r = ItemDisjoint(g, budgets, 0.5, 1.0, 10);
  EXPECT_TRUE(r.allocation.ValidateBudgets(budgets).ok());
  // Every seed node holds exactly one item.
  for (const auto& [v, items] : r.allocation.entries()) {
    EXPECT_EQ(Cardinality(items), 1u) << "node " << v;
  }
  EXPECT_EQ(r.allocation.num_seed_nodes(), 22u);
}

TEST(ItemDisjoint, HigherBudgetItemsGetBetterSeeds) {
  Graph g = TestGraph(11);
  const std::vector<uint32_t> budgets = {3, 10};
  const AllocationResult r = ItemDisjoint(g, budgets, 0.5, 1.0, 12);
  // Item 1 (larger budget) takes the top of the ranking; its seed set must
  // contain the overall top seed.
  const auto s1 = SeedsOfItem(r.allocation, 1);
  EXPECT_TRUE(s1.count(r.ranking[0]) > 0);
}

TEST(BundleDisjoint, BundlesHaveNonNegativeDeterministicUtility) {
  Graph g = TestGraph(13);
  // i0 profitable alone; i1 and i2 only jointly profitable.
  const std::vector<double> prices = {1.0, 1.0, 1.0};
  auto value = MakeValueFromUtilities(
      3, prices,
      {0.0, 0.5, -0.3, -0.3, 0.7, 0.4, 1.0, 1.5});
  ItemParams params(std::move(value), prices, NoiseModel::Zero(3));
  const std::vector<uint32_t> budgets = {6, 6, 6};
  const AllocationResult r =
      BundleDisjoint(g, budgets, params, 0.5, 1.0, 14);
  EXPECT_TRUE(r.allocation.ValidateBudgets(budgets).ok());
  // Each seed node's allocated set must have non-negative det utility
  // (bundle-disj only ever assigns profitable bundles plus piggybacks;
  // piggybacked items join a non-negative bundle making a superset —
  // just check the primary property on singleton-bundle-free nodes).
  size_t seeded = 0;
  for (const auto& [v, items] : r.allocation.entries()) {
    seeded += Cardinality(items);
  }
  EXPECT_EQ(seeded, 18u);  // full budgets spent
}

TEST(BundleDisjoint, EquivalentBudgetUsageToItemDisjointWhenAllPositive) {
  // When every item is individually profitable, bundle-disj finds only
  // singleton bundles — allocation shape equals item-disj (one item per
  // node, budget-ordered).
  Graph g = TestGraph(15);
  ItemParams params = MakeAdditiveConfig5(3);
  const std::vector<uint32_t> budgets = {5, 5, 5};
  const AllocationResult r =
      BundleDisjoint(g, budgets, params, 0.5, 1.0, 16);
  for (const auto& [v, items] : r.allocation.entries()) {
    EXPECT_EQ(Cardinality(items), 1u);
  }
  EXPECT_EQ(r.allocation.num_seed_nodes(), 15u);
}

TEST(BundleDisjoint, AllNegativeItemsStillSpendBudgetButEarnNothing) {
  // Per §4.3.1.2, surplus budget (here: all of it, since no bundle is
  // profitable) is seeded with fresh IMM seeds anyway — and the resulting
  // welfare is 0 because rational users never adopt at a loss.
  Graph g = TestGraph(17);
  const std::vector<double> prices = {1.0, 1.0};
  auto value =
      MakeValueFromUtilities(2, prices, {0.0, -1.0, -1.0, -0.5});
  ItemParams params(std::move(value), prices, NoiseModel::Zero(2));
  const AllocationResult r =
      BundleDisjoint(g, {5, 5}, params, 0.5, 1.0, 18);
  EXPECT_EQ(r.allocation.SeedCount(0), 5u);
  EXPECT_EQ(r.allocation.SeedCount(1), 5u);
  const WelfareEstimate w =
      EstimateWelfare(g, r.allocation, params, 100, 19, 2);
  EXPECT_DOUBLE_EQ(w.welfare, 0.0);
}

TEST(BundleDisjoint, SurplusBudgetRecycledOntoOtherBundles) {
  Graph g = TestGraph(19);
  // Bundle {i0, i1} profitable; i1 has surplus budget (10 vs 4) which must
  // be recycled (onto bundles without i1 — none here — then fresh seeds).
  const std::vector<double> prices = {1.0, 1.0};
  auto value = MakeValueFromUtilities(2, prices, {0.0, -0.5, -0.5, 1.0});
  ItemParams params(std::move(value), prices, NoiseModel::Zero(2));
  const std::vector<uint32_t> budgets = {4, 10};
  const AllocationResult r =
      BundleDisjoint(g, budgets, params, 0.5, 1.0, 20);
  EXPECT_TRUE(r.allocation.ValidateBudgets(budgets).ok());
  EXPECT_EQ(r.allocation.SeedCount(0), 4u);
  EXPECT_EQ(r.allocation.SeedCount(1), 10u);
}

// Integration: on a synergy configuration, bundleGRD's welfare dominates
// item-disj by a comfortable margin (Fig. 4's headline).
TEST(CoreIntegration, BundleGrdDominatesItemDisjointUnderSynergy) {
  Graph g = GenerateErdosRenyi(800, 5600, 21);
  g.ApplyWeightedCascade();
  ItemParams params = MakeTwoItemConfig12();
  const std::vector<uint32_t> budgets = {25, 25};
  const AllocationResult grd = BundleGrd(g, budgets, 0.5, 1.0, 22);
  const AllocationResult disj = ItemDisjoint(g, budgets, 0.5, 1.0, 22);
  const double w_grd =
      EstimateWelfare(g, grd.allocation, params, 600, 23, 4).welfare;
  const double w_disj =
      EstimateWelfare(g, disj.allocation, params, 600, 23, 4).welfare;
  EXPECT_GT(w_grd, 1.2 * w_disj);
}

}  // namespace
}  // namespace uic
