#include "exp/configs.h"

#include <gtest/gtest.h>

#include "exp/networks.h"
#include "items/gap.h"
#include "items/value_function.h"

namespace uic {
namespace {

TEST(Config12, MatchesTable3) {
  ItemParams p = MakeTwoItemConfig12();
  EXPECT_EQ(p.num_items(), 2u);
  EXPECT_DOUBLE_EQ(p.ItemPrice(0), 3.0);
  EXPECT_DOUBLE_EQ(p.ItemPrice(1), 4.0);
  EXPECT_DOUBLE_EQ(p.value().Value(0b01), 3.0);
  EXPECT_DOUBLE_EQ(p.value().Value(0b10), 4.0);
  EXPECT_DOUBLE_EQ(p.value().Value(0b11), 8.0);
  EXPECT_DOUBLE_EQ(p.DeterministicUtility(0b11), 1.0);
  EXPECT_TRUE(IsSupermodular(p.value()));
  EXPECT_TRUE(IsMonotone(p.value()));
  // GAP parameters quoted in Table 3: 0.5 / 0.5 / 0.84 / 0.84.
  const TwoItemGap gap = DeriveTwoItemGap(p);
  EXPECT_NEAR(gap.q1_none, 0.5, 1e-9);
  EXPECT_NEAR(gap.q2_none, 0.5, 1e-9);
  EXPECT_NEAR(gap.q1_given2, 0.8413, 1e-3);
  EXPECT_NEAR(gap.q2_given1, 0.8413, 1e-3);
}

TEST(Config34, MatchesTable3) {
  ItemParams p = MakeTwoItemConfig34();
  EXPECT_DOUBLE_EQ(p.DeterministicUtility(0b01), 0.0);
  EXPECT_DOUBLE_EQ(p.DeterministicUtility(0b10), -1.0);
  EXPECT_DOUBLE_EQ(p.DeterministicUtility(0b11), 1.0);
  EXPECT_TRUE(IsSupermodular(p.value()));
  const TwoItemGap gap = DeriveTwoItemGap(p);
  EXPECT_NEAR(gap.q2_none, 0.16, 0.005);
  EXPECT_NEAR(gap.q1_given2, 0.98, 0.005);
  EXPECT_NEAR(gap.q2_given1, 0.84, 0.005);
}

TEST(Config5, AdditiveUnitUtilities) {
  ItemParams p = MakeAdditiveConfig5(6);
  EXPECT_EQ(p.num_items(), 6u);
  for (ItemId i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(p.DeterministicUtility(ItemBit(i)), 1.0);
  }
  EXPECT_DOUBLE_EQ(p.DeterministicUtility(FullItemSet(6)), 6.0);
  EXPECT_TRUE(IsSupermodular(p.value()));
  EXPECT_TRUE(IsSubmodular(p.value()));  // additive = modular
}

TEST(Config67, ConeShapedUtilities) {
  const ItemId core = 2;
  ItemParams p = MakeConeConfig67(5, core);
  // Supersets of the core have positive utility, others negative.
  const ItemSet full = FullItemSet(5);
  for (ItemSet s = 1; s <= full; ++s) {
    if (Contains(s, core)) {
      EXPECT_DOUBLE_EQ(p.DeterministicUtility(s),
                       5.0 + 2.0 * (Cardinality(s) - 1));
    } else {
      EXPECT_LT(p.DeterministicUtility(s), 0.0);
    }
    if (s == full) break;
  }
  EXPECT_TRUE(IsSupermodular(p.value()));
}

TEST(Config8, SupermodularForManySeeds) {
  for (uint64_t seed : {1ull, 7ull, 42ull, 99ull}) {
    ItemParams p = MakeLevelwiseConfig8(5, seed);
    EXPECT_TRUE(IsSupermodular(p.value())) << "seed " << seed;
    EXPECT_TRUE(IsMonotone(p.value())) << "seed " << seed;
  }
}

TEST(RealPlaystation, PublishedValuesAreExact) {
  ItemParams p = MakeRealPlaystationParams();
  const ItemSet ps = ItemBit(0), c = ItemBit(1), g1 = ItemBit(2),
                g2 = ItemBit(3), g3 = ItemBit(4);
  // Table 5 rows.
  EXPECT_DOUBLE_EQ(p.value().Value(ps), 213.0);
  EXPECT_DOUBLE_EQ(p.Price(ps), 260.0);
  EXPECT_DOUBLE_EQ(p.value().Value(ps | c), 220.0);
  EXPECT_DOUBLE_EQ(p.Price(ps | c), 280.0);
  EXPECT_DOUBLE_EQ(p.value().Value(ps | g1 | g2 | g3), 258.0);
  EXPECT_DOUBLE_EQ(p.Price(ps | g1 | g2 | g3), 275.0);
  EXPECT_DOUBLE_EQ(p.value().Value(ps | g1 | g2 | c), 292.5);
  EXPECT_DOUBLE_EQ(p.Price(ps | g1 | g2 | c), 290.0);
  EXPECT_DOUBLE_EQ(p.value().Value(ps | c | g1 | g2 | g3), 302.0);
  EXPECT_DOUBLE_EQ(p.Price(ps | c | g1 | g2 | g3), 295.0);
}

TEST(RealPlaystation, SignPatternMatchesPaper) {
  // "The only itemsets that have positive deterministic utility are
  // itemsets with ps, c and at least two games."
  ItemParams p = MakeRealPlaystationParams();
  const ItemSet ps = ItemBit(0), c = ItemBit(1);
  const ItemSet full = FullItemSet(5);
  for (ItemSet s = 1; s <= full; ++s) {
    const bool has_ps = IsSubset(ps, s);
    const bool has_c = IsSubset(c, s);
    const uint32_t games = Cardinality(s & ~(ps | c));
    const bool should_be_positive = has_ps && has_c && games >= 2;
    if (should_be_positive) {
      EXPECT_GT(p.DeterministicUtility(s), 0.0) << ItemSetToString(s);
    } else {
      EXPECT_LT(p.DeterministicUtility(s), 0.0) << ItemSetToString(s);
    }
    if (s == full) break;
  }
}

TEST(RealPlaystation, ValueIsMonotoneAndGamesAreSymmetric) {
  ItemParams p = MakeRealPlaystationParams();
  EXPECT_TRUE(IsMonotone(p.value()));
  // Any two itemsets with the same (ps, c, #games) signature have the same
  // value (the paper treats the three games as interchangeable).
  EXPECT_DOUBLE_EQ(p.value().Value(ItemBit(0) | ItemBit(2)),
                   p.value().Value(ItemBit(0) | ItemBit(4)));
  EXPECT_DOUBLE_EQ(
      p.value().Value(ItemBit(0) | ItemBit(1) | ItemBit(2) | ItemBit(3)),
      p.value().Value(ItemBit(0) | ItemBit(1) | ItemBit(3) | ItemBit(4)));
}

TEST(RealPlaystation, ComplementarityMarginalsThePaperCites) {
  // The paper's supermodularity evidence: the controller's marginal value
  // grows from +7 (given ps alone) to +44 (given ps and all games).
  ItemParams p = MakeRealPlaystationParams();
  const ItemSet ps = ItemBit(0), c = ItemBit(1);
  const ItemSet games = ItemBit(2) | ItemBit(3) | ItemBit(4);
  const double m_c_given_ps = p.value().Value(ps | c) - p.value().Value(ps);
  const double m_c_given_all =
      p.value().Value(ps | games | c) - p.value().Value(ps | games);
  EXPECT_DOUBLE_EQ(m_c_given_ps, 7.0);
  EXPECT_DOUBLE_EQ(m_c_given_all, 44.0);
  EXPECT_GT(m_c_given_all, m_c_given_ps);
}

TEST(RealPlaystation, ItemNames) {
  const auto& names = RealPlaystationItemNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "ps");
  EXPECT_EQ(names[1], "c");
}

TEST(Networks, StandInsMatchPaperScale) {
  const Graph flixster = MakeFlixsterLike(1);
  EXPECT_EQ(flixster.num_nodes(), 7600u);
  EXPECT_NEAR(flixster.AverageDegree(), 9.4, 1.5);

  const Graph book = MakeDoubanBookLike(2);
  EXPECT_EQ(book.num_nodes(), 23300u);
  EXPECT_NEAR(book.AverageDegree(), 6.5, 1.5);

  const Graph movie = MakeDoubanMovieLike(3);
  EXPECT_EQ(movie.num_nodes(), 34900u);
  EXPECT_NEAR(movie.AverageDegree(), 7.9, 1.5);
}

TEST(Networks, ScaleParameterShrinksGraphs) {
  const Graph small = MakeTwitterLike(4, 0.1);
  EXPECT_EQ(small.num_nodes(), 4000u);
  const Graph tiny = MakeOrkutLike(5, 0.01);
  EXPECT_EQ(tiny.num_nodes(), 300u);
}

TEST(Networks, WeightedCascadeApplied) {
  const Graph g = MakeDoubanBookLike(6, 0.2);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const uint32_t din = g.InDegree(v);
    for (float p : g.InProbs(v)) {
      EXPECT_FLOAT_EQ(p, 1.0f / static_cast<float>(din));
    }
  }
}

TEST(Networks, DescribeAllCoversFiveNetworks) {
  const auto infos = DescribeAllNetworks(7, 0.05);
  ASSERT_EQ(infos.size(), 5u);
  EXPECT_EQ(infos[0].name, "Flixster");
  EXPECT_EQ(infos[4].name, "Orkut");
  for (const auto& info : infos) {
    EXPECT_GT(info.built_nodes, 0u);
    EXPECT_GT(info.built_edges, 0u);
  }
}

}  // namespace
}  // namespace uic
