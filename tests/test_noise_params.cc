#include <gtest/gtest.h>

#include <cmath>

#include "items/gap.h"
#include "items/noise.h"
#include "items/params.h"
#include "items/supermodular_generators.h"

namespace uic {
namespace {

TEST(ItemNoise, ZeroIsDeterministic) {
  Rng rng(1);
  const ItemNoise n = ItemNoise::Zero();
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(n.Sample(rng), 0.0);
}

TEST(ItemNoise, GaussianHasRequestedMoments) {
  Rng rng(2);
  const ItemNoise n = ItemNoise::Gaussian(2.0);
  double sum = 0, sum_sq = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const double x = n.Sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / trials, 4.0, 0.1);
}

TEST(ItemNoise, UniformIsBounded) {
  Rng rng(3);
  const ItemNoise n = ItemNoise::Uniform(1.5);
  for (int i = 0; i < 1000; ++i) {
    const double x = n.Sample(rng);
    EXPECT_GE(x, -1.5);
    EXPECT_LE(x, 1.5);
  }
}

TEST(ItemNoise, GaussianTailProbability) {
  const ItemNoise n = ItemNoise::Gaussian(1.0);
  EXPECT_NEAR(n.TailProbability(0.0), 0.5, 1e-12);
  EXPECT_NEAR(n.TailProbability(1.0), 0.15866, 1e-4);
  EXPECT_NEAR(n.TailProbability(-1.0), 0.84134, 1e-4);
  EXPECT_NEAR(n.TailProbability(-2.0), 0.97725, 1e-4);
}

TEST(ItemNoise, ZeroTailIsStep) {
  const ItemNoise n = ItemNoise::Zero();
  EXPECT_DOUBLE_EQ(n.TailProbability(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(n.TailProbability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(n.TailProbability(0.5), 0.0);
}

TEST(ItemNoise, UniformTailIsLinear) {
  const ItemNoise n = ItemNoise::Uniform(2.0);
  EXPECT_DOUBLE_EQ(n.TailProbability(-3.0), 1.0);
  EXPECT_DOUBLE_EQ(n.TailProbability(3.0), 0.0);
  EXPECT_DOUBLE_EQ(n.TailProbability(0.0), 0.5);
  EXPECT_DOUBLE_EQ(n.TailProbability(1.0), 0.25);
}

TEST(NoiseModel, SamplesPerItem) {
  NoiseModel model({ItemNoise::Zero(), ItemNoise::Gaussian(1.0)});
  Rng rng(4);
  const auto w = model.Sample(rng);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
}

TEST(ItemParams, PriceIsAdditive) {
  auto value = MakeValueFromUtilities(3, {1.0, 2.0, 4.0},
                                      std::vector<double>(8, 0.0));
  ItemParams params(value, {1.0, 2.0, 4.0}, NoiseModel::Zero(3));
  EXPECT_DOUBLE_EQ(params.Price(0b111), 7.0);
  EXPECT_DOUBLE_EQ(params.Price(0b101), 5.0);
  EXPECT_DOUBLE_EQ(params.Price(0), 0.0);
}

TEST(ItemParams, DeterministicUtilityIsValueMinusPrice) {
  auto value = std::make_shared<TabularValueFunction>(
      2, std::vector<double>{0.0, 3.0, 4.0, 9.0});
  ItemParams params(value, {2.0, 3.0}, NoiseModel::Zero(2));
  EXPECT_DOUBLE_EQ(params.DeterministicUtility(0b01), 1.0);
  EXPECT_DOUBLE_EQ(params.DeterministicUtility(0b10), 1.0);
  EXPECT_DOUBLE_EQ(params.DeterministicUtility(0b11), 4.0);
}

// Eq. (12): the paper's Configuration 3 quotes q_{i1|∅}=0.5,
// q_{i2|∅}=0.16, q_{i1|i2}=0.98, q_{i2|i1}=0.84.
TEST(Gap, MatchesPaperConfiguration3) {
  const std::vector<double> prices = {3.0, 4.0};
  // V(i1)=3, V(i2)=3, V({i1,i2})=8.
  auto value = std::make_shared<TabularValueFunction>(
      2, std::vector<double>{0.0, 3.0, 3.0, 8.0});
  ItemParams params(value, prices, NoiseModel::IidGaussian(2, 1.0));
  const TwoItemGap gap = DeriveTwoItemGap(params);
  EXPECT_NEAR(gap.q1_none, 0.5, 1e-6);
  EXPECT_NEAR(gap.q2_none, 0.1587, 1e-3);
  EXPECT_NEAR(gap.q1_given2, 0.9772, 1e-3);
  EXPECT_NEAR(gap.q2_given1, 0.8413, 1e-3);
}

// Eq. (12): Configuration 1 quotes q_{i|∅}=0.5 and q_{i|j}=0.84.
TEST(Gap, MatchesPaperConfiguration1) {
  const std::vector<double> prices = {3.0, 4.0};
  auto value = std::make_shared<TabularValueFunction>(
      2, std::vector<double>{0.0, 3.0, 4.0, 8.0});
  ItemParams params(value, prices, NoiseModel::IidGaussian(2, 1.0));
  const TwoItemGap gap = DeriveTwoItemGap(params);
  EXPECT_NEAR(gap.q1_none, 0.5, 1e-6);
  EXPECT_NEAR(gap.q2_none, 0.5, 1e-6);
  EXPECT_NEAR(gap.q1_given2, 0.8413, 1e-3);
  EXPECT_NEAR(gap.q2_given1, 0.8413, 1e-3);
}

TEST(Gap, ComplementarityNeverLowersAdoptionProbability) {
  // For supermodular V, q_{i|A} is non-decreasing in A.
  Rng rng(5);
  auto value = MakeRandomSupermodularValue(3, rng);
  ItemParams params(value, {1.0, 1.5, 2.0}, NoiseModel::IidGaussian(3, 1.0));
  for (ItemId i = 0; i < 3; ++i) {
    const ItemSet others = FullItemSet(3) & ~ItemBit(i);
    ForEachSubset(others, [&](ItemSet a) {
      ForEachSubset(a, [&](ItemSet b) {
        if (b == a) return;
        EXPECT_GE(GapProbability(params, i, a) + 1e-12,
                  GapProbability(params, i, b));
      });
    });
  }
}

}  // namespace
}  // namespace uic
