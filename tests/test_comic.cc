#include "comic/comic_model.h"

#include <gtest/gtest.h>

#include "comic/rr_sim.h"
#include "exp/configs.h"
#include "graph/generators.h"
#include "items/gap.h"

namespace uic {
namespace {

TwoItemGap SymmetricGap(double q0, double q1) {
  return TwoItemGap{q0, q0, q1, q1};
}

TEST(ComIcSimulator, SingleSeedAdoptsWithMarginalProbability) {
  // Isolated node seeded with item A: adoption probability must be
  // q_{A|∅} in expectation.
  GraphBuilder builder(1);
  Graph g = builder.Build().MoveValue();
  ComIcSimulator sim(g, SymmetricGap(0.3, 0.9));
  Rng rng(1);
  int adopted = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    adopted += static_cast<int>(sim.Run({0}, {}, rng).adopted_a);
  }
  EXPECT_NEAR(static_cast<double>(adopted) / trials, 0.3, 0.01);
}

TEST(ComIcSimulator, ComplementarityBoostsJointAdoption) {
  // Node seeded with both items: B adopted first boosts A to q_{A|B}
  // (reconsideration makes the end-to-end probability q-consistent).
  GraphBuilder builder(1);
  Graph g = builder.Build().MoveValue();
  const double q0 = 0.2, q1 = 0.9;
  ComIcSimulator sim(g, SymmetricGap(q0, q1));
  Rng rng(2);
  int a_adopted = 0;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    a_adopted += static_cast<int>(sim.Run({0}, {0}, rng).adopted_a);
  }
  const double rate = static_cast<double>(a_adopted) / trials;
  // A's adoption: with prob q0 adopt directly; otherwise, if B adopted
  // (considering B's own boost), reconsider. Rate must be strictly
  // between q0 and q1 and well above q0.
  EXPECT_GT(rate, q0 + 0.1);
  EXPECT_LT(rate, q1 + 0.01);
}

TEST(ComIcSimulator, PropagatesThroughAdopters) {
  // Chain with certain edges and certain adoption: everything adopts.
  Graph g = [&] {
    GraphBuilder builder(4);
    for (NodeId v = 0; v + 1 < 4; ++v) builder.AddEdge(v, v + 1, 1.0);
    return builder.Build().MoveValue();
  }();
  ComIcSimulator sim(g, SymmetricGap(1.0, 1.0));
  Rng rng(3);
  const ComIcOutcome out = sim.Run({0}, {}, rng);
  EXPECT_EQ(out.adopted_a, 4u);
  EXPECT_EQ(out.adopted_b, 0u);
}

TEST(ComIcSimulator, NonAdoptersBlockPropagation) {
  // Middle node never adopts (q=0 for a non-seed informed by neighbor):
  // chain 0 -> 1 -> 2 where node adoption prob is 0 → only seed adopts...
  // with q_{A|∅}=0 even the seed declines.
  Graph g = [&] {
    GraphBuilder builder(3);
    builder.AddEdge(0, 1, 1.0);
    builder.AddEdge(1, 2, 1.0);
    return builder.Build().MoveValue();
  }();
  ComIcSimulator sim(g, SymmetricGap(0.0, 0.0));
  Rng rng(4);
  const ComIcOutcome out = sim.Run({0}, {}, rng);
  EXPECT_EQ(out.adopted_a, 0u);
}

TEST(ComIcSimulator, CountsBAdoptionsPerNode) {
  Graph g = [&] {
    GraphBuilder builder(3);
    builder.AddEdge(0, 1, 1.0);
    builder.AddEdge(1, 2, 1.0);
    return builder.Build().MoveValue();
  }();
  ComIcSimulator sim(g, SymmetricGap(1.0, 1.0));
  Rng rng(5);
  std::vector<uint32_t> counts(3, 0);
  sim.Run({}, {0}, rng, &counts);
  EXPECT_EQ(counts, (std::vector<uint32_t>{1, 1, 1}));
}

TEST(ComIcSimulator, AgreesWithUicOnSingleNodeMarginal) {
  // Eq. (12) consistency: a single isolated node seeded with item i1 under
  // UIC adopts with probability q_{i1|∅} derived from the same Param.
  ItemParams params = MakeTwoItemConfig34();
  const TwoItemGap gap = DeriveTwoItemGap(params);
  GraphBuilder builder(1);
  Graph g = builder.Build().MoveValue();
  ComIcSimulator sim(g, gap);
  Rng rng(6);
  int adopted = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    adopted += static_cast<int>(sim.Run({0}, {}, rng).adopted_a);
  }
  EXPECT_NEAR(static_cast<double>(adopted) / trials, gap.q1_none, 0.01);
}

TEST(RrSimPlus, RespectsBudgetsAndItems) {
  Graph g = GenerateErdosRenyi(300, 1800, 7);
  g.ApplyWeightedCascade();
  const TwoItemGap gap = SymmetricGap(0.5, 0.84);
  ComIcBaselineOptions options;
  const AllocationResult r = RrSimPlus(g, gap, 12, 8, options, 8);
  EXPECT_EQ(r.allocation.SeedCount(0), 12u);
  EXPECT_EQ(r.allocation.SeedCount(1), 8u);
  EXPECT_GT(r.num_rr_sets, 0u);
}

TEST(RrCim, RespectsBudgetsAndItems) {
  Graph g = GenerateErdosRenyi(300, 1800, 9);
  g.ApplyWeightedCascade();
  const TwoItemGap gap = SymmetricGap(0.5, 0.84);
  ComIcBaselineOptions options;
  options.cim_forward_simulations = 50;
  const AllocationResult r = RrCim(g, gap, 10, 10, options, 10);
  EXPECT_EQ(r.allocation.SeedCount(0), 10u);
  EXPECT_EQ(r.allocation.SeedCount(1), 10u);
}

TEST(ComIcBaselines, GenerateMoreRrSetsThanImmBased) {
  // The TIM-style bound is looser than IMM's: RR-SIM+ must generate more
  // RR sets than IMM at the same budget (the Fig. 6 memory gap).
  Graph g = GenerateErdosRenyi(400, 2400, 11);
  g.ApplyWeightedCascade();
  const TwoItemGap gap = SymmetricGap(0.5, 0.84);
  ComIcBaselineOptions options;
  const AllocationResult sim_plus = RrSimPlus(g, gap, 10, 10, options, 12);
  const ImResult imm = Imm(g, 10, 0.5, 1.0, 12);
  EXPECT_GT(sim_plus.num_rr_sets, imm.num_rr_sets);
}

TEST(RrCim, SlowerThanRrSimPlusDueToForwardSimulation) {
  Graph g = GenerateErdosRenyi(500, 3000, 13);
  g.ApplyWeightedCascade();
  const TwoItemGap gap = SymmetricGap(0.5, 0.84);
  ComIcBaselineOptions options;
  options.cim_forward_simulations = 400;
  const AllocationResult cim = RrCim(g, gap, 10, 10, options, 14, 2);
  const AllocationResult sim_plus = RrSimPlus(g, gap, 10, 10, options, 14, 2);
  EXPECT_GT(cim.seconds, sim_plus.seconds * 0.8);
}

}  // namespace
}  // namespace uic
