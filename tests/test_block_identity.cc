// Exhaustive possible-world validation of the block-accounting analysis:
//
//  * Lemma 5:  ρ_{W^N}(𝒮Grd) = Σ_i σ(S^GrdE_{B_i}) · Δ_i   (exactly)
//  * Lemma 7:  ρ_{W^N}(𝒮)   <= Σ_i σ(S_{a_i}) · Δ_i        (any 𝒮)
//
// Both are checked *exactly* on tiny graphs by enumerating all 2^m edge
// worlds (each with probability Π p / Π (1−p)) and running the
// deterministic UIC adoption process in every world.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "diffusion/uic_model.h"
#include "graph/graph.h"
#include "items/supermodular_generators.h"
#include "welfare/block_accounting.h"

namespace uic {
namespace {

struct EdgeSpec {
  NodeId from, to;
  double prob;
};

/// Build the deterministic live-edge graph for world mask `world`.
Graph LiveGraph(NodeId n, const std::vector<EdgeSpec>& edges, uint32_t world) {
  GraphBuilder builder(n);
  for (size_t e = 0; e < edges.size(); ++e) {
    if ((world >> e) & 1u) builder.AddEdge(edges[e].from, edges[e].to, 1.0);
  }
  return builder.Build().MoveValue();
}

double WorldProbability(const std::vector<EdgeSpec>& edges, uint32_t world) {
  double p = 1.0;
  for (size_t e = 0; e < edges.size(); ++e) {
    p *= ((world >> e) & 1u) ? edges[e].prob : 1.0 - edges[e].prob;
  }
  return p;
}

/// Exact expected welfare under a fixed noise world (utility table) by
/// enumeration of all edge worlds.
double ExactWelfare(NodeId n, const std::vector<EdgeSpec>& edges,
                    const Allocation& alloc, const UtilityTable& table) {
  double total = 0.0;
  Rng rng(0);  // edges are certain in the live graph; rng is unused entropy
  for (uint32_t world = 0; world < (1u << edges.size()); ++world) {
    Graph g = LiveGraph(n, edges, world);
    UicSimulator sim(g);
    total += WorldProbability(edges, world) *
             sim.Run(alloc, table, rng).welfare;
  }
  return total;
}

/// Exact IC spread of a seed set by enumeration of all edge worlds.
double ExactSpread(NodeId n, const std::vector<EdgeSpec>& edges,
                   const std::vector<NodeId>& seeds) {
  double total = 0.0;
  for (uint32_t world = 0; world < (1u << edges.size()); ++world) {
    Graph g = LiveGraph(n, edges, world);
    // BFS from seeds.
    std::vector<bool> seen(n, false);
    std::vector<NodeId> stack;
    size_t count = 0;
    for (NodeId s : seeds) {
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
        ++count;
      }
    }
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : g.OutNeighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
          ++count;
        }
      }
    }
    total += WorldProbability(edges, world) * static_cast<double>(count);
  }
  return total;
}

class BlockIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockIdentityTest, Lemma5GreedyWelfareEqualsBlockAccounting) {
  Rng rng(GetParam());
  const NodeId n = 7;
  // Random sparse graph with <= 11 edges.
  std::vector<EdgeSpec> edges;
  for (NodeId u = 0; u < n && edges.size() < 11; ++u) {
    for (int t = 0; t < 2; ++t) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (v == u) continue;
      edges.push_back({u, v, rng.NextUniform(0.2, 0.9)});
      if (edges.size() >= 11) break;
    }
  }

  // Random supermodular utilities under a fixed (zero) noise world.
  const ItemId k = 3;
  auto value = MakeRandomSupermodularValue(k, rng, 0.2, 2.0, 1.0);
  std::vector<double> prices(k);
  for (auto& p : prices) p = rng.NextUniform(0.5, 2.5);
  ItemParams params(value, prices, NoiseModel::Zero(k));
  const UtilityTable table(params);

  std::vector<uint32_t> budgets(k);
  for (auto& b : budgets) b = 1 + static_cast<uint32_t>(rng.NextBounded(4));

  // A fixed ranking (any ordering works — Lemma 5 needs only the greedy
  // prefix structure, not seed quality).
  std::vector<NodeId> ranking = {0, 1, 2, 3, 4, 5, 6};

  // Greedy allocation: item i -> top b_i of the ranking.
  Allocation grd;
  for (ItemId i = 0; i < k; ++i) {
    for (uint32_t r = 0; r < budgets[i] && r < n; ++r) {
      grd.AddItem(ranking[r], i);
    }
  }

  const double rho = ExactWelfare(n, edges, grd, table);

  // Block accounting side.
  const BlockDecomposition d = GenerateBlocks(table, budgets);
  double accounted = 0.0;
  for (size_t i = 0; i < d.num_blocks(); ++i) {
    const uint32_t ei = std::min<uint32_t>(d.effective_budgets[i], n);
    const std::vector<NodeId> effective(ranking.begin(),
                                        ranking.begin() + ei);
    accounted += ExactSpread(n, edges, effective) * d.deltas[i];
  }
  EXPECT_NEAR(rho, accounted, 1e-9)
      << "seed " << GetParam() << ", blocks=" << d.num_blocks();
}

TEST_P(BlockIdentityTest, Lemma7ArbitraryAllocationIsUpperBounded) {
  Rng rng(GetParam() ^ 0xfeed);
  const NodeId n = 6;
  std::vector<EdgeSpec> edges;
  for (NodeId u = 0; u < n && edges.size() < 10; ++u) {
    for (int t = 0; t < 2; ++t) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (v == u) continue;
      edges.push_back({u, v, rng.NextUniform(0.2, 0.9)});
      if (edges.size() >= 10) break;
    }
  }

  const ItemId k = 3;
  auto value = MakeRandomSupermodularValue(k, rng, 0.2, 2.0, 1.0);
  std::vector<double> prices(k);
  for (auto& p : prices) p = rng.NextUniform(0.5, 2.5);
  ItemParams params(value, prices, NoiseModel::Zero(k));
  const UtilityTable table(params);

  std::vector<uint32_t> budgets(k);
  for (auto& b : budgets) b = 1 + static_cast<uint32_t>(rng.NextBounded(3));

  const BlockDecomposition d = GenerateBlocks(table, budgets);
  if (d.num_blocks() == 0) return;  // nothing profitable: ρ = 0 trivially

  // Random allocation respecting the budgets.
  Allocation alloc;
  std::vector<std::vector<NodeId>> seeds_of_item(k);
  for (ItemId i = 0; i < k; ++i) {
    for (uint32_t c = 0; c < budgets[i]; ++c) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      bool fresh = true;
      for (NodeId w : seeds_of_item[i]) fresh &= (w != v);
      if (fresh) {
        seeds_of_item[i].push_back(v);
        alloc.AddItem(v, i);
      }
    }
  }

  const double rho = ExactWelfare(n, edges, alloc, table);
  double bound = 0.0;
  for (size_t i = 0; i < d.num_blocks(); ++i) {
    bound += ExactSpread(n, edges, seeds_of_item[d.anchor_items[i]]) *
             d.deltas[i];
  }
  EXPECT_LE(rho, bound + 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockIdentityTest,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace uic
