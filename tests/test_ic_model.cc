#include "diffusion/ic_model.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace uic {
namespace {

Graph Chain(int n, double p) {
  GraphBuilder builder(n);
  for (int i = 0; i + 1 < n; ++i) {
    builder.AddEdge(i, i + 1, p);
  }
  return builder.Build().MoveValue();
}

TEST(IcSimulator, CertainEdgesActivateEverythingReachable) {
  Graph g = Chain(6, 1.0);
  IcSimulator sim(g);
  Rng rng(1);
  EXPECT_EQ(sim.RunOnce({0}, rng), 6u);
  EXPECT_EQ(sim.RunOnce({3}, rng), 3u);  // 3,4,5
}

TEST(IcSimulator, BlockedEdgesActivateOnlySeeds) {
  Graph g = Chain(6, 0.0);
  IcSimulator sim(g);
  Rng rng(2);
  EXPECT_EQ(sim.RunOnce({0, 2}, rng), 2u);
}

TEST(IcSimulator, DuplicateSeedsCountOnce) {
  Graph g = Chain(4, 0.0);
  IcSimulator sim(g);
  Rng rng(3);
  EXPECT_EQ(sim.RunOnce({1, 1, 1}, rng), 1u);
}

TEST(IcSimulator, CollectsActivatedNodes) {
  Graph g = Chain(4, 1.0);
  IcSimulator sim(g);
  Rng rng(4);
  std::vector<NodeId> activated;
  sim.RunOnce({1}, rng, &activated);
  EXPECT_EQ(activated.size(), 3u);  // 1, 2, 3
}

TEST(EstimateSpread, MatchesClosedFormOnTwoNodeGraph) {
  // Single edge with p = 0.3: σ({0}) = 1 + 0.3.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.3);
  Graph g = builder.Build().MoveValue();
  const double spread = EstimateSpread(g, {0}, 200000, 42, 4);
  EXPECT_NEAR(spread, 1.3, 0.01);
}

TEST(EstimateSpread, MatchesClosedFormOnFork) {
  // 0 -> 1 (0.5), 0 -> 2 (0.5): σ({0}) = 1 + 0.5 + 0.5 = 2.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 0.5);
  builder.AddEdge(0, 2, 0.5);
  Graph g = builder.Build().MoveValue();
  const double spread = EstimateSpread(g, {0}, 200000, 43, 4);
  EXPECT_NEAR(spread, 2.0, 0.02);
}

TEST(EstimateSpread, TwoHopPathCompounds) {
  // 0 ->(0.5) 1 ->(0.5) 2: σ({0}) = 1 + 0.5 + 0.25.
  Graph g = Chain(3, 0.5);
  const double spread = EstimateSpread(g, {0}, 200000, 44, 4);
  EXPECT_NEAR(spread, 1.75, 0.02);
}

TEST(EstimateSpread, DeterministicForFixedSeedAndWorkers) {
  Graph g = GenerateErdosRenyi(200, 1000, 9);
  g.ApplyWeightedCascade();
  const double a = EstimateSpread(g, {1, 2, 3}, 5000, 7, 4);
  const double b = EstimateSpread(g, {1, 2, 3}, 5000, 7, 4);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(EstimateSpread, MonotoneInSeeds) {
  Graph g = GenerateErdosRenyi(300, 2400, 10);
  g.ApplyWeightedCascade();
  const double s1 = EstimateSpread(g, {1}, 20000, 11, 4);
  const double s2 = EstimateSpread(g, {1, 2, 3, 4}, 20000, 11, 4);
  EXPECT_LE(s1, s2 + 0.05);
}

}  // namespace
}  // namespace uic
