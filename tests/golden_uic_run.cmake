# Golden end-to-end regression over the uic_run binary (ISSUE 4).
#
# Drives the real CLI on pinned tiny networks and compares the reports
# byte-for-byte with tests/golden/ (all invocations use --no-timing, the
# only nondeterministic column), then checks the error paths exit nonzero.
# Everything the reports contain — generator topology, RR pools, seed
# selection, welfare estimation — is deterministic in the flags alone
# (pool content depends on the seed only; see rr_collection.h), so an
# exact match is the right bar.
#
# Usage:
#   cmake -DUIC_RUN=<binary> -DGOLDEN_DIR=<dir> -DWORK_DIR=<dir>
#         -P golden_uic_run.cmake

if(NOT UIC_RUN OR NOT GOLDEN_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR "golden_uic_run.cmake needs -DUIC_RUN, -DGOLDEN_DIR and -DWORK_DIR")
endif()

function(run_and_compare name golden)
  execute_process(
    COMMAND ${UIC_RUN} ${ARGN}
    OUTPUT_VARIABLE got
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${name}: uic_run exited with ${rc}\nstderr:\n${err}")
  endif()
  file(READ ${GOLDEN_DIR}/${golden} want)
  if(NOT got STREQUAL want)
    message(FATAL_ERROR "${name}: report differs from ${golden}\n"
                        "--- got ---\n${got}\n--- want ---\n${want}")
  endif()
  message(STATUS "${name}: exact match against ${golden}")
endfunction()

function(expect_nonzero_exit name)
  execute_process(
    COMMAND ${UIC_RUN} ${ARGN}
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc)
  if(rc EQUAL 0)
    message(FATAL_ERROR "${name}: expected a nonzero exit, got success")
  endif()
  message(STATUS "${name}: failed as expected (${rc})")
endfunction()

# --- golden report matches --------------------------------------------

run_and_compare(bundle_grd_report uic_run_bundle_grd.txt
  --algorithm bundle-grd --network er --nodes 200 --edges 1200 --net-seed 5
  --budget 3 --mc 200 --eval-seed 9 --seed 4 --workers 2 --no-timing)

# Worker-count invariance (the golden above was pinned at --workers 2):
# the identical report at 1 and 8 workers proves the seed-only determinism
# contract holds across the thread-pool fan-out.
run_and_compare(bundle_grd_report_workers_1 uic_run_bundle_grd.txt
  --algorithm bundle-grd --network er --nodes 200 --edges 1200 --net-seed 5
  --budget 3 --mc 200 --eval-seed 9 --seed 4 --workers 1 --no-timing)
run_and_compare(bundle_grd_report_workers_8 uic_run_bundle_grd.txt
  --algorithm bundle-grd --network er --nodes 200 --edges 1200 --net-seed 5
  --budget 3 --mc 200 --eval-seed 9 --seed 4 --workers 8 --no-timing)

run_and_compare(bdhs_report uic_run_bdhs.txt
  --algorithm bdhs --network er --nodes 150 --edges 900 --net-seed 5
  --budget 2 --mc 100 --eval-seed 9 --seed 4 --workers 2 --no-timing)

# Sweep mode: the CSV report (warm reuse across three budget points, two
# algorithms) must match byte-for-byte too.
execute_process(
  COMMAND ${UIC_RUN} --sweep 2:6:2 --algorithms bundle-grd,bdhs
          --network er --nodes 200 --edges 1200 --net-seed 5
          --mc 200 --eval-seed 9 --seed 4 --workers 2 --no-timing
          --report-csv ${WORK_DIR}/sweep_report.csv
  OUTPUT_QUIET ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sweep_report: uic_run exited with ${rc}\n${err}")
endif()
file(READ ${WORK_DIR}/sweep_report.csv got)
file(READ ${GOLDEN_DIR}/uic_run_sweep.csv want)
if(NOT got STREQUAL want)
  message(FATAL_ERROR "sweep_report: CSV differs from golden\n"
                      "--- got ---\n${got}\n--- want ---\n${want}")
endif()
message(STATUS "sweep_report: exact match against uic_run_sweep.csv")

# --- error paths exit nonzero -----------------------------------------

expect_nonzero_exit(unknown_algorithm
  --algorithm no-such-algorithm --network er --nodes 50 --edges 200)
expect_nonzero_exit(unknown_network
  --algorithm bundle-grd --network mars)
expect_nonzero_exit(malformed_numeric_flag
  --algorithm bundle-grd --network er --nodes 50 --edges 200 --budget xyz)
expect_nonzero_exit(malformed_budget_list
  --algorithm bundle-grd --network er --nodes 50 --edges 200 --budgets 3,,4)
expect_nonzero_exit(malformed_sweep_spec
  --sweep 10:5:2 --algorithms bundle-grd --network er --nodes 50 --edges 200)
expect_nonzero_exit(missing_algorithm_flag
  --network er --nodes 50 --edges 200)
