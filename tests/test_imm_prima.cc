#include "rrset/prima.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "diffusion/ic_model.h"
#include "graph/generators.h"
#include "rrset/imm.h"

namespace uic {
namespace {

// Exhaustive optimum spread over all size-k seed sets (MC-estimated), for
// small graphs only.
double ExhaustiveOptSpread(const Graph& g, size_t k, size_t mc,
                           uint64_t seed) {
  std::vector<NodeId> comb(k);
  double best = 0.0;
  // Enumerate combinations via simple recursion on indices.
  std::vector<NodeId> stack;
  std::function<void(NodeId)> rec = [&](NodeId start) {
    if (stack.size() == k) {
      best = std::max(best, EstimateSpread(g, stack, mc, seed, 2));
      return;
    }
    for (NodeId v = start; v < g.num_nodes(); ++v) {
      stack.push_back(v);
      rec(v + 1);
      stack.pop_back();
    }
  };
  rec(0);
  return best;
}

TEST(Lambda, LogChooseIsSymmetricAndMonotoneToMiddle) {
  EXPECT_NEAR(LogChoose(10, 3), LogChoose(10, 7), 1e-9);
  EXPECT_GT(LogChoose(10, 5), LogChoose(10, 2));
  EXPECT_DOUBLE_EQ(LogChoose(10, 0), 0.0);
  EXPECT_NEAR(LogChoose(5, 2), std::log(10.0), 1e-9);
}

TEST(Lambda, BothLambdasIncreaseWithBudget) {
  const double n = 10000;
  for (double k = 1; k < 500; k *= 2) {
    EXPECT_LT(LambdaPrime(n, k, 0.7, 1.0), LambdaPrime(n, 2 * k, 0.7, 1.0));
    EXPECT_LT(LambdaStar(n, k, 0.5, 1.0), LambdaStar(n, 2 * k, 0.5, 1.0));
  }
}

TEST(Lambda, TighterEpsilonNeedsMoreSamples) {
  const double n = 10000;
  EXPECT_GT(LambdaStar(n, 50, 0.1, 1.0), LambdaStar(n, 50, 0.5, 1.0));
  EXPECT_GT(LambdaPrime(n, 50, 0.1, 1.0), LambdaPrime(n, 50, 0.5, 1.0));
}

TEST(Imm, ReturnsRequestedSeedCount) {
  Graph g = GenerateErdosRenyi(300, 1800, 1);
  g.ApplyWeightedCascade();
  const ImResult r = Imm(g, 10, 0.5, 1.0, 2);
  EXPECT_EQ(r.seeds.size(), 10u);
  EXPECT_GT(r.num_rr_sets, 0u);
  // Seeds are distinct.
  std::vector<NodeId> sorted = r.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Imm, DeterministicForFixedSeed) {
  Graph g = GenerateErdosRenyi(200, 1000, 3);
  g.ApplyWeightedCascade();
  const ImResult a = Imm(g, 5, 0.5, 1.0, 7, 4);
  const ImResult b = Imm(g, 5, 0.5, 1.0, 7, 4);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
}

TEST(Imm, PicksTheObviousHub) {
  // Star with certain edges: node 0 is optimal for k=1.
  const NodeId n = 50;
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.AddEdge(0, v, 1.0);
  Graph g = builder.Build().MoveValue();
  const ImResult r = Imm(g, 1, 0.5, 1.0, 4);
  ASSERT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.seeds[0], 0u);
}

TEST(Imm, ExcludedNodesNeverSelected) {
  const NodeId n = 50;
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.AddEdge(0, v, 1.0);
  Graph g = builder.Build().MoveValue();
  const ImResult r = Imm(g, 3, 0.5, 1.0, 5, 0, /*excluded=*/{0});
  for (NodeId s : r.seeds) EXPECT_NE(s, 0u);
}

TEST(Imm, ApproximationHoldsOnSmallGraph) {
  // 24-node random graph, k=2: IMM's spread >= (1 - 1/e - eps) * OPT.
  Graph g = GenerateErdosRenyi(24, 100, 6);
  g.ApplyConstantProbability(0.3);
  const size_t k = 2;
  const ImResult r = Imm(g, k, 0.3, 1.0, 7);
  const double imm_spread = EstimateSpread(
      g, {r.seeds.begin(), r.seeds.begin() + k}, 40000, 99, 2);
  const double opt = ExhaustiveOptSpread(g, k, 4000, 99);
  EXPECT_GE(imm_spread, (1.0 - 1.0 / 2.71828 - 0.3) * opt - 0.25);
}

TEST(Prima, OrderingHasMaxBudgetLength) {
  Graph g = GenerateErdosRenyi(300, 1800, 8);
  g.ApplyWeightedCascade();
  const ImResult r = Prima(g, {5, 20, 10}, 0.5, 1.0, 9);
  EXPECT_EQ(r.seeds.size(), 20u);
}

TEST(Prima, HandlesUniformBudgets) {
  Graph g = GenerateErdosRenyi(200, 1200, 10);
  g.ApplyWeightedCascade();
  const ImResult r = Prima(g, {8, 8, 8}, 0.5, 1.0, 11);
  EXPECT_EQ(r.seeds.size(), 8u);
}

TEST(Prima, IgnoresZeroBudgets) {
  Graph g = GenerateErdosRenyi(100, 500, 12);
  g.ApplyWeightedCascade();
  const ImResult r = Prima(g, {0, 6, 0}, 0.5, 1.0, 13);
  EXPECT_EQ(r.seeds.size(), 6u);
}

TEST(Prima, EmptyBudgetsYieldEmptyResult) {
  Graph g = GenerateErdosRenyi(100, 500, 14);
  const ImResult r = Prima(g, {}, 0.5, 1.0, 15);
  EXPECT_TRUE(r.seeds.empty());
  const ImResult r2 = Prima(g, {0, 0}, 0.5, 1.0, 15);
  EXPECT_TRUE(r2.seeds.empty());
}

TEST(Prima, GeneratesAtLeastAsManySetsAsSingleBudgetImm) {
  // The union bound over budgets (ℓ') can only increase the requirement.
  Graph g = GenerateErdosRenyi(400, 2400, 16);
  g.ApplyWeightedCascade();
  const ImResult imm = Imm(g, 20, 0.5, 1.0, 17, 4);
  const ImResult prima = Prima(g, {20, 10, 5}, 0.5, 1.0, 17, 4);
  EXPECT_GE(prima.num_rr_sets, imm.num_rr_sets);
}

// The heart of Definition 1: every budget's prefix must be near-optimal.
class PrimaPrefixTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrimaPrefixTest, EveryPrefixIsNearOptimal) {
  Rng rng(GetParam());
  Graph g = GenerateErdosRenyi(22, 90, GetParam() + 100);
  g.ApplyConstantProbability(0.25);
  const std::vector<uint32_t> budgets = {3, 2, 1};
  const ImResult r = Prima(g, budgets, 0.3, 1.0, GetParam());
  ASSERT_EQ(r.seeds.size(), 3u);
  for (uint32_t k : budgets) {
    const double prefix_spread = EstimateSpread(
        g, {r.seeds.begin(), r.seeds.begin() + k}, 30000, 55, 2);
    const double opt = ExhaustiveOptSpread(g, k, 3000, 55);
    EXPECT_GE(prefix_spread, (1.0 - 1.0 / 2.71828 - 0.3) * opt - 0.3)
        << "budget " << k << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimaPrefixTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace uic
