#include "diffusion/uic_model.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "items/supermodular_generators.h"

namespace uic {
namespace {

/// Two items over deterministic (zero-noise) utilities.
ItemParams TwoItems(double u1, double u2, double u12) {
  const std::vector<double> prices = {1.0, 1.0};
  auto value = MakeValueFromUtilities(2, prices, {0.0, u1, u2, u12});
  return ItemParams(std::move(value), prices, NoiseModel::Zero(2));
}

/// Single item with the given deterministic utility.
ItemParams OneItem(double u) {
  const std::vector<double> prices = {1.0};
  auto value = MakeValueFromUtilities(1, prices, {0.0, u});
  return ItemParams(std::move(value), prices, NoiseModel::Zero(1));
}

// ---------------------------------------------------------------------------
// The worked example of Fig. 2: v1 seeded with i1 (positive utility),
// v3 seeded with i2 (negative alone, positive jointly with i1). Edge
// (v1,v3) is blocked, (v1,v2) and (v2,v3) are live. Expected outcome:
// v1, v2 adopt {i1}; v3 retains i2 in its desire set and finally adopts
// the joint bundle {i1, i2}.
// ---------------------------------------------------------------------------
TEST(UicSimulator, ReproducesFigure2Example) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);  // (v1, v2): live
  builder.AddEdge(0, 2, 0.0);  // (v1, v3): blocked
  builder.AddEdge(1, 2, 1.0);  // (v2, v3): live
  Graph g = builder.Build().MoveValue();

  ItemParams params = TwoItems(/*u1=*/2.0, /*u2=*/-1.0, /*u12=*/3.0);
  const UtilityTable table(params);
  UicSimulator sim(g);
  Rng rng(1);
  std::vector<std::pair<NodeId, ItemSet>> adoptions;
  Allocation alloc;
  alloc.AddItem(0, 0);  // v1 <- i1
  alloc.AddItem(2, 1);  // v3 <- i2
  const UicOutcome out = sim.RunDetailed(alloc, table, rng, &adoptions);

  ItemSet a_v1 = 0, a_v2 = 0, a_v3 = 0;
  for (const auto& [v, a] : adoptions) {
    if (v == 0) a_v1 = a;
    if (v == 1) a_v2 = a;
    if (v == 2) a_v3 = a;
  }
  EXPECT_EQ(a_v1, ItemBit(0));
  EXPECT_EQ(a_v2, ItemBit(0));
  EXPECT_EQ(a_v3, ItemBit(0) | ItemBit(1));
  // Welfare: 2 + 2 + 3.
  EXPECT_DOUBLE_EQ(out.welfare, 7.0);
  EXPECT_EQ(out.num_adopters, 3u);
  EXPECT_EQ(out.num_adoptions, 4u);
}

TEST(UicSimulator, SeedsAreRationalAndMayRejectItems) {
  // A seed offered only a negative-utility item adopts nothing.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1.0);
  Graph g = builder.Build().MoveValue();
  ItemParams params = TwoItems(-0.5, 1.0, 2.0);
  const UtilityTable table(params);
  UicSimulator sim(g);
  Rng rng(2);
  Allocation alloc;
  alloc.AddItem(0, 0);
  const UicOutcome out = sim.Run(alloc, table, rng);
  EXPECT_DOUBLE_EQ(out.welfare, 0.0);
  EXPECT_EQ(out.num_adopters, 0u);
}

TEST(UicSimulator, SeedMayAdoptSubsetOfAllocation) {
  // Seed offered {i1, i2}: i2 drags the bundle down, adopt i1 only.
  GraphBuilder builder(1);
  Graph g = builder.Build().MoveValue();
  ItemParams params = TwoItems(2.0, -1.0, 0.5);
  const UtilityTable table(params);
  UicSimulator sim(g);
  Rng rng(3);
  Allocation alloc;
  alloc.Add(0, ItemBit(0) | ItemBit(1));
  std::vector<std::pair<NodeId, ItemSet>> adoptions;
  sim.RunDetailed(alloc, table, rng, &adoptions);
  ASSERT_EQ(adoptions.size(), 1u);
  EXPECT_EQ(adoptions[0].second, ItemBit(0));
}

TEST(UicSimulator, SingleItemReducesToIcSpread) {
  // Theorem 1 setup / Proposition 1: with one item of utility 1 and
  // certain edges, welfare equals the number of reachable nodes.
  Graph g = GenerateLayeredDag(4, 3, 1.0);
  ItemParams params = OneItem(1.0);
  const UtilityTable table(params);
  UicSimulator sim(g);
  Rng rng(4);
  Allocation alloc;
  alloc.AddItem(0, 0);  // one node in the first layer
  const UicOutcome out = sim.Run(alloc, table, rng);
  // First-layer seed reaches all 3 nodes of each deeper layer: 1 + 9.
  EXPECT_DOUBLE_EQ(out.welfare, 10.0);
  EXPECT_EQ(out.num_adopters, 10u);
}

TEST(UicSimulator, StagedAdoptionRepropagatesThroughLiveEdges) {
  // Fig. 1 semantics: when a node adopts ADDITIONAL items later in the
  // diffusion, its already-live out-edges deliver the enlarged adoption
  // set. Topology: 2 -> 0 -> 1, all edges certain.
  //   t=1: node 0 (seeded i0) adopts {i0}; node 2 (seeded i1) adopts {i1}.
  //   t=2: 1 desires {i0} and adopts it; 0 desires {i1} and upgrades to
  //        {i0, i1} (synergy).
  //   t=3: 0 re-propagates; 1 upgrades to {i0, i1}.
  GraphBuilder builder(3);
  builder.AddEdge(2, 0, 1.0);
  builder.AddEdge(0, 1, 1.0);
  Graph g = builder.Build().MoveValue();
  ItemParams params = TwoItems(1.0, 0.5, 2.5);
  const UtilityTable table(params);
  UicSimulator sim(g);
  Rng rng(10);
  Allocation alloc;
  alloc.AddItem(0, 0);
  alloc.AddItem(2, 1);
  std::vector<std::pair<NodeId, ItemSet>> adoptions;
  const UicOutcome out = sim.RunDetailed(alloc, table, rng, &adoptions);
  ItemSet a0 = 0, a1 = 0, a2 = 0;
  for (const auto& [v, a] : adoptions) {
    if (v == 0) a0 = a;
    if (v == 1) a1 = a;
    if (v == 2) a2 = a;
  }
  EXPECT_EQ(a0, 0b11u);
  EXPECT_EQ(a1, 0b11u);  // upgraded via re-propagation
  EXPECT_EQ(a2, 0b10u);
  EXPECT_DOUBLE_EQ(out.welfare, 2.5 + 2.5 + 0.5);
}

// ---------------------------------------------------------------------------
// Lemma 2 / Lemma 3 property tests on random deterministic worlds.
// ---------------------------------------------------------------------------
class UicWorldTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UicWorldTest, AdoptedSetsAreLocalMaximaAndPropagateByReachability) {
  Rng rng(GetParam());
  // Random digraph with deterministic (0/1) edges: the sampled "world" is
  // the graph itself, so reachability is checkable.
  const NodeId n = 24;
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (int e = 0; e < 3; ++e) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (v != u) builder.AddEdge(u, v, rng.NextBernoulli(0.5) ? 1.0 : 0.0);
    }
  }
  Graph g = builder.Build().MoveValue();

  const ItemId k = 3;
  auto value = MakeRandomSupermodularValue(k, rng, 0.2, 2.0, 1.0);
  std::vector<double> prices(k);
  for (auto& p : prices) p = rng.NextUniform(0.5, 2.5);
  ItemParams params(value, prices, NoiseModel::Zero(k));
  std::vector<double> noise(k);
  for (auto& x : noise) x = rng.NextGaussian(0.0, 1.0);
  const UtilityTable table(params, noise);

  Allocation alloc;
  for (int s = 0; s < 5; ++s) {
    alloc.Add(static_cast<NodeId>(rng.NextBounded(n)),
              static_cast<ItemSet>(rng.NextBounded(1u << k)));
  }

  UicSimulator sim(g);
  std::vector<std::pair<NodeId, ItemSet>> adoptions;
  sim.RunDetailed(alloc, table, rng, &adoptions);

  std::vector<ItemSet> adopted(n, 0);
  for (const auto& [v, a] : adoptions) adopted[v] = a;

  // Lemma 2: every adopted set is a local maximum of the utility.
  for (const auto& [v, a] : adoptions) {
    EXPECT_TRUE(table.IsLocalMaximum(a))
        << "node " << v << " adopted " << ItemSetToString(a);
  }

  // Lemma 3: if u adopted item i, every node reachable from u through
  // live (p=1) edges also adopted i.
  for (NodeId u = 0; u < n; ++u) {
    if (adopted[u] == 0) continue;
    // BFS over live edges.
    std::vector<bool> seen(n, false);
    std::vector<NodeId> stack = {u};
    seen[u] = true;
    while (!stack.empty()) {
      const NodeId w = stack.back();
      stack.pop_back();
      auto nbrs = g.OutNeighbors(w);
      auto probs = g.OutProbs(w);
      for (size_t j = 0; j < nbrs.size(); ++j) {
        if (probs[j] < 0.5 || seen[nbrs[j]]) continue;
        seen[nbrs[j]] = true;
        stack.push_back(nbrs[j]);
        EXPECT_EQ(adopted[nbrs[j]] & adopted[u], adopted[u])
            << "node " << nbrs[j] << " reachable from " << u;
      }
    }
  }
}

// Theorem 1 (monotonicity): enlarging the allocation never decreases the
// welfare of a deterministic world.
TEST_P(UicWorldTest, WelfareIsMonotoneInAllocation) {
  Rng rng(GetParam() ^ 0xbeef);
  const NodeId n = 20;
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (int e = 0; e < 3; ++e) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (v != u) builder.AddEdge(u, v, rng.NextBernoulli(0.6) ? 1.0 : 0.0);
    }
  }
  Graph g = builder.Build().MoveValue();

  const ItemId k = 3;
  auto value = MakeRandomSupermodularValue(k, rng, 0.2, 2.0, 1.0);
  std::vector<double> prices(k);
  for (auto& p : prices) p = rng.NextUniform(0.5, 2.5);
  ItemParams params(value, prices, NoiseModel::Zero(k));
  std::vector<double> noise(k);
  for (auto& x : noise) x = rng.NextGaussian(0.0, 1.0);
  const UtilityTable table(params, noise);

  Allocation small, large;
  for (int s = 0; s < 4; ++s) {
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    const ItemSet items = static_cast<ItemSet>(rng.NextBounded(1u << k));
    small.Add(v, items);
    large.Add(v, items);
  }
  for (int s = 0; s < 3; ++s) {
    large.Add(static_cast<NodeId>(rng.NextBounded(n)),
              static_cast<ItemSet>(rng.NextBounded(1u << k)));
  }

  UicSimulator sim(g);
  Rng run_rng(0);  // edges are deterministic; rng is unused entropy
  const double w_small = sim.Run(small, table, run_rng).welfare;
  const double w_large = sim.Run(large, table, run_rng).welfare;
  EXPECT_LE(w_small, w_large + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UicWorldTest,
                         ::testing::Range<uint64_t>(0, 16));

// ---------------------------------------------------------------------------
// Theorem 1 counterexamples: expected welfare is neither submodular nor
// supermodular, reproduced exactly as in the proof.
// ---------------------------------------------------------------------------
TEST(UicWelfare, NotSubmodularCounterexample) {
  // One node; both items individually negative, jointly positive.
  GraphBuilder builder(1);
  Graph g = builder.Build().MoveValue();
  ItemParams params = TwoItems(-1.0, -1.0, 1.0);
  const UtilityTable table(params);
  UicSimulator sim(g);
  Rng rng(5);

  Allocation empty;
  Allocation with_i2;
  with_i2.AddItem(0, 1);
  Allocation with_i1;
  with_i1.AddItem(0, 0);
  Allocation with_both;
  with_both.AddItem(0, 0);
  with_both.AddItem(0, 1);

  const double gain_at_empty =
      sim.Run(with_i2, table, rng).welfare - sim.Run(empty, table, rng).welfare;
  const double gain_at_i1 = sim.Run(with_both, table, rng).welfare -
                            sim.Run(with_i1, table, rng).welfare;
  EXPECT_DOUBLE_EQ(gain_at_empty, 0.0);
  EXPECT_GT(gain_at_i1, 0.0);  // submodularity would force <= gain_at_empty
}

TEST(UicWelfare, NotSupermodularCounterexample) {
  // v1 -> v2 with p=1; one positive item.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1.0);
  Graph g = builder.Build().MoveValue();
  ItemParams params = OneItem(1.0);
  const UtilityTable table(params);
  UicSimulator sim(g);
  Rng rng(6);

  Allocation empty;
  Allocation v2_only;
  v2_only.AddItem(1, 0);
  Allocation v1_only;
  v1_only.AddItem(0, 0);
  Allocation both;
  both.AddItem(0, 0);
  both.AddItem(1, 0);

  const double gain_at_empty = sim.Run(v2_only, table, rng).welfare -
                               sim.Run(empty, table, rng).welfare;
  const double gain_at_v1 =
      sim.Run(both, table, rng).welfare - sim.Run(v1_only, table, rng).welfare;
  EXPECT_GT(gain_at_empty, 0.0);
  EXPECT_DOUBLE_EQ(gain_at_v1, 0.0);  // supermodularity would force >=
}

// ---------------------------------------------------------------------------
// Estimator-level behavior.
// ---------------------------------------------------------------------------
TEST(EstimateWelfare, DeterministicForFixedSeedAndWorkers) {
  Graph g = GenerateErdosRenyi(150, 900, 20);
  g.ApplyWeightedCascade();
  ItemParams params = TwoItems(0.0, 0.0, 1.0);
  Allocation alloc;
  for (NodeId v = 0; v < 10; ++v) alloc.Add(v, 0b11);
  const WelfareEstimate a = EstimateWelfare(g, alloc, params, 400, 5, 4);
  const WelfareEstimate b = EstimateWelfare(g, alloc, params, 400, 5, 4);
  EXPECT_DOUBLE_EQ(a.welfare, b.welfare);
  EXPECT_DOUBLE_EQ(a.avg_adopters, b.avg_adopters);
}

TEST(EstimateWelfare, EmptyAllocationHasZeroWelfare) {
  Graph g = GenerateErdosRenyi(50, 200, 21);
  ItemParams params = TwoItems(1.0, 1.0, 3.0);
  const WelfareEstimate w = EstimateWelfare(g, Allocation{}, params, 100, 6, 2);
  EXPECT_DOUBLE_EQ(w.welfare, 0.0);
}

TEST(EstimateWelfare, BundledSeedingBeatsSplitSeedingUnderSynergy) {
  // Items worthless alone, valuable together: seeding both items on the
  // same nodes must beat seeding them on disjoint node sets.
  Graph g = GenerateErdosRenyi(300, 1800, 22);
  g.ApplyWeightedCascade();
  ItemParams params = TwoItems(-0.5, -0.5, 2.0);
  Allocation bundled, split;
  for (NodeId v = 0; v < 20; ++v) bundled.Add(v, 0b11);
  for (NodeId v = 0; v < 20; ++v) split.AddItem(v, 0);
  for (NodeId v = 20; v < 40; ++v) split.AddItem(v, 1);
  const double wb = EstimateWelfare(g, bundled, params, 500, 7, 4).welfare;
  const double ws = EstimateWelfare(g, split, params, 500, 7, 4).welfare;
  EXPECT_GT(wb, ws);
}

TEST(EstimateWelfare, WelfareIsNonNegativeUnderRationalAdoption) {
  // Every adoption has non-negative utility in its own world, so realized
  // welfare per world is >= 0 even with noisy utilities.
  Graph g = GenerateErdosRenyi(100, 500, 23);
  g.ApplyWeightedCascade();
  const std::vector<double> prices = {2.0, 2.0};
  auto value = MakeValueFromUtilities(2, prices, {0.0, -0.2, -0.2, 0.4});
  ItemParams params(std::move(value), prices, NoiseModel::IidGaussian(2, 1.5));
  Allocation alloc;
  for (NodeId v = 0; v < 15; ++v) alloc.Add(v, 0b11);
  const WelfareEstimate w = EstimateWelfare(g, alloc, params, 300, 8, 4);
  EXPECT_GE(w.welfare, 0.0);
}

}  // namespace
}  // namespace uic
