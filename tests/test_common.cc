#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/parallel.h"
#include "common/random.h"
#include "common/status.h"
#include "common/table.h"
#include "common/timer.h"

namespace uic {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kNotFound);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng a = Rng::Split(99, 0);
  Rng b = Rng::Split(99, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
  // Same split is reproducible.
  Rng a2 = Rng::Split(99, 0);
  Rng a3 = Rng::Split(99, 0);
  EXPECT_EQ(a2.NextU64(), a3.NextU64());
}

// Pins the exact output of the seeded generators. The whole pipeline
// (SplitMix64 seeding, xoshiro256++, Lemire bounded draw, the 53-bit double
// conversion) is pure integer/bit arithmetic, so these values must be
// identical on every platform; a change here means reproducibility of every
// seeded experiment in the repo has silently broken.
TEST(Rng, PinnedSequenceSeed42) {
  Rng rng(42);
  const uint64_t expected[] = {
      0xd0764d4f4476689fULL, 0x519e4174576f3791ULL, 0xfbe07cfb0c24ed8cULL,
      0xb37d9f600cd835b8ULL, 0xcb231c3874846a73ULL,
  };
  for (uint64_t e : expected) EXPECT_EQ(rng.NextU64(), e);
}

TEST(Rng, PinnedSplitStream) {
  Rng rng = Rng::Split(7, 3);
  const uint64_t expected[] = {
      0xa5979c9140ea5529ULL, 0xf707c621032764aaULL, 0xcc2b874c9475f85dULL,
  };
  for (uint64_t e : expected) EXPECT_EQ(rng.NextU64(), e);
}

TEST(Rng, PinnedDoublesAndBoundedDraws) {
  Rng d(42);
  EXPECT_DOUBLE_EQ(d.NextDouble(), 0.81430514512290986);
  EXPECT_DOUBLE_EQ(d.NextDouble(), 0.31882104006166112);
  EXPECT_DOUBLE_EQ(d.NextDouble(), 0.98389416817748876);
  Rng b(42);
  const uint64_t expected[] = {814, 318, 983, 701, 793};
  for (uint64_t e : expected) EXPECT_EQ(b.NextBounded(1000), e);
}

TEST(Rng, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedIsUnbiasedAcrossRange) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 10 * 0.15);
  }
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / trials, 1.0, 0.03);
}

TEST(Rng, GaussianScaleAndShift) {
  Rng rng(17);
  double sum = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.NextGaussian(5.0, 2.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.05);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const uint64_t a = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(a, sm2.Next());
  EXPECT_NE(sm.Next(), a);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  ParallelFor(1000, 8, [&](unsigned, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesFewerItemsThanWorkers) {
  std::atomic<int> total{0};
  ParallelFor(3, 16, [&](unsigned, size_t begin, size_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelFor, ZeroItemsIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](unsigned, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(TablePrinter, AlignsColumnsAndEmitsCsv) {
  TablePrinter t({"a", "bb"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("333"), std::string::npos);
  std::ostringstream csv;
  t.PrintCsv(csv);
  EXPECT_EQ(csv.str(), "a,bb\n1,2\n333,4\n");
}

TEST(TablePrinter, NumberFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Int(42), "42");
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  // Keep the timed loop observable through the assertion below (rather
  // than a volatile sink, which is banned by uic_lint UIC-L005 and whose
  // per-iteration memory traffic distorts what the timer measures).
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += std::sqrt(static_cast<double>(i));
  EXPECT_GT(x, 0.0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());
}

}  // namespace
}  // namespace uic
