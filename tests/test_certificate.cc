#include "rrset/certificate.h"

#include <gtest/gtest.h>

#include "diffusion/ic_model.h"
#include "graph/generators.h"
#include "rrset/imm.h"

namespace uic {
namespace {

TEST(Certificate, BoundsBracketTheTruthOnStarGraph) {
  // Star hub with certain edges: σ({hub}) = n = OPT_1.
  const NodeId n = 40;
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.AddEdge(0, v, 1.0);
  Graph g = builder.Build().MoveValue();
  const SpreadCertificate cert = CertifySeedSet(g, {0}, 20000, 0.01, 1);
  EXPECT_LE(cert.spread_lower, 40.0 + 1e-9);
  EXPECT_GE(cert.opt_upper, cert.spread_lower);
  EXPECT_GT(cert.ratio, 0.9);  // hub IS optimal; certificate ~1
}

TEST(Certificate, LowerBoundIsBelowTrueSpread) {
  Graph g = GenerateErdosRenyi(200, 1200, 2);
  g.ApplyWeightedCascade();
  const ImResult imm = Imm(g, 5, 0.5, 1.0, 3);
  const std::vector<NodeId> seeds(imm.seeds.begin(), imm.seeds.begin() + 5);
  const SpreadCertificate cert = CertifySeedSet(g, seeds, 30000, 0.01, 4);
  const double truth = EstimateSpread(g, seeds, 50000, 5, 4);
  EXPECT_LE(cert.spread_lower, truth * 1.02 + 0.5);
  EXPECT_GT(cert.spread_lower, 0.0);
}

TEST(Certificate, GoodSeedsEarnHighRatio) {
  Graph g = GenerateErdosRenyi(300, 1800, 6);
  g.ApplyWeightedCascade();
  const ImResult imm = Imm(g, 10, 0.3, 1.0, 7);
  const std::vector<NodeId> seeds(imm.seeds.begin(), imm.seeds.begin() + 10);
  const SpreadCertificate good = CertifySeedSet(g, seeds, 50000, 0.01, 8);
  // IMM seeds typically certify far above the worst case 1-1/e-ε.
  EXPECT_GT(good.ratio, 0.5);

  // Arbitrary low-degree seeds certify worse than IMM seeds.
  std::vector<NodeId> bad;
  for (NodeId v = 0; bad.size() < 10 && v < g.num_nodes(); ++v) {
    if (g.OutDegree(v) == 0) bad.push_back(v);
  }
  if (bad.size() == 10) {
    const SpreadCertificate poor = CertifySeedSet(g, bad, 50000, 0.01, 8);
    EXPECT_LT(poor.ratio, good.ratio);
  }
}

TEST(Certificate, RatioNeverExceedsOne) {
  Graph g = GenerateErdosRenyi(100, 500, 9);
  g.ApplyWeightedCascade();
  const SpreadCertificate cert = CertifySeedSet(g, {0, 1, 2}, 20000, 0.05,
                                                10);
  EXPECT_LE(cert.ratio, 1.0);
  EXPECT_GE(cert.ratio, 0.0);
}

TEST(Certificate, WorksUnderLinearThreshold) {
  Graph g = GenerateErdosRenyi(150, 900, 11);
  g.ApplyWeightedCascade();
  RrOptions lt;
  lt.linear_threshold = true;
  const ImResult imm = Imm(g, 5, 0.5, 1.0, 12, 0, {}, lt);
  const std::vector<NodeId> seeds(imm.seeds.begin(), imm.seeds.begin() + 5);
  const SpreadCertificate cert =
      CertifySeedSet(g, seeds, 30000, 0.01, 13, 0, lt);
  EXPECT_GT(cert.spread_lower, 0.0);
  EXPECT_GT(cert.ratio, 0.3);
}

}  // namespace
}  // namespace uic
