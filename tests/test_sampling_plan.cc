// Sampling-plan classification + scan-vs-skip kernel equivalence.
//
// The two kernels draw DIFFERENT RNG sequences, so cross-kernel checks are
// statistical (frequencies and means within tolerance at sample counts
// that put flakes many sigma away) except where an exact identity holds:
//   * p = 0 edges can never fire — RR sets are root singletons,
//   * p = 1 edges always fire — RR sets are the full reverse-reachable set,
//   * single-edge nodes — the geometric gap on a size-1 bucket is the
//     Bernoulli identity (gap == 0 ⟺ U < p) with the same one-draw cost,
//     so whole pools are bit-identical between kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "diffusion/ic_model.h"
#include "graph/generators.h"
#include "graph/sampling_plan.h"
#include "rrset/rr_collection.h"

namespace uic {
namespace {

using Direction = SamplingPlan::Direction;

Graph StarInto(NodeId leaves, const std::vector<double>& probs) {
  // Leaves 1..leaves each point at node 0 with probs[i % probs.size()].
  GraphBuilder b(leaves + 1);
  for (NodeId u = 1; u <= leaves; ++u) {
    b.AddEdge(u, 0, probs[(u - 1) % probs.size()]);
  }
  Result<Graph> g = b.Build();
  EXPECT_TRUE(g.ok());
  return g.MoveValue();
}

// --- flag spelling -----------------------------------------------------

TEST(SamplingKernelFlag, ParseAndNameRoundTrip) {
  for (SamplingKernel k :
       {SamplingKernel::kAuto, SamplingKernel::kScan, SamplingKernel::kSkip}) {
    SamplingKernel parsed;
    ASSERT_TRUE(ParseSamplingKernel(SamplingKernelName(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  SamplingKernel parsed;
  EXPECT_FALSE(ParseSamplingKernel("fast", &parsed));
  EXPECT_FALSE(ParseSamplingKernel("", &parsed));
  EXPECT_EQ(ResolveSamplingKernel(SamplingKernel::kAuto), SamplingKernel::kSkip);
  EXPECT_EQ(ResolveSamplingKernel(SamplingKernel::kScan), SamplingKernel::kScan);
}

// --- geometric gap primitive -------------------------------------------

TEST(NextGeometric, MatchesBernoulliOnTheFirstTrial) {
  // gap == 0 ⟺ U < p, and both spellings consume exactly one draw — the
  // identity that makes size-1 buckets bit-compatible with the scan kernel.
  for (double p : {0.05, 0.3, 0.7, 0.97}) {
    Rng a = Rng::Split(11, 0);
    Rng b = Rng::Split(11, 0);
    const double l = std::log1p(-p);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_EQ(a.NextBernoulli(p), b.NextGeometric(l) == 0) << "p=" << p;
    }
  }
}

TEST(NextGeometric, CertainEdgeAlwaysFires) {
  Rng rng = Rng::Split(3, 1);
  const double l = std::log1p(-1.0);  // -inf
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.NextGeometric(l), 0u);
  }
}

TEST(NextGeometric, MeanMatchesGeometricDistribution) {
  for (double p : {0.1, 0.5, 0.9}) {
    Rng rng = Rng::Split(7, 2);
    const double l = std::log1p(-p);
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextGeometric(l));
    const double mean = sum / n;
    const double want = (1.0 - p) / p;
    EXPECT_NEAR(mean, want, 0.05 * want + 0.01) << "p=" << p;
  }
}

// --- plan classification -----------------------------------------------

TEST(SamplingPlanClassification, WeightedCascadeIsAllUniform) {
  Graph g = GenerateErdosRenyi(200, 1200, 7);
  g.ApplyWeightedCascade();
  auto plan = SamplingPlan::Build(g, Direction::kReverse,
                                  SamplingPlan::kIcBuckets);
  EXPECT_EQ(plan->num_general_nodes(), 0u);
  EXPECT_EQ(plan->num_bucketed_nodes(), 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_FALSE(plan->IsGeneral(v));
    auto buckets = plan->Buckets(v);
    if (g.InDegree(v) == 0) {
      EXPECT_TRUE(buckets.empty());
      continue;
    }
    ASSERT_EQ(buckets.size(), 1u) << "node " << v;
    EXPECT_EQ(buckets[0].size, g.InDegree(v));
    EXPECT_FLOAT_EQ(buckets[0].p, 1.0f / static_cast<float>(g.InDegree(v)));
    // Uniform nodes alias the graph's own CSR slice.
    EXPECT_EQ(buckets[0].nodes, g.InNeighbors(v).data());
  }
}

TEST(SamplingPlanClassification, TrivalencyBucketsAreSortedAndComplete) {
  Graph g = GenerateErdosRenyi(200, 1200, 7);
  g.ApplyTrivalency({0.1, 0.01, 0.001}, 13);
  auto plan = SamplingPlan::Build(g, Direction::kReverse,
                                  SamplingPlan::kIcBuckets);
  EXPECT_EQ(plan->num_general_nodes(), 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto buckets = plan->Buckets(v);
    auto srcs = g.InNeighbors(v);
    auto probs = g.InProbs(v);
    ASSERT_LE(buckets.size(), 3u);
    size_t covered = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(buckets[i].p, buckets[i - 1].p);
      }
      // Every bucket member really is an in-neighbor with that probability.
      for (uint32_t j = 0; j < buckets[i].size; ++j) {
        bool found = false;
        for (size_t k = 0; k < srcs.size(); ++k) {
          if (srcs[k] == buckets[i].nodes[j] && probs[k] == buckets[i].p) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "node " << v;
      }
      covered += buckets[i].size;
    }
    EXPECT_EQ(covered, srcs.size()) << "node " << v;
  }
}

TEST(SamplingPlanClassification, ManyDistinctProbabilitiesFallBackToGeneral) {
  std::vector<double> probs;
  for (int i = 1; i <= 12; ++i) probs.push_back(0.01 * i);  // 12 > kMaxDistinct
  Graph g = StarInto(12, probs);
  auto plan = SamplingPlan::Build(g, Direction::kReverse,
                                  SamplingPlan::kIcBuckets);
  EXPECT_TRUE(plan->IsGeneral(0));
  EXPECT_EQ(plan->num_general_nodes(), 1u);
  EXPECT_TRUE(plan->Buckets(0).empty());
}

TEST(SamplingPlanClassification, DeadEdgesAreDroppedFromBuckets) {
  GraphBuilder b(4);
  b.AddEdge(1, 0, 0.5);
  b.AddEdge(2, 0, 0.0);  // can never fire
  b.AddEdge(3, 0, 0.5);
  b.AddEdge(1, 2, 0.0);  // node 2: only dead in-edges
  Graph g = b.Build().MoveValue();
  auto plan = SamplingPlan::Build(g, Direction::kReverse,
                                  SamplingPlan::kIcBuckets);
  ASSERT_FALSE(plan->IsGeneral(0));
  auto buckets = plan->Buckets(0);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].size, 2u);  // the p=0 edge is gone
  EXPECT_TRUE(plan->Buckets(2).empty());  // all-dead: no buckets, not general
  EXPECT_FALSE(plan->IsGeneral(2));
}

TEST(SamplingPlanClassification, ForwardDirectionStratifiesOutAdjacency) {
  Graph g = GenerateErdosRenyi(100, 600, 3);
  g.ApplyConstantProbability(0.2);
  auto plan = SamplingPlan::Build(g, Direction::kForward,
                                  SamplingPlan::kIcBuckets);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto buckets = plan->Buckets(u);
    if (g.OutDegree(u) == 0) {
      EXPECT_TRUE(buckets.empty());
    } else {
      ASSERT_EQ(buckets.size(), 1u);
      EXPECT_EQ(buckets[0].size, g.OutDegree(u));
      EXPECT_EQ(buckets[0].nodes, g.OutNeighbors(u).data());
    }
  }
}

// --- exact cross-kernel identities -------------------------------------

RrOptions KernelOpt(SamplingKernel k) {
  RrOptions opt;
  opt.kernel = k;
  return opt;
}

TEST(KernelEquivalenceExact, DeadGraphYieldsRootSingletonsUnderBothKernels) {
  Graph g = GenerateErdosRenyi(60, 400, 5);
  g.ApplyConstantProbability(0.0);
  for (SamplingKernel k : {SamplingKernel::kScan, SamplingKernel::kSkip}) {
    RrSampler sampler(g, KernelOpt(k));
    Rng rng = Rng::Split(9, 0);
    std::vector<NodeId> set;
    for (NodeId root = 0; root < g.num_nodes(); ++root) {
      sampler.SampleRootedInto(root, rng, &set);
      ASSERT_EQ(set, std::vector<NodeId>{root});
    }
  }
}

TEST(KernelEquivalenceExact, CertainGraphYieldsFullReachableSet) {
  // p = 1 everywhere: the RR set is exactly the reverse-reachable set,
  // whichever kernel samples it.
  Graph g = GenerateErdosRenyi(80, 500, 6);
  g.ApplyConstantProbability(1.0);
  RrSampler scan(g, KernelOpt(SamplingKernel::kScan));
  RrSampler skip(g, KernelOpt(SamplingKernel::kSkip));
  Rng rng_a = Rng::Split(9, 1);
  Rng rng_b = Rng::Split(9, 1);
  std::vector<NodeId> a, b;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    scan.SampleRootedInto(root, rng_a, &a);
    skip.SampleRootedInto(root, rng_b, &b);
    ASSERT_EQ(a, b) << "root " << root;  // same BFS order, same content
  }
}

TEST(KernelEquivalenceExact, SingleInEdgeNodesAreBitIdenticalAcrossKernels) {
  // A chain: every node has in-degree ≤ 1, so every bucket has size 1 and
  // the geometric gap degenerates to the Bernoulli identity — identical
  // draw sequence, identical sets, for arbitrarily many samples from ONE
  // shared RNG.
  GraphBuilder b(64);
  for (NodeId v = 1; v < 64; ++v) {
    b.AddEdge(v - 1, v, 0.05 + 0.9 * static_cast<double>(v) / 64.0);
  }
  Graph g = b.Build().MoveValue();
  RrSampler scan(g, KernelOpt(SamplingKernel::kScan));
  RrSampler skip(g, KernelOpt(SamplingKernel::kSkip));
  Rng rng_a = Rng::Split(4, 2);
  Rng rng_b = Rng::Split(4, 2);
  std::vector<NodeId> a, bset;
  for (int i = 0; i < 4000; ++i) {
    const size_t ea = scan.SampleInto(rng_a, &a);
    const size_t eb = skip.SampleInto(rng_b, &bset);
    ASSERT_EQ(a, bset) << "sample " << i;
    ASSERT_EQ(ea, eb) << "sample " << i;
  }
}

TEST(KernelEquivalenceExact, EdgesExaminedIsKernelIndependentPerSet) {
  // The EPT convention: edges examined = Σ in-degree over the set's nodes
  // — the skip kernel counts jumped-over edges as examined.
  Graph g = GenerateErdosRenyi(150, 900, 8);
  g.ApplyTrivalency({0.2, 0.05, 0.01}, 17);
  for (bool lt : {false, true}) {
    for (SamplingKernel k : {SamplingKernel::kScan, SamplingKernel::kSkip}) {
      RrOptions opt = KernelOpt(k);
      if (lt) {
        opt.linear_threshold = true;
      }
      RrSampler sampler(g, opt);
      Rng rng = Rng::Split(5, 3);
      std::vector<NodeId> set;
      for (int i = 0; i < 500; ++i) {
        const size_t edges = sampler.SampleInto(rng, &set);
        size_t want = 0;
        for (NodeId v : set) want += g.InDegree(v);
        ASSERT_EQ(edges, want) << "lt=" << lt;
      }
    }
  }
}

// --- statistical cross-kernel equivalence ------------------------------

TEST(KernelEquivalenceStatistical, PerEdgeFireFrequenciesMatchOnAStar) {
  // Mixed bucketed star: each leaf joins the root's RR set iff its edge
  // fires, so membership frequency estimates the edge probability exactly.
  const std::vector<double> probs = {0.8, 0.5, 0.5, 0.2, 0.2, 0.05};
  const NodeId leaves = 18;
  Graph g = StarInto(leaves, probs);
  const int n = 120000;
  for (SamplingKernel k : {SamplingKernel::kScan, SamplingKernel::kSkip}) {
    RrSampler sampler(g, KernelOpt(k));
    Rng rng = Rng::Split(2, 4);
    std::vector<NodeId> set;
    std::vector<int> hits(leaves + 1, 0);
    for (int i = 0; i < n; ++i) {
      sampler.SampleRootedInto(0, rng, &set);
      for (NodeId v : set) ++hits[v];
    }
    for (NodeId u = 1; u <= leaves; ++u) {
      const double p = probs[(u - 1) % probs.size()];
      const double freq = static_cast<double>(hits[u]) / n;
      // 5σ of a Bernoulli(p) mean at n=120000 is < 0.008.
      EXPECT_NEAR(freq, p, 0.01)
          << "leaf " << u << " kernel " << SamplingKernelName(k);
    }
  }
}

TEST(KernelEquivalenceStatistical, LtAliasSourceDistributionMatchesWeights) {
  GraphBuilder b(3);
  b.AddEdge(1, 0, 0.2);
  b.AddEdge(2, 0, 0.3);
  Graph g = b.Build().MoveValue();
  auto plan = SamplingPlan::Build(
      g, Direction::kReverse, SamplingPlan::kIcBuckets | SamplingPlan::kLtAlias);
  Rng rng = Rng::Split(8, 5);
  const int n = 200000;
  int from1 = 0, from2 = 0, none = 0;
  for (int i = 0; i < n; ++i) {
    const NodeId src = plan->SampleLtSource(0, rng);
    if (src == 1) {
      ++from1;
    } else if (src == 2) {
      ++from2;
    } else {
      ASSERT_EQ(src, SamplingPlan::kNoSource);
      ++none;
    }
  }
  EXPECT_NEAR(from1 / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(from2 / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(none / static_cast<double>(n), 0.5, 0.01);
  // Nodes without in-edges never draw and always return kNoSource.
  Rng untouched = Rng::Split(8, 6);
  Rng probe = Rng::Split(8, 6);
  EXPECT_EQ(plan->SampleLtSource(1, probe), SamplingPlan::kNoSource);
  EXPECT_EQ(probe.NextU64(), untouched.NextU64());
}

TEST(KernelEquivalenceStatistical, PoolStatisticsMatchAcrossSchemesAndModels) {
  // scan vs skip over {wc, constant, trivalency} × {IC, LT} × {plain,
  // pass-prob}: pool mean set size and per-node coverage rates must agree
  // within tolerance — same distribution, different draw sequences.
  Graph base = GenerateErdosRenyi(200, 1200, 7);
  const size_t target = 6000;
  std::vector<float> pass(base.num_nodes(), 0.6f);
  for (int scheme = 0; scheme < 3; ++scheme) {
    Graph g = base;
    if (scheme == 0) {
      g.ApplyWeightedCascade();
    } else if (scheme == 1) {
      g.ApplyConstantProbability(0.04);
    } else {
      g.ApplyTrivalency({0.05, 0.01, 0.002}, 21);
    }
    for (bool lt : {false, true}) {
      for (bool coins : {false, true}) {
        RrOptions scan_opt = KernelOpt(SamplingKernel::kScan);
        scan_opt.linear_threshold = lt;
        if (coins) scan_opt.node_pass_prob = &pass;
        RrOptions skip_opt = scan_opt;
        skip_opt.kernel = SamplingKernel::kSkip;
        RrCollection scan_pool(g, 42, 4, scan_opt);
        RrCollection skip_pool(g, 42, 4, skip_opt);
        scan_pool.GenerateUntil(target);
        skip_pool.GenerateUntil(target);
        const double mean_scan =
            static_cast<double>(scan_pool.TotalNodes()) / target;
        const double mean_skip =
            static_cast<double>(skip_pool.TotalNodes()) / target;
        EXPECT_NEAR(mean_skip, mean_scan, 0.12 * mean_scan + 0.05)
            << "scheme=" << scheme << " lt=" << lt << " coins=" << coins;
        // Per-node coverage rates (live in-degree of the root-of-v RR
        // world): compare the busiest nodes, where the estimate is tight.
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          const double a =
              static_cast<double>(scan_pool.IndexDegree(v)) / target;
          const double b =
              static_cast<double>(skip_pool.IndexDegree(v)) / target;
          if (a < 0.05 && b < 0.05) continue;
          ASSERT_NEAR(b, a, 0.25 * a + 0.02)
              << "node " << v << " scheme=" << scheme << " lt=" << lt
              << " coins=" << coins;
        }
      }
    }
  }
}

// --- forward-simulation kernel -----------------------------------------

TEST(ForwardKernel, EstimateSpreadMatchesScanWithinTolerance) {
  Graph g = GenerateErdosRenyi(200, 1200, 7);
  g.ApplyWeightedCascade();
  const std::vector<NodeId> seeds = {3, 17, 42};
  const double scan =
      EstimateSpread(g, seeds, 40000, 11, 4, SamplingKernel::kScan);
  const double skip =
      EstimateSpread(g, seeds, 40000, 11, 4, SamplingKernel::kSkip);
  EXPECT_NEAR(skip, scan, 0.05 * scan + 0.1);
}

TEST(ForwardKernel, CertainEdgesReachEverythingUnderBothKernels) {
  Graph g = GenerateLayeredDag(4, 5, 1.0);
  const std::vector<NodeId> seeds = {0};
  const double scan = EstimateSpread(g, seeds, 64, 1, 2, SamplingKernel::kScan);
  const double skip = EstimateSpread(g, seeds, 64, 1, 2, SamplingKernel::kSkip);
  EXPECT_EQ(scan, skip);  // deterministic diffusion: every run identical
}

}  // namespace
}  // namespace uic
