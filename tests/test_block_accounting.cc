#include "welfare/block_accounting.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "items/supermodular_generators.h"

namespace uic {
namespace {

/// Three items with an explicit utility table indexed by mask
/// (i1 = bit 0, i2 = bit 1, i3 = bit 2) and zero prices/noise so the
/// utility IS the value.
ItemParams ExplicitUtilities(std::vector<double> utilities) {
  const ItemId k = 3;
  const std::vector<double> prices(k, 0.0);
  auto value =
      std::make_shared<TabularValueFunction>(k, std::move(utilities));
  return ItemParams(std::move(value), prices, NoiseModel::Zero(k));
}

// Example 1: with b1 >= b2 >= b3, the precedence order is
// {i1}, {i2}, {i1,i2}, {i3}, {i1,i3}, {i2,i3}, {i1,i2,i3}.
TEST(PrecedenceOrder, MatchesExample1) {
  const std::vector<uint32_t> rank = {0, 1, 2};  // item i == rank i
  const std::vector<ItemSet> expected = {
      0b001, 0b010, 0b011, 0b100, 0b101, 0b110, 0b111};
  for (size_t a = 0; a < expected.size(); ++a) {
    for (size_t b = 0; b < expected.size(); ++b) {
      EXPECT_EQ(PrecedesInBlockOrder(expected[a], expected[b], rank), a < b)
          << ItemSetToString(expected[a]) << " vs "
          << ItemSetToString(expected[b]);
    }
  }
}

TEST(PrecedenceOrder, Property1SubsetsPrecedeSupersets) {
  const std::vector<uint32_t> rank = {0, 1, 2, 3};
  for (ItemSet s = 1; s < 16; ++s) {
    ForEachSubset(s, [&](ItemSet t) {
      if (t == 0 || t == s) return;
      EXPECT_TRUE(PrecedesInBlockOrder(t, s, rank));
    });
  }
}

TEST(PrecedenceOrder, Property1LowerHighestIndexPrecedes) {
  const std::vector<uint32_t> rank = {0, 1, 2, 3};
  // Every set with highest item i2 precedes every set with highest i3.
  EXPECT_TRUE(PrecedesInBlockOrder(0b011, 0b100, rank));
  EXPECT_TRUE(PrecedesInBlockOrder(0b011, 0b1100, rank));
  EXPECT_TRUE(PrecedesInBlockOrder(0b111, 0b1000, rank));
}

TEST(PrecedenceOrder, RespectsBudgetRankNotItemIndex) {
  // If item 2 has the largest budget, it plays the role of "i1".
  const std::vector<uint32_t> rank = {2, 1, 0};  // item2 -> rank 0
  EXPECT_TRUE(PrecedesInBlockOrder(ItemBit(2), ItemBit(0), rank));
}

// Example 2: U(i1)=U(i2)=U(i3)=U(i1,i2)=-1, U(i1,i3)=U(i2,i3)=1,
// U(i1,i2,i3)=4 → blocks B1={i1,i3}, B2={i2}, Δ=(1, 3).
TEST(BlockGeneration, MatchesExample2) {
  ItemParams params = ExplicitUtilities(
      {0.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0, 4.0});
  const UtilityTable table(params);
  ASSERT_EQ(table.GlobalOptimum(), 0b111u);
  const std::vector<uint32_t> budgets = {30, 20, 10};  // b1 > b2 > b3
  const BlockDecomposition d = GenerateBlocks(table, budgets);
  ASSERT_EQ(d.num_blocks(), 2u);
  EXPECT_EQ(d.blocks[0], 0b101u);  // {i1, i3}
  EXPECT_EQ(d.blocks[1], 0b010u);  // {i2}
  EXPECT_DOUBLE_EQ(d.deltas[0], 1.0);
  EXPECT_DOUBLE_EQ(d.deltas[1], 3.0);
}

// Example 3: effective budget of B2 is b3 (the min over B1 ∪ B2).
TEST(BlockGeneration, EffectiveBudgetsMatchExample3) {
  ItemParams params = ExplicitUtilities(
      {0.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0, 4.0});
  const UtilityTable table(params);
  const std::vector<uint32_t> budgets = {30, 20, 10};
  const BlockDecomposition d = GenerateBlocks(table, budgets);
  ASSERT_EQ(d.num_blocks(), 2u);
  EXPECT_EQ(d.effective_budgets[0], 10u);  // B1 contains i3
  EXPECT_EQ(d.effective_budgets[1], 10u);
}

// Example 4: both blocks anchor at B1; the anchor item is i3.
TEST(BlockGeneration, AnchorsMatchExample4) {
  ItemParams params = ExplicitUtilities(
      {0.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0, 4.0});
  const UtilityTable table(params);
  const std::vector<uint32_t> budgets = {30, 20, 10};
  const BlockDecomposition d = GenerateBlocks(table, budgets);
  ASSERT_EQ(d.num_blocks(), 2u);
  EXPECT_EQ(d.anchor_block[0], 0u);
  EXPECT_EQ(d.anchor_block[1], 0u);
  EXPECT_EQ(d.anchor_items[0], 2u);  // i3 (item index 2)
  EXPECT_EQ(d.anchor_items[1], 2u);
}

TEST(BlockGeneration, EmptyWhenNothingProfitable) {
  ItemParams params = ExplicitUtilities(
      {0.0, -1.0, -1.0, -1.5, -1.0, -1.5, -1.5, -2.0});
  const UtilityTable table(params);
  const BlockDecomposition d = GenerateBlocks(table, {5, 5, 5});
  EXPECT_EQ(d.optimal_itemset, 0u);
  EXPECT_EQ(d.num_blocks(), 0u);
}

TEST(BlockGeneration, ItemsOutsideOptimumAreExcluded) {
  // i3 is pure poison: I* = {i1, i2}.
  ItemParams params = ExplicitUtilities(
      {0.0, 1.0, 1.0, 3.0, -10.0, -9.5, -9.5, -8.0});
  const UtilityTable table(params);
  const BlockDecomposition d = GenerateBlocks(table, {5, 5, 5});
  EXPECT_EQ(d.optimal_itemset, 0b011u);
  ItemSet all = 0;
  for (ItemSet b : d.blocks) all |= b;
  EXPECT_EQ(all, 0b011u);
}

// Property tests over random supermodular utility worlds.
class BlockPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockPropertyTest, BlocksPartitionOptimumWithNonNegativeDeltas) {
  Rng rng(GetParam());
  const ItemId k = 5;
  auto value = MakeRandomSupermodularValue(k, rng, 0.2, 2.0, 1.0);
  std::vector<double> prices(k);
  for (auto& p : prices) p = rng.NextUniform(0.5, 3.0);
  ItemParams params(value, prices, NoiseModel::Zero(k));
  std::vector<double> noise(k);
  for (auto& x : noise) x = rng.NextGaussian(0.0, 1.0);
  const UtilityTable table(params, noise);

  std::vector<uint32_t> budgets(k);
  for (auto& b : budgets) b = 1 + static_cast<uint32_t>(rng.NextBounded(50));
  const BlockDecomposition d = GenerateBlocks(table, budgets);

  // Partition of I*.
  ItemSet unioned = 0;
  for (size_t i = 0; i < d.num_blocks(); ++i) {
    EXPECT_EQ(unioned & d.blocks[i], 0u) << "blocks overlap";
    unioned |= d.blocks[i];
  }
  EXPECT_EQ(unioned, d.optimal_itemset);

  // Property 2: Δi >= 0 and Σ Δi = U(I*).
  double sum = 0.0;
  for (size_t i = 0; i < d.num_blocks(); ++i) {
    EXPECT_GE(d.deltas[i], 0.0);
    // Δi really is the marginal utility of the block.
    EXPECT_NEAR(d.deltas[i],
                table.Utility(d.PrefixUnion(i + 1)) -
                    table.Utility(d.PrefixUnion(i)),
                1e-9);
    sum += d.deltas[i];
  }
  EXPECT_NEAR(sum, table.Utility(d.optimal_itemset), 1e-9);

  // Effective budgets are non-increasing and match min over prefix.
  for (size_t i = 0; i < d.num_blocks(); ++i) {
    uint32_t mn = UINT32_MAX;
    ForEachItem(d.PrefixUnion(i + 1),
                [&](ItemId it) { mn = std::min(mn, budgets[it]); });
    EXPECT_EQ(d.effective_budgets[i], mn);
    if (i > 0) {
      EXPECT_LE(d.effective_budgets[i], d.effective_budgets[i - 1]);
    }
  }

  // Anchor item budget equals the effective budget (by definition).
  for (size_t i = 0; i < d.num_blocks(); ++i) {
    EXPECT_EQ(budgets[d.anchor_items[i]], d.effective_budgets[i]);
    EXPECT_LE(d.anchor_block[i], i);
  }
}

// Property 3: for any subset A ⊆ I*, Δ^A_i <= Δ_i.
TEST_P(BlockPropertyTest, PartialBlockMarginalsAreDominated) {
  Rng rng(GetParam() ^ 0x5a5a);
  const ItemId k = 4;
  auto value = MakeRandomSupermodularValue(k, rng, 0.2, 2.0, 1.0);
  std::vector<double> prices(k);
  for (auto& p : prices) p = rng.NextUniform(0.5, 3.0);
  ItemParams params(value, prices, NoiseModel::Zero(k));
  std::vector<double> noise(k);
  for (auto& x : noise) x = rng.NextGaussian(0.0, 1.0);
  const UtilityTable table(params, noise);

  std::vector<uint32_t> budgets(k);
  for (auto& b : budgets) b = 1 + static_cast<uint32_t>(rng.NextBounded(20));
  const BlockDecomposition d = GenerateBlocks(table, budgets);
  if (d.num_blocks() == 0) return;

  ForEachSubset(d.optimal_itemset, [&](ItemSet a) {
    double sum = 0.0;
    ItemSet prefix_a = 0;
    for (size_t i = 0; i < d.num_blocks(); ++i) {
      const ItemSet ai = a & d.blocks[i];
      const double delta_a =
          table.Utility(prefix_a | ai) - table.Utility(prefix_a);
      EXPECT_LE(delta_a, d.deltas[i] + 1e-9);
      prefix_a |= ai;
      sum += delta_a;
    }
    // The per-block marginals of A telescope to U(A).
    EXPECT_NEAR(sum, table.Utility(a), 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace uic
