#!/bin/sh
# SIGTERM-during-active-solve drain test for uic_served (pipe mode).
#
# Arms the post-admission delay failpoint through the UIC_FAILPOINTS
# environment variable (which also end-to-end tests env activation), pins
# a solve in flight for 1.5s, and sends SIGTERM mid-solve. The drain
# contract: the in-flight response is still delivered and the daemon
# exits 0 — a signal never truncates an answered request.
#
# Usage: sigterm_drain_test.sh <uic_served-binary> <work-dir>
set -eu

SERVED="$1"
WORK="$2"
cd "$WORK"

rm -f sigterm_in.fifo sigterm_out.jsonl
mkfifo sigterm_in.fifo

UIC_FAILPOINTS='serve.solve.admitted=delay_ms(1500)' \
    "$SERVED" --no-timing < sigterm_in.fifo > sigterm_out.jsonl &
pid=$!

# Keep the fifo's write end open for the daemon's whole life so the
# reader sees SIGTERM, not EOF.
exec 3> sigterm_in.fifo
printf '%s\n' \
    '{"id":1,"verb":"load_graph","name":"g","network":"er","nodes":300,"edges":1500}' \
    '{"id":2,"verb":"load_params","name":"p","config":"config12"}' \
    '{"id":3,"verb":"solve","graph":"g","params":"p","budgets":[3,3],"seed":4,"eval_sims":100}' \
    >&3

# Let the solve get admitted and into its injected 1.5s delay, then
# signal mid-solve.
sleep 0.6
kill -TERM "$pid"
exec 3>&-

status=0
wait "$pid" || status=$?

if [ "$status" -ne 0 ]; then
    echo "FAIL: uic_served exited $status after SIGTERM (want 0)"
    cat sigterm_out.jsonl
    exit 1
fi
if ! grep -q '"id":3,"ok":true' sigterm_out.jsonl; then
    echo "FAIL: in-flight solve response was not delivered before exit"
    cat sigterm_out.jsonl
    exit 1
fi
echo "PASS: SIGTERM mid-solve drained cleanly; in-flight response delivered"
