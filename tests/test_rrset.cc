#include "rrset/rr_collection.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "rrset/node_selection.h"

namespace uic {
namespace {

Graph Chain(int n, double p) {
  GraphBuilder builder(n);
  for (int i = 0; i + 1 < n; ++i) builder.AddEdge(i, i + 1, p);
  return builder.Build().MoveValue();
}

TEST(RrSampler, CertainChainCollectsAllAncestors) {
  Graph g = Chain(5, 1.0);
  RrSampler sampler(g);
  Rng rng(1);
  std::vector<NodeId> rr;
  sampler.SampleRootedInto(4, rng, &rr);
  std::sort(rr.begin(), rr.end());
  EXPECT_EQ(rr, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(RrSampler, BlockedChainIsJustTheRoot) {
  Graph g = Chain(5, 0.0);
  RrSampler sampler(g);
  Rng rng(2);
  std::vector<NodeId> rr;
  sampler.SampleRootedInto(3, rng, &rr);
  EXPECT_EQ(rr, (std::vector<NodeId>{3}));
}

TEST(RrSampler, ReportsEdgesExamined) {
  Graph g = Chain(5, 1.0);
  RrSampler sampler(g);
  Rng rng(3);
  std::vector<NodeId> rr;
  const size_t edges = sampler.SampleRootedInto(4, rng, &rr);
  EXPECT_EQ(edges, 4u);  // each node on the path has one in-edge
}

TEST(RrSampler, NodePassProbabilityZeroRejectsRoot) {
  Graph g = Chain(3, 1.0);
  std::vector<float> pass(3, 0.0f);
  RrOptions options;
  options.node_pass_prob = &pass;
  RrSampler sampler(g, options);
  Rng rng(4);
  std::vector<NodeId> rr;
  sampler.SampleRootedInto(2, rng, &rr);
  EXPECT_TRUE(rr.empty());
}

TEST(RrSampler, NodePassProbabilityOneIsTransparent) {
  Graph g = Chain(3, 1.0);
  std::vector<float> pass(3, 1.0f);
  RrOptions options;
  options.node_pass_prob = &pass;
  RrSampler sampler(g, options);
  Rng rng(5);
  std::vector<NodeId> rr;
  sampler.SampleRootedInto(2, rng, &rr);
  EXPECT_EQ(rr.size(), 3u);
}

TEST(RrSampler, NodePassBlocksTraversalThroughRejectedNode) {
  // 0 -> 1 -> 2 with certain edges, but node 1 never passes: an RR set
  // rooted at 2 must not contain 0 (unreachable through rejected 1).
  Graph g = Chain(3, 1.0);
  std::vector<float> pass = {1.0f, 0.0f, 1.0f};
  RrOptions options;
  options.node_pass_prob = &pass;
  RrSampler sampler(g, options);
  Rng rng(6);
  std::vector<NodeId> rr;
  sampler.SampleRootedInto(2, rng, &rr);
  EXPECT_EQ(rr, (std::vector<NodeId>{2}));
}

TEST(RrCollection, GrowsToTargetAndIsDeterministic) {
  Graph g = GenerateErdosRenyi(100, 600, 7);
  g.ApplyWeightedCascade();
  RrCollection a(g, 42, 4);
  a.GenerateUntil(500);
  EXPECT_GE(a.size(), 500u);
  RrCollection b(g, 42, 4);
  b.GenerateUntil(200);
  b.GenerateUntil(500);  // incremental growth reaches the same pool
  ASSERT_EQ(a.size(), b.size());
  // Content equality would require identical growth schedules; sizes and
  // totals must at least be reproducible for the same schedule:
  RrCollection c(g, 42, 4);
  c.GenerateUntil(500);
  EXPECT_EQ(a.TotalNodes(), c.TotalNodes());
  for (size_t r = 0; r < a.size(); ++r) {
    auto sa = a.Set(r);
    auto sc = c.Set(r);
    ASSERT_EQ(sa.size(), sc.size());
    for (size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sc[i]);
  }
}

TEST(RrCollection, ClearResetsPool) {
  Graph g = GenerateErdosRenyi(50, 200, 8);
  RrCollection pool(g, 1, 2);
  pool.GenerateUntil(100);
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.TotalNodes(), 0u);
  pool.GenerateUntil(10);
  EXPECT_GE(pool.size(), 10u);
}

TEST(RrCollection, CoverageEstimatesSpread) {
  // σ(S) = n · E[S covers R]. Two-node graph 0 ->(0.5) 1:
  // σ({0}) = 1.5, so node 0 should appear in 3/4 of RR sets
  // (root=0 always, root=1 with prob 0.5), i.e. coverage 0.75.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.5);
  Graph g = builder.Build().MoveValue();
  RrCollection pool(g, 9, 2);
  pool.GenerateUntil(100000);
  size_t covered = 0;
  for (size_t r = 0; r < pool.size(); ++r) {
    for (NodeId v : pool.Set(r)) {
      if (v == 0) {
        ++covered;
        break;
      }
    }
  }
  const double frac = static_cast<double>(covered) / pool.size();
  EXPECT_NEAR(2.0 * frac, 1.5, 0.02);  // n * coverage ≈ σ
}

TEST(NodeSelection, PicksGreedyMaxCover) {
  // Star graph: hub 0 points to everyone with p=1, so every RR set
  // contains the hub; greedy must pick it first.
  const NodeId n = 20;
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.AddEdge(0, v, 1.0);
  Graph g = builder.Build().MoveValue();
  RrCollection pool(g, 10, 2);
  pool.GenerateUntil(2000);
  const SeedSelection sel = NodeSelection(pool, 3);
  ASSERT_GE(sel.seeds.size(), 1u);
  EXPECT_EQ(sel.seeds[0], 0u);
  EXPECT_DOUBLE_EQ(sel.coverage[0], 1.0);  // hub covers every RR set
}

TEST(NodeSelection, CoverageIsNonDecreasing) {
  Graph g = GenerateErdosRenyi(200, 1200, 11);
  g.ApplyWeightedCascade();
  RrCollection pool(g, 12, 4);
  pool.GenerateUntil(3000);
  const SeedSelection sel = NodeSelection(pool, 20);
  ASSERT_EQ(sel.seeds.size(), 20u);
  for (size_t i = 1; i < sel.coverage.size(); ++i) {
    EXPECT_GE(sel.coverage[i], sel.coverage[i - 1]);
  }
}

TEST(NodeSelection, GreedyMatchesExhaustiveFirstPick) {
  Graph g = GenerateErdosRenyi(60, 400, 13);
  g.ApplyWeightedCascade();
  RrCollection pool(g, 14, 2);
  pool.GenerateUntil(1000);
  const SeedSelection sel = NodeSelection(pool, 1);
  // Exhaustively find the max-cover single node.
  size_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    size_t c = 0;
    for (size_t r = 0; r < pool.size(); ++r) {
      for (NodeId w : pool.Set(r)) {
        if (w == v) {
          ++c;
          break;
        }
      }
    }
    best = std::max(best, c);
  }
  EXPECT_DOUBLE_EQ(sel.coverage[0],
                   static_cast<double>(best) / pool.size());
}

TEST(NodeSelection, ExclusionIsRespected) {
  const NodeId n = 20;
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.AddEdge(0, v, 1.0);
  Graph g = builder.Build().MoveValue();
  RrCollection pool(g, 15, 2);
  pool.GenerateUntil(500);
  const SeedSelection sel = NodeSelection(pool, 3, /*excluded=*/{0});
  for (NodeId s : sel.seeds) EXPECT_NE(s, 0u);
}

TEST(NodeSelection, PadsToKWhenGainsExhaust) {
  // Graph with no edges: every RR set is a singleton root; k larger than
  // distinct roots still yields k seeds.
  GraphBuilder builder(10);
  Graph g = builder.Build().MoveValue();
  RrCollection pool(g, 16, 2);
  pool.GenerateUntil(50);
  const SeedSelection sel = NodeSelection(pool, 10);
  EXPECT_EQ(sel.seeds.size(), 10u);
  // All seeds distinct.
  std::vector<NodeId> sorted = sel.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(NodeSelection, PrefixConsistency) {
  // NodeSelection(R, k) must equal the k-prefix of NodeSelection(R, K)
  // for K > k — the property PRIMA's budget switching relies on.
  Graph g = GenerateErdosRenyi(150, 900, 17);
  g.ApplyWeightedCascade();
  RrCollection pool(g, 18, 4);
  pool.GenerateUntil(2000);
  const SeedSelection big = NodeSelection(pool, 25);
  const SeedSelection small = NodeSelection(pool, 10);
  ASSERT_GE(big.seeds.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(big.seeds[i], small.seeds[i]) << "at position " << i;
  }
}

}  // namespace
}  // namespace uic
