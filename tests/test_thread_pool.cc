#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "common/parallel.h"

namespace uic {
namespace {

/// The partition the legacy fork-join ParallelFor produced; the pool must
/// reproduce it exactly — per-worker RNG streams make the (worker, begin,
/// end) triples part of the determinism contract.
std::vector<std::tuple<unsigned, size_t, size_t>> LegacyPartition(
    size_t n, unsigned workers) {
  std::vector<std::tuple<unsigned, size_t, size_t>> chunks;
  if (n == 0) return chunks;
  if (workers <= 1 || n < 2) {
    chunks.emplace_back(0, 0, n);
    return chunks;
  }
  if (workers > n) workers = static_cast<unsigned>(n);
  const size_t chunk = (n + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const size_t begin = static_cast<size_t>(w) * chunk;
    const size_t end = begin + chunk < n ? begin + chunk : n;
    if (begin >= end) break;
    chunks.emplace_back(w, begin, end);
  }
  return chunks;
}

std::vector<std::tuple<unsigned, size_t, size_t>> PoolPartition(
    ThreadPool& pool, size_t n, unsigned workers) {
  std::mutex m;
  std::vector<std::tuple<unsigned, size_t, size_t>> chunks;
  pool.ParallelFor(n, workers, [&](unsigned w, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(m);
    chunks.emplace_back(w, begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST(ThreadPool, PartitionMatchesLegacyForkJoin) {
  ThreadPool pool(4);
  for (size_t n : {0ul, 1ul, 2ul, 3ul, 7ul, 8ul, 9ul, 100ul, 1001ul}) {
    for (unsigned w : {0u, 1u, 2u, 3u, 4u, 7u, 8u, 16u}) {
      EXPECT_EQ(PoolPartition(pool, n, w), LegacyPartition(n, w))
          << "n=" << n << " workers=" << w;
    }
  }
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(n, 8, [&](unsigned, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ReusedAcrossManyRoundsWithoutRespawning) {
  // Steady-state contract: many small rounds on one pool. (That no threads
  // are spawned per round is structural — the pool's threads are created
  // once in the constructor — so this exercises queue reuse correctness.)
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(64, 4, [&](unsigned, size_t begin, size_t end) {
      total.fetch_add(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 200u * 64u);
}

TEST(ThreadPool, MoreLogicalWorkersThanThreads) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(1000, 16, [&](unsigned, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < 1000; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(4, 4, [&](unsigned, size_t, size_t) {
    // A nested call must not wait on the pool's own queue.
    pool.ParallelFor(100, 4, [&](unsigned, size_t begin, size_t end) {
      inner_total.fetch_add(end - begin);
    });
  });
  EXPECT_EQ(inner_total.load(), 4u * 100u);
}

TEST(ThreadPool, ConcurrentCallersFromDistinctThreads) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        pool.ParallelFor(128, 4, [&](unsigned, size_t begin, size_t end) {
          total.fetch_add(end - begin);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4u * 50u * 128u);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared().num_threads(), 1u);
}

TEST(ThreadPool, FreeParallelForDelegatesToSharedPool) {
  std::atomic<size_t> total{0};
  ParallelFor(777, 4, [&](unsigned, size_t begin, size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 777u);
}

}  // namespace
}  // namespace uic
