#include "graph/graph.h"

#include <gtest/gtest.h>

#include <fstream>

#include "graph/generators.h"
#include "graph/loaders.h"
#include "graph/subgraph.h"

namespace uic {
namespace {

/// FNV-1a over the edge list of GeneratePreferentialAttachment(300, 3,
/// false, 11); recompute with the loop in the test below if the generator
/// intentionally changes.
constexpr uint64_t kPreferentialAttachmentGoldenHash = 0x076d003484cc1491ULL;

TEST(GraphBuilder, BuildsCsrBothDirections) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 0.5);
  builder.AddEdge(0, 2, 0.25);
  builder.AddEdge(2, 1, 1.0);
  auto result = builder.Build();
  ASSERT_TRUE(result.ok());
  const Graph& g = result.value();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  EXPECT_EQ(g.OutNeighbors(0)[1], 2u);
  EXPECT_FLOAT_EQ(g.OutProbs(0)[0], 0.5f);
  EXPECT_EQ(g.InNeighbors(1).size(), 2u);
  EXPECT_EQ(g.OutDegree(3), 0u);
}

TEST(GraphBuilder, IgnoresSelfLoopsAndDeduplicates) {
  GraphBuilder builder(3);
  builder.AddEdge(1, 1, 0.9);
  builder.AddEdge(0, 1, 0.2);
  builder.AddEdge(0, 1, 0.7);  // duplicate: max prob wins
  auto result = builder.Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_edges(), 1u);
  EXPECT_FLOAT_EQ(result.value().OutProbs(0)[0], 0.7f);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoint) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 5);
  auto result = builder.Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(Graph, WeightedCascadeAssignsInverseInDegree) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 3);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  builder.AddEdge(0, 1);
  auto result = builder.Build();
  ASSERT_TRUE(result.ok());
  Graph g = result.MoveValue();
  g.ApplyWeightedCascade();
  for (float p : g.InProbs(3)) EXPECT_FLOAT_EQ(p, 1.0f / 3.0f);
  EXPECT_FLOAT_EQ(g.InProbs(1)[0], 1.0f);
  // Forward mirror agrees.
  EXPECT_FLOAT_EQ(g.OutProbs(1)[0], 1.0f / 3.0f);  // edge (1,3)
}

TEST(Graph, ConstantProbability) {
  Graph g = GenerateErdosRenyi(50, 200, 1);
  g.ApplyConstantProbability(0.01);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (float p : g.OutProbs(v)) EXPECT_FLOAT_EQ(p, 0.01f);
  }
}

TEST(Graph, TrivalencyConsistentAcrossDirections) {
  Graph g = GenerateErdosRenyi(60, 300, 2);
  g.ApplyTrivalency({0.1, 0.01, 0.001}, 77);
  // Forward and reverse arrays must agree per edge.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto in = g.InNeighbors(v);
    auto in_p = g.InProbs(v);
    for (size_t k = 0; k < in.size(); ++k) {
      const NodeId u = in[k];
      auto out = g.OutNeighbors(u);
      auto out_p = g.OutProbs(u);
      bool found = false;
      for (size_t j = 0; j < out.size(); ++j) {
        if (out[j] == v) {
          EXPECT_FLOAT_EQ(out_p[j], in_p[k]);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(Generators, ErdosRenyiHasRequestedEdges) {
  Graph g = GenerateErdosRenyi(100, 500, 3);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(Generators, PreferentialAttachmentUndirectedIsSymmetric) {
  Graph g = GeneratePreferentialAttachment(500, 3, /*undirected=*/true, 4);
  EXPECT_EQ(g.num_nodes(), 500u);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.OutDegree(u), g.InDegree(u));
  }
}

TEST(Generators, PreferentialAttachmentIsHeavyTailed) {
  Graph g = GeneratePreferentialAttachment(2000, 4, /*undirected=*/false, 5);
  uint32_t max_in = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  // The hubs should far exceed the average in-degree.
  EXPECT_GT(max_in, 10 * g.AverageDegree());
}

// Regression for the UIC-L006 fix in GeneratePreferentialAttachment: the
// per-node target picks used to be emitted in unordered_set hash order,
// tying the generated graph (and the interleaved back-edge coin flips) to
// the standard library's hash implementation. Edges now come out in RNG
// draw order, so the topology is a pure function of the seed and this
// golden hash must hold on every platform.
TEST(Generators, PreferentialAttachmentIsAPureFunctionOfTheSeed) {
  const Graph g = GeneratePreferentialAttachment(300, 3, false, 11);
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(g.num_nodes());
  mix(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) mix((uint64_t{u} << 32) | v);
  }
  EXPECT_EQ(h, kPreferentialAttachmentGoldenHash);
}

TEST(Generators, GridHasExpectedStructure) {
  Graph g = GenerateGrid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // Interior node (1,1) = id 5 has 4 undirected neighbors.
  EXPECT_EQ(g.OutDegree(5), 4u);
  EXPECT_EQ(g.InDegree(5), 4u);
}

TEST(Generators, LayeredDagIsAcyclicByConstruction) {
  Graph g = GenerateLayeredDag(3, 2, 1.0);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 8u);  // 2 layers of 2x2 complete bipartite
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.OutDegree(5), 0u);
}

// Pins the exact topology a seeded generator produces (as an order-sensitive
// FNV-style hash over the CSR edge list). Seeded generators draw only from
// uic::Rng, so the result must be bit-identical across platforms and runs;
// a change here breaks reproducibility of every seeded experiment.
TEST(Generators, ErdosRenyiPinnedTopologyForSeed) {
  Graph g = GenerateErdosRenyi(50, 200, 7);
  ASSERT_EQ(g.num_nodes(), 50u);
  ASSERT_EQ(g.num_edges(), 200u);
  uint64_t h = 1469598103934665603ULL;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      h ^= u * 1000003ULL + v;
      h *= 1099511628211ULL;
    }
  }
  EXPECT_EQ(h, 0x05d7d4ce3efe235aULL);
}

TEST(Loaders, ParsesEdgeListWithCommentsAndProbs) {
  const std::string text =
      "# a comment\n"
      "0 1 0.5\n"
      "1 2 0.25\n"
      "% another comment\n"
      "2 0 1.0\n";
  EdgeListOptions options;
  options.read_probability = true;
  auto result = ParseEdgeList(text, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_nodes(), 3u);
  EXPECT_EQ(result.value().num_edges(), 3u);
  EXPECT_FLOAT_EQ(result.value().OutProbs(0)[0], 0.5f);
}

TEST(Loaders, RemapsSparseIds) {
  auto result = ParseEdgeList("1000 2000\n2000 3000\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_nodes(), 3u);
}

TEST(Loaders, UndirectedAddsBothDirections) {
  EdgeListOptions options;
  options.undirected = true;
  auto result = ParseEdgeList("0 1\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_edges(), 2u);
}

TEST(Loaders, RejectsMalformedLine) {
  auto result = ParseEdgeList("0 x\n");
  EXPECT_FALSE(result.ok());
}

TEST(Loaders, RejectsOutOfRangeProbability) {
  EdgeListOptions options;
  options.read_probability = true;
  auto result = ParseEdgeList("0 1 1.5\n", options);
  EXPECT_FALSE(result.ok());
}

// --- error-path coverage: every bad input is a clean Status, never a
// crash or a silently corrupted graph (ISSUE 4) -------------------------

TEST(Loaders, MalformedLinesNameTheOffendingLine) {
  for (const char* text : {"0\n", "a b\n", "0 1\n1\n", "0 1\n- 2\n"}) {
    auto result = ParseEdgeList(text);
    ASSERT_FALSE(result.ok()) << "input: " << text;
    EXPECT_EQ(result.status().code(), Status::Code::kIOError) << text;
    EXPECT_NE(result.status().message().find("line"), std::string::npos)
        << text;
  }
  // A missing third column is malformed when probabilities are expected.
  EdgeListOptions with_probs;
  with_probs.read_probability = true;
  auto result = ParseEdgeList("0 1 0.5\n1 2\n", with_probs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(Loaders, RejectsOutOfRangeNodeIdsWithoutRemap) {
  // Without remapping a raw id is the node id; 2^40 would previously be
  // silently truncated by the uint32 cast. Now: clean OutOfRange.
  EdgeListOptions options;
  options.remap_ids = false;
  auto result = ParseEdgeList("0 1099511627776\n", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kOutOfRange);
  // The same id is fine when remapping is on.
  EXPECT_TRUE(ParseEdgeList("0 1099511627776\n").ok());
}

TEST(Loaders, DuplicateEdgesTolerantByDefaultRejectedWhenStrict) {
  const std::string text = "0 1\n1 2\n0 1\n";
  auto tolerant = ParseEdgeList(text);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_EQ(tolerant.value().num_edges(), 2u);  // deduplicated

  EdgeListOptions strict;
  strict.reject_duplicate_edges = true;
  auto rejected = ParseEdgeList(text, strict);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("line 3"), std::string::npos);

  // The undirected mirror of an already-seen edge counts as a duplicate.
  EdgeListOptions strict_undirected = strict;
  strict_undirected.undirected = true;
  auto mirrored = ParseEdgeList("0 1\n1 0\n", strict_undirected);
  ASSERT_FALSE(mirrored.ok());
  EXPECT_EQ(mirrored.status().code(), Status::Code::kInvalidArgument);
}

TEST(Loaders, SelfLoopsTolerantByDefaultRejectedWhenStrict) {
  const std::string text = "0 1\n1 1\n";
  auto tolerant = ParseEdgeList(text);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_EQ(tolerant.value().num_edges(), 1u);  // loop dropped

  EdgeListOptions strict;
  strict.reject_self_loops = true;
  auto rejected = ParseEdgeList(text, strict);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("self-loop"), std::string::npos);
}

TEST(Loaders, EdgeFreeInputIsAnErrorWithAndWithoutRemap) {
  for (const bool remap : {true, false}) {
    EdgeListOptions options;
    options.remap_ids = remap;
    for (const char* text : {"", "# only comments\n% here\n"}) {
      auto result = ParseEdgeList(text, options);
      ASSERT_FALSE(result.ok()) << "remap=" << remap;
      EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
    }
  }
}

TEST(Loaders, LoadEdgeListSurfacesFileAndParseErrors) {
  auto missing = LoadEdgeList("/nonexistent/uic-no-such-file.txt");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kIOError);

  const std::string path = "/tmp/uic_test_bad_edges.txt";
  {
    std::ofstream out(path);
    out << "0 1\nbroken line\n";
  }
  EdgeListOptions options;
  auto parsed = LoadEdgeList(path, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(Loaders, RoundTripsThroughSaveAndLoad) {
  Graph g = GenerateErdosRenyi(40, 100, 6);
  g.ApplyWeightedCascade();
  const std::string path = "/tmp/uic_test_roundtrip.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  EdgeListOptions options;
  options.read_probability = true;
  options.remap_ids = false;
  auto loaded = LoadEdgeList(path, options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.value().num_edges(), g.num_edges());
}

TEST(Subgraph, BfsInducedSubgraphKeepsInternalEdges) {
  Graph g = GenerateGrid(5, 5);
  Graph sub = BfsInducedSubgraph(g, 0, 10);
  EXPECT_EQ(sub.num_nodes(), 10u);
  EXPECT_GT(sub.num_edges(), 0u);
}

TEST(Subgraph, FullBfsSubgraphEqualsOriginalSize) {
  Graph g = GenerateErdosRenyi(80, 400, 7);
  Graph sub = BfsInducedSubgraph(g, 0, 1000);  // clamped to n
  EXPECT_EQ(sub.num_nodes(), g.num_nodes());
  EXPECT_EQ(sub.num_edges(), g.num_edges());
}

TEST(Subgraph, InducedSubgraphRespectsNodeList) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 0.5);
  builder.AddEdge(1, 2, 0.5);
  builder.AddEdge(2, 3, 0.5);
  Graph g = builder.Build().MoveValue();
  Graph sub = InducedSubgraph(g, {1, 2});
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_EQ(sub.num_edges(), 1u);  // only (1,2) survives
}

}  // namespace
}  // namespace uic
