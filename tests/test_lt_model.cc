#include "diffusion/lt_model.h"

#include <gtest/gtest.h>

#include "core/bundle_grd.h"
#include "exp/configs.h"
#include "graph/generators.h"
#include "items/supermodular_generators.h"
#include "rrset/rr_collection.h"

namespace uic {
namespace {

Graph Chain(int n, double w) {
  GraphBuilder builder(n);
  for (int i = 0; i + 1 < n; ++i) builder.AddEdge(i, i + 1, w);
  return builder.Build().MoveValue();
}

TEST(LtSimulator, WeightOneChainActivatesEverything) {
  Graph g = Chain(6, 1.0);
  LtSimulator sim(g);
  Rng rng(1);
  EXPECT_EQ(sim.RunOnce({0}, rng), 6u);
}

TEST(LtSimulator, WeightZeroChainActivatesOnlySeeds) {
  Graph g = Chain(6, 0.0);
  LtSimulator sim(g);
  Rng rng(2);
  EXPECT_EQ(sim.RunOnce({0, 3}, rng), 2u);
}

TEST(LtSimulator, ActivationProbabilityEqualsEdgeWeight) {
  // Single edge 0 -> 1 with weight 0.4: E[spread({0})] = 1.4.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.4);
  Graph g = builder.Build().MoveValue();
  const double spread = EstimateSpreadLt(g, {0}, 200000, 3, 4);
  EXPECT_NEAR(spread, 1.4, 0.01);
}

TEST(LtSimulator, AtMostOneLiveInEdgePerNode) {
  // v has two in-neighbors with weights 0.5 each; only ONE can ever be
  // live (weights sum to 1). Seeding both sources: v always activates;
  // seeding one source: v activates with prob exactly 0.5, NOT 0.75 (the
  // IC value) — the discriminating test between LT and IC.
  GraphBuilder builder(3);
  builder.AddEdge(0, 2, 0.5);
  builder.AddEdge(1, 2, 0.5);
  Graph g = builder.Build().MoveValue();
  const double both = EstimateSpreadLt(g, {0, 1}, 100000, 4, 4);
  EXPECT_NEAR(both, 3.0, 0.01);
  const double one = EstimateSpreadLt(g, {0}, 200000, 5, 4);
  EXPECT_NEAR(one, 1.5, 0.01);
}

TEST(UicLtSimulator, BundlePropagatesAlongLivePath) {
  Graph g = Chain(4, 1.0);
  ItemParams params = MakeTwoItemConfig12();
  const UtilityTable table(params);  // zero noise: only the pair pays
  UicLtSimulator sim(g);
  Rng rng(6);
  Allocation alloc;
  alloc.Add(0, 0b11);
  const UicOutcome out = sim.Run(alloc, table, rng);
  EXPECT_DOUBLE_EQ(out.welfare, 4.0);  // all 4 nodes adopt the +1 pair
  EXPECT_EQ(out.num_adopters, 4u);
}

TEST(UicLtSimulator, RationalAdoptionStillHolds) {
  Graph g = Chain(3, 1.0);
  // Negative-alone items: seeding only one item yields nothing.
  const std::vector<double> prices = {1.0, 1.0};
  auto value = MakeValueFromUtilities(2, prices, {0.0, -0.5, -0.5, 1.0});
  ItemParams params(std::move(value), prices, NoiseModel::Zero(2));
  const UtilityTable table(params);
  UicLtSimulator sim(g);
  Rng rng(7);
  Allocation alloc;
  alloc.AddItem(0, 0);
  EXPECT_DOUBLE_EQ(sim.Run(alloc, table, rng).welfare, 0.0);
  Allocation bundled;
  bundled.Add(0, 0b11);
  EXPECT_DOUBLE_EQ(sim.Run(bundled, table, rng).welfare, 3.0);
}

TEST(EstimateWelfareLt, DeterministicAndPositiveUnderSynergy) {
  Graph g = GenerateErdosRenyi(300, 1800, 8);
  g.ApplyWeightedCascade();
  ItemParams params = MakeTwoItemConfig12();
  Allocation alloc;
  for (NodeId v = 0; v < 15; ++v) alloc.Add(v, 0b11);
  const WelfareEstimate a = EstimateWelfareLt(g, alloc, params, 300, 9, 4);
  const WelfareEstimate b = EstimateWelfareLt(g, alloc, params, 300, 9, 4);
  EXPECT_DOUBLE_EQ(a.welfare, b.welfare);
  EXPECT_GT(a.welfare, 0.0);
}

TEST(LtRrSampling, ReverseWalkOnChain) {
  Graph g = Chain(5, 1.0);
  RrOptions options;
  options.linear_threshold = true;
  RrSampler sampler(g, options);
  Rng rng(10);
  std::vector<NodeId> rr;
  sampler.SampleRootedInto(4, rng, &rr);
  // Weight-1 chain: the walk always climbs to the source.
  EXPECT_EQ(rr.size(), 5u);
}

TEST(LtRrSampling, WalkPicksOneBranch) {
  // Node 2 has two in-neighbors at weight 0.5: an LT RR set rooted at 2
  // contains exactly one of them (never both).
  GraphBuilder builder(3);
  builder.AddEdge(0, 2, 0.5);
  builder.AddEdge(1, 2, 0.5);
  Graph g = builder.Build().MoveValue();
  RrOptions options;
  options.linear_threshold = true;
  RrSampler sampler(g, options);
  Rng rng(11);
  std::vector<NodeId> rr;
  for (int trial = 0; trial < 200; ++trial) {
    sampler.SampleRootedInto(2, rng, &rr);
    EXPECT_EQ(rr.size(), 2u);  // root + exactly one source
  }
}

TEST(LtRrSampling, CoverageEstimatesLtSpread) {
  // σ_LT(S) = n * E[S covers R] must hold for LT RR sets too.
  Graph g = GenerateErdosRenyi(80, 400, 12);
  g.ApplyWeightedCascade();
  RrOptions options;
  options.linear_threshold = true;
  RrCollection pool(g, 13, 2, options);
  pool.GenerateUntil(60000);
  const std::vector<NodeId> seeds = {0, 1, 2};
  size_t covered = 0;
  for (size_t r = 0; r < pool.size(); ++r) {
    for (NodeId v : pool.Set(r)) {
      if (v <= 2) {
        ++covered;
        break;
      }
    }
  }
  const double rr_estimate =
      static_cast<double>(g.num_nodes()) * covered / pool.size();
  const double mc = EstimateSpreadLt(g, seeds, 60000, 14, 4);
  EXPECT_NEAR(rr_estimate, mc, 0.05 * mc + 0.2);
}

TEST(BundleGrdLt, SelectsSeedsUnderLinearThreshold) {
  Graph g = GenerateErdosRenyi(300, 1800, 15);
  g.ApplyWeightedCascade();
  const std::vector<uint32_t> budgets = {10, 10};
  const AllocationResult r =
      BundleGrd(g, budgets, 0.5, 1.0, 16, 0,
                DiffusionModel::kLinearThreshold);
  EXPECT_TRUE(r.allocation.ValidateBudgets(budgets).ok());
  EXPECT_EQ(r.allocation.SeedCount(0), 10u);
  // LT-selected seeds should outperform arbitrary seeds under LT welfare.
  ItemParams params = MakeTwoItemConfig12();
  Allocation arbitrary;
  for (NodeId v = 200; v < 210; ++v) arbitrary.Add(v, 0b11);
  const double w_sel =
      EstimateWelfareLt(g, r.allocation, params, 400, 17, 4).welfare;
  const double w_arb =
      EstimateWelfareLt(g, arbitrary, params, 400, 17, 4).welfare;
  EXPECT_GT(w_sel, w_arb);
}

}  // namespace
}  // namespace uic
