#!/usr/bin/env bash
# Docs invariants, run as a ctest and by the CI docs job:
#   1. Every relative (intra-repo) markdown link resolves to a file or
#      directory — a rename that orphans a link fails the build.
#   2. Every metric name registered in the source tree appears in
#      docs/observability.md, so the documented roster cannot drift
#      behind the code (lint rule UIC-L011 guarantees names are literal
#      strings at UIC_METRIC_* sites, which is what makes this
#      greppable).
set -u
root="${1:-.}"
fail=0

# --- intra-repo links ---------------------------------------------------
while IFS= read -r file; do
  dir=$(dirname "$file")
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "broken link in $file: $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$file" | sed 's/^](//; s/)$//')
done < <(find "$root" -name '*.md' \
  -not -path '*/build*/*' -not -path '*/.git/*' -not -path '*/related/*')

# --- metric roster coverage ---------------------------------------------
doc="$root/docs/observability.md"
if [ ! -f "$doc" ]; then
  echo "missing $doc"
  exit 1
fi
while IFS= read -r name; do
  if ! grep -q "$name" "$doc"; then
    echo "metric $name is registered in the tree but missing from $doc"
    fail=1
  fi
done < <(grep -rhoE '"uic_[a-z0-9_]+(_total|_ms|_depth|_running)"' \
  "$root/src" "$root/examples" | tr -d '"' | sort -u)

if [ "$fail" -eq 0 ]; then
  echo "docs clean: links resolve, metric roster covered"
fi
exit "$fail"
