// Fixture: UIC-L004 — raw std::thread outside the pool (line 5).
#include <thread>

void ForkJoin() {
  std::thread worker([] {});
  worker.join();
}
