// Fixture: no violations. Mentions of banned constructs appear only in
// comments ("std::rand", "volatile", std::thread) and string literals,
// which the scanner strips; std::thread::hardware_concurrency and
// lookups (not iteration) into an unordered_map are allowed, and an
// inline marker vets the one deliberate exception.
#include <string>
#include <thread>
#include <unordered_map>

const char* Banner() {
  return "do not use std::rand or volatile";  // string literal, not code
}

unsigned Workers() {
  return std::thread::hardware_concurrency();
}

int Lookup(const std::unordered_map<int, int>& index, int key) {
  auto it = index.find(key);
  return it == index.end() ? -1 : it->second;
}

double VettedException() {
  volatile double keep_alive = 1.0;  // uic-lint: allow(UIC-L005)
  return keep_alive;
}
