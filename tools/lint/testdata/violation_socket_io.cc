// Fixture: UIC-L008 — raw socket syscall outside src/serve/net* (line 6).
#include <sys/socket.h>

long LeakyTransport(int fd, const char* buf, unsigned long len) {
  // Qualified/member names must NOT hit; the raw call below must.
  long sent = send(fd, buf, len, 0);
  return sent;
}
