// Fixture: UIC-L002 — std::random_device (line 5).
#include <random>

unsigned HardwareEntropy() {
  std::random_device device;
  return device();
}
