// Fixture: UIC-L011 — direct metric registration outside the
// UIC_METRIC_* macros (line 7). Ad-hoc Register* calls mint metric
// names off the documented roster.
struct Registry;
Registry& Global();

void* c = RegisterCounter("my_adhoc_total", "", "off-roster metric");
