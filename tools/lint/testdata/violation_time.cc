// Fixture: UIC-L003 — wall clock feeding a seed (line 5).
#include <ctime>

unsigned long SeedFromClock() {
  return static_cast<unsigned long>(time(nullptr));
}
