// Fixture: UIC-L005 — volatile as a pseudo-atomic (line 4).

double Accumulate(int n) {
  volatile double sink = 0;
  for (int i = 0; i < n; ++i) sink = sink + i;
  return sink;
}
