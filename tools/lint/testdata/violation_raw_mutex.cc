// Fixture: UIC-L007 — raw std::mutex in library code (lines 6, 9).
// (The rule fires only under src/; the test lints this content under a
// synthetic src/ path label.)
#include <mutex>

std::mutex g_mu;

int GuardedIncrement(int* counter) {
  std::lock_guard<std::mutex> lock(g_mu);
  return ++*counter;
}
