// Fixture: UIC-L006 — iterating an unordered_map into output (line 8).
#include <cstdio>
#include <string>
#include <unordered_map>

void DumpCounts(const std::unordered_map<std::string, int>& counts) {
  // Hash-order iteration: report rows come out in unspecified order.
  for (const auto& [key, value] : counts) {
    std::printf("%s,%d\n", key.c_str(), value);
  }
}
