// Fixture: UIC-L010 — UIC_FAILPOINT site outside src/ library code
// (line 7). Tests arm failpoints via the registry, never by adding sites.
int InjectedEof();

bool FlakyRead(int fd) {
  // A test inventing its own injection point, off the audited roster:
  const auto hit = UIC_FAILPOINT("test.my_private_site");
  (void)hit;
  return fd >= 0 && InjectedEof() == 0;
}
