// Fixture: UIC-L001 — std::rand (line 5).
#include <cstdlib>

int UnseededDraw() {
  return std::rand() % 100;
}
