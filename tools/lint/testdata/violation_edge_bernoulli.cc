// Fixture: UIC-L009 — per-edge Bernoulli scan over an adjacency
// probability array (line 10). The scalar draw on line 15 is fine.
struct Rng {
  bool NextBernoulli(double p);
};

bool AnyEdgeFires(Rng& rng, const double* probs, int deg) {
  bool fired = false;
  for (int k = 0; k < deg; ++k) {
    fired = fired || rng.NextBernoulli(probs[k]);
  }
  return fired;
}

bool CoinFlip(Rng& rng, double p) { return rng.NextBernoulli(p); }
