#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>

namespace uic {
namespace lint {

namespace fs = std::filesystem;

const std::vector<Rule>& RuleTable() {
  static const std::vector<Rule> rules = {
      {"UIC-L001", "banned-rand",
       "std::rand/srand use a hidden global generator that is neither "
       "seedable per-component nor reproducible across platforms",
       "draw from uic::Rng (common/random.h), seeded from the caller's "
       "options"},
      {"UIC-L002", "banned-random-device",
       "std::random_device injects hardware entropy, breaking the "
       "seed-only determinism contract",
       "derive per-stream generators with Rng::Split(seed, stream) "
       "instead of reseeding from the environment"},
      {"UIC-L003", "wall-clock-entropy",
       "wall-clock reads (time(nullptr), gettimeofday, clock(), "
       "system_clock) feeding computation make results depend on when "
       "the process ran",
       "results must be a pure function of (inputs, seed); for measuring "
       "elapsed time use WallTimer (steady_clock) in common/timer.h"},
      {"UIC-L004", "raw-thread",
       "raw std::thread construction bypasses the shared ThreadPool and "
       "its deterministic chunked partition",
       "parallelize via ParallelFor/ParallelForStreams "
       "(common/parallel.h); thread creation lives only in "
       "common/thread_pool.cc"},
      {"UIC-L005", "banned-volatile",
       "volatile is not a synchronization primitive and hides real "
       "races from TSan and the thread-safety analysis",
       "use std::atomic for lock-free flags/counters or uic::Mutex for "
       "critical sections"},
      {"UIC-L006", "unordered-iteration",
       "iteration order of unordered_{map,set} is unspecified and "
       "varies across standard libraries and runs, so iterating one "
       "into any result or report is nondeterministic",
       "iterate a sorted container (std::map/std::set or a sorted "
       "vector) or sort the extracted items before use; keep unordered "
       "containers for lookups only"},
      {"UIC-L007", "raw-mutex",
       "libstdc++ std::mutex/std::lock_guard carry no capability "
       "annotations, so clang -Wthread-safety cannot check code that "
       "locks them directly",
       "library code uses uic::Mutex/MutexLock/CondVar (common/mutex.h) "
       "with UIC_GUARDED_BY annotations on the protected members"},
      {"UIC-L008", "raw-socket-io",
       "raw socket syscalls (socket/connect/accept/send/recv) scattered "
       "outside the serve transport bypass its stop-flag polling, EINTR "
       "retries, and MSG_NOSIGNAL discipline",
       "go through FdLineChannel/TcpListener/TcpConnection "
       "(src/serve/net.h); socket syscalls live only in src/serve/net.cc"},
      {"UIC-L009", "per-edge-bernoulli",
       "a NextBernoulli loop over an adjacency probability array pays one "
       "RNG draw per edge; the stratified SamplingPlan's geometric skip "
       "kernel crosses low-probability spans in O(successes) draws",
       "sample through RrSampler/IcSimulator with a SamplingPlan "
       "(graph/sampling_plan.h); intentionally-general per-edge scans "
       "need a whitelist entry"},
      {"UIC-L010", "failpoint-site",
       "a UIC_FAILPOINT site outside first-party library code lets tests "
       "and tools invent injection points ad hoc, off the audited site "
       "roster in common/failpoint.h",
       "inject through the registry API (failpoint::Set/Configure, the "
       "UIC_FAILPOINTS env var, or the set_failpoints verb); sites live "
       "only under src/"},
      {"UIC-L011", "metric-registration",
       "direct MetricsRegistry Register{Counter,Gauge,Histogram} calls "
       "mint ad-hoc metric name strings, off the documented roster in "
       "docs/observability.md and past the once-per-site static "
       "registration the macros guarantee",
       "register instruments through the UIC_METRIC_* macros "
       "(src/obs/metrics.h); direct Register* calls live only in "
       "src/obs/ and registry unit tests with a whitelist entry"},
  };
  return rules;
}

namespace {

bool IsKnownRule(const std::string& id) {
  for (const Rule& r : RuleTable()) {
    if (r.id == id) return true;
  }
  return false;
}

/// Path suffix match on '/' boundaries: "tests/a.cc" matches
/// "repo/tests/a.cc" but not "repo/mytests/a.cc".
bool PathEndsWith(const std::string& path, const std::string& suffix) {
  if (suffix.size() > path.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return suffix.size() == path.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

bool PathStartsWith(const std::string& path, const std::string& prefix) {
  if (path.rfind(prefix, 0) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

/// Split stripped source into lines (index i == line i+1).
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

/// Per-line inline suppressions, parsed from the RAW source (markers live
/// in comments, which the stripper erases): `uic-lint: allow(UIC-L004)`
/// or `allow(UIC-L004, UIC-L005)`.
std::map<size_t, std::set<std::string>> ParseInlineAllows(
    const std::string& source) {
  std::map<size_t, std::set<std::string>> allows;
  static const std::regex marker(R"(uic-lint:\s*allow\(([^)]*)\))");
  size_t line_no = 1;
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) {
    std::smatch m;
    if (std::regex_search(line, m, marker)) {
      std::string ids = m[1].str();
      std::istringstream id_in(ids);
      std::string id;
      while (std::getline(id_in, id, ',')) {
        id.erase(0, id.find_first_not_of(" \t"));
        id.erase(id.find_last_not_of(" \t") + 1);
        if (!id.empty()) allows[line_no].insert(id);
      }
    }
    ++line_no;
  }
  return allows;
}

/// Extract the names of variables declared with an unordered container
/// type anywhere in the stripped source (declarations, members, params).
std::vector<std::string> UnorderedVarNames(const std::string& stripped) {
  std::vector<std::string> names;
  static const std::regex decl(R"(\bunordered_(?:map|set)\s*<)");
  auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), decl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    // Walk past the template argument list (matching angle brackets).
    size_t pos = static_cast<size_t>(it->position() + it->length());
    int depth = 1;
    while (pos < stripped.size() && depth > 0) {
      if (stripped[pos] == '<') ++depth;
      if (stripped[pos] == '>') --depth;
      ++pos;
    }
    // Skip reference/pointer/cv decoration, then read the identifier.
    while (pos < stripped.size() &&
           (std::isspace(static_cast<unsigned char>(stripped[pos])) ||
            stripped[pos] == '&' || stripped[pos] == '*')) {
      ++pos;
    }
    std::string name;
    while (pos < stripped.size() &&
           (std::isalnum(static_cast<unsigned char>(stripped[pos])) ||
            stripped[pos] == '_')) {
      name.push_back(stripped[pos++]);
    }
    if (!name.empty() && name != "const") names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void Add(std::vector<Violation>* out, const std::string& path, size_t line,
         const char* rule_id, const std::string& message) {
  out->push_back(Violation{path, line, rule_id, message});
}

}  // namespace

bool Whitelist::Allows(const Violation& v) const {
  for (const Entry& e : entries) {
    if (e.rule_id == v.rule_id && PathEndsWith(v.path, e.path_suffix)) {
      return true;
    }
  }
  return false;
}

bool LoadWhitelist(const std::string& path, Whitelist* out,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open whitelist file: " + path;
    return false;
  }
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string rule, suffix, extra;
    if (!(fields >> rule)) continue;  // blank / comment-only line
    if (!(fields >> suffix) || (fields >> extra)) {
      *error = path + ":" + std::to_string(line_no) +
               ": expected '<rule-id> <path-suffix>'";
      return false;
    }
    if (!IsKnownRule(rule)) {
      *error = path + ":" + std::to_string(line_no) + ": unknown rule '" +
               rule + "'";
      return false;
    }
    out->entries.push_back(Whitelist::Entry{rule, suffix});
  }
  return true;
}

std::string StripCommentsAndStrings(const std::string& source) {
  std::string out;
  out.reserve(source.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';  // line continuation
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Violation> LintSource(const std::string& path,
                                  const std::string& source) {
  const std::string stripped = StripCommentsAndStrings(source);
  const std::vector<std::string> lines = SplitLines(stripped);
  const auto inline_allows = ParseInlineAllows(source);

  // Built-in structural exemptions: the two files that ARE the sanctioned
  // implementations of the banned primitives.
  const bool is_thread_pool = PathEndsWith(path, "common/thread_pool.cc") ||
                              PathEndsWith(path, "common/thread_pool.h");
  const bool is_mutex_wrapper = PathEndsWith(path, "common/mutex.h");
  const bool is_net_layer = PathEndsWith(path, "serve/net.cc") ||
                            PathEndsWith(path, "serve/net.h");
  // The registry implementation and the macro layer that wraps it.
  const bool is_obs_layer = PathEndsWith(path, "obs/metrics.cc") ||
                            PathEndsWith(path, "obs/metrics.h");
  // The sampling-plan kernels themselves: their scan fallbacks ARE the
  // sanctioned per-edge Bernoulli loops (the general-node path and the
  // scan kernel the skip kernel is validated against).
  const bool is_sampling_kernel =
      PathEndsWith(path, "rrset/rr_collection.cc") ||
      PathEndsWith(path, "diffusion/ic_model.cc");
  // UIC-L007 covers library code only: tests/bench scaffolding may lock a
  // plain std::mutex, the library may not.
  const bool in_library = PathStartsWith(path, "src") ||
                          path.find("/src/") != std::string::npos;

  static const std::regex re_rand(R"(\b(?:std\s*::\s*)?s?rand\s*\()");
  static const std::regex re_random_device(R"(\brandom_device\b)");
  static const std::regex re_wall_clock(
      R"(\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|\bgettimeofday\b|\bclock\s*\(\s*\)|\bsystem_clock\b)");
  static const std::regex re_thread(R"(\bstd\s*::\s*thread\b)");
  static const std::regex re_thread_allowed(
      R"(\bstd\s*::\s*thread\s*::\s*hardware_concurrency\b)");
  static const std::regex re_volatile(R"(\bvolatile\b)");
  static const std::regex re_raw_mutex(
      R"(\bstd\s*::\s*(?:timed_mutex|recursive_mutex|shared_mutex|mutex|condition_variable_any|condition_variable|lock_guard|unique_lock|scoped_lock|shared_lock)\b)");
  // Call sites only: the leading char class rejects member/qualified names
  // (x.send(, Foo::connect() and identifier suffixes (my_send().
  static const std::regex re_socket_io(
      R"((?:^|[^\w.>:])(?:socket|accept4?|connect|send|sendto|sendmsg|recv|recvfrom|recvmsg)\s*\()");
  // A Bernoulli draw indexed into an array is the per-edge coin-flip
  // idiom (scalar NextBernoulli(p) calls are fine).
  static const std::regex re_edge_bernoulli(
      R"(\bNextBernoulli\s*\(\s*\w+\s*\[)");
  static const std::regex re_failpoint_site(R"(\bUIC_FAILPOINT\s*\()");
  // Call sites only (the UIC_METRIC_* macros expand to these calls, but
  // macro-using sources never contain the token themselves).
  static const std::regex re_metric_register(
      R"(\bRegister(?:Counter|Gauge|Histogram)\s*\()");

  const std::vector<std::string> unordered_vars = UnorderedVarNames(stripped);
  std::vector<std::regex> re_unordered_iter;
  re_unordered_iter.reserve(unordered_vars.size() * 2);
  for (const std::string& v : unordered_vars) {
    // Range-for over the container, and explicit iterator walks.
    re_unordered_iter.emplace_back(R"(for\s*\([^()]*:\s*)" + v + R"(\s*\))");
    re_unordered_iter.emplace_back(R"(\b)" + v + R"(\s*\.\s*c?begin\s*\()");
  }

  std::vector<Violation> out;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const size_t line_no = i + 1;
    if (std::regex_search(line, re_rand)) {
      Add(&out, path, line_no, "UIC-L001",
          "call to std::rand/srand (global, unseedable RNG)");
    }
    if (std::regex_search(line, re_random_device)) {
      Add(&out, path, line_no, "UIC-L002",
          "std::random_device draws hardware entropy");
    }
    if (std::regex_search(line, re_wall_clock)) {
      Add(&out, path, line_no, "UIC-L003",
          "wall-clock read can feed computed results");
    }
    if (!is_thread_pool && std::regex_search(line, re_thread) &&
        !std::regex_search(line, re_thread_allowed)) {
      Add(&out, path, line_no, "UIC-L004",
          "raw std::thread outside common/thread_pool.cc");
    }
    if (std::regex_search(line, re_volatile)) {
      Add(&out, path, line_no, "UIC-L005", "volatile-qualified declaration");
    }
    for (size_t r = 0; r < re_unordered_iter.size(); ++r) {
      if (std::regex_search(line, re_unordered_iter[r])) {
        Add(&out, path, line_no, "UIC-L006",
            "iteration over unordered container '" + unordered_vars[r / 2] +
                "' (unspecified order)");
        break;
      }
    }
    if (in_library && !is_mutex_wrapper && !is_thread_pool &&
        std::regex_search(line, re_raw_mutex)) {
      Add(&out, path, line_no, "UIC-L007",
          "raw standard-library lock primitive in library code");
    }
    if (!is_net_layer && std::regex_search(line, re_socket_io)) {
      Add(&out, path, line_no, "UIC-L008",
          "raw socket syscall outside src/serve/net.cc");
    }
    if (!is_sampling_kernel && std::regex_search(line, re_edge_bernoulli)) {
      Add(&out, path, line_no, "UIC-L009",
          "per-edge Bernoulli scan outside the sampling-plan kernels");
    }
    if (!in_library && std::regex_search(line, re_failpoint_site)) {
      Add(&out, path, line_no, "UIC-L010",
          "UIC_FAILPOINT site outside src/ library code");
    }
    if (!is_obs_layer && std::regex_search(line, re_metric_register)) {
      Add(&out, path, line_no, "UIC-L011",
          "direct metric registration outside the UIC_METRIC_* macros");
    }
  }

  // Apply inline suppressions.
  std::vector<Violation> kept;
  kept.reserve(out.size());
  for (Violation& v : out) {
    auto it = inline_allows.find(v.line);
    if (it != inline_allows.end() && it->second.count(v.rule_id) > 0) continue;
    kept.push_back(std::move(v));
  }
  return kept;
}

std::vector<Violation> LintFile(const std::string& root,
                                const std::string& rel_path) {
  std::ifstream in(fs::path(root) / rel_path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintSource(rel_path, buffer.str());
}

std::vector<std::string> CollectSources(const std::string& root,
                                        const std::string& dir) {
  std::vector<std::string> files;
  const fs::path base = fs::path(root) / dir;
  if (!fs::exists(base)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(base)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".cpp" && ext != ".hpp") {
      continue;
    }
    files.push_back(
        fs::relative(entry.path(), root).generic_string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

int RunLint(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  std::string root = ".";
  std::string whitelist_path;
  std::vector<std::string> paths;
  bool list_rules = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next_value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        err << "uic_lint: " << flag << " requires a value\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (arg == "--root") {
      const std::string* v = next_value("--root");
      if (v == nullptr) return 2;
      root = *v;
    } else if (arg == "--whitelist") {
      const std::string* v = next_value("--whitelist");
      if (v == nullptr) return 2;
      whitelist_path = *v;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help") {
      out << "usage: uic_lint [--root DIR] [--whitelist FILE] "
             "[--list-rules] [paths...]\n"
             "Lints the determinism/concurrency contract over "
             "src tests bench examples\n(or the given root-relative "
             "paths). Exit: 0 clean, 1 violations, 2 error.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "uic_lint: unknown flag '" << arg << "' (see --help)\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const Rule& r : RuleTable()) {
      out << r.id << "  " << r.name << "\n    " << r.description
          << "\n    fix: " << r.hint << "\n";
    }
    return 0;
  }

  Whitelist whitelist;
  if (!whitelist_path.empty()) {
    std::string error;
    if (!LoadWhitelist(whitelist_path, &whitelist, &error)) {
      err << "uic_lint: " << error << "\n";
      return 2;
    }
  }

  if (paths.empty()) paths = {"src", "tests", "bench", "examples"};
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    if (fs::is_regular_file(fs::path(root) / p)) {
      files.push_back(p);
    } else {
      std::vector<std::string> collected = CollectSources(root, p);
      files.insert(files.end(), collected.begin(), collected.end());
    }
  }
  if (files.empty()) {
    err << "uic_lint: no source files found under root '" << root << "'\n";
    return 2;
  }

  size_t checked = 0;
  size_t num_violations = 0;
  for (const std::string& file : files) {
    ++checked;
    for (const Violation& v : LintFile(root, file)) {
      if (whitelist.Allows(v)) continue;
      const Rule* rule = nullptr;
      for (const Rule& r : RuleTable()) {
        if (r.id == v.rule_id) rule = &r;
      }
      out << v.path << ":" << v.line << ": [" << v.rule_id << "] "
          << v.message << "\n";
      if (rule != nullptr) out << "    fix: " << rule->hint << "\n";
      ++num_violations;
    }
  }
  if (num_violations > 0) {
    out << num_violations << " violation(s) in " << checked << " file(s)\n";
    return 1;
  }
  out << "uic_lint: " << checked << " file(s) clean\n";
  return 0;
}

}  // namespace lint
}  // namespace uic
