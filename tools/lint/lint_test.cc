// Tests for the determinism/concurrency lint: one fixture per rule
// (asserting rule ID, path, and line), the clean fixture, the stripper,
// whitelist semantics, and the CLI driver's exit codes.
#include "lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace uic {
namespace lint {
namespace {

std::string TestDataPath() { return UIC_LINT_TESTDATA; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Lint one fixture file and return its violations.
std::vector<Violation> LintFixture(const std::string& name) {
  return LintFile(TestDataPath(), name);
}

struct FixtureCase {
  const char* file;
  const char* rule_id;
  size_t line;
};

TEST(UicLint, EachRuleFixtureIsCaughtAtTheDocumentedLine) {
  const std::vector<FixtureCase> cases = {
      {"violation_rand.cc", "UIC-L001", 5},
      {"violation_random_device.cc", "UIC-L002", 5},
      {"violation_time.cc", "UIC-L003", 5},
      {"violation_thread.cc", "UIC-L004", 5},
      {"violation_volatile.cc", "UIC-L005", 4},
      {"violation_unordered_iter.cc", "UIC-L006", 8},
      {"violation_socket_io.cc", "UIC-L008", 6},
      {"violation_edge_bernoulli.cc", "UIC-L009", 10},
      {"violation_failpoint.cc", "UIC-L010", 7},
      {"violation_metric_register.cc", "UIC-L011", 7},
  };
  for (const FixtureCase& c : cases) {
    const std::vector<Violation> found = LintFixture(c.file);
    ASSERT_EQ(found.size(), 1u) << c.file;
    EXPECT_EQ(found[0].rule_id, c.rule_id) << c.file;
    EXPECT_EQ(found[0].line, c.line) << c.file;
    EXPECT_EQ(found[0].path, c.file);
    EXPECT_FALSE(found[0].message.empty());
  }
}

TEST(UicLint, RawMutexRuleAppliesOnlyUnderSrc) {
  const std::string source =
      ReadFile(TestDataPath() + "/violation_raw_mutex.cc");
  // Linted as library code: both the global mutex and the lock_guard hit.
  const std::vector<Violation> in_src =
      LintSource("src/concurrency/raw_mutex.cc", source);
  ASSERT_EQ(in_src.size(), 2u);
  EXPECT_EQ(in_src[0].rule_id, "UIC-L007");
  EXPECT_EQ(in_src[0].line, 6u);
  EXPECT_EQ(in_src[1].rule_id, "UIC-L007");
  EXPECT_EQ(in_src[1].line, 9u);
  // The same content as test scaffolding is fine.
  EXPECT_TRUE(LintSource("tests/raw_mutex.cc", source).empty());
  // And the sanctioned wrapper implementation is exempt.
  EXPECT_TRUE(LintSource("src/common/mutex.h", source).empty());
}

TEST(UicLint, ThreadPoolImplementationIsExemptFromRawThreadRule) {
  const std::string source = ReadFile(TestDataPath() + "/violation_thread.cc");
  EXPECT_EQ(LintSource("bench/fork_join.cc", source).size(), 1u);
  EXPECT_TRUE(LintSource("src/common/thread_pool.cc", source).empty());
}

TEST(UicLint, SocketIoRuleExemptsOnlyTheServeNetLayer) {
  const std::string source =
      ReadFile(TestDataPath() + "/violation_socket_io.cc");
  // The sanctioned transport may make the syscalls...
  EXPECT_TRUE(LintSource("src/serve/net.cc", source).empty());
  EXPECT_TRUE(LintSource("src/serve/net.h", source).empty());
  // ...everything else (library, daemon, tests) may not.
  EXPECT_EQ(LintSource("src/serve/server.cc", source).size(), 1u);
  EXPECT_EQ(LintSource("examples/uic_served.cpp", source).size(), 1u);
  EXPECT_EQ(LintSource("tests/test_serve.cc", source).size(), 1u);
}

TEST(UicLint, SocketIoRuleIgnoresMemberAndQualifiedNames) {
  // Method calls, qualified names, and identifier suffixes are not the
  // syscall: only a bare call expression hits.
  EXPECT_TRUE(
      LintSource("src/a.cc", "channel.send(fd);\n").empty());
  EXPECT_TRUE(
      LintSource("src/a.cc", "Mailbox::connect(peer);\n").empty());
  EXPECT_TRUE(LintSource("src/a.cc", "int resend(int);\n").empty());
  EXPECT_TRUE(LintSource("src/a.cc", "box->recv(m);\n").empty());
  EXPECT_EQ(LintSource("src/a.cc", "recv(fd, buf, n, 0);\n").size(), 1u);
  EXPECT_EQ(LintSource("src/a.cc", "x = connect(fd, a, l);\n").size(), 1u);
}

TEST(UicLint, EdgeBernoulliRuleExemptsOnlyTheSamplingKernels) {
  const std::string source =
      ReadFile(TestDataPath() + "/violation_edge_bernoulli.cc");
  // The scan kernels are the sanctioned per-edge Bernoulli loops...
  EXPECT_TRUE(LintSource("src/rrset/rr_collection.cc", source).empty());
  EXPECT_TRUE(LintSource("src/diffusion/ic_model.cc", source).empty());
  // ...anywhere else the loop must go through a SamplingPlan kernel or
  // earn a whitelist entry (as uic_model.cc's edge memo does).
  EXPECT_EQ(LintSource("src/diffusion/uic_model.cc", source).size(), 1u);
  EXPECT_EQ(LintSource("tests/test_models.cc", source).size(), 1u);
}

TEST(UicLint, CleanFixtureHasNoViolations) {
  const std::vector<Violation> found = LintFixture("clean.cc");
  EXPECT_TRUE(found.empty());
}

TEST(UicLint, HardwareConcurrencyIsNotARawThread) {
  EXPECT_TRUE(
      LintSource("src/a.cc", "unsigned n = std::thread::hardware_concurrency();")
          .empty());
  EXPECT_EQ(LintSource("src/a.cc", "std::thread t(Work);").size(), 1u);
}

TEST(UicLint, StripperErasesCommentsAndStringsButKeepsLines) {
  const std::string source =
      "int a; // std::rand()\n"
      "/* volatile\n   std::thread */ int b;\n"
      "const char* s = \"std::random_device\";\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(source.begin(), source.end(), '\n'));
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("volatile"), std::string::npos);
  EXPECT_EQ(stripped.find("random_device"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
  // And therefore none of it lints as a violation.
  EXPECT_TRUE(LintSource("src/a.cc", source).empty());
}

TEST(UicLint, EscapedQuotesAndCharLiteralsDoNotDerailTheStripper) {
  const std::string source =
      "const char* s = \"escaped \\\" quote\";\n"
      "char c = '\"';\n"
      "int after = std::rand();\n";
  const std::vector<Violation> found = LintSource("src/a.cc", source);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule_id, "UIC-L001");
  EXPECT_EQ(found[0].line, 3u);
}

TEST(UicLint, InlineAllowSuppressesOnlyTheNamedRuleOnThatLine) {
  const std::string allowed =
      "volatile int x = 0;  // uic-lint: allow(UIC-L005)\n";
  EXPECT_TRUE(LintSource("src/a.cc", allowed).empty());
  const std::string wrong_rule =
      "volatile int x = 0;  // uic-lint: allow(UIC-L001)\n";
  EXPECT_EQ(LintSource("src/a.cc", wrong_rule).size(), 1u);
  const std::string other_line =
      "// uic-lint: allow(UIC-L005)\nvolatile int x = 0;\n";
  EXPECT_EQ(LintSource("src/a.cc", other_line).size(), 1u);
}

TEST(UicLint, WhitelistMatchesOnPathBoundaries) {
  Whitelist wl;
  wl.entries.push_back({"UIC-L004", "tests/test_thread_pool.cc"});
  Violation v{"tests/test_thread_pool.cc", 1, "UIC-L004", ""};
  EXPECT_TRUE(wl.Allows(v));
  v.path = "repo/tests/test_thread_pool.cc";
  EXPECT_TRUE(wl.Allows(v));
  v.path = "mytests/test_thread_pool.cc";
  EXPECT_FALSE(wl.Allows(v));
  v.path = "tests/test_thread_pool.cc";
  v.rule_id = "UIC-L005";
  EXPECT_FALSE(wl.Allows(v));
}

TEST(UicLint, WhitelistLoaderRejectsUnknownRules) {
  const std::string path = ::testing::TempDir() + "/wl_bad.txt";
  {
    std::ofstream out(path);
    out << "# comment\nUIC-L999 some/path.cc\n";
  }
  Whitelist wl;
  std::string error;
  EXPECT_FALSE(LoadWhitelist(path, &wl, &error));
  EXPECT_NE(error.find("UIC-L999"), std::string::npos);
}

TEST(UicLint, WhitelistLoaderParsesEntriesAndComments) {
  const std::string path = ::testing::TempDir() + "/wl_ok.txt";
  {
    std::ofstream out(path);
    out << "\n# header\nUIC-L004 tests/test_thread_pool.cc  # reason\n";
  }
  Whitelist wl;
  std::string error;
  ASSERT_TRUE(LoadWhitelist(path, &wl, &error)) << error;
  ASSERT_EQ(wl.entries.size(), 1u);
  EXPECT_EQ(wl.entries[0].rule_id, "UIC-L004");
  EXPECT_EQ(wl.entries[0].path_suffix, "tests/test_thread_pool.cc");
}

TEST(UicLint, RuleTableHasElevenRulesWithHints) {
  const std::vector<Rule>& rules = RuleTable();
  ASSERT_EQ(rules.size(), 11u);
  for (size_t i = 0; i < rules.size(); ++i) {
    std::string number = std::to_string(i + 1);
    while (number.size() < 3) number.insert(number.begin(), '0');
    EXPECT_EQ(rules[i].id, "UIC-L" + number);
    EXPECT_FALSE(rules[i].hint.empty()) << rules[i].id;
    EXPECT_FALSE(rules[i].description.empty()) << rules[i].id;
  }
}

TEST(UicLint, FailpointSiteRuleExemptsLibraryCode) {
  const std::string source =
      ReadFile(TestDataPath() + "/violation_failpoint.cc");
  // Sites are legal anywhere under src/ (the audited roster)...
  EXPECT_TRUE(LintSource("src/serve/net.cc", source).empty());
  EXPECT_TRUE(LintSource("src/core/serialization.cc", source).empty());
  // ...but tests, benches, and tools must go through the registry API.
  EXPECT_EQ(LintSource("tests/test_serve.cc", source).size(), 1u);
  EXPECT_EQ(LintSource("bench/bench_serve.cc", source).size(), 1u);
  EXPECT_EQ(LintSource("examples/uic_served.cpp", source).size(), 1u);
}

TEST(UicLint, MetricRegistrationRuleExemptsOnlyTheRegistryLayer) {
  const std::string source =
      ReadFile(TestDataPath() + "/violation_metric_register.cc");
  // The registry implementation and its macro layer make the real calls...
  EXPECT_TRUE(LintSource("src/obs/metrics.cc", source).empty());
  EXPECT_TRUE(LintSource("src/obs/metrics.h", source).empty());
  // ...everything else goes through UIC_METRIC_* (macro-using sources
  // never contain the Register* token) or earns a whitelist entry, as
  // the registry unit tests do.
  EXPECT_EQ(LintSource("src/serve/server.cc", source).size(), 1u);
  EXPECT_EQ(LintSource("tests/test_obs.cc", source).size(), 1u);
  EXPECT_EQ(LintSource("examples/uic_run.cpp", source).size(), 1u);
}

TEST(UicLint, CliExitsNonzeroOnViolationsAndReportsRuleAndPath) {
  std::ostringstream out, err;
  const int code =
      RunLint({"--root", TestDataPath(), "violation_rand.cc"}, out, err);
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.str().find("violation_rand.cc:5"), std::string::npos);
  EXPECT_NE(out.str().find("[UIC-L001]"), std::string::npos);
  EXPECT_NE(out.str().find("fix:"), std::string::npos);
}

TEST(UicLint, CliExitsZeroOnCleanInput) {
  std::ostringstream out, err;
  const int code = RunLint({"--root", TestDataPath(), "clean.cc"}, out, err);
  EXPECT_EQ(code, 0) << out.str();
  EXPECT_NE(out.str().find("clean"), std::string::npos);
}

TEST(UicLint, CliRejectsUnknownFlagsAndMissingTrees) {
  std::ostringstream out, err;
  EXPECT_EQ(RunLint({"--bogus"}, out, err), 2);
  EXPECT_EQ(RunLint({"--root", TestDataPath() + "/nope"}, out, err), 2);
}

TEST(UicLint, ListRulesPrintsEveryRuleId) {
  std::ostringstream out, err;
  EXPECT_EQ(RunLint({"--list-rules"}, out, err), 0);
  for (const Rule& r : RuleTable()) {
    EXPECT_NE(out.str().find(r.id), std::string::npos);
  }
}

}  // namespace
}  // namespace lint
}  // namespace uic
