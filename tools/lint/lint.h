// uic_lint: the project's determinism & concurrency lint.
//
// The library's correctness story is a *seed-only determinism contract*
// (results are a pure function of (inputs, seed) — never of wall clock,
// worker count, scheduling, or hash-table iteration order) enforced at
// runtime by goldens and metamorphic tests. This lint enforces the
// source-level half of that contract so a violation is a failing tier-1
// ctest with a rule ID and a fix-it hint, not a flaky golden three PRs
// later.
//
// Rules (see RuleTable() for the authoritative list):
//   UIC-L001 banned-rand          std::rand/srand — unseeded global RNG
//   UIC-L002 banned-random-device std::random_device — hardware entropy
//   UIC-L003 wall-clock-entropy   time(nullptr)/gettimeofday/system_clock
//   UIC-L004 raw-thread           std::thread outside common/thread_pool
//   UIC-L005 banned-volatile      volatile is not a threading primitive
//   UIC-L006 unordered-iteration  iterating unordered_{map,set} (order is
//                                 nondeterministic across stdlibs/runs)
//   UIC-L007 raw-mutex            std::mutex & friends in src/ (invisible
//                                 to clang -Wthread-safety; use uic::Mutex)
//   UIC-L008 raw-socket-io        socket/connect/accept/send/recv outside
//                                 src/serve/net* (the audited transport)
//   UIC-L009 per-edge-bernoulli   NextBernoulli loops over adjacency
//                                 probability arrays outside the
//                                 sampling-plan scan kernels (forfeits
//                                 geometric skip-sampling)
//   UIC-L010 failpoint-site       UIC_FAILPOINT sites outside src/ (tests
//                                 and tools inject via the failpoint
//                                 registry, never by adding sites)
//
// Scanning is token-oriented over comment- and string-stripped source, so
// a doc comment mentioning `std::thread` is not a violation. Vetted
// exceptions go in a whitelist file (`<rule-id> <path-suffix>` lines) or
// inline: `// uic-lint: allow(UIC-L004)` on the offending line.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace uic {
namespace lint {

/// One lint rule's metadata.
struct Rule {
  std::string id;           ///< e.g. "UIC-L001"
  std::string name;         ///< short kebab-case name
  std::string description;  ///< what the rule bans and why
  std::string hint;         ///< fix-it hint appended to every violation
};

/// The authoritative rule list, in ID order.
const std::vector<Rule>& RuleTable();

/// One finding.
struct Violation {
  std::string path;  ///< root-relative (forward slashes) when under root
  size_t line = 0;   ///< 1-based
  std::string rule_id;
  std::string message;
};

/// A parsed whitelist: (rule ID, path suffix) pairs.
struct Whitelist {
  struct Entry {
    std::string rule_id;
    std::string path_suffix;
  };
  std::vector<Entry> entries;

  /// True if `v` matches an entry (rule equal, path ends with suffix).
  bool Allows(const Violation& v) const;
};

/// Parse a whitelist file. Format, one entry per line:
///   UIC-L004 tests/test_thread_pool.cc   # reason
/// '#' starts a comment; blank lines are skipped. Returns false (with a
/// message in *error) on a malformed line or an unknown rule ID.
bool LoadWhitelist(const std::string& path, Whitelist* out,
                   std::string* error);

/// \brief Replace comments and string/char-literal contents with spaces,
/// preserving line structure (newlines are kept, so line numbers in the
/// stripped text match the original).
std::string StripCommentsAndStrings(const std::string& source);

/// \brief Lint `source` as if it were the file `path` (root-relative).
/// Inline `uic-lint: allow(...)` markers are honored; the whitelist is
/// applied by the caller.
std::vector<Violation> LintSource(const std::string& path,
                                  const std::string& source);

/// \brief Lint one file on disk. `path` is used both for reading and as
/// the reported location (pass it root-relative).
std::vector<Violation> LintFile(const std::string& root,
                                const std::string& rel_path);

/// \brief Recursively collect the .h/.cc/.cpp/.hpp files under
/// `root`/`dir` as sorted root-relative paths (deterministic order).
std::vector<std::string> CollectSources(const std::string& root,
                                        const std::string& dir);

/// \brief CLI entry point (what main() calls; tests call it in-process).
/// Returns the process exit code: 0 clean, 1 violations, 2 usage/IO error.
int RunLint(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace lint
}  // namespace uic
