// CLI entry point for the determinism/concurrency lint (see lint.h).
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return uic::lint::RunLint(args, std::cout, std::cerr);
}
